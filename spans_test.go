package helcfl

import (
	"testing"

	"helcfl/internal/experiments"
	"helcfl/internal/fl"
	"helcfl/internal/obs/span"
)

// engineRunTraced is engineRun with a span recorder attached instead of an
// event sink; rec may be nil to exercise the disabled-tracer fast path.
func engineRunTraced(tb testing.TB, rec *span.Recorder) {
	tb.Helper()
	env := benchEngineEnv(tb)
	if _, _, err := experiments.RunSchemeWith(env, "HELCFL", func(c *fl.Config) { c.Trace = rec }); err != nil {
		tb.Fatal(err)
	}
}

// TestNilTraceIsCheaperThanRecorder pins the tracer's zero-overhead
// contract at engine scope, mirroring TestNilSinkIsCheaperThanNopSink: a
// nil Config.Trace must add nothing to the training hot loop (every span
// start, attribute, and ring write is guarded by the nil-recorder check),
// so an attached recorder must cost strictly more.
func TestNilTraceIsCheaperThanRecorder(t *testing.T) {
	nilAllocs := testing.AllocsPerRun(2, func() { engineRunTraced(t, nil) })
	recAllocs := testing.AllocsPerRun(2, func() {
		engineRunTraced(t, span.NewRecorder(1, span.Options{}))
	})
	if nilAllocs >= recAllocs {
		t.Fatalf("nil trace allocates %.0f/run, recorder %.0f/run: the nil fast path is gone", nilAllocs, recAllocs)
	}
}

// BenchmarkEngineSpanRecorder bounds the cost of full span recording per
// campaign; compare allocs/op against BenchmarkEngineNilSink.
func BenchmarkEngineSpanRecorder(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineRunTraced(b, span.NewRecorder(1, span.Options{}))
	}
}

// TestSpanStructureIsDeterministic pins the tracer's replayability story:
// two engine runs from the same seed produce identical span streams —
// same count, order, IDs, parentage, names, and attributes — with only
// the clock readings free to vary. This is what lets the lint policy keep
// internal/obs/span on the deterministic path.
func TestSpanStructureIsDeterministic(t *testing.T) {
	runOnce := func() []span.Rec {
		col := &span.Collector{}
		engineRunTraced(t, span.NewRecorder(42, span.Options{Exporter: col}))
		return col.Snapshot()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("no spans recorded")
	}
	for i := range a {
		x, y := a[i], b[i]
		// Durations are wall clock and may differ; everything else is
		// structure and must not.
		x.StartNs, x.DurNs, y.StartNs, y.DurNs = 0, 0, 0, 0
		if x.Trace != y.Trace || x.Span != y.Span || x.Parent != y.Parent || x.Name != y.Name {
			t.Fatalf("span %d structure differs: %+v vs %+v", i, x, y)
		}
		if len(x.Attrs) != len(y.Attrs) {
			t.Fatalf("span %d attr counts differ: %+v vs %+v", i, x, y)
		}
		for j := range x.Attrs {
			if x.Attrs[j] != y.Attrs[j] {
				t.Fatalf("span %d attr %d differs: %+v vs %+v", i, j, x.Attrs[j], y.Attrs[j])
			}
		}
	}
}
