package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

// The bench-scale command: how far does one FLCC scheduling decision scale?
// For each fleet size Q it generates a key-derived SoA fleet, initializes
// the scheduler (the Algorithm 2 initialization phase), and times the
// steady-state PlanRoundInto — the full Eq. (20) utility sweep, streaming
// top-N selection, and Algorithm 3 DVFS solve for N = Q·C users — over
// warm reused buffers, exactly the hot path the fl engine drives. Results
// land in a JSON report (BENCH_scale.json at the repo root is the committed
// reference) with honest machine metadata.

// scaleModelBits matches the golden tiny-MLP payload (C_model), keeping the
// scale numbers comparable with the committed campaign artifacts.
const scaleModelBits = 208256

// scaleQs is the default sweep, three decades up to a million users.
var scaleQs = []int{100, 1000, 100000, 1000000}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	ModelBits  float64      `json:"model_bits"`
	Fraction   float64      `json:"fraction"`
	Points     []scalePoint `json:"points"`
}

type scalePoint struct {
	Q           int     `json:"q"`
	Selected    int     `json:"selected"`
	CatalogSec  float64 `json:"catalog_sec"`
	InitSec     float64 `json:"init_sec"`
	Reps        int     `json:"reps"`
	PlanMeanSec float64 `json:"plan_mean_sec"`
	PlanMinSec  float64 `json:"plan_min_sec"`
	HeapPushes  int     `json:"heap_pushes"`
}

// runBenchScale executes the sweep up to maxQ, writes the JSON report, and
// enforces budgetSec (when positive) against the largest Q's mean plan time
// — the CI gate.
func runBenchScale(seed int64, maxQ int, outPath string, budgetSec float64) error {
	ch := wireless.DefaultChannel()
	rep := scaleReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ModelBits:  scaleModelBits,
		Fraction:   core.DefaultParams().Fraction,
	}
	for _, q := range scaleQs {
		if q > maxQ {
			break
		}
		cfg := device.DefaultCatalogConfig()
		cfg.Q = q
		cfg.SamplesLow, cfg.SamplesHigh = 20, 60

		t0 := time.Now()
		fleet := device.NewFleet(cfg, seed)
		catalogSec := time.Since(t0).Seconds()

		t0 = time.Now()
		sched, err := core.NewFleetScheduler(fleet, ch, scaleModelBits, core.DefaultParams())
		if err != nil {
			return err
		}
		initSec := time.Since(t0).Seconds()

		// Warm the buffers, then time steady-state rounds. Reps scale down
		// with Q so the whole sweep stays interactive.
		var sel []int
		var freqs []float64
		sel, freqs = sched.PlanRoundInto(sel, freqs, ch, scaleModelBits)
		reps := 1000
		if q >= 100000 {
			reps = 50
		}
		if q >= 1000000 {
			reps = 20
		}
		total := 0.0
		minSec := 0.0
		for r := 0; r < reps; r++ {
			t0 = time.Now()
			sel, freqs = sched.PlanRoundInto(sel, freqs, ch, scaleModelBits)
			d := time.Since(t0).Seconds()
			total += d
			if minSec == 0 || d < minSec {
				minSec = d
			}
		}
		pt := scalePoint{
			Q:           q,
			Selected:    len(sel),
			CatalogSec:  catalogSec,
			InitSec:     initSec,
			Reps:        reps,
			PlanMeanSec: total / float64(reps),
			PlanMinSec:  minSec,
			HeapPushes:  sched.LastHeapPushes(),
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(stderr, "bench-scale: Q=%d selected=%d catalog=%.3fs init=%.3fs plan mean=%.6fs min=%.6fs (%d reps)\n",
			pt.Q, pt.Selected, pt.CatalogSec, pt.InitSec, pt.PlanMeanSec, pt.PlanMinSec, reps)
	}
	if len(rep.Points) == 0 {
		return fmt.Errorf("bench-scale: -max-q %d below the smallest sweep size %d", maxQ, scaleQs[0])
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bench-scale: wrote %s\n", outPath)
	if budgetSec > 0 {
		last := rep.Points[len(rep.Points)-1]
		if last.PlanMeanSec > budgetSec {
			return fmt.Errorf("bench-scale: Q=%d mean plan time %.4fs exceeds budget %.4fs", last.Q, last.PlanMeanSec, budgetSec)
		}
		fmt.Fprintf(stderr, "bench-scale: Q=%d mean plan %.4fs within budget %.4fs\n", last.Q, last.PlanMeanSec, budgetSec)
	}
	return nil
}
