package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"helcfl/internal/experiments"
	"helcfl/internal/fleet"
	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
)

// fleetConfig carries the dispatcher knobs for one distributed campaign.
type fleetConfig struct {
	addr    string
	journal string
	resume  bool
	ttl     time.Duration
	outDir  string
	metrics *obs.Registry
	verbose bool
	trace   *span.Recorder
}

// runFleetCoordinator is runGrid's distributed twin: it expands the same
// plan, but instead of executing cells on the local pool it leases them
// to helcfl-node workers over HTTP and merges their results into the
// same fixed-index slice, so Render sees bit-identical input either way.
// The sweep finishes when every cell completes; SIGINT/SIGTERM cancel
// the wait and exit nonzero (a journaled sweep resumes where it left
// off).
func runFleetCoordinator(ctx context.Context, def experiments.Definition, preset experiments.Preset, seed int64, opt experiments.Options, cfg fleetConfig) error {
	// Match runGrid's plan construction exactly: workers rebuild the plan
	// from (experiment, preset, seed, seeds), and the fingerprint handshake
	// rejects any skew.
	preset.Sink = obs.Synchronized(preset.Sink)
	plan, err := def.Plan(preset, seed, opt)
	if err != nil {
		return err
	}
	var logf func(format string, args ...interface{})
	if cfg.verbose {
		logf = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Info: fleet.PlanInfo{
			Experiment: def.Name,
			Preset:     preset.Name,
			Seed:       seed,
			Seeds:      opt.Seeds,
		},
		Cells:       plan.Cells,
		Decode:      experiments.DecodeCellResult,
		JournalPath: cfg.journal,
		Resume:      cfg.resume,
		LeaseTTL:    cfg.ttl,
		Log:         logf,
		Metrics:     cfg.metrics,
		Trace:       cfg.trace,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("fleet listener: %w", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(stderr, "fleet server:", err)
		}
	}()
	fmt.Fprintf(stderr, "%s: coordinating %d cells (%d remaining) on http://%s\n",
		def.Name, len(plan.Cells), coord.Remaining(), ln.Addr())
	res, waitErr := coord.Wait(ctx)
	// Stop admitting lease traffic before rendering; a short grace period
	// lets in-flight completions land their responses.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "fleet server shutdown:", err)
	}
	if waitErr != nil {
		return waitErr
	}
	_, asmSp := span.StartCtx(ctx, "grid.assemble")
	err = plan.Render(res, newOutput(cfg.outDir))
	asmSp.End()
	return err
}
