// Command helcfl regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	helcfl <experiment> [flags]
//
// Experiments (grid campaigns, run on a parallel worker pool):
//
//	fig1      reproduce the Fig. 1 slack illustration on one scheduled round
//	fig2      accuracy vs iteration for all five schemes (both settings)
//	table1    training delay to desired accuracy (Table I)
//	fig3      DVFS energy reduction (Fig. 3), plus the slack-rich regime
//	ablation  η, C, clamping, compression, faults, fading, loss-aware, RB,
//	          model architecture, partition family
//	seeds     multi-seed robustness of all orderings
//	budget    best accuracy under a training deadline (constraint 14)
//	battery   fleet lifetime under finite device batteries
//	hier      hierarchical edge-aggregation tier, E ∈ {1,2,4,8} aggregators
//	all       fig1+fig2+table1+fig3+ablation plus the headline summary,
//	          deduplicated into one campaign grid
//	bench     time an experiment serially vs in parallel, write JSON
//
// Bespoke commands (single runs, not grids):
//
//	trace       JSONL round telemetry for one scheme
//	train       train one scheme and save the global model to -model
//	eval        evaluate a saved model on a preset's test set
//	bench-scale time one FLCC round plan on synthetic fleets of
//	            Q ∈ {100, 1e3, 1e5, 1e6} users, write BENCH_scale.json
//	            (see docs/SCALE.md)
//
// Flags:
//
//	-preset        paper | fast | tiny      (default fast)
//	-seed          deterministic seed       (default 1)
//	-out           directory for CSV/JSONL  (default: none / stdout)
//	-parallel      grid worker count, 0 = GOMAXPROCS (grid experiments)
//	-setting       iid | noniid             (trace/train/eval)
//	-scheme        HELCFL | ClassicFL | FedCS | FEDL | HELCFL-noDVFS
//	-model         model file path          (train/eval)
//	-n             seed count               (seeds)
//	-experiment    experiment to time       (bench; default all)
//	-bench-out     bench JSON path          (bench)
//	-scale-out     scale JSON path          (bench-scale; default BENCH_scale.json)
//	-max-q         largest fleet size swept (bench-scale; default 1000000)
//	-budget-sec    fail if the largest Q's mean plan time exceeds this
//	               many seconds, 0 disables (bench-scale; the CI gate)
//	-metrics-addr  serve live /metrics, /healthz and /debug/pprof on this
//	               address for the duration of the run (e.g. :8080)
//	-trace-out     stream phase spans as JSONL to this file (see
//	               docs/OBSERVABILITY.md; render with helcfl-inspect trace)
//	-flightrec-out directory for flight-recorder dumps, written on panic,
//	               SIGQUIT, and at the end of the run
//	-fleet         coordinate the grid over a worker fleet instead of the
//	               local pool: listen on this address and lease cells to
//	               `helcfl-node worker` processes (see docs/GRID.md)
//	-fleet-journal journal grants/completions to this WAL so a killed
//	               coordinator can resume mid-sweep with -fleet-resume
//	-fleet-resume  resume a half-finished sweep from -fleet-journal
//	-fleet-ttl     lease duration before a silent worker's cell is
//	               reassigned (default 15s)
//	-v             progress lines on stderr (per cell for grid experiments,
//	               per round for trace/train)
//
// SIGINT/SIGTERM cancel the running campaign: in-flight cells finish,
// unstarted cells are skipped, and the command exits nonzero.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"helcfl/internal/experiments"
	"helcfl/internal/fl"
	"helcfl/internal/fleet"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/obs/flight"
	"helcfl/internal/obs/span"
	"helcfl/internal/trace"
)

// stderr is swappable so tests can capture progress output.
var stderr io.Writer = os.Stderr

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "helcfl:", err)
		os.Exit(1)
	}
}

// run is runCtx without cancellation — the test entry point.
func run(args []string) error {
	return runCtx(context.Background(), args)
}

func runCtx(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: helcfl <fig1|fig2|table1|fig3|ablation|seeds|budget|battery|hier|all|bench|trace|train|eval|bench-scale> [-preset paper|fast|tiny] [-seed N] [-parallel N] [-out dir]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	presetName := fs.String("preset", "fast", "experiment preset: paper, fast, or tiny")
	seed := fs.Int64("seed", 1, "deterministic seed")
	outDir := fs.String("out", "", "directory to write CSV artifacts into (optional)")
	parallel := fs.Int("parallel", 0, "grid worker count; 0 means GOMAXPROCS")
	nSeeds := fs.Int("n", 5, "seed count for the seeds experiment")
	scheme := fs.String("scheme", "HELCFL", "scheme for the trace experiment")
	settingName := fs.String("setting", "iid", "data setting for the trace/train/eval experiments: iid or noniid")
	modelPath := fs.String("model", "model.helcfl", "model file for train/eval")
	benchName := fs.String("experiment", "all", "experiment to time for the bench command")
	benchOut := fs.String("bench-out", "BENCH_experiments.json", "path for the bench JSON report")
	scaleOut := fs.String("scale-out", "BENCH_scale.json", "path for the bench-scale JSON report")
	maxQ := fs.Int("max-q", 1000000, "largest fleet size swept by bench-scale")
	budgetSec := fs.Float64("budget-sec", 0, "bench-scale fails if the largest Q's mean plan time exceeds this many seconds (0 disables)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address during the run")
	traceOut := fs.String("trace-out", "", "stream phase spans as JSONL to this file")
	flightDir := fs.String("flightrec-out", "", "directory for flight-recorder dumps (panic, SIGQUIT, end of run)")
	fleetAddr := fs.String("fleet", "", "coordinate this grid experiment over a worker fleet on this listen address (workers join with `helcfl-node worker`)")
	fleetJournal := fs.String("fleet-journal", "", "fleet coordinator journal path for crash recovery (empty disables)")
	fleetResume := fs.Bool("fleet-resume", false, "resume a half-finished sweep from -fleet-journal")
	fleetTTL := fs.Duration("fleet-ttl", fleet.DefaultLeaseTTL, "fleet lease duration before a silent worker's cell is reassigned")
	verbose := fs.Bool("v", false, "print progress lines to stderr")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	preset, err := experiments.LookupPreset(*presetName)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		var err error
		reg, err = serveObservability(*metricsAddr)
		if err != nil {
			return err
		}
		preset.Sink = obs.Multi(preset.Sink, obs.NewMetricsSink(reg))
	}

	trc, err := startTracing(uint64(*seed), *traceOut, *flightDir, reg)
	if err != nil {
		return err
	}
	if trc.fr != nil {
		// DumpOnPanic must be deferred here directly so its recover() sees
		// the panicking frame; it re-panics after photographing the rings.
		defer trc.fr.DumpOnPanic(trc.flightDir)
		preset.Sink = obs.Multi(preset.Sink, trc.fr.Sink())
	}
	ctx = span.NewContext(ctx, trc.rec) // nil recorder leaves ctx unchanged

	opt := experiments.Options{Seeds: *nSeeds}
	dispatch := func() error {
		switch cmd {
		case "trace":
			if *verbose {
				preset.Sink = obs.Multi(preset.Sink, &progressSink{w: stderr})
			}
			return runTrace(preset, *seed, *scheme, *settingName, *outDir, trc.rec)
		case "train":
			if *verbose {
				preset.Sink = obs.Multi(preset.Sink, &progressSink{w: stderr})
			}
			return runTrain(preset, *seed, *scheme, *settingName, *modelPath, trc.rec)
		case "eval":
			return runEval(preset, *seed, *settingName, *modelPath)
		case "bench":
			return runBench(ctx, preset, *seed, *benchName, *benchOut, opt)
		case "bench-scale":
			return runBenchScale(*seed, *maxQ, *scaleOut, *budgetSec)
		}

		def, ok := experiments.LookupExperiment(cmd)
		if !ok {
			return fmt.Errorf("unknown experiment %q", cmd)
		}
		if *fleetAddr != "" {
			return runFleetCoordinator(ctx, def, preset, *seed, opt, fleetConfig{
				addr:    *fleetAddr,
				journal: *fleetJournal,
				resume:  *fleetResume,
				ttl:     *fleetTTL,
				outDir:  *outDir,
				metrics: reg,
				verbose: *verbose,
				trace:   trc.rec,
			})
		}
		return runGrid(ctx, def, preset, *seed, opt, gridConfig{
			parallel: *parallel,
			outDir:   *outDir,
			metrics:  reg,
			verbose:  *verbose,
			announce: true,
		})
	}
	return errors.Join(dispatch(), trc.close())
}

// tracing owns the process-wide span pipeline behind -trace-out and
// -flightrec-out: one recorder seeded from -seed (so trace IDs are
// reproducible), a streaming JSONL exporter, a histogram bridge into the
// live metrics registry when -metrics-addr is on, and the flight recorder
// with its SIGQUIT handler. The zero tracing (no flags set) is inert.
type tracing struct {
	rec       *span.Recorder
	fr        *flight.Recorder
	flightDir string
	file      *os.File
	jsonl     *span.JSONL
	stop      func()
}

func startTracing(seed uint64, traceOut, flightDir string, reg *obs.Registry) (*tracing, error) {
	t := &tracing{flightDir: flightDir}
	if traceOut == "" && flightDir == "" {
		return t, nil
	}
	var exps []span.Exporter
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, fmt.Errorf("trace-out: %w", err)
		}
		t.file = f
		t.jsonl = span.NewJSONL(f)
		exps = append(exps, t.jsonl)
	}
	if b := span.NewBridge(reg); b != nil {
		exps = append(exps, b)
	}
	t.rec = span.NewRecorder(seed, span.Options{Exporter: span.Exporters(exps...)})
	if flightDir != "" {
		t.fr = flight.New(t.rec, 0)
		t.stop = t.fr.Install(flightDir)
	}
	return t, nil
}

// close releases the signal handler, photographs the end of the run (every
// traced invocation leaves a dump, not only crashed ones), and flushes the
// span stream. Stream errors surface here rather than being dropped.
func (t *tracing) close() error {
	var errs []error
	if t.stop != nil {
		t.stop()
	}
	if t.fr != nil {
		path, err := t.fr.DumpTo(t.flightDir)
		if err != nil {
			errs = append(errs, err)
		} else {
			fmt.Fprintln(stderr, "flight: dumped", path)
		}
	}
	if t.jsonl != nil {
		if err := t.jsonl.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("trace-out: %w", err))
		}
	}
	if t.file != nil {
		if err := t.file.Close(); err != nil {
			errs = append(errs, fmt.Errorf("trace-out: %w", err))
		}
	}
	return errors.Join(errs...)
}

// gridConfig carries the dispatcher knobs for one grid campaign.
type gridConfig struct {
	parallel int
	outDir   string
	metrics  *obs.Registry
	verbose  bool
	announce bool
}

// runGrid expands a registry definition and executes it on the worker pool.
func runGrid(ctx context.Context, def experiments.Definition, preset experiments.Preset, seed int64, opt experiments.Options, cfg gridConfig) error {
	// Cells capture the preset by value and their engines run concurrently,
	// so any shared sink must be serialized before the plan is built.
	preset.Sink = obs.Synchronized(preset.Sink)
	plan, err := def.Plan(preset, seed, opt)
	if err != nil {
		return err
	}
	runner := &grid.Runner{Parallel: cfg.parallel, Metrics: cfg.metrics}
	if cfg.verbose {
		runner.Progress = func(ev grid.Event) {
			if !ev.Done {
				fmt.Fprintf(stderr, "cell %s …\n", ev.Key)
				return
			}
			status := "ok"
			if ev.Err != nil {
				status = fmt.Sprintf("error: %v", ev.Err)
			}
			fmt.Fprintf(stderr, "cell [%d/%d] %s: %s\n", ev.Completed+ev.Failed, ev.Total, ev.Key, status)
		}
	}
	if cfg.announce {
		fmt.Fprintf(stderr, "%s: %d cells on %d workers\n", def.Name, len(plan.Cells), runner.Workers(len(plan.Cells)))
	}
	res, err := runner.Run(ctx, plan.Cells)
	if err != nil {
		return err
	}
	// Rendering (CSV assembly, artifact writes) is the third leg of the
	// campaign's cost next to env-build and run; give it its own span so
	// helcfl-inspect can apportion wall clock across all three.
	_, asmSp := span.StartCtx(ctx, "grid.assemble")
	err = plan.Render(res, newOutput(cfg.outDir))
	asmSp.End()
	return err
}

// newOutput renders to stdout and, when outDir is set, writes named
// artifacts there.
func newOutput(outDir string) experiments.Output {
	out := experiments.Output{W: os.Stdout}
	if outDir != "" {
		out.WriteArtifact = func(name string, data []byte) error {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(outDir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote", path)
			return nil
		}
	}
	return out
}

// benchReport is the JSON written by the bench command.
type benchReport struct {
	Experiment      string     `json:"experiment"`
	Preset          string     `json:"preset"`
	Seed            int64      `json:"seed"`
	Cells           int        `json:"cells"`
	GOMAXPROCS      int        `json:"gomaxprocs"`
	Workers         int        `json:"workers"`
	SerialSeconds   float64    `json:"serial_seconds"`
	ParallelSeconds float64    `json:"parallel_seconds"`
	Speedup         *float64   `json:"speedup,omitempty"`
	SpeedupNote     string     `json:"speedup_note,omitempty"`
	SerialCells     benchCells `json:"serial_cells"`
	ParallelCells   benchCells `json:"parallel_cells"`
}

// benchCells breaks one timed run down per cell from its span stream:
// whole-cell wall clock plus the env-build vs run split, which is what
// explains sublinear speedups (env building is memory-bandwidth bound).
type benchCells struct {
	Cell     span.Stats `json:"cell"`
	EnvBuild span.Stats `json:"env_build"`
	Run      span.Stats `json:"run"`
	Assemble span.Stats `json:"assemble"`
}

func cellStats(recs []span.Rec) benchCells {
	return benchCells{
		Cell:     span.DurationStats(recs, "grid.cell"),
		EnvBuild: span.DurationStats(recs, "cell.envbuild"),
		Run:      span.DurationStats(recs, "cell.run"),
		Assemble: span.DurationStats(recs, "grid.assemble"),
	}
}

// runBench times one experiment at -parallel 1 and at GOMAXPROCS and writes
// the comparison as JSON. Rendering goes to io.Discard; only wall clock is
// reported.
func runBench(ctx context.Context, preset experiments.Preset, seed int64, name, outPath string, opt experiments.Options) error {
	def, ok := experiments.LookupExperiment(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	preset.Sink = obs.Synchronized(preset.Sink)
	plan, err := def.Plan(preset, seed, opt)
	if err != nil {
		return err
	}
	workers := (&grid.Runner{}).Workers(len(plan.Cells))
	fmt.Fprintf(stderr, "bench %s: %d cells, serial then %d workers\n", def.Name, len(plan.Cells), workers)
	timeRun := func(parallel int) (float64, benchCells, error) {
		// Both timed runs must do the same work: drop memoized environments
		// so the serial pass can't warm the cache for the parallel pass.
		experiments.ResetEnvCache()
		runtime.GC() // don't charge one run's garbage to the other's clock
		// Each timed run records into its own span collector so the report
		// can split per-cell cost into env-build vs run (satellite of the
		// BENCH speedup analysis).
		col := &span.Collector{}
		rctx := span.NewContext(ctx, span.NewRecorder(uint64(seed), span.Options{Exporter: col}))
		start := time.Now()
		res, err := (&grid.Runner{Parallel: parallel}).Run(rctx, plan.Cells)
		if err != nil {
			return 0, benchCells{}, err
		}
		_, asmSp := span.StartCtx(rctx, "grid.assemble")
		err = plan.Render(res, experiments.Output{W: io.Discard})
		asmSp.End()
		if err != nil {
			return 0, benchCells{}, err
		}
		return time.Since(start).Seconds(), cellStats(col.Snapshot()), nil
	}
	serial, serialCells, err := timeRun(1)
	if err != nil {
		return err
	}
	par, parCells, err := timeRun(0)
	if err != nil {
		return err
	}
	rep := benchReport{
		Experiment:      def.Name,
		Preset:          preset.Name,
		Seed:            seed,
		Cells:           len(plan.Cells),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		SerialSeconds:   serial,
		ParallelSeconds: par,
		SerialCells:     serialCells,
		ParallelCells:   parCells,
	}
	// A speedup claim needs an actual parallel run to back it: on a
	// single-worker host both passes are serial, so any ratio is pure
	// run-to-run noise. Refuse to report one rather than commit a number
	// like 0.89× that reads as a parallelism regression.
	if workers > 1 && par > 0 {
		s := serial / par
		rep.Speedup = &s
	} else {
		rep.SpeedupNote = fmt.Sprintf("speedup not reported: only %d worker(s) available, both runs are serial", workers)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if rep.Speedup != nil {
		fmt.Printf("bench %s (%s): %d cells, serial %.2fs, parallel %.2fs on %d workers (%.2fx)\n",
			rep.Experiment, rep.Preset, rep.Cells, rep.SerialSeconds, rep.ParallelSeconds, rep.Workers, *rep.Speedup)
	} else {
		fmt.Printf("bench %s (%s): %d cells, serial %.2fs, parallel %.2fs on %d workers (speedup n/a)\n",
			rep.Experiment, rep.Preset, rep.Cells, rep.SerialSeconds, rep.ParallelSeconds, rep.Workers)
	}
	fmt.Println("wrote", outPath)
	return nil
}

// serveObservability starts the live metrics endpoint for the process
// lifetime and returns the registry campaign sinks should feed. Listening
// happens synchronously so a bad address fails the command immediately.
func serveObservability(addr string) (*obs.Registry, error) {
	reg := obs.Default()
	mux := http.NewServeMux()
	obs.MountDebug(mux, reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	fmt.Fprintf(stderr, "serving metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(stderr, "metrics server:", err)
		}
	}()
	return reg, nil
}

// progressSink prints one line per finished round — the -v flag on the
// bespoke single-run commands (trace, train).
type progressSink struct {
	obs.NopSink
	w       io.Writer
	scheme  string
	lastAcc float64
	hasAcc  bool
}

func (p *progressSink) OnRunStart(ev obs.RunStartEvent) {
	p.scheme, p.lastAcc, p.hasAcc = ev.Scheme, 0, false
	fmt.Fprintf(p.w, "%s: starting, %d users, %d round budget\n", ev.Scheme, ev.Users, ev.MaxRounds)
}

func (p *progressSink) OnRoundEnd(ev obs.RoundEndEvent) {
	if ev.Evaluated {
		p.lastAcc, p.hasAcc = ev.TestAccuracy, true
	}
	acc := "--"
	if p.hasAcc {
		acc = fmt.Sprintf("%.2f%%", p.lastAcc*100)
	}
	fmt.Fprintf(p.w, "%s round %d: %d selected, delay %.2fs, cum energy %.1fJ, test acc %s\n",
		p.scheme, ev.Round, len(ev.Selected), ev.DelaySec, ev.CumEnergyJ, acc)
}

func (p *progressSink) OnRunEnd(ev obs.RunEndEvent) {
	fmt.Fprintf(p.w, "%s: done after %d rounds, %.1fs simulated, %.1fJ, best acc %.2f%%\n",
		ev.Scheme, ev.Rounds, ev.TotalTimeSec, ev.TotalEnergyJ, ev.BestAccuracy*100)
}

func runTrace(p experiments.Preset, seed int64, scheme, settingName, outDir string, rec *span.Recorder) error {
	setting, err := parseSetting(settingName)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if outDir != "" {
		name := filepath.Join(outDir, fmt.Sprintf("trace_%s_%s_%s.jsonl", p.Name, setting, scheme))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		fmt.Fprintln(os.Stderr, "writing", name)
	}
	// Stream rounds through the event sink as they finish, instead of
	// dumping fl.Result post hoc: an interrupted run keeps a valid prefix.
	sink := trace.NewSink(out)
	p.Sink = obs.Multi(p.Sink, sink)
	env, err := experiments.BuildEnv(p, setting, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracing %s (%s, preset %s) …\n", scheme, setting, p.Name)
	if _, _, err := experiments.RunSchemeWith(env, scheme, func(c *fl.Config) { c.Trace = rec }); err != nil {
		return err
	}
	return sink.Flush()
}

func parseSetting(name string) (experiments.Setting, error) {
	switch name {
	case "iid":
		return experiments.IID, nil
	case "noniid":
		return experiments.NonIID, nil
	default:
		return "", fmt.Errorf("unknown setting %q (want iid or noniid)", name)
	}
}

func runTrain(p experiments.Preset, seed int64, scheme, settingName, modelPath string, rec *span.Recorder) error {
	setting, err := parseSetting(settingName)
	if err != nil {
		return err
	}
	env, err := experiments.BuildEnv(p, setting, seed)
	if err != nil {
		return err
	}
	fmt.Printf("training %s (%s, preset %s) …\n", scheme, setting, p.Name)
	curve, res, err := experiments.RunSchemeWith(env, scheme, func(c *fl.Config) { c.Trace = rec })
	if err != nil {
		return err
	}
	fmt.Printf("best accuracy %.2f%%, total delay %.1f min, total energy %.1f J\n",
		curve.Best()*100, res.TotalTime/60, res.TotalEnergy)
	if err := nn.SaveModel(modelPath, env.Spec, res.Model); err != nil {
		return err
	}
	fmt.Println("saved", modelPath)
	return nil
}

func runEval(p experiments.Preset, seed int64, settingName, modelPath string) error {
	setting, err := parseSetting(settingName)
	if err != nil {
		return err
	}
	spec, model, err := nn.LoadModel(modelPath)
	if err != nil {
		return err
	}
	env, err := experiments.BuildEnv(p, setting, seed)
	if err != nil {
		return err
	}
	loss, acc := fl.Evaluate(model, env.Synth.Test, spec.FlattensInput())
	fmt.Printf("%s on %s/%s test set: loss %.4f, accuracy %.2f%%\n",
		modelPath, p.Name, setting, loss, acc*100)
	fmt.Println(metrics.ConfusionOf(model, env.Synth.Test, spec.Classes, spec.FlattensInput()))
	return nil
}
