// Command helcfl regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	helcfl <experiment> [flags]
//
// Experiments:
//
//	fig1      reproduce the Fig. 1 slack illustration on one scheduled round
//	fig2      accuracy vs iteration for all five schemes (both settings)
//	table1    training delay to desired accuracy (Table I)
//	fig3      DVFS energy reduction (Fig. 3), plus the slack-rich regime
//	ablation  η, C, clamping, compression, faults, fading, loss-aware, RB,
//	          model architecture, partition family
//	seeds     multi-seed robustness of all orderings
//	budget    best accuracy under a training deadline (constraint 14)
//	battery   fleet lifetime under finite device batteries
//	trace     JSONL round telemetry for one scheme
//	train     train one scheme and save the global model to -model
//	eval      evaluate a saved model on a preset's test set
//	all       fig1+fig2+table1+fig3+ablation plus the headline summary
//
// Flags:
//
//	-preset        paper | fast | tiny      (default fast)
//	-seed          deterministic seed       (default 1)
//	-out           directory for CSV/JSONL  (default: none / stdout)
//	-setting       iid | noniid             (trace/train/eval)
//	-scheme        HELCFL | ClassicFL | FedCS | FEDL | HELCFL-noDVFS
//	-model         model file path          (train/eval)
//	-n             seed count               (seeds)
//	-metrics-addr  serve live /metrics, /healthz and /debug/pprof on this
//	               address for the duration of the run (e.g. :8080)
//	-v             per-round progress lines on stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"helcfl/internal/experiments"
	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/trace"
)

// stderr is swappable so tests can capture progress output.
var stderr io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "helcfl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: helcfl <fig1|fig2|table1|fig3|ablation|seeds|trace|all> [-preset paper|fast|tiny] [-seed N] [-out dir]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	presetName := fs.String("preset", "fast", "experiment preset: paper, fast, or tiny")
	seed := fs.Int64("seed", 1, "deterministic seed")
	outDir := fs.String("out", "", "directory to write CSV artifacts into (optional)")
	nSeeds := fs.Int("n", 5, "seed count for the seeds experiment")
	scheme := fs.String("scheme", "HELCFL", "scheme for the trace experiment")
	settingName := fs.String("setting", "iid", "data setting for the trace/train/eval experiments: iid or noniid")
	modelPath := fs.String("model", "model.helcfl", "model file for train/eval")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address during the run")
	verbose := fs.Bool("v", false, "print per-round progress lines to stderr")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	var preset experiments.Preset
	switch *presetName {
	case "paper":
		preset = experiments.Paper()
	case "fast":
		preset = experiments.Fast()
	case "tiny":
		preset = experiments.Tiny()
	default:
		return fmt.Errorf("unknown preset %q", *presetName)
	}

	if *metricsAddr != "" {
		reg, err := serveObservability(*metricsAddr)
		if err != nil {
			return err
		}
		preset.Sink = obs.Multi(preset.Sink, obs.NewMetricsSink(reg))
	}
	if *verbose {
		preset.Sink = obs.Multi(preset.Sink, &progressSink{w: stderr})
	}

	switch cmd {
	case "fig1":
		return runFig1(preset, *seed)
	case "fig2":
		return runFig2(preset, *seed, *outDir, nil)
	case "table1":
		return runTable1(preset, *seed, nil)
	case "fig3":
		return runFig3(preset, *seed)
	case "ablation":
		return runAblation(preset, *seed)
	case "seeds":
		return runSeeds(preset, *seed, *nSeeds)
	case "budget":
		return runBudget(preset, *seed)
	case "battery":
		return runBattery(preset, *seed)
	case "trace":
		return runTrace(preset, *seed, *scheme, *settingName, *outDir)
	case "train":
		return runTrain(preset, *seed, *scheme, *settingName, *modelPath)
	case "eval":
		return runEval(preset, *seed, *settingName, *modelPath)
	case "all":
		return runAll(preset, *seed, *outDir)
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

// serveObservability starts the live metrics endpoint for the process
// lifetime and returns the registry campaign sinks should feed. Listening
// happens synchronously so a bad address fails the command immediately.
func serveObservability(addr string) (*obs.Registry, error) {
	reg := obs.Default()
	mux := http.NewServeMux()
	obs.MountDebug(mux, reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	fmt.Fprintf(stderr, "serving metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(stderr, "metrics server:", err)
		}
	}()
	return reg, nil
}

// progressSink prints one line per finished round — the -v flag.
type progressSink struct {
	obs.NopSink
	w       io.Writer
	scheme  string
	lastAcc float64
	hasAcc  bool
}

func (p *progressSink) OnRunStart(ev obs.RunStartEvent) {
	p.scheme, p.lastAcc, p.hasAcc = ev.Scheme, 0, false
	fmt.Fprintf(p.w, "%s: starting, %d users, %d round budget\n", ev.Scheme, ev.Users, ev.MaxRounds)
}

func (p *progressSink) OnRoundEnd(ev obs.RoundEndEvent) {
	if ev.Evaluated {
		p.lastAcc, p.hasAcc = ev.TestAccuracy, true
	}
	acc := "--"
	if p.hasAcc {
		acc = fmt.Sprintf("%.2f%%", p.lastAcc*100)
	}
	fmt.Fprintf(p.w, "%s round %d: %d selected, delay %.2fs, cum energy %.1fJ, test acc %s\n",
		p.scheme, ev.Round, len(ev.Selected), ev.DelaySec, ev.CumEnergyJ, acc)
}

func (p *progressSink) OnRunEnd(ev obs.RunEndEvent) {
	fmt.Fprintf(p.w, "%s: done after %d rounds, %.1fs simulated, %.1fJ, best acc %.2f%%\n",
		ev.Scheme, ev.Rounds, ev.TotalTimeSec, ev.TotalEnergyJ, ev.BestAccuracy*100)
}

func runFig1(p experiments.Preset, seed int64) error {
	demo, err := experiments.RunFig1Demo(p, seed)
	if err != nil {
		return err
	}
	maxG, dvfsG := demo.RenderGantt()
	fmt.Println(maxG)
	fmt.Println(dvfsG)
	maxTbl, dvfsTbl := demo.Render()
	fmt.Println(maxTbl)
	fmt.Println(dvfsTbl)
	fmt.Printf("compute energy: %.2f J at max frequency → %.2f J with Algorithm 3 (%.1f%% saved)\n",
		demo.MaxFreq.ComputeEnergy, demo.WithDVFS.ComputeEnergy,
		(1-demo.WithDVFS.ComputeEnergy/demo.MaxFreq.ComputeEnergy)*100)
	return nil
}

// runFig2 executes both settings; when sink is non-nil the results are also
// stored there for reuse (table1, headline).
func runFig2(p experiments.Preset, seed int64, outDir string, sink map[experiments.Setting]*experiments.Fig2Result) error {
	for _, s := range []experiments.Setting{experiments.IID, experiments.NonIID} {
		fmt.Printf("running Fig. 2 (%s) on preset %q …\n", s, p.Name)
		fig, err := experiments.RunFig2(p, s, seed)
		if err != nil {
			return err
		}
		if sink != nil {
			sink[s] = fig
		}
		chart, tbl := experiments.RenderFig2(fig)
		fmt.Println(chart)
		fmt.Println(tbl)
		if outDir != "" {
			name := filepath.Join(outDir, fmt.Sprintf("fig2_%s_%s.csv", p.Name, s))
			if err := os.WriteFile(name, []byte(experiments.Fig2CSV(fig)), 0o644); err != nil {
				return err
			}
			fmt.Println("wrote", name)
		}
	}
	return nil
}

func runTable1(p experiments.Preset, seed int64, figs map[experiments.Setting]*experiments.Fig2Result) error {
	if figs == nil {
		figs = map[experiments.Setting]*experiments.Fig2Result{}
		for _, s := range []experiments.Setting{experiments.IID, experiments.NonIID} {
			fmt.Printf("running campaign for Table I (%s) …\n", s)
			f, err := experiments.RunFig2(p, s, seed)
			if err != nil {
				return err
			}
			figs[s] = f
		}
	}
	tbl := experiments.BuildTableI(p, figs)
	for _, blk := range tbl.Settings {
		fmt.Println(blk.Render())
		for i, target := range blk.Targets {
			sp := blk.Speedups(i)
			if len(sp) == 0 {
				continue
			}
			fmt.Printf("  speedups at %.0f%%:", target*100)
			for _, scheme := range experiments.SchemeOrder {
				if v, ok := sp[scheme]; ok {
					fmt.Printf(" %s %.1f%%", scheme, v)
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
	return nil
}

func runFig3(p experiments.Preset, seed int64) error {
	for _, s := range []experiments.Setting{experiments.IID, experiments.NonIID} {
		fmt.Printf("running Fig. 3 (%s) …\n", s)
		f3, err := experiments.RunFig3(p, s, seed)
		if err != nil {
			return err
		}
		bars, tbl := f3.Render()
		fmt.Println(bars)
		fmt.Println(tbl)
	}
	fmt.Println("slack-rich regime (maximal DVFS savings; see DESIGN.md):")
	f3u, err := experiments.RunFig3(experiments.SlackRich(p), experiments.IID, seed)
	if err != nil {
		return err
	}
	_, tbl := f3u.Render()
	fmt.Println(tbl)
	return nil
}

func runAblation(p experiments.Preset, seed int64) error {
	fmt.Println("η sweep …")
	etaAb, err := experiments.RunEtaAblation(p, experiments.NonIID, seed, []float64{0.5, 0.7, 0.9, 0.99})
	if err != nil {
		return err
	}
	fmt.Println(etaAb.Render())

	fmt.Println("selection-fraction sweep …")
	frAb, err := experiments.RunFractionAblation(p, experiments.IID, seed, []float64{0.05, 0.1, 0.2})
	if err != nil {
		return err
	}
	fmt.Println(frAb.Render())

	fmt.Println("Algorithm 3 clamping study …")
	clAb, err := experiments.RunClampAblation(p, experiments.IID, seed, 100)
	if err != nil {
		return err
	}
	fmt.Println(clAb.Render())

	fmt.Println("upload compression vs scheduling …")
	cAb, err := experiments.RunCompressionAblation(p, experiments.IID, seed, experiments.DefaultCompressors())
	if err != nil {
		return err
	}
	fmt.Println(cAb.Render())

	fmt.Println("upload-failure injection …")
	dAb, err := experiments.RunDropoutAblation(p, experiments.IID, seed, []float64{0, 0.1, 0.3})
	if err != nil {
		return err
	}
	fmt.Println(dAb.Render())

	fmt.Println("block-fading channel …")
	fAb, err := experiments.RunFadingAblation(p, experiments.IID, seed, []float64{0, 0.3, 0.6})
	if err != nil {
		return err
	}
	fmt.Println(fAb.Render())

	fmt.Println("loss-aware utility extension …")
	ext, err := experiments.RunLossAwareExtension(p, experiments.NonIID, seed, []float64{0.5, 1.0})
	if err != nil {
		return err
	}
	fmt.Println(ext.Render())

	fmt.Println("RB interpretation (serial vs parallel sub-channels) …")
	rb, err := experiments.RunRBAblation(p, seed, 100, []int{1, 2, 5, 10})
	if err != nil {
		return err
	}
	fmt.Println(rb.Render())

	fmt.Println("model architecture (C_model coupling) …")
	ma, err := experiments.RunModelAblation(p, experiments.IID, seed, []string{"logistic", "mlp"})
	if err != nil {
		return err
	}
	fmt.Println(ma.Render())

	fmt.Println("partition family (shards vs Dirichlet) …")
	pa, err := experiments.RunPartitionAblation(p, seed, []float64{0.2, 1.0, 5.0})
	if err != nil {
		return err
	}
	fmt.Println(pa.Render())

	fmt.Println("discrete DVFS levels …")
	dl, err := experiments.RunDVFSLevelsAblation(p, experiments.IID, seed, []int{0, 16, 8, 4, 2})
	if err != nil {
		return err
	}
	fmt.Println(dl.Render())

	fmt.Println("selection fairness …")
	fa, err := experiments.RunFairnessStudy(p, seed, 200)
	if err != nil {
		return err
	}
	fmt.Println(fa.Render())
	return nil
}

func runBudget(p experiments.Preset, seed int64) error {
	// Budgets at roughly 1/8 and 1/2 of a full campaign's duration.
	for _, budget := range []float64{180, 720} {
		for _, s := range []experiments.Setting{experiments.IID, experiments.NonIID} {
			fmt.Printf("running deadline-budget campaign (%s, %.0f s) …\n", s, budget)
			db, err := experiments.RunDeadlineBudget(p, s, seed, budget)
			if err != nil {
				return err
			}
			fmt.Println(db.Render())
		}
	}
	return nil
}

func runBattery(p experiments.Preset, seed int64) error {
	for _, s := range []experiments.Setting{experiments.IID, experiments.NonIID} {
		fmt.Printf("running battery campaign (%s) …\n", s)
		bc, err := experiments.RunBatteryCampaign(p, s, seed, 8)
		if err != nil {
			return err
		}
		fmt.Println(bc.Render())
	}
	return nil
}

func runSeeds(p experiments.Preset, seed int64, n int) error {
	if n <= 0 {
		return fmt.Errorf("seed count %d must be positive", n)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	for _, s := range []experiments.Setting{experiments.IID, experiments.NonIID} {
		fmt.Printf("running %d-seed campaign (%s) …\n", n, s)
		ms, err := experiments.RunMultiSeed(p, s, seeds)
		if err != nil {
			return err
		}
		fmt.Println(ms.Render())
	}
	return nil
}

func runTrace(p experiments.Preset, seed int64, scheme, settingName, outDir string) error {
	setting, err := parseSetting(settingName)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if outDir != "" {
		name := filepath.Join(outDir, fmt.Sprintf("trace_%s_%s_%s.jsonl", p.Name, setting, scheme))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		fmt.Fprintln(os.Stderr, "writing", name)
	}
	// Stream rounds through the event sink as they finish, instead of
	// dumping fl.Result post hoc: an interrupted run keeps a valid prefix.
	sink := trace.NewSink(out)
	p.Sink = obs.Multi(p.Sink, sink)
	env, err := experiments.BuildEnv(p, setting, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracing %s (%s, preset %s) …\n", scheme, setting, p.Name)
	if _, _, err := experiments.RunScheme(env, scheme); err != nil {
		return err
	}
	return sink.Flush()
}

func parseSetting(name string) (experiments.Setting, error) {
	switch name {
	case "iid":
		return experiments.IID, nil
	case "noniid":
		return experiments.NonIID, nil
	default:
		return "", fmt.Errorf("unknown setting %q (want iid or noniid)", name)
	}
}

func runTrain(p experiments.Preset, seed int64, scheme, settingName, modelPath string) error {
	setting, err := parseSetting(settingName)
	if err != nil {
		return err
	}
	env, err := experiments.BuildEnv(p, setting, seed)
	if err != nil {
		return err
	}
	fmt.Printf("training %s (%s, preset %s) …\n", scheme, setting, p.Name)
	curve, res, err := experiments.RunScheme(env, scheme)
	if err != nil {
		return err
	}
	fmt.Printf("best accuracy %.2f%%, total delay %.1f min, total energy %.1f J\n",
		curve.Best()*100, res.TotalTime/60, res.TotalEnergy)
	if err := nn.SaveModel(modelPath, env.Spec, res.Model); err != nil {
		return err
	}
	fmt.Println("saved", modelPath)
	return nil
}

func runEval(p experiments.Preset, seed int64, settingName, modelPath string) error {
	setting, err := parseSetting(settingName)
	if err != nil {
		return err
	}
	spec, model, err := nn.LoadModel(modelPath)
	if err != nil {
		return err
	}
	env, err := experiments.BuildEnv(p, setting, seed)
	if err != nil {
		return err
	}
	loss, acc := fl.Evaluate(model, env.Synth.Test, spec.FlattensInput())
	fmt.Printf("%s on %s/%s test set: loss %.4f, accuracy %.2f%%\n",
		modelPath, p.Name, setting, loss, acc*100)
	fmt.Println(metrics.ConfusionOf(model, env.Synth.Test, spec.Classes, spec.FlattensInput()))
	return nil
}

func runAll(p experiments.Preset, seed int64, outDir string) error {
	if err := runFig1(p, seed); err != nil {
		return err
	}
	figs := map[experiments.Setting]*experiments.Fig2Result{}
	if err := runFig2(p, seed, outDir, figs); err != nil {
		return err
	}
	if err := runTable1(p, seed, figs); err != nil {
		return err
	}
	fig3s := map[experiments.Setting]*experiments.Fig3Result{}
	for _, s := range []experiments.Setting{experiments.IID, experiments.NonIID} {
		fmt.Printf("running Fig. 3 (%s) …\n", s)
		f3, err := experiments.RunFig3(p, s, seed)
		if err != nil {
			return err
		}
		fig3s[s] = f3
		bars, tbl := f3.Render()
		fmt.Println(bars)
		fmt.Println(tbl)
	}
	if err := runAblation(p, seed); err != nil {
		return err
	}
	tbl := experiments.BuildTableI(p, figs)
	fmt.Println(experiments.BuildHeadline(figs, tbl, fig3s).Render())
	return nil
}
