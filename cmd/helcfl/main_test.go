package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The CLI is a thin wrapper over internal/experiments; these tests exercise
// argument parsing and each subcommand's happy path at tiny scale.

func TestRunUsageAndUnknowns(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args must error")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := run([]string{"fig1", "-preset", "bogus"}); err == nil {
		t.Fatal("unknown preset must error")
	}
	if err := run([]string{"fig1", "-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag must error")
	}
	if err := run([]string{"trace", "-preset", "tiny", "-setting", "weird"}); err == nil {
		t.Fatal("bad setting must error")
	}
}

func TestRunFig1Tiny(t *testing.T) {
	if err := run([]string{"fig1", "-preset", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrainEvalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "m.helcfl")
	if err := run([]string{"train", "-preset", "tiny", "-model", model}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model file not written")
	}
	if err := run([]string{"eval", "-preset", "tiny", "-model", model}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"eval", "-preset", "tiny", "-model", filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing model must error")
	}
}

func TestRunTraceWritesFile(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"trace", "-preset", "tiny", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "trace_*.jsonl"))
	if len(matches) != 1 {
		t.Fatalf("trace files = %v", matches)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || len(data) == 0 {
		t.Fatalf("trace file empty: %v", err)
	}
}

func TestRunSeedsValidatesCount(t *testing.T) {
	if err := run([]string{"seeds", "-preset", "tiny", "-n", "0"}); err == nil {
		t.Fatal("zero seed count must error")
	}
}

func TestRunBatteryTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("battery campaign trains ten runs")
	}
	if err := run([]string{"battery", "-preset", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeedsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign is slow")
	}
	if err := run([]string{"seeds", "-preset", "tiny", "-n", "2"}); err != nil {
		t.Fatal(err)
	}
}

// The full artifact pipeline at tiny scale: every figure, table, ablation,
// and the headline block render without error and the CSVs land on disk.
func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"all", "-preset", "tiny", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "fig2_tiny_*.csv"))
	if len(matches) != 2 {
		t.Fatalf("fig2 CSVs = %v", matches)
	}
}
