package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"helcfl/internal/obs/span"
	"helcfl/internal/trace"
)

// The CLI is a thin wrapper over internal/experiments; these tests exercise
// argument parsing and each subcommand's happy path at tiny scale.

func TestRunUsageAndUnknowns(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args must error")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := run([]string{"fig1", "-preset", "bogus"}); err == nil {
		t.Fatal("unknown preset must error")
	}
	if err := run([]string{"fig1", "-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag must error")
	}
	if err := run([]string{"trace", "-preset", "tiny", "-setting", "weird"}); err == nil {
		t.Fatal("bad setting must error")
	}
}

func TestRunFig1Tiny(t *testing.T) {
	if err := run([]string{"fig1", "-preset", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrainEvalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "m.helcfl")
	if err := run([]string{"train", "-preset", "tiny", "-model", model}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model file not written")
	}
	if err := run([]string{"eval", "-preset", "tiny", "-model", model}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"eval", "-preset", "tiny", "-model", filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing model must error")
	}
}

func TestRunTraceWritesFile(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"trace", "-preset", "tiny", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "trace_*.jsonl"))
	if len(matches) != 1 {
		t.Fatalf("trace files = %v", matches)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || len(data) == 0 {
		t.Fatalf("trace file empty: %v", err)
	}
}

// TestRunVerboseWithLiveMetrics drives a traced campaign with -v and
// -metrics-addr: the progress lines land on stderr, the live /metrics
// endpoint serves the campaign counters, and the streamed JSONL validates.
func TestRunVerboseWithLiveMetrics(t *testing.T) {
	var buf bytes.Buffer
	old := stderr
	stderr = &buf
	defer func() { stderr = old }()

	dir := t.TempDir()
	if err := run([]string{"trace", "-preset", "tiny", "-v", "-metrics-addr", "127.0.0.1:0", "-out", dir}); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "HELCFL: starting, 16 users") {
		t.Fatalf("missing run-start line in:\n%s", out)
	}
	// Per-round summaries carry selection size, delay, energy and accuracy.
	roundLine := regexp.MustCompile(`HELCFL round \d+: \d+ selected, delay \d+\.\d+s, cum energy \d+\.\d+J, test acc `)
	if !roundLine.MatchString(out) {
		t.Fatalf("missing per-round progress lines in:\n%s", out)
	}
	if !strings.Contains(out, "HELCFL: done after") {
		t.Fatalf("missing run-end line in:\n%s", out)
	}

	// The metrics endpoint announced its bound address; scrape it live.
	m := regexp.MustCompile(`serving metrics on (http://[^/]+/metrics)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("metrics address not announced in:\n%s", out)
	}
	resp, err := http.Get(m[1])
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"helcfl_rounds_total", "helcfl_round_delay_seconds_bucket",
		`helcfl_energy_joules_total{kind="compute"}`,
		`helcfl_selection_count{user="0"}`,
		"helcfl_slack_reclaimed_seconds_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// The trace streamed through the same event stream stays valid.
	matches, _ := filepath.Glob(filepath.Join(dir, "trace_*.jsonl"))
	if len(matches) != 1 {
		t.Fatalf("trace files = %v", matches)
	}
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("streamed trace is empty")
	}
}

func TestRunRejectsBadMetricsAddr(t *testing.T) {
	if err := run([]string{"fig1", "-preset", "tiny", "-metrics-addr", "256.0.0.1:bogus"}); err == nil {
		t.Fatal("unusable metrics address must error")
	}
}

func TestRunSeedsValidatesCount(t *testing.T) {
	if err := run([]string{"seeds", "-preset", "tiny", "-n", "0"}); err == nil {
		t.Fatal("zero seed count must error")
	}
}

func TestRunBatteryTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("battery campaign trains ten runs")
	}
	if err := run([]string{"battery", "-preset", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeedsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign is slow")
	}
	if err := run([]string{"seeds", "-preset", "tiny", "-n", "2"}); err != nil {
		t.Fatal(err)
	}
}

// The full artifact pipeline at tiny scale: every figure, table, ablation,
// and the headline block render without error and the CSVs land on disk.
func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"all", "-preset", "tiny", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "fig2_tiny_*.csv"))
	if len(matches) != 2 {
		t.Fatalf("fig2 CSVs = %v", matches)
	}
}

func TestRunParallelFlag(t *testing.T) {
	if err := run([]string{"fig2", "-preset", "tiny", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runCtx(ctx, []string{"fig2", "-preset", "tiny"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: err = %v, want context.Canceled", err)
	}
}

func TestRunBenchWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"bench", "-preset", "tiny", "-experiment", "fig1", "-bench-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if rep.Experiment != "fig1" || rep.Cells != 1 || rep.SerialSeconds <= 0 || rep.ParallelSeconds <= 0 {
		t.Fatalf("implausible bench report: %+v", rep)
	}
	// The per-cell span stats cover every cell in both timed runs. (fig1's
	// bespoke cell has no env-build split; the fig2 trace test pins that.)
	for _, cells := range []benchCells{rep.SerialCells, rep.ParallelCells} {
		if cells.Cell.Count != rep.Cells || cells.Cell.MaxSec <= 0 || cells.Assemble.Count != 1 {
			t.Fatalf("bench cell stats implausible: %+v", cells)
		}
	}
}

// TestRunFig2TraceOut is the acceptance path for the span pipeline: a fig2
// campaign with -trace-out and -flightrec-out must stream spans covering
// every recorded round's plan/train/upload/aggregate phases, record the
// per-cell env-build vs run split, and leave a flight dump on exit.
func TestRunFig2TraceOut(t *testing.T) {
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	flightDir := filepath.Join(dir, "flight")
	if err := run([]string{"fig2", "-preset", "tiny", "-parallel", "2",
		"-trace-out", spansPath, "-flightrec-out", flightDir}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := span.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := span.Validate(recs); err != nil {
		t.Fatal(err)
	}

	// Every recorded round span must have all four required phase children.
	type key struct{ trace, span uint64 }
	phases := map[key]map[string]bool{}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Name]++
		if strings.HasPrefix(r.Name, "fl.round.") {
			k := key{r.Trace, r.Parent}
			if phases[k] == nil {
				phases[k] = map[string]bool{}
			}
			phases[k][r.Name] = true
		}
	}
	rounds := 0
	for _, r := range recs {
		if r.Name != "fl.round" {
			continue
		}
		rounds++
		for _, want := range []string{"fl.round.plan", "fl.round.train", "fl.round.upload", "fl.round.aggregate"} {
			if !phases[key{r.Trace, r.Span}][want] {
				t.Fatalf("round span %016x-%016x missing %s", r.Trace, r.Span, want)
			}
		}
	}
	if rounds == 0 {
		t.Fatal("no round spans recorded")
	}
	// The campaign layer reports env-build vs run per cell, plus assembly.
	if counts["grid.campaign"] != 1 || counts["grid.cell"] == 0 ||
		counts["cell.envbuild"] != counts["grid.cell"] || counts["cell.run"] != counts["grid.cell"] ||
		counts["grid.assemble"] != 1 {
		t.Fatalf("campaign span counts off: %v", counts)
	}
	if counts["sched.select"] == 0 || counts["sched.dvfs"] == 0 {
		t.Fatalf("scheduler spans missing: %v", counts)
	}

	// End-of-run flight dump exists and is span.Read-compatible.
	dumps, _ := filepath.Glob(filepath.Join(flightDir, "flightrec-*.jsonl"))
	if len(dumps) != 1 {
		t.Fatalf("flight dumps = %v", dumps)
	}
	df, err := os.Open(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if _, err := span.Read(df); err != nil {
		t.Fatalf("span.Read on flight dump: %v", err)
	}
}

// TestRunTraceSpanInterop runs the bespoke trace command with both
// telemetry streams on and cross-checks them: the span file's fl.round
// spans must agree one-for-one with the internal/trace round records.
func TestRunTraceSpanInterop(t *testing.T) {
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	if err := run([]string{"trace", "-preset", "tiny", "-out", dir, "-trace-out", spansPath}); err != nil {
		t.Fatal(err)
	}

	matches, _ := filepath.Glob(filepath.Join(dir, "trace_*.jsonl"))
	if len(matches) != 1 {
		t.Fatalf("trace files = %v", matches)
	}
	tf, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	trecs, err := trace.Read(tf)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	srecs, err := span.Read(sf)
	if err != nil {
		t.Fatal(err)
	}

	spanRounds := map[int64]bool{}
	for _, r := range srecs {
		if r.Name != "fl.round" {
			continue
		}
		j, ok := r.IntAttr("round")
		if !ok {
			t.Fatal("round span without round attribute")
		}
		spanRounds[j] = true
	}
	if len(spanRounds) != len(trecs) {
		t.Fatalf("%d round spans vs %d trace records", len(spanRounds), len(trecs))
	}
	for _, tr := range trecs {
		if !spanRounds[int64(tr.Round)] {
			t.Fatalf("trace record round %d has no matching span", tr.Round)
		}
	}
}
