// Command helcfl-inspect summarizes JSONL training traces produced by
// `helcfl trace -out <dir>` (or any writer of internal/trace records):
// per-scheme cost totals, round-delay statistics, and the accuracy curve.
//
//	helcfl-inspect trace1.jsonl [trace2.jsonl ...]
//	helcfl trace -preset tiny | helcfl-inspect -
//
// The trace subcommand instead reads span JSONL streams from
// `helcfl ... -trace-out` (or flight-recorder dumps) and renders the
// per-round phase cost table, phase summary, and slowest-cells report;
// it exits nonzero when a recorded round is missing a required phase:
//
//	helcfl-inspect trace [-k 5] spans.jsonl [more.jsonl ...]
package main

import (
	"fmt"
	"io"
	"os"

	"helcfl/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "helcfl-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: helcfl-inspect <trace.jsonl ...> | helcfl-inspect trace <spans.jsonl ...> (use - for stdin)")
	}
	if args[0] == "trace" {
		return runTraceCmd(args[1:])
	}
	var recs []trace.Record
	for _, name := range args {
		var r io.Reader
		if name == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		batch, err := trace.Read(r)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		recs = append(recs, batch...)
	}
	if len(recs) == 0 {
		return fmt.Errorf("no records found")
	}
	if err := trace.Validate(recs); err != nil {
		fmt.Fprintln(os.Stderr, "warning:", err)
	}
	fmt.Println(trace.RenderSummaries(trace.Summarize(recs)))
	chart := trace.AccuracyChart(recs)
	fmt.Println(chart)
	return nil
}
