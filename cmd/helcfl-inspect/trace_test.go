package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"helcfl/internal/obs/span"
)

// writeSpans records a synthetic run through a real recorder and writes
// the JSONL stream to a file; skip lists phase spans to omit.
func writeSpans(t *testing.T, path string, rounds int, skip ...string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jl := span.NewJSONL(f)
	rec := span.NewRecorder(7, span.Options{Exporter: jl})
	skipped := map[string]bool{}
	for _, s := range skip {
		skipped[s] = true
	}

	run := rec.Start(span.Ref{}, "fl.run")
	run.SetStr("scheme", "HELCFL")
	for j := 0; j < rounds; j++ {
		round := rec.Start(run.Ref(), "fl.round")
		round.SetInt("round", int64(j))
		round.SetFloat("model_delay_sec", 1.5)
		round.SetFloat("model_energy_j", 12.5)
		for _, name := range []string{"fl.round.plan", "fl.round.train", "fl.round.upload", "fl.round.aggregate", "fl.round.eval"} {
			if skipped[name] {
				continue
			}
			sp := rec.Start(round.Ref(), name)
			sp.End()
		}
		round.End()
	}
	run.End()

	camp := rec.Start(span.Ref{}, "grid.campaign")
	for i := 0; i < 3; i++ {
		cell := rec.Start(camp.Ref(), "grid.cell")
		cell.SetStr("key", "fig2/HELCFL/iid")
		env := rec.Start(cell.Ref(), "cell.envbuild")
		env.End()
		cr := rec.Start(cell.Ref(), "cell.run")
		cr.End()
		cell.End()
	}
	camp.End()

	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCmdRendersAndPasses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	writeSpans(t, path, 2)
	if err := runTraceCmd([]string{"-k", "2", path}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCmdFailsOnMissingPhase(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	writeSpans(t, path, 2, "fl.round.upload")
	err := runTraceCmd([]string{path})
	if err == nil || !strings.Contains(err.Error(), "missing required phases") {
		t.Fatalf("missing upload phase must fail the gate, got %v", err)
	}
}

func TestTraceCmdUsageAndBadInput(t *testing.T) {
	if err := runTraceCmd(nil); err == nil {
		t.Fatal("no args must error")
	}
	if err := runTraceCmd([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag must error")
	}
	if err := runTraceCmd([]string{filepath.Join(t.TempDir(), "missing.jsonl")}); err == nil {
		t.Fatal("missing file must error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTraceCmd([]string{empty}); err == nil {
		t.Fatal("empty stream must error")
	}
}

// TestRenderTraceOutput pins the report shape: run header with scheme,
// per-round rows with modeled columns, phase summary, orphan-round
// grouping, and the slowest-cells split.
func TestRenderTraceOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	writeSpans(t, path, 2)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := span.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	// An orphan round: its fl.run parent is not in the stream.
	recs = append(recs, span.Rec{Trace: 99, Span: 500, Parent: 400, Name: "fl.round", V: span.SchemaVersion,
		Attrs: []span.Attr{{Key: "round", Kind: span.KindInt, Int: 3}}})

	var buf bytes.Buffer
	err = renderTrace(&buf, recs, 2)
	out := buf.String()
	if err == nil || !strings.Contains(err.Error(), "missing required phases") {
		t.Fatalf("orphan round without phases must trip the gate, got %v", err)
	}
	for _, want := range []string{
		"scheme=HELCFL",
		"model-dly-s",
		"1.5000", // modeled delay column
		"phase summary",
		"fl.round.aggregate",
		"(fl.run span not in stream)",
		"slowest cells (top 2 of 3)",
		"fig2/HELCFL/iid",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q in:\n%s", want, out)
		}
	}
}
