// The trace subcommand renders span JSONL streams produced by
// `helcfl ... -trace-out` (or flight-recorder dumps, which embed the same
// span lines): a per-round, per-phase cost table with measured wall clock
// next to the modeled Eq. 7–8 delay/energy, an aggregated phase summary,
// and the top-K slowest grid cells split into env-build vs run.
//
// It doubles as the CI trace gate: any recorded fl.round span missing one
// of the required plan/train/upload/aggregate children is an error, so a
// regression that drops a phase span fails the pipeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"helcfl/internal/obs/span"
)

// requiredPhases are the children every recorded round span must carry —
// the acceptance gate for the instrumented engine.
var requiredPhases = []string{"fl.round.plan", "fl.round.train", "fl.round.upload", "fl.round.aggregate"}

// summaryPhases is the fixed, ordered phase list for the aggregate table;
// names absent from the stream are skipped.
var summaryPhases = []string{
	"fl.run", "fl.round", "fl.round.plan", "sched.select", "sched.dvfs",
	"fl.round.train", "fl.round.upload", "fl.round.aggregate",
	"fl.round.eval", "fl.snapshot",
	"grid.campaign", "grid.cell", "cell.envbuild", "cell.run", "grid.assemble",
	"http.client", "http.server",
}

func runTraceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	topK := fs.Int("k", 5, "slowest grid cells to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: helcfl-inspect trace [-k N] <spans.jsonl ...> (use - for stdin)")
	}
	var recs []span.Rec
	for _, name := range fs.Args() {
		var r io.Reader
		if name == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		batch, err := span.Read(r)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		recs = append(recs, batch...)
	}
	if len(recs) == 0 {
		return fmt.Errorf("no spans found")
	}
	if err := span.Validate(recs); err != nil {
		fmt.Fprintln(os.Stderr, "warning:", err)
	}
	return renderTrace(os.Stdout, recs, *topK)
}

// refKey identifies a span within the concatenated input files.
type refKey struct{ trace, span uint64 }

func renderTrace(w io.Writer, recs []span.Rec, topK int) error {
	// Children are resolved by (trace, parent) so cross-process streams
	// concatenated into one invocation stitch the same way the recorders
	// did: a round's phases always share the round's trace ID.
	children := make(map[refKey][]int)
	for i, r := range recs {
		if r.Parent != 0 {
			children[refKey{r.Trace, r.Parent}] = append(children[refKey{r.Trace, r.Parent}], i)
		}
	}

	missing := 0
	rendered := make(map[refKey]bool) // round groups already printed under a run
	for _, r := range recs {
		if r.Name != "fl.run" {
			continue
		}
		scheme, _ := r.StrAttr("scheme")
		fmt.Fprintf(w, "run %s scheme=%s (%.3fs)\n", span.FormatRef(span.Ref{Trace: r.Trace, Span: r.Span}), scheme, secs(r.DurNs))
		key := refKey{r.Trace, r.Span}
		rendered[key] = true
		missing += renderRounds(w, recs, children, childrenNamed(recs, children[key], "fl.round"))
	}
	// Rounds whose fl.run span never made it into the stream (killed run,
	// ring overwrite) still deserve a table — group them by parent ref.
	var orphanKeys []refKey
	orphans := make(map[refKey][]int)
	for i, r := range recs {
		if r.Name != "fl.round" {
			continue
		}
		key := refKey{r.Trace, r.Parent}
		if rendered[key] {
			continue
		}
		if _, seen := orphans[key]; !seen {
			orphanKeys = append(orphanKeys, key)
		}
		orphans[key] = append(orphans[key], i)
	}
	for _, key := range orphanKeys {
		fmt.Fprintf(w, "run %s (fl.run span not in stream)\n", span.FormatRef(span.Ref{Trace: key.trace, Span: key.span}))
		missing += renderRounds(w, recs, children, orphans[key])
	}

	renderPhaseSummary(w, recs)
	renderSlowestCells(w, recs, children, topK)

	if missing > 0 {
		return fmt.Errorf("%d round span(s) missing required phases (plan/train/upload/aggregate)", missing)
	}
	return nil
}

// childrenNamed filters a child index list down to one span name,
// preserving stream order.
func childrenNamed(recs []span.Rec, idx []int, name string) []int {
	var out []int
	for _, i := range idx {
		if recs[i].Name == name {
			out = append(out, i)
		}
	}
	return out
}

// renderRounds prints the per-round phase table for one run and returns
// how many rounds were missing required phases.
func renderRounds(w io.Writer, recs []span.Rec, children map[refKey][]int, rounds []int) int {
	if len(rounds) == 0 {
		fmt.Fprintln(w, "  (no rounds recorded)")
		return 0
	}
	sort.SliceStable(rounds, func(a, b int) bool {
		ra, _ := recs[rounds[a]].IntAttr("round")
		rb, _ := recs[rounds[b]].IntAttr("round")
		return ra < rb
	})
	fmt.Fprintf(w, "  %5s %10s %10s %10s %10s %10s | %12s %12s  %s\n",
		"round", "plan-s", "train-s", "upload-s", "agg-s", "eval-s", "model-dly-s", "model-J", "missing")
	missing := 0
	var tot [5]float64
	for _, i := range rounds {
		r := recs[i]
		phase := make(map[string]int64, 8)
		for _, ci := range children[refKey{r.Trace, r.Span}] {
			phase[recs[ci].Name] = recs[ci].DurNs
		}
		var gaps []string
		for _, name := range requiredPhases {
			if _, ok := phase[name]; !ok {
				gaps = append(gaps, strings.TrimPrefix(name, "fl.round."))
			}
		}
		if len(gaps) > 0 {
			missing++
		}
		round, _ := r.IntAttr("round")
		mdly, _ := r.FloatAttr("model_delay_sec")
		mj, _ := r.FloatAttr("model_energy_j")
		cols := [5]float64{
			secs(phase["fl.round.plan"]), secs(phase["fl.round.train"]),
			secs(phase["fl.round.upload"]), secs(phase["fl.round.aggregate"]),
			secs(phase["fl.round.eval"]),
		}
		for c, v := range cols {
			tot[c] += v
		}
		fmt.Fprintf(w, "  %5d %10.6f %10.6f %10.6f %10.6f %10.6f | %12.4f %12.4f  %s\n",
			round, cols[0], cols[1], cols[2], cols[3], cols[4], mdly, mj, strings.Join(gaps, ","))
	}
	fmt.Fprintf(w, "  %5s %10.6f %10.6f %10.6f %10.6f %10.6f |\n\n",
		"total", tot[0], tot[1], tot[2], tot[3], tot[4])
	return missing
}

// renderPhaseSummary prints duration statistics per known phase name.
func renderPhaseSummary(w io.Writer, recs []span.Rec) {
	fmt.Fprintf(w, "phase summary\n  %-20s %7s %12s %12s %12s %12s %12s\n",
		"phase", "count", "total-s", "min-s", "p50-s", "p95-s", "max-s")
	for _, name := range summaryPhases {
		st := span.DurationStats(recs, name)
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-20s %7d %12.6f %12.6f %12.6f %12.6f %12.6f\n",
			name, st.Count, st.TotalSec, st.MinSec, st.P50Sec, st.P95Sec, st.MaxSec)
	}
	fmt.Fprintln(w)
}

// renderSlowestCells lists the top-K grid cells by wall clock with their
// env-build vs run split — the shape of the BENCH speedup story.
func renderSlowestCells(w io.Writer, recs []span.Rec, children map[refKey][]int, topK int) {
	var cells []int
	for i, r := range recs {
		if r.Name == "grid.cell" {
			cells = append(cells, i)
		}
	}
	if len(cells) == 0 || topK <= 0 {
		return
	}
	sort.SliceStable(cells, func(a, b int) bool { return recs[cells[a]].DurNs > recs[cells[b]].DurNs })
	if len(cells) > topK {
		cells = cells[:topK]
	}
	fmt.Fprintf(w, "slowest cells (top %d of %d)\n  %10s %10s %10s  %s\n", len(cells), countName(recs, "grid.cell"), "cell-s", "env-s", "run-s", "key")
	for _, i := range cells {
		r := recs[i]
		var env, run int64
		for _, ci := range children[refKey{r.Trace, r.Span}] {
			switch recs[ci].Name {
			case "cell.envbuild":
				env = recs[ci].DurNs
			case "cell.run":
				run = recs[ci].DurNs
			}
		}
		key, _ := r.StrAttr("key")
		fmt.Fprintf(w, "  %10.4f %10.4f %10.4f  %s\n", secs(r.DurNs), secs(env), secs(run), key)
	}
}

func countName(recs []span.Rec, name string) int {
	n := 0
	for _, r := range recs {
		if r.Name == name {
			n++
		}
	}
	return n
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }
