package main

import (
	"os"
	"path/filepath"
	"testing"

	"helcfl/internal/fl"
	"helcfl/internal/trace"
)

func TestInspectRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []fl.RoundRecord{
		{Round: 0, Delay: 1, Energy: 2, ComputeEnergy: 1.5, CumTime: 1, CumEnergy: 2,
			Evaluated: true, TestAccuracy: 0.5},
	}
	if err := trace.Write(f, "HELCFL", recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err == nil {
		t.Fatal("no args must error")
	}
	if err := run([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Fatal("missing file must error")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}); err == nil {
		t.Fatal("empty trace must error")
	}
}
