package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRealModuleClean runs the driver the way `make lint` does — over the
// real repository, with the stale-suppression audit on — and requires a
// clean exit: zero unsuppressed findings and zero stale allow directives
// across every package in the module.
func TestRealModuleClean(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-stale", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("helcfl-lint -stale ./... over the real module exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "helcfl-lint: ok") {
		t.Errorf("missing ok summary in stderr: %q", stderr.String())
	}
}

// TestSeededViolationFails pins the acceptance check from the issue: a
// module whose internal/fl contains a deliberate time.Now() must fail the
// lint with a nondeterminism finding.
func TestSeededViolationFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", "testdata/badmodule", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d over testdata/badmodule, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "nondeterminism: time.Now reads the wall clock in deterministic package helcfl/internal/fl") {
		t.Errorf("missing nondeterminism finding in stdout: %q", stdout.String())
	}
}

// TestStaleDirective pins the stale-suppression audit: a module whose only
// allow directive suppresses nothing passes a plain run but fails -stale
// with a rule "stale" finding.
func TestStaleDirective(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", "testdata/stalemodule", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("plain run over testdata/stalemodule exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	code := run([]string{"-C", "testdata/stalemodule", "-stale", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-stale run over testdata/stalemodule exited %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), `stale: allow directive for "nondeterminism" suppresses nothing`) {
		t.Errorf("missing stale finding in stdout: %q", stdout.String())
	}
}

// TestJSONOutput pins the machine-readable mode: over the bad module the
// driver still exits 1 but stdout is one JSON document carrying the finding.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", "testdata/badmodule", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-json run over testdata/badmodule exited %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if !rep.Failed {
		t.Errorf("jsonReport.Failed = false, want true")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Rule == "nondeterminism" && strings.Contains(f.Message, "time.Now") && f.Line > 0 && f.File != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no nondeterminism finding in JSON output:\n%s", stdout.String())
	}
}

// TestJSONClean verifies a clean -json run reports failed=false and exits 0.
func TestJSONClean(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", "testdata/stalemodule", "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-json clean run exited %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Failed || rep.Packages == 0 {
		t.Errorf("jsonReport = %+v, want failed=false with packages > 0", rep)
	}
}

// TestListAnalyzers and TestBadPattern cover the driver's small CLI surface.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"nondeterminism", "maporder", "floatcompare", "durability", "ctxflow",
		"noalloc", "spanend", "lockheld", "golife", "wirecodec",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

func TestBadPattern(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"helcfl/internal/fl"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unsupported pattern exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unsupported pattern") {
		t.Errorf("missing diagnostic in stderr: %q", stderr.String())
	}
}
