package main

import (
	"strings"
	"testing"
)

// TestRealModuleClean runs the driver the way `make lint` does — over the
// real repository — and requires a clean exit: zero unsuppressed findings
// across every package in the module.
func TestRealModuleClean(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("helcfl-lint ./... over the real module exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "helcfl-lint: ok") {
		t.Errorf("missing ok summary in stderr: %q", stderr.String())
	}
}

// TestSeededViolationFails pins the acceptance check from the issue: a
// module whose internal/fl contains a deliberate time.Now() must fail the
// lint with a nondeterminism finding.
func TestSeededViolationFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-C", "testdata/badmodule", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d over testdata/badmodule, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "nondeterminism: time.Now reads the wall clock in deterministic package helcfl/internal/fl") {
		t.Errorf("missing nondeterminism finding in stdout: %q", stdout.String())
	}
}

// TestListAnalyzers and TestBadPattern cover the driver's small CLI surface.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"nondeterminism", "maporder", "floatcompare", "durability", "ctxflow"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

func TestBadPattern(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"helcfl/internal/fl"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unsupported pattern exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unsupported pattern") {
		t.Errorf("missing diagnostic in stderr: %q", stderr.String())
	}
}
