// Fixture module for the driver test: a deliberate wall-clock read in the
// deterministic package helcfl/internal/fl must make helcfl-lint exit 1.
package fl

import "time"

// RoundStart leaks the wall clock into the deterministic core.
func RoundStart() int64 {
	return time.Now().UnixNano()
}
