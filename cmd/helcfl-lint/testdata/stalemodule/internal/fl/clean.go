// Fixture module for the -stale driver test: the code is clean, so the
// leftover allow directive suppresses nothing — a plain run must pass and a
// -stale run must fail with a stale finding.
package fl

// Steps is deterministic; the directive below excused a wall-clock read
// that has since been removed.
func Steps(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		//helcfl:allow(nondeterminism) historical: round timing used the wall clock here
		total += i
	}
	return total
}
