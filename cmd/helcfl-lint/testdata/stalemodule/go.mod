module helcfl

go 1.22
