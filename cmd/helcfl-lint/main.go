// Command helcfl-lint runs the in-tree static-analysis suite
// (internal/lint) over the module: the determinism, map-order,
// float-comparison, durability, and context-flow invariants the repo's
// bit-identity and crash-recovery guarantees rest on.
//
// Usage:
//
//	helcfl-lint [-show-suppressed] [-list] [./...]
//
// The only supported pattern is the whole module (./..., the default); the
// tool walks up from the working directory to go.mod and lints every
// package. Exit status: 0 clean, 1 findings, 2 load failure. Suppress a
// finding with a justified directive on or directly above the offending
// line:
//
//	//helcfl:allow(rule) reason
//
// See docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"helcfl/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("helcfl-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	showSuppressed := fs.Bool("show-suppressed", false, "also print findings silenced by //helcfl:allow directives, with their reasons")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "change to this directory before resolving the module")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "helcfl-lint: unsupported pattern %q (only ./... is supported)\n", pat)
			return 2
		}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "helcfl-lint: %v\n", err)
		return 2
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "helcfl-lint: %v\n", err)
		return 2
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	failed := false
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *showSuppressed {
				fmt.Fprintln(stdout, f)
			}
			continue
		}
		failed = true
		fmt.Fprintln(stdout, f)
	}
	if failed {
		fmt.Fprintf(stderr, "helcfl-lint: findings in %d package(s); fix them or annotate with //helcfl:allow(rule) reason\n", len(pkgs))
		return 1
	}
	if *showSuppressed || suppressed > 0 {
		fmt.Fprintf(stderr, "helcfl-lint: ok (%d package(s), %d suppressed finding(s))\n", len(pkgs), suppressed)
	} else {
		fmt.Fprintf(stderr, "helcfl-lint: ok (%d package(s))\n", len(pkgs))
	}
	return 0
}
