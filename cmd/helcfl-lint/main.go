// Command helcfl-lint runs the in-tree static-analysis suite
// (internal/lint) over the module: the determinism, map-order,
// float-comparison, durability, context-flow, allocation, span-lifecycle,
// lock-discipline, goroutine-lifecycle, and wire-codec invariants the repo's
// bit-identity, crash-recovery, and fleet guarantees rest on.
//
// Usage:
//
//	helcfl-lint [-show-suppressed] [-stale] [-json] [-list] [./...]
//
// The only supported pattern is the whole module (./..., the default); the
// tool walks up from the working directory to go.mod and lints every
// package. -stale additionally fails on //helcfl:allow directives that no
// longer suppress anything, so suppressions cannot outlive the code they
// excused. -json writes the full findings list (suppressed ones included,
// marked) as one JSON document on stdout for CI artifacts and tooling.
// Exit status: 0 clean, 1 findings, 2 load failure. Suppress a finding with
// a justified directive on or directly above the offending line:
//
//	//helcfl:allow(rule) reason
//
// See docs/STATIC_ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"helcfl/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable form of one finding.
type jsonFinding struct {
	Rule       string `json:"rule"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Packages int           `json:"packages"`
	Failed   bool          `json:"failed"`
	Findings []jsonFinding `json:"findings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("helcfl-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	showSuppressed := fs.Bool("show-suppressed", false, "also print findings silenced by //helcfl:allow directives, with their reasons")
	staleMode := fs.Bool("stale", false, "also fail on //helcfl:allow directives that suppress nothing")
	jsonOut := fs.Bool("json", false, "write all findings (suppressed included) as JSON on stdout")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "change to this directory before resolving the module")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "helcfl-lint: unsupported pattern %q (only ./... is supported)\n", pat)
			return 2
		}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "helcfl-lint: %v\n", err)
		return 2
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "helcfl-lint: %v\n", err)
		return 2
	}
	var findings []lint.Finding
	if *staleMode {
		findings = lint.RunWithStale(pkgs, lint.Analyzers())
	} else {
		findings = lint.Run(pkgs, lint.Analyzers())
	}

	failed := false
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *showSuppressed && !*jsonOut {
				fmt.Fprintln(stdout, f)
			}
			continue
		}
		failed = true
		if !*jsonOut {
			fmt.Fprintln(stdout, f)
		}
	}
	if *jsonOut {
		rep := jsonReport{Packages: len(pkgs), Failed: failed, Findings: make([]jsonFinding, 0, len(findings))}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, jsonFinding{
				Rule: f.Rule, File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Message: f.Message, Suppressed: f.Suppressed, Reason: f.Reason,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "helcfl-lint: encode json: %v\n", err)
			return 2
		}
	}
	if failed {
		fmt.Fprintf(stderr, "helcfl-lint: findings in %d package(s); fix them or annotate with //helcfl:allow(rule) reason\n", len(pkgs))
		return 1
	}
	if *showSuppressed || suppressed > 0 {
		fmt.Fprintf(stderr, "helcfl-lint: ok (%d package(s), %d suppressed finding(s))\n", len(pkgs), suppressed)
	} else {
		fmt.Fprintf(stderr, "helcfl-lint: ok (%d package(s))\n", len(pkgs))
	}
	return 0
}
