// Command helcfl-node runs one node of a networked HELCFL deployment: the
// FLCC server, a device client, or a campaign fleet worker. All nodes
// derive the same synthetic dataset and partition from the shared seed,
// so a deployment needs no data distribution channel.
//
//	# terminal 1: the FLCC (waits for 4 devices, runs 20 rounds)
//	helcfl-node serve -addr :8080 -users 4 -rounds 20
//
//	# terminals 2..5: the devices
//	helcfl-node client -server http://localhost:8080 -user 0 -users 4
//	helcfl-node client -server http://localhost:8080 -user 1 -users 4
//	...
//
// Worker mode joins a `helcfl <experiment> -fleet` coordinator instead:
// it rebuilds the campaign grid locally from the coordinator's plan
// identity, then leases cells, runs them, and reports results until the
// sweep finishes (see docs/GRID.md).
//
//	helcfl-node worker -coordinator http://host:9090 -name w0 -seed 2
//
// A first SIGINT/SIGTERM drains the worker (it finishes its in-flight
// cell, skips further leases, and exits cleanly); a second aborts it
// mid-cell, and the coordinator reassigns the lease after its TTL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"helcfl/internal/core"
	"helcfl/internal/dataset"
	"helcfl/internal/deploy"
	"helcfl/internal/device"
	"helcfl/internal/experiments"
	"helcfl/internal/fl"
	"helcfl/internal/fleet"
	"helcfl/internal/grid"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
	"helcfl/internal/selection"
	"helcfl/internal/wireless"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "helcfl-node:", err)
		os.Exit(1)
	}
}

// sharedSpec is the architecture every node builds.
func sharedSpec() nn.ModelSpec {
	return nn.ModelSpec{Kind: "mlp", InC: 3, H: 8, W: 8, Classes: 10, Hidden: []int{64}}
}

// sharedData regenerates the deployment's dataset and per-user shards from
// the shared seed.
func sharedData(users int, seed int64) (*dataset.Synth, []*dataset.Dataset) {
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 10, C: 3, H: 8, W: 8,
		TrainN: 40 * users, TestN: 400, Noise: 1.2, Seed: seed,
	})
	part := dataset.PartitionIID(synth.Train, users, rand.New(rand.NewSource(seed+1)))
	return synth, dataset.UserDatasets(synth.Train, part)
}

func run(args []string) (retErr error) {
	if len(args) == 0 {
		return fmt.Errorf("usage: helcfl-node <serve|client|worker> [flags]")
	}
	mode := args[0]
	fs := flag.NewFlagSet(mode, flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "serve: listen address")
	server := fs.String("server", "http://localhost:8080", "client: FLCC URL")
	coordinator := fs.String("coordinator", "http://localhost:9090", "worker: fleet coordinator URL (a `helcfl <experiment> -fleet` process)")
	name := fs.String("name", "", "worker: name used in leases and logs (default worker-<pid>)")
	users := fs.Int("users", 4, "fleet size (must match on all nodes)")
	user := fs.Int("user", 0, "client: this device's index")
	rounds := fs.Int("rounds", 20, "serve: round budget")
	seed := fs.Int64("seed", 1, "shared data seed (must match on all nodes)")
	eta := fs.Float64("eta", 0.7, "serve: HELCFL decay coefficient")
	frac := fs.Float64("fraction", 0.5, "serve: selection fraction C")
	retries := fs.Int("retries", 5, "client: extra attempts per request on transient failures")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "client: base retry backoff (doubles per retry, jittered)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "client: per-attempt HTTP timeout (0 disables)")
	reconnects := fs.Int("reconnects", 5, "client: server outages to survive by re-registering (e.g. an FLCC restarting from checkpoint)")
	deadline := fs.Duration("round-deadline", 0, "serve: straggler deadline closing rounds with a partial quorum (0 waits for every upload)")
	quorum := fs.Float64("quorum", 0.5, "serve: fraction of the selected cohort required for a partial aggregation")
	ckptDir := fs.String("checkpoint-dir", "", "serve: directory for durable snapshots + upload WAL (empty disables)")
	resume := fs.Bool("resume", false, "serve: restore the campaign from -checkpoint-dir (fresh start if empty)")
	traceOut := fs.String("trace-out", "", "stream this node's spans as JSONL to this file (Helcfl-Trace stitches nodes; serve also mounts /debug/flightrec)")
	verbose := fs.Bool("v", false, "serve: log every request")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}

	// Each node gets its own recorder and trace ID derived from the shared
	// seed; the Helcfl-Trace header stitches the per-node JSONL files back
	// into cross-process rounds (concatenate them into helcfl-inspect trace).
	var rec *span.Recorder
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		jl := span.NewJSONL(f)
		id := uint64(*seed + 1000 + int64(*user))
		switch mode {
		case "serve":
			id = uint64(*seed + 100)
		case "worker":
			// Workers have no fleet index; derive a stable per-name ID so
			// two workers with -name w0/w1 never collide in stitched traces.
			h := fnv.New64a()
			_, _ = h.Write([]byte(*name))
			id = uint64(*seed+2000) ^ h.Sum64()
		}
		rec = span.NewRecorder(id, span.Options{Exporter: jl})
		defer func() {
			if err := errors.Join(jl.Flush(), f.Close()); err != nil && retErr == nil {
				retErr = fmt.Errorf("trace-out: %w", err)
			}
		}()
	}
	// SIGINT/SIGTERM end the node cleanly: the server drains and writes a
	// final checkpoint, the client stops between requests.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	switch mode {
	case "serve":
		var logf deploy.Logf
		if *verbose {
			logf = log.Printf
		}
		srv, err := deploy.NewServer(deploy.ServerConfig{
			Spec:          sharedSpec(),
			Seed:          *seed + 100,
			ExpectedUsers: *users,
			Rounds:        *rounds,
			RoundDeadline: *deadline,
			Quorum:        *quorum,
			CheckpointDir: *ckptDir,
			Resume:        *resume,
			Trace:         rec,
			NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
				bits := nn.ModelBits(sharedSpec().Build(rand.New(rand.NewSource(*seed + 100))))
				return selection.NewHELCFL(devs, wireless.DefaultChannel(), bits, core.Params{
					Eta: *eta, Fraction: *frac, StepsPerRound: 1, Clamp: true,
				})
			},
			Log: logf,
		})
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Addr: *addr, Handler: srv}
		errCh := make(chan error, 1)
		go func() {
			if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errCh <- err
			}
		}()
		fmt.Printf("FLCC listening on %s (fleet %d, %d rounds; /metrics, /healthz and /debug/pprof/ live)\n", *addr, *users, *rounds)
		select {
		case err := <-errCh:
			return err
		case <-ctx.Done():
		}
		// Graceful handoff: stop accepting work and drain in-flight requests
		// (any upload that gets its 204 is already fsynced in the WAL), then
		// persist a final snapshot so `-resume` picks up exactly here.
		fmt.Println("FLCC shutting down: draining requests and writing final checkpoint")
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := srv.CheckpointNow(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		srv.Close()
		return nil

	case "client":
		if *user < 0 || *user >= *users {
			return fmt.Errorf("user %d outside fleet of %d", *user, *users)
		}
		synth, shards := sharedData(*users, *seed)
		_ = synth
		rng := rand.New(rand.NewSource(*seed + int64(*user) + 7))
		c, err := deploy.NewClient(deploy.ClientConfig{
			BaseURL: *server,
			Info: deploy.RegisterRequest{
				User:        *user,
				NumSamples:  shards[*user].N(),
				FMin:        device.DefaultFMin,
				FMax:        device.FMaxLow + (device.FMaxHigh-device.FMaxLow)*rng.Float64(),
				TxPower:     0.2,
				ChannelGain: 0.5 + rng.Float64(),
			},
			Data:           shards[*user],
			Spec:           sharedSpec(),
			LR:             0.4,
			LocalSteps:     1,
			PollInterval:   50 * time.Millisecond,
			MaxRetries:     *retries,
			BaseBackoff:    *backoff,
			RequestTimeout: *reqTimeout,
			Reconnects:     *reconnects,
			Trace:          rec,
		})
		if err != nil {
			return err
		}
		fmt.Printf("device %d joining %s with %d samples\n", *user, *server, shards[*user].N())
		if err := c.RunContext(ctx); err != nil {
			// A signal is a clean exit, not a failure: the server keeps the
			// device's registration and dedups its uploads if it rejoins.
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				fmt.Printf("device %d interrupted after %d trained rounds\n", *user, c.RoundsTrained)
				return nil
			}
			return err
		}
		fmt.Printf("device %d done: trained %d rounds\n", *user, c.RoundsTrained)
		return nil

	case "worker":
		var logf deploy.Logf
		if *verbose {
			logf = log.Printf
		}
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator:    *coordinator,
			Name:           *name,
			Resolve:        resolveFleetPlan,
			Encode:         experiments.EncodeCellResult,
			MaxRetries:     *retries,
			BaseBackoff:    *backoff,
			RequestTimeout: *reqTimeout,
			Seed:           *seed,
			Log:            logf,
			Trace:          rec,
		})
		if err != nil {
			return err
		}
		// Two-stage shutdown replaces the shared one-shot context: the
		// first signal drains (finish the in-flight cell, stop leasing),
		// the second aborts mid-cell and lets the lease TTL reassign it.
		stopSignals()
		wctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sigCh := make(chan os.Signal, 2)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		go func() {
			select {
			case <-sigCh:
			case <-wctx.Done():
				return
			}
			fmt.Printf("worker %s draining: finishing the current cell (signal again to abort)\n", *name)
			w.Drain()
			select {
			case <-sigCh:
				cancel()
			case <-wctx.Done():
			}
		}()
		fmt.Printf("worker %s joining %s\n", *name, *coordinator)
		if err := w.Run(wctx); err != nil {
			if errors.Is(err, context.Canceled) && wctx.Err() != nil {
				fmt.Printf("worker %s aborted after %d completed cells\n", *name, w.Completed())
				return nil
			}
			return err
		}
		fmt.Printf("worker %s done: %d cells completed, %d fenced\n", *name, w.Completed(), w.Fenced())
		return nil

	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// resolveFleetPlan rebuilds a campaign grid from the coordinator's plan
// identity via the experiments registry — the worker-side half of the
// fingerprint handshake. It must mirror runGrid's plan construction in
// cmd/helcfl bit for bit, or the fingerprints diverge and the worker
// refuses to lease.
func resolveFleetPlan(info fleet.PlanInfo) ([]grid.Cell, error) {
	def, ok := experiments.LookupExperiment(info.Experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", info.Experiment)
	}
	p, err := experiments.LookupPreset(info.Preset)
	if err != nil {
		return nil, err
	}
	// Cells capture the preset by value; serialize any shared sink exactly
	// like the local grid path does.
	p.Sink = obs.Synchronized(p.Sink)
	plan, err := def.Plan(p, info.Seed, experiments.Options{Seeds: info.Seeds})
	if err != nil {
		return nil, err
	}
	return plan.Cells, nil
}
