GO ?= go

.PHONY: build test race chaos recover fmt vet lint check bench bench-scale

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 -timeout 45m ./...

# Randomized fault-injection stress tests (opt-in via build tag; see
# docs/ROBUSTNESS.md for how to replay a failing seed). Includes the
# fleet kill sweep: real worker processes SIGKILLed mid-campaign and the
# coordinator killed and resumed from its journal, byte-compared against
# a serial run (scale with HELCFL_FLEET_SEEDS / HELCFL_FLEET_WORKERS).
chaos:
	$(GO) test -race -tags chaos -run Chaos -timeout 30m ./internal/deploy/ ./internal/chaos/ ./internal/fleet/ -v

# Kill/restart recovery conformance: the tier-1 Recovery tests plus the
# exhaustive every-kill-point sweep (chaos tag), all under the race
# detector. See docs/ROBUSTNESS.md.
recover:
	$(GO) test -race -tags chaos -run 'Recover' ./internal/deploy/ -v

fmt:
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then echo "gofmt -s needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Micro/campaign benchmarks (go test -bench), then time the full campaign
# grid serially vs on all cores and record the result in
# BENCH_experiments.json (see docs/GRID.md and docs/PERFORMANCE.md; the
# speedup field is omitted on single-worker hosts, where both timed runs
# are serial).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./...
	$(GO) run ./cmd/helcfl bench -preset tiny -experiment all -bench-out BENCH_experiments.json

# Million-user scheduling sweep: time one FLCC round plan (Eq. 20 utility
# sweep + streaming top-N + Algorithm 3 DVFS) on synthetic SoA fleets of
# Q ∈ {100, 1e3, 1e5, 1e6} and record BENCH_scale.json (see docs/SCALE.md).
# The committed reference requires the Q=1e6 plan under one second.
bench-scale:
	$(GO) run ./cmd/helcfl bench-scale -scale-out BENCH_scale.json -budget-sec 1.0

# In-tree static analysis (internal/lint): determinism, map-order,
# float-comparison, durability, context-flow, allocation, span-lifecycle,
# lock-discipline, goroutine-lifecycle, and wire-codec invariants. Exit is
# nonzero on any finding not covered by a justified //helcfl:allow, and
# (-stale) on any allow directive that no longer suppresses anything.
# See docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/helcfl-lint -stale ./...

check: build vet fmt lint race
