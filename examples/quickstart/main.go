// Quickstart: train a federated model with the HELCFL scheduler on a small
// synthetic MEC system and print the training trajectory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"helcfl"
)

func main() {
	// TinyPreset: 16 heterogeneous devices, 480 synthetic training images,
	// 60 federated rounds, selection fraction C = 0.25.
	preset := helcfl.TinyPreset()

	res, err := helcfl.Train(preset, helcfl.IID, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme: %s\n", res.Scheme)
	fmt.Printf("model upload size: %.1f KiB (C_model = %.0f bits)\n",
		res.ModelBits/8/1024, res.ModelBits)
	fmt.Println()
	fmt.Println("round  selected  delay(s)  energy(J)  accuracy")
	for _, r := range res.Records {
		if !r.Evaluated {
			continue
		}
		fmt.Printf("%5d  %8d  %8.2f  %9.2f  %7.2f%%\n",
			r.Round, len(r.Selected), r.Delay, r.Energy, r.TestAccuracy*100)
	}
	fmt.Println()
	fmt.Printf("best accuracy:   %.2f%%\n", res.BestAccuracy*100)
	fmt.Printf("total delay:     %.1f s (%.1f min of simulated training)\n", res.TotalTime, res.TotalTime/60)
	fmt.Printf("total energy:    %.1f J across all selected devices\n", res.TotalEnergy)
}
