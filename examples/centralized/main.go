// Centralized: use the nn substrate standalone — no federation — to train
// the SqueezeNet-style CNN on SynthCIFAR with Adam and a cosine schedule,
// and compare against the federated result on the same data. This is the
// "upper bound" FL aims for (Eq. 19: one FL round ≡ one centralized GD
// step on the selected users' data).
//
//	go run ./examples/centralized
package main

import (
	"fmt"
	"log"
	"math/rand"

	"helcfl"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
)

func main() {
	preset := helcfl.TinyPreset()
	env, err := helcfl.BuildEnv(preset, helcfl.IID, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Centralized training on the full training set with Adam.
	rng := rand.New(rand.NewSource(2))
	model := env.Spec.Build(rng)
	loss := nn.NewSoftmaxCrossEntropy()
	opt := nn.NewAdam(0.01)
	sched := nn.CosineDecay{Base: 0.01, Floor: 0.001, Horizon: 150}
	x := env.Synth.Train.FlatX()
	labels := env.Synth.Train.Labels
	for step := 0; step < 150; step++ {
		opt.LR = sched.LR(step)
		model.ZeroGrads()
		l := loss.Forward(model.Forward(x, true), labels)
		model.Backward(loss.Backward())
		opt.Step(model.Params(), model.Grads())
		if step%30 == 0 {
			_, acc := fl.Evaluate(model, env.Synth.Test, true)
			fmt.Printf("step %3d  lr %.4f  train loss %.3f  test acc %.1f%%\n",
				step, opt.LR, l, acc*100)
		}
	}
	_, centralAcc := fl.Evaluate(model, env.Synth.Test, true)

	// Federated training with HELCFL on the same data, partitioned.
	res, err := helcfl.Train(preset, helcfl.IID, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncentralized Adam (150 steps): %.1f%%\n", centralAcc*100)
	fmt.Printf("federated HELCFL (%d rounds): %.1f%%\n", preset.MaxRounds, res.BestAccuracy*100)
	fmt.Println("\nfederation pays an accuracy gap for never moving raw data — the gap")
	fmt.Println("HELCFL's selection keeps small by folding every user's data into")
	fmt.Println("training (Eq. 19) while scheduling around device heterogeneity.")
}
