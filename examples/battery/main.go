// Battery: give every device a finite energy budget — the paper's Section I
// motivation ("energy of user devices is quickly exhausted or even device
// shutdown occurs") — and watch how each scheduling scheme spends the
// fleet's lifetime. DVFS (Algorithm 3) stretches it; FedCS burns out its
// fixed fast cohort and halts.
//
//	go run ./examples/battery
package main

import (
	"fmt"
	"log"

	"helcfl"
	"helcfl/internal/experiments"
)

func main() {
	preset := helcfl.TinyPreset()

	// Each device gets a battery worth about six max-frequency selections.
	bc, err := experiments.RunBatteryCampaign(preset, helcfl.IID, 1, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bc.Render())
	fmt.Println("HELCFL finishes the full campaign: Algorithm 3 spends roughly half")
	fmt.Println("the compute energy per selection, so the same batteries last ~2x the")
	fmt.Println("rounds of the no-DVFS variant. FedCS exhausts its fast cohort early")
	fmt.Println("and halts with its accuracy ceiling intact.")
}
