// Deploy: run the whole networked HELCFL system in one process — an FLCC
// HTTP server and six device clients on localhost — and evaluate the
// aggregated global model. The same binary logic is available as separate
// processes via cmd/helcfl-node.
//
//	go run ./examples/deploy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"helcfl/internal/core"
	"helcfl/internal/dataset"
	"helcfl/internal/deploy"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/selection"
	"helcfl/internal/wireless"
)

func main() {
	const users, rounds = 6, 15
	spec := nn.ModelSpec{Kind: "logistic", InC: 3, H: 8, W: 8, Classes: 10}
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		TrainN: 40 * users, TestN: 400, Noise: 1.2, Seed: 3,
	})
	part := dataset.PartitionIID(synth.Train, users, rand.New(rand.NewSource(4)))
	shards := dataset.UserDatasets(synth.Train, part)

	srv, err := deploy.NewServer(deploy.ServerConfig{
		Spec:          spec,
		Seed:          9,
		ExpectedUsers: users,
		Rounds:        rounds,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			bits := nn.ModelBits(spec.Build(rand.New(rand.NewSource(9))))
			return selection.NewHELCFL(devs, wireless.DefaultChannel(), bits, core.Params{
				Eta: 0.7, Fraction: 0.5, StepsPerRound: 1, Clamp: true,
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("FLCC serving on", base)

	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < users; q++ {
		c, err := deploy.NewClient(deploy.ClientConfig{
			BaseURL: base,
			Info: deploy.RegisterRequest{
				User: q, NumSamples: shards[q].N(),
				FMin:    device.DefaultFMin,
				FMax:    device.FMaxLow + (device.FMaxHigh-device.FMaxLow)*rng.Float64(),
				TxPower: 0.2, ChannelGain: 0.5 + rng.Float64(),
			},
			Data: shards[q], Spec: spec,
			LR: 0.4, LocalSteps: 1,
			PollInterval: time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			if err := c.Run(); err != nil {
				log.Printf("device %d: %v", q, err)
			} else {
				fmt.Printf("device %d finished after training %d rounds\n", q, c.RoundsTrained)
			}
		}(q)
	}
	wg.Wait()

	global := srv.Global()
	loss, acc := fl.Evaluate(global, synth.Test, spec.FlattensInput())
	fmt.Printf("\nglobal model after %d federated rounds over HTTP: loss %.3f, accuracy %.1f%%\n",
		rounds, loss, acc*100)
}
