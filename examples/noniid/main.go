// Non-IID: show why collaborative FL beats separated learning (SL) when
// user data is label-skewed, and why excluding slow users (FedCS) caps the
// achievable accuracy — the paper's Eq. (19) argument in action.
//
//	go run ./examples/noniid
package main

import (
	"fmt"
	"log"

	"helcfl"
)

func main() {
	preset := helcfl.TinyPreset()

	env, err := helcfl.BuildEnv(preset, helcfl.NonIID, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Under the Non-IID shard partition every user sees only a few labels.
	fmt.Println("per-user label histograms (Non-IID shard partition):")
	for q, d := range env.UserData {
		fmt.Printf("  v%-2d:", q)
		for _, c := range d.LabelHistogram(preset.Classes) {
			fmt.Printf(" %3d", c)
		}
		fmt.Printf("   (%d distinct labels)\n", d.DistinctLabels(preset.Classes))
	}
	fmt.Println()

	fig, err := helcfl.RunFig2(preset, helcfl.NonIID, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best test accuracy after", preset.MaxRounds, "rounds:")
	for _, scheme := range helcfl.SchemeOrder {
		c := fig.Curve(scheme)
		fmt.Printf("  %-10s %.2f%%\n", scheme, c.Best()*100)
	}
	fmt.Println()
	fmt.Println("SL collapses because each user's isolated model only ever sees its")
	fmt.Println("own few labels; FedCS caps because the labels held by slow users")
	fmt.Println("never enter FedAvg; HELCFL's greedy-decay selection folds every")
	fmt.Println("user's data into training (Eq. 19) while still favouring fast ones.")
}
