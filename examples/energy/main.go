// Energy: a hand-built Fig. 1 scenario showing exactly where TDMA slack
// comes from and how Algorithm 3 converts it into DVFS energy savings
// without touching the round makespan.
//
//	go run ./examples/energy
package main

import (
	"fmt"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/sim"
	"helcfl/internal/wireless"
)

func main() {
	// Three users with staggered compute capabilities, as in the paper's
	// Fig. 1: user 1 finishes first and holds the TDMA channel; users 2 and
	// 3 finish while it uploads and must stop and wait.
	mk := func(id, samples int, fmaxGHz float64) *device.Device {
		return &device.Device{
			ID: id, FMin: 0.3e9, FMax: fmaxGHz * 1e9,
			CyclesPerSample: 1e8, Kappa: 2e-28,
			TxPower: 0.2, ChannelGain: 1.0, NumSamples: samples,
		}
	}
	devs := []*device.Device{
		mk(1, 40, 2.0), // T_cal = 2.0 s at f_max
		mk(2, 45, 1.6), // T_cal ≈ 2.8 s
		mk(3, 50, 1.2), // T_cal ≈ 4.2 s
	}
	ch := wireless.DefaultChannel()
	const modelBits = 8e5 // 100 KB model

	show := func(title string, r sim.RoundResult) {
		fmt.Println(title)
		for _, u := range r.Users {
			bar := func(from, to float64) string {
				s := ""
				for x := 0.0; x < to; x += 0.25 {
					switch {
					case x < from:
						s += " "
					default:
						s += "#"
					}
				}
				return s
			}
			fmt.Printf("  v%d  f=%.2fGHz  compute %s| upload [%4.1fs→%4.1fs] wait %.2fs  E=%.2fJ\n",
				u.User, u.Freq/1e9, bar(0, u.ComputeDelay), u.UploadStart, u.UploadEnd,
				u.Wait, u.ComputeEnergy+u.UploadEnergy)
		}
		fmt.Printf("  makespan %.2fs   slack %.2fs   compute energy %.2fJ   total energy %.2fJ\n\n",
			r.Makespan, r.TotalSlack, r.ComputeEnergy, r.TotalEnergy)
	}

	maxRun := sim.SimulateRound(devs, sim.MaxFrequencies(devs), ch, modelBits, 1)
	show("traditional TDMA FL — everyone at f_max (energy wasted in waits):", maxRun)

	freqs := core.FrequencyPlan(devs, ch, modelBits, 1, true)
	dvfsRun := sim.SimulateRound(devs, freqs, ch, modelBits, 1)
	show("HELCFL Algorithm 3 — slack reclaimed by lowering frequencies:", dvfsRun)

	fmt.Printf("energy saved: %.1f%% of compute energy (%.1f%% of round total), makespan unchanged: %.2fs vs %.2fs\n",
		(1-dvfsRun.ComputeEnergy/maxRun.ComputeEnergy)*100,
		(1-dvfsRun.TotalEnergy/maxRun.TotalEnergy)*100,
		dvfsRun.Makespan, maxRun.Makespan)
}
