// Compression: run the paper's Section I rivals — top-k sparsification and
// uniform quantization of model uploads — through the HELCFL system and
// compare them against lossless fp32 uploads. Compression shrinks C_model
// (Eq. 7) and thus round delay, but pays in accuracy; HELCFL's position is
// that scheduling attacks the same bottleneck without that sacrifice.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"helcfl"
	"helcfl/internal/compress"
	"helcfl/internal/experiments"
)

func main() {
	preset := helcfl.TinyPreset()

	compressors := []compress.Compressor{
		compress.None{},
		compress.NewTopK(0.10),
		compress.NewTopK(0.02),
		compress.NewUniform(8),
		compress.NewUniform(4),
	}

	ab, err := experiments.RunCompressionAblation(preset, helcfl.IID, 1, compressors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ab.Render())
	fmt.Println("top-k trades accuracy for wall-clock; low-bit quantization degrades")
	fmt.Println("once the grid becomes coarse. HELCFL keeps fp32 accuracy and recovers")
	fmt.Println("wall-clock through user selection and DVFS instead.")
}
