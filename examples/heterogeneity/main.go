// Heterogeneity: contrast how HELCFL, Classic FL, and FedCS schedule a
// heterogeneous fleet — who gets selected, how long rounds take, and which
// users' data ever enters training. This is the paper's Section V argument
// made observable: pure greedy selection (FedCS) never touches slow users,
// so their data never reaches the global model; HELCFL's greedy-decay
// utility rotates through everyone while still favouring fast devices.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"helcfl"
	"helcfl/internal/device"
	"helcfl/internal/selection"
	"helcfl/internal/sim"
)

func main() {
	env, err := helcfl.BuildEnv(helcfl.TinyPreset(), helcfl.IID, 7)
	if err != nil {
		log.Fatal(err)
	}
	p := env.Preset

	helcflPlanner, err := helcfl.NewHELCFLPlanner(env, helcfl.PresetSchedulerParams(p))
	if err != nil {
		log.Fatal(err)
	}
	classic := selection.NewClassicFL(env.Devices, p.Fraction, rand.New(rand.NewSource(42)))
	fedcs := selection.NewFedCS(env.Devices, env.Channel, env.ModelBits, p.FedCSDeadlineSec, p.LocalSteps)

	fmt.Println("fleet (sorted by device ID):")
	for _, d := range env.Devices {
		fmt.Printf("  v%-2d  f_max %.2f GHz  |D| = %d samples  h = %.2f\n",
			d.ID, d.FMax/1e9, d.NumSamples, d.ChannelGain)
	}
	fmt.Println()

	const rounds = 40
	type stats struct {
		seen      map[int]int
		totalTime float64
	}
	run := func(name string, planner helcfl.Planner) stats {
		st := stats{seen: map[int]int{}}
		for j := 0; j < rounds; j++ {
			sel, freqs := planner.PlanRound(j)
			devs := make([]*device.Device, len(sel))
			for i, q := range sel {
				devs[i] = env.Devices[q]
				st.seen[q]++
			}
			round := sim.SimulateRound(devs, freqs, env.Channel, env.ModelBits, p.LocalSteps)
			st.totalTime += round.Makespan
		}
		return st
	}

	for _, sc := range []struct {
		name    string
		planner helcfl.Planner
	}{
		{"HELCFL", helcflPlanner},
		{"ClassicFL", classic},
		{"FedCS", fedcs},
	} {
		st := run(sc.name, sc.planner)
		covered := 0
		for range st.seen {
			covered++
		}
		fmt.Printf("%-10s over %d rounds: covered %2d/%d users, mean round delay %.2fs\n",
			sc.name, rounds, covered, len(env.Devices), st.totalTime/rounds)
		fmt.Print("           selections per user:")
		for q := range env.Devices {
			fmt.Printf(" %d", st.seen[q])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("note how FedCS concentrates on a fixed fast cohort (zeros for slow")
	fmt.Println("users) while HELCFL covers everyone with a fast-user bias.")
}
