// Package helcfl is a from-scratch Go reproduction of "HELCFL:
// High-Efficiency and Low-Cost Federated Learning in Heterogeneous
// Mobile-Edge Computing" (Cui, Cao, Zhou, Wei — DATE 2022).
//
// The package is a facade over the full system:
//
//   - the HELCFL scheduler — utility-driven greedy-decay user selection
//     (Algorithm 2, Eq. 20) and DVFS-enabled operating-frequency
//     determination (Algorithm 3) — in internal/core;
//   - a federated-learning engine (Algorithm 1, FedAvg, separated-learning
//     baseline) over a from-scratch neural-network substrate (tensors,
//     layers including SqueezeNet-style Fire modules, GD training);
//   - the MEC cost substrate: DVFS devices (Eqs. 4–5), a TDMA Shannon-rate
//     uplink (Eqs. 6–8), and an event-accurate round-timeline simulator;
//   - the four baselines of the paper's evaluation (Classic FL, FedCS,
//     FEDL, SL) and the harness regenerating Fig. 2, Table I, and Fig. 3.
//
// # Quick start
//
//	res, err := helcfl.Train(helcfl.TinyPreset(), helcfl.IID, 1)
//	fig2, err := helcfl.RunFig2(helcfl.FastPreset(), helcfl.NonIID, 1)
//
// See the examples/ directory for runnable programs and cmd/helcfl for the
// experiment CLI.
package helcfl

import (
	"helcfl/internal/core"
	"helcfl/internal/experiments"
	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/selection"
)

// Setting selects the data distribution across users.
type Setting = experiments.Setting

// The two data settings of the paper's evaluation.
const (
	IID    = experiments.IID
	NonIID = experiments.NonIID
)

// Preset bundles every experiment parameter (fleet size, data scale,
// selection fraction C, decay coefficient η, model architecture, cost-model
// calibration, desired-accuracy targets).
type Preset = experiments.Preset

// PaperPreset returns the paper's Section VII-A configuration: Q = 100
// users, C = 0.1, 300 training iterations, 10-class data.
func PaperPreset() Preset { return experiments.Paper() }

// FastPreset returns a reduced configuration for demos and benchmarks.
func FastPreset() Preset { return experiments.Fast() }

// TinyPreset returns a unit-test-scale configuration.
func TinyPreset() Preset { return experiments.Tiny() }

// SlackRichPreset derives the cost-model variant in which DVFS slack — and
// therefore the Fig. 3 energy reduction — is maximal (the paper's ~58%
// regime).
func SlackRichPreset(p Preset) Preset { return experiments.SlackRich(p) }

// Env is a fully built experiment environment: synthetic dataset, user
// partition, heterogeneous DVFS fleet, TDMA channel, and model spec.
type Env = experiments.Env

// BuildEnv instantiates an environment deterministically from a seed.
func BuildEnv(p Preset, s Setting, seed int64) (*Env, error) {
	return experiments.BuildEnv(p, s, seed)
}

// Curve is an accuracy/time/energy training trajectory.
type Curve = metrics.Curve

// Point is one evaluated moment of a training run.
type Point = metrics.Point

// SchedulerParams configures the HELCFL core scheduler (η, C, local steps,
// frequency clamping).
type SchedulerParams = core.Params

// DefaultSchedulerParams returns the paper's scheduler setting.
func DefaultSchedulerParams() SchedulerParams { return core.DefaultParams() }

// PresetSchedulerParams derives the scheduler parameters (η, C, local
// steps) that a preset's experiments use.
func PresetSchedulerParams(p Preset) SchedulerParams {
	return SchedulerParams{Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true}
}

// Planner makes per-round selection + frequency decisions inside the FL
// engine.
type Planner = fl.Planner

// TrainConfig configures a single federated training run.
type TrainConfig = fl.Config

// TrainResult is a completed federated training run.
type TrainResult = fl.Result

// SchemeOrder lists the five schemes of the paper's comparison in display
// order: HELCFL, ClassicFL, FedCS, FEDL, SL.
var SchemeOrder = experiments.SchemeOrder

// Train runs one HELCFL training campaign on a fresh environment and
// returns the engine result. It is the simplest end-to-end entry point; use
// RunScheme for baselines or fl.Run via TrainConfig for full control.
func Train(p Preset, s Setting, seed int64) (*TrainResult, error) {
	env, err := experiments.BuildEnv(p, s, seed)
	if err != nil {
		return nil, err
	}
	_, res, err := experiments.RunScheme(env, "HELCFL")
	return res, err
}

// RunScheme trains one named scheme ("HELCFL", "HELCFL-noDVFS",
// "ClassicFL", "FedCS", "FEDL") on an environment and returns its curve and
// engine result.
func RunScheme(env *Env, scheme string) (Curve, *TrainResult, error) {
	return experiments.RunScheme(env, scheme)
}

// Fig2Result is one panel of the paper's Fig. 2.
type Fig2Result = experiments.Fig2Result

// RunFig2 reproduces one Fig. 2 panel: accuracy vs iteration for all five
// schemes on a shared environment.
func RunFig2(p Preset, s Setting, seed int64) (*Fig2Result, error) {
	return experiments.RunFig2(p, s, seed)
}

// TableIResult is the reproduction of Table I.
type TableIResult = experiments.TableIResult

// RunTableI reproduces Table I by training both settings' campaigns and
// extracting the training delay to each desired accuracy.
func RunTableI(p Preset, seed int64) (*TableIResult, map[Setting]*Fig2Result, error) {
	figs := map[Setting]*Fig2Result{}
	for _, s := range []Setting{IID, NonIID} {
		f, err := experiments.RunFig2(p, s, seed)
		if err != nil {
			return nil, nil, err
		}
		figs[s] = f
	}
	return experiments.BuildTableI(p, figs), figs, nil
}

// Fig3Result is the reproduction of Fig. 3.
type Fig3Result = experiments.Fig3Result

// RunFig3 reproduces Fig. 3: energy to each desired accuracy with and
// without Algorithm 3's frequency determination.
func RunFig3(p Preset, s Setting, seed int64) (*Fig3Result, error) {
	return experiments.RunFig3(p, s, seed)
}

// Headline summarizes the paper's abstract-level claims over a campaign.
type Headline = experiments.Headline

// BuildHeadline computes the measured counterparts of the paper's headline
// numbers from campaign results.
func BuildHeadline(figs map[Setting]*Fig2Result, tbl *TableIResult, fig3s map[Setting]*Fig3Result) *Headline {
	return experiments.BuildHeadline(figs, tbl, fig3s)
}

// NewHELCFLPlanner builds the HELCFL scheduler as a Planner over an
// environment, for embedding in custom fl.Config runs.
func NewHELCFLPlanner(env *Env, params SchedulerParams) (Planner, error) {
	return selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, params)
}
