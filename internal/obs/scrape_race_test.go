package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRegistryRegisterWhileScrape is the -race regression test for the
// family collector fields: Registry.Counter/Gauge/Histogram assign
// f.counter/f.gauge/f.hist under f.mu, and family.write must load them
// under the same lock. The span histogram bridge registers lazily per
// span name, so register-during-WritePrometheus is a real production
// interleaving, not a test artifact.
func TestRegistryRegisterWhileScrape(t *testing.T) {
	reg := NewRegistry()
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reg.Counter(fmt.Sprintf("race_counter_%d", i), "").Inc()
			reg.Gauge(fmt.Sprintf("race_gauge_%d", i), "").Set(float64(i))
			reg.Histogram(fmt.Sprintf("race_hist_%d", i), "", DefSecondsBuckets()).Observe(0.1)
		}
	}()
	wg.Wait()
	// Final scrape must see every family fully registered.
	var sb writerFunc
	count := 0
	sb = func(p []byte) (int, error) { count += len(p); return len(p), nil }
	if err := reg.WritePrometheus(sb); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("final scrape produced no output")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
