package span

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"helcfl/internal/obs"
)

func TestBridgeObservesIntoRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBridge(reg)
	r := NewRecorder(1, Options{Exporter: b})
	for i := 0; i < 3; i++ {
		sp := r.Start(Ref{}, "fl.round.train")
		sp.End()
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "helcfl_span_fl_round_train_seconds_count 3") {
		t.Fatalf("bridge histogram missing from exposition:\n%s", out)
	}
	if NewBridge(nil) != nil {
		t.Fatal("nil registry should yield nil bridge")
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"fl.round.train": "helcfl_span_fl_round_train_seconds",
		"HTTP-Server":    "helcfl_span_http_server_seconds",
		"grid.cell":      "helcfl_span_grid_cell_seconds",
	}
	for in, want := range cases {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestBridgeRegisterWhileScrape exercises the production interleaving
// behind the registry race fix: the bridge lazily registers a histogram
// per span name while another goroutine scrapes /metrics. Run under
// -race this pins that lazy bridge registration and exposition are safe
// together.
func TestBridgeRegisterWhileScrape(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBridge(reg)
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			b.ExportSpan(Rec{Name: fmt.Sprintf("phase.%d", i), DurNs: int64(i) * 1000})
		}
	}()
	wg.Wait()
}
