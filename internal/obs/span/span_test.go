package span

import (
	"strings"
	"sync"
	"testing"
)

func TestStartEndRecordsHierarchy(t *testing.T) {
	r := NewRecorder(42, Options{})
	root := r.Start(Ref{}, "run")
	child := r.Start(root.Ref(), "round")
	child.SetInt("round", 3)
	child.SetFloat("model_sec", 1.5)
	child.SetStr("scheme", "HELCFL")
	child.End()
	root.End()

	recs := r.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	if recs[0].Name != "round" || recs[1].Name != "run" {
		t.Fatalf("unexpected order: %q, %q", recs[0].Name, recs[1].Name)
	}
	if recs[0].Trace != 42 || recs[1].Trace != 42 {
		t.Fatalf("trace ids: %d, %d", recs[0].Trace, recs[1].Trace)
	}
	if recs[0].Parent != recs[1].Span {
		t.Fatalf("child parent %d != root span %d", recs[0].Parent, recs[1].Span)
	}
	if v, ok := recs[0].IntAttr("round"); !ok || v != 3 {
		t.Fatalf("round attr: %d, %v", v, ok)
	}
	if v, ok := recs[0].FloatAttr("model_sec"); !ok || v != 1.5 {
		t.Fatalf("model_sec attr: %g, %v", v, ok)
	}
	if v, ok := recs[0].StrAttr("scheme"); !ok || v != "HELCFL" {
		t.Fatalf("scheme attr: %q, %v", v, ok)
	}
	if err := Validate(recs); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteParentAdoptsTrace(t *testing.T) {
	r := NewRecorder(7, Options{})
	remote := Ref{Trace: 99, Span: 5}
	sp := r.Start(remote, "http.server")
	sp.End()
	recs := r.Snapshot()
	if recs[0].Trace != 99 || recs[0].Parent != 5 {
		t.Fatalf("remote stitch: trace %d parent %d", recs[0].Trace, recs[0].Parent)
	}
	// Without a remote parent the recorder's own trace applies.
	sp2 := r.Start(Ref{}, "local")
	sp2.End()
	if recs := r.Snapshot(); recs[1].Trace != 7 {
		t.Fatalf("local trace %d, want 7", recs[1].Trace)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(1, Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		sp := r.Start(Ref{}, "s")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	for j, rec := range recs {
		if v, _ := rec.IntAttr("i"); v != int64(6+j) {
			t.Fatalf("rec %d has i=%d, want %d (oldest-first order)", j, v, 6+j)
		}
	}
	if d := r.Dropped(); d != 6 {
		t.Fatalf("dropped %d, want 6", d)
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	r := NewRecorder(1, Options{})
	sp := r.Start(Ref{}, "once")
	sp.End()
	sp.End()
	if n := len(r.Snapshot()); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.Start(Ref{}, "ignored")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	if !sp.Ref().IsZero() {
		t.Fatal("nil recorder issued an ID")
	}
	if r.Snapshot() != nil || r.Dropped() != 0 || r.TraceID() != 0 || !r.Root().IsZero() {
		t.Fatal("nil recorder leaked state")
	}
}

// TestNilRecorderZeroAllocs pins the tentpole guarantee: with no Recorder
// installed, the full instrument-a-phase call pattern (Start, attrs, Ref,
// End) costs zero allocations.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		sp := r.Start(Ref{}, "phase")
		sp.SetInt("round", 1)
		sp.SetFloat("model_sec", 2.5)
		child := r.Start(sp.Ref(), "inner")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.0f/op, want 0", allocs)
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	r := NewRecorder(1, Options{})
	sp := r.Start(Ref{}, "s")
	for i := 0; i < maxAttrs+3; i++ {
		sp.SetInt("k", int64(i))
	}
	sp.End()
	if got := len(r.Snapshot()[0].Attrs); got != maxAttrs {
		t.Fatalf("kept %d attrs, want %d", got, maxAttrs)
	}
}

func TestFormatParseRefRoundTrip(t *testing.T) {
	refs := []Ref{{}, {Trace: 1, Span: 2}, {Trace: ^uint64(0), Span: 0xdeadbeef}}
	for _, want := range refs {
		s := FormatRef(want)
		got, err := ParseRef(s)
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v want %+v", s, got, want)
		}
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 33), strings.Repeat("0", 16) + ":" + strings.Repeat("0", 16), strings.Repeat("g", 16) + "-" + strings.Repeat("0", 16)} {
		if _, err := ParseRef(bad); err == nil {
			t.Fatalf("ParseRef(%q) accepted", bad)
		}
	}
}

func TestJSONLExportAndRead(t *testing.T) {
	var sb strings.Builder
	jl := NewJSONL(&sb)
	r := NewRecorder(3, Options{Exporter: jl})
	parent := r.Start(Ref{}, "outer")
	child := r.Start(parent.Ref(), "inner")
	child.SetStr("key", "v")
	child.End()
	parent.End()
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d recs, want 2", len(recs))
	}
	if err := Validate(recs); err != nil {
		t.Fatal(err)
	}
	if recs[0].Name != "inner" || recs[1].Name != "outer" {
		t.Fatalf("order: %q, %q", recs[0].Name, recs[1].Name)
	}
}

func TestReadTornTailTolerated(t *testing.T) {
	full := `{"trace":1,"span":1,"name":"a","start_ns":0,"dur_ns":1,"v":1}` + "\n"
	torn := full + `{"trace":1,"span":2,"name":"b","sta`
	recs, err := Read(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "a" {
		t.Fatalf("torn tail: got %d recs", len(recs))
	}
	// A malformed line mid-stream is corruption, not truncation.
	if _, err := Read(strings.NewReader(`{"bad` + "\n" + full)); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}

func TestReadSkipsNonSpanLines(t *testing.T) {
	input := `{"flightrec":1,"pid":7}` + "\n" +
		`{"trace":1,"span":1,"name":"a","start_ns":0,"dur_ns":1,"v":1}` + "\n" +
		`{"event":"RoundEnd","data":{"Round":0}}` + "\n"
	recs, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "a" {
		t.Fatalf("got %d span recs", len(recs))
	}
}

func TestReadRejectsNewerSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"trace":1,"span":1,"name":"a","v":99}` + "\n")); err == nil {
		t.Fatal("newer schema accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	base := Rec{Trace: 1, Span: 1, Name: "a", V: 1}
	cases := []struct {
		name string
		recs []Rec
	}{
		{"zero span id", []Rec{{Trace: 1, Name: "a"}}},
		{"negative dur", []Rec{{Trace: 1, Span: 1, Name: "a", DurNs: -1}}},
		{"duplicate id", []Rec{base, base}},
		{"dangling parent", []Rec{{Trace: 1, Span: 2, Parent: 9, Name: "b"}}},
		{"bad attr kind", []Rec{{Trace: 1, Span: 1, Name: "a", Attrs: []Attr{{Key: "k", Kind: "x"}}}}},
	}
	for _, c := range cases {
		if err := Validate(c.recs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestProfileAggregates(t *testing.T) {
	p := NewProfile()
	r := NewRecorder(1, Options{Exporter: p})
	for i := 0; i < 3; i++ {
		sp := r.Start(Ref{}, "b.phase")
		sp.End()
	}
	sp := r.Start(Ref{}, "a.phase")
	sp.End()
	snap := p.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a.phase" || snap[1].Name != "b.phase" {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap[1].Count != 3 {
		t.Fatalf("b.phase count %d", snap[1].Count)
	}
	if !strings.Contains(p.String(), "b.phase") {
		t.Fatal("String() missing phase")
	}
}

func TestDurationStats(t *testing.T) {
	recs := make([]Rec, 0, 20)
	for i := 1; i <= 20; i++ {
		recs = append(recs, Rec{Name: "x", DurNs: int64(i) * 1e9})
	}
	recs = append(recs, Rec{Name: "other", DurNs: 1e12})
	s := DurationStats(recs, "x")
	if s.Count != 20 || s.MinSec != 1 || s.MaxSec != 20 {
		t.Fatalf("stats: %+v", s)
	}
	if s.P50Sec != 10 || s.P95Sec != 19 {
		t.Fatalf("percentiles: p50=%g p95=%g", s.P50Sec, s.P95Sec)
	}
	if s.TotalSec != 210 {
		t.Fatalf("total %g", s.TotalSec)
	}
	if z := DurationStats(recs, "absent"); z.Count != 0 {
		t.Fatalf("absent name: %+v", z)
	}
}

func TestConcurrentStartEnd(t *testing.T) {
	r := NewRecorder(1, Options{Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := r.Start(r.Root(), "worker")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if r.Dropped() != 800-128 {
		t.Fatalf("dropped %d, want %d", r.Dropped(), 800-128)
	}
	if err := Validate(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestExportersDropNils(t *testing.T) {
	if Exporters(nil, nil) != nil {
		t.Fatal("all-nil Exporters not nil")
	}
	c := &Collector{}
	if Exporters(nil, c) != Exporter(c) {
		t.Fatal("single exporter not unwrapped")
	}
	p := NewProfile()
	multi := Exporters(c, p)
	multi.ExportSpan(Rec{Name: "m", DurNs: 1})
	if len(c.Snapshot()) != 1 || len(p.Snapshot()) != 1 {
		t.Fatal("multi exporter did not fan out")
	}
}
