package span

import "context"

// ctxKey keys the recorder+parent pair in a context.
type ctxKey struct{}

type ctxVal struct {
	rec    *Recorder
	parent Ref
}

// NewContext installs a recorder in ctx with the trace root as the
// current parent. A nil recorder returns ctx unchanged, preserving the
// nothing-installed fast path downstream.
func NewContext(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{rec: rec, parent: rec.Root()})
}

// WithParent rebinds the current parent ref, so spans started from the
// returned context nest under parent. A nil recorder returns ctx
// unchanged.
func WithParent(ctx context.Context, rec *Recorder, parent Ref) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{rec: rec, parent: parent})
}

// FromContext extracts the installed recorder and current parent ref.
// Returns (nil, zero Ref) when no recorder is installed; the nil result
// is itself a valid inert tracer.
func FromContext(ctx context.Context) (*Recorder, Ref) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.rec, v.parent
	}
	return nil, Ref{}
}

// StartCtx starts a span under the context's current parent and returns a
// child context whose parent is the new span, plus the span itself. With
// no recorder installed it returns ctx unchanged and the zero Span — no
// allocation, no clock read.
func StartCtx(ctx context.Context, name string) (context.Context, Span) {
	rec, parent := FromContext(ctx)
	if rec == nil {
		return ctx, Span{}
	}
	sp := rec.Start(parent, name)
	return WithParent(ctx, rec, sp.Ref()), sp
}
