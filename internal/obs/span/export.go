package span

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Exporters fans out to several exporters; nils are dropped. Returns nil
// when nothing remains, so callers can pass the result straight to
// Options.Exporter.
func Exporters(exps ...Exporter) Exporter {
	var kept []Exporter
	for _, e := range exps {
		if e != nil {
			kept = append(kept, e)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiExporter(kept)
}

type multiExporter []Exporter

func (m multiExporter) ExportSpan(rec Rec) {
	for _, e := range m {
		e.ExportSpan(rec)
	}
}

// Collector buffers every exported span in memory, unbounded — unlike the
// recorder ring it never drops. Used by tests and the bench harness to
// compute duration statistics after a run.
type Collector struct {
	mu   sync.Mutex
	recs []Rec
}

// ExportSpan implements Exporter.
func (c *Collector) ExportSpan(rec Rec) {
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
}

// Snapshot returns a copy of the collected spans in export order.
func (c *Collector) Snapshot() []Rec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Rec, len(c.recs))
	copy(out, c.recs)
	return out
}

// ProfileEntry aggregates every span sharing one name.
type ProfileEntry struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// Profile is the aggregated per-phase exporter: it folds spans into one
// entry per name. Safe for concurrent export.
type Profile struct {
	mu      sync.Mutex
	names   []string // insertion order, sorted on snapshot
	entries map[string]*ProfileEntry
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{entries: make(map[string]*ProfileEntry)}
}

// ExportSpan implements Exporter.
func (p *Profile) ExportSpan(rec Rec) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[rec.Name]
	if e == nil {
		e = &ProfileEntry{Name: rec.Name, MinNs: rec.DurNs, MaxNs: rec.DurNs}
		p.entries[rec.Name] = e
		p.names = append(p.names, rec.Name)
	}
	e.Count++
	e.TotalNs += rec.DurNs
	if rec.DurNs < e.MinNs {
		e.MinNs = rec.DurNs
	}
	if rec.DurNs > e.MaxNs {
		e.MaxNs = rec.DurNs
	}
}

// Snapshot returns the entries sorted by name.
func (p *Profile) Snapshot() []ProfileEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, len(p.names))
	copy(names, p.names)
	sort.Strings(names)
	out := make([]ProfileEntry, len(names))
	for i, n := range names {
		out[i] = *p.entries[n]
	}
	return out
}

// String renders the profile as an aligned table.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %8s %12s %12s %12s %12s\n", "phase", "count", "total-s", "mean-s", "min-s", "max-s")
	for _, e := range p.Snapshot() {
		mean := 0.0
		if e.Count > 0 {
			mean = secs(e.TotalNs) / float64(e.Count)
		}
		fmt.Fprintf(&sb, "%-24s %8d %12.6f %12.6f %12.6f %12.6f\n",
			e.Name, e.Count, secs(e.TotalNs), mean, secs(e.MinNs), secs(e.MaxNs))
	}
	return sb.String()
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

// Stats summarizes the duration distribution of one span name, in
// seconds, for machine-readable reports (BENCH_experiments.json).
type Stats struct {
	Count    int     `json:"count"`
	MinSec   float64 `json:"min_sec"`
	P50Sec   float64 `json:"p50_sec"`
	P95Sec   float64 `json:"p95_sec"`
	MaxSec   float64 `json:"max_sec"`
	TotalSec float64 `json:"total_sec"`
}

// DurationStats computes Stats over every rec matching name. Percentiles
// use the nearest-rank method on the sorted durations; the zero Stats is
// returned when nothing matches.
func DurationStats(recs []Rec, name string) Stats {
	var durs []int64
	var total int64
	for _, r := range recs {
		if r.Name != name {
			continue
		}
		durs = append(durs, r.DurNs)
		total += r.DurNs
	}
	if len(durs) == 0 {
		return Stats{}
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	rank := func(p float64) int64 {
		i := int(p*float64(len(durs))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(durs) {
			i = len(durs) - 1
		}
		return durs[i]
	}
	return Stats{
		Count:    len(durs),
		MinSec:   secs(durs[0]),
		P50Sec:   secs(rank(0.50)),
		P95Sec:   secs(rank(0.95)),
		MaxSec:   secs(durs[len(durs)-1]),
		TotalSec: secs(total),
	}
}
