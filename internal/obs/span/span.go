// Package span is a zero-dependency, allocation-conscious span tracer for
// attributing measured wall time to the same phases HELCFL models
// analytically (Eq. 4-5 compute, Eq. 7-8 upload): a span is a name, a
// parent reference, a monotonic start/duration pair, and a small set of
// typed attributes. Spans are recorded into a fixed-capacity ring buffer
// owned by a Recorder and optionally streamed to exporters (JSONL, a
// Prometheus-histogram bridge into the obs registry, an aggregated
// per-phase profile).
//
// Design constraints, in priority order:
//
//  1. Zero overhead when tracing is off. Every method is nil-safe on a nil
//     *Recorder: Start returns the zero Span, End on a zero Span is a
//     no-op, and neither reads the clock nor allocates. Instrumented code
//     therefore never guards call sites.
//  2. Deterministic structure. Span IDs come from a per-recorder counter
//     and trace IDs from the caller (the CLI derives them from the run
//     seed), so two runs of the same campaign produce the same span
//     count, names, parents, and attributes — only durations differ.
//     The only wall-clock reads live in now(), the package's single
//     audited nondeterminism site.
//  3. Goroutine safety. Start is lock-free (an atomic ID counter plus a
//     clock read); End takes the recorder mutex only to push into the
//     ring, and exporters run outside that lock.
package span

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// now is the package's only wall-clock read. Span timestamps are
// intentionally nondeterministic — measuring real elapsed time is the
// point — so this single audited site carries the lint exemption for the
// whole package; everything else derives times via time.Time arithmetic.
func now() time.Time {
	return time.Now() //helcfl:allow(nondeterminism) monotonic clock read is the tracer's purpose; all span times derive from this one site
}

// Ref identifies a span within a trace. The zero Ref means "no parent";
// a Ref with a zero Span but non-zero Trace parents a span directly under
// the trace root (used when stitching across processes).
type Ref struct {
	Trace uint64 `json:"trace"`
	Span  uint64 `json:"span"`
}

// IsZero reports whether the Ref carries no identity at all.
func (r Ref) IsZero() bool { return r.Trace == 0 && r.Span == 0 }

// FormatRef renders a Ref for the Helcfl-Trace HTTP header:
// 16 lowercase hex digits of trace ID, a dash, 16 of span ID.
func FormatRef(r Ref) string {
	return fmt.Sprintf("%016x-%016x", r.Trace, r.Span)
}

// ParseRef parses the FormatRef encoding. It rejects anything that is not
// exactly two 16-digit lowercase hex fields joined by a dash.
func ParseRef(s string) (Ref, error) {
	if len(s) != 33 || s[16] != '-' {
		return Ref{}, fmt.Errorf("span: bad ref %q", s)
	}
	var r Ref
	var err error
	if r.Trace, err = parseHex16(s[:16]); err != nil {
		return Ref{}, fmt.Errorf("span: bad ref %q: %w", s, err)
	}
	if r.Span, err = parseHex16(s[17:]); err != nil {
		return Ref{}, fmt.Errorf("span: bad ref %q: %w", s, err)
	}
	return r, nil
}

func parseHex16(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, fmt.Errorf("non-hex byte %q", c)
		}
	}
	return v, nil
}

// Attribute kind tags used in the JSONL encoding.
const (
	KindInt   = "i"
	KindFloat = "f"
	KindStr   = "s"
)

// Attr is one typed span attribute. Exactly one of Int/Float/Str is
// meaningful, selected by Kind.
type Attr struct {
	Key   string  `json:"k"`
	Kind  string  `json:"t"`
	Int   int64   `json:"i,omitempty"`
	Float float64 `json:"f,omitempty"`
	Str   string  `json:"s,omitempty"`
}

// maxAttrs bounds per-span attributes so Span stays a fixed-size value
// type with no heap storage; extra SetX calls are silently dropped.
const maxAttrs = 8

// Exporter receives each completed span record. Implementations must be
// safe for concurrent use; they are invoked outside the recorder lock.
type Exporter interface {
	ExportSpan(Rec)
}

// Options configures a Recorder.
type Options struct {
	// Capacity is the ring-buffer size in spans; 0 means DefaultCapacity.
	Capacity int
	// Exporter, if non-nil, additionally receives every completed span.
	Exporter Exporter
}

// DefaultCapacity is the ring size used when Options.Capacity is zero —
// large enough to hold a full tiny-preset fig2 campaign.
const DefaultCapacity = 4096

// Recorder owns the span ring buffer and issues span IDs. A nil *Recorder
// is a valid, fully inert tracer. The zero trace ID is reserved to mean
// "untraced"; NewRecorder maps it to 1.
type Recorder struct {
	trace  uint64
	epoch  time.Time
	ids    atomic.Uint64
	export Exporter

	mu    sync.Mutex
	ring  []Rec
	next  int    // ring write cursor
	total uint64 // spans ever recorded, including overwritten
}

// NewRecorder builds a Recorder for one trace. traceID seeds the identity
// carried by every span (callers derive it from the run seed for
// determinism); zero is promoted to 1 so emitted refs are never mistaken
// for "no trace".
func NewRecorder(traceID uint64, opt Options) *Recorder {
	if traceID == 0 {
		traceID = 1
	}
	cap := opt.Capacity
	if cap <= 0 {
		cap = DefaultCapacity
	}
	return &Recorder{
		trace:  traceID,
		epoch:  now(),
		export: opt.Exporter,
		ring:   make([]Rec, 0, cap),
	}
}

// TraceID returns the recorder's trace identity (0 for a nil recorder).
func (r *Recorder) TraceID() uint64 {
	if r == nil {
		return 0
	}
	return r.trace
}

// Root returns the Ref that parents top-level spans of this trace: the
// trace ID with span 0. Zero Ref on a nil recorder.
func (r *Recorder) Root() Ref {
	if r == nil {
		return Ref{}
	}
	return Ref{Trace: r.trace}
}

// Start opens a span. parent may be the zero Ref (trace root), a Ref from
// another span's Ref method, or a remote Ref parsed off the Helcfl-Trace
// header — when the parent carries a trace ID the child adopts it, so
// cross-process rounds stitch into the caller's trace automatically.
// On a nil recorder Start returns the zero Span without touching the
// clock or allocating.
func (r *Recorder) Start(parent Ref, name string) Span {
	if r == nil {
		return Span{}
	}
	tr := parent.Trace
	if tr == 0 {
		tr = r.trace
	}
	return Span{
		rec:    r,
		trace:  tr,
		id:     r.ids.Add(1),
		parent: parent.Span,
		name:   name,
		start:  now(),
	}
}

// Snapshot returns the buffered spans oldest-first. The returned slice is
// a copy; nil on a nil recorder.
func (r *Recorder) Snapshot() []Rec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) || r.next == 0 {
		out := make([]Rec, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]Rec, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dropped returns how many spans have been overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(cap(r.ring)) {
		return 0
	}
	return r.total - uint64(cap(r.ring))
}

// record pushes a completed span into the ring and hands it to the
// exporter outside the lock.
func (r *Recorder) record(rec Rec) {
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
		r.next = len(r.ring) % cap(r.ring)
	} else {
		r.ring[r.next] = rec
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.total++
	exp := r.export
	r.mu.Unlock()
	if exp != nil {
		exp.ExportSpan(rec)
	}
}

// Span is an open span. It is a plain value — copy it, embed it in a
// struct, pass it down a call chain — and attribute setters plus End use
// pointer receivers so they mutate the local copy. The zero Span (from a
// nil recorder) ignores every method.
type Span struct {
	rec    *Recorder
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  time.Time
	n      int
	attrs  [maxAttrs]Attr
}

// Ref returns the span's identity for parenting children or propagating
// over HTTP. Zero Ref on the zero Span.
func (s *Span) Ref() Ref { return Ref{Trace: s.trace, Span: s.id} }

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s.rec == nil || s.n >= maxAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Kind: KindInt, Int: v}
	s.n++
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s.rec == nil || s.n >= maxAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Kind: KindFloat, Float: v}
	s.n++
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s.rec == nil || s.n >= maxAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Kind: KindStr, Str: v}
	s.n++
}

// End closes the span and records it. Safe on the zero Span; a second End
// is a no-op (the first clears the recorder pointer).
func (s *Span) End() {
	r := s.rec
	if r == nil {
		return
	}
	s.rec = nil
	rec := Rec{
		Trace:   s.trace,
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.start.Sub(r.epoch).Nanoseconds(),
		DurNs:   now().Sub(s.start).Nanoseconds(),
		V:       SchemaVersion,
	}
	if s.n > 0 {
		rec.Attrs = make([]Attr, s.n)
		copy(rec.Attrs, s.attrs[:s.n])
	}
	r.record(rec)
}
