package span

import (
	"strings"
	"testing"
)

// FuzzRead mirrors the checkpoint/trace fuzz corpus style: the span JSONL
// parser must never panic on arbitrary input, and anything it accepts
// must be structurally sane enough to re-serialize. Seeds cover the
// failure modes the decoder is designed around: torn tails from crashed
// writers, bad parent refs, interleaved flight-recorder lines, and
// future schema versions.
func FuzzRead(f *testing.F) {
	valid := `{"trace":1,"span":1,"name":"fl.round","start_ns":10,"dur_ns":20,"attrs":[{"k":"round","t":"i","i":3}],"v":1}` + "\n"
	f.Add("")
	f.Add("{}\n")
	f.Add(valid)
	f.Add("not json\n")
	f.Add(`{"trace":1,"span":1,"name":"a","v":99}` + "\n")
	f.Add(valid + `{"trace":1,"span":2,"name":"torn","sta`)                           // torn tail
	f.Add(`{"trace":1,"span":2,"parent":777,"name":"dangling","v":1}` + "\n")         // bad parent ref
	f.Add(`{"flightrec":1,"pid":1}` + "\n" + valid + `{"event":"RunEnd"}` + "\n")     // flight dump interleave
	f.Add(`{"trace":1,"span":1,"name":"a","attrs":[{"k":"x","t":"?"}],"v":1}` + "\n") // unknown attr kind
	f.Add(strings.Repeat(valid, 5))
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Validate may reject (e.g. dangling parents) but must not panic.
		_ = Validate(recs)
		// Accepted records must survive a write/read round trip through the
		// JSONL exporter encoding.
		var sb strings.Builder
		jl := NewJSONL(&sb)
		for _, r := range recs {
			jl.ExportSpan(r)
		}
		if err := jl.Flush(); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip lost records: %d -> %d", len(recs), len(again))
		}
	})
}
