package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// SchemaVersion is bumped on breaking changes to Rec.
const SchemaVersion = 1

// Rec is one completed span in the JSONL artifact. Times are nanoseconds:
// StartNs is relative to the recorder's epoch (so two processes in one
// trace have independent origins — ordering is only meaningful within a
// process), DurNs is a monotonic-clock duration.
type Rec struct {
	Trace   uint64 `json:"trace"`
	Span    uint64 `json:"span"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
	V       int    `json:"v"`
}

// Attr returns the attribute with the given key, or false.
func (r Rec) Attr(key string) (Attr, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// FloatAttr returns a float attribute's value, or 0/false.
func (r Rec) FloatAttr(key string) (float64, bool) {
	a, ok := r.Attr(key)
	if !ok || a.Kind != KindFloat {
		return 0, false
	}
	return a.Float, true
}

// IntAttr returns an int attribute's value, or 0/false.
func (r Rec) IntAttr(key string) (int64, bool) {
	a, ok := r.Attr(key)
	if !ok || a.Kind != KindInt {
		return 0, false
	}
	return a.Int, true
}

// StrAttr returns a string attribute's value, or ""/false.
func (r Rec) StrAttr(key string) (string, bool) {
	a, ok := r.Attr(key)
	if !ok || a.Kind != KindStr {
		return "", false
	}
	return a.Str, true
}

// Read parses a span JSONL stream. It is deliberately forgiving about two
// real-world artifacts: a torn final line (a crash mid-write leaves a
// truncated tail, which is tolerated — the valid prefix is returned) and
// interleaved non-span lines (flight-recorder dumps mix span records with
// event and metadata lines; anything without a "name" field is skipped).
// A mid-stream malformed line is still a hard error, as is a schema
// version newer than this reader.
func Read(r io.Reader) ([]Rec, error) {
	var out []Rec
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Rec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			if sc.Scan() {
				// More lines follow: corruption, not a torn tail.
				return nil, fmt.Errorf("span: line %d: %w", line, err)
			}
			break
		}
		if rec.Name == "" {
			continue // event / metadata line in a flight dump
		}
		if rec.V > SchemaVersion {
			return nil, fmt.Errorf("span: line %d: schema v%d newer than supported v%d", line, rec.V, SchemaVersion)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span: scan: %w", err)
	}
	return out, nil
}

// Validate checks structural invariants of a span set: every span has a
// name and a non-zero ID, times are non-negative, (trace, span) pairs are
// unique, every non-zero parent resolves to a span in the same trace (or
// is a cross-process stitch, which resolves against the whole set), and
// attributes carry known kinds with finite floats.
func Validate(recs []Rec) error {
	type key struct{ tr, sp uint64 }
	seen := make(map[key]bool, len(recs))
	for i, r := range recs {
		if r.Name == "" {
			return fmt.Errorf("span: rec %d: empty name", i)
		}
		if r.Span == 0 {
			return fmt.Errorf("span: rec %d (%s): zero span id", i, r.Name)
		}
		if r.StartNs < 0 || r.DurNs < 0 {
			return fmt.Errorf("span: rec %d (%s): negative time", i, r.Name)
		}
		k := key{r.Trace, r.Span}
		if seen[k] {
			return fmt.Errorf("span: rec %d (%s): duplicate id %016x-%016x", i, r.Name, r.Trace, r.Span)
		}
		seen[k] = true
		for _, a := range r.Attrs {
			switch a.Kind {
			case KindInt, KindStr:
			case KindFloat:
				if math.IsNaN(a.Float) || math.IsInf(a.Float, 0) {
					return fmt.Errorf("span: rec %d (%s): attr %s is %g", i, r.Name, a.Key, a.Float)
				}
			default:
				return fmt.Errorf("span: rec %d (%s): attr %s has unknown kind %q", i, r.Name, a.Key, a.Kind)
			}
		}
	}
	for i, r := range recs {
		if r.Parent == 0 {
			continue
		}
		if !seen[key{r.Trace, r.Parent}] {
			return fmt.Errorf("span: rec %d (%s): dangling parent %016x-%016x", i, r.Name, r.Trace, r.Parent)
		}
	}
	return nil
}

// JSONL streams every exported span as one JSON line. Encode errors are
// sticky and surfaced by Flush, keeping ExportSpan cheap on the hot path.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL exporter writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// ExportSpan implements Exporter.
func (j *JSONL) ExportSpan(rec Rec) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(rec); err != nil {
		j.err = fmt.Errorf("span: encode %s: %w", rec.Name, err)
	}
}

// Flush drains the write buffer and returns the first streaming error.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.bw.Flush()
}
