package span

import (
	"strings"
	"sync"

	"helcfl/internal/obs"
)

// Bridge exports span durations into the obs registry as per-name
// histograms, so /metrics exposes the same phase timings the JSONL
// artifact records. Histograms are registered lazily on the first span of
// each name (registration is idempotent in the registry); the local cache
// only avoids re-deriving the metric name per span.
type Bridge struct {
	reg *obs.Registry

	mu    sync.Mutex
	hists map[string]*obs.Histogram
}

// NewBridge builds a bridge into reg. A nil registry yields a nil bridge,
// which Exporters drops.
func NewBridge(reg *obs.Registry) *Bridge {
	if reg == nil {
		return nil
	}
	return &Bridge{reg: reg, hists: make(map[string]*obs.Histogram)}
}

// bridgeBuckets spans 1 µs .. ~1 hour: phase spans range from
// sub-millisecond scheduler solves to multi-minute campaign cells.
func bridgeBuckets() []float64 { return obs.ExpBuckets(1e-6, 4, 16) }

// ExportSpan implements Exporter.
func (b *Bridge) ExportSpan(rec Rec) {
	b.mu.Lock()
	h := b.hists[rec.Name]
	if h == nil {
		h = b.reg.Histogram(metricName(rec.Name), "Measured duration of "+rec.Name+" spans.", bridgeBuckets())
		b.hists[rec.Name] = h
	}
	b.mu.Unlock()
	h.Observe(secs(rec.DurNs))
}

// metricName maps a span name to a Prometheus metric name:
// "fl.round.train" → "helcfl_span_fl_round_train_seconds".
func metricName(span string) string {
	var sb strings.Builder
	sb.WriteString("helcfl_span_")
	for i := 0; i < len(span); i++ {
		c := span[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			sb.WriteByte(c + ('a' - 'A'))
		default:
			sb.WriteByte('_')
		}
	}
	sb.WriteString("_seconds")
	return sb.String()
}
