package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the default registry — the endpoint the CLIs mount on
// /metrics.
func Handler() http.Handler { return Default().Handler() }

// HealthzHandler answers 200 "ok" — a liveness probe target.
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// MountDebug attaches the observability surface to a mux: the registry on
// /metrics, a liveness probe on /healthz, and the net/http/pprof profilers
// under /debug/pprof/.
func MountDebug(mux *http.ServeMux, r *Registry) {
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/healthz", HealthzHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
