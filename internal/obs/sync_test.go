package obs

import (
	"sync"
	"testing"
)

// countingSink is deliberately not safe for concurrent use: plain int
// increments that the race detector flags when called from two goroutines.
type countingSink struct {
	NopSink
	rounds int
	runs   int
}

func (c *countingSink) OnRoundEnd(RoundEndEvent) { c.rounds++ }
func (c *countingSink) OnRunEnd(RunEndEvent)     { c.runs++ }

func TestSynchronizedNil(t *testing.T) {
	if Synchronized(nil) != nil {
		t.Fatal("Synchronized(nil) must stay nil to keep the fast path")
	}
}

func TestSynchronizedSerializesConcurrentEngines(t *testing.T) {
	raw := &countingSink{}
	s := Synchronized(raw)
	const engines, rounds = 8, 50
	var wg sync.WaitGroup
	for e := 0; e < engines; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s.OnRoundEnd(RoundEndEvent{Round: r})
			}
			s.OnRunEnd(RunEndEvent{})
		}()
	}
	wg.Wait()
	if raw.rounds != engines*rounds {
		t.Fatalf("rounds = %d, want %d", raw.rounds, engines*rounds)
	}
	if raw.runs != engines {
		t.Fatalf("runs = %d, want %d", raw.runs, engines)
	}
}
