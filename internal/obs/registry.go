// Package obs is the runtime observability layer: a stdlib-only,
// concurrency-safe metrics registry (atomic counters, gauges, fixed-bucket
// histograms, timer spans) with Prometheus text-format exposition, plus the
// structured EventSink hook interface the FL engine fires on its hot paths.
//
// The registry is the live complement to the post-hoc JSONL artifact in
// internal/trace: a campaign wired with a MetricsSink exposes Eq. (10)
// round delay, Eq. (11) energy, Algorithm 2 selection fairness, and
// Algorithm 3 slack reclamation as scrapeable time series while it runs.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing float64, safe for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by v; negative deltas panic (counters only go
// up — use a Gauge for values that can fall).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter decremented by %g", v))
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the value by v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as IEEE-754 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// counts[i] tallies observations ≤ bounds[i], with an implicit +Inf bucket
// at the end. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// newHistogram validates bounds (strictly increasing, finite) and builds the
// histogram.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: non-finite bucket bound %g", b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: bucket bounds not increasing at %g", b))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Snapshot is a point-in-time histogram copy for reporting.
type Snapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the per-bucket
	// (non-cumulative) tally, with Counts[len(Bounds)] the +Inf overflow.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the current state. Concurrent Observes may land between
// field reads; the result is still a valid histogram.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket, the standard Prometheus histogram_quantile
// scheme. Returns 0 with no observations; observations in the +Inf bucket
// clamp to the highest finite bound.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			within := rank - float64(cum-c)
			return lo + (s.Bounds[i]-lo)*within/float64(c)
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Span times an operation into a histogram of seconds.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing against h (which may be nil; End is then a no-op).
func StartSpan(h *Histogram) Span { return Span{h: h, start: time.Now()} }

// End records the elapsed seconds and returns the duration.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	return d
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given growth factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad exponential buckets (start=%g factor=%g n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefSecondsBuckets spans 10 ms .. ~164 s, covering local-update wall time,
// simulated upload airtime, and full round makespans across the presets.
func DefSecondsBuckets() []float64 { return ExpBuckets(0.01, 2, 15) }

// metricKind discriminates the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one registered metric name: either a single collector or a
// labelled set of children.
type family struct {
	name, help string
	kind       metricKind
	label      string // label name for vec families ("" for plain)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	mu       sync.Mutex
	children map[string]interface{} // label value → *Counter / *Gauge
}

// Registry holds named metrics and renders them in Prometheus text format.
// All methods are safe for concurrent use; registering an existing name
// returns the existing collector (so packages can look up shared metrics
// idempotently) and panics only on a kind or label mismatch.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the CLIs expose on /metrics.
func Default() *Registry { return defaultRegistry }

// register fetches or creates a family, enforcing kind/label consistency.
func (r *Registry) register(name, help string, kind metricKind, label string) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q (was %s/%q)",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label}
	if label != "" {
		f.children = map[string]interface{}{}
	}
	r.families[name] = f
	return f
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hist == nil {
		f.hist = newHistogram(bounds)
	}
	return f.hist
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec returns the named labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if label == "" {
		panic("obs: counter vec needs a label name")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, label)}
}

// With returns the child counter for a label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.children[value]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.children[value] = c
	return c
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec returns the named labelled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if label == "" {
		panic("obs: gauge vec needs a label name")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, label)}
}

// With returns the child gauge for a label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if g, ok := v.f.children[value]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	v.f.children[value] = g
	return g
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (families and label values in sorted order, so output
// is deterministic under a fixed metric state).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var sb strings.Builder
	for _, f := range fams {
		f.write(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *family) write(sb *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(sb, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
	switch {
	case f.label != "":
		f.mu.Lock()
		values := make([]string, 0, len(f.children))
		for v := range f.children {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			var x float64
			switch c := f.children[v].(type) {
			case *Counter:
				x = c.Value()
			case *Gauge:
				x = c.Value()
			}
			fmt.Fprintf(sb, "%s{%s=%q} %s\n", f.name, f.label, v, fmtFloat(x))
		}
		f.mu.Unlock()
	case f.kind == kindHistogram:
		// The collector pointer is assigned under f.mu by Registry.Histogram
		// but this scrape runs concurrently with registration (e.g. the span
		// histogram bridge registers lazily per span name), so it must be
		// loaded under the same lock. Same for the counter/gauge cases below.
		f.mu.Lock()
		h := f.hist
		f.mu.Unlock()
		if h == nil {
			return
		}
		s := h.Snapshot()
		cum := uint64(0)
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			fmt.Fprintf(sb, "%s_bucket{le=%q} %d\n", f.name, fmtFloat(b), cum)
		}
		cum += s.Counts[len(s.Bounds)]
		fmt.Fprintf(sb, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
		fmt.Fprintf(sb, "%s_sum %s\n", f.name, fmtFloat(s.Sum))
		fmt.Fprintf(sb, "%s_count %d\n", f.name, s.Count)
	case f.kind == kindCounter:
		f.mu.Lock()
		c := f.counter
		f.mu.Unlock()
		if c != nil {
			fmt.Fprintf(sb, "%s %s\n", f.name, fmtFloat(c.Value()))
		}
	default:
		f.mu.Lock()
		g := f.gauge
		f.mu.Unlock()
		if g != nil {
			fmt.Fprintf(sb, "%s %s\n", f.name, fmtFloat(g.Value()))
		}
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
