package obs

import (
	"testing"

	"helcfl/internal/leaktest"
)

// TestMain gates the whole obs test binary behind the goroutine-leak
// harness: scrape and race tests hammer the registry from many goroutines,
// and every one of them must be joined before the binary exits.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
