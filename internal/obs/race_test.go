package obs

import (
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives one registry from many goroutines —
// counters, gauges, vec children, histograms, and concurrent exposition —
// and checks the totals. Run under -race this is the registry's
// thread-safety gate (acceptance criterion of the observability PR).
func TestRegistryConcurrentHammer(t *testing.T) {
	const (
		goroutines = 12
		iters      = 2000
	)
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	vec := r.CounterVec("hammer_vec_total", "", "worker")
	h := r.Histogram("hammer_seconds", "", []float64{0.25, 0.5, 1})

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := vec.With(strconv.Itoa(w % 4))
			for i := 0; i < iters; i++ {
				c.Add(1)
				g.Set(float64(i))
				child.Inc()
				h.Observe(float64(i%8) / 8)
				if i%256 == 0 {
					// Exposition races against writers by design.
					_ = r.WritePrometheus(io.Discard)
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*iters {
		t.Fatalf("counter = %g, want %d", got, goroutines*iters)
	}
	total := 0.0
	for w := 0; w < 4; w++ {
		total += vec.With(strconv.Itoa(w)).Value()
	}
	if total != goroutines*iters {
		t.Fatalf("vec total = %g, want %d", total, goroutines*iters)
	}
	if h.Count() != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
	s := h.Snapshot()
	var sum uint64
	for _, n := range s.Counts {
		sum += n
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

// TestMetricsSinkConcurrentRuns fans simultaneous runs into one shared
// registry, the shape a multi-campaign FLCC would produce.
func TestMetricsSinkConcurrentRuns(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			playRound(NewMetricsSink(r))
		}()
	}
	wg.Wait()
	if got := r.Counter("helcfl_rounds_total", "").Value(); got != 8 {
		t.Fatalf("rounds = %g, want 8", got)
	}
}
