package obs

// The FL engine (internal/fl) fires these structured events from its hot
// paths when a Config.Sink is set. Field units follow the paper: seconds
// for delays (Eqs. 4, 7, 10), joules for energies (Eqs. 5, 8, 11), hertz
// for DVFS frequencies (constraint 15).

// RunStartEvent opens one training run (Algorithm 1 initialization done).
type RunStartEvent struct {
	// Scheme is the planner name.
	Scheme string
	// Users is the fleet size Q; MaxRounds the iteration budget J.
	Users, MaxRounds int
	// ModelBits is C_model, the per-upload payload.
	ModelBits float64
}

// RoundStartEvent opens training round Round (0-based).
type RoundStartEvent struct {
	Round int
}

// SelectionEvent reports the FLCC's Algorithm 2 decision for one round.
type SelectionEvent struct {
	Round int
	// Selected lists participating user indices (post battery filtering).
	Selected []int
	// Freqs aligns with Selected: the Algorithm 3 operating frequencies.
	Freqs []float64
	// Utilities aligns with Selected: each user's Eq. (20) utility at pick
	// time. Nil when the planner does not expose decision detail.
	Utilities []float64
	// Appearances aligns with Selected: the α_q decay counters after this
	// selection. Nil when the planner does not expose decision detail.
	Appearances []int
}

// FrequencyEvent reports the realized outcome of the round's frequency
// determination once the round timeline is known.
type FrequencyEvent struct {
	Round int
	// Users and Freqs align: the chosen f_q per participating user.
	Users []int
	Freqs []float64
	// SlackSec is the round's total stop-and-wait slack (the Fig. 1 time
	// Algorithm 3 reclaims by slowing CPUs).
	SlackSec float64
}

// LocalUpdateEvent is one user's local-update span (Eqs. 4–5).
type LocalUpdateEvent struct {
	Round, User int
	// FreqHz is the operating frequency; SimSec is T_q^cal at that
	// frequency; EnergyJ is E_q^cal.
	FreqHz, SimSec, EnergyJ float64
	// WallSec is the measured wall-clock time of the actual gradient
	// computation on this host.
	WallSec float64
	// Loss is the user's final local training loss.
	Loss float64
}

// UploadEvent is one user's TDMA upload span (Eqs. 6–8).
type UploadEvent struct {
	Round, User int
	// SimSec is T_q^com; EnergyJ is E_q^com.
	SimSec, EnergyJ float64
	// StartSec and EndSec bound the transmission within the round timeline;
	// WaitSec is the stop-and-wait queueing before it.
	StartSec, EndSec, WaitSec float64
}

// DropoutEvent reports a selected user whose upload was lost (straggler or
// radio fault injection; Section I motivation).
type DropoutEvent struct {
	Round, User int
}

// BatteryEvent reports a device whose cumulative energy spend crossed its
// battery capacity this round — it shuts down and leaves the fleet.
type BatteryEvent struct {
	Round, User int
	// SpentJ is the device's lifetime energy spend at shutdown.
	SpentJ float64
}

// AggregateEvent reports one FedAvg aggregation (Eq. 18).
type AggregateEvent struct {
	Round int
	// Uploads counts models that reached the FLCC; Failed counts dropped
	// uploads.
	Uploads, Failed int
	// TrainLoss is the mean final local loss across selected users.
	TrainLoss float64
}

// RoundEndEvent closes a round with its full cost roll-up — the live
// counterpart of fl.RoundRecord / the JSONL trace line.
type RoundEndEvent struct {
	Round int
	// Selected lists participating user indices.
	Selected []int
	// Failed counts lost uploads; Alive counts devices with battery left.
	Failed, Alive int
	// DelaySec is the true TDMA round makespan; SlackSec the stop-and-wait
	// total; the energies split Eq. (11).
	DelaySec, EnergyJ, ComputeJ, UploadJ, SlackSec float64
	// CumTimeSec and CumEnergyJ accumulate across the run.
	CumTimeSec, CumEnergyJ float64
	TrainLoss              float64
	// Evaluated reports whether the global model was tested this round.
	Evaluated              bool
	TestLoss, TestAccuracy float64
}

// RunEndEvent closes a run with its exit condition and totals.
type RunEndEvent struct {
	Scheme string
	// Rounds is the number of executed rounds.
	Rounds int
	// TotalTimeSec and TotalEnergyJ sum the per-round costs.
	TotalTimeSec, TotalEnergyJ float64
	// FinalAccuracy and BestAccuracy summarize the test trajectory.
	FinalAccuracy, BestAccuracy float64
	// Which exit fired (at most one).
	StoppedByDeadline, ReachedTarget, Converged, HaltedByDeadFleet bool
}

// EventSink receives engine events. Implementations must be safe for use
// from a single engine goroutine; the engine never calls a sink
// concurrently with itself. Embed NopSink to implement a subset.
type EventSink interface {
	OnRunStart(RunStartEvent)
	OnRoundStart(RoundStartEvent)
	OnSelection(SelectionEvent)
	OnFrequency(FrequencyEvent)
	OnLocalUpdate(LocalUpdateEvent)
	OnUpload(UploadEvent)
	OnDropout(DropoutEvent)
	OnBattery(BatteryEvent)
	OnAggregate(AggregateEvent)
	OnRoundEnd(RoundEndEvent)
	OnRunEnd(RunEndEvent)
}

// NopSink is an EventSink that ignores everything; embed it to implement
// only the events you care about.
type NopSink struct{}

// OnRunStart implements EventSink.
func (NopSink) OnRunStart(RunStartEvent) {}

// OnRoundStart implements EventSink.
func (NopSink) OnRoundStart(RoundStartEvent) {}

// OnSelection implements EventSink.
func (NopSink) OnSelection(SelectionEvent) {}

// OnFrequency implements EventSink.
func (NopSink) OnFrequency(FrequencyEvent) {}

// OnLocalUpdate implements EventSink.
func (NopSink) OnLocalUpdate(LocalUpdateEvent) {}

// OnUpload implements EventSink.
func (NopSink) OnUpload(UploadEvent) {}

// OnDropout implements EventSink.
func (NopSink) OnDropout(DropoutEvent) {}

// OnBattery implements EventSink.
func (NopSink) OnBattery(BatteryEvent) {}

// OnAggregate implements EventSink.
func (NopSink) OnAggregate(AggregateEvent) {}

// OnRoundEnd implements EventSink.
func (NopSink) OnRoundEnd(RoundEndEvent) {}

// OnRunEnd implements EventSink.
func (NopSink) OnRunEnd(RunEndEvent) {}

// MultiSink fans every event out to each sink in order.
type MultiSink []EventSink

// Multi combines sinks, dropping nils; it returns nil when none remain so
// callers keep the nil-sink fast path.
func Multi(sinks ...EventSink) EventSink {
	var kept MultiSink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// OnRunStart implements EventSink.
func (m MultiSink) OnRunStart(ev RunStartEvent) {
	for _, s := range m {
		s.OnRunStart(ev)
	}
}

// OnRoundStart implements EventSink.
func (m MultiSink) OnRoundStart(ev RoundStartEvent) {
	for _, s := range m {
		s.OnRoundStart(ev)
	}
}

// OnSelection implements EventSink.
func (m MultiSink) OnSelection(ev SelectionEvent) {
	for _, s := range m {
		s.OnSelection(ev)
	}
}

// OnFrequency implements EventSink.
func (m MultiSink) OnFrequency(ev FrequencyEvent) {
	for _, s := range m {
		s.OnFrequency(ev)
	}
}

// OnLocalUpdate implements EventSink.
func (m MultiSink) OnLocalUpdate(ev LocalUpdateEvent) {
	for _, s := range m {
		s.OnLocalUpdate(ev)
	}
}

// OnUpload implements EventSink.
func (m MultiSink) OnUpload(ev UploadEvent) {
	for _, s := range m {
		s.OnUpload(ev)
	}
}

// OnDropout implements EventSink.
func (m MultiSink) OnDropout(ev DropoutEvent) {
	for _, s := range m {
		s.OnDropout(ev)
	}
}

// OnBattery implements EventSink.
func (m MultiSink) OnBattery(ev BatteryEvent) {
	for _, s := range m {
		s.OnBattery(ev)
	}
}

// OnAggregate implements EventSink.
func (m MultiSink) OnAggregate(ev AggregateEvent) {
	for _, s := range m {
		s.OnAggregate(ev)
	}
}

// OnRoundEnd implements EventSink.
func (m MultiSink) OnRoundEnd(ev RoundEndEvent) {
	for _, s := range m {
		s.OnRoundEnd(ev)
	}
}

// OnRunEnd implements EventSink.
func (m MultiSink) OnRunEnd(ev RunEndEvent) {
	for _, s := range m {
		s.OnRunEnd(ev)
	}
}
