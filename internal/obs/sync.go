package obs

import "sync"

// Synchronized wraps a sink so engines running in parallel — grid campaign
// cells each drive their own engine — can share it: every event handler
// runs under one mutex. A single engine never calls its sink concurrently
// with itself, but a shared sink sees interleaved calls from many engines;
// wrap any sink that is not already safe for concurrent use. Returns nil
// for a nil sink so callers keep the nil-sink fast path.
func Synchronized(s EventSink) EventSink {
	if s == nil {
		return nil
	}
	return &syncSink{sink: s}
}

type syncSink struct {
	mu   sync.Mutex
	sink EventSink
}

// OnRunStart implements EventSink.
func (s *syncSink) OnRunStart(ev RunStartEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnRunStart(ev)
}

// OnRoundStart implements EventSink.
func (s *syncSink) OnRoundStart(ev RoundStartEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnRoundStart(ev)
}

// OnSelection implements EventSink.
func (s *syncSink) OnSelection(ev SelectionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnSelection(ev)
}

// OnFrequency implements EventSink.
func (s *syncSink) OnFrequency(ev FrequencyEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnFrequency(ev)
}

// OnLocalUpdate implements EventSink.
func (s *syncSink) OnLocalUpdate(ev LocalUpdateEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnLocalUpdate(ev)
}

// OnUpload implements EventSink.
func (s *syncSink) OnUpload(ev UploadEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnUpload(ev)
}

// OnDropout implements EventSink.
func (s *syncSink) OnDropout(ev DropoutEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnDropout(ev)
}

// OnBattery implements EventSink.
func (s *syncSink) OnBattery(ev BatteryEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnBattery(ev)
}

// OnAggregate implements EventSink.
func (s *syncSink) OnAggregate(ev AggregateEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnAggregate(ev)
}

// OnRoundEnd implements EventSink.
func (s *syncSink) OnRoundEnd(ev RoundEndEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnRoundEnd(ev)
}

// OnRunEnd implements EventSink.
func (s *syncSink) OnRunEnd(ev RunEndEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.OnRunEnd(ev)
}
