package obs

import (
	"strings"
	"testing"
)

func playRound(s EventSink) {
	s.OnRunStart(RunStartEvent{Scheme: "HELCFL", Users: 4, MaxRounds: 2, ModelBits: 1e5})
	s.OnRoundStart(RoundStartEvent{Round: 0})
	s.OnSelection(SelectionEvent{Round: 0, Selected: []int{1, 3}, Freqs: []float64{1e9, 2e9}})
	s.OnLocalUpdate(LocalUpdateEvent{Round: 0, User: 1, FreqHz: 1e9, SimSec: 2, EnergyJ: 5, WallSec: 0.01, Loss: 1.2})
	s.OnLocalUpdate(LocalUpdateEvent{Round: 0, User: 3, FreqHz: 2e9, SimSec: 1, EnergyJ: 7, WallSec: 0.02, Loss: 0.8})
	s.OnUpload(UploadEvent{Round: 0, User: 1, SimSec: 0.5, EnergyJ: 0.1, StartSec: 2, EndSec: 2.5})
	s.OnUpload(UploadEvent{Round: 0, User: 3, SimSec: 0.5, EnergyJ: 0.1, StartSec: 2.5, EndSec: 3, WaitSec: 1.5})
	s.OnFrequency(FrequencyEvent{Round: 0, Users: []int{1, 3}, Freqs: []float64{1e9, 2e9}, SlackSec: 1.5})
	s.OnDropout(DropoutEvent{Round: 0, User: 3})
	s.OnAggregate(AggregateEvent{Round: 0, Uploads: 1, Failed: 1, TrainLoss: 1.0})
	s.OnRoundEnd(RoundEndEvent{
		Round: 0, Selected: []int{1, 3}, Failed: 1, Alive: 4,
		DelaySec: 3, EnergyJ: 12.2, ComputeJ: 12, UploadJ: 0.2, SlackSec: 1.5,
		CumTimeSec: 3, CumEnergyJ: 12.2, TrainLoss: 1.0,
		Evaluated: true, TestLoss: 0.9, TestAccuracy: 0.4,
	})
	s.OnBattery(BatteryEvent{Round: 0, User: 1, SpentJ: 50})
	s.OnRunEnd(RunEndEvent{Scheme: "HELCFL", Rounds: 1, TotalTimeSec: 3, TotalEnergyJ: 12.2})
}

func TestMetricsSinkRecordsEngineEvents(t *testing.T) {
	r := NewRegistry()
	m := NewMetricsSink(r)
	playRound(m)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"helcfl_runs_total 1",
		"helcfl_rounds_total 1",
		`helcfl_energy_joules_total{kind="compute"} 12`,
		`helcfl_energy_joules_total{kind="upload"} 0.2`,
		`helcfl_selection_count{user="1"} 1`,
		`helcfl_selection_count{user="3"} 1`,
		"helcfl_slack_reclaimed_seconds_total 1.5",
		"helcfl_dropouts_total 1",
		"helcfl_battery_depleted_total 1",
		"helcfl_aggregations_total 1",
		"helcfl_uploads_aggregated_total 1",
		"helcfl_selected_users 2",
		"helcfl_alive_devices 4",
		"helcfl_train_loss 1",
		"helcfl_test_accuracy 0.4",
		"helcfl_round_delay_seconds_count 1",
		"helcfl_local_update_seconds_count 2",
		"helcfl_local_update_wall_seconds_count 2",
		"helcfl_upload_seconds_count 2",
		"helcfl_cum_time_seconds 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if m.RoundDelay().Count() != 1 {
		t.Fatalf("round delay observations = %d", m.RoundDelay().Count())
	}
}

func TestMetricsSinkSharedRegistryAccumulates(t *testing.T) {
	r := NewRegistry()
	playRound(NewMetricsSink(r))
	playRound(NewMetricsSink(r)) // a second run binds to the same families
	if got := r.Counter("helcfl_rounds_total", "").Value(); got != 2 {
		t.Fatalf("rounds after two runs = %g", got)
	}
	if got := r.Counter("helcfl_runs_total", "").Value(); got != 2 {
		t.Fatalf("runs = %g", got)
	}
}

func TestMultiSinkFansOutAndDropsNil(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	s := Multi(nil, NewMetricsSink(r1), nil, NewMetricsSink(r2))
	playRound(s)
	for _, r := range []*Registry{r1, r2} {
		if got := r.Counter("helcfl_rounds_total", "").Value(); got != 1 {
			t.Fatalf("fan-out rounds = %g", got)
		}
	}
	if Multi(nil, nil) != nil {
		t.Fatal("all-nil Multi must collapse to nil")
	}
	one := NewMetricsSink(r1)
	if Multi(one) != EventSink(one) {
		t.Fatal("single-sink Multi must return the sink itself")
	}
}

func TestNopSinkSatisfiesInterface(t *testing.T) {
	var s EventSink = NopSink{}
	playRound(s) // must not panic
}
