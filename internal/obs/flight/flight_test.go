package flight

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
)

func fillRecorder(t *testing.T) *Recorder {
	t.Helper()
	rec := span.NewRecorder(11, span.Options{Capacity: 16})
	sp := rec.Start(span.Ref{}, "fl.round")
	sp.End()
	fr := New(rec, 4)
	sink := fr.Sink()
	sink.OnRunStart(obs.RunStartEvent{Scheme: "HELCFL", Users: 8})
	for i := 0; i < 6; i++ { // overflow the 4-slot event ring
		sink.OnRoundEnd(obs.RoundEndEvent{Round: i})
	}
	return fr
}

func TestWriteDumpReadableBySpanReader(t *testing.T) {
	fr := fillRecorder(t)
	var sb strings.Builder
	if err := fr.WriteDump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"flightrec":1`) {
		t.Fatal("missing meta line")
	}
	if !strings.Contains(out, `"event":"RoundEnd"`) {
		t.Fatal("missing event lines")
	}
	// The ring keeps only the last 4 events: rounds 2..5 (RunStart evicted).
	if strings.Contains(out, `"event":"RunStart"`) {
		t.Fatal("event ring failed to evict oldest")
	}
	recs, err := span.Read(strings.NewReader(out))
	if err != nil {
		t.Fatalf("span.Read on dump: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "fl.round" {
		t.Fatalf("dump spans: %+v", recs)
	}
}

func TestDumpToWritesFile(t *testing.T) {
	fr := fillRecorder(t)
	dir := t.TempDir()
	path, err := fr.DumpTo(filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "flightrec-") {
		t.Fatalf("unexpected dump name %q", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs, err := span.Read(strings.NewReader(string(raw))); err != nil || len(recs) != 1 {
		t.Fatalf("dump file unreadable: %v (%d recs)", err, len(recs))
	}
}

func TestHandlerServesDump(t *testing.T) {
	fr := fillRecorder(t)
	rr := httptest.NewRecorder()
	fr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrec", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if recs, err := span.Read(strings.NewReader(rr.Body.String())); err != nil || len(recs) != 1 {
		t.Fatalf("handler dump unreadable: %v (%d recs)", err, len(recs))
	}
}

func TestNilSpanRecorderDumpsEventsOnly(t *testing.T) {
	fr := New(nil, 4)
	fr.Sink().OnRoundStart(obs.RoundStartEvent{Round: 0})
	var sb strings.Builder
	if err := fr.WriteDump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"event":"RoundStart"`) {
		t.Fatal("events missing from span-less dump")
	}
}

func TestDumpOnPanic(t *testing.T) {
	fr := fillRecorder(t)
	dir := t.TempDir()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DumpOnPanic swallowed the panic")
			}
		}()
		defer fr.DumpOnPanic(dir)
		panic("boom")
	}()
	matches, err := filepath.Glob(filepath.Join(dir, "flightrec-*.jsonl"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("panic dump files: %v (%v)", matches, err)
	}
}

func TestInstallStopIsIdempotent(t *testing.T) {
	fr := fillRecorder(t)
	stop := fr.Install(t.TempDir())
	stop()
	stop() // second call must not panic or deadlock
}
