// Package flight is the crash-forensics pillar of the observability
// stack: a flight recorder that pairs the span ring buffer with a ring of
// recent engine events, and dumps both as one JSONL file when the process
// panics, receives SIGQUIT, or serves /debug/flightrec. The dump is
// readable by internal/obs/span.Read (span lines carry "name"; event and
// metadata lines do not and are skipped), so helcfl-inspect works on
// flight dumps and live trace files alike.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
)

// Recorder couples a span recorder with an event ring. Both may be nil:
// a nil span recorder dumps events only, and vice versa.
type Recorder struct {
	spans *span.Recorder
	ring  *eventRing
}

// New builds a flight recorder keeping the last eventCap engine events
// alongside sp's span ring. eventCap <= 0 selects a default of 512.
func New(sp *span.Recorder, eventCap int) *Recorder {
	if eventCap <= 0 {
		eventCap = 512
	}
	return &Recorder{spans: sp, ring: newEventRing(eventCap)}
}

// Sink returns the obs.EventSink feeding the event ring; compose it with
// the run's real sink via obs.Multi.
func (r *Recorder) Sink() obs.EventSink { return r.ring }

// metaLine heads every dump; it has no "name" field so span.Read skips it.
type metaLine struct {
	FlightRec int    `json:"flightrec"`
	UnixNs    int64  `json:"unix_ns"`
	PID       int    `json:"pid"`
	Trace     uint64 `json:"trace,omitempty"`
	Dropped   uint64 `json:"spans_dropped,omitempty"`
	Events    int    `json:"events"`
}

// eventLine wraps one buffered engine event; no "name" field either.
type eventLine struct {
	Event string      `json:"event"`
	Data  interface{} `json:"data"`
}

// WriteDump writes the full flight state as JSONL: one metadata line,
// then every buffered span, then every buffered event (oldest first).
func (r *Recorder) WriteDump(w io.Writer) error {
	enc := json.NewEncoder(w)
	events := r.ring.snapshot()
	meta := metaLine{
		FlightRec: 1,
		UnixNs:    time.Now().UnixNano(),
		PID:       os.Getpid(),
		Trace:     r.spans.TraceID(),
		Dropped:   r.spans.Dropped(),
		Events:    len(events),
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("flight: encode meta: %w", err)
	}
	for _, rec := range r.spans.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("flight: encode span: %w", err)
		}
	}
	for _, ev := range events {
		if err := enc.Encode(eventLine{Event: ev.kind, Data: ev.data}); err != nil {
			return fmt.Errorf("flight: encode event: %w", err)
		}
	}
	return nil
}

// DumpTo writes the dump to dir/flightrec-<unixnano>-<pid>.jsonl,
// creating dir if needed, and returns the file path.
func (r *Recorder) DumpTo(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-%d-%d.jsonl", time.Now().UnixNano(), os.Getpid()))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	werr := r.WriteDump(f)
	cerr := f.Close()
	if werr != nil {
		return path, werr
	}
	if cerr != nil {
		return path, fmt.Errorf("flight: close dump: %w", cerr)
	}
	return path, nil
}

// Handler serves the dump over HTTP for live inspection of a running
// node (mounted at /debug/flightrec by the deploy server).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if err := r.WriteDump(w); err != nil {
			// Headers are gone; best effort is to drop the connection.
			return
		}
	})
}

// Install arranges a dump to dir on each received signal (default
// SIGQUIT) and returns a stop function releasing the handler. The process
// keeps running after a dump — SIGQUIT becomes "photograph the last N
// seconds", not "die".
func (r *Recorder) Install(dir string, sigs ...os.Signal) (stop func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{syscall.SIGQUIT}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				if path, err := r.DumpTo(dir); err != nil {
					fmt.Fprintf(os.Stderr, "flight: dump failed: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "flight: dumped %s\n", path)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}

// DumpOnPanic dumps to dir when the calling goroutine is panicking, then
// re-panics. Use in a defer at the top of main-like functions:
//
//	defer fr.DumpOnPanic("artifacts")
func (r *Recorder) DumpOnPanic(dir string) {
	if p := recover(); p != nil {
		if path, err := r.DumpTo(dir); err == nil {
			fmt.Fprintf(os.Stderr, "flight: panic dump %s\n", path)
		}
		panic(p)
	}
}

// event is one buffered engine event with its kind tag.
type event struct {
	kind string
	data interface{}
}

// eventRing implements obs.EventSink over a fixed ring of recent events.
// Unlike engine sinks it must be internally synchronized: deploy servers
// feed it from handler goroutines, and a dump can race with recording.
type eventRing struct {
	mu    sync.Mutex
	ring  []event
	next  int
	total uint64
}

func newEventRing(capacity int) *eventRing {
	return &eventRing{ring: make([]event, 0, capacity)}
}

func (e *eventRing) push(kind string, data interface{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ring) < cap(e.ring) {
		e.ring = append(e.ring, event{kind, data})
		e.next = len(e.ring) % cap(e.ring)
	} else {
		e.ring[e.next] = event{kind, data}
		e.next = (e.next + 1) % cap(e.ring)
	}
	e.total++
}

func (e *eventRing) snapshot() []event {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ring) < cap(e.ring) || e.next == 0 {
		out := make([]event, len(e.ring))
		copy(out, e.ring)
		return out
	}
	out := make([]event, 0, len(e.ring))
	out = append(out, e.ring[e.next:]...)
	out = append(out, e.ring[:e.next]...)
	return out
}

// OnRunStart implements obs.EventSink.
func (e *eventRing) OnRunStart(ev obs.RunStartEvent) { e.push("RunStart", ev) }

// OnRoundStart implements obs.EventSink.
func (e *eventRing) OnRoundStart(ev obs.RoundStartEvent) { e.push("RoundStart", ev) }

// OnSelection implements obs.EventSink.
func (e *eventRing) OnSelection(ev obs.SelectionEvent) { e.push("Selection", ev) }

// OnFrequency implements obs.EventSink.
func (e *eventRing) OnFrequency(ev obs.FrequencyEvent) { e.push("Frequency", ev) }

// OnLocalUpdate implements obs.EventSink.
func (e *eventRing) OnLocalUpdate(ev obs.LocalUpdateEvent) { e.push("LocalUpdate", ev) }

// OnUpload implements obs.EventSink.
func (e *eventRing) OnUpload(ev obs.UploadEvent) { e.push("Upload", ev) }

// OnDropout implements obs.EventSink.
func (e *eventRing) OnDropout(ev obs.DropoutEvent) { e.push("Dropout", ev) }

// OnBattery implements obs.EventSink.
func (e *eventRing) OnBattery(ev obs.BatteryEvent) { e.push("Battery", ev) }

// OnAggregate implements obs.EventSink.
func (e *eventRing) OnAggregate(ev obs.AggregateEvent) { e.push("Aggregate", ev) }

// OnRoundEnd implements obs.EventSink.
func (e *eventRing) OnRoundEnd(ev obs.RoundEndEvent) { e.push("RoundEnd", ev) }

// OnRunEnd implements obs.EventSink.
func (e *eventRing) OnRunEnd(ev obs.RunEndEvent) { e.push("RunEnd", ev) }
