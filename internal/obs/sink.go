package obs

import "strconv"

// MetricsSink adapts the engine event stream onto a Registry, exporting the
// paper's cost quantities as Prometheus time series:
//
//	helcfl_runs_total                       counter
//	helcfl_rounds_total                     counter
//	helcfl_round_delay_seconds              histogram (Eq. 10 makespan)
//	helcfl_energy_joules_total{kind}        counter, kind = compute|upload
//	helcfl_selection_count{user}            counter (Algorithm 2 fairness)
//	helcfl_slack_reclaimed_seconds_total    counter (Algorithm 3 slack)
//	helcfl_local_update_seconds             histogram (simulated T_q^cal)
//	helcfl_local_update_wall_seconds        histogram (measured host time)
//	helcfl_upload_seconds                   histogram (T_q^com)
//	helcfl_upload_wait_seconds              histogram (stop-and-wait)
//	helcfl_dropouts_total                   counter
//	helcfl_battery_depleted_total           counter
//	helcfl_aggregations_total               counter
//	helcfl_uploads_aggregated_total         counter
//	helcfl_round                            gauge (current round index)
//	helcfl_selected_users                   gauge
//	helcfl_alive_devices                    gauge
//	helcfl_train_loss                       gauge
//	helcfl_test_accuracy                    gauge
//	helcfl_test_loss                        gauge
//	helcfl_cum_time_seconds                 gauge
//	helcfl_cum_energy_joules                gauge
type MetricsSink struct {
	NopSink

	runs, rounds                 *Counter
	roundDelay                   *Histogram
	energyCompute, energyUpload  *Counter
	selectionCount               *CounterVec
	slackReclaimed               *Counter
	localUpdate, localUpdateWall *Histogram
	upload, uploadWait           *Histogram
	dropouts, batteryDepleted    *Counter
	aggregations, uploadsAgg     *Counter

	round, selectedUsers, aliveDevices *Gauge
	trainLoss, testAccuracy, testLoss  *Gauge
	cumTime, cumEnergy                 *Gauge
}

// NewMetricsSink registers (or re-binds to) the helcfl_* metric families on
// the registry and returns the sink. Multiple sinks may share one registry;
// the families are registered idempotently.
func NewMetricsSink(r *Registry) *MetricsSink {
	sec := DefSecondsBuckets()
	return &MetricsSink{
		runs:           r.Counter("helcfl_runs_total", "Training runs started."),
		rounds:         r.Counter("helcfl_rounds_total", "Training rounds completed."),
		roundDelay:     r.Histogram("helcfl_round_delay_seconds", "True TDMA round makespan (Eq. 10).", sec),
		energyCompute:  r.CounterVec("helcfl_energy_joules_total", "Cumulative fleet energy by kind (Eq. 11).", "kind").With("compute"),
		energyUpload:   r.CounterVec("helcfl_energy_joules_total", "Cumulative fleet energy by kind (Eq. 11).", "kind").With("upload"),
		selectionCount: r.CounterVec("helcfl_selection_count", "Times each user was selected (Algorithm 2).", "user"),
		slackReclaimed: r.Counter("helcfl_slack_reclaimed_seconds_total", "Stop-and-wait slack accumulated across rounds (Algorithm 3's target)."),
		localUpdate:    r.Histogram("helcfl_local_update_seconds", "Simulated per-user local-update delay T_q^cal (Eq. 4).", sec),
		localUpdateWall: r.Histogram("helcfl_local_update_wall_seconds",
			"Measured wall-clock time of each local gradient computation.", sec),
		upload:          r.Histogram("helcfl_upload_seconds", "Simulated per-user upload airtime T_q^com (Eq. 7).", sec),
		uploadWait:      r.Histogram("helcfl_upload_wait_seconds", "Per-user stop-and-wait queueing before the TDMA slot.", sec),
		dropouts:        r.Counter("helcfl_dropouts_total", "Selected users whose upload was lost."),
		batteryDepleted: r.Counter("helcfl_battery_depleted_total", "Devices shut down by battery exhaustion."),
		aggregations:    r.Counter("helcfl_aggregations_total", "FedAvg aggregations performed (Eq. 18)."),
		uploadsAgg:      r.Counter("helcfl_uploads_aggregated_total", "Models folded into FedAvg aggregations."),

		round:         r.Gauge("helcfl_round", "Current 0-based round index."),
		selectedUsers: r.Gauge("helcfl_selected_users", "Users selected in the current round."),
		aliveDevices:  r.Gauge("helcfl_alive_devices", "Devices with battery remaining."),
		trainLoss:     r.Gauge("helcfl_train_loss", "Mean local training loss of the last round."),
		testAccuracy:  r.Gauge("helcfl_test_accuracy", "Last evaluated global test accuracy."),
		testLoss:      r.Gauge("helcfl_test_loss", "Last evaluated global test loss."),
		cumTime:       r.Gauge("helcfl_cum_time_seconds", "Cumulative simulated training time of the current run."),
		cumEnergy:     r.Gauge("helcfl_cum_energy_joules", "Cumulative fleet energy of the current run."),
	}
}

// RoundDelay exposes the round-delay histogram for snapshotting (benchmark
// reporting).
func (m *MetricsSink) RoundDelay() *Histogram { return m.roundDelay }

// OnRunStart implements EventSink.
func (m *MetricsSink) OnRunStart(ev RunStartEvent) { m.runs.Inc() }

// OnSelection implements EventSink.
func (m *MetricsSink) OnSelection(ev SelectionEvent) {
	for _, q := range ev.Selected {
		m.selectionCount.With(strconv.Itoa(q)).Inc()
	}
	m.selectedUsers.Set(float64(len(ev.Selected)))
}

// OnFrequency implements EventSink.
func (m *MetricsSink) OnFrequency(ev FrequencyEvent) {
	m.slackReclaimed.Add(ev.SlackSec)
}

// OnLocalUpdate implements EventSink.
func (m *MetricsSink) OnLocalUpdate(ev LocalUpdateEvent) {
	m.localUpdate.Observe(ev.SimSec)
	if ev.WallSec > 0 {
		m.localUpdateWall.Observe(ev.WallSec)
	}
}

// OnUpload implements EventSink.
func (m *MetricsSink) OnUpload(ev UploadEvent) {
	m.upload.Observe(ev.SimSec)
	m.uploadWait.Observe(ev.WaitSec)
}

// OnDropout implements EventSink.
func (m *MetricsSink) OnDropout(DropoutEvent) { m.dropouts.Inc() }

// OnBattery implements EventSink.
func (m *MetricsSink) OnBattery(BatteryEvent) { m.batteryDepleted.Inc() }

// OnAggregate implements EventSink.
func (m *MetricsSink) OnAggregate(ev AggregateEvent) {
	m.aggregations.Inc()
	m.uploadsAgg.Add(float64(ev.Uploads))
}

// OnRoundEnd implements EventSink.
func (m *MetricsSink) OnRoundEnd(ev RoundEndEvent) {
	m.rounds.Inc()
	m.round.Set(float64(ev.Round))
	m.roundDelay.Observe(ev.DelaySec)
	m.energyCompute.Add(ev.ComputeJ)
	m.energyUpload.Add(ev.UploadJ)
	m.aliveDevices.Set(float64(ev.Alive))
	m.trainLoss.Set(ev.TrainLoss)
	m.cumTime.Set(ev.CumTimeSec)
	m.cumEnergy.Set(ev.CumEnergyJ)
	if ev.Evaluated {
		m.testAccuracy.Set(ev.TestAccuracy)
		m.testLoss.Set(ev.TestLoss)
	}
}
