package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g", got)
	}
	// Idempotent registration returns the same collector.
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registration returned a new counter")
	}
	g := r.Gauge("g", "")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add must panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-106.5) > 1e-12 {
		t.Fatalf("sum = %g", h.Sum())
	}
	if math.Abs(h.Mean()-21.3) > 1e-12 {
		t.Fatalf("mean = %g", h.Mean())
	}
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1} // ≤1, ≤2, ≤4, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	// Median falls in the (1,2] bucket.
	if q := s.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %g, want in (1,2]", q)
	}
	// Extreme quantile lands in +Inf and clamps to the top finite bound.
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("p100 = %g, want 4", q)
	}
	if q := (Snapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

func TestHistogramValidatesBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v must panic", bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestSpanObservesSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", "", []float64{10})
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("histogram after span: count=%d sum=%g", h.Count(), h.Sum())
	}
	// A nil-histogram span is a safe no-op.
	StartSpan(nil).End()
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.5, 2, 3)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_rounds_total", "Rounds completed.").Add(3)
	r.Gauge("app_round", "").Set(2)
	r.CounterVec("app_energy_joules_total", "Energy by kind.", "kind").With("compute").Add(1.5)
	r.CounterVec("app_energy_joules_total", "Energy by kind.", "kind").With("upload").Add(0.5)
	r.GaugeVec("app_phase", "", "phase").With("train").Set(1)
	h := r.Histogram("app_delay_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP app_rounds_total Rounds completed.",
		"# TYPE app_rounds_total counter",
		"app_rounds_total 3",
		"app_round 2",
		"# TYPE app_energy_joules_total counter",
		`app_energy_joules_total{kind="compute"} 1.5`,
		`app_energy_joules_total{kind="upload"} 0.5`,
		`app_phase{phase="train"} 1`,
		"# TYPE app_delay_seconds histogram",
		`app_delay_seconds_bucket{le="1"} 1`,
		`app_delay_seconds_bucket{le="2"} 1`,
		`app_delay_seconds_bucket{le="+Inf"} 2`,
		"app_delay_seconds_sum 5.5",
		"app_delay_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families appear in sorted order for deterministic scraping.
	if strings.Index(out, "app_delay_seconds") > strings.Index(out, "app_rounds_total") {
		t.Fatal("families not sorted")
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 1") {
		t.Fatalf("body = %q", buf[:n])
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() != Default() {
		t.Fatal("default registry not a singleton")
	}
}
