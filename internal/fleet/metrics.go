package fleet

import "helcfl/internal/obs"

// coordMetrics are the coordinator's instruments, exposed on whatever
// /metrics endpoint the caller mounts the registry on.
type coordMetrics struct {
	granted, expired, reassigned   *obs.Counter
	completed                      *obs.Counter
	dupRejected, staleRejected     *obs.Counter
	cells, done, leased            *obs.Gauge
	attempts                       *obs.Histogram
	recoverySec                    *obs.Gauge
	recoveredDone, recoveredLeases *obs.Gauge
}

func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	if reg == nil {
		return nil
	}
	return &coordMetrics{
		granted:       reg.Counter("helcfl_fleet_leases_granted_total", "Cell leases granted to workers (fresh grants and reassignments)."),
		expired:       reg.Counter("helcfl_fleet_leases_expired_total", "Leases whose deadline passed without completion or heartbeat."),
		reassigned:    reg.Counter("helcfl_fleet_leases_reassigned_total", "Grants of cells that had been granted before (token bumped)."),
		completed:     reg.Counter("helcfl_fleet_cells_completed_total", "Completions accepted and merged."),
		dupRejected:   reg.Counter("helcfl_fleet_duplicate_completions_rejected_total", "Completions rejected because the cell was already done (at-most-once)."),
		staleRejected: reg.Counter("helcfl_fleet_stale_completions_rejected_total", "Completions rejected because a newer fencing token had been granted."),
		cells:         reg.Gauge("helcfl_fleet_cells", "Size of the campaign grid."),
		done:          reg.Gauge("helcfl_fleet_cells_done", "Cells completed so far."),
		leased:        reg.Gauge("helcfl_fleet_leases_live", "Leases currently live (granted, unexpired, incomplete)."),
		attempts:      reg.Histogram("helcfl_fleet_cell_attempts", "Grants needed per completed cell (1 = no reassignment).", obs.ExpBuckets(1, 2, 8)),
		recoverySec:   reg.Gauge("helcfl_fleet_recovery_seconds", "Wall-clock seconds spent replaying the journal at startup."),
		recoveredDone: reg.Gauge("helcfl_fleet_recovered_cells", "Cells restored as done from the journal at startup."),
		recoveredLeases: reg.Gauge("helcfl_fleet_recovered_leases",
			"Live leases restored from the journal at startup (kept completable under their old token)."),
	}
}
