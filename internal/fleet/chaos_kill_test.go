//go:build chaos

package fleet_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// envInt reads an integer knob so CI can scale the sweep (e.g.
// HELCFL_FLEET_SEEDS=100 drives a 1000-cell campaign) while the default
// `make chaos` run stays fast.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// proc is one child process with captured output and an async wait.
type proc struct {
	name string
	cmd  *exec.Cmd
	out  bytes.Buffer
	errb bytes.Buffer
	done chan error
}

func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{name: name, cmd: exec.Command(bin, args...), done: make(chan error, 1)}
	p.cmd.Stdout = &p.out
	p.cmd.Stderr = &p.errb
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	go func() { p.done <- p.cmd.Wait() }()
	t.Cleanup(func() { _ = p.cmd.Process.Kill() })
	return p
}

// kill SIGKILLs the process if it is still running and reports whether it
// actually delivered the kill.
func (p *proc) kill() bool {
	select {
	case err := <-p.done:
		p.done <- err // put it back for wait()
		return false
	default:
		_ = p.cmd.Process.Signal(syscall.SIGKILL)
		return true
	}
}

func (p *proc) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-p.done:
		return err
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		t.Fatalf("%s did not exit within %s\nstdout:\n%s\nstderr:\n%s", p.name, timeout, p.out.String(), p.errb.String())
		return nil
	}
}

func buildBinary(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return port
}

// stripWroteLines drops the `wrote <path>` lines newOutput prints, whose
// directories necessarily differ between the serial and fleet runs.
func stripWroteLines(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "wrote ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// readDirIfAny returns the directory's files, or an empty map when the
// run wrote no artifacts (the directory is only created on first write).
func readDirIfAny(t *testing.T, dir string) map[string]string {
	t.Helper()
	files := map[string]string{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return files
	}
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	return files
}

// killSweep shapes one chaos scenario.
type killSweep struct {
	campaign         []string      // helcfl args up to but excluding -out/-fleet
	workers          int           // fleet size; every worker is killed once
	killCoordinator  bool          // SIGKILL + journal-resume the coordinator too
	killBase         time.Duration // minimum delay before each kill
	killSpread       time.Duration // seeded extra delay on top of killBase
	requireArtifacts bool          // fail if the campaign wrote no artifacts
}

// run executes the campaign twice — once serially in one process, once
// over a worker fleet under seeded SIGKILLs — and asserts the rendered
// stdout and every artifact are byte-identical.
func (ks killSweep) run(t *testing.T, helcfl, node string, rng *rand.Rand) {
	dir := t.TempDir()

	// Serial baseline: one process, one worker, no network.
	serialDir := filepath.Join(dir, "serial")
	serial := startProc(t, "serial", helcfl, append(ks.campaign[:len(ks.campaign):len(ks.campaign)], "-parallel", "1", "-out", serialDir)...)
	if err := serial.wait(t, 20*time.Minute); err != nil {
		t.Fatalf("serial run: %v\nstderr:\n%s", err, serial.errb.String())
	}

	// Distributed sweep under fire.
	fleetDir := filepath.Join(dir, "fleet")
	journal := filepath.Join(dir, "journal.wal")
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	coordArgs := append(ks.campaign[:len(ks.campaign):len(ks.campaign)],
		"-out", fleetDir, "-fleet", addr, "-fleet-journal", journal, "-fleet-ttl", "2s", "-v")
	coord := startProc(t, "coordinator", helcfl, coordArgs...)

	startWorker := func(i, gen int) *proc {
		name := fmt.Sprintf("w%d.%d", i, gen)
		return startProc(t, name, node, "worker",
			"-coordinator", "http://"+addr, "-name", name,
			"-seed", strconv.Itoa(100+10*i+gen), "-retries", "12")
	}
	workers := make([]*proc, ks.workers)
	for i := range workers {
		workers[i] = startWorker(i, 0)
	}

	// The schedule: kill worker 0, then (optionally) the coordinator, then
	// the other workers, each after a seeded delay, replacing every
	// casualty. Late in a small sweep a victim may already have exited; the
	// kill is skipped and logged, and the byte-identity assertions still
	// hold.
	sleep := func() {
		time.Sleep(ks.killBase + time.Duration(rng.Int63n(int64(ks.killSpread))))
	}
	coordinatorKilled := false
	for i := range workers {
		sleep()
		if workers[i].kill() {
			t.Logf("killed worker %s", workers[i].name)
		} else {
			t.Logf("worker %s already exited; kill skipped", workers[i].name)
		}
		workers[i] = startWorker(i, 1)
		if i == 0 && ks.killCoordinator {
			sleep()
			if coord.kill() {
				coordinatorKilled = true
				t.Log("killed coordinator; resuming from journal")
				<-coord.done // reap before rebinding the address
				coord = startProc(t, "coordinator-resumed", helcfl, append(coordArgs, "-fleet-resume")...)
			} else {
				t.Log("coordinator already exited; kill skipped")
			}
		}
	}

	if err := coord.wait(t, 20*time.Minute); err != nil {
		t.Fatalf("coordinator: %v\nstderr:\n%s", err, coord.errb.String())
	}
	if coordinatorKilled && !strings.Contains(coord.errb.String(), "recovered") {
		t.Errorf("resumed coordinator never reported journal recovery\nstderr:\n%s", coord.errb.String())
	}
	// The sweep is merged and rendered; surviving workers are torn down
	// hard (their results are already durable — that is the point).
	for _, w := range workers {
		w.kill()
		<-w.done
	}

	if got, want := stripWroteLines(coord.out.String()), stripWroteLines(serial.out.String()); got != want {
		t.Errorf("fleet stdout differs from serial\nfleet:\n%s\nserial:\n%s", got, want)
	}
	if len(serial.out.String()) == 0 {
		t.Error("serial run rendered nothing")
	}
	serialArts, fleetArts := readDirIfAny(t, serialDir), readDirIfAny(t, fleetDir)
	if ks.requireArtifacts && len(serialArts) == 0 {
		t.Fatal("campaign wrote no artifacts")
	}
	var names []string
	for name := range serialArts {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(fleetArts) != len(serialArts) {
		t.Errorf("artifact count differs: fleet %d, serial %d", len(fleetArts), len(serialArts))
	}
	for _, name := range names {
		if fleetArts[name] != serialArts[name] {
			t.Errorf("artifact %s differs between fleet and serial", name)
		}
	}
	t.Logf("byte-identical stdout and %d artifacts after %d worker kills (coordinator killed: %v)",
		len(names), ks.workers, coordinatorKilled)
}

// TestChaosFleetKillSweep is the kill-tolerance acceptance test at the
// process level, against real helcfl / helcfl-node binaries:
//
//   - seeds: a multi-seed campaign (cells = 10 × HELCFL_FLEET_SEEDS; CI
//     sets 100 for a 1000-cell sweep) across HELCFL_FLEET_WORKERS
//     workers, every worker SIGKILLed once at a seeded point and
//     replaced, and the coordinator SIGKILLed once mid-sweep and resumed
//     from its journal.
//   - fig2: an artifact-writing campaign under worker kills, proving the
//     CSV artifacts merge byte-identically too.
func TestChaosFleetKillSweep(t *testing.T) {
	dir := t.TempDir()
	helcfl := buildBinary(t, dir, "helcfl/cmd/helcfl")
	node := buildBinary(t, dir, "helcfl/cmd/helcfl-node")
	chaosSeed := int64(envInt("HELCFL_FLEET_CHAOS_SEED", 1))
	rng := rand.New(rand.NewSource(chaosSeed))
	t.Logf("chaos seed %d", chaosSeed)

	t.Run("seeds", func(t *testing.T) {
		nSeeds := envInt("HELCFL_FLEET_SEEDS", 4)
		killSweep{
			campaign:        []string{"seeds", "-preset", "tiny", "-seed", "7", "-n", strconv.Itoa(nSeeds)},
			workers:         envInt("HELCFL_FLEET_WORKERS", 3),
			killCoordinator: true,
			killBase:        400 * time.Millisecond,
			killSpread:      900 * time.Millisecond,
		}.run(t, helcfl, node, rng)
	})
	t.Run("fig2", func(t *testing.T) {
		killSweep{
			campaign:         []string{"fig2", "-preset", "tiny", "-seed", "7"},
			workers:          3,
			killBase:         150 * time.Millisecond,
			killSpread:       400 * time.Millisecond,
			requireArtifacts: true,
		}.run(t, helcfl, node, rng)
	})
}
