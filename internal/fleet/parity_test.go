package fleet_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"helcfl/internal/experiments"
	"helcfl/internal/fleet"
	"helcfl/internal/grid"
	"helcfl/internal/obs"
)

// resolveRegistryPlan is the worker-side plan rebuild the CLI uses: look
// the experiment and preset up in the registry and expand the grid. It
// must mirror the coordinator's plan construction exactly or the
// fingerprint handshake fails.
func resolveRegistryPlan(info fleet.PlanInfo) ([]grid.Cell, error) {
	def, ok := experiments.LookupExperiment(info.Experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", info.Experiment)
	}
	p, err := experiments.LookupPreset(info.Preset)
	if err != nil {
		return nil, err
	}
	p.Sink = obs.Synchronized(p.Sink)
	plan, err := def.Plan(p, info.Seed, experiments.Options{Seeds: info.Seeds})
	if err != nil {
		return nil, err
	}
	return plan.Cells, nil
}

func registryPlan(t *testing.T, name string, seed int64, opt experiments.Options) *experiments.Plan {
	t.Helper()
	def, ok := experiments.LookupExperiment(name)
	if !ok {
		t.Fatalf("no %s experiment", name)
	}
	p, err := experiments.LookupPreset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	p.Sink = obs.Synchronized(p.Sink)
	plan, err := def.Plan(p, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// renderPlan captures a plan's rendered stream and artifacts.
func renderPlan(t *testing.T, plan *experiments.Plan, res []any) (string, map[string]string) {
	t.Helper()
	var buf bytes.Buffer
	arts := map[string]string{}
	err := plan.Render(res, experiments.Output{
		W: &buf,
		WriteArtifact: func(name string, data []byte) error {
			arts[name] = string(data)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.String(), arts
}

// TestFleetMatchesSerialOnRealExperiments is the distributed grid's core
// guarantee on real campaign cells: a coordinator plus three workers that
// rebuild the plan from the registry, run cells through the gob codec,
// and merge over HTTP produce the same raw results, rendered bytes, and
// artifacts as a serial grid.Runner.
func TestFleetMatchesSerialOnRealExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real cells; skipped in -short")
	}
	seed := int64(3)
	opt := experiments.Options{Seeds: 2}
	for _, name := range []string{"fig1", "seeds"} {
		t.Run(name, func(t *testing.T) {
			serialPlan := registryPlan(t, name, seed, opt)
			serialRes, err := (&grid.Runner{Parallel: 1}).Run(context.Background(), serialPlan.Cells)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}

			fleetPlan := registryPlan(t, name, seed, opt)
			coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
				Info: fleet.PlanInfo{
					Experiment: name,
					Preset:     "tiny",
					Seed:       seed,
					Seeds:      opt.Seeds,
				},
				Cells:  fleetPlan.Cells,
				Decode: experiments.DecodeCellResult,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			srv := httptest.NewServer(coord.Handler())
			defer srv.Close()

			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				w, err := fleet.NewWorker(fleet.WorkerConfig{
					Coordinator: srv.URL,
					Name:        fmt.Sprintf("w%d", i),
					Resolve:     resolveRegistryPlan,
					Encode:      experiments.EncodeCellResult,
					Seed:        int64(100 + i),
				})
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := w.Run(context.Background()); err != nil {
						t.Errorf("worker: %v", err)
					}
				}()
			}
			fleetRes, err := coord.Wait(context.Background())
			wg.Wait()
			if err != nil {
				t.Fatalf("fleet run: %v", err)
			}

			// The wire codec strips trained models from fl.Result in
			// transit, so canonicalize the serial results through the same
			// round trip before comparing raw values.
			canon := make([]any, len(serialRes))
			for i, v := range serialRes {
				enc, err := experiments.EncodeCellResult(v)
				if err != nil {
					t.Fatalf("encode serial cell %d: %v", i, err)
				}
				canon[i], err = experiments.DecodeCellResult(enc)
				if err != nil {
					t.Fatalf("decode serial cell %d: %v", i, err)
				}
			}
			if !reflect.DeepEqual(canon, fleetRes) {
				t.Fatal("fleet raw results differ from serial")
			}

			serialOut, serialArts := renderPlan(t, serialPlan, serialRes)
			fleetOut, fleetArts := renderPlan(t, fleetPlan, fleetRes)
			if serialOut != fleetOut {
				t.Fatalf("rendered output differs:\nserial:\n%s\nfleet:\n%s", serialOut, fleetOut)
			}
			if !reflect.DeepEqual(serialArts, fleetArts) {
				t.Fatalf("artifacts differ: %v vs %v", serialArts, fleetArts)
			}
			if len(serialOut) == 0 {
				t.Fatal("experiment rendered nothing")
			}
		})
	}
}
