package fleet

import (
	"testing"

	"helcfl/internal/leaktest"
)

// TestMain gates the whole fleet test binary behind the goroutine-leak
// harness: coordinator heartbeat monitors, worker poll loops, and campaign
// goroutines must all be joined by the time the last test finishes.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
