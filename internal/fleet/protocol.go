// Package fleet distributes a campaign grid across worker processes with
// kill tolerance: a coordinator leases cells to workers over HTTP and
// merges their results into the same fixed-index slice a single-process
// grid.Runner produces, bit-identically.
//
// The protocol is lease-based with fencing tokens (see docs/ROBUSTNESS.md):
//
//   - A lease grants one cell (by index) to one worker for a TTL, under a
//     fencing token drawn from a global monotonic counter. Heartbeats
//     extend the TTL; an expired lease makes the cell grantable again
//     under a new, larger token.
//   - A completion is accepted iff its token is the latest granted for
//     that cell AND the cell is not already done — so a re-granted cell
//     merges exactly once no matter how many killed, stalled, or revived
//     workers eventually report it (at-most-once).
//   - The coordinator journals every grant and completion through the
//     checkpoint WAL before acknowledging, so a coordinator crash resumes
//     mid-sweep without re-running finished cells and without ever
//     reissuing a token (tokens never regress across restarts).
//
// Workers never receive code or configuration: they rebuild the identical
// deterministic plan locally from the PlanInfo identity (experiment,
// preset, seed) and verify the cell-key fingerprint before leasing, so a
// version- or flag-skewed worker is rejected up front instead of merging
// results at wrong indices.
package fleet

// HTTP endpoints served by the Coordinator's Handler.
const (
	// PathPlan returns the PlanInfo identity (GET).
	PathPlan = "/fleet/plan"
	// PathLease grants the next available cell (POST LeaseRequest).
	PathLease = "/fleet/lease"
	// PathHeartbeat extends a live lease's deadline (POST HeartbeatRequest).
	PathHeartbeat = "/fleet/heartbeat"
	// PathComplete reports a finished cell (POST CompleteRequest).
	PathComplete = "/fleet/complete"
)

// PlanInfo is the campaign identity a worker rebuilds the plan from. Only
// identity crosses the wire — never cells, code, or configuration.
type PlanInfo struct {
	// Experiment and Preset name the registered definition and preset.
	Experiment string `json:"experiment"`
	// Preset is the preset name ("paper", "fast", "tiny").
	Preset string `json:"preset"`
	// Seed is the campaign base seed.
	Seed int64 `json:"seed"`
	// Seeds is the seed count for multi-seed experiments (Options.Seeds).
	Seeds int `json:"seeds"`
	// Cells is the plan size; a worker whose rebuilt plan disagrees must
	// not lease.
	Cells int `json:"cells"`
	// Fingerprint is grid.Fingerprint over the ordered cell keys.
	Fingerprint uint64 `json:"fingerprint"`
}

// LeaseRequest asks for the next grantable cell.
type LeaseRequest struct {
	// Worker identifies the requester (logs, lease bookkeeping).
	Worker string `json:"worker"`
}

// Lease states returned by PathLease.
const (
	// StateGranted carries a cell lease.
	StateGranted = "granted"
	// StateWait means every remaining cell is currently leased; retry
	// after a backoff (leases may expire or complete).
	StateWait = "wait"
	// StateDone means the sweep is complete; the worker should exit.
	StateDone = "done"
)

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	State string `json:"state"`
	// Index and Key identify the granted cell (StateGranted only). Key is
	// echoed so the worker can cross-check its rebuilt plan.
	Index int    `json:"index,omitempty"`
	Key   string `json:"key,omitempty"`
	// Token is the fencing token for this grant.
	Token uint64 `json:"token,omitempty"`
	// TTLMillis is the lease duration; heartbeat well within it.
	TTLMillis int64 `json:"ttl_millis,omitempty"`
	// Remaining counts cells not yet completed, for progress logs.
	Remaining int `json:"remaining"`
}

// HeartbeatRequest extends a lease. A fenced (re-granted) or completed
// cell answers 409, telling the worker to abandon the cell.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Index  int    `json:"index"`
	Token  uint64 `json:"token"`
}

// CompleteRequest reports a finished cell. Exactly one of Result or Error
// is meaningful: Result is the encoded cell value (the coordinator's
// Decode hook reverses it), Error a deterministic cell failure.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Index  int    `json:"index"`
	Token  uint64 `json:"token"`
	Result []byte `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}
