package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"helcfl/internal/grid"
	"helcfl/internal/obs"
)

// testResult is the payload the test grids compute: the cell key plus a
// value derived from the cell's own RNG, so any two honest executions of
// the same cell agree and misplaced merges are visible.
type testResult struct {
	Key string  `json:"key"`
	Val float64 `json:"val"`
}

func testEncode(v any) ([]byte, error) { return json.Marshal(v) }
func testDecode(b []byte) (any, error) { var r testResult; err := json.Unmarshal(b, &r); return r, err }

// testCells builds n deterministic cells.
func testCells(n int) []grid.Cell {
	cells := make([]grid.Cell, n)
	for i := range cells {
		cells[i] = grid.Cell{
			Experiment: "unit", Preset: "tiny", Setting: "IID", Scheme: "HELCFL",
			Variant: fmt.Sprintf("cell=%d", i), Seed: 1,
		}
		key := cells[i].Key()
		cells[i].Run = func(_ context.Context, rng *rand.Rand) (any, error) {
			return testResult{Key: key, Val: rng.Float64()}, nil
		}
	}
	return cells
}

// newTestCoordinator builds a coordinator plus its HTTP server.
func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Decode == nil {
		cfg.Decode = testDecode
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { _ = c.Close() })
	return c, srv
}

// post is the raw-protocol helper for handler-level tests.
func post(t *testing.T, url, path string, body, out any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, url+path, bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func lease(t *testing.T, url, worker string) LeaseResponse {
	t.Helper()
	var lr LeaseResponse
	if code := post(t, url, PathLease, LeaseRequest{Worker: worker}, &lr); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	return lr
}

// completeBody fabricates the completion a worker would send for cells[i].
func completeBody(t *testing.T, cells []grid.Cell, lr LeaseResponse, worker string) CompleteRequest {
	t.Helper()
	v, err := cells[lr.Index].Run(context.Background(), cells[lr.Index].RNG())
	if err != nil {
		t.Fatalf("cell run: %v", err)
	}
	enc, err := testEncode(v)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return CompleteRequest{Worker: worker, Index: lr.Index, Token: lr.Token, Result: enc}
}

// serialResults runs the same cells through the single-process Runner.
func serialResults(t *testing.T, cells []grid.Cell) []any {
	t.Helper()
	res, err := (&grid.Runner{Parallel: 1}).Run(context.Background(), cells)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return res
}

func TestLeaseCompleteMergesLikeRunner(t *testing.T) {
	cells := testCells(4)
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells})
	for range cells {
		lr := lease(t, srv.URL, "w0")
		if lr.State != StateGranted {
			t.Fatalf("state %q, want granted", lr.State)
		}
		if code := post(t, srv.URL, PathComplete, completeBody(t, cells, lr, "w0"), nil); code != http.StatusNoContent {
			t.Fatalf("complete: status %d", code)
		}
	}
	if lr := lease(t, srv.URL, "w0"); lr.State != StateDone {
		t.Fatalf("state %q after sweep, want done", lr.State)
	}
	got, err := c.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	want := serialResults(t, cells)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged results differ from serial Runner:\n got %v\nwant %v", got, want)
	}
}

func TestDuplicateCompletionRejected(t *testing.T) {
	cells := testCells(2)
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells})
	lr := lease(t, srv.URL, "w0")
	body := completeBody(t, cells, lr, "w0")
	if code := post(t, srv.URL, PathComplete, body, nil); code != http.StatusNoContent {
		t.Fatalf("first complete: status %d", code)
	}
	// The retried (or duplicated) completion must not merge twice.
	if code := post(t, srv.URL, PathComplete, body, nil); code != http.StatusConflict {
		t.Fatalf("duplicate complete: status %d, want 409", code)
	}
	if rem := c.Remaining(); rem != 1 {
		t.Fatalf("remaining %d after one unique completion, want 1", rem)
	}
}

func TestExpiredLeaseIsReassignedAndStaleCompletionFenced(t *testing.T) {
	cells := testCells(1)
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells, LeaseTTL: 30 * time.Millisecond})
	first := lease(t, srv.URL, "doomed")
	time.Sleep(60 * time.Millisecond)
	second := lease(t, srv.URL, "heir")
	if second.State != StateGranted || second.Index != first.Index {
		t.Fatalf("expired lease not reassigned: %+v", second)
	}
	if second.Token <= first.Token {
		t.Fatalf("reassignment must bump the fencing token: %d then %d", first.Token, second.Token)
	}
	// The presumed-dead worker comes back after the re-grant: fenced.
	if code := post(t, srv.URL, PathComplete, completeBody(t, cells, first, "doomed"), nil); code != http.StatusConflict {
		t.Fatalf("stale complete: status %d, want 409", code)
	}
	if rem := c.Remaining(); rem != 1 {
		t.Fatalf("stale completion must not merge (remaining %d)", rem)
	}
	if code := post(t, srv.URL, PathComplete, completeBody(t, cells, second, "heir"), nil); code != http.StatusNoContent {
		t.Fatalf("heir complete: status %d", code)
	}
	if rem := c.Remaining(); rem != 0 {
		t.Fatalf("remaining %d, want 0", rem)
	}
}

func TestExpiredButNotReassignedLeaseStillCompletes(t *testing.T) {
	// An expired lease only becomes invalid once the cell is re-granted;
	// until then the slow worker's finished work is accepted, not wasted.
	cells := testCells(1)
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells, LeaseTTL: 20 * time.Millisecond})
	lr := lease(t, srv.URL, "slow")
	time.Sleep(40 * time.Millisecond)
	if code := post(t, srv.URL, PathComplete, completeBody(t, cells, lr, "slow"), nil); code != http.StatusNoContent {
		t.Fatalf("slow complete: status %d, want 204", code)
	}
	if rem := c.Remaining(); rem != 0 {
		t.Fatalf("remaining %d, want 0", rem)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	cells := testCells(1)
	_, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells, LeaseTTL: 80 * time.Millisecond})
	lr := lease(t, srv.URL, "beater")
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if code := post(t, srv.URL, PathHeartbeat, HeartbeatRequest{Worker: "beater", Index: lr.Index, Token: lr.Token}, nil); code != http.StatusNoContent {
			t.Fatalf("heartbeat: status %d", code)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Well past the original TTL, the lease must still be held.
	if other := lease(t, srv.URL, "rival"); other.State != StateWait {
		t.Fatalf("heartbeated lease was lost: rival got %+v", other)
	}
	// After a fence the heartbeat answers 409 so the worker abandons.
	time.Sleep(120 * time.Millisecond)
	regrant := lease(t, srv.URL, "rival")
	if regrant.State != StateGranted {
		t.Fatalf("lease did not expire after heartbeats stopped: %+v", regrant)
	}
	if code := post(t, srv.URL, PathHeartbeat, HeartbeatRequest{Worker: "beater", Index: lr.Index, Token: lr.Token}, nil); code != http.StatusConflict {
		t.Fatalf("fenced heartbeat: status %d, want 409", code)
	}
}

func TestJournalResumeRestoresDoneCellsAndTokens(t *testing.T) {
	cells := testCells(3)
	journal := filepath.Join(t.TempDir(), "fleet.wal")

	c1, srv1 := newTestCoordinator(t, CoordinatorConfig{Cells: cells, JournalPath: journal})
	done := lease(t, srv1.URL, "w0")
	if code := post(t, srv1.URL, PathComplete, completeBody(t, cells, done, "w0"), nil); code != http.StatusNoContent {
		t.Fatalf("complete: status %d", code)
	}
	granted := lease(t, srv1.URL, "w0") // in flight at crash time
	srv1.Close()
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A fresh start over a half-finished journal must be refused.
	if _, err := NewCoordinator(CoordinatorConfig{Cells: cells, Decode: testDecode, JournalPath: journal}); err == nil {
		t.Fatal("fresh start over an existing journal should error without Resume")
	}
	// A different plan must be refused even with Resume.
	if _, err := NewCoordinator(CoordinatorConfig{Cells: testCells(4), Decode: testDecode, JournalPath: journal, Resume: true}); err == nil {
		t.Fatal("resume against a different plan should error")
	}

	c2, srv2 := newTestCoordinator(t, CoordinatorConfig{Cells: cells, JournalPath: journal, Resume: true})
	if rem := c2.Remaining(); rem != 2 {
		t.Fatalf("remaining %d after resume, want 2", rem)
	}
	// The crashed-through grant survives: its old token still completes.
	if code := post(t, srv2.URL, PathComplete, completeBody(t, cells, granted, "w0"), nil); code != http.StatusNoContent {
		t.Fatalf("complete under pre-crash token: status %d", code)
	}
	// Tokens never regress across a restart.
	next := lease(t, srv2.URL, "w1")
	if next.State != StateGranted || next.Token <= granted.Token {
		t.Fatalf("post-resume token %d must exceed pre-crash token %d", next.Token, granted.Token)
	}
	if code := post(t, srv2.URL, PathComplete, completeBody(t, cells, next, "w1"), nil); code != http.StatusNoContent {
		t.Fatalf("complete: status %d", code)
	}
	got, err := c2.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if want := serialResults(t, cells); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-resume merge differs from serial run:\n got %v\nwant %v", got, want)
	}
}

func TestJournalResumeAcrossDuplicateAndFencedHistory(t *testing.T) {
	// Replay a journal whose history includes a reassignment, then prove
	// the revived coordinator still fences the original token.
	cells := testCells(1)
	journal := filepath.Join(t.TempDir(), "fleet.wal")
	c1, srv1 := newTestCoordinator(t, CoordinatorConfig{Cells: cells, JournalPath: journal, LeaseTTL: 20 * time.Millisecond})
	first := lease(t, srv1.URL, "w0")
	time.Sleep(40 * time.Millisecond)
	second := lease(t, srv1.URL, "w1")
	if second.Token <= first.Token {
		t.Fatalf("expected a reassignment, got %+v", second)
	}
	srv1.Close()
	_ = c1.Close()

	_, srv2 := newTestCoordinator(t, CoordinatorConfig{Cells: cells, JournalPath: journal, Resume: true, LeaseTTL: time.Minute})
	if code := post(t, srv2.URL, PathComplete, completeBody(t, cells, first, "w0"), nil); code != http.StatusConflict {
		t.Fatalf("pre-reassignment token after resume: status %d, want 409", code)
	}
	if code := post(t, srv2.URL, PathComplete, completeBody(t, cells, second, "w1"), nil); code != http.StatusNoContent {
		t.Fatalf("latest token after resume: status %d, want 204", code)
	}
}

func TestWorkersSweepMatchesSerialRunner(t *testing.T) {
	cells := testCells(24)
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells})
	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	for i := range workerErrs {
		w, err := NewWorker(WorkerConfig{
			Coordinator: srv.URL, Name: fmt.Sprintf("w%d", i), Seed: int64(i),
			Resolve: func(PlanInfo) ([]grid.Cell, error) { return testCells(24), nil },
			Encode:  testEncode,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); workerErrs[i] = w.Run(context.Background()) }()
	}
	got, err := c.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if want := serialResults(t, cells); !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet merge differs from serial Runner:\n got %v\nwant %v", got, want)
	}
}

func TestWorkerRejectsSkewedPlan(t *testing.T) {
	_, srv := newTestCoordinator(t, CoordinatorConfig{Cells: testCells(4)})
	w, err := NewWorker(WorkerConfig{
		Coordinator: srv.URL, Name: "skewed",
		Resolve: func(PlanInfo) ([]grid.Cell, error) { return testCells(5), nil },
		Encode:  testEncode,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("a worker whose rebuilt plan disagrees must refuse to lease")
	}
}

func TestWorkerDrainStopsLeasing(t *testing.T) {
	cells := testCells(8)
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells})
	w, err := NewWorker(WorkerConfig{
		Coordinator: srv.URL, Name: "drainer",
		Resolve: func(PlanInfo) ([]grid.Cell, error) { return testCells(8), nil },
		Encode:  testEncode,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	w.Drain() // drain before the first lease: worker must exit with no work done
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("drained Run: %v", err)
	}
	if w.Completed() != 0 {
		t.Fatalf("drained worker completed %d cells, want 0", w.Completed())
	}
	if rem := c.Remaining(); rem != len(cells) {
		t.Fatalf("remaining %d, want %d", rem, len(cells))
	}
}

func TestWorkerReportsDeterministicCellFailure(t *testing.T) {
	boom := errors.New("cell is broken")
	mkCells := func() []grid.Cell {
		cells := testCells(2)
		orig := cells[1].Run
		cells[1].Run = func(ctx context.Context, rng *rand.Rand) (any, error) {
			_, _ = orig(ctx, rng)
			return nil, boom
		}
		return cells
	}
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: mkCells()})
	w, err := NewWorker(WorkerConfig{
		Coordinator: srv.URL, Name: "w0",
		Resolve: func(PlanInfo) ([]grid.Cell, error) { return mkCells(), nil },
		Encode:  testEncode,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	res, err := c.Wait(context.Background())
	var errs grid.Errors
	if !errors.As(err, &errs) || len(errs) != 1 || errs[0].Index != 1 {
		t.Fatalf("Wait error = %v, want one grid.CellError at index 1", err)
	}
	if res[0] == nil {
		t.Fatal("successful cell's result must still be populated")
	}
}

func TestWaitHonorsContext(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorConfig{Cells: testCells(1)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: %v, want context.Canceled", err)
	}
}

func TestCoordinatorMetrics(t *testing.T) {
	cells := testCells(2)
	reg := newTestRegistry()
	c, srv := newTestCoordinator(t, CoordinatorConfig{Cells: cells, LeaseTTL: 25 * time.Millisecond, Metrics: reg})
	first := lease(t, srv.URL, "w0")
	time.Sleep(50 * time.Millisecond)
	second := lease(t, srv.URL, "w1") // reassignment of the expired lease
	if second.Index != first.Index {
		t.Fatalf("expected reassignment of cell %d, got %+v", first.Index, second)
	}
	post(t, srv.URL, PathComplete, completeBody(t, cells, first, "w0"), nil) // stale: fenced by the re-grant
	post(t, srv.URL, PathComplete, completeBody(t, cells, second, "w1"), nil)
	post(t, srv.URL, PathComplete, completeBody(t, cells, second, "w1"), nil) // duplicate
	third := lease(t, srv.URL, "w0")
	post(t, srv.URL, PathComplete, completeBody(t, cells, third, "w0"), nil)
	<-c.Done()

	text := scrape(t, reg)
	for metric, want := range map[string]string{
		"helcfl_fleet_leases_granted_total":                 "3",
		"helcfl_fleet_leases_expired_total":                 "1",
		"helcfl_fleet_leases_reassigned_total":              "1",
		"helcfl_fleet_cells_completed_total":                "2",
		"helcfl_fleet_duplicate_completions_rejected_total": "1",
		"helcfl_fleet_stale_completions_rejected_total":     "1",
		"helcfl_fleet_cells_done":                           "2",
	} {
		assertMetric(t, text, metric, want)
	}
}

// newTestRegistry, scrape, and assertMetric adapt the obs registry's text
// exposition for assertions.
func newTestRegistry() *obs.Registry { return obs.NewRegistry() }

func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func assertMetric(t *testing.T, text, name, want string) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			if got := strings.TrimPrefix(line, name+" "); got != want {
				t.Errorf("%s = %s, want %s", name, got, want)
			}
			return
		}
	}
	t.Errorf("metric %s not exposed", name)
}
