package fleet

import (
	"encoding/binary"
	"fmt"

	"helcfl/internal/checkpoint"
)

// Fleet journal record types. They share the checkpoint WAL framing
// (CRC-checked, fsync-per-record, torn-tail tolerant) but a distinct type
// range from the deploy server's round WAL (1, 2), so a misdirected file
// is caught as soon as it is replayed.
const (
	// RecordFleetPlan opens a journal: payload is the plan fingerprint and
	// cell count. Every journal starts with exactly one; replaying against
	// a different plan is refused.
	RecordFleetPlan checkpoint.RecordType = 0x10
	// RecordFleetGrant logs a lease grant: Round is the cell index, User
	// the fencing token. Written (and fsynced) before the lease response,
	// so the token counter never regresses across a coordinator crash.
	RecordFleetGrant checkpoint.RecordType = 0x11
	// RecordFleetComplete logs an accepted completion: Round is the cell
	// index, User the fencing token, Payload the encoded result (see
	// completePayload). Written before the 204 acknowledgment, so an acked
	// cell is never re-run.
	RecordFleetComplete checkpoint.RecordType = 0x12
)

// Completion payload tags.
const (
	payloadResult = 0x00 // remainder is the encoded cell result
	payloadError  = 0x01 // remainder is a deterministic cell error string
)

// planPayload encodes the RecordFleetPlan body.
func planPayload(fingerprint uint64, cells int) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint64(b[0:8], fingerprint)
	binary.LittleEndian.PutUint32(b[8:12], uint32(cells))
	return b
}

// parsePlanPayload reverses planPayload.
func parsePlanPayload(b []byte) (fingerprint uint64, cells int, err error) {
	if len(b) != 12 {
		return 0, 0, fmt.Errorf("fleet: plan record payload is %d bytes, want 12", len(b))
	}
	return binary.LittleEndian.Uint64(b[0:8]), int(binary.LittleEndian.Uint32(b[8:12])), nil
}

// completePayload tags an encoded result or a cell error for the journal.
func completePayload(result []byte, cellErr string) []byte {
	if cellErr != "" {
		return append([]byte{payloadError}, cellErr...)
	}
	return append([]byte{payloadResult}, result...)
}

// parseCompletePayload reverses completePayload.
func parseCompletePayload(b []byte) (result []byte, cellErr string, err error) {
	if len(b) == 0 {
		return nil, "", fmt.Errorf("fleet: empty completion payload")
	}
	switch b[0] {
	case payloadResult:
		return b[1:], "", nil
	case payloadError:
		return nil, string(b[1:]), nil
	default:
		return nil, "", fmt.Errorf("fleet: unknown completion payload tag %#x", b[0])
	}
}
