package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"helcfl/internal/deploy"
	"helcfl/internal/grid"
	"helcfl/internal/obs/span"
	"helcfl/internal/retry"
)

// WorkerConfig configures one fleet worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Name identifies this worker in leases and logs.
	Name string
	// Resolve rebuilds the campaign grid locally from the coordinator's
	// PlanInfo (e.g. via the experiments registry). Required. The worker
	// verifies the rebuilt plan's fingerprint before leasing anything.
	Resolve func(PlanInfo) ([]grid.Cell, error)
	// Encode serializes a cell result for transport (e.g.
	// experiments.EncodeCellResult). Required.
	Encode func(any) ([]byte, error)
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries and BaseBackoff shape the shared retry.Policy used for
	// every coordinator request — the same jittered exponential backoff
	// the deploy client uses, so a worker rides out a coordinator restart.
	// Defaults: 5 retries, 100ms base.
	MaxRetries  int
	BaseBackoff time.Duration
	// RequestTimeout bounds each HTTP attempt; 0 disables.
	RequestTimeout time.Duration
	// Seed seeds the retry jitter and heartbeat phase, decorrelating a
	// fleet that shares one outage.
	Seed int64
	// Log and Trace attach observability; each may be nil. TraceParent
	// roots the worker's fleet.cell spans.
	Log         deploy.Logf
	Trace       *span.Recorder
	TraceParent span.Ref
}

// Worker leases cells from a coordinator, runs them locally on the
// deterministic plan it rebuilt itself, and reports results until the
// sweep is done. Safe for one goroutine to Run; Drain may be called from
// any goroutine (e.g. a SIGTERM handler).
type Worker struct {
	cfg    WorkerConfig
	policy retry.Policy
	hbRNG  *rand.Rand

	draining  atomic.Bool
	completed atomic.Int64
	fenced    atomic.Int64
}

// NewWorker validates the configuration and applies defaults.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if cfg.Resolve == nil || cfg.Encode == nil {
		return nil, fmt.Errorf("fleet: worker needs Resolve and Encode hooks")
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	return &Worker{
		cfg: cfg,
		policy: retry.Policy{
			MaxRetries: cfg.MaxRetries,
			Base:       cfg.BaseBackoff,
			Jitter:     rand.New(rand.NewSource(cfg.Seed)),
		},
		hbRNG: rand.New(rand.NewSource(cfg.Seed + 1)),
	}, nil
}

// Drain makes the worker finish its in-flight cell (if any), skip further
// leases, and return from Run cleanly — the SIGTERM handshake.
func (w *Worker) Drain() { w.draining.Store(true) }

// Completed reports cells this worker completed (accepted merges).
func (w *Worker) Completed() int { return int(w.completed.Load()) }

// Fenced reports completions this worker lost to fencing (its lease had
// expired and the cell was re-granted, or the merge already happened).
func (w *Worker) Fenced() int { return int(w.fenced.Load()) }

// Run fetches the plan identity, rebuilds the grid locally, verifies the
// fingerprint, then leases and runs cells until the sweep is done, ctx is
// canceled, or Drain is called.
func (w *Worker) Run(ctx context.Context) error {
	var info PlanInfo
	if err := w.getJSON(ctx, PathPlan, &info); err != nil {
		return fmt.Errorf("fleet: fetch plan: %w", err)
	}
	cells, err := w.cfg.Resolve(info)
	if err != nil {
		return fmt.Errorf("fleet: rebuild plan: %w", err)
	}
	if len(cells) != info.Cells || grid.Fingerprint(cells) != info.Fingerprint {
		return fmt.Errorf("fleet: rebuilt plan disagrees with coordinator (%d cells fingerprint %x, coordinator has %d cells fingerprint %x) — version or flag skew",
			len(cells), grid.Fingerprint(cells), info.Cells, info.Fingerprint)
	}
	w.logf("fleet: %s joined %s: %s/%s seed %d, %d cells", w.cfg.Name, w.cfg.Coordinator, info.Experiment, info.Preset, info.Seed, info.Cells)

	waitAttempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining.Load() {
			w.logf("fleet: %s draining after %d cells", w.cfg.Name, w.Completed())
			return nil
		}
		var lease LeaseResponse
		status, err := w.postJSON(ctx, w.policy, PathLease, LeaseRequest{Worker: w.cfg.Name}, &lease, w.cfg.TraceParent)
		if err != nil {
			return fmt.Errorf("fleet: lease: %w", err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("fleet: lease: unexpected status %d", status)
		}
		switch lease.State {
		case StateDone:
			w.logf("fleet: %s done after %d cells (%d fenced)", w.cfg.Name, w.Completed(), w.Fenced())
			return nil
		case StateWait:
			waitAttempt++
			if err := w.policy.Sleep(ctx, waitAttempt); err != nil {
				return err
			}
		case StateGranted:
			waitAttempt = 0
			if lease.Index < 0 || lease.Index >= len(cells) {
				return fmt.Errorf("fleet: leased cell %d outside plan of %d", lease.Index, len(cells))
			}
			if got := cells[lease.Index].Key(); got != lease.Key {
				return fmt.Errorf("fleet: leased cell %d key mismatch: coordinator %q, local %q", lease.Index, lease.Key, got)
			}
			if err := w.runCell(ctx, cells[lease.Index], lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: unknown lease state %q", lease.State)
		}
	}
}

// runCell executes one leased cell under heartbeats and reports it.
func (w *Worker) runCell(ctx context.Context, cell grid.Cell, lease LeaseResponse) error {
	sp := w.cfg.Trace.Start(w.cfg.TraceParent, "fleet.cell")
	sp.SetStr("key", lease.Key)
	sp.SetInt("index", int64(lease.Index))
	sp.SetInt("token", int64(lease.Token))
	defer sp.End()

	// The cell runs under its own context: heartbeats cancel it if the
	// coordinator fences this lease, so boundary-checking cells stop
	// early instead of wasting a dead lease.
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if w.cfg.Trace != nil {
		cellCtx = span.WithParent(cellCtx, w.cfg.Trace, sp.Ref())
	}
	var hbWG sync.WaitGroup
	var fenced atomic.Bool
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	if ttl > 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			w.heartbeat(cellCtx, func() { fenced.Store(true); cancel() }, lease, ttl, sp.Ref())
		}()
	}

	v, runErr := cell.Run(cellCtx, cell.RNG())
	cancel()
	hbWG.Wait()

	if err := ctx.Err(); err != nil {
		return err // hard shutdown mid-cell; the lease will expire and reassign
	}
	if fenced.Load() && runErr != nil {
		// Fenced mid-run and the cell aborted on the canceled context:
		// nothing to report, the new lease holder owns the cell.
		w.fenced.Add(1)
		sp.SetStr("outcome", "fenced")
		return nil
	}
	req := CompleteRequest{Worker: w.cfg.Name, Index: lease.Index, Token: lease.Token}
	if runErr != nil {
		// A deterministic cell failure: report it so the coordinator can
		// surface it like grid.Runner would, instead of re-leasing a cell
		// that will fail everywhere forever.
		req.Error = runErr.Error()
	} else {
		enc, err := w.cfg.Encode(v)
		if err != nil {
			return fmt.Errorf("fleet: encode cell %d result: %w", lease.Index, err)
		}
		req.Result = enc
	}
	status, err := w.postJSON(ctx, w.policy, PathComplete, req, nil, sp.Ref())
	switch {
	case err != nil:
		return fmt.Errorf("fleet: complete cell %d: %w", lease.Index, err)
	case status == http.StatusNoContent:
		w.completed.Add(1)
		sp.SetStr("outcome", "completed")
	case status == http.StatusConflict:
		// Fenced or duplicate: the cell is accounted for without us.
		w.fenced.Add(1)
		sp.SetStr("outcome", "fenced")
		w.logf("fleet: %s completion of cell %d fenced", w.cfg.Name, lease.Index)
	default:
		return fmt.Errorf("fleet: complete cell %d: unexpected status %d", lease.Index, status)
	}
	return nil
}

// heartbeat extends the lease every TTL/3 (phase-jittered from the worker
// seed so a fleet's beats spread out) until the cell context ends. A 409
// means the lease was fenced: fence() marks and cancels the cell.
func (w *Worker) heartbeat(ctx context.Context, fence func(), lease LeaseResponse, ttl time.Duration, parent span.Ref) {
	interval := ttl / 3
	if interval <= 0 {
		return
	}
	// Seeded phase offset: workers granted leases at the same instant
	// don't all beat at the same instant.
	phase := time.Duration(w.hbRNG.Int63n(int64(interval)/2 + 1))
	timer := time.NewTimer(interval + phase)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		hb := HeartbeatRequest{Worker: w.cfg.Name, Index: lease.Index, Token: lease.Token}
		// Single attempt per beat: a missed beat is recoverable (the next
		// one lands well within the TTL), so no retry budget is spent.
		status, err := w.postJSON(ctx, retry.Policy{Base: w.cfg.BaseBackoff}, PathHeartbeat, hb, nil, parent)
		if err == nil && status == http.StatusConflict {
			w.logf("fleet: %s lease on cell %d fenced; abandoning", w.cfg.Name, lease.Index)
			fence()
			return
		}
		timer.Reset(interval)
	}
}

// getJSON fetches path with the worker's retry policy.
func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	return w.policy.Do(ctx, func(ctx context.Context, attempt int) error {
		reqCtx, cancel := w.attemptCtx(ctx)
		defer cancel()
		req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, w.cfg.Coordinator+path, nil)
		if err != nil {
			return err
		}
		w.setTrace(req, w.cfg.TraceParent)
		resp, err := w.cfg.HTTPClient.Do(req)
		if err != nil {
			return w.transient(ctx, err)
		}
		body, readErr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if readErr != nil {
			return w.transient(ctx, readErr)
		}
		if resp.StatusCode >= 500 {
			return retry.Transient(fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body)))
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
		}
		return json.Unmarshal(body, out)
	})
}

// postJSON posts body to path under the given retry policy, decoding a
// 200 response into out (when non-nil). Transport failures and 5xx are
// transient; any other status is returned to the caller undisturbed (409
// carries fencing semantics).
func (w *Worker) postJSON(ctx context.Context, pol retry.Policy, path string, body, out any, parent span.Ref) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	status := 0
	err = pol.Do(ctx, func(ctx context.Context, attempt int) error {
		reqCtx, cancel := w.attemptCtx(ctx)
		defer cancel()
		req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		w.setTrace(req, parent)
		resp, err := w.cfg.HTTPClient.Do(req)
		if err != nil {
			return w.transient(ctx, err)
		}
		respBody, readErr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if readErr != nil {
			return w.transient(ctx, readErr)
		}
		if resp.StatusCode >= 500 {
			return retry.Transient(fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(respBody)))
		}
		status = resp.StatusCode
		if resp.StatusCode == http.StatusOK && out != nil {
			return json.Unmarshal(respBody, out)
		}
		return nil
	})
	return status, err
}

// attemptCtx bounds one HTTP attempt by RequestTimeout.
func (w *Worker) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if w.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, w.cfg.RequestTimeout)
	}
	return ctx, func() {}
}

// transient classifies a transport/read failure, preferring the caller's
// cancellation over a retry.
func (w *Worker) transient(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return retry.Transient(err)
}

// setTrace stitches this request to the worker's spans across processes.
func (w *Worker) setTrace(req *http.Request, parent span.Ref) {
	if w.cfg.Trace != nil {
		req.Header.Set(deploy.TraceHeader, deploy.FormatTraceHeader(parent))
	}
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Log != nil {
		w.cfg.Log(format, args...)
	}
}
