package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"helcfl/internal/checkpoint"
	"helcfl/internal/deploy"
	"helcfl/internal/grid"
	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
)

// DefaultLeaseTTL is the lease duration when CoordinatorConfig.LeaseTTL is
// zero. Workers heartbeat at a third of the TTL, so a lease survives two
// missed heartbeats before the cell is reassigned.
const DefaultLeaseTTL = 15 * time.Second

// CoordinatorConfig configures a campaign coordinator.
type CoordinatorConfig struct {
	// Info is the plan identity workers rebuild the grid from. Cells and
	// Fingerprint are filled in by NewCoordinator.
	Info PlanInfo
	// Cells is the campaign grid, validated like grid.Runner validates it.
	Cells []grid.Cell
	// Decode reverses the workers' result encoding (e.g.
	// experiments.DecodeCellResult). Required.
	Decode func([]byte) (any, error)
	// JournalPath, when set, journals grants and completions through the
	// checkpoint WAL so a coordinator crash resumes mid-sweep. Empty runs
	// in memory only.
	JournalPath string
	// Resume continues an existing journal. Without it, a journal that
	// already holds records is refused — restarting a sweep from scratch
	// over a half-finished journal must be an explicit decision.
	Resume bool
	// LeaseTTL bounds how long a silent worker holds a cell; defaults to
	// DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Log, Metrics, and Trace attach observability; each may be nil.
	Log     deploy.Logf
	Metrics *obs.Registry
	Trace   *span.Recorder
}

// liveLease is one granted, unexpired, incomplete lease.
type liveLease struct {
	deadline time.Time
	worker   string
}

// cellState is the coordinator's per-cell bookkeeping. token is the latest
// fencing token granted for the cell (0 = never granted); completions and
// heartbeats are accepted only under it, even if the lease expired — work
// is never discarded, only fenced once the cell is granted again.
type cellState struct {
	token    uint64
	attempts int
	done     bool
	err      string
}

// Coordinator leases grid cells to workers and merges their results by
// index. All state transitions happen under one mutex and are journaled
// before they are acknowledged, so the merge survives both worker and
// coordinator kills with at-most-once semantics.
type Coordinator struct {
	cfg CoordinatorConfig
	ttl time.Duration
	m   *coordMetrics

	mu        sync.Mutex
	cells     []cellState
	live      map[int]liveLease
	results   []any
	nextToken uint64
	remaining int
	journal   *checkpoint.WAL
	doneCh    chan struct{}
}

// NewCoordinator validates the grid, replays the journal when resuming,
// and reports recovery statistics through the registry.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := grid.Validate(cfg.Cells); err != nil {
		return nil, err
	}
	if cfg.Decode == nil {
		return nil, fmt.Errorf("fleet: coordinator needs a Decode hook")
	}
	cfg.Info.Cells = len(cfg.Cells)
	cfg.Info.Fingerprint = grid.Fingerprint(cfg.Cells)
	c := &Coordinator{
		cfg:       cfg,
		ttl:       cfg.LeaseTTL,
		m:         newCoordMetrics(cfg.Metrics),
		cells:     make([]cellState, len(cfg.Cells)),
		live:      map[int]liveLease{},
		results:   make([]any, len(cfg.Cells)),
		nextToken: 1,
		remaining: len(cfg.Cells),
		doneCh:    make(chan struct{}),
	}
	if c.ttl <= 0 {
		c.ttl = DefaultLeaseTTL
	}
	if cfg.JournalPath != "" {
		if err := c.openJournal(); err != nil {
			return nil, err
		}
	}
	if c.m != nil {
		c.m.cells.Set(float64(len(cfg.Cells)))
		c.m.done.Set(float64(len(cfg.Cells) - c.remaining))
		c.m.leased.Set(float64(len(c.live)))
	}
	if c.remaining == 0 {
		close(c.doneCh)
	}
	return c, nil
}

// openJournal opens (and when resuming, replays) the WAL at JournalPath.
func (c *Coordinator) openJournal() error {
	start := time.Now()
	wal, recs, err := checkpoint.OpenWAL(c.cfg.JournalPath)
	if err != nil {
		return err
	}
	if len(recs) > 0 && !c.cfg.Resume {
		_ = wal.Close()
		return fmt.Errorf("fleet: journal %s already holds %d records; resume it explicitly or remove it", c.cfg.JournalPath, len(recs))
	}
	if len(recs) == 0 {
		if err := wal.Append(checkpoint.Record{Type: RecordFleetPlan,
			Payload: planPayload(c.cfg.Info.Fingerprint, len(c.cfg.Cells))}); err != nil {
			_ = wal.Close()
			return err
		}
		c.journal = wal
		return nil
	}
	if err := c.replay(recs); err != nil {
		_ = wal.Close()
		return err
	}
	c.journal = wal
	elapsed := time.Since(start).Seconds()
	restoredLeases := len(c.live)
	if c.m != nil {
		c.m.recoverySec.Set(elapsed)
		c.m.recoveredDone.Set(float64(len(c.cfg.Cells) - c.remaining))
		c.m.recoveredLeases.Set(float64(restoredLeases))
	}
	c.logf("fleet: recovered %d/%d done cells and %d live leases from %s in %.3fs",
		len(c.cfg.Cells)-c.remaining, len(c.cfg.Cells), restoredLeases, c.cfg.JournalPath, elapsed)
	return nil
}

// replay folds journal records into coordinator state: done cells get
// their merged results back, the token counter resumes past every token
// ever granted (tokens never regress), and granted-but-incomplete leases
// come back live under a fresh TTL so workers that survived the crash can
// still heartbeat or complete under their old token.
func (c *Coordinator) replay(recs []checkpoint.Record) error {
	if recs[0].Type != RecordFleetPlan {
		return fmt.Errorf("fleet: journal does not start with a plan record (type %d)", recs[0].Type)
	}
	fp, n, err := parsePlanPayload(recs[0].Payload)
	if err != nil {
		return err
	}
	if fp != c.cfg.Info.Fingerprint || n != len(c.cfg.Cells) {
		return fmt.Errorf("fleet: journal %s belongs to a different plan (fingerprint %x over %d cells, this plan is %x over %d)",
			c.cfg.JournalPath, fp, n, c.cfg.Info.Fingerprint, len(c.cfg.Cells))
	}
	for _, rec := range recs[1:] {
		if rec.Round < 0 || rec.Round >= len(c.cfg.Cells) {
			return fmt.Errorf("fleet: journal cell index %d out of range", rec.Round)
		}
		st := &c.cells[rec.Round]
		token := uint64(rec.User)
		if token >= c.nextToken {
			c.nextToken = token + 1
		}
		switch rec.Type {
		case RecordFleetGrant:
			st.token = token
			st.attempts++
		case RecordFleetComplete:
			raw, cellErr, err := parseCompletePayload(rec.Payload)
			if err != nil {
				return err
			}
			if st.done {
				return fmt.Errorf("fleet: journal completes cell %d twice", rec.Round)
			}
			if cellErr == "" {
				v, err := c.cfg.Decode(raw)
				if err != nil {
					return fmt.Errorf("fleet: journal cell %d result: %w", rec.Round, err)
				}
				c.results[rec.Round] = v
			}
			st.err = cellErr
			st.done = true
			c.remaining--
		case RecordFleetPlan:
			return fmt.Errorf("fleet: journal holds a second plan record")
		default:
			return fmt.Errorf("fleet: unknown journal record type %d", rec.Type)
		}
	}
	deadline := time.Now().Add(c.ttl)
	for i := range c.cells {
		if st := &c.cells[i]; st.token != 0 && !st.done {
			c.live[i] = liveLease{deadline: deadline, worker: "recovered"}
		}
	}
	return nil
}

// Handler serves the fleet protocol, wrapped in the deploy middleware
// (request logging, per-path counters, http.server spans stitched to the
// workers' Helcfl-Trace headers, panic recovery).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPlan, c.handlePlan)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathComplete, c.handleComplete)
	var reqs *obs.CounterVec
	var panics *obs.Counter
	if c.cfg.Metrics != nil {
		reqs = c.cfg.Metrics.CounterVec("helcfl_fleet_http_requests_total", "Coordinator requests by path.", "path")
		panics = c.cfg.Metrics.Counter("helcfl_fleet_http_panics_total", "Coordinator handler panics recovered.")
	}
	return deploy.Middleware(mux, c.cfg.Log, reqs, panics, c.cfg.Trace)
}

// Done is closed when every cell has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Wait blocks until the sweep completes or ctx is canceled, then returns
// the merged fixed-index results — the same slice shape, in the same
// order, as grid.Runner.Run over the same cells. Cells that failed
// deterministically on a worker surface as grid.Errors, with the results
// of successful cells still populated (mirroring the Runner's contract).
func (c *Coordinator) Wait(ctx context.Context) ([]any, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.doneCh:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	results := make([]any, len(c.results))
	copy(results, c.results)
	var errs grid.Errors
	for i := range c.cells {
		if e := c.cells[i].err; e != "" {
			errs = append(errs, &grid.CellError{Index: i, Key: c.cfg.Cells[i].Key(), Err: fmt.Errorf("%s", e)})
		}
	}
	if len(errs) > 0 {
		return results, errs
	}
	return results, nil
}

// Remaining reports cells not yet completed.
func (c *Coordinator) Remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remaining
}

// Info returns the plan identity served to workers.
func (c *Coordinator) Info() PlanInfo { return c.cfg.Info }

// Close releases the journal. The coordinator must not serve afterwards.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	return err
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}

// sweepExpiredLocked retires leases whose deadline passed, making their
// cells grantable again. The cell's fencing token is NOT advanced here: an
// expired-but-alive worker can still complete (or revive via heartbeat)
// until the cell is actually re-granted.
func (c *Coordinator) sweepExpiredLocked(now time.Time) {
	for idx, l := range c.live {
		if now.After(l.deadline) {
			delete(c.live, idx)
			if c.m != nil {
				c.m.expired.Inc()
			}
			c.logf("fleet: lease on cell %d (worker %s, token %d) expired", idx, l.worker, c.cells[idx].token)
		}
	}
}

func (c *Coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, c.cfg.Info)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	_, sp := span.StartCtx(r.Context(), "fleet.lease")
	defer sp.End()
	sp.SetStr("worker", req.Worker)

	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepExpiredLocked(now)
	if c.m != nil {
		c.m.leased.Set(float64(len(c.live)))
	}
	if c.remaining == 0 {
		sp.SetStr("state", StateDone)
		writeJSON(w, http.StatusOK, LeaseResponse{State: StateDone})
		return
	}
	idx := -1
	for i := range c.cells {
		if _, leased := c.live[i]; !c.cells[i].done && !leased {
			idx = i
			break
		}
	}
	if idx < 0 {
		sp.SetStr("state", StateWait)
		writeJSON(w, http.StatusOK, LeaseResponse{State: StateWait, Remaining: c.remaining})
		return
	}
	st := &c.cells[idx]
	token := c.nextToken
	// The grant hits the journal before the response: a coordinator that
	// crashes after answering has durably burned this token, so a restart
	// can never grant it to someone else.
	if c.journal != nil {
		//helcfl:allow(lockheld) the grant must be journaled before the lease escapes the lock; fsyncing after release would let a crashed coordinator re-grant a burned fencing token
		if err := c.journal.Append(checkpoint.Record{Type: RecordFleetGrant, Round: idx, User: int(token)}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	c.nextToken++
	reassigned := st.token != 0
	st.token = token
	st.attempts++
	c.live[idx] = liveLease{deadline: now.Add(c.ttl), worker: req.Worker}
	if c.m != nil {
		c.m.granted.Inc()
		if reassigned {
			c.m.reassigned.Inc()
		}
		c.m.leased.Set(float64(len(c.live)))
	}
	key := c.cfg.Cells[idx].Key()
	sp.SetStr("state", StateGranted)
	sp.SetStr("key", key)
	sp.SetInt("index", int64(idx))
	sp.SetInt("token", int64(token))
	writeJSON(w, http.StatusOK, LeaseResponse{
		State: StateGranted, Index: idx, Key: key, Token: token,
		TTLMillis: c.ttl.Milliseconds(), Remaining: c.remaining,
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Index < 0 || req.Index >= len(c.cells) {
		http.Error(w, "cell index out of range", http.StatusBadRequest)
		return
	}
	st := &c.cells[req.Index]
	if st.done || req.Token != st.token {
		// The cell moved on without this worker; 409 tells it to abandon.
		http.Error(w, "lease fenced", http.StatusConflict)
		return
	}
	// Accepting the heartbeat revives an expired-but-not-regranted lease:
	// the worker is demonstrably alive, so it keeps the cell.
	c.live[req.Index] = liveLease{deadline: time.Now().Add(c.ttl), worker: req.Worker}
	if c.m != nil {
		c.m.leased.Set(float64(len(c.live)))
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	_, sp := span.StartCtx(r.Context(), "fleet.merge")
	defer sp.End()
	sp.SetStr("worker", req.Worker)
	sp.SetInt("index", int64(req.Index))
	sp.SetInt("token", int64(req.Token))

	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Index < 0 || req.Index >= len(c.cells) {
		http.Error(w, "cell index out of range", http.StatusBadRequest)
		return
	}
	st := &c.cells[req.Index]
	key := c.cfg.Cells[req.Index].Key()
	sp.SetStr("key", key)
	switch {
	case st.done:
		// At-most-once: the cell already merged (possibly this very
		// worker's earlier attempt whose 204 was lost in transit).
		if c.m != nil {
			c.m.dupRejected.Inc()
		}
		sp.SetStr("rejected", "duplicate")
		c.logf("fleet: rejected duplicate completion of cell %d (%s) from %s", req.Index, key, req.Worker)
		http.Error(w, "cell already completed", http.StatusConflict)
		return
	case req.Token != st.token:
		// Fenced: the cell was re-granted under a newer token after this
		// worker's lease expired (it was presumed dead). Its result is
		// discarded — the newer holder's will merge.
		if c.m != nil {
			c.m.staleRejected.Inc()
		}
		sp.SetStr("rejected", "stale")
		c.logf("fleet: rejected stale completion of cell %d (%s) from %s (token %d, current %d)",
			req.Index, key, req.Worker, req.Token, st.token)
		http.Error(w, "lease fenced", http.StatusConflict)
		return
	}
	var v any
	if req.Error == "" {
		var err error
		if v, err = c.cfg.Decode(req.Result); err != nil {
			http.Error(w, fmt.Sprintf("undecodable result: %v", err), http.StatusBadRequest)
			return
		}
	}
	// Fsync the completion before the 204: an acknowledged cell is done
	// forever, across any number of coordinator restarts.
	if c.journal != nil {
		rec := checkpoint.Record{Type: RecordFleetComplete, Round: req.Index, User: int(req.Token),
			Payload: completePayload(req.Result, req.Error)}
		//helcfl:allow(lockheld) the completion must be durable inside the same lock hold that marks the cell done, or a crash after the 204 forgets an acknowledged result
		if err := c.journal.Append(rec); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	st.done = true
	st.err = req.Error
	c.results[req.Index] = v
	c.remaining--
	delete(c.live, req.Index)
	if c.m != nil {
		c.m.completed.Inc()
		c.m.attempts.Observe(float64(st.attempts))
		c.m.done.Set(float64(len(c.cells) - c.remaining))
		c.m.leased.Set(float64(len(c.live)))
	}
	c.logf("fleet: cell %d (%s) completed by %s, %d remaining", req.Index, key, req.Worker, c.remaining)
	if c.remaining == 0 {
		close(c.doneCh)
	}
	w.WriteHeader(http.StatusNoContent)
}

// readJSON decodes a POST body, answering 4xx on misuse.
func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
