package report

import (
	"fmt"
	"math"
	"strings"
)

// GanttBar is one row of a Gantt chart: a compute span followed by an
// upload span, with idle (wait) time between them.
type GanttBar struct {
	Label string
	// ComputeEnd marks when local computation finishes (starts at 0).
	ComputeEnd float64
	// UploadStart and UploadEnd bound the transmission.
	UploadStart, UploadEnd float64
}

// Gantt renders per-user round timelines — the reproduction of the paper's
// Fig. 1 drawing. Compute time renders as '▒', waiting as '·', and upload
// airtime as '█'.
type Gantt struct {
	Title string
	Width int
	bars  []GanttBar
}

// NewGantt returns a chart with a default 64-column time axis.
func NewGantt(title string) *Gantt { return &Gantt{Title: title, Width: 64} }

// Add appends one user's bar. Spans must satisfy
// 0 ≤ ComputeEnd ≤ UploadStart ≤ UploadEnd.
func (g *Gantt) Add(b GanttBar) {
	if b.ComputeEnd < 0 || b.UploadStart < b.ComputeEnd-1e-12 || b.UploadEnd < b.UploadStart-1e-12 {
		panic(fmt.Sprintf("report: inconsistent gantt bar %+v", b))
	}
	g.bars = append(g.bars, b)
}

// String renders the chart.
func (g *Gantt) String() string {
	var sb strings.Builder
	sb.WriteString(g.Title)
	sb.WriteString("\n")
	if len(g.bars) == 0 {
		sb.WriteString("(no bars)\n")
		return sb.String()
	}
	tmax := 0.0
	labelW := 0
	for _, b := range g.bars {
		tmax = math.Max(tmax, b.UploadEnd)
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if tmax == 0 {
		tmax = 1
	}
	col := func(t float64) int {
		c := int(float64(g.Width) * t / tmax)
		if c > g.Width {
			c = g.Width
		}
		return c
	}
	for _, b := range g.bars {
		row := make([]rune, g.Width)
		for i := range row {
			row[i] = ' '
		}
		fill := func(from, to int, r rune) {
			for i := from; i < to && i < len(row); i++ {
				row[i] = r
			}
		}
		fill(0, col(b.ComputeEnd), '▒')
		fill(col(b.ComputeEnd), col(b.UploadStart), '·')
		fill(col(b.UploadStart), col(b.UploadEnd), '█')
		sb.WriteString(fmt.Sprintf("%-*s |%s|\n", labelW, b.Label, string(row)))
	}
	sb.WriteString(fmt.Sprintf("%-*s  0%*s\n", labelW, "", g.Width-1, fmt.Sprintf("%.2fs", tmax)))
	sb.WriteString(fmt.Sprintf("%-*s  legend: ▒ compute  · wait (slack)  █ upload\n", labelW, ""))
	return sb.String()
}
