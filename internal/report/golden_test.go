package report

import "testing"

// Golden rendering tests: the exact text formats are part of the CLI's
// contract (downstream scripts parse them), so changes must be deliberate.

func TestTableGolden(t *testing.T) {
	tb := NewTable("T", "a", "bb")
	tb.AddRow("x", "1")
	tb.AddRow("yy", "22")
	want := "T\n" +
		"a   bb\n" +
		"--  --\n" +
		"x   1 \n" +
		"yy  22\n"
	if got := tb.String(); got != want {
		t.Fatalf("table rendering changed:\n got: %q\nwant: %q", got, want)
	}
}

func TestTableCSVGolden(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("1", "2")
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("csv rendering changed:\n got: %q\nwant: %q", got, want)
	}
}

func TestBarChartGolden(t *testing.T) {
	b := NewBarChart("B", "J")
	b.Width = 4
	b.Add("x", 2)
	b.Add("y", 4)
	want := "B\n" +
		"x |██ 2J\n" +
		"y |████ 4J\n"
	if got := b.String(); got != want {
		t.Fatalf("bar rendering changed:\n got: %q\nwant: %q", got, want)
	}
}

func TestLineChartGoldenSmall(t *testing.T) {
	c := NewLineChart("L", "x", "y")
	c.Width = 8
	c.Height = 3
	c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	got := c.String()
	want := "L\n" +
		"  1.000 |       *\n" +
		"  0.500 |        \n" +
		"  0.000 |*       \n" +
		"        +--------\n" +
		"        0         1 (x)\n" +
		"        legend: *=s   (y: y)\n"
	if got != want {
		t.Fatalf("line chart rendering changed:\n got: %q\nwant: %q", got, want)
	}
}
