package report

import (
	"strings"
	"testing"
)

func TestGanttRendersSpans(t *testing.T) {
	g := NewGantt("Round")
	g.Width = 10
	g.Add(GanttBar{Label: "v1", ComputeEnd: 2, UploadStart: 2, UploadEnd: 5})
	g.Add(GanttBar{Label: "v2", ComputeEnd: 3, UploadStart: 5, UploadEnd: 10})
	s := g.String()
	if !strings.Contains(s, "v1") || !strings.Contains(s, "v2") {
		t.Fatalf("missing labels:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	// v1: compute 0–2 → cols 0–1 '▒', upload 2–5 → cols 2–4 '█', no wait.
	if !strings.Contains(lines[1], "▒▒███") {
		t.Fatalf("v1 spans wrong: %q", lines[1])
	}
	// v2: compute 0–3, wait 3–5, upload 5–10.
	if !strings.Contains(lines[2], "▒▒▒··█████") {
		t.Fatalf("v2 spans wrong: %q", lines[2])
	}
	if !strings.Contains(s, "legend") {
		t.Fatalf("missing legend:\n%s", s)
	}
}

func TestGanttEmpty(t *testing.T) {
	if !strings.Contains(NewGantt("x").String(), "no bars") {
		t.Fatal("empty gantt must say so")
	}
}

func TestGanttInconsistentBarPanics(t *testing.T) {
	g := NewGantt("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for upload before compute end")
		}
	}()
	g.Add(GanttBar{Label: "v", ComputeEnd: 5, UploadStart: 2, UploadEnd: 6})
}
