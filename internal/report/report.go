// Package report renders experiment outputs as ASCII tables, ASCII line
// charts (for the paper's figures), and CSV for external plotting.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; its length must match the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row with %d cells for %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := displayWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(c)))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// displayWidth approximates terminal width by rune count.
func displayWidth(s string) int { return len([]rune(s)) }

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of an ASCII chart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart renders multiple series on a shared-axis ASCII grid — the
// reproduction's stand-in for the paper's matplotlib figures.
type LineChart struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	series         []Series
}

// NewLineChart returns a chart with a default 72×20 plotting area.
func NewLineChart(title, xlabel, ylabel string) *LineChart {
	return &LineChart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series. X and Y must have equal, non-zero length.
func (c *LineChart) Add(s Series) {
	if len(s.X) != len(s.Y) || len(s.X) == 0 {
		panic(fmt.Sprintf("report: series %q has %d x and %d y values", s.Name, len(s.X), len(s.Y)))
	}
	c.series = append(c.series, s)
}

// markers label series in draw order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// String renders the chart.
func (c *LineChart) String() string {
	if len(c.series) == 0 {
		return c.Title + "\n(no data)\n"
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin { //helcfl:allow(floatcompare) exact degenerate-axis guard before dividing by the span
		xmax = xmin + 1
	}
	if ymax == ymin { //helcfl:allow(floatcompare) exact degenerate-axis guard before dividing by the span
		ymax = ymin + 1
	}
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int(float64(c.Width-1) * (s.X[i] - xmin) / (xmax - xmin))
			row := c.Height - 1 - int(float64(c.Height-1)*(s.Y[i]-ymin)/(ymax-ymin))
			grid[row][col] = m
		}
	}
	var b strings.Builder
	b.WriteString(c.Title)
	b.WriteString("\n")
	for r, row := range grid {
		// y-axis labels at top, middle, bottom rows.
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", ymax)
		case c.Height / 2:
			label = fmt.Sprintf("%7.3f ", (ymax+ymin)/2)
		case c.Height - 1:
			label = fmt.Sprintf("%7.3f ", ymin)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", c.Width))
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("        %-10.3g%*s\n", xmin, c.Width-8, fmt.Sprintf("%.3g (%s)", xmax, c.XLabel)))
	b.WriteString("        legend: ")
	for si, s := range c.series {
		if si > 0 {
			b.WriteString("  ")
		}
		b.WriteString(fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	b.WriteString(fmt.Sprintf("   (y: %s)\n", c.YLabel))
	return b.String()
}

// BarChart renders labelled horizontal bars, used for Fig. 3's grouped
// energy-reduction bars.
type BarChart struct {
	Title string
	Unit  string
	Width int
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart returns a chart with a default 50-character bar area.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 50}
}

// Add appends one bar.
func (b *BarChart) Add(label string, value float64) {
	b.rows = append(b.rows, barRow{label: label, value: value})
}

// String renders the chart.
func (b *BarChart) String() string {
	var sb strings.Builder
	sb.WriteString(b.Title)
	sb.WriteString("\n")
	if len(b.rows) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	maxV := 0.0
	maxL := 0
	for _, r := range b.rows {
		if r.value > maxV {
			maxV = r.value
		}
		if l := displayWidth(r.label); l > maxL {
			maxL = l
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for _, r := range b.rows {
		n := int(float64(b.Width) * r.value / maxV)
		if n < 0 {
			n = 0
		}
		sb.WriteString(fmt.Sprintf("%-*s |%s %.4g%s\n", maxL, r.label, strings.Repeat("█", n), r.value, b.Unit))
	}
	return sb.String()
}
