package report

import (
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("Demo", "scheme", "delay")
	tb.AddRow("HELCFL", "6.82min")
	tb.AddRow("ClassicFL", "10.31min")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "HELCFL") {
		t.Fatalf("table output missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	// Columns align: "delay" column starts at the same offset in all rows.
	idxHeader := strings.Index(lines[1], "delay")
	idxRow := strings.Index(lines[3], "6.82min")
	if idxHeader != idxRow {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idxHeader, idxRow, s)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong arity")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "name,note\n") {
		t.Fatalf("missing header: %s", csv)
	}
}

func TestLineChartRendersAllSeries(t *testing.T) {
	c := NewLineChart("Accuracy", "round", "acc")
	c.Add(Series{Name: "HELCFL", X: []float64{0, 1, 2}, Y: []float64{0.1, 0.5, 0.8}})
	c.Add(Series{Name: "FedCS", X: []float64{0, 1, 2}, Y: []float64{0.2, 0.4, 0.5}})
	s := c.String()
	if !strings.Contains(s, "*") || !strings.Contains(s, "+") {
		t.Fatalf("chart missing markers:\n%s", s)
	}
	if !strings.Contains(s, "*=HELCFL") || !strings.Contains(s, "+=FedCS") {
		t.Fatalf("chart missing legend:\n%s", s)
	}
	if !strings.Contains(s, "0.800") {
		t.Fatalf("chart missing y-axis max label:\n%s", s)
	}
}

func TestLineChartEmptyAndDegenerate(t *testing.T) {
	c := NewLineChart("Empty", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart must say so")
	}
	c2 := NewLineChart("Flat", "x", "y")
	c2.Add(Series{Name: "s", X: []float64{1}, Y: []float64{2}})
	if c2.String() == "" {
		t.Fatal("single-point series must render")
	}
}

func TestLineChartBadSeriesPanics(t *testing.T) {
	c := NewLineChart("x", "x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched series")
		}
	}()
	c.Add(Series{Name: "bad", X: []float64{1, 2}, Y: []float64{1}})
}

func TestBarChart(t *testing.T) {
	b := NewBarChart("Energy", "J")
	b.Add("with DVFS", 40)
	b.Add("without DVFS", 100)
	s := b.String()
	if !strings.Contains(s, "with DVFS") || !strings.Contains(s, "█") {
		t.Fatalf("bar chart missing content:\n%s", s)
	}
	// The longer bar belongs to the larger value.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	count := func(l string) int { return strings.Count(l, "█") }
	if count(lines[1]) >= count(lines[2]) {
		t.Fatalf("bar lengths not proportional:\n%s", s)
	}
}

func TestBarChartEmpty(t *testing.T) {
	b := NewBarChart("x", "J")
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty bar chart must say so")
	}
}
