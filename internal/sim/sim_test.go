package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

func testDevices(n int, seed int64) []*device.Device {
	cfg := device.DefaultCatalogConfig()
	cfg.Q = n
	devs := device.NewCatalog(cfg, rand.New(rand.NewSource(seed)))
	for i, d := range devs {
		d.NumSamples = 40 + 10*(i%5)
	}
	return devs
}

const testModelBits = 4e5

func TestSimulateRoundEmpty(t *testing.T) {
	res := SimulateRound(nil, nil, wireless.DefaultChannel(), testModelBits, 1)
	if res.Makespan != 0 || len(res.Users) != 0 {
		t.Fatalf("empty round = %+v", res)
	}
}

func TestSimulateRoundSingleUser(t *testing.T) {
	devs := testDevices(1, 1)
	ch := wireless.DefaultChannel()
	res := SimulateRound(devs, MaxFrequencies(devs), ch, testModelBits, 1)
	u := res.Users[0]
	wantCal := devs[0].ComputeDelayAtMax()
	if math.Abs(u.ComputeDelay-wantCal) > 1e-12 {
		t.Fatalf("ComputeDelay = %g, want %g", u.ComputeDelay, wantCal)
	}
	if math.Abs(res.Makespan-u.TotalDelay()) > 1e-12 {
		t.Fatalf("single-user makespan %g != Eq9 delay %g", res.Makespan, u.TotalDelay())
	}
	if math.Abs(res.Eq10Delay-res.Makespan) > 1e-12 {
		t.Fatal("single user: Eq10 must equal makespan")
	}
	if u.Wait != 0 {
		t.Fatal("single user has no slack")
	}
	wantE := devs[0].ComputeEnergy(devs[0].FMax) + ch.UploadEnergy(testModelBits, devs[0].TxPower, devs[0].ChannelGain)
	if math.Abs(res.TotalEnergy-wantE) > 1e-12 {
		t.Fatalf("TotalEnergy = %g, want %g", res.TotalEnergy, wantE)
	}
}

func TestSimulateRoundStepsScaleCompute(t *testing.T) {
	devs := testDevices(3, 2)
	ch := wireless.DefaultChannel()
	r1 := SimulateRound(devs, MaxFrequencies(devs), ch, testModelBits, 1)
	r3 := SimulateRound(devs, MaxFrequencies(devs), ch, testModelBits, 3)
	if math.Abs(r3.ComputeEnergy-3*r1.ComputeEnergy) > 1e-9 {
		t.Fatalf("steps=3 compute energy %g, want %g", r3.ComputeEnergy, 3*r1.ComputeEnergy)
	}
	if math.Abs(r3.UploadEnergy-r1.UploadEnergy) > 1e-12 {
		t.Fatal("steps must not change upload energy")
	}
	if r3.Makespan <= r1.Makespan {
		t.Fatal("more local steps must lengthen the round")
	}
}

func TestSimulateRoundMismatchedFreqsPanics(t *testing.T) {
	devs := testDevices(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for freq/device mismatch")
		}
	}()
	SimulateRound(devs, []float64{1e9}, wireless.DefaultChannel(), testModelBits, 1)
}

func TestSimulateRoundOutOfRangeFreqPanics(t *testing.T) {
	devs := testDevices(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range frequency")
		}
	}()
	SimulateRound(devs, []float64{devs[0].FMax * 2}, wireless.DefaultChannel(), testModelBits, 1)
}

func TestUsersOrderedByTransmission(t *testing.T) {
	devs := testDevices(8, 5)
	res := SimulateRound(devs, MaxFrequencies(devs), wireless.DefaultChannel(), testModelBits, 1)
	for i := 1; i < len(res.Users); i++ {
		if res.Users[i].UploadStart < res.Users[i-1].UploadEnd-1e-12 {
			t.Fatal("uploads must not overlap and must be in order")
		}
	}
}

// Property: Eq. (10) lower-bounds the true makespan, energies are additive
// and positive, and slack equals sum of per-user waits.
func TestRoundInvariantsQuick(t *testing.T) {
	ch := wireless.DefaultChannel()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		devs := testDevices(n, seed)
		res := SimulateRound(devs, MaxFrequencies(devs), ch, testModelBits, 1)
		if res.Makespan < res.Eq10Delay-1e-9 {
			return false
		}
		var e, w float64
		for _, u := range res.Users {
			if u.ComputeEnergy <= 0 || u.UploadEnergy <= 0 {
				return false
			}
			e += u.ComputeEnergy + u.UploadEnergy
			w += u.Wait
		}
		return math.Abs(e-res.TotalEnergy) < 1e-9 && math.Abs(w-res.TotalSlack) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFrequencies(t *testing.T) {
	devs := testDevices(4, 6)
	fs := MaxFrequencies(devs)
	for i, d := range devs {
		if fs[i] != d.FMax {
			t.Fatalf("device %d: %g != FMax %g", i, fs[i], d.FMax)
		}
	}
}

// Reproduction of the Fig. 1 scenario: two users where user 2 finishes
// computing while user 1 is still uploading, forcing stop-and-wait slack.
func TestTimelineSlackMatchesFig1Scenario(t *testing.T) {
	ch := wireless.Channel{BandwidthHz: 1e6, NoisePower: 0.1}
	mk := func(id, samples int, fmax float64) *device.Device {
		return &device.Device{
			ID: id, FMin: 0.3e9, FMax: fmax,
			CyclesPerSample: 1e7, Kappa: 2e-28,
			TxPower: 0.2, ChannelGain: 1.0, NumSamples: samples,
		}
	}
	// User 1 computes fast (finishes first) and then holds the channel;
	// user 2 finishes while user 1 uploads.
	u1 := mk(1, 50, 2.0e9) // T_cal = 0.25 s
	u2 := mk(2, 60, 1.5e9) // T_cal = 0.4 s
	bits := 1.2e6          // T_com ≈ 0.757 s at h=1
	res := SimulateRound([]*device.Device{u1, u2}, []float64{2.0e9, 1.5e9}, ch, bits, 1)
	if res.Users[0].User != 1 {
		t.Fatalf("user 1 must upload first, got %d", res.Users[0].User)
	}
	second := res.Users[1]
	if second.Wait <= 0 {
		t.Fatalf("Fig. 1 slack missing: wait = %g", second.Wait)
	}
	// The slack equals user 1's upload end minus user 2's compute end.
	wantWait := res.Users[0].UploadEnd - second.ComputeDelay
	if math.Abs(second.Wait-wantWait) > 1e-9 {
		t.Fatalf("wait = %g, want %g", second.Wait, wantWait)
	}
}
