package sim

import (
	"fmt"

	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

// SimulateRoundEdges is SimulateRoundGains with a hierarchical aggregation
// tier: each selected device uploads to its edge aggregator (edges[i], in
// [0, numEdges)) instead of the FLCC, and the numEdges TDMA uplinks run in
// parallel. The round makespan is the slowest edge's makespan; stop-and-wait
// slack sums across edges. Edge→FLCC backhaul is modeled as free, the
// standard wired-backhaul assumption in hierarchical FL (the access uplink
// is the bottleneck the paper's Eq. (6)–(8) model).
//
// Users is ordered edge-major (edge 0's slots, then edge 1's, ...), each
// edge in its own TDMA transmission order. With numEdges == 1 the result is
// bit-identical to SimulateRoundGains — the single "edge" is the FLCC.
func (s *Scratch) SimulateRoundEdges(devs []*device.Device, freqs []float64, ch wireless.Channel, modelBits float64, steps int, gains []float64, edges []int, numEdges int) RoundResult {
	if len(edges) != len(devs) {
		panic(fmt.Sprintf("sim: %d devices but %d edge assignments", len(devs), len(edges)))
	}
	if numEdges <= 0 {
		panic(fmt.Sprintf("sim: non-positive edge count %d", numEdges))
	}
	if len(devs) != len(freqs) {
		panic(fmt.Sprintf("sim: %d devices but %d frequencies", len(devs), len(freqs)))
	}
	if gains != nil && len(gains) != len(devs) {
		panic(fmt.Sprintf("sim: %d devices but %d gains", len(devs), len(gains)))
	}
	if steps <= 0 {
		panic(fmt.Sprintf("sim: non-positive local steps %d", steps))
	}
	if len(devs) == 0 {
		return RoundResult{}
	}
	scale := float64(steps)
	s.users = growUserRounds(s.users, len(devs))
	if cap(s.reqs) < len(devs) {
		s.reqs = make([]wireless.UploadRequest, len(devs))
	}
	if cap(s.edgeReqs) < len(devs) {
		s.edgeReqs = make([]wireless.UploadRequest, 0, len(devs))
	}
	s.reqs = s.reqs[:len(devs)]
	users, reqs := s.users, s.reqs
	for i, d := range devs {
		if edges[i] < 0 || edges[i] >= numEdges {
			panic(fmt.Sprintf("sim: device %d assigned to edge %d outside [0, %d)", d.ID, edges[i], numEdges))
		}
		f := freqs[i]
		// Relative tolerance: frequencies are ~1e9 Hz, so ULP-scale noise
		// from upstream arithmetic must not trip the range check.
		if f < d.FMin*(1-1e-12)-1e-9 || f > d.FMax*(1+1e-12)+1e-9 {
			panic(fmt.Sprintf("sim: frequency %g outside device %d range [%g, %g]", f, d.ID, d.FMin, d.FMax))
		}
		gain := d.ChannelGain
		if gains != nil {
			gain = gains[i]
		}
		u := UserRound{
			User:          d.ID,
			Freq:          f,
			ComputeDelay:  scale * d.ComputeDelay(f),
			ComputeEnergy: scale * d.ComputeEnergy(f),
			UploadDelay:   ch.UploadDelay(modelBits, d.TxPower, gain),
			UploadEnergy:  ch.UploadEnergy(modelBits, d.TxPower, gain),
		}
		users[i] = u
		reqs[i] = wireless.UploadRequest{User: i, ComputeDone: u.ComputeDelay, Duration: u.UploadDelay}
	}

	res := RoundResult{}
	s.out = growUserRounds(s.out, len(devs))[:0]
	for e := 0; e < numEdges; e++ {
		s.edgeReqs = s.edgeReqs[:0]
		for i := range reqs {
			if edges[i] == e {
				s.edgeReqs = append(s.edgeReqs, reqs[i])
			}
		}
		slots, makespan := wireless.ScheduleTDMAInto(s.slots, s.edgeReqs)
		s.slots = slots
		if makespan > res.Makespan {
			res.Makespan = makespan
		}
		res.TotalSlack += wireless.TotalWait(slots)
		for _, slot := range slots {
			u := users[slot.User]
			u.UploadStart = slot.Start
			u.UploadEnd = slot.End
			u.Wait = slot.Wait
			s.out = append(s.out, u)
		}
	}
	res.Users = s.out
	for i := range users {
		if d := users[i].TotalDelay(); d > res.Eq10Delay {
			res.Eq10Delay = d
		}
		res.ComputeEnergy += users[i].ComputeEnergy
		res.UploadEnergy += users[i].UploadEnergy
	}
	res.TotalEnergy = res.ComputeEnergy + res.UploadEnergy
	return res
}
