package sim

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

func edgeFleet(n int, seed int64) []*device.Device {
	cfg := device.DefaultCatalogConfig()
	cfg.Q = n
	devs := device.NewCatalog(cfg, rand.New(rand.NewSource(seed)))
	for i, d := range devs {
		d.NumSamples = 25 + 5*(i%5)
	}
	return devs
}

// TestSimulateRoundEdgesSingleEdgeMatchesFlat pins the numEdges == 1 path
// bit-identical to the flat simulator: one edge IS the FLCC.
func TestSimulateRoundEdgesSingleEdgeMatchesFlat(t *testing.T) {
	devs := edgeFleet(17, 4)
	ch := wireless.DefaultChannel()
	freqs := MaxFrequencies(devs)
	edges := make([]int, len(devs))
	var a, b Scratch
	flat := a.SimulateRoundGains(devs, freqs, ch, 4e5, 1, nil)
	hier := b.SimulateRoundEdges(devs, freqs, ch, 4e5, 1, nil, edges, 1)
	if flat.Makespan != hier.Makespan || flat.Eq10Delay != hier.Eq10Delay ||
		flat.TotalEnergy != hier.TotalEnergy || flat.TotalSlack != hier.TotalSlack {
		t.Fatalf("single-edge aggregates diverge from flat:\nflat %+v\nhier %+v", flat, hier)
	}
	if len(flat.Users) != len(hier.Users) {
		t.Fatalf("user counts %d vs %d", len(flat.Users), len(hier.Users))
	}
	for i := range flat.Users {
		if flat.Users[i] != hier.Users[i] {
			t.Fatalf("user %d diverges:\nflat %+v\nhier %+v", i, flat.Users[i], hier.Users[i])
		}
	}
}

// TestSimulateRoundEdgesParallelUplinks checks the hierarchical semantics:
// per-edge TDMA chains run in parallel, so the round makespan is the max of
// the per-edge makespans (never larger than the flat single-channel one),
// energies are channel-independent, and every user appears exactly once in
// edge-major order.
func TestSimulateRoundEdgesParallelUplinks(t *testing.T) {
	devs := edgeFleet(24, 9)
	ch := wireless.DefaultChannel()
	freqs := MaxFrequencies(devs)
	const numEdges = 3
	edges := make([]int, len(devs))
	for i := range edges {
		edges[i] = i % numEdges
	}
	var s Scratch
	flat := SimulateRoundGains(devs, freqs, ch, 4e5, 1, nil)
	hier := s.SimulateRoundEdges(devs, freqs, ch, 4e5, 1, nil, edges, numEdges)

	if hier.Makespan > flat.Makespan {
		t.Fatalf("parallel edge uplinks made the round slower: %v > %v", hier.Makespan, flat.Makespan)
	}
	if math.Abs(hier.TotalEnergy-flat.TotalEnergy) > 1e-9 {
		t.Fatalf("energy depends on aggregation topology: %v vs %v", hier.TotalEnergy, flat.TotalEnergy)
	}
	if hier.Eq10Delay != flat.Eq10Delay {
		t.Fatalf("Eq10Delay depends on topology: %v vs %v", hier.Eq10Delay, flat.Eq10Delay)
	}
	// Recompute each edge in isolation; the round makespan must be their max.
	maxEdge := 0.0
	for e := 0; e < numEdges; e++ {
		var ed []*device.Device
		var ef []float64
		for i, d := range devs {
			if edges[i] == e {
				ed = append(ed, d)
				ef = append(ef, freqs[i])
			}
		}
		r := SimulateRoundGains(ed, ef, ch, 4e5, 1, nil)
		if r.Makespan > maxEdge {
			maxEdge = r.Makespan
		}
	}
	if hier.Makespan != maxEdge {
		t.Fatalf("makespan %v != max per-edge makespan %v", hier.Makespan, maxEdge)
	}
	// Coverage: every device exactly once, grouped edge-major.
	seen := make(map[int]int)
	for _, u := range hier.Users {
		seen[u.User]++
	}
	for _, d := range devs {
		if seen[d.ID] != 1 {
			t.Fatalf("device %d appears %d times", d.ID, seen[d.ID])
		}
	}
	prevEdge := -1
	for _, u := range hier.Users {
		e := u.User % numEdges // edges[i] = i%numEdges and ID = position
		if e < prevEdge {
			t.Fatalf("users not edge-major: edge %d after edge %d", e, prevEdge)
		}
		prevEdge = e
	}
}

func TestSimulateRoundEdgesPanics(t *testing.T) {
	devs := edgeFleet(3, 1)
	ch := wireless.DefaultChannel()
	freqs := MaxFrequencies(devs)
	var s Scratch
	for name, f := range map[string]func(){
		"ragged edges":  func() { s.SimulateRoundEdges(devs, freqs, ch, 4e5, 1, nil, []int{0}, 1) },
		"zero edges":    func() { s.SimulateRoundEdges(devs, freqs, ch, 4e5, 1, nil, []int{0, 0, 0}, 0) },
		"edge range":    func() { s.SimulateRoundEdges(devs, freqs, ch, 4e5, 1, nil, []int{0, 2, 0}, 2) },
		"negative edge": func() { s.SimulateRoundEdges(devs, freqs, ch, 4e5, 1, nil, []int{0, -1, 0}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
