// Package sim simulates one synchronized FL training round on the MEC
// substrate: parallel local computation at per-user DVFS frequencies,
// sequential TDMA uploads with stop-and-wait queueing (the paper's Fig. 1),
// the true round makespan, the Eq. (10) closed form, and the Eq. (11)
// energy roll-up.
package sim

import (
	"fmt"

	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

// UserRound is the simulated trajectory of one selected user in a round.
type UserRound struct {
	// User is the device ID.
	User int
	// Freq is the operating frequency assigned for this round.
	Freq float64
	// ComputeDelay is T_q^cal at Freq (Eq. 4), scaled by the number of
	// local GD steps.
	ComputeDelay float64
	// ComputeEnergy is E_q^cal (Eq. 5), scaled likewise.
	ComputeEnergy float64
	// UploadDelay is T_q^com (Eq. 7).
	UploadDelay float64
	// UploadEnergy is E_q^com (Eq. 8).
	UploadEnergy float64
	// UploadStart and UploadEnd bound the TDMA transmission.
	UploadStart, UploadEnd float64
	// Wait is the stop-and-wait slack between compute completion and
	// transmission start.
	Wait float64
}

// TotalDelay returns the user's Eq. (9) delay T_q = T_q^cal + T_q^com,
// ignoring queueing.
func (u UserRound) TotalDelay() float64 { return u.ComputeDelay + u.UploadDelay }

// RoundResult aggregates a simulated round.
type RoundResult struct {
	// Users holds per-user trajectories in TDMA transmission order.
	Users []UserRound
	// Makespan is the true round delay: the time the last upload completes.
	Makespan float64
	// Eq10Delay is the paper's closed-form round delay
	// max_q(T_q^cal + T_q^com); it lower-bounds Makespan.
	Eq10Delay float64
	// ComputeEnergy, UploadEnergy, and TotalEnergy aggregate Eq. (11).
	ComputeEnergy, UploadEnergy, TotalEnergy float64
	// TotalSlack sums stop-and-wait time across users.
	TotalSlack float64
}

// SimulateRound runs the round timeline for the selected devices at the
// given frequencies. freqs must align 1:1 with devs. modelBits is C_model;
// steps is the number of local full-batch GD passes (the paper uses 1) and
// scales compute delay and energy linearly.
func SimulateRound(devs []*device.Device, freqs []float64, ch wireless.Channel, modelBits float64, steps int) RoundResult {
	return SimulateRoundGains(devs, freqs, ch, modelBits, steps, nil)
}

// SimulateRoundGains is SimulateRound with per-round channel gains
// overriding each device's static gain (for fading-channel studies). gains
// must align with devs, or be nil to use the static gains.
func SimulateRoundGains(devs []*device.Device, freqs []float64, ch wireless.Channel, modelBits float64, steps int, gains []float64) RoundResult {
	var s Scratch
	return s.SimulateRoundGains(devs, freqs, ch, modelBits, steps, gains)
}

// Scratch holds the per-round working buffers of the simulator so a caller
// driving many rounds (the fl engine's hot loop) reuses them instead of
// allocating fresh slices every round. The zero value is ready to use.
//
// The RoundResult returned by its methods aliases the scratch: Users is
// only valid until the next call on the same Scratch. Callers that need to
// retain a round must copy it (or use the allocating free functions).
type Scratch struct {
	users []UserRound
	reqs  []wireless.UploadRequest
	slots []wireless.UploadSlot
	out   []UserRound
	// edgeReqs gathers one edge aggregator's uplink requests at a time in
	// SimulateRoundEdges.
	edgeReqs []wireless.UploadRequest
}

func growUserRounds(buf []UserRound, n int) []UserRound {
	if cap(buf) < n {
		return make([]UserRound, n)
	}
	return buf[:n]
}

// SimulateRoundGains is the buffer-reusing form of the free function of the
// same name; results are value-identical, but the returned RoundResult is
// only valid until the next call on this Scratch.
func (s *Scratch) SimulateRoundGains(devs []*device.Device, freqs []float64, ch wireless.Channel, modelBits float64, steps int, gains []float64) RoundResult {
	if len(devs) != len(freqs) {
		panic(fmt.Sprintf("sim: %d devices but %d frequencies", len(devs), len(freqs)))
	}
	if gains != nil && len(gains) != len(devs) {
		panic(fmt.Sprintf("sim: %d devices but %d gains", len(devs), len(gains)))
	}
	if steps <= 0 {
		panic(fmt.Sprintf("sim: non-positive local steps %d", steps))
	}
	if len(devs) == 0 {
		return RoundResult{}
	}
	scale := float64(steps)
	s.users = growUserRounds(s.users, len(devs))
	if cap(s.reqs) < len(devs) {
		s.reqs = make([]wireless.UploadRequest, len(devs))
	}
	s.reqs = s.reqs[:len(devs)]
	users, reqs := s.users, s.reqs
	for i, d := range devs {
		f := freqs[i]
		// Relative tolerance: frequencies are ~1e9 Hz, so ULP-scale noise
		// from upstream arithmetic must not trip the range check.
		if f < d.FMin*(1-1e-12)-1e-9 || f > d.FMax*(1+1e-12)+1e-9 {
			panic(fmt.Sprintf("sim: frequency %g outside device %d range [%g, %g]", f, d.ID, d.FMin, d.FMax))
		}
		gain := d.ChannelGain
		if gains != nil {
			gain = gains[i]
		}
		u := UserRound{
			User:          d.ID,
			Freq:          f,
			ComputeDelay:  scale * d.ComputeDelay(f),
			ComputeEnergy: scale * d.ComputeEnergy(f),
			UploadDelay:   ch.UploadDelay(modelBits, d.TxPower, gain),
			UploadEnergy:  ch.UploadEnergy(modelBits, d.TxPower, gain),
		}
		users[i] = u
		reqs[i] = wireless.UploadRequest{User: i, ComputeDone: u.ComputeDelay, Duration: u.UploadDelay}
	}

	slots, makespan := wireless.ScheduleTDMAInto(s.slots, reqs)
	s.slots = slots
	res := RoundResult{Makespan: makespan}
	s.out = growUserRounds(s.out, len(slots))
	res.Users = s.out
	for si, slot := range slots {
		u := users[slot.User]
		u.UploadStart = slot.Start
		u.UploadEnd = slot.End
		u.Wait = slot.Wait
		res.Users[si] = u
	}
	for _, u := range users {
		if d := u.TotalDelay(); d > res.Eq10Delay {
			res.Eq10Delay = d
		}
		res.ComputeEnergy += u.ComputeEnergy
		res.UploadEnergy += u.UploadEnergy
	}
	res.TotalEnergy = res.ComputeEnergy + res.UploadEnergy
	res.TotalSlack = wireless.TotalWait(slots)
	return res
}

// MaxFrequencies returns each device's FMax, the no-DVFS baseline plan.
func MaxFrequencies(devs []*device.Device) []float64 {
	out := make([]float64, len(devs))
	for i, d := range devs {
		out[i] = d.FMax
	}
	return out
}
