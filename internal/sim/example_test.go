package sim_test

import (
	"fmt"

	"helcfl/internal/device"
	"helcfl/internal/sim"
	"helcfl/internal/wireless"
)

// One synchronized round: parallel compute, serialized TDMA uploads, true
// makespan vs the paper's Eq. (10) closed form.
func ExampleSimulateRound() {
	mk := func(id, samples int, fmaxGHz float64) *device.Device {
		return &device.Device{
			ID: id, FMin: 0.3e9, FMax: fmaxGHz * 1e9,
			CyclesPerSample: 1e8, Kappa: 2e-28,
			TxPower: 0.2, ChannelGain: 1.0, NumSamples: samples,
		}
	}
	devs := []*device.Device{mk(0, 20, 2.0), mk(1, 20, 1.0)}
	ch := wireless.Channel{BandwidthHz: 2e6, NoisePower: 0.1}
	r := sim.SimulateRound(devs, sim.MaxFrequencies(devs), ch, 1e6, 1)
	fmt.Printf("makespan %.2fs ≥ Eq.10 bound %.2fs\n", r.Makespan, r.Eq10Delay)
	fmt.Printf("slack %.2fs, energy %.2fJ\n", r.TotalSlack, r.TotalEnergy)
	// Output:
	// makespan 2.32s ≥ Eq.10 bound 2.32s
	// slack 0.00s, energy 1.13J
}
