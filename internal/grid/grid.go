// Package grid turns the paper's evaluation into declarative campaign
// grids. The experiment layer (internal/experiments) describes each study —
// Fig. 2's five schemes × two settings, Table I, the η/C/compression/…
// ablations, multi-seed robustness — as a flat list of Cells: independent,
// self-contained units keyed by what they compute. A Runner executes a grid
// on a bounded worker pool with results placed at fixed indices, so a
// parallel run is bit-identical to a serial one.
//
// Determinism contract (see docs/GRID.md):
//
//   - A Cell must derive everything — data, fleet, model init, planner
//     randomness — from its own fields (Seed and the key-derived RNG),
//     never from execution order, shared mutable state, or the clock.
//   - Two cells with equal keys are assumed interchangeable; the Runner
//     rejects duplicate keys in one grid, and plan composition dedupes by
//     key so one computation is shared by every figure that needs it.
//   - The Runner writes result i for cells[i] only; worker scheduling can
//     reorder execution but never placement.
package grid

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
)

// Cell is one independent unit of a campaign grid: a fully specified
// experiment (preset × setting × scheme × config variant × seed) whose Run
// builds its own environment and returns its result. Cells must not share
// mutable state; the Runner may execute any subset of a grid concurrently.
type Cell struct {
	// Experiment names the computation kind ("train", "fig1", "rb", …).
	// Cells that perform the same computation must use the same Experiment
	// so plan composition can share one execution.
	Experiment string
	// Preset is the preset name (Preset.Name).
	Preset string
	// Setting is the data setting ("IID", "Non-IID"), or "" when the unit
	// is setting-independent.
	Setting string
	// Scheme is the scheduling scheme, or "" when not applicable.
	Scheme string
	// Variant names any configuration mutation beyond the preset defaults
	// ("eta=0.5", "dropout=0.1", "compressor=topk10"). A cell whose Run
	// deviates from the plain (Experiment, Preset, Setting, Scheme, Seed)
	// computation MUST set Variant: equal keys are assumed interchangeable.
	Variant string
	// Seed is the base seed the cell's environment derives from.
	Seed int64
	// Run executes the cell. rng is the cell's private generator, derived
	// only from the cell key (see RNGSeed) — cells needing extra randomness
	// draw from it (or from Seed) so results are independent of execution
	// order. Run must honor ctx promptly only at unit boundaries; the
	// Runner checks ctx before starting each cell.
	Run func(ctx context.Context, rng *rand.Rand) (any, error)
}

// Key returns the cell's identity: the joined field tuple. Every field slot
// is always present (empty fields keep their separator) so distinct cells
// cannot collide by field shifting.
func (c Cell) Key() string {
	return strings.Join([]string{
		c.Experiment, c.Preset, c.Setting, c.Scheme, c.Variant,
		"seed=" + strconv.FormatInt(c.Seed, 10),
	}, "|")
}

// RNGSeed derives the cell's RNG seed from the key alone (FNV-1a 64), so
// per-cell randomness depends only on what the cell is, never on when or
// where in the pool it runs.
func (c Cell) RNGSeed() int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.Key()))
	return int64(h.Sum64())
}

// RNG returns a fresh generator seeded with RNGSeed. The Runner passes one
// to Run; this constructor is exported for tests and serial replay.
func (c Cell) RNG() *rand.Rand { return rand.New(rand.NewSource(c.RNGSeed())) }

// CellError is the typed per-cell failure the Runner collects: which cell
// (by index and key) failed, and why. Cells never started because the
// context was canceled carry that context error.
type CellError struct {
	// Index is the cell's position in the grid.
	Index int
	// Key is the cell's identity at failure time.
	Key string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *CellError) Error() string {
	return fmt.Sprintf("grid: cell %d (%s): %v", e.Index, e.Key, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Errors is every cell failure of one grid run, in index order.
type Errors []*CellError

// Error implements error: the first failure plus the overflow count.
func (es Errors) Error() string {
	switch len(es) {
	case 0:
		return "grid: no cell errors"
	case 1:
		return es[0].Error()
	}
	return fmt.Sprintf("%s (and %d more cell errors)", es[0].Error(), len(es)-1)
}

// Unwrap exposes every cell failure to errors.Is/As, so callers can test
// for a shared cause (e.g. context.Canceled) across the whole grid.
func (es Errors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// DuplicateKeyError reports two cells in one grid sharing an identity —
// either a missing Variant on a mutated cell or a genuine duplicate; both
// are authoring bugs, caught before any cell runs.
type DuplicateKeyError struct {
	Key string
	// A and B are the colliding indices, A < B.
	A, B int
}

// Error implements error.
func (e *DuplicateKeyError) Error() string {
	return fmt.Sprintf("grid: cells %d and %d share key %q; set Variant on mutated cells", e.A, e.B, e.Key)
}

// Validate rejects grids with nil Run functions or colliding keys.
func Validate(cells []Cell) error {
	seen := make(map[string]int, len(cells))
	for i, c := range cells {
		if c.Run == nil {
			return fmt.Errorf("grid: cell %d (%s) has no Run function", i, c.Key())
		}
		k := c.Key()
		if j, ok := seen[k]; ok {
			return &DuplicateKeyError{Key: k, A: j, B: i}
		}
		seen[k] = i
	}
	return nil
}

// Fingerprint hashes the ordered cell keys (FNV-1a 64). A coordinator and
// its workers rebuild the same plan independently from (experiment, preset,
// seeds); comparing fingerprints before any lease is granted catches a
// version- or flag-skewed worker whose plan would place results at the
// wrong indices.
func Fingerprint(cells []Cell) uint64 {
	h := fnv.New64a()
	for _, c := range cells {
		_, _ = h.Write([]byte(c.Key()))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
