package grid

import "testing"

func fpCell(exp, scheme string, seed int64) Cell {
	return Cell{Experiment: exp, Preset: "tiny", Setting: "IID", Scheme: scheme, Seed: seed}
}

func TestFingerprintIdentifiesPlans(t *testing.T) {
	a := []Cell{fpCell("train", "HELCFL", 1), fpCell("train", "FedAvg", 1)}
	b := []Cell{fpCell("train", "HELCFL", 1), fpCell("train", "FedAvg", 1)}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical plans should share a fingerprint")
	}
	// Order matters: leases address cells by index.
	swapped := []Cell{b[1], b[0]}
	if Fingerprint(a) == Fingerprint(swapped) {
		t.Fatal("reordered plan should change the fingerprint")
	}
	changed := []Cell{fpCell("train", "HELCFL", 2), fpCell("train", "FedAvg", 1)}
	if Fingerprint(a) == Fingerprint(changed) {
		t.Fatal("changed seed should change the fingerprint")
	}
	if Fingerprint(a) == Fingerprint(a[:1]) {
		t.Fatal("truncated plan should change the fingerprint")
	}
	if Fingerprint(nil) != Fingerprint([]Cell{}) {
		t.Fatal("empty plans should agree")
	}
}
