package grid

import (
	"testing"

	"helcfl/internal/leaktest"
)

// TestMain gates the whole grid test binary behind the goroutine-leak
// harness: runner worker pools must drain and join before the binary exits.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
