package grid

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"helcfl/internal/obs"
)

// cell builds a simple test cell with a distinct key.
func cell(i int, run func(ctx context.Context, rng *rand.Rand) (any, error)) Cell {
	return Cell{Experiment: "test", Preset: "unit", Variant: fmt.Sprintf("i=%d", i), Seed: 1, Run: run}
}

func TestKeyIncludesEveryField(t *testing.T) {
	base := Cell{Experiment: "train", Preset: "tiny", Setting: "IID", Scheme: "HELCFL", Variant: "eta=0.5", Seed: 3}
	mutations := []func(*Cell){
		func(c *Cell) { c.Experiment = "fig1" },
		func(c *Cell) { c.Preset = "paper" },
		func(c *Cell) { c.Setting = "Non-IID" },
		func(c *Cell) { c.Scheme = "FedCS" },
		func(c *Cell) { c.Variant = "eta=0.9" },
		func(c *Cell) { c.Seed = 4 },
	}
	for i, mutate := range mutations {
		c := base
		mutate(&c)
		if c.Key() == base.Key() {
			t.Errorf("mutation %d did not change the key %q", i, base.Key())
		}
	}
	// Empty fields keep their slot: moving a value between adjacent fields
	// must not produce the same key.
	a := Cell{Experiment: "x", Scheme: "y"}
	b := Cell{Experiment: "x", Variant: "y"}
	if a.Key() == b.Key() {
		t.Fatalf("field shifting collided: %q", a.Key())
	}
}

func TestRNGDerivedOnlyFromKey(t *testing.T) {
	c := Cell{Experiment: "train", Preset: "tiny", Setting: "IID", Scheme: "HELCFL", Seed: 3}
	d := c // identical key
	if c.RNGSeed() != d.RNGSeed() {
		t.Fatalf("equal keys gave different RNG seeds")
	}
	if c.RNG().Int63() != d.RNG().Int63() {
		t.Fatalf("equal keys gave different RNG streams")
	}
	d.Variant = "eta=0.5"
	if c.RNGSeed() == d.RNGSeed() {
		t.Fatalf("different keys gave the same RNG seed")
	}
}

func TestRunnerPassesKeyDerivedRNG(t *testing.T) {
	cells := make([]Cell, 8)
	want := make([]int64, len(cells))
	got := make([]int64, len(cells))
	for i := range cells {
		i := i
		cells[i] = cell(i, func(_ context.Context, rng *rand.Rand) (any, error) {
			got[i] = rng.Int63()
			return nil, nil
		})
		want[i] = cells[i].RNG().Int63()
	}
	if _, err := (&Runner{Parallel: 4}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: runner rng drew %d, key-derived rng draws %d", i, got[i], want[i])
		}
	}
}

func TestResultsPlacedAtFixedIndices(t *testing.T) {
	const n = 32
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = cell(i, func(context.Context, *rand.Rand) (any, error) { return i * 10, nil })
	}
	for _, parallel := range []int{1, 3, 16} {
		res, err := (&Runner{Parallel: parallel}).Run(context.Background(), cells)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range res {
			if v != i*10 {
				t.Fatalf("parallel=%d: results[%d] = %v, want %d", parallel, i, v, i*10)
			}
		}
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	const n, bound = 64, 4
	var inFlight, peak atomic.Int64
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = cell(i, func(context.Context, *rand.Rand) (any, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			// Busy the slot briefly so overlap is observable.
			s := 0
			for j := 0; j < 50_000; j++ {
				s += j
			}
			return s, nil
		})
	}
	if _, err := (&Runner{Parallel: bound}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("observed %d cells in flight, pool bound is %d", p, bound)
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	run := func(context.Context, *rand.Rand) (any, error) { return nil, nil }
	cells := []Cell{cell(0, run), cell(1, run), cell(0, run)}
	_, err := (&Runner{}).Run(context.Background(), cells)
	var dup *DuplicateKeyError
	if !errors.As(err, &dup) {
		t.Fatalf("got %v, want DuplicateKeyError", err)
	}
	if dup.A != 0 || dup.B != 2 {
		t.Fatalf("collision indices = (%d,%d), want (0,2)", dup.A, dup.B)
	}
}

func TestNilRunRejected(t *testing.T) {
	cells := []Cell{cell(0, nil)}
	if _, err := (&Runner{}).Run(context.Background(), cells); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestErrorCollection(t *testing.T) {
	boom := errors.New("boom")
	cells := make([]Cell, 6)
	for i := range cells {
		i := i
		cells[i] = cell(i, func(context.Context, *rand.Rand) (any, error) {
			if i%2 == 1 {
				return nil, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
	}
	res, err := (&Runner{Parallel: 3}).Run(context.Background(), cells)
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("got %T (%v), want Errors", err, err)
	}
	if len(errs) != 3 {
		t.Fatalf("collected %d errors, want 3", len(errs))
	}
	for j, e := range errs {
		if e.Index != 2*j+1 {
			t.Errorf("errs[%d].Index = %d, want %d (index order)", j, e.Index, 2*j+1)
		}
		if !errors.Is(e, boom) {
			t.Errorf("errs[%d] does not unwrap to the cause", j)
		}
	}
	// Successful cells still delivered their results.
	for i := 0; i < len(cells); i += 2 {
		if res[i] != i {
			t.Errorf("results[%d] = %v, want %d despite sibling failures", i, res[i], i)
		}
	}
	if !strings.Contains(err.Error(), "and 2 more cell errors") {
		t.Errorf("aggregate error message = %q", err.Error())
	}
}

func TestFailFastCancelsRemainingCells(t *testing.T) {
	boom := errors.New("boom")
	const n = 40
	cells := make([]Cell, n)
	var ran atomic.Int64
	for i := range cells {
		i := i
		cells[i] = cell(i, func(ctx context.Context, _ *rand.Rand) (any, error) {
			ran.Add(1)
			if i == 0 {
				return nil, boom
			}
			<-ctx.Done() // with FailFast, in-flight cells see cancellation
			return nil, ctx.Err()
		})
	}
	// Serial pool: cell 0 fails first, every later cell must be skipped
	// without running.
	ran.Store(0)
	_, err := (&Runner{Parallel: 1, FailFast: true}).Run(context.Background(), cells)
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("got %v, want Errors", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d cells ran after a fail-fast failure, want 1", got)
	}
	if len(errs) != n {
		t.Fatalf("collected %d errors, want %d (failure + skips)", len(errs), n)
	}
	if !errors.Is(errs[0], boom) {
		t.Errorf("first error is %v, want the root failure", errs[0])
	}
	for _, e := range errs[1:] {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("skipped cell error = %v, want context.Canceled", e)
		}
	}
}

func TestCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 30
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	var ran atomic.Int64
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = cell(i, func(context.Context, *rand.Rand) (any, error) {
			ran.Add(1)
			if i < 2 {
				entered <- struct{}{}
				<-release
			}
			return i, nil
		})
	}
	done := make(chan struct{})
	var res []any
	var err error
	go func() {
		defer close(done)
		res, err = (&Runner{Parallel: 2}).Run(ctx, cells)
	}()
	<-entered // both workers are parked on the first two cells
	<-entered
	cancel()
	close(release) // let the in-flight cells finish
	<-done

	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("got %v, want Errors for the skipped cells", err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d cells ran after cancellation, want only the 2 in flight", got)
	}
	// In-flight cells completed and kept their results.
	for i := 0; i < 2; i++ {
		if res[i] != i {
			t.Errorf("in-flight results[%d] = %v, want %d", i, res[i], i)
		}
	}
	if len(errs) != n-2 {
		t.Fatalf("collected %d errors, want %d skips", len(errs), n-2)
	}
	for _, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("skip error = %v, want context.Canceled", e)
		}
	}
}

func TestEmptyAndNilContextGrid(t *testing.T) {
	res, err := (&Runner{}).Run(nil, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty grid: res=%v err=%v", res, err)
	}
}

func TestWorkersClamping(t *testing.T) {
	r := &Runner{Parallel: 8}
	if got := r.Workers(3); got != 3 {
		t.Errorf("Workers(3) with Parallel=8 = %d, want 3", got)
	}
	r = &Runner{Parallel: -1}
	if got := r.Workers(100); got < 1 {
		t.Errorf("Workers(100) with Parallel=-1 = %d, want >= 1", got)
	}
	r = &Runner{Parallel: 2}
	if got := r.Workers(100); got != 2 {
		t.Errorf("Workers(100) with Parallel=2 = %d, want 2", got)
	}
}

func TestMetricsAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var events []Event
	r := &Runner{Parallel: 2, Metrics: reg, Progress: func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}}
	boom := errors.New("boom")
	cells := make([]Cell, 5)
	for i := range cells {
		i := i
		cells[i] = cell(i, func(context.Context, *rand.Rand) (any, error) {
			if i == 4 {
				return nil, boom
			}
			return i, nil
		})
	}
	if _, err := r.Run(context.Background(), cells); err == nil {
		t.Fatal("expected the cell failure to surface")
	}
	if v := reg.Counter("helcfl_grid_cells_started_total", "").Value(); v != 5 {
		t.Errorf("started counter = %g, want 5", v)
	}
	if v := reg.Counter("helcfl_grid_cells_completed_total", "").Value(); v != 4 {
		t.Errorf("completed counter = %g, want 4", v)
	}
	if v := reg.Counter("helcfl_grid_cells_failed_total", "").Value(); v != 1 {
		t.Errorf("failed counter = %g, want 1", v)
	}
	if v := reg.Gauge("helcfl_grid_cells", "").Value(); v != 5 {
		t.Errorf("cells gauge = %g, want 5", v)
	}
	if v := reg.Gauge("helcfl_grid_workers", "").Value(); v != 2 {
		t.Errorf("workers gauge = %g, want 2", v)
	}
	if n := reg.Histogram("helcfl_grid_cell_seconds", "", obs.DefSecondsBuckets()).Count(); n != 5 {
		t.Errorf("cell histogram observed %d spans, want 5", n)
	}
	if n := reg.Histogram("helcfl_grid_campaign_seconds", "", obs.DefSecondsBuckets()).Count(); n != 1 {
		t.Errorf("campaign histogram observed %d spans, want 1", n)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 10 {
		t.Fatalf("saw %d progress events, want 10 (start+finish per cell)", len(events))
	}
	starts, finishes, failures := 0, 0, 0
	for _, ev := range events {
		if ev.Total != 5 {
			t.Fatalf("event total = %d, want 5", ev.Total)
		}
		if ev.Done {
			finishes++
			if ev.Err != nil {
				failures++
			}
		} else {
			starts++
		}
	}
	if starts != 5 || finishes != 5 || failures != 1 {
		t.Fatalf("starts=%d finishes=%d failures=%d, want 5/5/1", starts, finishes, failures)
	}
	last := events[len(events)-1]
	if last.Started != 5 || last.Completed+last.Failed != 5 {
		t.Fatalf("final counters started=%d completed=%d failed=%d", last.Started, last.Completed, last.Failed)
	}
}

func TestErrorsUnwrapExposesCauses(t *testing.T) {
	sentinel := errors.New("boom")
	es := Errors{
		{Index: 0, Key: "a", Err: context.Canceled},
		{Index: 1, Key: "b", Err: sentinel},
	}
	if !errors.Is(es, context.Canceled) {
		t.Fatal("errors.Is must see context.Canceled through Errors")
	}
	if !errors.Is(es, sentinel) {
		t.Fatal("errors.Is must see the sentinel through Errors")
	}
	var ce *CellError
	if !errors.As(es, &ce) || ce.Index != 0 {
		t.Fatalf("errors.As gave %+v", ce)
	}
}
