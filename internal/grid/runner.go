package grid

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
)

// Event is one progress notification from a Runner. Exactly one of the two
// phases is reported per cell: a start event (Done=false) when a worker
// picks the cell up, and a finish event (Done=true, Err set on failure)
// when its Run returns. Cells skipped because the context was canceled emit
// no events; they surface as CellErrors instead.
type Event struct {
	// Index and Key identify the cell; Total is the grid size.
	Index int
	Key   string
	Total int
	// Done is false for the start notification, true for the finish one.
	Done bool
	// Err is the cell's failure (finish events only).
	Err error
	// Started, Completed, and Failed are the campaign counters after this
	// event.
	Started, Completed, Failed int
}

// Runner executes a campaign grid on a bounded worker pool. The zero value
// runs at full host parallelism with no observability attached.
type Runner struct {
	// Parallel bounds the worker pool; <= 0 means GOMAXPROCS. The pool
	// never exceeds the grid size.
	Parallel int
	// FailFast cancels the remaining grid on the first cell error instead
	// of collecting every failure.
	FailFast bool
	// Metrics, when set, receives the campaign counters
	// (helcfl_grid_cells_{started,completed,failed}_total), grid gauges,
	// and the campaign/cell wall-second histograms.
	Metrics *obs.Registry
	// Progress, when set, receives start/finish events. The Runner
	// serializes calls, so the callback may be stateful.
	Progress func(Event)
}

// Workers returns the effective pool size for an n-cell grid.
func (r *Runner) Workers(n int) int {
	w := r.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// gridMetrics resolves the runner's registry instruments once per Run.
type gridMetrics struct {
	started, completed, failed *obs.Counter
	cells, workers             *obs.Gauge
	campaignSec, cellSec       *obs.Histogram
}

func newGridMetrics(reg *obs.Registry) *gridMetrics {
	if reg == nil {
		return nil
	}
	// Campaigns span sub-second smoke grids to multi-hour paper
	// reproductions: 10 ms .. ~42 min for cells, up to ~5.8 h campaign.
	return &gridMetrics{
		started:     reg.Counter("helcfl_grid_cells_started_total", "Grid cells picked up by a worker."),
		completed:   reg.Counter("helcfl_grid_cells_completed_total", "Grid cells finished successfully."),
		failed:      reg.Counter("helcfl_grid_cells_failed_total", "Grid cells whose Run returned an error."),
		cells:       reg.Gauge("helcfl_grid_cells", "Size of the most recent campaign grid."),
		workers:     reg.Gauge("helcfl_grid_workers", "Worker-pool size of the most recent campaign."),
		campaignSec: reg.Histogram("helcfl_grid_campaign_seconds", "Wall-clock seconds per campaign grid.", obs.ExpBuckets(0.01, 2, 21)),
		cellSec:     reg.Histogram("helcfl_grid_cell_seconds", "Wall-clock seconds per grid cell.", obs.ExpBuckets(0.01, 2, 18)),
	}
}

// Run executes every cell of the grid and returns the results with
// results[i] holding cells[i]'s value — placement is by index, never by
// completion order, so a parallel run is bit-identical to a serial one.
//
// The grid is validated (non-nil Runs, unique keys) before any cell starts.
// Each worker checks ctx before pulling the next cell; once ctx is
// canceled, unstarted cells are marked with a CellError wrapping ctx.Err()
// and in-flight cells run to completion (their Runs see the canceled ctx
// and may return early). With FailFast, the first cell error cancels the
// rest of the grid the same way.
//
// On any failure the returned error is an Errors slice in index order;
// results of successful cells are still populated.
func (r *Runner) Run(ctx context.Context, cells []Cell) ([]any, error) {
	if err := Validate(cells); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(cells)
	results := make([]any, n)
	if n == 0 {
		return results, nil
	}

	workers := r.Workers(n)
	m := newGridMetrics(r.Metrics)
	if m != nil {
		m.cells.Set(float64(n))
		m.workers.Set(float64(workers))
		defer obs.StartSpan(m.campaignSec).End()
	}

	// When the caller's context carries a span recorder, the campaign and
	// every cell record trace spans; cell Runs see a context whose current
	// parent is their own cell span, so engine phases nest under it.
	rec, parent := span.FromContext(ctx)
	campSp := rec.Start(parent, "grid.campaign")
	campSp.SetInt("cells", int64(n))
	campSp.SetInt("workers", int64(workers))
	defer campSp.End()
	campRef := campSp.Ref()

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	cellErrs := make([]*CellError, n)
	var started, completed, failed atomic.Int64
	var progressMu sync.Mutex
	emit := func(ev Event) {
		if r.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		r.Progress(ev)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				key := cells[i].Key()
				if err := cctx.Err(); err != nil {
					cellErrs[i] = &CellError{Index: i, Key: key, Err: err}
					continue
				}
				s := started.Add(1)
				if m != nil {
					m.started.Inc()
				}
				emit(Event{Index: i, Key: key, Total: n,
					Started: int(s), Completed: int(completed.Load()), Failed: int(failed.Load())})

				var timer obs.Span
				if m != nil {
					timer = obs.StartSpan(m.cellSec)
				}
				cellSp := rec.Start(campRef, "grid.cell")
				cellSp.SetStr("key", key)
				cellSp.SetInt("index", int64(i))
				runCtx := cctx
				if rec != nil {
					runCtx = span.WithParent(cctx, rec, cellSp.Ref())
				}
				v, err := cells[i].Run(runCtx, cells[i].RNG())
				cellSp.End()
				timer.End()

				if err != nil {
					cellErrs[i] = &CellError{Index: i, Key: key, Err: err}
					failed.Add(1)
					if m != nil {
						m.failed.Inc()
					}
					if r.FailFast {
						cancel()
					}
				} else {
					results[i] = v
					completed.Add(1)
					if m != nil {
						m.completed.Inc()
					}
				}
				emit(Event{Index: i, Key: key, Total: n, Done: true, Err: err,
					Started: int(started.Load()), Completed: int(completed.Load()), Failed: int(failed.Load())})
			}
		}()
	}
	wg.Wait()

	var errs Errors
	for _, e := range cellErrs {
		if e != nil {
			errs = append(errs, e)
		}
	}
	if len(errs) > 0 {
		return results, errs
	}
	return results, nil
}
