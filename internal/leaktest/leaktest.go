// Package leaktest is the runtime complement to the golife analyzer: a
// goroutine-leak harness for test suites of the concurrent runtime packages
// (fleet, deploy, grid, obs). It snapshots the live goroutines before the
// work under test (runtime.Stack with all=true), diffs by goroutine ID
// afterwards, filters the known-benign residents (the testing harness,
// signal plumbing, idle HTTP keep-alive loops), and retries for a grace
// period so goroutines that are mid-exit when the test finishes do not
// flake the suite. Anything still alive after the grace period is a leak:
// it outlived the campaign that spawned it.
//
// Wire a whole package with
//
//	func TestMain(m *testing.M) { leaktest.Main(m) }
//
// or gate a single test with
//
//	defer leaktest.Check(t)()
package leaktest

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// grace is how long a goroutine gets to finish exiting before it counts as
// leaked. Scheduler handoff after a channel close or a server shutdown is
// microseconds; seconds of margin keep loaded CI machines from flaking.
const grace = 5 * time.Second

// benign are stack substrings that mark a goroutine as an accepted
// resident, not a leak. Deliberately narrow: a filter that matches real
// work would hide real leaks.
var benign = []string{
	// The current goroutine taking the snapshot.
	"helcfl/internal/leaktest.stacks(",
	// The testing harness's own machinery.
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runTests(",
	// Runtime and signal plumbing that starts lazily and lives forever.
	"runtime.ensureSigM",
	"os/signal.signal_recv",
	"os/signal.loop",
	// Idle HTTP keep-alive connections: closed lazily by the transport,
	// not owned by any one test.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
}

// Check snapshots the live goroutines and returns the verification to
// defer: it fails t if goroutines born after the snapshot are still alive
// once the grace period runs out.
//
//	defer leaktest.Check(t)()
func Check(t testing.TB) func() {
	base := ids()
	return func() {
		t.Helper()
		if leaked := settle(base, grace); len(leaked) > 0 {
			t.Errorf("leaktest: %d goroutine(s) leaked:\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
		}
	}
}

// Main wraps testing.M for a package-wide gate: every goroutine spawned
// anywhere in the test binary must be gone by the time the last test
// finishes, or the binary exits 1 with the offending stacks on stderr.
func Main(m *testing.M) {
	base := ids()
	code := m.Run()
	if leaked := settle(base, grace); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "leaktest: %d goroutine(s) leaked past the test binary:\n\n%s\n", len(leaked), strings.Join(leaked, "\n\n"))
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls until no new non-benign goroutines remain or the deadline
// passes, returning the stacks of the survivors. Between polls it nudges
// the default HTTP transport to drop idle connections.
func settle(base map[int64]bool, deadline time.Duration) []string {
	var leaked []string
	for start, wait := time.Now(), time.Millisecond; ; wait *= 2 {
		leaked = leakedSince(base)
		if len(leaked) == 0 || time.Since(start) > deadline {
			return leaked
		}
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

// leakedSince returns the stacks of live goroutines that are neither in
// base nor benign, sorted for stable output.
func leakedSince(base map[int64]bool) []string {
	var leaked []string
	for id, stack := range stacks() {
		if base[id] || isBenign(stack) {
			continue
		}
		leaked = append(leaked, stack)
	}
	sort.Strings(leaked)
	return leaked
}

func isBenign(stack string) bool {
	for _, pat := range benign {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// ids returns the set of currently live goroutine IDs.
func ids() map[int64]bool {
	set := map[int64]bool{}
	for id := range stacks() {
		set[id] = true
	}
	return set
}

// stacks captures every goroutine's stack, keyed by goroutine ID.
func stacks() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := map[int64]string{}
	for _, block := range strings.Split(string(buf), "\n\n") {
		id, ok := goroutineID(block)
		if !ok {
			continue
		}
		out[id] = strings.TrimSpace(block)
	}
	return out
}

// goroutineID parses the "goroutine N [state]:" header of one stack block.
func goroutineID(block string) (int64, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(block), "goroutine ")
	if !ok {
		return 0, false
	}
	end := strings.IndexByte(rest, ' ')
	if end < 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}
