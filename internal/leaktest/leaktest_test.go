package leaktest

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCatchesDeliberateLeak is the harness's own acceptance test: a
// goroutine parked on a channel after the baseline snapshot must be
// reported as leaked, and must stop being reported once released.
func TestCatchesDeliberateLeak(t *testing.T) {
	base := ids()

	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked

	leaked := settle(base, 200*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("settle found %d leaked goroutine(s), want exactly the parked one:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "TestCatchesDeliberateLeak") {
		t.Errorf("leaked stack does not point at the leaking test:\n%s", leaked[0])
	}

	close(release)
	if leaked := settle(base, grace); len(leaked) != 0 {
		t.Errorf("goroutine still reported after release:\n%s", strings.Join(leaked, "\n\n"))
	}
}

// TestCheckPassesOnJoinedWork verifies the deferred Check form stays quiet
// when every spawned goroutine is joined before the test returns.
func TestCheckPassesOnJoinedWork(t *testing.T) {
	defer Check(t)()

	var wg sync.WaitGroup
	results := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- i * i
		}(i)
	}
	wg.Wait()
	close(results)
	sum := 0
	for v := range results {
		sum += v
	}
	if sum != 140 {
		t.Fatalf("sum = %d, want 140", sum)
	}
}

// TestBenignFilters pins the filter list: the snapshot goroutine itself and
// the testing harness never count as leaks against an empty baseline.
func TestBenignFilters(t *testing.T) {
	leaked := leakedSince(map[int64]bool{})
	for _, stack := range leaked {
		if strings.Contains(stack, "helcfl/internal/leaktest.stacks(") {
			t.Errorf("snapshot goroutine reported as a leak:\n%s", stack)
		}
		if strings.Contains(stack, "testing.tRunner(") && strings.Contains(stack, "[running]") {
			t.Errorf("current test goroutine reported as a leak:\n%s", stack)
		}
	}
}

// TestGoroutineID covers the stack-header parser against real and corrupt
// headers.
func TestGoroutineID(t *testing.T) {
	for _, tc := range []struct {
		block string
		id    int64
		ok    bool
	}{
		{"goroutine 1 [running]:\nmain.main()", 1, true},
		{"goroutine 4711 [chan receive]:\nx()", 4711, true},
		{"\ngoroutine 9 [select]:\nx()", 9, true},
		{"not a goroutine header", 0, false},
		{"goroutine N [running]:", 0, false},
		{"goroutine 12", 0, false},
		{"", 0, false},
	} {
		id, ok := goroutineID(tc.block)
		if id != tc.id || ok != tc.ok {
			t.Errorf("goroutineID(%q) = (%d, %v), want (%d, %v)", tc.block, id, ok, tc.id, tc.ok)
		}
	}
}
