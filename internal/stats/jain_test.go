package stats

import (
	"math"
	"testing"
)

func TestJainIndexUniform(t *testing.T) {
	if got := JainIndex([]float64{3, 3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform Jain = %g", got)
	}
}

func TestJainIndexMonopoly(t *testing.T) {
	if got := JainIndex([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("monopoly Jain = %g, want 1/n", got)
	}
}

func TestJainIndexDegenerate(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Fatal("empty allocation must give 0")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("all-zero allocation is trivially fair")
	}
}

func TestJainIndexNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JainIndex([]float64{1, -1})
}

func TestJainIndexScaleInvariant(t *testing.T) {
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Fatal("Jain index must be scale-invariant")
	}
}
