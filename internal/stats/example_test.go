package stats_test

import (
	"fmt"

	"helcfl/internal/stats"
)

func ExampleSummarize() {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("mean %.1f, min %.0f, max %.0f, n %d\n", s.Mean, s.Min, s.Max, s.N)
	// Output:
	// mean 5.0, min 2, max 9, n 8
}

func ExampleWinRate() {
	helcfl := []float64{0.95, 0.93, 0.96}
	classic := []float64{0.94, 0.94, 0.95}
	fmt.Printf("%.0f%%\n", stats.WinRate(helcfl, classic, false)*100)
	// Output:
	// 67%
}
