// Package stats provides the summary statistics and multi-seed aggregation
// used to report experiment robustness: single-seed curves are what the
// paper plots, but claims about orderings deserve mean ± deviation across
// seeds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes a Summary. Std is the sample standard deviation
// (n−1 denominator); it is 0 for fewer than two observations.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String renders "mean ± std [min, max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// Median returns the sample median (mean of middle pair for even sizes).
// It panics on an empty sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty sample")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Percentile returns the p-quantile (p in [0, 1]) with linear
// interpolation. It panics on an empty sample or p outside [0, 1].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %g outside [0,1]", p))
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c) == 1 {
		return c[0]
	}
	pos := p * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) of a
// non-negative allocation: 1 for perfectly uniform, 1/n when one element
// takes everything. Used to quantify how evenly a selection policy spreads
// participation (and therefore energy drain) across the fleet.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			panic(fmt.Sprintf("stats: Jain index of negative allocation %g", x))
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1 // nobody allocated anything: trivially fair
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WinRate returns the fraction of paired observations where a[i] beats
// b[i] according to `lowerWins` (true: smaller value wins, e.g. delay;
// false: larger value wins, e.g. accuracy). Ties count half.
func WinRate(a, b []float64, lowerWins bool) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: win rate over mismatched samples %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	wins := 0.0
	for i := range a {
		switch {
		case a[i] == b[i]: //helcfl:allow(floatcompare) exact ties score half a win by definition
			wins += 0.5
		case (a[i] < b[i]) == lowerWins:
			wins++
		}
	}
	return wins / float64(len(a))
}
