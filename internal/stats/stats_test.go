package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic set is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	out := Summarize([]float64{1, 2, 3}).String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "±") {
		t.Fatalf("String = %q", out)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median wrong")
	}
	// Input must not be mutated.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("median mutated input")
	}
}

func TestMedianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Median(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if Percentile(xs, 0) != 10 || Percentile(xs, 1) != 50 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 0.5) != 30 {
		t.Fatal("median percentile wrong")
	}
	if got := Percentile(xs, 0.25); got != 20 {
		t.Fatalf("q25 = %g", got)
	}
	if got := Percentile(xs, 0.1); math.Abs(got-14) > 1e-12 {
		t.Fatalf("q10 = %g, want 14", got)
	}
}

func TestPercentileBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 1.5)
}

func TestWinRate(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 2}
	if got := WinRate(a, b, true); math.Abs(got-0.5) > 1e-12 { // win, tie, loss
		t.Fatalf("lower-wins rate = %g", got)
	}
	if got := WinRate(a, b, false); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("higher-wins rate = %g", got)
	}
	if WinRate(nil, nil, true) != 0 {
		t.Fatal("empty win rate must be 0")
	}
}

func TestWinRateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WinRate([]float64{1}, []float64{1, 2}, true)
}

// Property: mean lies within [min, max]; std is non-negative; median lies
// within [min, max]; percentile is monotone in p.
func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 || s.Std < 0 {
			return false
		}
		m := Median(xs)
		if m < s.Min-1e-9 || m > s.Max+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			q := Percentile(xs, p)
			if q < prev-1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
