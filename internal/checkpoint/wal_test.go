package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func walRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			Type:    RecordUpload,
			Round:   i / 3,
			User:    i % 3,
			Payload: bytes.Repeat([]byte{byte(i)}, i),
		})
	}
	return recs
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Round != b[i].Round || a[i].User != b[i].User ||
			!bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	w, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(replayed))
	}
	want := walRecords(6)
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !recordsEqual(replayed, want) {
		t.Fatalf("replay mismatch: got %d records", len(replayed))
	}
	// Appending after reopen extends the log.
	extra := Record{Type: RecordRoundStart, Round: 9}
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, replayed, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(replayed, append(append([]Record(nil), want...), extra)) {
		t.Fatal("appended record lost after reopen")
	}
}

func TestWALTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := walRecords(4)
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the final record starts by walking the framing: each record
	// is an 8-byte header plus the body length it declares.
	lastStart := walHdrLen
	for i := 0; i < 3; i++ {
		n := int(uint32(raw[lastStart]) | uint32(raw[lastStart+1])<<8 |
			uint32(raw[lastStart+2])<<16 | uint32(raw[lastStart+3])<<24)
		lastStart += recHdrLen + n
	}
	// Simulate a crash mid-append: cut the final record short at every
	// possible tear point.
	for cut := lastStart; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, replayed, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("torn tail at %d bytes rejected: %v", cut, err)
		}
		if !recordsEqual(replayed, want[:3]) {
			t.Fatalf("torn tail at %d bytes replayed %d records, want 3", cut, len(replayed))
		}
		// The torn bytes were truncated; the log must accept new appends.
		if err := w.Append(want[3]); err != nil {
			t.Fatal(err)
		}
		w.Close()
		_, replayed, err = OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if !recordsEqual(replayed, want) {
			t.Fatalf("append after torn tail at %d lost records", cut)
		}
	}
}

func TestWALRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range walRecords(3) {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xFF
		if _, _, err := ReplayWAL(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad magic: got %v", err)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[4] = 0x7F
		if _, _, err := ReplayWAL(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("wrong version: got %v", err)
		}
	})
	t.Run("flipped-body", func(t *testing.T) {
		// Flip a byte inside the first record's body: CRC must catch it.
		bad := append([]byte(nil), raw...)
		bad[walHdrLen+recHdrLen] ^= 0x01
		if _, _, err := ReplayWAL(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped body: got %v", err)
		}
	})
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range walRecords(5) {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	after := Record{Type: RecordUpload, Round: 7, User: 2, Payload: []byte("x")}
	if err := w.Append(after); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(replayed, []Record{after}) {
		t.Fatalf("reset WAL replayed %d records, want 1", len(replayed))
	}
}
