package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL file layout, little-endian:
//
//	offset  size  field
//	0       4     magic "HELW"
//	4       4     format version
//	8       …     records
//
// Each record:
//
//	0   4   body length n
//	4   4   CRC32 (IEEE) of body
//	8   n   body: type u8 | round u32 | user u32 | payload
//
// An acknowledged Append is fsynced, so it survives a crash. A crash
// mid-append leaves a torn final record; Replay discards it. A CRC or
// framing failure anywhere before the final record is real corruption and
// is returned as ErrCorrupt.
const (
	walMagic   = uint32(0x48454C57) // "HELW"
	walVersion = uint32(1)
	walHdrLen  = 8
	recHdrLen  = 8
)

// RecordType discriminates WAL records.
type RecordType uint8

// WAL record types.
const (
	// RecordRoundStart marks that round Round was planned (its snapshot was
	// written); Payload is empty.
	RecordRoundStart RecordType = 1
	// RecordUpload logs an accepted model upload: Round/User identify it,
	// Payload is the raw wire payload (nn.ParamBytes format).
	RecordUpload RecordType = 2
)

// Record is one durable intra-round event.
type Record struct {
	Type    RecordType
	Round   int
	User    int
	Payload []byte
}

// WAL is an append-only, fsync-per-record intra-round event log.
type WAL struct {
	path string
	f    *os.File
}

// OpenWAL opens (or creates) the WAL at path, replays every intact record
// already on disk, truncates a torn tail, and positions the log for
// appending. The replayed records are returned in append order.
func OpenWAL(path string) (*WAL, []Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("checkpoint: read wal: %w", err)
	}
	var records []Record
	intact := 0 // bytes covered by intact records + header
	if len(raw) > 0 {
		records, intact, err = ReplayWAL(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: open wal: %w", err)
	}
	w := &WAL{path: path, f: f}
	if len(raw) == 0 {
		if err := w.writeHeader(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}
	// Drop a torn tail so the next append starts on a record boundary.
	if err := f.Truncate(int64(intact)); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("checkpoint: truncate torn wal tail: %w", err)
	}
	if _, err := f.Seek(int64(intact), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("checkpoint: seek wal: %w", err)
	}
	return w, records, nil
}

// ReplayWAL decodes a WAL image, returning the intact records and the byte
// offset up to which the image is intact. A torn (incomplete) final record
// is not an error — it is the expected shape of a crash during Append — but
// a CRC mismatch or impossible length is.
func ReplayWAL(raw []byte) ([]Record, int, error) {
	if len(raw) < walHdrLen {
		return nil, 0, fmt.Errorf("%w: wal header truncated (%d bytes)", ErrCorrupt, len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad wal magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != walVersion {
		return nil, 0, fmt.Errorf("%w: wal version %d, want %d", ErrVersion, v, walVersion)
	}
	var records []Record
	off := walHdrLen
	for off < len(raw) {
		if len(raw)-off < recHdrLen {
			break // torn tail: header itself is incomplete
		}
		n := binary.LittleEndian.Uint32(raw[off : off+4])
		if n < 9 || n > maxPayload {
			return nil, 0, fmt.Errorf("%w: wal record at offset %d declares %d bytes", ErrCorrupt, off, n)
		}
		if len(raw)-off-recHdrLen < int(n) {
			break // torn tail: body incomplete
		}
		body := raw[off+recHdrLen : off+recHdrLen+int(n)]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(raw[off+4:off+8]) {
			return nil, 0, fmt.Errorf("%w: wal record at offset %d fails CRC", ErrCorrupt, off)
		}
		records = append(records, Record{
			Type:    RecordType(body[0]),
			Round:   int(binary.LittleEndian.Uint32(body[1:5])),
			User:    int(binary.LittleEndian.Uint32(body[5:9])),
			Payload: append([]byte(nil), body[9:]...),
		})
		off += recHdrLen + int(n)
	}
	return records, off, nil
}

// Append durably logs one record: the framed bytes are written and fsynced
// before Append returns, so an acknowledged record survives a crash.
func (w *WAL) Append(rec Record) error {
	body := make([]byte, 9+len(rec.Payload))
	body[0] = byte(rec.Type)
	binary.LittleEndian.PutUint32(body[1:5], uint32(rec.Round))
	binary.LittleEndian.PutUint32(body[5:9], uint32(rec.User))
	copy(body[9:], rec.Payload)
	frame := make([]byte, recHdrLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[recHdrLen:], body)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync wal: %w", err)
	}
	return nil
}

// Reset discards every record (after a snapshot has made them redundant),
// leaving an empty log ready for the next round's events.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("checkpoint: reset wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: seek wal: %w", err)
	}
	return w.writeHeader()
}

// Close releases the underlying file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

func (w *WAL) writeHeader() error {
	var hdr [walHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write wal header: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync wal header: %w", err)
	}
	return nil
}
