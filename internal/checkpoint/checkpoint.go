// Package checkpoint is the durable-state layer of the FLCC: guarded
// snapshot files for campaign state and a small write-ahead log for
// intra-round events. Both formats are stdlib-only and defensive — every
// payload is covered by a CRC32 so a truncated, bit-flipped, or
// wrong-version file is reported as an error, never silently accepted.
//
// Snapshot files are written atomically (write temp, fsync, rename, fsync
// directory), so a crash during a write leaves the previous snapshot
// intact. The WAL fsyncs per appended record, so an acknowledged record
// survives a crash; a torn final record (crash mid-append) is discarded on
// replay, while corruption anywhere else is an error.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file layout, little-endian:
//
//	offset  size  field
//	0       4     magic "HELK"
//	4       4     format version
//	8       8     payload length
//	16      4     CRC32 (IEEE) of payload
//	20      n     payload
const (
	snapMagic   = uint32(0x48454C4B) // "HELK"
	snapVersion = uint32(1)
	snapHdrLen  = 20
)

// maxPayload bounds declared payload sizes so corrupt headers cannot force
// huge allocations (a full CNN snapshot is a few MB; 1 GiB is far above any
// legitimate state).
const maxPayload = 1 << 30

// ErrCorrupt reports a snapshot or WAL whose bytes fail an integrity check
// (bad magic, impossible length, or CRC mismatch). Match with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt file")

// ErrVersion reports a file written by an incompatible format version.
var ErrVersion = errors.New("checkpoint: unsupported format version")

// EncodeSnapshot frames a payload in the snapshot file format.
func EncodeSnapshot(payload []byte) []byte {
	out := make([]byte, snapHdrLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], snapMagic)
	binary.LittleEndian.PutUint32(out[4:8], snapVersion)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:20], crc32.ChecksumIEEE(payload))
	copy(out[snapHdrLen:], payload)
	return out
}

// DecodeSnapshot validates a framed snapshot and returns its payload.
func DecodeSnapshot(raw []byte) ([]byte, error) {
	if len(raw) < snapHdrLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(raw), snapHdrLen)
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != snapVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrVersion, v, snapVersion)
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	if n > maxPayload || int(n) != len(raw)-snapHdrLen {
		return nil, fmt.Errorf("%w: declared payload %d, have %d bytes", ErrCorrupt, n, len(raw)-snapHdrLen)
	}
	payload := raw[snapHdrLen:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[16:20]) {
		return nil, fmt.Errorf("%w: payload CRC mismatch", ErrCorrupt)
	}
	return payload, nil
}

// WriteFile durably replaces the snapshot at path with the framed payload:
// the bytes go to a temp file in the same directory, are fsynced, renamed
// over path, and the directory entry is fsynced. A crash at any point
// leaves either the old snapshot or the new one, never a mix.
func WriteFile(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = tmp.Close(); _ = os.Remove(tmpName) }
	if _, err := tmp.Write(EncodeSnapshot(payload)); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return syncDir(dir)
}

// ReadFile loads and validates the snapshot at path, returning its payload.
// A missing file surfaces as an os.ErrNotExist-wrapping error.
func ReadFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := DecodeSnapshot(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms refuse to fsync directories; those errors are ignored (the
// rename itself is still atomic).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close() //helcfl:allow(durability) read-only directory handle; closing it cannot lose data
	_ = d.Sync()
	return nil
}
