package checkpoint

import (
	"bytes"
	"os"
	"testing"
)

// FuzzDecodeSnapshot ensures the snapshot decoder never panics and never
// accepts an altered frame: any input that decodes must round-trip to a
// payload whose re-encoding frames it identically.
func FuzzDecodeSnapshot(f *testing.F) {
	valid := EncodeSnapshot([]byte("engine state payload"))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[4] = 0x7F
	f.Add(wrongVersion)
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSnapshot(payload), raw) {
			t.Fatalf("accepted frame does not round-trip (%d bytes)", len(raw))
		}
	})
}

// FuzzReplayWAL ensures the WAL replayer never panics; every accepted
// record set must itself re-encode into a log the replayer accepts again
// with identical contents (decode/encode/decode stability).
func FuzzReplayWAL(f *testing.F) {
	// Seed with a well-formed two-record log and its mutations.
	build := func(recs []Record) []byte {
		w, _, err := OpenWAL(f.TempDir() + "/seed.wal")
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				f.Fatal(err)
			}
		}
		w.Close()
		raw, err := os.ReadFile(w.path)
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	valid := build([]Record{
		{Type: RecordRoundStart, Round: 3},
		{Type: RecordUpload, Round: 3, User: 1, Payload: []byte{9, 9, 9}},
	})
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[4] = 0x7F
	f.Add(wrongVersion)
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, intact, err := ReplayWAL(raw)
		if err != nil {
			return
		}
		if intact > len(raw) {
			t.Fatalf("intact offset %d beyond input of %d bytes", intact, len(raw))
		}
		// Replaying the intact prefix must reproduce the same records.
		again, _, err := ReplayWAL(raw[:intact])
		if err != nil {
			t.Fatalf("intact prefix rejected: %v", err)
		}
		if !recordsEqual(recs, again) {
			t.Fatal("replay of intact prefix diverges")
		}
	})
}
