package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	payload := []byte("campaign state bytes \x00\x01\x02")
	if err := WriteFile(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
}

func TestSnapshotOverwriteKeepsLatest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	for i := 0; i < 3; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 10+i)
		if err := WriteFile(path, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("write %d: payload mismatch", i)
		}
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the snapshot", len(entries))
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	valid := EncodeSnapshot([]byte("payload"))

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut <= len(valid); cut++ {
			if _, err := DecodeSnapshot(valid[:len(valid)-cut]); err == nil {
				t.Fatalf("truncation of %d bytes accepted", cut)
			}
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		for i := range valid {
			raw := append([]byte(nil), valid...)
			raw[i] ^= 0x40
			if _, err := DecodeSnapshot(raw); err == nil {
				t.Fatalf("bit flip at byte %d accepted", i)
			}
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		raw := append([]byte(nil), valid...)
		raw[4] = 0xFE
		_, err := DecodeSnapshot(raw)
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("wrong version: got %v, want ErrVersion", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeSnapshot(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatal("empty input accepted")
		}
	})
}

func TestSnapshotReadMissingFile(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want os.ErrNotExist", err)
	}
}
