package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/core"
	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/obs/span"
	"helcfl/internal/report"
	"helcfl/internal/selection"
)

// The hierarchical edge-aggregation study: HELCFL with the fleet sharded
// across E edge aggregators (selection.HierHELCFL). Each edge runs its own
// Algorithm 2+3 plan against its own parallel TDMA uplink, and the FLCC
// performs a second-level weighted FedAvg over the edge models. E = 1 is
// the flat paper scheme (bit-identical; the selection/fl tests pin it), so
// the sweep isolates what the tier buys: parallel uplinks shrink round
// makespan while the two-level average perturbs accuracy only marginally.

// hierEdgeCounts is the canonical CLI sweep.
var hierEdgeCounts = []int{1, 2, 4, 8}

// hierRun is one cell's result: the edge count plus the usual training run.
type hierRun struct {
	Edges int
	Curve metrics.Curve
	Res   *fl.Result
}

// HierCells returns one hierarchical training cell per edge count.
func HierCells(p Preset, s Setting, seed int64, edgeCounts []int) ([]grid.Cell, error) {
	cells := make([]grid.Cell, 0, len(edgeCounts))
	for _, e := range edgeCounts {
		if e <= 0 {
			return nil, fmt.Errorf("experiments: non-positive edge count %d", e)
		}
		if e > p.Users {
			return nil, fmt.Errorf("experiments: %d edge aggregators for %d users", e, p.Users)
		}
		edges := e
		cells = append(cells, grid.Cell{
			Experiment: "hier",
			Preset:     p.Name,
			Setting:    string(s),
			Scheme:     "HELCFL-hier",
			Variant:    fmt.Sprintf("edges=%d", edges),
			Seed:       seed,
			Run: func(ctx context.Context, _ *rand.Rand) (any, error) {
				_, envSp := span.StartCtx(ctx, "cell.envbuild")
				env, err := CachedEnv(p, s, seed)
				envSp.End()
				if err != nil {
					return nil, err
				}
				runCtx, runSp := span.StartCtx(ctx, "cell.run")
				defer runSp.End()
				planner, err := selection.NewHierHELCFL(env.Devices, edges, env.Channel, env.ModelBits, core.Params{
					Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
				})
				if err != nil {
					return nil, err
				}
				cfg := fl.Config{
					Spec:       env.Spec,
					Devices:    env.Devices,
					Channel:    env.Channel,
					UserData:   env.UserData,
					Test:       env.Synth.Test,
					Planner:    planner,
					LR:         env.Preset.LR,
					LocalSteps: env.Preset.LocalSteps,
					MaxRounds:  env.Preset.MaxRounds,
					EvalEvery:  env.Preset.EvalEvery,
					Seed:       env.Seed + 100, // model init shared with the flat schemes
					Sink:       env.Preset.Sink,
				}
				if rec, parent := span.FromContext(runCtx); rec != nil {
					cfg.Trace = rec
					cfg.TraceParent = parent
				}
				res, err := fl.Run(cfg)
				if err != nil {
					return nil, err
				}
				return hierRun{
					Edges: edges,
					Curve: metrics.CurveFromRecords(planner.Name(), res.Records),
					Res:   res,
				}, nil
			},
		})
	}
	return cells, nil
}

// HierStudy is the assembled edge-count sweep for one data setting.
type HierStudy struct {
	Setting Setting
	Edges   []int
	// BestAcc and FinalAcc fingerprint the accuracy cost of two-level
	// averaging; TotalTime shows the parallel-uplink makespan win.
	BestAcc, FinalAcc []float64
	TotalTime         []float64
	TotalEnergy       []float64
	MeanMakespan      []float64
	MeanSlack         []float64
}

// AssembleHierStudy folds HierCells results into the sweep.
func AssembleHierStudy(s Setting, edgeCounts []int, res []any) (*HierStudy, error) {
	if len(res) != len(edgeCounts) {
		return nil, fmt.Errorf("experiments: hier sweep got %d results, want %d", len(res), len(edgeCounts))
	}
	out := &HierStudy{Setting: s}
	for i, e := range edgeCounts {
		r, err := cellResult[hierRun](res, i)
		if err != nil {
			return nil, err
		}
		if r.Edges != e {
			return nil, fmt.Errorf("experiments: hier result %d has %d edges, want %d", i, r.Edges, e)
		}
		rounds := float64(len(r.Res.Records))
		slack := 0.0
		for _, rec := range r.Res.Records {
			slack += rec.Slack
		}
		out.Edges = append(out.Edges, e)
		out.BestAcc = append(out.BestAcc, r.Res.BestAccuracy)
		out.FinalAcc = append(out.FinalAcc, r.Res.FinalAccuracy)
		out.TotalTime = append(out.TotalTime, r.Res.TotalTime)
		out.TotalEnergy = append(out.TotalEnergy, r.Res.TotalEnergy)
		out.MeanMakespan = append(out.MeanMakespan, r.Res.TotalTime/rounds)
		out.MeanSlack = append(out.MeanSlack, slack/rounds)
	}
	return out, nil
}

// RunHierStudyGrid runs the sweep through a grid runner.
func RunHierStudyGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, edgeCounts []int) (*HierStudy, error) {
	cells, err := HierCells(p, s, seed, edgeCounts)
	if err != nil {
		return nil, err
	}
	res, err := runCells(ctx, r, cells)
	if err != nil {
		return nil, err
	}
	return AssembleHierStudy(s, edgeCounts, res)
}

// RunHierStudy runs the edge-count sweep serially-equivalent on the default
// runner.
func RunHierStudy(p Preset, s Setting, seed int64, edgeCounts []int) (*HierStudy, error) {
	return RunHierStudyGrid(context.Background(), nil, p, s, seed, edgeCounts)
}

// Render produces the edge-count table.
func (h *HierStudy) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Hierarchical edge aggregation (%s): E parallel uplinks + two-level FedAvg", h.Setting),
		"edges", "best acc", "final acc", "total time (s)", "total energy (J)", "mean round (s)", "mean slack (s)")
	for i, e := range h.Edges {
		tb.AddRow(
			fmt.Sprintf("%d", e),
			fmt.Sprintf("%.4f", h.BestAcc[i]),
			fmt.Sprintf("%.4f", h.FinalAcc[i]),
			fmt.Sprintf("%.1f", h.TotalTime[i]),
			fmt.Sprintf("%.1f", h.TotalEnergy[i]),
			fmt.Sprintf("%.2f", h.MeanMakespan[i]),
			fmt.Sprintf("%.2f", h.MeanSlack[i]),
		)
	}
	return tb
}

// hierPlan is the "hier" experiment: the edge-count sweep in both data
// settings.
func hierPlan(p Preset, seed int64) (*Plan, error) {
	counts := make([]int, 0, len(hierEdgeCounts))
	for _, e := range hierEdgeCounts {
		if e <= p.Users {
			counts = append(counts, e)
		}
	}
	subs := make([]*Plan, 0, len(settingsBoth))
	for _, st := range settingsBoth {
		s := st
		cells, err := HierCells(p, s, seed, counts)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sectionPlan("", cells,
			func(res []any) (fmt.Stringer, error) {
				hs, err := AssembleHierStudy(s, counts, res)
				if err != nil {
					return nil, err
				}
				return hs.Render(), nil
			}))
	}
	return composePlans(subs...), nil
}
