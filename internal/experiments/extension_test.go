package experiments

import (
	"strings"
	"testing"
)

func TestLossAwareExtension(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 30
	ext, err := RunLossAwareExtension(p, NonIID, 1, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Lambdas) != 2 || ext.Lambdas[0] != 0 {
		t.Fatalf("λ=0 baseline missing: %v", ext.Lambdas)
	}
	for i := range ext.Lambdas {
		if ext.Best[i] < 0.3 {
			t.Fatalf("λ=%g: training collapsed to %g", ext.Lambdas[i], ext.Best[i])
		}
	}
	out := ext.Render().String()
	if !strings.Contains(out, "λ") || !strings.Contains(out, "0.0") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestLossAwareLambdaZeroMatchesBaseScheduler(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 15
	env, err := BuildEnv(p, IID, 4)
	if err != nil {
		t.Fatal(err)
	}
	baseCurve, _, err := RunScheme(env, "HELCFL")
	if err != nil {
		t.Fatal(err)
	}
	ext, err := RunLossAwareExtension(p, IID, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// λ=0 uses identical selection, so the accuracy trajectory matches the
	// paper's scheduler exactly.
	if ext.Best[0] != baseCurve.Best() {
		t.Fatalf("λ=0 best %g differs from base HELCFL %g", ext.Best[0], baseCurve.Best())
	}
}
