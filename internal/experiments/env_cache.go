package experiments

import (
	"fmt"
	"sync"
)

// Environment cache.
//
// A campaign grid runs many cells that share the same (preset, setting,
// seed) — every scheme of a Fig. 2 comparison, every variant of an
// ablation. BuildEnv is deterministic in that key, so those cells used to
// rebuild byte-identical environments over and over; for large presets the
// synthetic dataset generation and partitioning dominates the cell setup
// cost. CachedEnv memoizes the build.
//
// Sharing is sound because a built Env is read-only during runs: the fl
// engines only ever write Device.NumSamples, and they skip the write when
// the value already matches (BuildEnv sets it), so concurrent cells never
// race on the shared fleet — the -race cache tests pin this. The one
// sanctioned mutation pattern is copying the Env struct first, as the
// compression cells do for their ModelBits override.

// envCacheEntry builds its environment exactly once, even under concurrent
// first lookups of the same key.
type envCacheEntry struct {
	once sync.Once
	env  *Env
	err  error
}

var envCache sync.Map // envKey string -> *envCacheEntry

// envCacheKey fingerprints everything BuildEnv's output depends on. The
// Sink is excluded: it does not shape the environment, and presets differing
// only in observability must share cache entries.
func envCacheKey(p Preset, s Setting, seed int64) string {
	p.Sink = nil
	return fmt.Sprintf("%s|%d|%+v", s, seed, p)
}

// CachedEnv returns the (deterministic) environment for the key, building
// it at most once per process. The returned Env is shared: callers must
// treat it as read-only, copying the struct before overriding any field.
func CachedEnv(p Preset, s Setting, seed int64) (*Env, error) {
	v, _ := envCache.LoadOrStore(envCacheKey(p, s, seed), &envCacheEntry{})
	e := v.(*envCacheEntry)
	e.once.Do(func() { e.env, e.err = BuildEnv(p, s, seed) })
	return e.env, e.err
}

// ResetEnvCache drops every cached environment (tests that need fresh
// fleets, long-lived processes bounding memory).
func ResetEnvCache() {
	envCache.Range(func(k, _ any) bool {
		envCache.Delete(k)
		return true
	})
}
