package experiments

import (
	"math"
	"reflect"
	"testing"

	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/sim"
	"helcfl/internal/stats"
)

// sampleResult exercises every field an Assemble fold can read, with
// bit-pattern-sensitive values (negative zero, tiny subnormal-ish floats)
// so the round trip proves gob keeps float64 payloads exact.
func sampleResult() *fl.Result {
	return &fl.Result{
		Scheme: "HELCFL",
		Records: []fl.RoundRecord{
			{
				Round: 0, Selected: []int{3, 1, 4}, Freqs: []float64{1e9, 2e9, math.Copysign(0, -1)},
				Delay: 1.25, Energy: 3.75, ComputeEnergy: 2.5, UploadEnergy: 1.25,
				Slack: 0, CumTime: 1.25, CumEnergy: 3.75,
				TrainLoss: 0.6931471805599453, Failed: 1, AliveDevices: 16,
				Evaluated: true, TestLoss: 2.302585092994046, TestAccuracy: 0.1015625,
			},
			{Round: 1, Delay: 0x1p-40, CumTime: 1.25 + 0x1p-40, AliveDevices: 15},
		},
		ModelBits:         217120,
		FinalAccuracy:     0.421875,
		BestAccuracy:      0.4375,
		TotalTime:         12.625,
		TotalEnergy:       41.0,
		ReachedTarget:     true,
		HaltedByDeadFleet: true,
	}
}

func TestEncodeCellResultRoundTripsEveryRegisteredType(t *testing.T) {
	run := schemeRun{
		Curve: metrics.Curve{Scheme: "HELCFL", Points: []metrics.Point{
			{Round: 0, Time: 1.25, Energy: 3.75, Accuracy: 0.1015625},
			{Round: 2, Time: 4.5, Energy: 9.25, Accuracy: 0.25},
		}},
		Res: sampleResult(),
	}
	rr := sim.RoundResult{
		Users:    []sim.UserRound{{User: 2, Freq: 1.5e9, ComputeDelay: 0.75, UploadDelay: 0.25}},
		Makespan: 1.0625, Eq10Delay: 1.0, TotalEnergy: 5.5, TotalSlack: 0.125,
	}
	cases := []any{
		run,
		modelRun{Params: 10250, Bits: 328000, Run: run},
		batteryRun{CapacityJ: 120.5, Fleet: 16, Run: run},
		compressRun{Name: "topk10", Ratio: 0.1, Run: run},
		partitionRun{MeanLabels: 3.5, Run: run},
		fairnessRun{Jain: 0.875, Coverage: 0.9375},
		&ClampAblation{Rounds: 60, Violations: 2, WorstBelowPct: 1.5, WorstAbovePct: 0.25},
		&RBAblation{Rounds: 60, Ks: []int{1, 2, 4}, Makespan: []stats.Summary{
			{N: 60, Mean: 1.5, Std: 0.25, Min: 1.0, Max: 2.0},
		}},
		&Fig1Demo{MaxFreq: rr, WithDVFS: rr},
		&Fig3Result{Setting: IID, Targets: []float64{0.6, 0.7}, WithDVFS: []float64{10, 20},
			WithoutDVFS: []float64{15, 30}, Reached: []bool{true, false}, ReductionPct: []float64{33.3, 0}},
	}
	for _, v := range cases {
		data, err := EncodeCellResult(v)
		if err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
		got, err := DecodeCellResult(data)
		if err != nil {
			t.Fatalf("decode %T: %v", v, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(v) {
			t.Fatalf("round trip changed type: %T -> %T", v, got)
		}
		want := v
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%T round trip mismatch:\n got %+v\nwant %+v", v, got, want)
		}
	}
}

func TestEncodeCellResultStripsModelKeepsRecordsBitExact(t *testing.T) {
	in := schemeRun{Res: sampleResult()}
	// A live training result carries the final model; the wire form must
	// drop it without touching anything an assembler reads.
	in.Res.Model = nil // sampleResult has none; this documents the contract
	data, err := EncodeCellResult(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeCellResult(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := out.(schemeRun)
	if got.Res.Model != nil {
		t.Fatal("decoded result should have nil Model")
	}
	// Bit-exactness: compare float bit patterns, not just values, so a
	// codec that normalized slice elements or rounded through text would
	// fail here. Negative zero in a []float64 element must survive.
	if !math.Signbit(got.Res.Records[0].Freqs[2]) {
		t.Error("negative zero slice element lost its sign bit")
	}
	if got.Res.Records[1].Delay != 0x1p-40 {
		t.Errorf("tiny delay changed: %x", got.Res.Records[1].Delay)
	}
	if !reflect.DeepEqual(got.Res, in.Res) {
		t.Errorf("records mismatch:\n got %+v\nwant %+v", got.Res, in.Res)
	}
}

// TestGobNormalizesNegativeZeroStructFields pins the one lossy corner of
// the wire codec (see the EncodeCellResult doc comment): gob omits struct
// fields equal to zero, and -0.0 == 0, so a negative-zero struct field
// decodes as +0. If a future gob or codec change alters this, the doc
// contract must be revisited.
func TestGobNormalizesNegativeZeroStructFields(t *testing.T) {
	in := schemeRun{Res: &fl.Result{Records: []fl.RoundRecord{{Slack: math.Copysign(0, -1)}}}}
	data, err := EncodeCellResult(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeCellResult(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if math.Signbit(out.(schemeRun).Res.Records[0].Slack) {
		t.Fatal("gob now preserves -0 struct fields; update the codec contract docs")
	}
}

func TestLookupPreset(t *testing.T) {
	for _, name := range []string{"paper", "fast", "tiny"} {
		p, err := LookupPreset(name)
		if err != nil {
			t.Fatalf("LookupPreset(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("LookupPreset(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := LookupPreset("nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
}
