package experiments

import (
	"fmt"

	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// TableIResult is the reproduction of Table I: training delay to reach each
// desired accuracy, per scheme, per setting.
type TableIResult struct {
	// Settings holds one block per data setting (IID, Non-IID).
	Settings []TableIBlock
}

// TableIBlock is one setting's sub-table.
type TableIBlock struct {
	Setting Setting
	// Targets are the desired accuracies.
	Targets []float64
	// DelaySec[scheme][i] is the delay to reach Targets[i]; Reached tells
	// whether it was reached (false ⇒ the paper's ✗).
	DelaySec map[string][]float64
	Reached  map[string][]bool
}

// BuildTableI derives Table I from already-computed Fig. 2 runs (the paper
// does the same: both artifacts come from one training campaign).
func BuildTableI(p Preset, figs map[Setting]*Fig2Result) *TableIResult {
	out := &TableIResult{}
	for _, s := range []Setting{IID, NonIID} {
		fig, ok := figs[s]
		if !ok {
			continue
		}
		blk := TableIBlock{
			Setting:  s,
			Targets:  p.Targets(s),
			DelaySec: map[string][]float64{},
			Reached:  map[string][]bool{},
		}
		for _, scheme := range SchemeOrder {
			curve := fig.Curve(scheme)
			ds := make([]float64, len(blk.Targets))
			rs := make([]bool, len(blk.Targets))
			for i, target := range blk.Targets {
				ds[i], rs[i] = curve.TimeToAccuracy(target)
			}
			blk.DelaySec[scheme] = ds
			blk.Reached[scheme] = rs
		}
		out.Settings = append(out.Settings, blk)
	}
	return out
}

// Render produces the Table I text table for one block.
func (b TableIBlock) Render() *report.Table {
	headers := []string{fmt.Sprintf("%s scheme", b.Setting)}
	for _, t := range b.Targets {
		headers = append(headers, metrics.FormatPercent(t))
	}
	tb := report.NewTable(fmt.Sprintf("Table I (%s): training delay to desired accuracy", b.Setting), headers...)
	for _, scheme := range SchemeOrder {
		row := []string{scheme}
		for i := range b.Targets {
			row = append(row, metrics.FormatDelay(b.DelaySec[scheme][i], b.Reached[scheme][i]))
		}
		tb.AddRow(row...)
	}
	return tb
}

// Speedups returns HELCFL's speedup percentages over every other scheme for
// one target accuracy (only schemes that reach the target are included).
func (b TableIBlock) Speedups(targetIdx int) map[string]float64 {
	out := map[string]float64{}
	h := b.DelaySec["HELCFL"][targetIdx]
	if !b.Reached["HELCFL"][targetIdx] {
		return out
	}
	for _, scheme := range SchemeOrder {
		if scheme == "HELCFL" || !b.Reached[scheme][targetIdx] {
			continue
		}
		out[scheme] = (b.DelaySec[scheme][targetIdx]/h - 1) * 100
	}
	return out
}
