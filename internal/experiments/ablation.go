package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
	"helcfl/internal/selection"
	"helcfl/internal/sim"
)

// EtaAblation sweeps HELCFL's decay coefficient η and reports best accuracy
// and total training delay per value — the design-choice study for Eq. (20).
type EtaAblation struct {
	Setting Setting
	Etas    []float64
	Best    []float64
	TimeSec []float64
}

// EtaCells returns one HELCFL training cell per η value. The variant names
// the preset mutation so the keys stay distinct from unmutated runs.
func EtaCells(p Preset, s Setting, seed int64, etas []float64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(etas))
	for _, eta := range etas {
		pp := p
		pp.Eta = eta
		cells = append(cells, trainCell(pp, s, seed, "HELCFL", fmt.Sprintf("eta=%g", eta), nil))
	}
	return cells
}

// AssembleEtaAblation folds EtaCells results into the sweep.
func AssembleEtaAblation(s Setting, etas []float64, res []any) (*EtaAblation, error) {
	if len(res) != len(etas) {
		return nil, fmt.Errorf("experiments: eta sweep got %d results, want %d", len(res), len(etas))
	}
	out := &EtaAblation{Setting: s, Etas: etas}
	for i := range etas {
		r, err := cellResult[schemeRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Best = append(out.Best, r.Curve.Best())
		out.TimeSec = append(out.TimeSec, r.Res.TotalTime)
	}
	return out, nil
}

// RunEtaAblationGrid runs the η sweep through a grid runner.
func RunEtaAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, etas []float64) (*EtaAblation, error) {
	res, err := runCells(ctx, r, EtaCells(p, s, seed, etas))
	if err != nil {
		return nil, err
	}
	return AssembleEtaAblation(s, etas, res)
}

// RunEtaAblation trains HELCFL once per η.
func RunEtaAblation(p Preset, s Setting, seed int64, etas []float64) (*EtaAblation, error) {
	return RunEtaAblationGrid(context.Background(), nil, p, s, seed, etas)
}

// Render produces the η-sweep table.
func (a *EtaAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Ablation (%s): decay coefficient η", a.Setting),
		"η", "best accuracy", "total delay")
	for i, eta := range a.Etas {
		tb.AddRow(fmt.Sprintf("%.2f", eta),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true))
	}
	return tb
}

// FractionAblation sweeps the selection fraction C.
type FractionAblation struct {
	Setting   Setting
	Fractions []float64
	Best      []float64
	TimeSec   []float64
	EnergyJ   []float64
}

// FractionCells returns one HELCFL training cell per selection fraction.
func FractionCells(p Preset, s Setting, seed int64, fractions []float64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(fractions))
	for _, c := range fractions {
		pp := p
		pp.Fraction = c
		cells = append(cells, trainCell(pp, s, seed, "HELCFL", fmt.Sprintf("C=%g", c), nil))
	}
	return cells
}

// AssembleFractionAblation folds FractionCells results into the sweep.
func AssembleFractionAblation(s Setting, fractions []float64, res []any) (*FractionAblation, error) {
	if len(res) != len(fractions) {
		return nil, fmt.Errorf("experiments: fraction sweep got %d results, want %d", len(res), len(fractions))
	}
	out := &FractionAblation{Setting: s, Fractions: fractions}
	for i := range fractions {
		r, err := cellResult[schemeRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Best = append(out.Best, r.Curve.Best())
		out.TimeSec = append(out.TimeSec, r.Res.TotalTime)
		out.EnergyJ = append(out.EnergyJ, r.Res.TotalEnergy)
	}
	return out, nil
}

// RunFractionAblationGrid runs the C sweep through a grid runner.
func RunFractionAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, fractions []float64) (*FractionAblation, error) {
	res, err := runCells(ctx, r, FractionCells(p, s, seed, fractions))
	if err != nil {
		return nil, err
	}
	return AssembleFractionAblation(s, fractions, res)
}

// RunFractionAblation trains HELCFL once per fraction.
func RunFractionAblation(p Preset, s Setting, seed int64, fractions []float64) (*FractionAblation, error) {
	return RunFractionAblationGrid(context.Background(), nil, p, s, seed, fractions)
}

// Render produces the C-sweep table.
func (a *FractionAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Ablation (%s): selection fraction C", a.Setting),
		"C", "best accuracy", "total delay", "total energy (J)")
	for i, c := range a.Fractions {
		tb.AddRow(fmt.Sprintf("%.2f", c),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true),
			fmt.Sprintf("%.1f", a.EnergyJ[i]))
	}
	return tb
}

// ClampAblation contrasts Algorithm 3 with constraint-(15) clamping against
// the literal pseudocode, measuring how often and how far the literal
// frequencies leave the device range.
type ClampAblation struct {
	Rounds        int
	Violations    int
	WorstBelowPct float64 // worst relative undershoot below f_min
	WorstAbovePct float64 // worst relative overshoot above f_max
}

// ClampCells wraps the clamping study as a single cell: the replay is one
// indivisible computation, not a sweep.
func ClampCells(p Preset, s Setting, seed int64, rounds int) []grid.Cell {
	return []grid.Cell{{
		Experiment: "clamp",
		Preset:     p.Name,
		Setting:    string(s),
		Scheme:     "HELCFL",
		Variant:    fmt.Sprintf("rounds=%d", rounds),
		Seed:       seed,
		Run: func(context.Context, *rand.Rand) (any, error) {
			return clampStudy(p, s, seed, rounds)
		},
	}}
}

// AssembleClampAblation extracts the single clamp-study result.
func AssembleClampAblation(res []any) (*ClampAblation, error) {
	if len(res) != 1 {
		return nil, fmt.Errorf("experiments: clamp study got %d results, want 1", len(res))
	}
	return cellResult[*ClampAblation](res, 0)
}

// RunClampAblationGrid runs the clamping study through a grid runner.
func RunClampAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, rounds int) (*ClampAblation, error) {
	res, err := runCells(ctx, r, ClampCells(p, s, seed, rounds))
	if err != nil {
		return nil, err
	}
	return AssembleClampAblation(res)
}

// RunClampAblation replays HELCFL's selection for `rounds` rounds and
// evaluates the literal Algorithm 3 output on each selected cohort.
func RunClampAblation(p Preset, s Setting, seed int64, rounds int) (*ClampAblation, error) {
	return RunClampAblationGrid(context.Background(), nil, p, s, seed, rounds)
}

// clampStudy is the serial body of the clamping study.
func clampStudy(p Preset, s Setting, seed int64, rounds int) (*ClampAblation, error) {
	env, err := CachedEnv(p, s, seed)
	if err != nil {
		return nil, err
	}
	h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
		Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
	})
	if err != nil {
		return nil, err
	}
	out := &ClampAblation{Rounds: rounds}
	for j := 0; j < rounds; j++ {
		sel, _ := h.PlanRound(j)
		devs := make([]*device.Device, len(sel))
		for i, q := range sel {
			devs[i] = env.Devices[q]
		}
		raw := core.FrequencyPlan(devs, env.Channel, env.ModelBits, p.LocalSteps, false)
		for i, f := range raw {
			d := devs[i]
			if f < d.FMin {
				out.Violations++
				if u := (d.FMin - f) / d.FMin * 100; u > out.WorstBelowPct {
					out.WorstBelowPct = u
				}
			} else if f > d.FMax {
				out.Violations++
				if o := (f - d.FMax) / d.FMax * 100; o > out.WorstAbovePct {
					out.WorstAbovePct = o
				}
			}
		}
	}
	return out, nil
}

// Render produces the clamping-study table.
func (a *ClampAblation) Render() *report.Table {
	tb := report.NewTable("Ablation: literal Algorithm 3 vs constraint (15)",
		"rounds", "range violations", "worst below f_min", "worst above f_max")
	tb.AddRow(fmt.Sprintf("%d", a.Rounds),
		fmt.Sprintf("%d", a.Violations),
		fmt.Sprintf("%.1f%%", a.WorstBelowPct),
		fmt.Sprintf("%.1f%%", a.WorstAbovePct))
	return tb
}

// Fig1Demo reproduces the paper's Fig. 1 illustration: it runs one HELCFL
// selection, simulates the cohort at maximum frequency, and returns the
// timeline (with its stop-and-wait slack) next to the Algorithm 3 timeline
// that reclaims it.
type Fig1Demo struct {
	MaxFreq  sim.RoundResult
	WithDVFS sim.RoundResult
}

// Fig1Cells wraps the Fig. 1 demonstration as a single cell.
func Fig1Cells(p Preset, seed int64) []grid.Cell {
	return []grid.Cell{{
		Experiment: "fig1",
		Preset:     p.Name,
		Setting:    string(IID),
		Scheme:     "HELCFL",
		Seed:       seed,
		Run: func(context.Context, *rand.Rand) (any, error) {
			return fig1Demo(p, seed)
		},
	}}
}

// AssembleFig1Demo extracts the single Fig. 1 result.
func AssembleFig1Demo(res []any) (*Fig1Demo, error) {
	if len(res) != 1 {
		return nil, fmt.Errorf("experiments: fig1 demo got %d results, want 1", len(res))
	}
	return cellResult[*Fig1Demo](res, 0)
}

// RunFig1DemoGrid runs the demonstration through a grid runner.
func RunFig1DemoGrid(ctx context.Context, r *grid.Runner, p Preset, seed int64) (*Fig1Demo, error) {
	res, err := runCells(ctx, r, Fig1Cells(p, seed))
	if err != nil {
		return nil, err
	}
	return AssembleFig1Demo(res)
}

// RunFig1Demo builds the demonstration on a fresh environment.
func RunFig1Demo(p Preset, seed int64) (*Fig1Demo, error) {
	return RunFig1DemoGrid(context.Background(), nil, p, seed)
}

// fig1Demo is the serial body of the demonstration.
func fig1Demo(p Preset, seed int64) (*Fig1Demo, error) {
	env, err := CachedEnv(p, IID, seed)
	if err != nil {
		return nil, err
	}
	h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
		Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
	})
	if err != nil {
		return nil, err
	}
	sel, freqs := h.PlanRound(0)
	devs := make([]*device.Device, len(sel))
	for i, q := range sel {
		devs[i] = env.Devices[q]
	}
	return &Fig1Demo{
		MaxFreq:  sim.SimulateRound(devs, sim.MaxFrequencies(devs), env.Channel, env.ModelBits, p.LocalSteps),
		WithDVFS: sim.SimulateRound(devs, freqs, env.Channel, env.ModelBits, p.LocalSteps),
	}, nil
}

// Render draws both timelines as tables of per-user intervals.
func (f *Fig1Demo) Render() (*report.Table, *report.Table) {
	mk := func(title string, r sim.RoundResult) *report.Table {
		tb := report.NewTable(title, "user", "freq (GHz)", "compute ends", "upload", "wait (slack)")
		for _, u := range r.Users {
			tb.AddRow(
				fmt.Sprintf("v%d", u.User),
				fmt.Sprintf("%.2f", u.Freq/1e9),
				fmt.Sprintf("%.2fs", u.ComputeDelay),
				fmt.Sprintf("[%.2fs, %.2fs]", u.UploadStart, u.UploadEnd),
				fmt.Sprintf("%.2fs", u.Wait),
			)
		}
		tb.AddRow("—", "—", "—", fmt.Sprintf("makespan %.2fs", r.Makespan),
			fmt.Sprintf("total %.2fs", r.TotalSlack))
		return tb
	}
	return mk("Fig. 1 reproduction: traditional TDMA FL (max frequency)", f.MaxFreq),
		mk("Fig. 1 reproduction: HELCFL DVFS (Algorithm 3)", f.WithDVFS)
}

// RenderGantt draws both round timelines as Gantt charts — the visual
// reproduction of the paper's Fig. 1.
func (f *Fig1Demo) RenderGantt() (*report.Gantt, *report.Gantt) {
	mk := func(title string, r sim.RoundResult) *report.Gantt {
		g := report.NewGantt(title)
		for _, u := range r.Users {
			g.Add(report.GanttBar{
				Label:       fmt.Sprintf("v%d", u.User),
				ComputeEnd:  u.ComputeDelay,
				UploadStart: u.UploadStart,
				UploadEnd:   u.UploadEnd,
			})
		}
		return g
	}
	return mk("Fig. 1: traditional TDMA FL (max frequency)", f.MaxFreq),
		mk("Fig. 1: HELCFL DVFS (Algorithm 3)", f.WithDVFS)
}

// slackCheck is referenced by tests to assert the demo's invariant.
func (f *Fig1Demo) slackCheck() (float64, float64, error) {
	if f.WithDVFS.Makespan > f.MaxFreq.Makespan+1e-9 {
		return 0, 0, fmt.Errorf("DVFS lengthened the round: %g > %g", f.WithDVFS.Makespan, f.MaxFreq.Makespan)
	}
	return f.MaxFreq.TotalSlack, f.WithDVFS.TotalSlack, nil
}
