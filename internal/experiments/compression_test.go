package experiments

import (
	"strings"
	"testing"

	"helcfl/internal/compress"
)

func TestCompressionAblation(t *testing.T) {
	p := Tiny()
	ab, err := RunCompressionAblation(p, IID, 1, DefaultCompressors())
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Names) != 3 {
		t.Fatalf("variants = %d", len(ab.Names))
	}
	baseIdx, topkIdx := -1, -1
	for i, n := range ab.Names {
		switch {
		case n == "none":
			baseIdx = i
		case strings.HasPrefix(n, "topk"):
			topkIdx = i
		}
	}
	if baseIdx < 0 || topkIdx < 0 {
		t.Fatalf("missing variants in %v", ab.Names)
	}
	// Compression shrinks uploads (ratio > 1) and therefore total delay.
	if ab.Ratios[topkIdx] <= 2 {
		t.Fatalf("top-k ratio %g too small", ab.Ratios[topkIdx])
	}
	if ab.TimeSec[topkIdx] >= ab.TimeSec[baseIdx] {
		t.Fatalf("top-k total delay %g not below fp32 %g", ab.TimeSec[topkIdx], ab.TimeSec[baseIdx])
	}
	// The paper's claim: compression sacrifices accuracy relative to the
	// lossless uploads HELCFL schedules.
	if ab.Best[topkIdx] >= ab.Best[baseIdx] {
		t.Fatalf("top-k best %g not below fp32 %g", ab.Best[topkIdx], ab.Best[baseIdx])
	}
	// All variants still train to useful accuracy.
	for i := range ab.Names {
		if ab.Best[i] < 0.5 {
			t.Fatalf("%s: accuracy %g collapsed", ab.Names[i], ab.Best[i])
		}
	}
	out := ab.Render().String()
	if !strings.Contains(out, "topk") || !strings.Contains(out, "x") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestCompressionChangesCostModel(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 6
	ab, err := RunCompressionAblation(p, IID, 2, []compress.Compressor{
		compress.None{},
		compress.NewTopK(0.05),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A 20x smaller upload must shorten the (upload-containing) rounds.
	if ab.TimeSec[1] >= ab.TimeSec[0] {
		t.Fatalf("compressed run not faster: %g vs %g", ab.TimeSec[1], ab.TimeSec[0])
	}
}
