package experiments

import (
	"fmt"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
	"helcfl/internal/selection"
	"helcfl/internal/sim"
)

// BatteryCampaign compares the schemes when devices carry finite energy
// budgets — the paper's Section I motivation. Two effects emerge: DVFS
// (Algorithm 3) stretches device lifetime, and selection policy decides
// *which* devices die — FedCS burns out its fixed fast cohort and halts.
type BatteryCampaign struct {
	Setting Setting
	// CapacityJ is the per-device battery budget.
	CapacityJ float64
	// Per-scheme outcomes.
	Best       map[string]float64
	FinalAlive map[string]int
	RoundsDone map[string]int
	Halted     map[string]bool
	Fleet      int
}

// batterySchemes are compared in the campaign; HELCFL-noDVFS isolates
// Algorithm 3's lifetime contribution.
var batterySchemes = []string{"HELCFL", "HELCFL-noDVFS", "ClassicFL", "FedCS", "FEDL"}

// EstimateSelectedUserRoundEnergy simulates one max-frequency HELCFL round
// on the environment and returns the mean per-selected-user energy — the
// natural unit for battery budgets.
func EstimateSelectedUserRoundEnergy(env *Env) (float64, error) {
	h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
		Eta: env.Preset.Eta, Fraction: env.Preset.Fraction, StepsPerRound: env.Preset.LocalSteps, Clamp: true,
	})
	if err != nil {
		return 0, err
	}
	sel, _ := h.PlanRound(0)
	devs := make([]*device.Device, len(sel))
	for i, q := range sel {
		devs[i] = env.Devices[q]
	}
	round := sim.SimulateRound(devs, sim.MaxFrequencies(devs), env.Channel, env.ModelBits, env.Preset.LocalSteps)
	return round.TotalEnergy / float64(len(sel)), nil
}

// RunBatteryCampaign gives every device a battery worth selectionsOfBudget
// max-frequency selections and trains every scheme to its round budget or
// fleet death.
func RunBatteryCampaign(p Preset, s Setting, seed int64, selectionsOfBudget float64) (*BatteryCampaign, error) {
	if selectionsOfBudget <= 0 {
		return nil, fmt.Errorf("experiments: non-positive battery budget %g", selectionsOfBudget)
	}
	env, err := BuildEnv(p, s, seed)
	if err != nil {
		return nil, err
	}
	perSel, err := EstimateSelectedUserRoundEnergy(env)
	if err != nil {
		return nil, err
	}
	capacity := selectionsOfBudget * perSel
	out := &BatteryCampaign{
		Setting:    s,
		CapacityJ:  capacity,
		Best:       map[string]float64{},
		FinalAlive: map[string]int{},
		RoundsDone: map[string]int{},
		Halted:     map[string]bool{},
		Fleet:      len(env.Devices),
	}
	for _, scheme := range batterySchemes {
		curve, res, err := RunSchemeWith(env, scheme, func(c *fl.Config) {
			c.BatteryCapacityJ = capacity
		})
		if err != nil {
			return nil, fmt.Errorf("scheme %s: %w", scheme, err)
		}
		out.Best[scheme] = curve.Best()
		out.RoundsDone[scheme] = len(res.Records)
		out.Halted[scheme] = res.HaltedByDeadFleet
		if n := len(res.Records); n > 0 {
			out.FinalAlive[scheme] = res.Records[n-1].AliveDevices
		} else {
			out.FinalAlive[scheme] = len(env.Devices)
		}
	}
	return out, nil
}

// Render produces the lifetime-comparison table.
func (b *BatteryCampaign) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Battery campaign (%s): %.1f J per device", b.Setting, b.CapacityJ),
		"scheme", "rounds done", "devices alive", "halted", "best accuracy")
	for _, scheme := range batterySchemes {
		halted := "no"
		if b.Halted[scheme] {
			halted = "yes"
		}
		tb.AddRow(scheme,
			fmt.Sprintf("%d", b.RoundsDone[scheme]),
			fmt.Sprintf("%d/%d", b.FinalAlive[scheme], b.Fleet),
			halted,
			metrics.FormatPercent(b.Best[scheme]))
	}
	return tb
}
