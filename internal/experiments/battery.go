package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
	"helcfl/internal/selection"
	"helcfl/internal/sim"
)

// BatteryCampaign compares the schemes when devices carry finite energy
// budgets — the paper's Section I motivation. Two effects emerge: DVFS
// (Algorithm 3) stretches device lifetime, and selection policy decides
// *which* devices die — FedCS burns out its fixed fast cohort and halts.
type BatteryCampaign struct {
	Setting Setting
	// CapacityJ is the per-device battery budget.
	CapacityJ float64
	// Per-scheme outcomes.
	Best       map[string]float64
	FinalAlive map[string]int
	RoundsDone map[string]int
	Halted     map[string]bool
	Fleet      int
}

// batterySchemes are compared in the campaign; HELCFL-noDVFS isolates
// Algorithm 3's lifetime contribution.
var batterySchemes = []string{"HELCFL", "HELCFL-noDVFS", "ClassicFL", "FedCS", "FEDL"}

// EstimateSelectedUserRoundEnergy simulates one max-frequency HELCFL round
// on the environment and returns the mean per-selected-user energy — the
// natural unit for battery budgets.
func EstimateSelectedUserRoundEnergy(env *Env) (float64, error) {
	h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
		Eta: env.Preset.Eta, Fraction: env.Preset.Fraction, StepsPerRound: env.Preset.LocalSteps, Clamp: true,
	})
	if err != nil {
		return 0, err
	}
	sel, _ := h.PlanRound(0)
	devs := make([]*device.Device, len(sel))
	for i, q := range sel {
		devs[i] = env.Devices[q]
	}
	round := sim.SimulateRound(devs, sim.MaxFrequencies(devs), env.Channel, env.ModelBits, env.Preset.LocalSteps)
	return round.TotalEnergy / float64(len(sel)), nil
}

// batteryRun is one scheme's cell result; CapacityJ and Fleet repeat the
// shared (deterministically re-derived) campaign parameters.
type batteryRun struct {
	CapacityJ float64
	Fleet     int
	Run       schemeRun
}

// BatteryCells returns one finite-battery training cell per scheme. Each
// cell re-derives the capacity from its own environment rebuild — the
// estimate is deterministic in (preset, setting, seed), so every cell
// agrees with the historical shared-environment computation.
func BatteryCells(p Preset, s Setting, seed int64, selectionsOfBudget float64) ([]grid.Cell, error) {
	if selectionsOfBudget <= 0 {
		return nil, fmt.Errorf("experiments: non-positive battery budget %g", selectionsOfBudget)
	}
	cells := make([]grid.Cell, 0, len(batterySchemes))
	for _, sc := range batterySchemes {
		scheme := sc
		cells = append(cells, grid.Cell{
			Experiment: "battery",
			Preset:     p.Name,
			Setting:    string(s),
			Scheme:     scheme,
			Variant:    fmt.Sprintf("sel=%g", selectionsOfBudget),
			Seed:       seed,
			Run: func(context.Context, *rand.Rand) (any, error) {
				env, err := CachedEnv(p, s, seed)
				if err != nil {
					return nil, err
				}
				perSel, err := EstimateSelectedUserRoundEnergy(env)
				if err != nil {
					return nil, err
				}
				capacity := selectionsOfBudget * perSel
				curve, res, err := RunSchemeWith(env, scheme, func(c *fl.Config) {
					c.BatteryCapacityJ = capacity
				})
				if err != nil {
					return nil, err
				}
				return batteryRun{
					CapacityJ: capacity,
					Fleet:     len(env.Devices),
					Run:       schemeRun{Curve: curve, Res: res},
				}, nil
			},
		})
	}
	return cells, nil
}

// AssembleBatteryCampaign folds BatteryCells results into the campaign.
func AssembleBatteryCampaign(s Setting, res []any) (*BatteryCampaign, error) {
	if len(res) != len(batterySchemes) {
		return nil, fmt.Errorf("experiments: battery campaign got %d results, want %d", len(res), len(batterySchemes))
	}
	out := &BatteryCampaign{
		Setting:    s,
		Best:       map[string]float64{},
		FinalAlive: map[string]int{},
		RoundsDone: map[string]int{},
		Halted:     map[string]bool{},
	}
	for i, scheme := range batterySchemes {
		r, err := cellResult[batteryRun](res, i)
		if err != nil {
			return nil, err
		}
		out.CapacityJ = r.CapacityJ
		out.Fleet = r.Fleet
		out.Best[scheme] = r.Run.Curve.Best()
		out.RoundsDone[scheme] = len(r.Run.Res.Records)
		out.Halted[scheme] = r.Run.Res.HaltedByDeadFleet
		if n := len(r.Run.Res.Records); n > 0 {
			out.FinalAlive[scheme] = r.Run.Res.Records[n-1].AliveDevices
		} else {
			out.FinalAlive[scheme] = r.Fleet
		}
	}
	return out, nil
}

// RunBatteryCampaignGrid runs the campaign through a grid runner.
func RunBatteryCampaignGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, selectionsOfBudget float64) (*BatteryCampaign, error) {
	cells, err := BatteryCells(p, s, seed, selectionsOfBudget)
	if err != nil {
		return nil, err
	}
	res, err := runCells(ctx, r, cells)
	if err != nil {
		return nil, err
	}
	return AssembleBatteryCampaign(s, res)
}

// RunBatteryCampaign gives every device a battery worth selectionsOfBudget
// max-frequency selections and trains every scheme to its round budget or
// fleet death.
func RunBatteryCampaign(p Preset, s Setting, seed int64, selectionsOfBudget float64) (*BatteryCampaign, error) {
	return RunBatteryCampaignGrid(context.Background(), nil, p, s, seed, selectionsOfBudget)
}

// Render produces the lifetime-comparison table.
func (b *BatteryCampaign) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Battery campaign (%s): %.1f J per device", b.Setting, b.CapacityJ),
		"scheme", "rounds done", "devices alive", "halted", "best accuracy")
	for _, scheme := range batterySchemes {
		halted := "no"
		if b.Halted[scheme] {
			halted = "yes"
		}
		tb.AddRow(scheme,
			fmt.Sprintf("%d", b.RoundsDone[scheme]),
			fmt.Sprintf("%d/%d", b.FinalAlive[scheme], b.Fleet),
			halted,
			metrics.FormatPercent(b.Best[scheme]))
	}
	return tb
}
