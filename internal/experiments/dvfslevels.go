package experiments

import (
	"fmt"

	"helcfl/internal/report"
)

// DVFSLevelsAblation measures how much of Algorithm 3's energy saving
// survives when devices expose only a few discrete DVFS operating points
// (requests snap UP to the next level, preserving the chain deadline but
// burning more energy than the continuous ideal).
type DVFSLevelsAblation struct {
	Setting Setting
	// Labels names each variant ("continuous", "8 levels", …).
	Labels []string
	// ReductionPct is the Fig. 3 energy reduction at the setting's first
	// target for each variant; Reached marks measurable entries.
	ReductionPct []float64
	Reached      []bool
}

// RunDVFSLevelsAblation runs the Fig. 3 comparison once per level count
// (0 = continuous).
func RunDVFSLevelsAblation(p Preset, s Setting, seed int64, levelCounts []int) (*DVFSLevelsAblation, error) {
	out := &DVFSLevelsAblation{Setting: s}
	for _, n := range levelCounts {
		env, err := BuildEnv(p, s, seed)
		if err != nil {
			return nil, err
		}
		label := "continuous"
		if n > 0 {
			if n < 2 {
				return nil, fmt.Errorf("experiments: need ≥2 DVFS levels, got %d", n)
			}
			label = fmt.Sprintf("%d levels", n)
			for _, d := range env.Devices {
				d.UniformLevels(n)
			}
		}
		f3, err := RunFig3Env(env)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		out.Labels = append(out.Labels, label)
		if len(f3.Targets) > 0 && f3.Reached[0] {
			out.ReductionPct = append(out.ReductionPct, f3.ReductionPct[0])
			out.Reached = append(out.Reached, true)
		} else {
			out.ReductionPct = append(out.ReductionPct, 0)
			out.Reached = append(out.Reached, false)
		}
	}
	return out, nil
}

// Render produces the level-count table.
func (a *DVFSLevelsAblation) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Ablation (%s): discrete DVFS levels vs Algorithm 3 savings", a.Setting),
		"operating points", "energy reduction at first target")
	for i, l := range a.Labels {
		v := "✗"
		if a.Reached[i] {
			v = fmt.Sprintf("%.1f%%", a.ReductionPct[i])
		}
		tb.AddRow(l, v)
	}
	return tb
}
