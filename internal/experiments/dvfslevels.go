package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/grid"
	"helcfl/internal/report"
)

// DVFSLevelsAblation measures how much of Algorithm 3's energy saving
// survives when devices expose only a few discrete DVFS operating points
// (requests snap UP to the next level, preserving the chain deadline but
// burning more energy than the continuous ideal).
type DVFSLevelsAblation struct {
	Setting Setting
	// Labels names each variant ("continuous", "8 levels", …).
	Labels []string
	// ReductionPct is the Fig. 3 energy reduction at the setting's first
	// target for each variant; Reached marks measurable entries.
	ReductionPct []float64
	Reached      []bool
}

// dvfsLevelLabel names one variant (0 = continuous).
func dvfsLevelLabel(n int) string {
	if n > 0 {
		return fmt.Sprintf("%d levels", n)
	}
	return "continuous"
}

// DVFSLevelsCells returns one Fig. 3 comparison cell per level count
// (0 = continuous); the level mutation applies to the cell's own
// environment rebuild. Rejects level counts of 1.
func DVFSLevelsCells(p Preset, s Setting, seed int64, levelCounts []int) ([]grid.Cell, error) {
	cells := make([]grid.Cell, 0, len(levelCounts))
	for _, n := range levelCounts {
		if n > 0 && n < 2 {
			return nil, fmt.Errorf("experiments: need ≥2 DVFS levels, got %d", n)
		}
		levels := n
		cells = append(cells, grid.Cell{
			Experiment: "dvfslevels",
			Preset:     p.Name,
			Setting:    string(s),
			Scheme:     "HELCFL",
			Variant:    fmt.Sprintf("levels=%d", n),
			Seed:       seed,
			Run: func(context.Context, *rand.Rand) (any, error) {
				// Deliberately NOT CachedEnv: this cell mutates the fleet
				// (UniformLevels rewrites each device's frequency range), so
				// it needs a private environment.
				env, err := BuildEnv(p, s, seed)
				if err != nil {
					return nil, err
				}
				if levels > 0 {
					for _, d := range env.Devices {
						d.UniformLevels(levels)
					}
				}
				return RunFig3Env(env)
			},
		})
	}
	return cells, nil
}

// AssembleDVFSLevelsAblation folds DVFSLevelsCells results into the sweep.
func AssembleDVFSLevelsAblation(s Setting, levelCounts []int, res []any) (*DVFSLevelsAblation, error) {
	if len(res) != len(levelCounts) {
		return nil, fmt.Errorf("experiments: DVFS-levels sweep got %d results, want %d", len(res), len(levelCounts))
	}
	out := &DVFSLevelsAblation{Setting: s}
	for i, n := range levelCounts {
		f3, err := cellResult[*Fig3Result](res, i)
		if err != nil {
			return nil, err
		}
		out.Labels = append(out.Labels, dvfsLevelLabel(n))
		if len(f3.Targets) > 0 && f3.Reached[0] {
			out.ReductionPct = append(out.ReductionPct, f3.ReductionPct[0])
			out.Reached = append(out.Reached, true)
		} else {
			out.ReductionPct = append(out.ReductionPct, 0)
			out.Reached = append(out.Reached, false)
		}
	}
	return out, nil
}

// RunDVFSLevelsAblationGrid runs the sweep through a grid runner.
func RunDVFSLevelsAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, levelCounts []int) (*DVFSLevelsAblation, error) {
	cells, err := DVFSLevelsCells(p, s, seed, levelCounts)
	if err != nil {
		return nil, err
	}
	res, err := runCells(ctx, r, cells)
	if err != nil {
		return nil, err
	}
	return AssembleDVFSLevelsAblation(s, levelCounts, res)
}

// RunDVFSLevelsAblation runs the Fig. 3 comparison once per level count
// (0 = continuous).
func RunDVFSLevelsAblation(p Preset, s Setting, seed int64, levelCounts []int) (*DVFSLevelsAblation, error) {
	return RunDVFSLevelsAblationGrid(context.Background(), nil, p, s, seed, levelCounts)
}

// Render produces the level-count table.
func (a *DVFSLevelsAblation) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Ablation (%s): discrete DVFS levels vs Algorithm 3 savings", a.Setting),
		"operating points", "energy reduction at first target")
	for i, l := range a.Labels {
		v := "✗"
		if a.Reached[i] {
			v = fmt.Sprintf("%.1f%%", a.ReductionPct[i])
		}
		tb.AddRow(l, v)
	}
	return tb
}
