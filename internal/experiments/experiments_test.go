package experiments

import (
	"math"
	"strings"
	"testing"
)

// The experiment tests run the Tiny preset with a fixed seed. Everything in
// the pipeline is deterministic, so the asserted orderings are stable.

func TestPresetValidate(t *testing.T) {
	for _, p := range []Preset{Paper(), Fast(), Tiny()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	bad := Tiny()
	bad.Fraction = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero fraction must fail")
	}
	bad2 := Tiny()
	bad2.CyclesPerUpdate = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero cycles must fail")
	}
}

func TestSlackRichDerivation(t *testing.T) {
	p := SlackRich(Tiny())
	if p.CyclesPerUpdate >= Tiny().CyclesPerUpdate {
		t.Fatal("slack-rich variant must cut compute cycles")
	}
	if p.ChannelNoise <= 0 {
		t.Fatal("slack-rich variant must speed up the uplink")
	}
	if !strings.Contains(p.Name, "slackrich") {
		t.Fatal("variant must rename itself")
	}
}

func TestBuildEnv(t *testing.T) {
	p := Tiny()
	env, err := BuildEnv(p, IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Devices) != p.Users || len(env.UserData) != p.Users {
		t.Fatalf("fleet sizes %d/%d", len(env.Devices), len(env.UserData))
	}
	total := 0
	for q, d := range env.UserData {
		total += d.N()
		if env.Devices[q].NumSamples != d.N() {
			t.Fatalf("device %d samples %d != data %d", q, env.Devices[q].NumSamples, d.N())
		}
	}
	if total != p.TrainN {
		t.Fatalf("partition covers %d of %d", total, p.TrainN)
	}
	if env.ModelBits <= 0 {
		t.Fatal("model bits unset")
	}
	// π is scaled so one update costs CyclesPerUpdate regardless of the
	// synthetic per-user sample count.
	perUpdate := env.Devices[0].CyclesPerSample * float64(env.Devices[0].NumSamples)
	if math.Abs(perUpdate-p.CyclesPerUpdate)/p.CyclesPerUpdate > 0.05 {
		t.Fatalf("per-update cycles %g, want ≈%g", perUpdate, p.CyclesPerUpdate)
	}
}

func TestBuildEnvNonIIDIsSkewed(t *testing.T) {
	p := Tiny()
	iid, err := BuildEnv(p, IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	non, err := BuildEnv(p, NonIID, 1)
	if err != nil {
		t.Fatal(err)
	}
	meanLabels := func(env *Env) float64 {
		s := 0
		for _, d := range env.UserData {
			s += d.DistinctLabels(p.Classes)
		}
		return float64(s) / float64(len(env.UserData))
	}
	if meanLabels(non) >= meanLabels(iid) {
		t.Fatalf("Non-IID users see %g labels, IID %g; skew missing", meanLabels(non), meanLabels(iid))
	}
}

func TestRunSchemeUnknown(t *testing.T) {
	env, err := BuildEnv(Tiny(), IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunScheme(env, "nope"); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

// fig2Cache shares one Fig. 2 campaign across the ordering tests (each full
// run costs about a second).
var fig2Cache = map[Setting]*Fig2Result{}

func fig2For(t *testing.T, s Setting) *Fig2Result {
	t.Helper()
	if f, ok := fig2Cache[s]; ok {
		return f
	}
	f, err := RunFig2(Tiny(), s, 1)
	if err != nil {
		t.Fatal(err)
	}
	fig2Cache[s] = f
	return f
}

func TestFig2AllCurvesPresent(t *testing.T) {
	for _, s := range []Setting{IID, NonIID} {
		fig := fig2For(t, s)
		for _, scheme := range SchemeOrder {
			c := fig.Curve(scheme)
			if len(c.Points) == 0 {
				t.Fatalf("%s/%s: empty curve", s, scheme)
			}
			for i := 1; i < len(c.Points); i++ {
				if c.Points[i].Time <= c.Points[i-1].Time {
					t.Fatalf("%s/%s: time not increasing", s, scheme)
				}
				if c.Points[i].Energy <= c.Points[i-1].Energy {
					t.Fatalf("%s/%s: energy not increasing", s, scheme)
				}
			}
		}
	}
}

// The paper's Fig. 2 orderings: HELCFL reaches the highest accuracies;
// FedCS caps below it; SL collapses.
func TestFig2PaperOrderings(t *testing.T) {
	for _, s := range []Setting{IID, NonIID} {
		fig := fig2For(t, s)
		h := fig.Curve("HELCFL").Best()
		if h < 0.65 {
			t.Fatalf("%s: HELCFL best %g too low, training broken", s, h)
		}
		if f := fig.Curve("FedCS").Best(); f >= h {
			t.Fatalf("%s: FedCS best %g not capped below HELCFL %g", s, f, h)
		}
		if sl := fig.Curve("SL").Best(); sl > 0.45 || sl >= h-0.2 {
			t.Fatalf("%s: SL best %g should collapse far below HELCFL %g", s, sl, h)
		}
		// Classic FL and FEDL share the selection rule; their ceilings are
		// close (the paper calls the curves equivalent).
		c := fig.Curve("ClassicFL").Best()
		fe := fig.Curve("FEDL").Best()
		if math.Abs(c-fe) > 0.08 {
			t.Fatalf("%s: ClassicFL %g and FEDL %g should be close", s, c, fe)
		}
	}
}

// HELCFL's scheduling advantage: lower total delay and lower total energy
// than Classic FL over the same number of rounds.
func TestFig2HELCFLCheaperThanClassic(t *testing.T) {
	for _, s := range []Setting{IID, NonIID} {
		fig := fig2For(t, s)
		h := fig.Curve("HELCFL")
		c := fig.Curve("ClassicFL")
		hLast := h.Points[len(h.Points)-1]
		cLast := c.Points[len(c.Points)-1]
		if hLast.Time >= cLast.Time {
			t.Fatalf("%s: HELCFL total delay %g not below Classic %g", s, hLast.Time, cLast.Time)
		}
		if hLast.Energy >= cLast.Energy {
			t.Fatalf("%s: HELCFL total energy %g not below Classic %g", s, hLast.Energy, cLast.Energy)
		}
	}
}

func TestFig2Deterministic(t *testing.T) {
	a, err := RunFig2(Tiny(), IID, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig2(Tiny(), IID, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range SchemeOrder {
		ca, cb := a.Curve(scheme), b.Curve(scheme)
		if len(ca.Points) != len(cb.Points) {
			t.Fatalf("%s: point counts differ", scheme)
		}
		for i := range ca.Points {
			if ca.Points[i] != cb.Points[i] {
				t.Fatalf("%s: point %d differs", scheme, i)
			}
		}
	}
}

func TestTableIConsistentWithCurves(t *testing.T) {
	figs := map[Setting]*Fig2Result{IID: fig2For(t, IID), NonIID: fig2For(t, NonIID)}
	tbl := BuildTableI(Tiny(), figs)
	if len(tbl.Settings) != 2 {
		t.Fatalf("blocks = %d", len(tbl.Settings))
	}
	for _, blk := range tbl.Settings {
		for _, scheme := range SchemeOrder {
			curve := figs[blk.Setting].Curve(scheme)
			for i, target := range blk.Targets {
				wantD, wantOK := curve.TimeToAccuracy(target)
				if blk.Reached[scheme][i] != wantOK {
					t.Fatalf("%s/%s@%.2f: reached mismatch", blk.Setting, scheme, target)
				}
				if wantOK && math.Abs(blk.DelaySec[scheme][i]-wantD) > 1e-9 {
					t.Fatalf("%s/%s@%.2f: delay mismatch", blk.Setting, scheme, target)
				}
			}
		}
		// Delays are monotone in the target for every scheme.
		for _, scheme := range SchemeOrder {
			for i := 1; i < len(blk.Targets); i++ {
				if blk.Reached[scheme][i] && blk.Reached[scheme][i-1] &&
					blk.DelaySec[scheme][i] < blk.DelaySec[scheme][i-1] {
					t.Fatalf("%s/%s: delay decreased with higher target", blk.Setting, scheme)
				}
			}
		}
	}
}

func TestTableIPaperShape(t *testing.T) {
	figs := map[Setting]*Fig2Result{IID: fig2For(t, IID), NonIID: fig2For(t, NonIID)}
	tbl := BuildTableI(Tiny(), figs)
	for _, blk := range tbl.Settings {
		// HELCFL reaches every target.
		for i := range blk.Targets {
			if !blk.Reached["HELCFL"][i] {
				t.Fatalf("%s: HELCFL missed target %.2f", blk.Setting, blk.Targets[i])
			}
		}
		// SL reaches none (the paper's all-✗ row).
		for i := range blk.Targets {
			if blk.Reached["SL"][i] {
				t.Fatalf("%s: SL unexpectedly reached %.2f", blk.Setting, blk.Targets[i])
			}
		}
		// FedCS misses the top target (its accuracy ceiling).
		top := len(blk.Targets) - 1
		if blk.Reached["FedCS"][top] {
			t.Fatalf("%s: FedCS unexpectedly reached top target", blk.Setting)
		}
	}
}

func TestTableIRenderAndSpeedups(t *testing.T) {
	figs := map[Setting]*Fig2Result{IID: fig2For(t, IID)}
	tbl := BuildTableI(Tiny(), figs)
	out := tbl.Settings[0].Render().String()
	if !strings.Contains(out, "HELCFL") || !strings.Contains(out, "min") {
		t.Fatalf("render missing content:\n%s", out)
	}
	sp := tbl.Settings[0].Speedups(0)
	if v, ok := sp["ClassicFL"]; ok && v < -100 {
		t.Fatalf("nonsense speedup %g", v)
	}
}

func TestFig3ReductionPositive(t *testing.T) {
	for _, s := range []Setting{IID, NonIID} {
		f3, err := RunFig3(Tiny(), s, 1)
		if err != nil {
			t.Fatal(err)
		}
		anyReached := false
		for i := range f3.Targets {
			if !f3.Reached[i] {
				continue
			}
			anyReached = true
			if f3.ReductionPct[i] <= 5 {
				t.Fatalf("%s@%.2f: DVFS reduction %.1f%% too small", s, f3.Targets[i], f3.ReductionPct[i])
			}
			if f3.WithDVFS[i] >= f3.WithoutDVFS[i] {
				t.Fatalf("%s@%.2f: DVFS did not reduce energy", s, f3.Targets[i])
			}
		}
		if !anyReached {
			t.Fatalf("%s: no target reached", s)
		}
		bc, tb := f3.Render()
		if bc.String() == "" || tb.String() == "" {
			t.Fatal("fig3 render empty")
		}
	}
}

// DVFS must not slow convergence: both variants share selection and
// training, so their accuracy-vs-round curves are identical.
func TestFig3DVFSDoesNotDegradeTraining(t *testing.T) {
	env, err := BuildEnv(Tiny(), IID, 3)
	if err != nil {
		t.Fatal(err)
	}
	with, _, err := RunScheme(env, "HELCFL")
	if err != nil {
		t.Fatal(err)
	}
	env2, err := BuildEnv(Tiny(), IID, 3)
	if err != nil {
		t.Fatal(err)
	}
	without, _, err := RunScheme(env2, "HELCFL-noDVFS")
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Points) != len(without.Points) {
		t.Fatal("evaluation cadence differs")
	}
	for i := range with.Points {
		if with.Points[i].Accuracy != without.Points[i].Accuracy {
			t.Fatalf("round %d: accuracy differs with DVFS", with.Points[i].Round)
		}
		if with.Points[i].Time > without.Points[i].Time+1e-9 {
			t.Fatalf("round %d: DVFS lengthened cumulative delay", with.Points[i].Round)
		}
	}
}

func TestSlackRichRegimeIncreasesSavings(t *testing.T) {
	base, err := RunFig3(Tiny(), IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := RunFig3(SlackRich(Tiny()), IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Compare at the first mutually reached target.
	for i := range base.Targets {
		if base.Reached[i] && ub.Reached[i] {
			if ub.ReductionPct[i] <= base.ReductionPct[i] {
				t.Fatalf("slack-rich saving %.1f%% not above balanced %.1f%%",
					ub.ReductionPct[i], base.ReductionPct[i])
			}
			return
		}
	}
	t.Fatal("no mutually reached target")
}

func TestHeadline(t *testing.T) {
	figs := map[Setting]*Fig2Result{IID: fig2For(t, IID), NonIID: fig2For(t, NonIID)}
	tbl := BuildTableI(Tiny(), figs)
	f3, err := RunFig3(Tiny(), IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := BuildHeadline(figs, tbl, map[Setting]*Fig3Result{IID: f3})
	if h.BestAccuracyGainPct <= 20 {
		t.Fatalf("accuracy gain %.1f%% too small (SL gap should dominate)", h.BestAccuracyGainPct)
	}
	if !strings.Contains(h.BestAccuracyGainVs, "SL") {
		t.Fatalf("largest gain should be vs SL, got %s", h.BestAccuracyGainVs)
	}
	if h.BestEnergySavingPct <= 5 {
		t.Fatalf("energy saving %.1f%% too small", h.BestEnergySavingPct)
	}
	out := h.Render().String()
	if !strings.Contains(out, "43.45%") || !strings.Contains(out, "58.25%") {
		t.Fatalf("headline must cite the paper's numbers:\n%s", out)
	}
}

func TestEtaAblation(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 20
	ab, err := RunEtaAblation(p, IID, 1, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Best) != 2 || len(ab.TimeSec) != 2 {
		t.Fatalf("ablation sizes wrong: %+v", ab)
	}
	for i := range ab.Best {
		if ab.Best[i] <= 0 || ab.TimeSec[i] <= 0 {
			t.Fatalf("η=%g: degenerate results", ab.Etas[i])
		}
	}
	if ab.Render().String() == "" {
		t.Fatal("render empty")
	}
}

func TestFractionAblation(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 20
	ab, err := RunFractionAblation(p, IID, 1, []float64{0.125, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Selecting more users per round must cost more energy.
	if ab.EnergyJ[1] <= ab.EnergyJ[0] {
		t.Fatalf("C=0.25 energy %g not above C=0.125 energy %g", ab.EnergyJ[1], ab.EnergyJ[0])
	}
	if ab.Render().String() == "" {
		t.Fatal("render empty")
	}
}

func TestClampAblationFindsViolations(t *testing.T) {
	ab, err := RunClampAblation(Tiny(), IID, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	// The literal pseudocode routinely demands frequencies below f_min
	// (that is the point of the clamping study).
	if ab.Violations == 0 {
		t.Skip("no violations in this draw; clamping study vacuous here")
	}
	if ab.WorstBelowPct <= 0 && ab.WorstAbovePct <= 0 {
		t.Fatal("violations recorded but no magnitudes")
	}
	if ab.Render().String() == "" {
		t.Fatal("render empty")
	}
}

func TestFig1Demo(t *testing.T) {
	demo, err := RunFig1Demo(Tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	maxSlack, dvfsSlack, err := demo.slackCheck()
	if err != nil {
		t.Fatal(err)
	}
	if dvfsSlack > maxSlack+1e-9 {
		t.Fatalf("DVFS increased slack: %g vs %g", dvfsSlack, maxSlack)
	}
	if demo.WithDVFS.ComputeEnergy >= demo.MaxFreq.ComputeEnergy {
		t.Fatal("DVFS demo saved no energy")
	}
	a, b := demo.Render()
	if !strings.Contains(a.String(), "makespan") || !strings.Contains(b.String(), "makespan") {
		t.Fatal("fig1 render missing makespan")
	}
}

func TestRenderFig2AndCSV(t *testing.T) {
	fig := fig2For(t, IID)
	chart, tb := RenderFig2(fig)
	if !strings.Contains(chart.String(), "HELCFL") {
		t.Fatal("chart missing scheme")
	}
	if !strings.Contains(tb.String(), "best accuracy") {
		t.Fatal("summary missing header")
	}
	csv := Fig2CSV(fig)
	if !strings.Contains(csv, "HELCFL") || !strings.HasPrefix(csv, "setting,scheme,round") {
		t.Fatalf("csv malformed: %.80s", csv)
	}
}
