// Package experiments reproduces the paper's evaluation section: Fig. 2
// (accuracy curves for HELCFL and four baselines, IID and Non-IID), Table I
// (training delay to reach desired accuracies), Fig. 3 (energy reduction
// from the DVFS frequency determination), plus the ablations called out in
// DESIGN.md (decay coefficient η, selection fraction C, clamped vs literal
// Algorithm 3).
package experiments

import (
	"fmt"

	"helcfl/internal/nn"
	"helcfl/internal/obs"
)

// Setting selects the data distribution across users.
type Setting string

// The two data settings of Section VII-A.
const (
	IID    Setting = "IID"
	NonIID Setting = "Non-IID"
)

// Preset bundles every experiment parameter. Paper() mirrors Section VII-A;
// Fast() and Tiny() scale it down for quick runs and unit tests.
type Preset struct {
	// Name identifies the preset in reports.
	Name string

	// Users is Q, the fleet size.
	Users int
	// TrainN and TestN size the synthetic dataset splits.
	TrainN, TestN int
	// Classes is the label count (CIFAR-10 analogue: 10).
	Classes int
	// Noise is the SynthCIFAR per-pixel noise level.
	Noise float64
	// ShardsPerUser controls the Non-IID split: shards = Users ×
	// ShardsPerUser (paper: 400 shards, 4 per user).
	ShardsPerUser int
	// DirichletAlpha, when positive, replaces the Non-IID shard split with
	// a per-class Dirichlet(α) split (Hsu et al.) — the partition-family
	// ablation. 0 keeps the paper's sort-and-shard scheme.
	DirichletAlpha float64

	// Fraction is the selection fraction C (paper: 0.1).
	Fraction float64
	// Eta is HELCFL's decay coefficient η.
	Eta float64
	// LR is the GD learning rate τ.
	LR float64
	// LocalSteps is full-batch GD passes per round (paper: 1).
	LocalSteps int
	// MaxRounds is J (paper: 300).
	MaxRounds int
	// EvalEvery is the evaluation cadence in rounds.
	EvalEvery int

	// ModelKind and Hidden select the architecture ("mlp", "logistic",
	// "squeezenet-mini").
	ModelKind string
	Hidden    []int

	// CyclesPerUpdate is the per-user CPU cost of one local update in
	// cycles. The paper's users hold 500 CIFAR samples at π = 10⁷
	// cycles/sample, i.e. 5×10⁹ cycles/update; BuildEnv divides this by the
	// actual samples per user to set the device catalog's π.
	CyclesPerUpdate float64
	// ChannelNoise overrides the TDMA channel's noise power N0 when
	// positive (0 keeps wireless.DefaultChannel's value). Lower noise means
	// faster uploads.
	ChannelNoise float64
	// FedCSDeadlineSec is the per-round deadline FedCS packs against.
	FedCSDeadlineSec float64
	// FEDLK is the delay weight of FEDL's closed-form frequency.
	FEDLK float64
	// SLEvalUsers caps how many user models the SL evaluation averages.
	SLEvalUsers int

	// IIDTargets and NonIIDTargets are the desired accuracies of Table I /
	// Fig. 3 in each setting.
	IIDTargets, NonIIDTargets []float64

	// Sink, when non-nil, receives the engine's event stream for every
	// scheme run under this preset (metrics export, verbose progress,
	// streaming traces). Nil keeps the round hot path allocation-free.
	Sink obs.EventSink
}

// Paper returns the full Section VII-A setting. The model is an MLP rather
// than full SqueezeNet so the pure-Go substrate trains 300 rounds × 5
// schemes in minutes; the SqueezeNet-family CNN is exercised by the
// "squeezenet-mini" ablation and the nn package tests (see DESIGN.md).
func Paper() Preset {
	return Preset{
		Name:             "paper",
		Users:            100,
		TrainN:           4000,
		TestN:            1000,
		Classes:          10,
		Noise:            2.2,
		ShardsPerUser:    4,
		Fraction:         0.1,
		Eta:              0.7,
		LR:               0.4,
		LocalSteps:       1,
		MaxRounds:        300,
		EvalEvery:        1,
		ModelKind:        "mlp",
		Hidden:           []int{128},
		CyclesPerUpdate:  5e9,
		FedCSDeadlineSec: 10,
		FEDLK:            0.2,
		SLEvalUsers:      20,
		IIDTargets:       []float64{0.60, 0.70, 0.80},
		NonIIDTargets:    []float64{0.40, 0.50, 0.60},
	}
}

// Fast returns a reduced setting for CLI demos and benchmarks.
func Fast() Preset {
	p := Paper()
	p.Name = "fast"
	p.Users = 40
	p.TrainN = 1600
	p.TestN = 600
	p.MaxRounds = 150
	p.EvalEvery = 2
	p.SLEvalUsers = 10
	return p
}

// Tiny returns a unit-test-scale setting.
func Tiny() Preset {
	p := Paper()
	p.Name = "tiny"
	p.Users = 16
	p.TrainN = 480
	p.TestN = 240
	p.MaxRounds = 60
	p.EvalEvery = 2
	p.Fraction = 0.25
	p.Hidden = []int{32}
	p.FedCSDeadlineSec = 10
	p.SLEvalUsers = 6
	p.IIDTargets = []float64{0.40, 0.55, 0.70}
	p.NonIIDTargets = []float64{0.35, 0.50, 0.65}
	return p
}

// Validate reports preset configuration errors.
func (p Preset) Validate() error {
	switch {
	case p.Users <= 0:
		return fmt.Errorf("experiments: non-positive users %d", p.Users)
	case p.TrainN < p.Users:
		return fmt.Errorf("experiments: %d train samples cannot cover %d users", p.TrainN, p.Users)
	case p.ShardsPerUser <= 0:
		return fmt.Errorf("experiments: non-positive shards per user %d", p.ShardsPerUser)
	case p.Fraction <= 0 || p.Fraction > 1:
		return fmt.Errorf("experiments: fraction %g outside (0,1]", p.Fraction)
	case p.Eta <= 0 || p.Eta >= 1:
		return fmt.Errorf("experiments: eta %g outside (0,1)", p.Eta)
	case p.MaxRounds <= 0 || p.LocalSteps <= 0 || p.LR <= 0:
		return fmt.Errorf("experiments: bad training parameters")
	case p.FedCSDeadlineSec <= 0:
		return fmt.Errorf("experiments: non-positive FedCS deadline %g", p.FedCSDeadlineSec)
	case p.CyclesPerUpdate <= 0:
		return fmt.Errorf("experiments: non-positive cycles per update %g", p.CyclesPerUpdate)
	}
	return nil
}

// SlackRich derives the cost-model regime in which Algorithm 3's savings
// peak, matching the paper's ~58% headline: per-update compute at the
// literal π with our small per-user datasets (so compute energy dominates
// the budget) over a fast uplink whose per-user airtime is comparable to
// the compute-delay gaps (so every selected user queues behind the TDMA
// channel and accumulates Fig. 1 slack). Used by the fig3-regime ablation.
func SlackRich(p Preset) Preset {
	p.Name += "-slackrich"
	p.CyclesPerUpdate = 4e8
	p.ChannelNoise = 0.1
	return p
}

// Spec returns the model architecture for this preset.
func (p Preset) Spec() nn.ModelSpec {
	return nn.ModelSpec{Kind: p.ModelKind, InC: 3, H: 8, W: 8, Classes: p.Classes, Hidden: p.Hidden}
}

// Targets returns the desired-accuracy list for a setting.
func (p Preset) Targets(s Setting) []float64 {
	if s == IID {
		return p.IIDTargets
	}
	return p.NonIIDTargets
}

// LookupPreset resolves a preset by its Name ("paper", "fast", "tiny").
// Fleet workers use it to rebuild the coordinator's plan locally from the
// preset name alone, so no configuration crosses the wire — only identity.
func LookupPreset(name string) (Preset, error) {
	switch name {
	case "paper":
		return Paper(), nil
	case "fast":
		return Fast(), nil
	case "tiny":
		return Tiny(), nil
	}
	return Preset{}, fmt.Errorf("experiments: unknown preset %q", name)
}
