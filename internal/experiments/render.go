package experiments

import (
	"fmt"

	"helcfl/internal/report"
)

// RenderFig2 draws one Fig. 2 panel as an ASCII line chart plus the final
// and best accuracies per scheme.
func RenderFig2(f *Fig2Result) (*report.LineChart, *report.Table) {
	chart := report.NewLineChart(
		fmt.Sprintf("Fig. 2 (%s): test accuracy vs training iteration", f.Setting),
		"iteration", "accuracy")
	for _, scheme := range SchemeOrder {
		c := f.Curve(scheme)
		xs := make([]float64, len(c.Points))
		ys := make([]float64, len(c.Points))
		for i, p := range c.Points {
			xs[i] = float64(p.Round)
			ys[i] = p.Accuracy
		}
		if len(xs) > 0 {
			chart.Add(report.Series{Name: scheme, X: xs, Y: ys})
		}
	}
	tb := report.NewTable(fmt.Sprintf("Fig. 2 (%s): accuracy summary", f.Setting),
		"scheme", "best accuracy", "final accuracy")
	for _, scheme := range SchemeOrder {
		c := f.Curve(scheme)
		tb.AddRow(scheme,
			fmt.Sprintf("%.2f%%", c.Best()*100),
			fmt.Sprintf("%.2f%%", c.Final()*100))
	}
	return chart, tb
}

// Fig2CSV renders a Fig. 2 panel as CSV with one row per (scheme, round).
func Fig2CSV(f *Fig2Result) string {
	tb := report.NewTable("", "setting", "scheme", "round", "time_s", "energy_j", "accuracy")
	for _, scheme := range SchemeOrder {
		for _, p := range f.Curve(scheme).Points {
			tb.AddRow(string(f.Setting), scheme,
				fmt.Sprintf("%d", p.Round),
				fmt.Sprintf("%.4f", p.Time),
				fmt.Sprintf("%.4f", p.Energy),
				fmt.Sprintf("%.4f", p.Accuracy))
		}
	}
	return tb.CSV()
}
