package experiments

import (
	"context"
	"fmt"

	"helcfl/internal/grid"
	"helcfl/internal/report"
	"helcfl/internal/stats"
)

// MultiSeed aggregates a Fig. 2 campaign across several seeds, reporting
// mean ± std of each scheme's best accuracy and total training delay, plus
// the per-seed win rate of HELCFL over each baseline. Single-seed runs are
// what the paper plots; this is the robustness check behind the orderings.
type MultiSeed struct {
	Setting Setting
	Seeds   []int64
	// Best and TimeSec map scheme → per-seed observations, seed order.
	Best, TimeSec map[string][]float64
}

// MultiSeedCells returns a full Fig. 2 panel of cells per seed, seed-major
// order (AssembleMultiSeed relies on the layout).
func MultiSeedCells(p Preset, s Setting, seeds []int64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(seeds)*len(SchemeOrder))
	for _, seed := range seeds {
		cells = append(cells, Fig2Cells(p, s, seed)...)
	}
	return cells
}

// AssembleMultiSeed folds MultiSeedCells results into the aggregate.
func AssembleMultiSeed(s Setting, seeds []int64, res []any) (*MultiSeed, error) {
	if len(res) != len(seeds)*len(SchemeOrder) {
		return nil, fmt.Errorf("experiments: multiseed got %d results, want %d", len(res), len(seeds)*len(SchemeOrder))
	}
	out := &MultiSeed{
		Setting: s,
		Seeds:   seeds,
		Best:    map[string][]float64{},
		TimeSec: map[string][]float64{},
	}
	for si := range seeds {
		for j, scheme := range SchemeOrder {
			r, err := cellResult[schemeRun](res, si*len(SchemeOrder)+j)
			if err != nil {
				return nil, err
			}
			out.Best[scheme] = append(out.Best[scheme], r.Curve.Best())
			last := r.Curve.Points[len(r.Curve.Points)-1]
			out.TimeSec[scheme] = append(out.TimeSec[scheme], last.Time)
		}
	}
	return out, nil
}

// RunMultiSeedGrid runs the multi-seed campaign through a grid runner.
func RunMultiSeedGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seeds []int64) (*MultiSeed, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	res, err := runCells(ctx, r, MultiSeedCells(p, s, seeds))
	if err != nil {
		return nil, err
	}
	return AssembleMultiSeed(s, seeds, res)
}

// RunMultiSeed executes a Fig. 2 panel once per seed.
func RunMultiSeed(p Preset, s Setting, seeds []int64) (*MultiSeed, error) {
	return RunMultiSeedGrid(context.Background(), nil, p, s, seeds)
}

// AccuracySummary returns the best-accuracy summary for a scheme.
func (m *MultiSeed) AccuracySummary(scheme string) stats.Summary {
	return stats.Summarize(m.Best[scheme])
}

// WinRateOverBaseline returns the fraction of seeds where HELCFL's best
// accuracy beats the baseline's.
func (m *MultiSeed) WinRateOverBaseline(baseline string) float64 {
	return stats.WinRate(m.Best["HELCFL"], m.Best[baseline], false)
}

// Render produces the robustness table.
func (m *MultiSeed) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Multi-seed robustness (%s, %d seeds)", m.Setting, len(m.Seeds)),
		"scheme", "best accuracy (mean ± std)", "total delay (mean ± std)", "HELCFL win rate")
	for _, scheme := range SchemeOrder {
		acc := stats.Summarize(m.Best[scheme])
		tt := stats.Summarize(m.TimeSec[scheme])
		win := "—"
		if scheme != "HELCFL" {
			win = fmt.Sprintf("%.0f%%", m.WinRateOverBaseline(scheme)*100)
		}
		tb.AddRow(scheme,
			fmt.Sprintf("%.2f%% ± %.2f", acc.Mean*100, acc.Std*100),
			fmt.Sprintf("%.1fmin ± %.1f", tt.Mean/60, tt.Std/60),
			win)
	}
	return tb
}
