package experiments

import (
	"fmt"

	"helcfl/internal/report"
	"helcfl/internal/stats"
)

// MultiSeed aggregates a Fig. 2 campaign across several seeds, reporting
// mean ± std of each scheme's best accuracy and total training delay, plus
// the per-seed win rate of HELCFL over each baseline. Single-seed runs are
// what the paper plots; this is the robustness check behind the orderings.
type MultiSeed struct {
	Setting Setting
	Seeds   []int64
	// Best and TimeSec map scheme → per-seed observations, seed order.
	Best, TimeSec map[string][]float64
}

// RunMultiSeed executes RunFig2 once per seed.
func RunMultiSeed(p Preset, s Setting, seeds []int64) (*MultiSeed, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	out := &MultiSeed{
		Setting: s,
		Seeds:   seeds,
		Best:    map[string][]float64{},
		TimeSec: map[string][]float64{},
	}
	for _, seed := range seeds {
		fig, err := RunFig2(p, s, seed)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		for _, scheme := range SchemeOrder {
			c := fig.Curve(scheme)
			out.Best[scheme] = append(out.Best[scheme], c.Best())
			last := c.Points[len(c.Points)-1]
			out.TimeSec[scheme] = append(out.TimeSec[scheme], last.Time)
		}
	}
	return out, nil
}

// AccuracySummary returns the best-accuracy summary for a scheme.
func (m *MultiSeed) AccuracySummary(scheme string) stats.Summary {
	return stats.Summarize(m.Best[scheme])
}

// WinRateOverBaseline returns the fraction of seeds where HELCFL's best
// accuracy beats the baseline's.
func (m *MultiSeed) WinRateOverBaseline(baseline string) float64 {
	return stats.WinRate(m.Best["HELCFL"], m.Best[baseline], false)
}

// Render produces the robustness table.
func (m *MultiSeed) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Multi-seed robustness (%s, %d seeds)", m.Setting, len(m.Seeds)),
		"scheme", "best accuracy (mean ± std)", "total delay (mean ± std)", "HELCFL win rate")
	for _, scheme := range SchemeOrder {
		acc := stats.Summarize(m.Best[scheme])
		tt := stats.Summarize(m.TimeSec[scheme])
		win := "—"
		if scheme != "HELCFL" {
			win = fmt.Sprintf("%.0f%%", m.WinRateOverBaseline(scheme)*100)
		}
		tb.AddRow(scheme,
			fmt.Sprintf("%.2f%% ± %.2f", acc.Mean*100, acc.Std*100),
			fmt.Sprintf("%.1fmin ± %.1f", tt.Mean/60, tt.Std/60),
			win)
	}
	return tb
}
