package experiments

import (
	"strings"
	"testing"
)

func TestDropoutAblation(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 30
	ab, err := RunDropoutAblation(p, IID, 1, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if ab.FailedUploads[0] != 0 {
		t.Fatalf("clean run lost %d uploads", ab.FailedUploads[0])
	}
	if ab.FailedUploads[1] == 0 {
		t.Fatal("30%% dropout lost no uploads")
	}
	// Training degrades gracefully: the faulted run still learns.
	if ab.Best[1] < 0.35 {
		t.Fatalf("dropout run collapsed to %g", ab.Best[1])
	}
	out := ab.Render().String()
	if !strings.Contains(out, "lost uploads") {
		t.Fatalf("render missing column:\n%s", out)
	}
}

func TestFadingAblation(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 20
	ab, err := RunFadingAblation(p, IID, 1, []float64{0, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Fading perturbs realized delays relative to the static plan.
	if ab.TimeSec[0] == ab.TimeSec[1] {
		t.Fatal("fading must change total delay")
	}
	// But not training accuracy (same selections, same data).
	if ab.Best[0] != ab.Best[1] {
		t.Fatalf("fading changed accuracy: %g vs %g", ab.Best[0], ab.Best[1])
	}
	if ab.Render().String() == "" {
		t.Fatal("render empty")
	}
}
