package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/core"
	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
	"helcfl/internal/selection"
)

// LossAwareExtension compares baseline HELCFL against the loss-aware
// variant (Oort-style statistical utility, core.LossAwareScheduler) —
// a future-work direction beyond the paper.
type LossAwareExtension struct {
	Setting Setting
	Lambdas []float64
	// Best[i] and RoundsToTop[i] correspond to Lambdas[i]; index 0 is the
	// λ=0 baseline (exactly the paper's scheduler).
	Best        []float64
	RoundsToTop []int
}

// normalizeLambdas prepends the λ=0 baseline when missing.
func normalizeLambdas(lambdas []float64) []float64 {
	if len(lambdas) == 0 || lambdas[0] != 0 {
		return append([]float64{0}, lambdas...)
	}
	return lambdas
}

// LossAwareCells returns one loss-aware training cell per λ. Callers must
// pass normalized lambdas (see normalizeLambdas) for baseline-first order.
func LossAwareCells(p Preset, s Setting, seed int64, lambdas []float64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(lambdas))
	for _, l := range lambdas {
		lambda := l
		cells = append(cells, grid.Cell{
			Experiment: "lossaware",
			Preset:     p.Name,
			Setting:    string(s),
			Scheme:     "HELCFL",
			Variant:    fmt.Sprintf("lambda=%g", l),
			Seed:       seed,
			Run: func(context.Context, *rand.Rand) (any, error) {
				env, err := CachedEnv(p, s, seed)
				if err != nil {
					return nil, err
				}
				planner, err := selection.NewHELCFLLossAware(env.Devices, env.Channel, env.ModelBits, core.Params{
					Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
				}, lambda)
				if err != nil {
					return nil, err
				}
				res, err := fl.Run(fl.Config{
					Spec:       env.Spec,
					Devices:    env.Devices,
					Channel:    env.Channel,
					UserData:   env.UserData,
					Test:       env.Synth.Test,
					Planner:    planner,
					LR:         p.LR,
					LocalSteps: p.LocalSteps,
					MaxRounds:  p.MaxRounds,
					EvalEvery:  p.EvalEvery,
					Seed:       seed + 100,
					Sink:       p.Sink,
				})
				if err != nil {
					return nil, err
				}
				return schemeRun{Curve: metrics.CurveFromRecords(planner.Name(), res.Records), Res: res}, nil
			},
		})
	}
	return cells
}

// AssembleLossAwareExtension folds LossAwareCells results into the sweep.
func AssembleLossAwareExtension(p Preset, s Setting, lambdas []float64, res []any) (*LossAwareExtension, error) {
	if len(res) != len(lambdas) {
		return nil, fmt.Errorf("experiments: loss-aware sweep got %d results, want %d", len(res), len(lambdas))
	}
	topTarget := p.Targets(s)[len(p.Targets(s))-1]
	out := &LossAwareExtension{Setting: s, Lambdas: lambdas}
	for i := range lambdas {
		r, err := cellResult[schemeRun](res, i)
		if err != nil {
			return nil, err
		}
		rounds := -1
		if n, ok := r.Curve.RoundsToAccuracy(topTarget); ok {
			rounds = n
		}
		out.Best = append(out.Best, r.Curve.Best())
		out.RoundsToTop = append(out.RoundsToTop, rounds)
	}
	return out, nil
}

// RunLossAwareExtensionGrid runs the λ sweep through a grid runner.
func RunLossAwareExtensionGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, lambdas []float64) (*LossAwareExtension, error) {
	lambdas = normalizeLambdas(lambdas)
	res, err := runCells(ctx, r, LossAwareCells(p, s, seed, lambdas))
	if err != nil {
		return nil, err
	}
	return AssembleLossAwareExtension(p, s, lambdas, res)
}

// RunLossAwareExtension trains HELCFL once per λ (λ=0 is prepended as the
// baseline if missing).
func RunLossAwareExtension(p Preset, s Setting, seed int64, lambdas []float64) (*LossAwareExtension, error) {
	return RunLossAwareExtensionGrid(context.Background(), nil, p, s, seed, lambdas)
}

// Render produces the λ-sweep table.
func (e *LossAwareExtension) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Extension (%s): Oort-style loss-aware utility (λ=0 is the paper's scheduler)", e.Setting),
		"λ", "best accuracy", "rounds to top target")
	for i, l := range e.Lambdas {
		rt := "✗"
		if e.RoundsToTop[i] >= 0 {
			rt = fmt.Sprintf("%d", e.RoundsToTop[i])
		}
		tb.AddRow(fmt.Sprintf("%.1f", l), metrics.FormatPercent(e.Best[i]), rt)
	}
	return tb
}
