package experiments

import (
	"fmt"

	"helcfl/internal/core"
	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
	"helcfl/internal/selection"
)

// LossAwareExtension compares baseline HELCFL against the loss-aware
// variant (Oort-style statistical utility, core.LossAwareScheduler) —
// a future-work direction beyond the paper.
type LossAwareExtension struct {
	Setting Setting
	Lambdas []float64
	// Best[i] and RoundsToTop[i] correspond to Lambdas[i]; index 0 is the
	// λ=0 baseline (exactly the paper's scheduler).
	Best        []float64
	RoundsToTop []int
}

// RunLossAwareExtension trains HELCFL once per λ (λ=0 is prepended as the
// baseline if missing).
func RunLossAwareExtension(p Preset, s Setting, seed int64, lambdas []float64) (*LossAwareExtension, error) {
	if len(lambdas) == 0 || lambdas[0] != 0 {
		lambdas = append([]float64{0}, lambdas...)
	}
	topTarget := p.Targets(s)[len(p.Targets(s))-1]
	out := &LossAwareExtension{Setting: s, Lambdas: lambdas}
	for _, lambda := range lambdas {
		env, err := BuildEnv(p, s, seed)
		if err != nil {
			return nil, err
		}
		planner, err := selection.NewHELCFLLossAware(env.Devices, env.Channel, env.ModelBits, core.Params{
			Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
		}, lambda)
		if err != nil {
			return nil, err
		}
		res, err := fl.Run(fl.Config{
			Spec:       env.Spec,
			Devices:    env.Devices,
			Channel:    env.Channel,
			UserData:   env.UserData,
			Test:       env.Synth.Test,
			Planner:    planner,
			LR:         p.LR,
			LocalSteps: p.LocalSteps,
			MaxRounds:  p.MaxRounds,
			EvalEvery:  p.EvalEvery,
			Seed:       seed + 100,
			Sink:       p.Sink,
		})
		if err != nil {
			return nil, fmt.Errorf("lambda %g: %w", lambda, err)
		}
		curve := metrics.CurveFromRecords(planner.Name(), res.Records)
		rounds := -1
		if r, ok := curve.RoundsToAccuracy(topTarget); ok {
			rounds = r
		}
		out.Best = append(out.Best, curve.Best())
		out.RoundsToTop = append(out.RoundsToTop, rounds)
	}
	return out, nil
}

// Render produces the λ-sweep table.
func (e *LossAwareExtension) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Extension (%s): Oort-style loss-aware utility (λ=0 is the paper's scheduler)", e.Setting),
		"λ", "best accuracy", "rounds to top target")
	for i, l := range e.Lambdas {
		rt := "✗"
		if e.RoundsToTop[i] >= 0 {
			rt = fmt.Sprintf("%d", e.RoundsToTop[i])
		}
		tb.AddRow(fmt.Sprintf("%.1f", l), metrics.FormatPercent(e.Best[i]), rt)
	}
	return tb
}
