package experiments

import (
	"strings"
	"testing"
)

func TestRunMultiSeed(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 16
	ms, err := RunMultiSeed(p, IID, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range SchemeOrder {
		if len(ms.Best[scheme]) != 2 || len(ms.TimeSec[scheme]) != 2 {
			t.Fatalf("%s: missing per-seed observations", scheme)
		}
		s := ms.AccuracySummary(scheme)
		if s.N != 2 || s.Mean <= 0 {
			t.Fatalf("%s: summary %+v", scheme, s)
		}
	}
	// SL loses to HELCFL on every seed.
	if ms.WinRateOverBaseline("SL") != 1 {
		t.Fatalf("HELCFL win rate over SL = %g, want 1", ms.WinRateOverBaseline("SL"))
	}
	out := ms.Render().String()
	if !strings.Contains(out, "win rate") || !strings.Contains(out, "HELCFL") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestRunMultiSeedNoSeeds(t *testing.T) {
	if _, err := RunMultiSeed(Tiny(), IID, nil); err == nil {
		t.Fatal("empty seed list must error")
	}
}
