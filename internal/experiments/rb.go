package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/core"
	"helcfl/internal/grid"
	"helcfl/internal/report"
	"helcfl/internal/selection"
	"helcfl/internal/stats"
	"helcfl/internal/wireless"
)

// RBAblation contrasts the two readings of the paper's "available Z RBs":
// one full-rate TDMA channel (the base system's Fig. 1 discipline) versus
// splitting Z into k equal sub-channels used in parallel, where each upload
// runs k× longer but k proceed at once. It replays HELCFL's selected
// cohorts at maximum frequency and measures the round makespan under each
// interpretation.
type RBAblation struct {
	Rounds int
	Ks     []int
	// Makespan[i] summarizes per-round makespans for Ks[i] sub-channels
	// (k = 1 is the serial TDMA baseline).
	Makespan []stats.Summary
}

// RBCells wraps the RB study as a single cell: the replay shares one
// selection sequence across every k, so it is indivisible.
func RBCells(p Preset, seed int64, rounds int, ks []int) ([]grid.Cell, error) {
	if rounds <= 0 || len(ks) == 0 {
		return nil, fmt.Errorf("experiments: RB ablation needs rounds and channel counts")
	}
	return []grid.Cell{{
		Experiment: "rb",
		Preset:     p.Name,
		Setting:    string(IID),
		Scheme:     "HELCFL",
		Variant:    fmt.Sprintf("rounds=%d,ks=%v", rounds, ks),
		Seed:       seed,
		Run: func(context.Context, *rand.Rand) (any, error) {
			return rbStudy(p, seed, rounds, ks)
		},
	}}, nil
}

// AssembleRBAblation extracts the single RB-study result.
func AssembleRBAblation(res []any) (*RBAblation, error) {
	if len(res) != 1 {
		return nil, fmt.Errorf("experiments: RB study got %d results, want 1", len(res))
	}
	return cellResult[*RBAblation](res, 0)
}

// RunRBAblationGrid runs the RB study through a grid runner.
func RunRBAblationGrid(ctx context.Context, r *grid.Runner, p Preset, seed int64, rounds int, ks []int) (*RBAblation, error) {
	cells, err := RBCells(p, seed, rounds, ks)
	if err != nil {
		return nil, err
	}
	res, err := runCells(ctx, r, cells)
	if err != nil {
		return nil, err
	}
	return AssembleRBAblation(res)
}

// RunRBAblation replays `rounds` HELCFL selections on a fresh environment.
func RunRBAblation(p Preset, seed int64, rounds int, ks []int) (*RBAblation, error) {
	return RunRBAblationGrid(context.Background(), nil, p, seed, rounds, ks)
}

// rbStudy is the serial body of the RB study.
func rbStudy(p Preset, seed int64, rounds int, ks []int) (*RBAblation, error) {
	env, err := CachedEnv(p, IID, seed)
	if err != nil {
		return nil, err
	}
	h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
		Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
	})
	if err != nil {
		return nil, err
	}
	perK := make([][]float64, len(ks))
	for j := 0; j < rounds; j++ {
		sel, _ := h.PlanRound(j)
		baseReqs := make([]wireless.UploadRequest, len(sel))
		for i, q := range sel {
			d := env.Devices[q]
			baseReqs[i] = wireless.UploadRequest{
				User:        q,
				ComputeDone: float64(p.LocalSteps) * d.ComputeDelayAtMax(),
				Duration:    env.Channel.UploadDelay(env.ModelBits, d.TxPower, d.ChannelGain),
			}
		}
		for ki, k := range ks {
			var mk float64
			if k == 1 {
				_, mk = wireless.ScheduleTDMA(baseReqs)
			} else {
				scaled := make([]wireless.UploadRequest, len(baseReqs))
				for i, r := range baseReqs {
					scaled[i] = wireless.UploadRequest{User: r.User, ComputeDone: r.ComputeDone, Duration: r.Duration * float64(k)}
				}
				_, mk = wireless.ScheduleParallel(scaled, k)
			}
			perK[ki] = append(perK[ki], mk)
		}
	}
	out := &RBAblation{Rounds: rounds, Ks: ks}
	for _, ms := range perK {
		out.Makespan = append(out.Makespan, stats.Summarize(ms))
	}
	return out, nil
}

// Render produces the comparison table.
func (a *RBAblation) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Ablation: RB interpretation — serial TDMA vs k parallel sub-channels (%d rounds)", a.Rounds),
		"sub-channels", "round makespan (mean ± std)")
	for i, k := range a.Ks {
		label := fmt.Sprintf("%d (parallel)", k)
		if k == 1 {
			label = "1 (serial TDMA)"
		}
		tb.AddRow(label, fmt.Sprintf("%.2fs ± %.2f", a.Makespan[i].Mean, a.Makespan[i].Std))
	}
	return tb
}
