package experiments

import (
	"fmt"

	"helcfl/internal/core"
	"helcfl/internal/report"
	"helcfl/internal/selection"
	"helcfl/internal/stats"
	"helcfl/internal/wireless"
)

// RBAblation contrasts the two readings of the paper's "available Z RBs":
// one full-rate TDMA channel (the base system's Fig. 1 discipline) versus
// splitting Z into k equal sub-channels used in parallel, where each upload
// runs k× longer but k proceed at once. It replays HELCFL's selected
// cohorts at maximum frequency and measures the round makespan under each
// interpretation.
type RBAblation struct {
	Rounds int
	Ks     []int
	// Makespan[i] summarizes per-round makespans for Ks[i] sub-channels
	// (k = 1 is the serial TDMA baseline).
	Makespan []stats.Summary
}

// RunRBAblation replays `rounds` HELCFL selections on a fresh environment.
func RunRBAblation(p Preset, seed int64, rounds int, ks []int) (*RBAblation, error) {
	if rounds <= 0 || len(ks) == 0 {
		return nil, fmt.Errorf("experiments: RB ablation needs rounds and channel counts")
	}
	env, err := BuildEnv(p, IID, seed)
	if err != nil {
		return nil, err
	}
	h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
		Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
	})
	if err != nil {
		return nil, err
	}
	perK := make([][]float64, len(ks))
	for j := 0; j < rounds; j++ {
		sel, _ := h.PlanRound(j)
		baseReqs := make([]wireless.UploadRequest, len(sel))
		for i, q := range sel {
			d := env.Devices[q]
			baseReqs[i] = wireless.UploadRequest{
				User:        q,
				ComputeDone: float64(p.LocalSteps) * d.ComputeDelayAtMax(),
				Duration:    env.Channel.UploadDelay(env.ModelBits, d.TxPower, d.ChannelGain),
			}
		}
		for ki, k := range ks {
			var mk float64
			if k == 1 {
				_, mk = wireless.ScheduleTDMA(baseReqs)
			} else {
				scaled := make([]wireless.UploadRequest, len(baseReqs))
				for i, r := range baseReqs {
					scaled[i] = wireless.UploadRequest{User: r.User, ComputeDone: r.ComputeDone, Duration: r.Duration * float64(k)}
				}
				_, mk = wireless.ScheduleParallel(scaled, k)
			}
			perK[ki] = append(perK[ki], mk)
		}
	}
	out := &RBAblation{Rounds: rounds, Ks: ks}
	for _, ms := range perK {
		out.Makespan = append(out.Makespan, stats.Summarize(ms))
	}
	return out, nil
}

// Render produces the comparison table.
func (a *RBAblation) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Ablation: RB interpretation — serial TDMA vs k parallel sub-channels (%d rounds)", a.Rounds),
		"sub-channels", "round makespan (mean ± std)")
	for i, k := range a.Ks {
		label := fmt.Sprintf("%d (parallel)", k)
		if k == 1 {
			label = "1 (serial TDMA)"
		}
		tb.AddRow(label, fmt.Sprintf("%.2fs ± %.2f", a.Makespan[i].Mean, a.Makespan[i].Std))
	}
	return tb
}
