package experiments

import (
	"fmt"
	"testing"
)

// Golden pipeline test: the entire stack (data generation → partition →
// scheduling → training → evaluation → cost accounting) is deterministic,
// so a fixed (preset, setting, seed) run must reproduce these values
// exactly. A mismatch means some component's behaviour changed — bump the
// goldens only for deliberate changes.
func TestGoldenTinyCampaign(t *testing.T) {
	env, err := BuildEnv(Tiny(), IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	curve, res, err := RunScheme(env, "HELCFL")
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("best=%.6f final=%.6f time=%.4f energy=%.4f rounds=%d bits=%.0f",
		curve.Best(), curve.Final(), res.TotalTime, res.TotalEnergy, len(res.Records), res.ModelBits)
	const want = "best=0.762500 final=0.762500 time=392.4323 energy=249.9564 rounds=60 bits=208256"
	if got != want {
		t.Fatalf("golden campaign changed:\n got: %s\nwant: %s", got, want)
	}
}

// The same golden must be independent of GOMAXPROCS: parallel client
// training assigns results by index.
func TestGoldenStableAcrossReruns(t *testing.T) {
	run := func() string {
		env, err := BuildEnv(Tiny(), IID, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := RunScheme(env, "HELCFL")
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%.12f/%.12f", res.FinalAccuracy, res.TotalEnergy)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("rerun diverged: %s vs %s", a, b)
	}
}
