package experiments

import (
	"math"
	"sync"
	"testing"

	"helcfl/internal/obs"
)

// TestCachedEnvIdentityAndKeying pins the memoization contract: same key →
// same *Env; observability-only preset differences share entries; any
// environment-shaping difference (seed, setting, preset knob) splits them.
func TestCachedEnvIdentityAndKeying(t *testing.T) {
	ResetEnvCache()
	defer ResetEnvCache()
	p := Tiny()
	a, err := CachedEnv(p, IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedEnv(p, IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same key returned distinct environments")
	}
	withSink := p
	withSink.Sink = obs.NopSink{}
	c, err := CachedEnv(withSink, IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("Sink-only preset difference split the cache entry")
	}
	d, err := CachedEnv(p, IID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("different seeds shared an environment")
	}
	noisy := p
	noisy.Noise += 0.1
	e, err := CachedEnv(noisy, IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e == a {
		t.Fatal("different presets shared an environment")
	}
}

// TestCachedEnvMatchesBuildEnv pins that a cached environment is
// bit-identical to a freshly built one: same data, labels, partition, and
// fleet parameters.
func TestCachedEnvMatchesBuildEnv(t *testing.T) {
	ResetEnvCache()
	defer ResetEnvCache()
	p := Tiny()
	cached, err := CachedEnv(p, NonIID, 5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildEnv(p, NonIID, 5)
	if err != nil {
		t.Fatal(err)
	}
	cd, fd := cached.Synth.Train.X.Data(), fresh.Synth.Train.X.Data()
	if len(cd) != len(fd) {
		t.Fatalf("train sizes differ: %d vs %d", len(cd), len(fd))
	}
	for i := range cd {
		if math.Float64bits(cd[i]) != math.Float64bits(fd[i]) {
			t.Fatalf("train pixel %d differs", i)
		}
	}
	if len(cached.UserData) != len(fresh.UserData) {
		t.Fatalf("user counts differ")
	}
	for q := range cached.UserData {
		if cached.UserData[q].N() != fresh.UserData[q].N() {
			t.Fatalf("user %d has %d samples cached, %d fresh", q, cached.UserData[q].N(), fresh.UserData[q].N())
		}
	}
	for q := range cached.Devices {
		c, f := cached.Devices[q], fresh.Devices[q]
		if c.NumSamples != f.NumSamples ||
			math.Float64bits(c.FMax) != math.Float64bits(f.FMax) ||
			math.Float64bits(c.ChannelGain) != math.Float64bits(f.ChannelGain) {
			t.Fatalf("device %d differs between cached and fresh env", q)
		}
	}
	if math.Float64bits(cached.ModelBits) != math.Float64bits(fresh.ModelBits) {
		t.Fatalf("ModelBits differ: %g vs %g", cached.ModelBits, fresh.ModelBits)
	}
}

// TestCachedEnvConcurrentRunsBitIdentical runs the same scheme twice
// concurrently on one shared cached environment and once on a fresh private
// environment. All three must agree bit-for-bit — and under -race this
// proves concurrent engines never write to the shared fleet (the
// skip-if-equal NumSamples guard).
func TestCachedEnvConcurrentRunsBitIdentical(t *testing.T) {
	ResetEnvCache()
	defer ResetEnvCache()
	p := Tiny()
	shared, err := CachedEnv(p, IID, 3)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		final float64
		err   error
	}
	results := make([]out, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, res, err := RunScheme(shared, "HELCFL")
			if err != nil {
				results[i] = out{err: err}
				return
			}
			results[i] = out{final: res.FinalAccuracy}
		}(i)
	}
	wg.Wait()
	fresh, err := BuildEnv(p, IID, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := RunScheme(fresh, "HELCFL")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("concurrent run %d: %v", i, r.err)
		}
		if math.Float64bits(r.final) != math.Float64bits(want.FinalAccuracy) {
			t.Fatalf("concurrent run %d final accuracy %g, want %g", i, r.final, want.FinalAccuracy)
		}
	}
}
