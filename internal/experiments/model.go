package experiments

import (
	"fmt"
	"math/rand"

	"helcfl/internal/metrics"
	"helcfl/internal/nn"
	"helcfl/internal/report"
)

// ModelAblation trains HELCFL with different model architectures on the
// same data and fleet. Because C_model is derived from the actual
// serialized parameters (Eq. 7), swapping architectures moves upload
// delay/energy as well as accuracy — the coupling this study exposes.
type ModelAblation struct {
	Setting Setting
	Kinds   []string
	// Params, Bits, Best, TimeSec align 1:1 with Kinds.
	Params  []int
	Bits    []float64
	Best    []float64
	TimeSec []float64
}

// RunModelAblation trains HELCFL once per architecture. Supported kinds
// are those of nn.ModelSpec: "logistic", "mlp", "squeezenet-mini".
func RunModelAblation(p Preset, s Setting, seed int64, kinds []string) (*ModelAblation, error) {
	if len(kinds) == 0 {
		return nil, fmt.Errorf("experiments: no model kinds")
	}
	out := &ModelAblation{Setting: s, Kinds: kinds}
	for _, kind := range kinds {
		pp := p
		pp.ModelKind = kind
		env, err := BuildEnv(pp, s, seed)
		if err != nil {
			return nil, err
		}
		model := env.Spec.Build(rand.New(rand.NewSource(seed + 3)))
		curve, res, err := RunScheme(env, "HELCFL")
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", kind, err)
		}
		out.Params = append(out.Params, model.NumParams())
		out.Bits = append(out.Bits, nn.ModelBits(model))
		out.Best = append(out.Best, curve.Best())
		out.TimeSec = append(out.TimeSec, res.TotalTime)
	}
	return out, nil
}

// Render produces the architecture-comparison table.
func (a *ModelAblation) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Ablation (%s): model architecture (C_model follows the real parameter bytes)", a.Setting),
		"model", "params", "C_model (kbit)", "best accuracy", "total delay")
	for i, kind := range a.Kinds {
		tb.AddRow(kind,
			fmt.Sprintf("%d", a.Params[i]),
			fmt.Sprintf("%.0f", a.Bits[i]/1e3),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true))
	}
	return tb
}
