package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/nn"
	"helcfl/internal/report"
)

// ModelAblation trains HELCFL with different model architectures on the
// same data and fleet. Because C_model is derived from the actual
// serialized parameters (Eq. 7), swapping architectures moves upload
// delay/energy as well as accuracy — the coupling this study exposes.
type ModelAblation struct {
	Setting Setting
	Kinds   []string
	// Params, Bits, Best, TimeSec align 1:1 with Kinds.
	Params  []int
	Bits    []float64
	Best    []float64
	TimeSec []float64
}

// modelRun is one architecture's cell result: the trained curve plus the
// serialized size that drives C_model.
type modelRun struct {
	Params int
	Bits   float64
	Run    schemeRun
}

// ModelCells returns one HELCFL training cell per architecture kind.
func ModelCells(p Preset, s Setting, seed int64, kinds []string) ([]grid.Cell, error) {
	if len(kinds) == 0 {
		return nil, fmt.Errorf("experiments: no model kinds")
	}
	cells := make([]grid.Cell, 0, len(kinds))
	for _, k := range kinds {
		kind := k
		pp := p
		pp.ModelKind = kind
		cells = append(cells, grid.Cell{
			Experiment: "model",
			Preset:     p.Name,
			Setting:    string(s),
			Scheme:     "HELCFL",
			Variant:    "model=" + kind,
			Seed:       seed,
			Run: func(context.Context, *rand.Rand) (any, error) {
				env, err := CachedEnv(pp, s, seed)
				if err != nil {
					return nil, err
				}
				model := env.Spec.Build(rand.New(rand.NewSource(seed + 3)))
				curve, res, err := RunScheme(env, "HELCFL")
				if err != nil {
					return nil, err
				}
				return modelRun{
					Params: model.NumParams(),
					Bits:   nn.ModelBits(model),
					Run:    schemeRun{Curve: curve, Res: res},
				}, nil
			},
		})
	}
	return cells, nil
}

// AssembleModelAblation folds ModelCells results into the study.
func AssembleModelAblation(s Setting, kinds []string, res []any) (*ModelAblation, error) {
	if len(res) != len(kinds) {
		return nil, fmt.Errorf("experiments: model study got %d results, want %d", len(res), len(kinds))
	}
	out := &ModelAblation{Setting: s, Kinds: kinds}
	for i := range kinds {
		r, err := cellResult[modelRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Params = append(out.Params, r.Params)
		out.Bits = append(out.Bits, r.Bits)
		out.Best = append(out.Best, r.Run.Curve.Best())
		out.TimeSec = append(out.TimeSec, r.Run.Res.TotalTime)
	}
	return out, nil
}

// RunModelAblationGrid runs the architecture study through a grid runner.
func RunModelAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, kinds []string) (*ModelAblation, error) {
	cells, err := ModelCells(p, s, seed, kinds)
	if err != nil {
		return nil, err
	}
	res, err := runCells(ctx, r, cells)
	if err != nil {
		return nil, err
	}
	return AssembleModelAblation(s, kinds, res)
}

// RunModelAblation trains HELCFL once per architecture. Supported kinds
// are those of nn.ModelSpec: "logistic", "mlp", "squeezenet-mini".
func RunModelAblation(p Preset, s Setting, seed int64, kinds []string) (*ModelAblation, error) {
	return RunModelAblationGrid(context.Background(), nil, p, s, seed, kinds)
}

// Render produces the architecture-comparison table.
func (a *ModelAblation) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Ablation (%s): model architecture (C_model follows the real parameter bytes)", a.Setting),
		"model", "params", "C_model (kbit)", "best accuracy", "total delay")
	for i, kind := range a.Kinds {
		tb.AddRow(kind,
			fmt.Sprintf("%d", a.Params[i]),
			fmt.Sprintf("%.0f", a.Bits[i]/1e3),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true))
	}
	return tb
}
