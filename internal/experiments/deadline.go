package experiments

import (
	"context"
	"fmt"

	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// DeadlineBudget instantiates the paper's problem definition directly:
// constraint (14) caps total training delay, and the objective is the best
// accuracy achievable within that budget. Every scheme trains under the
// same wall-clock deadline.
type DeadlineBudget struct {
	Setting Setting
	// BudgetSec is the shared training deadline.
	BudgetSec float64
	// Best[scheme] is the best accuracy reached before the deadline;
	// Rounds[scheme] counts completed rounds.
	Best   map[string]float64
	Rounds map[string]int
}

// deadlineSchemes are the engine-budgeted schemes; SL rides as a plain
// training cell and is truncated post hoc.
var deadlineSchemes = []string{"HELCFL", "ClassicFL", "FedCS", "FEDL"}

// DeadlineCells returns the four engine-budgeted schemes followed by the
// unbudgeted SL baseline. The SL cell is the same key as a plain SL run, so
// composed campaigns share its execution.
func DeadlineCells(p Preset, s Setting, seed int64, budgetSec float64) ([]grid.Cell, error) {
	if budgetSec <= 0 {
		return nil, fmt.Errorf("experiments: non-positive budget %g", budgetSec)
	}
	cells := make([]grid.Cell, 0, len(deadlineSchemes)+1)
	for _, scheme := range deadlineSchemes {
		cells = append(cells, trainCell(p, s, seed, scheme, fmt.Sprintf("deadline=%g", budgetSec),
			func(c *fl.Config) {
				c.DeadlineSec = budgetSec
				// A generous round cap; the deadline is the binding constraint.
				c.MaxRounds = p.MaxRounds * 10
			}))
	}
	cells = append(cells, trainCell(p, s, seed, "SL", "", nil))
	return cells, nil
}

// AssembleDeadlineBudget folds DeadlineCells results into the comparison,
// truncating SL's trajectory at the budget.
func AssembleDeadlineBudget(s Setting, budgetSec float64, res []any) (*DeadlineBudget, error) {
	if len(res) != len(deadlineSchemes)+1 {
		return nil, fmt.Errorf("experiments: deadline budget got %d results, want %d", len(res), len(deadlineSchemes)+1)
	}
	out := &DeadlineBudget{
		Setting:   s,
		BudgetSec: budgetSec,
		Best:      map[string]float64{},
		Rounds:    map[string]int{},
	}
	for i, scheme := range deadlineSchemes {
		r, err := cellResult[schemeRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Best[scheme] = r.Curve.Best()
		out.Rounds[scheme] = len(r.Res.Records)
	}
	sl, err := cellResult[schemeRun](res, len(deadlineSchemes))
	if err != nil {
		return nil, err
	}
	best := 0.0
	rounds := 0
	for _, pt := range sl.Curve.Points {
		if pt.Time > budgetSec {
			break
		}
		rounds = pt.Round + 1
		if pt.Accuracy > best {
			best = pt.Accuracy
		}
	}
	out.Best["SL"] = best
	out.Rounds["SL"] = rounds
	return out, nil
}

// RunDeadlineBudgetGrid runs the budget comparison through a grid runner.
func RunDeadlineBudgetGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, budgetSec float64) (*DeadlineBudget, error) {
	cells, err := DeadlineCells(p, s, seed, budgetSec)
	if err != nil {
		return nil, err
	}
	res, err := runCells(ctx, r, cells)
	if err != nil {
		return nil, err
	}
	return AssembleDeadlineBudget(s, budgetSec, res)
}

// RunDeadlineBudget runs all five schemes under the deadline. SL uses its
// own engine and is budgeted by truncating its trajectory at the deadline.
func RunDeadlineBudget(p Preset, s Setting, seed int64, budgetSec float64) (*DeadlineBudget, error) {
	return RunDeadlineBudgetGrid(context.Background(), nil, p, s, seed, budgetSec)
}

// Render produces the budget-comparison table.
func (d *DeadlineBudget) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Deadline budget (%s): best accuracy within %.1f min (constraint 14)",
			d.Setting, d.BudgetSec/60),
		"scheme", "rounds completed", "best accuracy")
	for _, scheme := range SchemeOrder {
		tb.AddRow(scheme,
			fmt.Sprintf("%d", d.Rounds[scheme]),
			metrics.FormatPercent(d.Best[scheme]))
	}
	return tb
}
