package experiments

import (
	"fmt"

	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// DeadlineBudget instantiates the paper's problem definition directly:
// constraint (14) caps total training delay, and the objective is the best
// accuracy achievable within that budget. Every scheme trains under the
// same wall-clock deadline.
type DeadlineBudget struct {
	Setting Setting
	// BudgetSec is the shared training deadline.
	BudgetSec float64
	// Best[scheme] is the best accuracy reached before the deadline;
	// Rounds[scheme] counts completed rounds.
	Best   map[string]float64
	Rounds map[string]int
}

// RunDeadlineBudget runs all five schemes under the deadline. SL uses its
// own engine and is budgeted by truncating its trajectory at the deadline.
func RunDeadlineBudget(p Preset, s Setting, seed int64, budgetSec float64) (*DeadlineBudget, error) {
	if budgetSec <= 0 {
		return nil, fmt.Errorf("experiments: non-positive budget %g", budgetSec)
	}
	env, err := BuildEnv(p, s, seed)
	if err != nil {
		return nil, err
	}
	out := &DeadlineBudget{
		Setting:   s,
		BudgetSec: budgetSec,
		Best:      map[string]float64{},
		Rounds:    map[string]int{},
	}
	for _, scheme := range []string{"HELCFL", "ClassicFL", "FedCS", "FEDL"} {
		curve, res, err := RunSchemeWith(env, scheme, func(c *fl.Config) {
			c.DeadlineSec = budgetSec
			// A generous round cap; the deadline is the binding constraint.
			c.MaxRounds = p.MaxRounds * 10
		})
		if err != nil {
			return nil, fmt.Errorf("scheme %s: %w", scheme, err)
		}
		out.Best[scheme] = curve.Best()
		out.Rounds[scheme] = len(res.Records)
	}
	// SL: reuse the standard run and truncate at the budget.
	slCurve, err := runSL(env)
	if err != nil {
		return nil, err
	}
	best := 0.0
	rounds := 0
	for _, pt := range slCurve.Points {
		if pt.Time > budgetSec {
			break
		}
		rounds = pt.Round + 1
		if pt.Accuracy > best {
			best = pt.Accuracy
		}
	}
	out.Best["SL"] = best
	out.Rounds["SL"] = rounds
	return out, nil
}

// Render produces the budget-comparison table.
func (d *DeadlineBudget) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Deadline budget (%s): best accuracy within %.1f min (constraint 14)",
			d.Setting, d.BudgetSec/60),
		"scheme", "rounds completed", "best accuracy")
	for _, scheme := range SchemeOrder {
		tb.AddRow(scheme,
			fmt.Sprintf("%d", d.Rounds[scheme]),
			metrics.FormatPercent(d.Best[scheme]))
	}
	return tb
}
