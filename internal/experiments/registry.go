package experiments

import (
	"fmt"
	"io"

	"helcfl/internal/grid"
)

// This file is the campaign registry: every CLI experiment is a Definition
// that expands to a Plan — a flat list of grid cells plus a Render that
// folds the runner's results into the paper's figures and tables. Because
// cells are keyed by their computation (see grid.Cell.Key), composePlans
// deduplicates shared work: "all" runs each of its ~50 unique training
// cells exactly once even though fig2, table1, fig3 and the headline all
// consume overlapping subsets.

// Output is where a Plan's Render writes: W receives the rendered charts
// and tables; WriteArtifact (optional, nil to skip) stores named files such
// as the Fig. 2 CSVs.
type Output struct {
	W             io.Writer
	WriteArtifact func(name string, data []byte) error
}

// Plan is an expanded experiment: the cells to execute (in any order, on
// any worker count) and the fold from their fixed-index results to human
// output.
type Plan struct {
	Cells  []grid.Cell
	Render func(res []any, out Output) error
}

// Options carries the per-experiment knobs the CLI exposes.
type Options struct {
	// Seeds is the seed count for the "seeds" experiment.
	Seeds int
}

// Definition names one runnable experiment.
type Definition struct {
	Name  string
	Title string
	Plan  func(p Preset, seed int64, opt Options) (*Plan, error)
}

// definitions is the ordered registry backing Registry and
// LookupExperiment.
var definitions = []Definition{
	{"fig1", "Fig. 1 slack illustration", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return fig1Plan(p, seed), nil
	}},
	{"fig2", "Fig. 2 accuracy vs iteration", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return fig2Plan(p, seed), nil
	}},
	{"table1", "Table I delay to desired accuracy", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return table1Plan(p, seed), nil
	}},
	{"fig3", "Fig. 3 DVFS energy reduction", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return fig3Plan(p, seed), nil
	}},
	{"ablation", "design ablations and robustness studies", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return ablationPlan(p, seed)
	}},
	{"seeds", "multi-seed robustness", func(p Preset, seed int64, opt Options) (*Plan, error) {
		return seedsPlan(p, seed, opt.Seeds)
	}},
	{"budget", "deadline-budget campaign (constraint 14)", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return budgetPlan(p, seed)
	}},
	{"battery", "finite-battery fleet campaign", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return batteryPlan(p, seed)
	}},
	{"hier", "hierarchical edge-aggregation tier (E edge aggregators)", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return hierPlan(p, seed)
	}},
	{"all", "full campaign with headline summary", func(p Preset, seed int64, _ Options) (*Plan, error) {
		return allPlan(p, seed)
	}},
}

// Registry returns the experiment definitions in display order.
func Registry() []Definition {
	out := make([]Definition, len(definitions))
	copy(out, definitions)
	return out
}

// LookupExperiment finds a definition by CLI name.
func LookupExperiment(name string) (Definition, bool) {
	for _, d := range definitions {
		if d.Name == name {
			return d, true
		}
	}
	return Definition{}, false
}

// composePlans merges sub-plans into one, deduplicating cells by key —
// equal keys name the same computation, so each runs once and every
// sub-plan's Render sees its own view of the shared results, in order.
func composePlans(subs ...*Plan) *Plan {
	var merged []grid.Cell
	index := map[string]int{}
	views := make([][]int, len(subs))
	for si, sub := range subs {
		view := make([]int, len(sub.Cells))
		for ci, cell := range sub.Cells {
			k := cell.Key()
			gi, ok := index[k]
			if !ok {
				gi = len(merged)
				index[k] = gi
				merged = append(merged, cell)
			}
			view[ci] = gi
		}
		views[si] = view
	}
	return &Plan{
		Cells: merged,
		Render: func(res []any, out Output) error {
			for si, sub := range subs {
				local := make([]any, len(views[si]))
				for ci, gi := range views[si] {
					local[ci] = res[gi]
				}
				if err := sub.Render(local, out); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// settingsBoth is the standard two-panel sweep order.
var settingsBoth = []Setting{IID, NonIID}

func fig1Plan(p Preset, seed int64) *Plan {
	return &Plan{
		Cells: Fig1Cells(p, seed),
		Render: func(res []any, out Output) error {
			demo, err := AssembleFig1Demo(res)
			if err != nil {
				return err
			}
			maxG, dvfsG := demo.RenderGantt()
			fmt.Fprintln(out.W, maxG)
			fmt.Fprintln(out.W, dvfsG)
			maxTbl, dvfsTbl := demo.Render()
			fmt.Fprintln(out.W, maxTbl)
			fmt.Fprintln(out.W, dvfsTbl)
			fmt.Fprintf(out.W, "compute energy: %.2f J at max frequency → %.2f J with Algorithm 3 (%.1f%% saved)\n",
				demo.MaxFreq.ComputeEnergy, demo.WithDVFS.ComputeEnergy,
				(1-demo.WithDVFS.ComputeEnergy/demo.MaxFreq.ComputeEnergy)*100)
			return nil
		},
	}
}

// assembleFig2Panels rebuilds both settings' panels from a two-panel result
// layout (IID cells first, then NonIID).
func assembleFig2Panels(res []any) (map[Setting]*Fig2Result, error) {
	figs := map[Setting]*Fig2Result{}
	o := 0
	for _, s := range settingsBoth {
		f, err := AssembleFig2(s, res[o:o+len(SchemeOrder)])
		if err != nil {
			return nil, err
		}
		figs[s] = f
		o += len(SchemeOrder)
	}
	return figs, nil
}

// fig2BothCells lists both settings' Fig. 2 panels, IID first.
func fig2BothCells(p Preset, seed int64) []grid.Cell {
	var cells []grid.Cell
	for _, s := range settingsBoth {
		cells = append(cells, Fig2Cells(p, s, seed)...)
	}
	return cells
}

func fig2Plan(p Preset, seed int64) *Plan {
	return &Plan{
		Cells: fig2BothCells(p, seed),
		Render: func(res []any, out Output) error {
			figs, err := assembleFig2Panels(res)
			if err != nil {
				return err
			}
			for _, s := range settingsBoth {
				chart, tbl := RenderFig2(figs[s])
				fmt.Fprintln(out.W, chart)
				fmt.Fprintln(out.W, tbl)
				if out.WriteArtifact != nil {
					name := fmt.Sprintf("fig2_%s_%s.csv", p.Name, s)
					if err := out.WriteArtifact(name, []byte(Fig2CSV(figs[s]))); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

func table1Plan(p Preset, seed int64) *Plan {
	return &Plan{
		Cells: fig2BothCells(p, seed),
		Render: func(res []any, out Output) error {
			figs, err := assembleFig2Panels(res)
			if err != nil {
				return err
			}
			tbl := BuildTableI(p, figs)
			for _, blk := range tbl.Settings {
				fmt.Fprintln(out.W, blk.Render())
				for i, target := range blk.Targets {
					sp := blk.Speedups(i)
					if len(sp) == 0 {
						continue
					}
					fmt.Fprintf(out.W, "  speedups at %.0f%%:", target*100)
					for _, scheme := range SchemeOrder {
						if v, ok := sp[scheme]; ok {
							fmt.Fprintf(out.W, " %s %.1f%%", scheme, v)
						}
					}
					fmt.Fprintln(out.W)
				}
				fmt.Fprintln(out.W)
			}
			return nil
		},
	}
}

func fig3Plan(p Preset, seed int64) *Plan {
	slackRich := SlackRich(p)
	var cells []grid.Cell
	for _, s := range settingsBoth {
		cells = append(cells, Fig3Cells(p, s, seed)...)
	}
	cells = append(cells, Fig3Cells(slackRich, IID, seed)...)
	return &Plan{
		Cells: cells,
		Render: func(res []any, out Output) error {
			o := 0
			for _, s := range settingsBoth {
				f3, err := AssembleFig3(p, s, res[o:o+len(fig3Schemes)])
				if err != nil {
					return err
				}
				o += len(fig3Schemes)
				bars, tbl := f3.Render()
				fmt.Fprintln(out.W, bars)
				fmt.Fprintln(out.W, tbl)
			}
			fmt.Fprintln(out.W, "slack-rich regime (maximal DVFS savings; see DESIGN.md):")
			f3u, err := AssembleFig3(slackRich, IID, res[o:o+len(fig3Schemes)])
			if err != nil {
				return err
			}
			_, tbl := f3u.Render()
			fmt.Fprintln(out.W, tbl)
			return nil
		},
	}
}

// sectionPlan wraps cells with a section header and a table-producing fold.
func sectionPlan(header string, cells []grid.Cell, fold func(res []any) (fmt.Stringer, error)) *Plan {
	return &Plan{
		Cells: cells,
		Render: func(res []any, out Output) error {
			tbl, err := fold(res)
			if err != nil {
				return err
			}
			if header != "" {
				fmt.Fprintln(out.W, header)
			}
			fmt.Fprintln(out.W, tbl)
			return nil
		},
	}
}

// Ablation sweep values — the CLI's canonical design-study grid.
var (
	ablationEtas      = []float64{0.5, 0.7, 0.9, 0.99}
	ablationFractions = []float64{0.05, 0.1, 0.2}
	ablationDropouts  = []float64{0, 0.1, 0.3}
	ablationSigmas    = []float64{0, 0.3, 0.6}
	ablationLambdas   = []float64{0.5, 1.0}
	ablationKs        = []int{1, 2, 5, 10}
	ablationModels    = []string{"logistic", "mlp"}
	ablationAlphas    = []float64{0.2, 1.0, 5.0}
	ablationLevels    = []int{0, 16, 8, 4, 2}

	ablationClampRounds    = 100
	ablationRBRounds       = 100
	ablationFairnessRounds = 200
)

func ablationPlan(p Preset, seed int64) (*Plan, error) {
	lambdas := normalizeLambdas(ablationLambdas)
	rbCells, err := RBCells(p, seed, ablationRBRounds, ablationKs)
	if err != nil {
		return nil, err
	}
	modelCells, err := ModelCells(p, IID, seed, ablationModels)
	if err != nil {
		return nil, err
	}
	levelCells, err := DVFSLevelsCells(p, IID, seed, ablationLevels)
	if err != nil {
		return nil, err
	}
	fairCells, err := FairnessCells(p, seed, ablationFairnessRounds)
	if err != nil {
		return nil, err
	}
	return composePlans(
		sectionPlan("η sweep …", EtaCells(p, NonIID, seed, ablationEtas),
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleEtaAblation(NonIID, ablationEtas, res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("selection-fraction sweep …", FractionCells(p, IID, seed, ablationFractions),
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleFractionAblation(IID, ablationFractions, res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("Algorithm 3 clamping study …", ClampCells(p, IID, seed, ablationClampRounds),
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleClampAblation(res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("upload compression vs scheduling …", CompressionCells(p, IID, seed, DefaultCompressors()),
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleCompressionAblation(IID, DefaultCompressors(), res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("upload-failure injection …", DropoutCells(p, IID, seed, ablationDropouts),
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleDropoutAblation(p, IID, ablationDropouts, res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("block-fading channel …", FadingCells(p, IID, seed, ablationSigmas),
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleFadingAblation(IID, ablationSigmas, res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("loss-aware utility extension …", LossAwareCells(p, NonIID, seed, lambdas),
			func(res []any) (fmt.Stringer, error) {
				ext, err := AssembleLossAwareExtension(p, NonIID, lambdas, res)
				if err != nil {
					return nil, err
				}
				return ext.Render(), nil
			}),
		sectionPlan("RB interpretation (serial vs parallel sub-channels) …", rbCells,
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleRBAblation(res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("model architecture (C_model coupling) …", modelCells,
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleModelAblation(IID, ablationModels, res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("partition family (shards vs Dirichlet) …", PartitionCells(p, seed, ablationAlphas),
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssemblePartitionAblation(p, ablationAlphas, res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("discrete DVFS levels …", levelCells,
			func(res []any) (fmt.Stringer, error) {
				ab, err := AssembleDVFSLevelsAblation(IID, ablationLevels, res)
				if err != nil {
					return nil, err
				}
				return ab.Render(), nil
			}),
		sectionPlan("selection fairness …", fairCells,
			func(res []any) (fmt.Stringer, error) {
				st, err := AssembleFairnessStudy(ablationFairnessRounds, res)
				if err != nil {
					return nil, err
				}
				return st.Render(), nil
			}),
	), nil
}

func seedsPlan(p Preset, seed int64, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("seed count %d must be positive", n)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	subs := make([]*Plan, 0, len(settingsBoth))
	for _, st := range settingsBoth {
		s := st
		subs = append(subs, sectionPlan("", MultiSeedCells(p, s, seeds),
			func(res []any) (fmt.Stringer, error) {
				ms, err := AssembleMultiSeed(s, seeds, res)
				if err != nil {
					return nil, err
				}
				return ms.Render(), nil
			}))
	}
	return composePlans(subs...), nil
}

// budgetSecs are the deadline budgets swept by the "budget" experiment —
// roughly 1/8 and 1/2 of a full campaign's duration.
var budgetSecs = []float64{180, 720}

func budgetPlan(p Preset, seed int64) (*Plan, error) {
	var subs []*Plan
	for _, budget := range budgetSecs {
		for _, st := range settingsBoth {
			b, s := budget, st
			cells, err := DeadlineCells(p, s, seed, b)
			if err != nil {
				return nil, err
			}
			subs = append(subs, sectionPlan("", cells,
				func(res []any) (fmt.Stringer, error) {
					db, err := AssembleDeadlineBudget(s, b, res)
					if err != nil {
						return nil, err
					}
					return db.Render(), nil
				}))
		}
	}
	return composePlans(subs...), nil
}

// batterySelections is the per-device budget in units of max-frequency
// selections.
const batterySelections = 8

func batteryPlan(p Preset, seed int64) (*Plan, error) {
	subs := make([]*Plan, 0, len(settingsBoth))
	for _, st := range settingsBoth {
		s := st
		cells, err := BatteryCells(p, s, seed, batterySelections)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sectionPlan("", cells,
			func(res []any) (fmt.Stringer, error) {
				bc, err := AssembleBatteryCampaign(s, res)
				if err != nil {
					return nil, err
				}
				return bc.Render(), nil
			}))
	}
	return composePlans(subs...), nil
}

// headlinePlan consumes the Fig. 2 and Fig. 3 results (shared with their
// own plans via composePlans dedup) and renders the headline summary.
func headlinePlan(p Preset, seed int64) *Plan {
	cells := fig2BothCells(p, seed)
	for _, s := range settingsBoth {
		cells = append(cells, Fig3Cells(p, s, seed)...)
	}
	return &Plan{
		Cells: cells,
		Render: func(res []any, out Output) error {
			figs, err := assembleFig2Panels(res[:2*len(SchemeOrder)])
			if err != nil {
				return err
			}
			fig3s := map[Setting]*Fig3Result{}
			o := 2 * len(SchemeOrder)
			for _, s := range settingsBoth {
				f3, err := AssembleFig3(p, s, res[o:o+len(fig3Schemes)])
				if err != nil {
					return err
				}
				fig3s[s] = f3
				o += len(fig3Schemes)
			}
			tbl := BuildTableI(p, figs)
			fmt.Fprintln(out.W, BuildHeadline(figs, tbl, fig3s).Render())
			return nil
		},
	}
}

// allPlan is the full campaign. Every sub-plan contributes its cells once —
// fig2, table1, fig3 and the headline overlap heavily, and the slack-rich
// Fig. 3 regime is included (historically the standalone fig3 command ran
// it but "all" silently dropped it).
func allPlan(p Preset, seed int64) (*Plan, error) {
	ablation, err := ablationPlan(p, seed)
	if err != nil {
		return nil, err
	}
	return composePlans(
		fig1Plan(p, seed),
		fig2Plan(p, seed),
		table1Plan(p, seed),
		fig3Plan(p, seed),
		ablation,
		headlinePlan(p, seed),
	), nil
}
