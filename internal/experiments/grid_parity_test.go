package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"helcfl/internal/grid"
)

// renderAll captures a plan's rendered stream and artifacts.
func renderAll(t *testing.T, plan *Plan, res []any) (string, map[string]string) {
	t.Helper()
	var buf bytes.Buffer
	arts := map[string]string{}
	err := plan.Render(res, Output{
		W: &buf,
		WriteArtifact: func(name string, data []byte) error {
			arts[name] = string(data)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.String(), arts
}

// TestParallelMatchesSerialForEveryExperiment is the grid's core guarantee:
// for every registered experiment, running the plan on one worker and on
// eight produces identical raw results, rendered bytes, and artifacts.
func TestParallelMatchesSerialForEveryExperiment(t *testing.T) {
	p := goldenPreset()
	opt := Options{Seeds: 2}
	for _, def := range Registry() {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			serialPlan, err := def.Plan(p, 3, opt)
			if err != nil {
				t.Fatal(err)
			}
			parallelPlan, err := def.Plan(p, 3, opt)
			if err != nil {
				t.Fatal(err)
			}
			serialRes, err := (&grid.Runner{Parallel: 1}).Run(context.Background(), serialPlan.Cells)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parRes, err := (&grid.Runner{Parallel: 8}).Run(context.Background(), parallelPlan.Cells)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !reflect.DeepEqual(serialRes, parRes) {
				t.Fatal("parallel raw results differ from serial")
			}
			serialOut, serialArts := renderAll(t, serialPlan, serialRes)
			parOut, parArts := renderAll(t, parallelPlan, parRes)
			if serialOut != parOut {
				t.Fatalf("rendered output differs:\nserial:\n%s\nparallel:\n%s", serialOut, parOut)
			}
			if !reflect.DeepEqual(serialArts, parArts) {
				t.Fatalf("artifacts differ: %v vs %v", serialArts, parArts)
			}
			if len(serialOut) == 0 {
				t.Fatal("experiment rendered nothing")
			}
		})
	}
}

// TestAllPlanDedupsSharedCells pins the composition properties of "all":
// unique keys throughout, the Fig. 2 HELCFL cell shared by fig2, table1,
// fig3 and the headline appears exactly once, and the slack-rich Fig. 3
// regime (historically dropped by runAll) is present.
func TestAllPlanDedupsSharedCells(t *testing.T) {
	p := Tiny()
	def, ok := LookupExperiment("all")
	if !ok {
		t.Fatal("no all experiment")
	}
	plan, err := def.Plan(p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Validate(plan.Cells); err != nil {
		t.Fatalf("composed plan has invalid cells: %v", err)
	}
	helcflIID, slackRich := 0, 0
	for _, c := range plan.Cells {
		if c.Experiment == "train" && c.Scheme == "HELCFL" && c.Variant == "" && c.Setting == string(IID) && c.Preset == p.Name {
			helcflIID++
		}
		if c.Preset == SlackRich(p).Name {
			slackRich++
		}
	}
	if helcflIID != 1 {
		t.Fatalf("shared HELCFL IID train cell appears %d times, want 1", helcflIID)
	}
	if slackRich != len(fig3Schemes) {
		t.Fatalf("slack-rich cells = %d, want %d", slackRich, len(fig3Schemes))
	}
	// The naive concatenation of the sub-plans is far larger than the
	// deduplicated grid (table1 and the headline reuse fig2/fig3 cells).
	naive := 0
	for _, name := range []string{"fig1", "fig2", "table1", "fig3", "ablation"} {
		sub, ok := LookupExperiment(name)
		if !ok {
			t.Fatalf("no %s experiment", name)
		}
		subPlan, err := sub.Plan(p, 1, Options{})
		if err != nil {
			t.Fatalf("%s plan: %v", name, err)
		}
		naive += len(subPlan.Cells)
	}
	if len(plan.Cells) >= naive {
		t.Fatalf("composed plan has %d cells; expected dedup below %d", len(plan.Cells), naive)
	}
}

// TestRegistryNamesAreUniqueAndResolvable guards the CLI dispatch table.
func TestRegistryNamesAreUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, def := range Registry() {
		if def.Name == "" || def.Title == "" {
			t.Fatalf("definition %+v missing name or title", def)
		}
		if seen[def.Name] {
			t.Fatalf("duplicate experiment name %q", def.Name)
		}
		seen[def.Name] = true
		got, ok := LookupExperiment(def.Name)
		if !ok || got.Name != def.Name {
			t.Fatalf("LookupExperiment(%q) = %+v, %v", def.Name, got, ok)
		}
	}
	if _, ok := LookupExperiment("nope"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

// TestSeedsPlanValidatesCount preserves the CLI's historical validation.
func TestSeedsPlanValidatesCount(t *testing.T) {
	def, ok := LookupExperiment("seeds")
	if !ok {
		t.Fatal("no seeds experiment")
	}
	if _, err := def.Plan(Tiny(), 1, Options{Seeds: 0}); err == nil {
		t.Fatal("zero seed count must error")
	}
}
