package experiments

import (
	"strings"
	"testing"
)

func TestModelAblation(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 16
	ab, err := RunModelAblation(p, IID, 1, []string{"logistic", "mlp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Kinds) != 2 {
		t.Fatalf("kinds = %d", len(ab.Kinds))
	}
	// The MLP carries more parameters, hence a bigger C_model and longer
	// uploads on the same fleet.
	if ab.Params[1] <= ab.Params[0] || ab.Bits[1] <= ab.Bits[0] {
		t.Fatalf("mlp should outweigh logistic: %v / %v", ab.Params, ab.Bits)
	}
	if ab.TimeSec[1] <= ab.TimeSec[0] {
		t.Fatalf("bigger model must lengthen training: %g vs %g", ab.TimeSec[1], ab.TimeSec[0])
	}
	for i := range ab.Kinds {
		if ab.Best[i] < 0.3 {
			t.Fatalf("%s: accuracy collapsed to %g", ab.Kinds[i], ab.Best[i])
		}
	}
	out := ab.Render().String()
	if !strings.Contains(out, "C_model") {
		t.Fatalf("render missing column:\n%s", out)
	}
}

func TestModelAblationSqueezeNet(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	p := Tiny()
	p.MaxRounds = 50
	p.EvalEvery = 10
	// A conv net from He init needs more optimization steps than one GD
	// pass per round supplies in 50 rounds; 5 local passes at a gentler
	// rate give it ~250 effective steps (the cost model scales with
	// LocalSteps accordingly).
	p.LR = 0.15
	p.Noise = 1.0
	p.LocalSteps = 5
	ab, err := RunModelAblation(p, IID, 1, []string{"squeezenet-mini"})
	if err != nil {
		t.Fatal(err)
	}
	if ab.Best[0] <= 0.3 {
		t.Fatalf("CNN not learning: %g", ab.Best[0])
	}
}

func TestModelAblationEmptyKinds(t *testing.T) {
	if _, err := RunModelAblation(Tiny(), IID, 1, nil); err == nil {
		t.Fatal("empty kinds must error")
	}
}
