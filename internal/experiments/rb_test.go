package experiments

import (
	"strings"
	"testing"
)

func TestRBAblation(t *testing.T) {
	ab, err := RunRBAblation(Tiny(), 1, 25, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Makespan) != 3 {
		t.Fatalf("entries = %d", len(ab.Makespan))
	}
	for i, s := range ab.Makespan {
		if s.N != 25 || s.Mean <= 0 {
			t.Fatalf("k=%d: summary %+v", ab.Ks[i], s)
		}
	}
	out := ab.Render().String()
	if !strings.Contains(out, "serial TDMA") {
		t.Fatalf("render missing baseline:\n%s", out)
	}
}

func TestRBAblationBadArgs(t *testing.T) {
	if _, err := RunRBAblation(Tiny(), 1, 0, []int{1}); err == nil {
		t.Fatal("zero rounds must error")
	}
	if _, err := RunRBAblation(Tiny(), 1, 5, nil); err == nil {
		t.Fatal("no channel counts must error")
	}
}

// In the compute-dominated calibrated regime, splitting the channel can
// only help when queueing dominates; assert the serial baseline is not
// strictly worst everywhere (sanity on the trade-off logic).
func TestRBAblationTradeOffVisible(t *testing.T) {
	ab, err := RunRBAblation(Tiny(), 2, 20, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	serial := ab.Makespan[0].Mean
	parallel := ab.Makespan[1].Mean
	// The two interpretations must actually differ — otherwise the
	// ablation is vacuous.
	if serial == parallel {
		t.Fatal("serial and parallel interpretations coincide")
	}
}
