package experiments

import (
	"fmt"
	"math/rand"

	"helcfl/internal/compress"
	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// CompressionAblation compares HELCFL against upload-compression variants
// (the paper's Section I rivals): how much wall-clock the smaller C_model
// buys and what it costs in accuracy.
type CompressionAblation struct {
	Setting Setting
	// Names, Ratios, Best, TimeSec, EnergyJ align 1:1 per variant.
	Names   []string
	Ratios  []float64
	Best    []float64
	TimeSec []float64
	EnergyJ []float64
}

// RunCompressionAblation trains HELCFL once per compressor on a shared
// environment. Both the cost model (C_model in Eq. 7) and the training
// (lossy reconstructed uploads) see the compression.
func RunCompressionAblation(p Preset, s Setting, seed int64, compressors []compress.Compressor) (*CompressionAblation, error) {
	env, err := BuildEnv(p, s, seed)
	if err != nil {
		return nil, err
	}
	numParams := env.Spec.Build(rand.New(rand.NewSource(seed + 3))).NumParams()
	out := &CompressionAblation{Setting: s}
	for _, c := range compressors {
		// The planner must see the compressed upload size: it changes
		// T_com in utility ranking, FedCS packing, and Algorithm 3 chains.
		cenv := *env
		cenv.ModelBits = c.BitsFor(numParams)
		planner, err := newPlanner("HELCFL", &cenv, seed)
		if err != nil {
			return nil, err
		}
		res, err := fl.Run(fl.Config{
			Spec:       cenv.Spec,
			Devices:    cenv.Devices,
			Channel:    cenv.Channel,
			UserData:   cenv.UserData,
			Test:       cenv.Synth.Test,
			Planner:    planner,
			LR:         p.LR,
			LocalSteps: p.LocalSteps,
			MaxRounds:  p.MaxRounds,
			EvalEvery:  p.EvalEvery,
			Compressor: c,
			Seed:       seed + 100,
			Sink:       p.Sink,
		})
		if err != nil {
			return nil, fmt.Errorf("compressor %s: %w", c.Name(), err)
		}
		curve := metrics.CurveFromRecords(c.Name(), res.Records)
		out.Names = append(out.Names, c.Name())
		out.Ratios = append(out.Ratios, compress.Ratio(c, numParams))
		out.Best = append(out.Best, curve.Best())
		out.TimeSec = append(out.TimeSec, res.TotalTime)
		out.EnergyJ = append(out.EnergyJ, res.TotalEnergy)
	}
	return out, nil
}

// DefaultCompressors returns the comparison set: fp32 baseline, 10% top-k
// sparsification, and 8-bit uniform quantization.
func DefaultCompressors() []compress.Compressor {
	return []compress.Compressor{
		compress.None{},
		compress.NewTopK(0.1),
		compress.NewUniform(8),
	}
}

// Render produces the comparison table.
func (a *CompressionAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Ablation (%s): upload compression vs scheduling", a.Setting),
		"scheme", "ratio", "best accuracy", "total delay", "total energy (J)")
	for i, name := range a.Names {
		tb.AddRow(name,
			fmt.Sprintf("%.1fx", a.Ratios[i]),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true),
			fmt.Sprintf("%.1f", a.EnergyJ[i]))
	}
	return tb
}
