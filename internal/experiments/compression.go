package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/compress"
	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// CompressionAblation compares HELCFL against upload-compression variants
// (the paper's Section I rivals): how much wall-clock the smaller C_model
// buys and what it costs in accuracy.
type CompressionAblation struct {
	Setting Setting
	// Names, Ratios, Best, TimeSec, EnergyJ align 1:1 per variant.
	Names   []string
	Ratios  []float64
	Best    []float64
	TimeSec []float64
	EnergyJ []float64
}

// compressRun is one compressor's cell result.
type compressRun struct {
	Name  string
	Ratio float64
	Run   schemeRun
}

// CompressionCells returns one HELCFL training cell per compressor. Both
// the cost model (C_model in Eq. 7) and the training (lossy reconstructed
// uploads) see the compression.
func CompressionCells(p Preset, s Setting, seed int64, compressors []compress.Compressor) []grid.Cell {
	cells := make([]grid.Cell, 0, len(compressors))
	for _, comp := range compressors {
		c := comp
		cells = append(cells, grid.Cell{
			Experiment: "compress",
			Preset:     p.Name,
			Setting:    string(s),
			Scheme:     "HELCFL",
			Variant:    "compressor=" + c.Name(),
			Seed:       seed,
			Run: func(context.Context, *rand.Rand) (any, error) {
				env, err := CachedEnv(p, s, seed)
				if err != nil {
					return nil, err
				}
				numParams := env.Spec.Build(rand.New(rand.NewSource(seed + 3))).NumParams()
				// The planner must see the compressed upload size: it changes
				// T_com in utility ranking, FedCS packing, and Algorithm 3 chains.
				cenv := *env
				cenv.ModelBits = c.BitsFor(numParams)
				planner, err := newPlanner("HELCFL", &cenv, seed)
				if err != nil {
					return nil, err
				}
				res, err := fl.Run(fl.Config{
					Spec:       cenv.Spec,
					Devices:    cenv.Devices,
					Channel:    cenv.Channel,
					UserData:   cenv.UserData,
					Test:       cenv.Synth.Test,
					Planner:    planner,
					LR:         p.LR,
					LocalSteps: p.LocalSteps,
					MaxRounds:  p.MaxRounds,
					EvalEvery:  p.EvalEvery,
					Compressor: c,
					Seed:       seed + 100,
					Sink:       p.Sink,
				})
				if err != nil {
					return nil, err
				}
				return compressRun{
					Name:  c.Name(),
					Ratio: compress.Ratio(c, numParams),
					Run:   schemeRun{Curve: metrics.CurveFromRecords(c.Name(), res.Records), Res: res},
				}, nil
			},
		})
	}
	return cells
}

// AssembleCompressionAblation folds CompressionCells results into the study.
func AssembleCompressionAblation(s Setting, compressors []compress.Compressor, res []any) (*CompressionAblation, error) {
	if len(res) != len(compressors) {
		return nil, fmt.Errorf("experiments: compression study got %d results, want %d", len(res), len(compressors))
	}
	out := &CompressionAblation{Setting: s}
	for i := range compressors {
		r, err := cellResult[compressRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, r.Name)
		out.Ratios = append(out.Ratios, r.Ratio)
		out.Best = append(out.Best, r.Run.Curve.Best())
		out.TimeSec = append(out.TimeSec, r.Run.Res.TotalTime)
		out.EnergyJ = append(out.EnergyJ, r.Run.Res.TotalEnergy)
	}
	return out, nil
}

// RunCompressionAblationGrid runs the compression study through a grid
// runner.
func RunCompressionAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, compressors []compress.Compressor) (*CompressionAblation, error) {
	res, err := runCells(ctx, r, CompressionCells(p, s, seed, compressors))
	if err != nil {
		return nil, err
	}
	return AssembleCompressionAblation(s, compressors, res)
}

// RunCompressionAblation trains HELCFL once per compressor.
func RunCompressionAblation(p Preset, s Setting, seed int64, compressors []compress.Compressor) (*CompressionAblation, error) {
	return RunCompressionAblationGrid(context.Background(), nil, p, s, seed, compressors)
}

// DefaultCompressors returns the comparison set: fp32 baseline, 10% top-k
// sparsification, and 8-bit uniform quantization.
func DefaultCompressors() []compress.Compressor {
	return []compress.Compressor{
		compress.None{},
		compress.NewTopK(0.1),
		compress.NewUniform(8),
	}
}

// Render produces the comparison table.
func (a *CompressionAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Ablation (%s): upload compression vs scheduling", a.Setting),
		"scheme", "ratio", "best accuracy", "total delay", "total energy (J)")
	for i, name := range a.Names {
		tb.AddRow(name,
			fmt.Sprintf("%.1fx", a.Ratios[i]),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true),
			fmt.Sprintf("%.1f", a.EnergyJ[i]))
	}
	return tb
}
