package experiments

import (
	"context"
	"fmt"

	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
	"helcfl/internal/wireless"
)

// DropoutAblation sweeps the per-round upload-failure probability — the
// battery/radio faults motivating the paper's energy optimization — and
// reports how gracefully training degrades.
type DropoutAblation struct {
	Setting  Setting
	Dropouts []float64
	Best     []float64
	// RoundsToTarget is the first round reaching the setting's lowest
	// desired accuracy, or -1 when unreached.
	RoundsToTarget []int
	// FailedUploads counts lost uploads across the run.
	FailedUploads []int
}

// DropoutCells returns one HELCFL fault-injection cell per probability.
func DropoutCells(p Preset, s Setting, seed int64, dropouts []float64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(dropouts))
	for _, d := range dropouts {
		prob := d
		cells = append(cells, trainCell(p, s, seed, "HELCFL", fmt.Sprintf("dropout=%g", d),
			func(c *fl.Config) { c.DropoutProb = prob }))
	}
	return cells
}

// AssembleDropoutAblation folds DropoutCells results into the sweep.
func AssembleDropoutAblation(p Preset, s Setting, dropouts []float64, res []any) (*DropoutAblation, error) {
	if len(res) != len(dropouts) {
		return nil, fmt.Errorf("experiments: dropout sweep got %d results, want %d", len(res), len(dropouts))
	}
	out := &DropoutAblation{Setting: s, Dropouts: dropouts}
	target := p.Targets(s)[0]
	for i := range dropouts {
		run, err := cellResult[schemeRun](res, i)
		if err != nil {
			return nil, err
		}
		failed := 0
		for _, r := range run.Res.Records {
			failed += r.Failed
		}
		rounds := -1
		if r, ok := run.Curve.RoundsToAccuracy(target); ok {
			rounds = r
		}
		out.Best = append(out.Best, run.Curve.Best())
		out.RoundsToTarget = append(out.RoundsToTarget, rounds)
		out.FailedUploads = append(out.FailedUploads, failed)
	}
	return out, nil
}

// RunDropoutAblationGrid runs the dropout sweep through a grid runner.
func RunDropoutAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, dropouts []float64) (*DropoutAblation, error) {
	res, err := runCells(ctx, r, DropoutCells(p, s, seed, dropouts))
	if err != nil {
		return nil, err
	}
	return AssembleDropoutAblation(p, s, dropouts, res)
}

// RunDropoutAblation trains HELCFL once per dropout probability.
func RunDropoutAblation(p Preset, s Setting, seed int64, dropouts []float64) (*DropoutAblation, error) {
	return RunDropoutAblationGrid(context.Background(), nil, p, s, seed, dropouts)
}

// Render produces the dropout-sweep table.
func (a *DropoutAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Robustness (%s): upload-failure injection", a.Setting),
		"dropout", "lost uploads", "best accuracy", "rounds to first target")
	for i, d := range a.Dropouts {
		rt := "✗"
		if a.RoundsToTarget[i] >= 0 {
			rt = fmt.Sprintf("%d", a.RoundsToTarget[i])
		}
		tb.AddRow(fmt.Sprintf("%.0f%%", d*100),
			fmt.Sprintf("%d", a.FailedUploads[i]),
			metrics.FormatPercent(a.Best[i]),
			rt)
	}
	return tb
}

// FadingAblation sweeps block-fading severity: the scheduler plans on
// stale initialization-phase channel measurements while the realized
// uplink drifts, so round delays diverge from the plan.
type FadingAblation struct {
	Setting Setting
	Sigmas  []float64
	Best    []float64
	TimeSec []float64
	EnergyJ []float64
}

// FadingCells returns one HELCFL block-fading cell per σ.
func FadingCells(p Preset, s Setting, seed int64, sigmas []float64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(sigmas))
	for _, sg := range sigmas {
		sigma := sg
		cells = append(cells, trainCell(p, s, seed, "HELCFL", fmt.Sprintf("fading=%g", sg),
			func(c *fl.Config) {
				if sigma > 0 {
					c.Gains = wireless.NewBlockFading(sigma, seed+7)
				}
			}))
	}
	return cells
}

// AssembleFadingAblation folds FadingCells results into the sweep.
func AssembleFadingAblation(s Setting, sigmas []float64, res []any) (*FadingAblation, error) {
	if len(res) != len(sigmas) {
		return nil, fmt.Errorf("experiments: fading sweep got %d results, want %d", len(res), len(sigmas))
	}
	out := &FadingAblation{Setting: s, Sigmas: sigmas}
	for i := range sigmas {
		r, err := cellResult[schemeRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Best = append(out.Best, r.Curve.Best())
		out.TimeSec = append(out.TimeSec, r.Res.TotalTime)
		out.EnergyJ = append(out.EnergyJ, r.Res.TotalEnergy)
	}
	return out, nil
}

// RunFadingAblationGrid runs the fading sweep through a grid runner.
func RunFadingAblationGrid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64, sigmas []float64) (*FadingAblation, error) {
	res, err := runCells(ctx, r, FadingCells(p, s, seed, sigmas))
	if err != nil {
		return nil, err
	}
	return AssembleFadingAblation(s, sigmas, res)
}

// RunFadingAblation trains HELCFL once per fading σ.
func RunFadingAblation(p Preset, s Setting, seed int64, sigmas []float64) (*FadingAblation, error) {
	return RunFadingAblationGrid(context.Background(), nil, p, s, seed, sigmas)
}

// Render produces the fading-sweep table.
func (a *FadingAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Robustness (%s): block-fading channel", a.Setting),
		"σ", "best accuracy", "total delay", "total energy (J)")
	for i, sg := range a.Sigmas {
		tb.AddRow(fmt.Sprintf("%.2f", sg),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true),
			fmt.Sprintf("%.1f", a.EnergyJ[i]))
	}
	return tb
}
