package experiments

import (
	"fmt"

	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
	"helcfl/internal/wireless"
)

// runHELCFLWith trains HELCFL on env with extra engine configuration
// applied by mutate (fault injection, fading, compression).
func runHELCFLWith(env *Env, mutate func(*fl.Config)) (metrics.Curve, *fl.Result, error) {
	return RunSchemeWith(env, "HELCFL", mutate)
}

// DropoutAblation sweeps the per-round upload-failure probability — the
// battery/radio faults motivating the paper's energy optimization — and
// reports how gracefully training degrades.
type DropoutAblation struct {
	Setting  Setting
	Dropouts []float64
	Best     []float64
	// RoundsToTarget is the first round reaching the setting's lowest
	// desired accuracy, or -1 when unreached.
	RoundsToTarget []int
	// FailedUploads counts lost uploads across the run.
	FailedUploads []int
}

// RunDropoutAblation trains HELCFL once per dropout probability.
func RunDropoutAblation(p Preset, s Setting, seed int64, dropouts []float64) (*DropoutAblation, error) {
	out := &DropoutAblation{Setting: s, Dropouts: dropouts}
	target := p.Targets(s)[0]
	for _, d := range dropouts {
		env, err := BuildEnv(p, s, seed)
		if err != nil {
			return nil, err
		}
		prob := d
		curve, res, err := runHELCFLWith(env, func(c *fl.Config) { c.DropoutProb = prob })
		if err != nil {
			return nil, fmt.Errorf("dropout %g: %w", d, err)
		}
		failed := 0
		for _, r := range res.Records {
			failed += r.Failed
		}
		rounds := -1
		if r, ok := curve.RoundsToAccuracy(target); ok {
			rounds = r
		}
		out.Best = append(out.Best, curve.Best())
		out.RoundsToTarget = append(out.RoundsToTarget, rounds)
		out.FailedUploads = append(out.FailedUploads, failed)
	}
	return out, nil
}

// Render produces the dropout-sweep table.
func (a *DropoutAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Robustness (%s): upload-failure injection", a.Setting),
		"dropout", "lost uploads", "best accuracy", "rounds to first target")
	for i, d := range a.Dropouts {
		rt := "✗"
		if a.RoundsToTarget[i] >= 0 {
			rt = fmt.Sprintf("%d", a.RoundsToTarget[i])
		}
		tb.AddRow(fmt.Sprintf("%.0f%%", d*100),
			fmt.Sprintf("%d", a.FailedUploads[i]),
			metrics.FormatPercent(a.Best[i]),
			rt)
	}
	return tb
}

// FadingAblation sweeps block-fading severity: the scheduler plans on
// stale initialization-phase channel measurements while the realized
// uplink drifts, so round delays diverge from the plan.
type FadingAblation struct {
	Setting Setting
	Sigmas  []float64
	Best    []float64
	TimeSec []float64
	EnergyJ []float64
}

// RunFadingAblation trains HELCFL once per fading σ.
func RunFadingAblation(p Preset, s Setting, seed int64, sigmas []float64) (*FadingAblation, error) {
	out := &FadingAblation{Setting: s, Sigmas: sigmas}
	for _, sg := range sigmas {
		env, err := BuildEnv(p, s, seed)
		if err != nil {
			return nil, err
		}
		sigma := sg
		curve, res, err := runHELCFLWith(env, func(c *fl.Config) {
			if sigma > 0 {
				c.Gains = wireless.NewBlockFading(sigma, seed+7)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("sigma %g: %w", sg, err)
		}
		out.Best = append(out.Best, curve.Best())
		out.TimeSec = append(out.TimeSec, res.TotalTime)
		out.EnergyJ = append(out.EnergyJ, res.TotalEnergy)
	}
	return out, nil
}

// Render produces the fading-sweep table.
func (a *FadingAblation) Render() *report.Table {
	tb := report.NewTable(fmt.Sprintf("Robustness (%s): block-fading channel", a.Setting),
		"σ", "best accuracy", "total delay", "total energy (J)")
	for i, sg := range a.Sigmas {
		tb.AddRow(fmt.Sprintf("%.2f", sg),
			metrics.FormatPercent(a.Best[i]),
			metrics.FormatDelay(a.TimeSec[i], true),
			fmt.Sprintf("%.1f", a.EnergyJ[i]))
	}
	return tb
}
