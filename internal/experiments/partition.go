package experiments

import (
	"fmt"

	"helcfl/internal/dataset"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// PartitionAblation compares HELCFL under different Non-IID partition
// families: the paper's sort-and-shard split and Dirichlet(α) splits of
// varying severity.
type PartitionAblation struct {
	Labels []string
	// MeanLabels is the average distinct labels per user under each split.
	MeanLabels []float64
	Best       []float64
	// RoundsToLow is the first round reaching the lowest Non-IID target.
	RoundsToLow []int
}

// RunPartitionAblation trains HELCFL once per partition family.
func RunPartitionAblation(p Preset, seed int64, alphas []float64) (*PartitionAblation, error) {
	out := &PartitionAblation{}
	target := p.Targets(NonIID)[0]
	run := func(label string, pp Preset) error {
		env, err := BuildEnv(pp, NonIID, seed)
		if err != nil {
			return err
		}
		curve, _, err := RunScheme(env, "HELCFL")
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		rounds := -1
		if r, ok := curve.RoundsToAccuracy(target); ok {
			rounds = r
		}
		out.Labels = append(out.Labels, label)
		out.MeanLabels = append(out.MeanLabels, dataset.MeanDistinctLabels(env.UserData, pp.Classes))
		out.Best = append(out.Best, curve.Best())
		out.RoundsToLow = append(out.RoundsToLow, rounds)
		return nil
	}
	if err := run(fmt.Sprintf("shards (%d/user)", p.ShardsPerUser), p); err != nil {
		return nil, err
	}
	for _, a := range alphas {
		pp := p
		pp.DirichletAlpha = a
		if err := run(fmt.Sprintf("dirichlet α=%.2f", a), pp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render produces the partition-family table.
func (a *PartitionAblation) Render() *report.Table {
	tb := report.NewTable("Ablation (Non-IID): partition family",
		"partition", "labels/user", "best accuracy", "rounds to first target")
	for i, l := range a.Labels {
		rt := "✗"
		if a.RoundsToLow[i] >= 0 {
			rt = fmt.Sprintf("%d", a.RoundsToLow[i])
		}
		tb.AddRow(l,
			fmt.Sprintf("%.1f", a.MeanLabels[i]),
			metrics.FormatPercent(a.Best[i]),
			rt)
	}
	return tb
}
