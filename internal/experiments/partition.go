package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/dataset"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// PartitionAblation compares HELCFL under different Non-IID partition
// families: the paper's sort-and-shard split and Dirichlet(α) splits of
// varying severity.
type PartitionAblation struct {
	Labels []string
	// MeanLabels is the average distinct labels per user under each split.
	MeanLabels []float64
	Best       []float64
	// RoundsToLow is the first round reaching the lowest Non-IID target.
	RoundsToLow []int
}

// partitionRun is one partition family's cell result: the trained curve
// plus the realized per-user label diversity.
type partitionRun struct {
	MeanLabels float64
	Run        schemeRun
}

// partitionLabels names the families PartitionCells emits, in order.
func partitionLabels(p Preset, alphas []float64) []string {
	labels := []string{fmt.Sprintf("shards (%d/user)", p.ShardsPerUser)}
	for _, a := range alphas {
		labels = append(labels, fmt.Sprintf("dirichlet α=%.2f", a))
	}
	return labels
}

// partitionCell trains HELCFL on one Non-IID partition family.
func partitionCell(pp Preset, seed int64, variant string) grid.Cell {
	return grid.Cell{
		Experiment: "partition",
		Preset:     pp.Name,
		Setting:    string(NonIID),
		Scheme:     "HELCFL",
		Variant:    variant,
		Seed:       seed,
		Run: func(context.Context, *rand.Rand) (any, error) {
			env, err := CachedEnv(pp, NonIID, seed)
			if err != nil {
				return nil, err
			}
			curve, res, err := RunScheme(env, "HELCFL")
			if err != nil {
				return nil, err
			}
			return partitionRun{
				MeanLabels: dataset.MeanDistinctLabels(env.UserData, pp.Classes),
				Run:        schemeRun{Curve: curve, Res: res},
			}, nil
		},
	}
}

// PartitionCells returns the sort-and-shard family followed by one
// Dirichlet(α) family per alpha, matching partitionLabels order.
func PartitionCells(p Preset, seed int64, alphas []float64) []grid.Cell {
	cells := []grid.Cell{partitionCell(p, seed, fmt.Sprintf("shards=%d", p.ShardsPerUser))}
	for _, a := range alphas {
		pp := p
		pp.DirichletAlpha = a
		cells = append(cells, partitionCell(pp, seed, fmt.Sprintf("dirichlet=%g", a)))
	}
	return cells
}

// AssemblePartitionAblation folds PartitionCells results into the study.
func AssemblePartitionAblation(p Preset, alphas []float64, res []any) (*PartitionAblation, error) {
	labels := partitionLabels(p, alphas)
	if len(res) != len(labels) {
		return nil, fmt.Errorf("experiments: partition study got %d results, want %d", len(res), len(labels))
	}
	out := &PartitionAblation{}
	target := p.Targets(NonIID)[0]
	for i, label := range labels {
		r, err := cellResult[partitionRun](res, i)
		if err != nil {
			return nil, err
		}
		rounds := -1
		if n, ok := r.Run.Curve.RoundsToAccuracy(target); ok {
			rounds = n
		}
		out.Labels = append(out.Labels, label)
		out.MeanLabels = append(out.MeanLabels, r.MeanLabels)
		out.Best = append(out.Best, r.Run.Curve.Best())
		out.RoundsToLow = append(out.RoundsToLow, rounds)
	}
	return out, nil
}

// RunPartitionAblationGrid runs the partition study through a grid runner.
func RunPartitionAblationGrid(ctx context.Context, r *grid.Runner, p Preset, seed int64, alphas []float64) (*PartitionAblation, error) {
	res, err := runCells(ctx, r, PartitionCells(p, seed, alphas))
	if err != nil {
		return nil, err
	}
	return AssemblePartitionAblation(p, alphas, res)
}

// RunPartitionAblation trains HELCFL once per partition family.
func RunPartitionAblation(p Preset, seed int64, alphas []float64) (*PartitionAblation, error) {
	return RunPartitionAblationGrid(context.Background(), nil, p, seed, alphas)
}

// Render produces the partition-family table.
func (a *PartitionAblation) Render() *report.Table {
	tb := report.NewTable("Ablation (Non-IID): partition family",
		"partition", "labels/user", "best accuracy", "rounds to first target")
	for i, l := range a.Labels {
		rt := "✗"
		if a.RoundsToLow[i] >= 0 {
			rt = fmt.Sprintf("%d", a.RoundsToLow[i])
		}
		tb.AddRow(l,
			fmt.Sprintf("%.1f", a.MeanLabels[i]),
			metrics.FormatPercent(a.Best[i]),
			rt)
	}
	return tb
}
