package experiments

import (
	"strings"
	"testing"
)

func TestFairnessStudy(t *testing.T) {
	fs, err := RunFairnessStudy(Tiny(), 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, s := range fs.Schemes {
		idx[s] = i
	}
	// Random selection is the fairness gold standard; HELCFL's decay keeps
	// it close; FedCS's fixed cohort is maximally unfair.
	if fs.Jain[idx["FedCS"]] >= fs.Jain[idx["HELCFL"]] {
		t.Fatalf("FedCS Jain %g not below HELCFL %g", fs.Jain[idx["FedCS"]], fs.Jain[idx["HELCFL"]])
	}
	if fs.Jain[idx["HELCFL"]] < 0.8 {
		t.Fatalf("HELCFL Jain %g too unfair; decay broken", fs.Jain[idx["HELCFL"]])
	}
	if fs.Coverage[idx["HELCFL"]] != 1 {
		t.Fatalf("HELCFL coverage %g, want full fleet", fs.Coverage[idx["HELCFL"]])
	}
	if fs.Coverage[idx["FedCS"]] >= 1 {
		t.Fatal("FedCS should not cover the full fleet")
	}
	if !strings.Contains(fs.Render().String(), "Jain") {
		t.Fatal("render missing index")
	}
}

func TestFairnessStudyBadRounds(t *testing.T) {
	if _, err := RunFairnessStudy(Tiny(), 1, 0); err == nil {
		t.Fatal("zero rounds must error")
	}
}
