package experiments

import (
	"fmt"

	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// Fig3Result reproduces Fig. 3: training energy to reach each desired
// accuracy with and without the DVFS frequency determination (Algorithm 3),
// and the percentage reduction it brings.
type Fig3Result struct {
	Setting Setting
	Targets []float64
	// WithDVFS and WithoutDVFS are joules to reach each target.
	WithDVFS, WithoutDVFS []float64
	// Reached marks targets both variants achieved.
	Reached []bool
	// ReductionPct is the energy saving percentage per target.
	ReductionPct []float64
}

// RunFig3 trains HELCFL twice on the same environment — once with
// Algorithm 3 and once pinned to maximum frequencies — and compares the
// energy needed to reach each desired accuracy. Selection is deterministic
// (greedy-decay has no randomness), so both runs see identical selection
// sequences and accuracy curves; only energy differs.
func RunFig3(p Preset, s Setting, seed int64) (*Fig3Result, error) {
	env, err := BuildEnv(p, s, seed)
	if err != nil {
		return nil, err
	}
	return RunFig3Env(env)
}

// RunFig3Env is RunFig3 over a pre-built environment.
func RunFig3Env(env *Env) (*Fig3Result, error) {
	withCurve, _, err := RunScheme(env, "HELCFL")
	if err != nil {
		return nil, fmt.Errorf("HELCFL: %w", err)
	}
	withoutCurve, _, err := RunScheme(env, "HELCFL-noDVFS")
	if err != nil {
		return nil, fmt.Errorf("HELCFL-noDVFS: %w", err)
	}
	targets := env.Preset.Targets(env.Setting)
	out := &Fig3Result{
		Setting:      env.Setting,
		Targets:      targets,
		WithDVFS:     make([]float64, len(targets)),
		WithoutDVFS:  make([]float64, len(targets)),
		Reached:      make([]bool, len(targets)),
		ReductionPct: make([]float64, len(targets)),
	}
	for i, target := range targets {
		ew, okW := withCurve.EnergyToAccuracy(target)
		eo, okO := withoutCurve.EnergyToAccuracy(target)
		out.WithDVFS[i], out.WithoutDVFS[i] = ew, eo
		out.Reached[i] = okW && okO
		if out.Reached[i] && eo > 0 {
			out.ReductionPct[i] = (1 - ew/eo) * 100
		}
	}
	return out, nil
}

// Render produces the Fig. 3 bar chart and companion table.
func (f *Fig3Result) Render() (*report.BarChart, *report.Table) {
	bc := report.NewBarChart(fmt.Sprintf("Fig. 3 (%s): training energy to desired accuracy", f.Setting), " J")
	tb := report.NewTable(fmt.Sprintf("Fig. 3 (%s): DVFS energy reduction", f.Setting),
		"target", "with DVFS (J)", "without DVFS (J)", "reduction")
	for i, t := range f.Targets {
		label := metrics.FormatPercent(t)
		if !f.Reached[i] {
			tb.AddRow(label, "✗", "✗", "—")
			continue
		}
		bc.Add(label+" with DVFS", f.WithDVFS[i])
		bc.Add(label+" w/o DVFS", f.WithoutDVFS[i])
		tb.AddRow(label,
			fmt.Sprintf("%.2f", f.WithDVFS[i]),
			fmt.Sprintf("%.2f", f.WithoutDVFS[i]),
			fmt.Sprintf("%.2f%%", f.ReductionPct[i]))
	}
	return bc, tb
}
