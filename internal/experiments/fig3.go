package experiments

import (
	"context"
	"fmt"

	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/report"
)

// Fig3Result reproduces Fig. 3: training energy to reach each desired
// accuracy with and without the DVFS frequency determination (Algorithm 3),
// and the percentage reduction it brings.
type Fig3Result struct {
	Setting Setting
	Targets []float64
	// WithDVFS and WithoutDVFS are joules to reach each target.
	WithDVFS, WithoutDVFS []float64
	// Reached marks targets both variants achieved.
	Reached []bool
	// ReductionPct is the energy saving percentage per target.
	ReductionPct []float64
}

// fig3Schemes are the two variants Fig. 3 compares; the second pins every
// selected device to its maximum frequency.
var fig3Schemes = []string{"HELCFL", "HELCFL-noDVFS"}

// Fig3Cells returns one Fig. 3 comparison as cells: HELCFL with and
// without Algorithm 3, on the same environment geometry.
func Fig3Cells(p Preset, s Setting, seed int64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(fig3Schemes))
	for _, scheme := range fig3Schemes {
		cells = append(cells, trainCell(p, s, seed, scheme, "", nil))
	}
	return cells
}

// AssembleFig3 folds Fig3Cells results into the energy comparison.
func AssembleFig3(p Preset, s Setting, res []any) (*Fig3Result, error) {
	if len(res) != len(fig3Schemes) {
		return nil, fmt.Errorf("experiments: fig3 got %d results, want %d", len(res), len(fig3Schemes))
	}
	with, err := cellResult[schemeRun](res, 0)
	if err != nil {
		return nil, err
	}
	without, err := cellResult[schemeRun](res, 1)
	if err != nil {
		return nil, err
	}
	return fig3FromCurves(p, s, with.Curve, without.Curve), nil
}

// fig3FromCurves derives the Fig. 3 comparison from the two trajectories.
func fig3FromCurves(p Preset, s Setting, withCurve, withoutCurve metrics.Curve) *Fig3Result {
	targets := p.Targets(s)
	out := &Fig3Result{
		Setting:      s,
		Targets:      targets,
		WithDVFS:     make([]float64, len(targets)),
		WithoutDVFS:  make([]float64, len(targets)),
		Reached:      make([]bool, len(targets)),
		ReductionPct: make([]float64, len(targets)),
	}
	for i, target := range targets {
		ew, okW := withCurve.EnergyToAccuracy(target)
		eo, okO := withoutCurve.EnergyToAccuracy(target)
		out.WithDVFS[i], out.WithoutDVFS[i] = ew, eo
		out.Reached[i] = okW && okO
		if out.Reached[i] && eo > 0 {
			out.ReductionPct[i] = (1 - ew/eo) * 100
		}
	}
	return out
}

// RunFig3Grid runs one Fig. 3 comparison through a grid runner (nil r uses
// the default full-parallelism runner; ctx may be nil).
func RunFig3Grid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64) (*Fig3Result, error) {
	res, err := runCells(ctx, r, Fig3Cells(p, s, seed))
	if err != nil {
		return nil, err
	}
	return AssembleFig3(p, s, res)
}

// RunFig3 trains HELCFL twice on the same environment geometry — once with
// Algorithm 3 and once pinned to maximum frequencies — and compares the
// energy needed to reach each desired accuracy. Selection is deterministic
// (greedy-decay has no randomness), so both runs see identical selection
// sequences and accuracy curves; only energy differs.
func RunFig3(p Preset, s Setting, seed int64) (*Fig3Result, error) {
	return RunFig3Grid(context.Background(), nil, p, s, seed)
}

// RunFig3Env is RunFig3 over a pre-built (possibly mutated) environment —
// the serial path the DVFS-levels ablation uses after editing the fleet's
// operating points in place.
func RunFig3Env(env *Env) (*Fig3Result, error) {
	withCurve, _, err := RunScheme(env, "HELCFL")
	if err != nil {
		return nil, fmt.Errorf("HELCFL: %w", err)
	}
	withoutCurve, _, err := RunScheme(env, "HELCFL-noDVFS")
	if err != nil {
		return nil, fmt.Errorf("HELCFL-noDVFS: %w", err)
	}
	return fig3FromCurves(env.Preset, env.Setting, withCurve, withoutCurve), nil
}

// Render produces the Fig. 3 bar chart and companion table.
func (f *Fig3Result) Render() (*report.BarChart, *report.Table) {
	bc := report.NewBarChart(fmt.Sprintf("Fig. 3 (%s): training energy to desired accuracy", f.Setting), " J")
	tb := report.NewTable(fmt.Sprintf("Fig. 3 (%s): DVFS energy reduction", f.Setting),
		"target", "with DVFS (J)", "without DVFS (J)", "reduction")
	for i, t := range f.Targets {
		label := metrics.FormatPercent(t)
		if !f.Reached[i] {
			tb.AddRow(label, "✗", "✗", "—")
			continue
		}
		bc.Add(label+" with DVFS", f.WithDVFS[i])
		bc.Add(label+" w/o DVFS", f.WithoutDVFS[i])
		tb.AddRow(label,
			fmt.Sprintf("%.2f", f.WithDVFS[i]),
			fmt.Sprintf("%.2f", f.WithoutDVFS[i]),
			fmt.Sprintf("%.2f%%", f.ReductionPct[i]))
	}
	return bc, tb
}
