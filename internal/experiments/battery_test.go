package experiments

import (
	"strings"
	"testing"
)

func TestBatteryCampaignLifetimes(t *testing.T) {
	bc, err := RunBatteryCampaign(Tiny(), IID, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 3's lifetime contribution: HELCFL survives strictly more
	// rounds than the same selection at maximum frequency.
	if bc.RoundsDone["HELCFL"] <= bc.RoundsDone["HELCFL-noDVFS"] {
		t.Fatalf("DVFS did not extend lifetime: %d vs %d rounds",
			bc.RoundsDone["HELCFL"], bc.RoundsDone["HELCFL-noDVFS"])
	}
	// FedCS concentrates load on its fixed fast cohort and halts earliest.
	for _, scheme := range []string{"HELCFL", "ClassicFL", "FEDL"} {
		if bc.RoundsDone["FedCS"] >= bc.RoundsDone[scheme] {
			t.Fatalf("FedCS (%d rounds) should halt before %s (%d rounds)",
				bc.RoundsDone["FedCS"], scheme, bc.RoundsDone[scheme])
		}
	}
	if !bc.Halted["FedCS"] {
		t.Fatal("FedCS must halt when its cohort dies")
	}
	// Longer training under the same budget converts into accuracy.
	if bc.Best["HELCFL"] <= bc.Best["FedCS"] {
		t.Fatalf("HELCFL %g should out-train FedCS %g under batteries",
			bc.Best["HELCFL"], bc.Best["FedCS"])
	}
	out := bc.Render().String()
	if !strings.Contains(out, "devices alive") || !strings.Contains(out, "halted") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

func TestBatteryCampaignBadBudget(t *testing.T) {
	if _, err := RunBatteryCampaign(Tiny(), IID, 1, 0); err == nil {
		t.Fatal("zero budget must error")
	}
}

func TestEstimateSelectedUserRoundEnergy(t *testing.T) {
	env, err := BuildEnv(Tiny(), IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := EstimateSelectedUserRoundEnergy(env)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Fatalf("per-selection energy = %g", e)
	}
}
