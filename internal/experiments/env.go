package experiments

import (
	"math/rand"

	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/nn"
	"helcfl/internal/wireless"
)

// Env is a fully instantiated experiment environment: data, fleet, channel,
// and model geometry. Every scheme in a comparison shares one Env so that
// differences come only from scheduling.
type Env struct {
	Preset  Preset
	Setting Setting
	Seed    int64

	Synth    *dataset.Synth
	UserData []*dataset.Dataset
	Devices  []*device.Device
	Channel  wireless.Channel
	Spec     nn.ModelSpec
	// ModelBits is C_model, computed from the actual serialized parameters
	// of the preset's architecture.
	ModelBits float64
}

// BuildEnv generates the environment for a preset, setting, and seed. Data,
// partition, and fleet derive deterministically from the seed.
func BuildEnv(p Preset, s Setting, seed int64) (*Env, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: p.Classes,
		C:       3, H: 8, W: 8,
		TrainN: p.TrainN,
		TestN:  p.TestN,
		Noise:  p.Noise,
		Seed:   seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	var part *dataset.Partition
	switch {
	case s == IID:
		part = dataset.PartitionIID(synth.Train, p.Users, rng)
	case p.DirichletAlpha > 0:
		part = dataset.PartitionDirichlet(synth.Train, p.Users, p.Classes, p.DirichletAlpha, rng)
	default:
		part = dataset.PartitionNonIID(synth.Train, p.Users, p.Users*p.ShardsPerUser, p.ShardsPerUser, rng)
	}
	userData := dataset.UserDatasets(synth.Train, part)

	devCfg := device.DefaultCatalogConfig()
	devCfg.Q = p.Users
	// The paper's users hold ~500 CIFAR samples each, so one local update
	// costs π·500 = 5×10⁹ cycles (Preset.CyclesPerUpdate). Our synthetic
	// users hold fewer samples; scale π so the per-user update keeps that
	// cycle count (and hence the paper's 2.5–16.7 s compute-delay spread
	// across the 0.3–2.0 GHz fleet). See DESIGN.md §2.
	samplesPerUser := float64(p.TrainN) / float64(p.Users)
	devCfg.CyclesPerSample = p.CyclesPerUpdate / samplesPerUser
	devs := device.NewCatalog(devCfg, rand.New(rand.NewSource(seed+2)))
	for q, d := range devs {
		d.NumSamples = userData[q].N()
	}

	spec := p.Spec()
	bits := nn.ModelBits(spec.Build(rand.New(rand.NewSource(seed + 3))))

	ch := wireless.DefaultChannel()
	if p.ChannelNoise > 0 {
		ch.NoisePower = p.ChannelNoise
	}

	return &Env{
		Preset:    p,
		Setting:   s,
		Seed:      seed,
		Synth:     synth,
		UserData:  userData,
		Devices:   devs,
		Channel:   ch,
		Spec:      spec,
		ModelBits: bits,
	}, nil
}
