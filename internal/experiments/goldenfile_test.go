package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"helcfl/internal/metrics"
)

// Satellite: golden-file JSON regression for the experiment presets. The
// whole pipeline is deterministic for a fixed (preset, setting, seed), and
// Go's JSON encoder prints float64s in shortest round-trip form, so the
// serialized trajectories are an exact fingerprint of the system's numeric
// behaviour. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenFile -update
//
// Caveat: the goldens pin amd64-style strict float64 arithmetic; an
// architecture whose compiler fuses multiply-adds (FMA) could legitimately
// differ in the last ulp. The Go spec only permits fusing within a single
// expression — the nn kernels keep rounding explicit — but if a golden ever
// fails on a new architecture with ulp-level diffs, suspect FMA first.

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenPreset is Tiny shrunk to golden-test scale: big enough to exercise
// selection decay, small enough to run all five schemes in well under a
// second.
func goldenPreset() Preset {
	p := Tiny()
	p.Name = "golden"
	p.Users = 8
	p.TrainN = 240
	p.TestN = 120
	p.MaxRounds = 10
	p.EvalEvery = 2
	p.Hidden = []int{16}
	p.SLEvalUsers = 4
	return p
}

// goldenCurve is the serialized form of one scheme's trajectory.
type goldenCurve struct {
	Scheme string          `json:"scheme"`
	Points []metrics.Point `json:"points"`
}

func toGoldenCurves(r *Fig2Result) []goldenCurve {
	out := make([]goldenCurve, 0, len(SchemeOrder))
	for _, scheme := range SchemeOrder { // fixed order: maps don't serialize stably
		c := r.Curve(scheme)
		out = append(out, goldenCurve{Scheme: scheme, Points: c.Points})
	}
	return out
}

// checkGolden marshals got and compares it byte-for-byte against
// testdata/<name>.golden.json, rewriting the file under -update.
func checkGolden(t *testing.T, name string, got interface{}) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", name+".golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("%s drifted from golden; rerun with -update if the change is deliberate.\n got: %s\nwant: %s",
			path, data, want)
	}
}

// TestGoldenFileFig2 pins the full five-scheme Fig. 2 comparison in both
// data settings at one seed.
func TestGoldenFileFig2(t *testing.T) {
	for _, setting := range []Setting{IID, NonIID} {
		setting := setting
		t.Run(string(setting), func(t *testing.T) {
			res, err := RunFig2(goldenPreset(), setting, 3)
			if err != nil {
				t.Fatal(err)
			}
			name := "fig2_iid"
			if setting == NonIID {
				name = "fig2_noniid"
			}
			checkGolden(t, name, toGoldenCurves(res))
		})
	}
}

// TestGoldenFileExtension pins the loss-aware λ-sweep extension (λ=0 is the
// paper's scheduler, so the baseline column doubles as a second fingerprint
// of the core pipeline).
func TestGoldenFileExtension(t *testing.T) {
	ext, err := RunLossAwareExtension(goldenPreset(), IID, 3, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "extension_iid", ext)
}
