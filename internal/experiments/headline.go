package experiments

import (
	"fmt"

	"helcfl/internal/report"
)

// Headline summarizes the paper's abstract-level claims from a full
// campaign: the largest accuracy enhancement, the largest training speedup,
// and the largest DVFS energy saving across both settings.
type Headline struct {
	// BestAccuracyGainPct is the max percentage-point gap between HELCFL's
	// best accuracy and any baseline's (paper: up to 43.45%, vs SL).
	BestAccuracyGainPct float64
	BestAccuracyGainVs  string
	// BestSpeedupPct is the max time-to-accuracy speedup over any baseline
	// at any target both schemes reach (paper: up to 275.03%, vs FedCS).
	BestSpeedupPct float64
	BestSpeedupVs  string
	// BestEnergySavingPct is the max Fig. 3 reduction (paper: up to 58.25%).
	BestEnergySavingPct float64
}

// BuildHeadline scans the campaign results for the extreme claims.
func BuildHeadline(figs map[Setting]*Fig2Result, table *TableIResult, fig3s map[Setting]*Fig3Result) *Headline {
	h := &Headline{}
	for _, fig := range figs {
		ours := fig.Curve("HELCFL")
		for _, scheme := range SchemeOrder {
			if scheme == "HELCFL" {
				continue
			}
			gain := (ours.Best() - fig.Curve(scheme).Best()) * 100
			if gain > h.BestAccuracyGainPct {
				h.BestAccuracyGainPct = gain
				h.BestAccuracyGainVs = fmt.Sprintf("%s (%s)", scheme, fig.Setting)
			}
		}
	}
	if table != nil {
		for _, blk := range table.Settings {
			for i := range blk.Targets {
				for scheme, sp := range blk.Speedups(i) {
					if sp > h.BestSpeedupPct {
						h.BestSpeedupPct = sp
						h.BestSpeedupVs = fmt.Sprintf("%s (%s @ %.0f%%)", scheme, blk.Setting, blk.Targets[i]*100)
					}
				}
			}
		}
	}
	for _, f3 := range fig3s {
		for i, ok := range f3.Reached {
			if ok && f3.ReductionPct[i] > h.BestEnergySavingPct {
				h.BestEnergySavingPct = f3.ReductionPct[i]
			}
		}
	}
	return h
}

// Render produces the headline table, mirroring the abstract's three
// claims.
func (h *Headline) Render() *report.Table {
	tb := report.NewTable("Headline claims (paper → measured)",
		"claim", "paper", "measured")
	tb.AddRow("highest-accuracy enhancement",
		"up to 43.45%",
		fmt.Sprintf("%.2f%% vs %s", h.BestAccuracyGainPct, h.BestAccuracyGainVs))
	tb.AddRow("training speedup",
		"up to 275.03%",
		fmt.Sprintf("%.2f%% vs %s", h.BestSpeedupPct, h.BestSpeedupVs))
	tb.AddRow("training energy saving",
		"up to 58.25%",
		fmt.Sprintf("%.2f%%", h.BestEnergySavingPct))
	return tb
}
