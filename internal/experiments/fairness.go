package experiments

import (
	"fmt"
	"math/rand"

	"helcfl/internal/fl"
	"helcfl/internal/report"
	"helcfl/internal/selection"
	"helcfl/internal/stats"
)

// FairnessStudy quantifies how evenly each selection policy spreads
// participation across the fleet: Jain's fairness index over per-user
// selection counts, and fleet coverage. Even spread matters twice — Eq. 19
// (all data enters training) and battery lifetime (drain is proportional
// to participation).
type FairnessStudy struct {
	Rounds   int
	Schemes  []string
	Jain     []float64
	Coverage []float64 // fraction of users ever selected
}

// RunFairnessStudy replays `rounds` scheduling decisions per scheme (no
// training — selection only).
func RunFairnessStudy(p Preset, seed int64, rounds int) (*FairnessStudy, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("experiments: non-positive rounds %d", rounds)
	}
	env, err := BuildEnv(p, IID, seed)
	if err != nil {
		return nil, err
	}
	planners := map[string]fl.Planner{}
	h, err := newPlanner("HELCFL", env, seed)
	if err != nil {
		return nil, err
	}
	planners["HELCFL"] = h
	planners["ClassicFL"] = selection.NewClassicFL(env.Devices, p.Fraction, rand.New(rand.NewSource(seed+11)))
	planners["FedCS"] = selection.NewFedCS(env.Devices, env.Channel, env.ModelBits, p.FedCSDeadlineSec, p.LocalSteps)

	out := &FairnessStudy{Rounds: rounds}
	for _, scheme := range []string{"HELCFL", "ClassicFL", "FedCS"} {
		counts := make([]float64, len(env.Devices))
		for j := 0; j < rounds; j++ {
			sel, _ := planners[scheme].PlanRound(j)
			for _, q := range sel {
				counts[q]++
			}
		}
		covered := 0
		for _, c := range counts {
			if c > 0 {
				covered++
			}
		}
		out.Schemes = append(out.Schemes, scheme)
		out.Jain = append(out.Jain, stats.JainIndex(counts))
		out.Coverage = append(out.Coverage, float64(covered)/float64(len(env.Devices)))
	}
	return out, nil
}

// Render produces the fairness table.
func (f *FairnessStudy) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Selection fairness over %d rounds (Jain index; 1 = uniform)", f.Rounds),
		"scheme", "Jain index", "fleet coverage")
	for i, s := range f.Schemes {
		tb.AddRow(s,
			fmt.Sprintf("%.3f", f.Jain[i]),
			fmt.Sprintf("%.0f%%", f.Coverage[i]*100))
	}
	return tb
}
