package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/grid"
	"helcfl/internal/report"
	"helcfl/internal/stats"
)

// FairnessStudy quantifies how evenly each selection policy spreads
// participation across the fleet: Jain's fairness index over per-user
// selection counts, and fleet coverage. Even spread matters twice — Eq. 19
// (all data enters training) and battery lifetime (drain is proportional
// to participation).
type FairnessStudy struct {
	Rounds   int
	Schemes  []string
	Jain     []float64
	Coverage []float64 // fraction of users ever selected
}

// fairnessSchemes are the selection policies the study replays.
var fairnessSchemes = []string{"HELCFL", "ClassicFL", "FedCS"}

// fairnessRun is one scheme's replay outcome.
type fairnessRun struct {
	Jain     float64
	Coverage float64
}

// FairnessCells returns one selection-replay cell per scheme (no training).
// Each cell builds its own planner via newPlanner, matching the historical
// per-scheme RNG streams (ClassicFL seed+11).
func FairnessCells(p Preset, seed int64, rounds int) ([]grid.Cell, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("experiments: non-positive rounds %d", rounds)
	}
	cells := make([]grid.Cell, 0, len(fairnessSchemes))
	for _, sc := range fairnessSchemes {
		scheme := sc
		cells = append(cells, grid.Cell{
			Experiment: "fairness",
			Preset:     p.Name,
			Setting:    string(IID),
			Scheme:     scheme,
			Variant:    fmt.Sprintf("rounds=%d", rounds),
			Seed:       seed,
			Run: func(context.Context, *rand.Rand) (any, error) {
				env, err := CachedEnv(p, IID, seed)
				if err != nil {
					return nil, err
				}
				planner, err := newPlanner(scheme, env, seed)
				if err != nil {
					return nil, err
				}
				counts := make([]float64, len(env.Devices))
				for j := 0; j < rounds; j++ {
					sel, _ := planner.PlanRound(j)
					for _, q := range sel {
						counts[q]++
					}
				}
				covered := 0
				for _, c := range counts {
					if c > 0 {
						covered++
					}
				}
				return fairnessRun{
					Jain:     stats.JainIndex(counts),
					Coverage: float64(covered) / float64(len(env.Devices)),
				}, nil
			},
		})
	}
	return cells, nil
}

// AssembleFairnessStudy folds FairnessCells results into the study.
func AssembleFairnessStudy(rounds int, res []any) (*FairnessStudy, error) {
	if len(res) != len(fairnessSchemes) {
		return nil, fmt.Errorf("experiments: fairness study got %d results, want %d", len(res), len(fairnessSchemes))
	}
	out := &FairnessStudy{Rounds: rounds}
	for i, scheme := range fairnessSchemes {
		r, err := cellResult[fairnessRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Schemes = append(out.Schemes, scheme)
		out.Jain = append(out.Jain, r.Jain)
		out.Coverage = append(out.Coverage, r.Coverage)
	}
	return out, nil
}

// RunFairnessStudyGrid runs the study through a grid runner.
func RunFairnessStudyGrid(ctx context.Context, r *grid.Runner, p Preset, seed int64, rounds int) (*FairnessStudy, error) {
	cells, err := FairnessCells(p, seed, rounds)
	if err != nil {
		return nil, err
	}
	res, err := runCells(ctx, r, cells)
	if err != nil {
		return nil, err
	}
	return AssembleFairnessStudy(rounds, res)
}

// RunFairnessStudy replays `rounds` scheduling decisions per scheme (no
// training — selection only).
func RunFairnessStudy(p Preset, seed int64, rounds int) (*FairnessStudy, error) {
	return RunFairnessStudyGrid(context.Background(), nil, p, seed, rounds)
}

// Render produces the fairness table.
func (f *FairnessStudy) Render() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Selection fairness over %d rounds (Jain index; 1 = uniform)", f.Rounds),
		"scheme", "Jain index", "fleet coverage")
	for i, s := range f.Schemes {
		tb.AddRow(s,
			fmt.Sprintf("%.3f", f.Jain[i]),
			fmt.Sprintf("%.0f%%", f.Coverage[i]*100))
	}
	return tb
}
