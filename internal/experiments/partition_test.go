package experiments

import (
	"strings"
	"testing"
)

func TestPartitionAblation(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 24
	ab, err := RunPartitionAblation(p, 1, []float64{0.2, 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Labels) != 3 {
		t.Fatalf("entries = %d", len(ab.Labels))
	}
	// Dirichlet α=0.2 is more skewed than α=5 — fewer labels per user.
	if ab.MeanLabels[1] >= ab.MeanLabels[2] {
		t.Fatalf("label skew ordering wrong: α=0.2 → %g, α=5 → %g",
			ab.MeanLabels[1], ab.MeanLabels[2])
	}
	for i := range ab.Labels {
		if ab.Best[i] < 0.3 {
			t.Fatalf("%s: accuracy collapsed to %g", ab.Labels[i], ab.Best[i])
		}
	}
	out := ab.Render().String()
	if !strings.Contains(out, "dirichlet") || !strings.Contains(out, "shards") {
		t.Fatalf("render missing families:\n%s", out)
	}
}

func TestPresetDirichletAlphaChangesPartition(t *testing.T) {
	p := Tiny()
	shard, err := BuildEnv(p, NonIID, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.DirichletAlpha = 0.3
	dir, err := BuildEnv(p, NonIID, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for q := range shard.UserData {
		if shard.UserData[q].N() != dir.UserData[q].N() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Dirichlet alpha did not change the partition")
	}
}
