package experiments

import (
	"strings"
	"testing"
)

func TestDeadlineBudget(t *testing.T) {
	p := Tiny()
	// A budget of ~1/3 of the usual campaign duration forces the deadline
	// exit for every scheme.
	db, err := RunDeadlineBudget(p, IID, 1, 120)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range SchemeOrder {
		if _, ok := db.Best[scheme]; !ok {
			t.Fatalf("missing scheme %s", scheme)
		}
		if db.Rounds[scheme] <= 0 {
			t.Fatalf("%s completed no rounds", scheme)
		}
	}
	// HELCFL's cheaper rounds let it out-train Classic FL under the budget
	// (the paper's joint objective).
	if db.Best["HELCFL"] < db.Best["ClassicFL"]-0.05 {
		t.Fatalf("HELCFL %g far below ClassicFL %g under budget",
			db.Best["HELCFL"], db.Best["ClassicFL"])
	}
	// SL stays collapsed regardless of budget.
	if db.Best["SL"] >= db.Best["HELCFL"] {
		t.Fatal("SL should trail under any budget")
	}
	out := db.Render().String()
	if !strings.Contains(out, "constraint 14") {
		t.Fatalf("render missing title:\n%s", out)
	}
}

func TestDeadlineBudgetRejectsBadBudget(t *testing.T) {
	if _, err := RunDeadlineBudget(Tiny(), IID, 1, 0); err == nil {
		t.Fatal("zero budget must error")
	}
}

func TestDeadlineBudgetMoreTimeNeverHurts(t *testing.T) {
	p := Tiny()
	p.MaxRounds = 40
	short, err := RunDeadlineBudget(p, IID, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunDeadlineBudget(p, IID, 2, 240)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"HELCFL", "ClassicFL"} {
		if long.Best[scheme] < short.Best[scheme]-1e-9 {
			t.Fatalf("%s: more budget reduced accuracy %g → %g",
				scheme, short.Best[scheme], long.Best[scheme])
		}
		if long.Rounds[scheme] < short.Rounds[scheme] {
			t.Fatalf("%s: more budget completed fewer rounds", scheme)
		}
	}
}
