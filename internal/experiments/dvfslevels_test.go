package experiments

import (
	"strings"
	"testing"
)

func TestDVFSLevelsAblation(t *testing.T) {
	p := Tiny()
	ab, err := RunDVFSLevelsAblation(p, IID, 1, []int{0, 8, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Labels) != 3 || ab.Labels[0] != "continuous" {
		t.Fatalf("labels = %v", ab.Labels)
	}
	for i := range ab.Labels {
		if !ab.Reached[i] {
			t.Fatalf("%s: target unreached", ab.Labels[i])
		}
	}
	cont, eight, two := ab.ReductionPct[0], ab.ReductionPct[1], ab.ReductionPct[2]
	// Quantization can only lose savings relative to the continuous ideal,
	// and two coarse levels lose more than eight.
	if eight > cont+1e-9 {
		t.Fatalf("8 levels (%.2f%%) beat continuous (%.2f%%)", eight, cont)
	}
	if two > eight+1e-9 {
		t.Fatalf("2 levels (%.2f%%) beat 8 levels (%.2f%%)", two, eight)
	}
	// With only {f_min, f_max} the snap-up rule sends every mid-range
	// request to f_max, so savings collapse toward zero — the ablation's
	// point: DVFS granularity is a prerequisite for Algorithm 3's gains.
	if cont <= 0 || eight <= 0 {
		t.Fatalf("continuous (%.2f%%) and 8-level (%.2f%%) savings must be positive", cont, eight)
	}
	if !strings.Contains(ab.Render().String(), "continuous") {
		t.Fatal("render missing baseline")
	}
}

func TestDVFSLevelsAblationRejectsOneLevel(t *testing.T) {
	if _, err := RunDVFSLevelsAblation(Tiny(), IID, 1, []int{1}); err == nil {
		t.Fatal("1 level must error")
	}
}
