package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The fleet wire codec: every concrete type a registered experiment's cells
// can place in the grid result slice, gob-registered so a worker can ship
// the interface-typed value back to the coordinator. Registration names are
// stable as long as the package path and type names are — coordinator and
// workers run the same binary version (enforced by the plan fingerprint
// handshake), so both sides agree.
func init() {
	gob.Register(schemeRun{})
	gob.Register(hierRun{})
	gob.Register(modelRun{})
	gob.Register(batteryRun{})
	gob.Register(compressRun{})
	gob.Register(partitionRun{})
	gob.Register(fairnessRun{})
	gob.Register(&ClampAblation{})
	gob.Register(&RBAblation{})
	gob.Register(&Fig1Demo{})
	gob.Register(&Fig3Result{})
}

// cellEnvelope carries one cell's interface-typed result through gob.
type cellEnvelope struct {
	V any
}

// EncodeCellResult serializes one cell's result for transport to the
// coordinator. Training results travel without their final model (see
// fl.Result.GobEncode); everything an Assemble fold reads survives
// bit-exactly, so a merged distributed sweep renders byte-identically to a
// serial run.
//
// One caveat, pinned by TestGobNormalizesNegativeZeroStructFields: gob
// omits struct fields equal to their zero value, and -0.0 == 0, so a
// negative-zero float64 *struct field* (not slice element) decodes as +0.
// No cell result can produce one — every float in the domain is a
// non-negative delay/energy/accuracy or a difference of such measured
// values, and IEEE x−x rounds to +0 — and the fleet↔serial parity tests
// byte-compare real rendered sweeps end to end, which is the guarantee
// that matters.
func EncodeCellResult(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cellEnvelope{V: v}); err != nil {
		return nil, fmt.Errorf("experiments: encode cell result: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCellResult reverses EncodeCellResult.
func DecodeCellResult(data []byte) (any, error) {
	var env cellEnvelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, fmt.Errorf("experiments: decode cell result: %w", err)
	}
	return env.V, nil
}
