package experiments

import (
	"testing"

	"helcfl/internal/grid"
)

// TestHierSingleEdgeMatchesFlatEndToEnd pins the whole E = 1 hierarchical
// pipeline — planner, edge round simulation, two-level FedAvg — bit-identical
// to the flat HELCFL training run: same selections, same delays, same
// evaluated accuracies at every point.
func TestHierSingleEdgeMatchesFlatEndToEnd(t *testing.T) {
	p := goldenPreset()
	flat, _, err := RunScheme(mustEnv(t, p, IID, 3), "HELCFL")
	if err != nil {
		t.Fatal(err)
	}
	hs, err := RunHierStudy(p, IID, 3, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runCells(nil, nil, mustHierCells(t, p, IID, 3, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := cellResult[hierRun](res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.Curve.Points) != len(flat.Points) {
		t.Fatalf("point counts %d vs %d", len(hr.Curve.Points), len(flat.Points))
	}
	for i := range flat.Points {
		if flat.Points[i] != hr.Curve.Points[i] {
			t.Fatalf("point %d diverges: flat %+v, hier %+v", i, flat.Points[i], hr.Curve.Points[i])
		}
	}
	if hs.BestAcc[0] != hr.Res.BestAccuracy {
		t.Fatalf("study best acc %v != run best acc %v", hs.BestAcc[0], hr.Res.BestAccuracy)
	}
}

func mustEnv(t *testing.T, p Preset, s Setting, seed int64) *Env {
	t.Helper()
	env, err := CachedEnv(p, s, seed)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func mustHierCells(t *testing.T, p Preset, s Setting, seed int64, counts []int) []grid.Cell {
	t.Helper()
	cells, err := HierCells(p, s, seed, counts)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestGoldenFileHier pins the hierarchical edge-aggregation sweep at golden
// scale: 8 users across E ∈ {1, 2, 4} edge aggregators. E = 1 doubles as
// yet another fingerprint of the flat pipeline (it is bit-identical to it).
func TestGoldenFileHier(t *testing.T) {
	hs, err := RunHierStudy(goldenPreset(), IID, 3, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "hier_iid", hs)
}

// TestHierCellsRejectsBadCounts covers the constructor guards.
func TestHierCellsRejectsBadCounts(t *testing.T) {
	p := goldenPreset()
	if _, err := HierCells(p, IID, 3, []int{0}); err == nil {
		t.Fatal("zero edge count must be rejected")
	}
	if _, err := HierCells(p, IID, 3, []int{p.Users + 1}); err == nil {
		t.Fatal("edge count above fleet size must be rejected")
	}
}
