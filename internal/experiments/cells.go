package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/obs/span"
)

// This file is the bridge between the experiment drivers and the campaign
// grid (internal/grid): every driver expresses its study as cells — built
// by a *Cells function — and folds the runner's results back into its
// result type with an Assemble* function. The exported Run* entry points
// keep their historical signatures and delegate to the cells through
// runCells, so a library caller gets parallel execution for free while the
// registry (registry.go) composes the same cells into larger campaigns.

// defaultRunner backs the exported Run* drivers: full host parallelism, no
// attached observability. Cells rebuild their environments from the seed,
// so parallel execution is bit-identical to the historical serial loops.
var defaultRunner = &grid.Runner{}

// runCells executes cells on r, defaulting to the package runner; ctx may
// be nil.
func runCells(ctx context.Context, r *grid.Runner, cells []grid.Cell) ([]any, error) {
	if r == nil {
		r = defaultRunner
	}
	return r.Run(ctx, cells)
}

// schemeRun is the result of one standard training cell: the evaluated
// curve plus the engine result the assemblers mine for totals. SL runs
// carry a nil Res (the separated-learning engine has its own result type;
// only the curve is comparable).
type schemeRun struct {
	Curve metrics.Curve
	Res   *fl.Result
}

// cellResult extracts a typed cell result, reporting authoring bugs (an
// assembler paired with the wrong cells) as errors rather than panics.
func cellResult[T any](res []any, i int) (T, error) {
	var zero T
	if i < 0 || i >= len(res) {
		return zero, fmt.Errorf("experiments: cell result %d out of range (%d results)", i, len(res))
	}
	v, ok := res[i].(T)
	if !ok {
		return zero, fmt.Errorf("experiments: cell result %d is %T, want %T", i, res[i], zero)
	}
	return v, nil
}

// trainCell is the workhorse cell: build the (preset, setting, seed)
// environment, train one scheme, return a schemeRun. variant must name any
// config mutation beyond the preset defaults (grid keys treat equal-key
// cells as interchangeable); mutate may be nil. The "SL" scheme routes to
// the separated-learning engine and ignores mutate.
func trainCell(p Preset, s Setting, seed int64, scheme, variant string, mutate func(*fl.Config)) grid.Cell {
	return grid.Cell{
		Experiment: "train",
		Preset:     p.Name,
		Setting:    string(s),
		Scheme:     scheme,
		Variant:    variant,
		Seed:       seed,
		Run: func(ctx context.Context, _ *rand.Rand) (any, error) {
			// The env-build vs run split is the cell-level cost attribution
			// ROADMAP item 3 needs: every cell rebuilds its environment from
			// the seed (that is what keeps parallel runs bit-identical), and
			// these two spans say what that independence costs.
			_, envSp := span.StartCtx(ctx, "cell.envbuild")
			env, err := CachedEnv(p, s, seed)
			envSp.End()
			if err != nil {
				return nil, err
			}
			runCtx, runSp := span.StartCtx(ctx, "cell.run")
			defer runSp.End()
			if scheme == "SL" {
				curve, err := runSL(env)
				if err != nil {
					return nil, err
				}
				return schemeRun{Curve: curve}, nil
			}
			// Thread the trace into the engine config so round phases nest
			// under this cell.
			traced := mutate
			if rec, parent := span.FromContext(runCtx); rec != nil {
				traced = func(c *fl.Config) {
					c.Trace = rec
					c.TraceParent = parent
					if mutate != nil {
						mutate(c)
					}
				}
			}
			curve, res, err := RunSchemeWith(env, scheme, traced)
			if err != nil {
				return nil, err
			}
			return schemeRun{Curve: curve, Res: res}, nil
		},
	}
}
