package experiments

import (
	"fmt"
	"math/rand"

	"helcfl/internal/core"
	"helcfl/internal/fl"
	"helcfl/internal/metrics"
	"helcfl/internal/selection"
)

// SchemeOrder is the display order of Fig. 2's five curves.
var SchemeOrder = []string{"HELCFL", "ClassicFL", "FedCS", "FEDL", "SL"}

// Fig2Result holds one setting's accuracy-vs-iteration comparison.
type Fig2Result struct {
	Setting Setting
	// Curves maps scheme name → evaluated trajectory.
	Curves map[string]metrics.Curve
}

// Curve returns a scheme's curve, panicking on unknown names to catch
// typos in report code.
func (r *Fig2Result) Curve(scheme string) metrics.Curve {
	c, ok := r.Curves[scheme]
	if !ok {
		panic(fmt.Sprintf("experiments: no curve for scheme %q", scheme))
	}
	return c
}

// newPlanner builds the planner for a named scheme over the environment.
// Each scheme gets an independent, deterministically seeded RNG.
func newPlanner(name string, env *Env, seed int64) (fl.Planner, error) {
	p := env.Preset
	switch name {
	case "HELCFL":
		return selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
			Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
		})
	case "HELCFL-noDVFS":
		h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
			Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
		})
		if err != nil {
			return nil, err
		}
		h.DisableDVFS = true
		return h, nil
	case "ClassicFL":
		return selection.NewClassicFL(env.Devices, p.Fraction, rand.New(rand.NewSource(seed+11))), nil
	case "FedCS":
		return selection.NewFedCS(env.Devices, env.Channel, env.ModelBits, p.FedCSDeadlineSec, p.LocalSteps), nil
	case "FEDL":
		return selection.NewFEDL(env.Devices, p.Fraction, p.FEDLK, rand.New(rand.NewSource(seed+13))), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// RunScheme executes one FL scheme on the environment and returns its curve.
func RunScheme(env *Env, scheme string) (metrics.Curve, *fl.Result, error) {
	return RunSchemeWith(env, scheme, nil)
}

// RunSchemeWith is RunScheme with extra engine configuration applied by
// mutate before the run (deadline, fault injection, fading, compression).
func RunSchemeWith(env *Env, scheme string, mutate func(*fl.Config)) (metrics.Curve, *fl.Result, error) {
	planner, err := newPlanner(scheme, env, env.Seed)
	if err != nil {
		return metrics.Curve{}, nil, err
	}
	cfg := fl.Config{
		Spec:       env.Spec,
		Devices:    env.Devices,
		Channel:    env.Channel,
		UserData:   env.UserData,
		Test:       env.Synth.Test,
		Planner:    planner,
		LR:         env.Preset.LR,
		LocalSteps: env.Preset.LocalSteps,
		MaxRounds:  env.Preset.MaxRounds,
		EvalEvery:  env.Preset.EvalEvery,
		Seed:       env.Seed + 100, // model init shared by all schemes
		Sink:       env.Preset.Sink,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := fl.Run(cfg)
	if err != nil {
		return metrics.Curve{}, nil, err
	}
	return metrics.CurveFromRecords(scheme, res.Records), res, nil
}

// runSL executes the separated-learning baseline and adapts it to a curve.
func runSL(env *Env) (metrics.Curve, error) {
	p := env.Preset
	res, err := fl.RunSL(fl.SLConfig{
		Spec:       env.Spec,
		Devices:    env.Devices,
		Channel:    env.Channel,
		UserData:   env.UserData,
		Test:       env.Synth.Test,
		Fraction:   p.Fraction,
		LR:         p.LR,
		LocalSteps: p.LocalSteps,
		MaxRounds:  p.MaxRounds,
		EvalEvery:  p.EvalEvery,
		EvalUsers:  p.SLEvalUsers,
		Seed:       env.Seed + 100,
	})
	if err != nil {
		return metrics.Curve{}, err
	}
	return metrics.CurveFromRecords("SL", res.Records), nil
}

// RunFig2 reproduces one panel of Fig. 2: all five schemes trained on the
// same environment, reporting accuracy vs training iteration.
func RunFig2(p Preset, s Setting, seed int64) (*Fig2Result, error) {
	env, err := BuildEnv(p, s, seed)
	if err != nil {
		return nil, err
	}
	return RunFig2Env(env)
}

// RunFig2Env is RunFig2 over a pre-built environment (so Table I can reuse
// the same runs).
func RunFig2Env(env *Env) (*Fig2Result, error) {
	out := &Fig2Result{Setting: env.Setting, Curves: map[string]metrics.Curve{}}
	for _, scheme := range []string{"HELCFL", "ClassicFL", "FedCS", "FEDL"} {
		curve, _, err := RunScheme(env, scheme)
		if err != nil {
			return nil, fmt.Errorf("scheme %s: %w", scheme, err)
		}
		out.Curves[scheme] = curve
	}
	slCurve, err := runSL(env)
	if err != nil {
		return nil, fmt.Errorf("scheme SL: %w", err)
	}
	out.Curves["SL"] = slCurve
	return out, nil
}
