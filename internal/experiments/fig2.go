package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"helcfl/internal/core"
	"helcfl/internal/fl"
	"helcfl/internal/grid"
	"helcfl/internal/metrics"
	"helcfl/internal/selection"
)

// SchemeOrder is the display order of Fig. 2's five curves.
var SchemeOrder = []string{"HELCFL", "ClassicFL", "FedCS", "FEDL", "SL"}

// Fig2Result holds one setting's accuracy-vs-iteration comparison.
type Fig2Result struct {
	Setting Setting
	// Curves maps scheme name → evaluated trajectory.
	Curves map[string]metrics.Curve
}

// Curve returns a scheme's curve, panicking on unknown names to catch
// typos in report code.
func (r *Fig2Result) Curve(scheme string) metrics.Curve {
	c, ok := r.Curves[scheme]
	if !ok {
		panic(fmt.Sprintf("experiments: no curve for scheme %q", scheme))
	}
	return c
}

// newPlanner builds the planner for a named scheme over the environment.
// Each scheme gets an independent, deterministically seeded RNG.
func newPlanner(name string, env *Env, seed int64) (fl.Planner, error) {
	p := env.Preset
	switch name {
	case "HELCFL":
		return selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
			Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
		})
	case "HELCFL-noDVFS":
		h, err := selection.NewHELCFL(env.Devices, env.Channel, env.ModelBits, core.Params{
			Eta: p.Eta, Fraction: p.Fraction, StepsPerRound: p.LocalSteps, Clamp: true,
		})
		if err != nil {
			return nil, err
		}
		h.DisableDVFS = true
		return h, nil
	case "ClassicFL":
		return selection.NewClassicFL(env.Devices, p.Fraction, rand.New(rand.NewSource(seed+11))), nil
	case "FedCS":
		return selection.NewFedCS(env.Devices, env.Channel, env.ModelBits, p.FedCSDeadlineSec, p.LocalSteps), nil
	case "FEDL":
		return selection.NewFEDL(env.Devices, p.Fraction, p.FEDLK, rand.New(rand.NewSource(seed+13))), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// RunScheme executes one FL scheme on the environment and returns its curve.
func RunScheme(env *Env, scheme string) (metrics.Curve, *fl.Result, error) {
	return RunSchemeWith(env, scheme, nil)
}

// RunSchemeWith is RunScheme with extra engine configuration applied by
// mutate before the run (deadline, fault injection, fading, compression).
func RunSchemeWith(env *Env, scheme string, mutate func(*fl.Config)) (metrics.Curve, *fl.Result, error) {
	planner, err := newPlanner(scheme, env, env.Seed)
	if err != nil {
		return metrics.Curve{}, nil, err
	}
	cfg := fl.Config{
		Spec:       env.Spec,
		Devices:    env.Devices,
		Channel:    env.Channel,
		UserData:   env.UserData,
		Test:       env.Synth.Test,
		Planner:    planner,
		LR:         env.Preset.LR,
		LocalSteps: env.Preset.LocalSteps,
		MaxRounds:  env.Preset.MaxRounds,
		EvalEvery:  env.Preset.EvalEvery,
		Seed:       env.Seed + 100, // model init shared by all schemes
		Sink:       env.Preset.Sink,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := fl.Run(cfg)
	if err != nil {
		return metrics.Curve{}, nil, err
	}
	return metrics.CurveFromRecords(scheme, res.Records), res, nil
}

// runSL executes the separated-learning baseline and adapts it to a curve.
func runSL(env *Env) (metrics.Curve, error) {
	p := env.Preset
	res, err := fl.RunSL(fl.SLConfig{
		Spec:       env.Spec,
		Devices:    env.Devices,
		Channel:    env.Channel,
		UserData:   env.UserData,
		Test:       env.Synth.Test,
		Fraction:   p.Fraction,
		LR:         p.LR,
		LocalSteps: p.LocalSteps,
		MaxRounds:  p.MaxRounds,
		EvalEvery:  p.EvalEvery,
		EvalUsers:  p.SLEvalUsers,
		Seed:       env.Seed + 100,
	})
	if err != nil {
		return metrics.Curve{}, err
	}
	return metrics.CurveFromRecords("SL", res.Records), nil
}

// Fig2Cells returns one Fig. 2 panel as cells: the five schemes of
// SchemeOrder, each training on its own deterministic rebuild of the
// (preset, setting, seed) environment.
func Fig2Cells(p Preset, s Setting, seed int64) []grid.Cell {
	cells := make([]grid.Cell, 0, len(SchemeOrder))
	for _, scheme := range SchemeOrder {
		cells = append(cells, trainCell(p, s, seed, scheme, "", nil))
	}
	return cells
}

// AssembleFig2 folds Fig2Cells results back into a panel.
func AssembleFig2(s Setting, res []any) (*Fig2Result, error) {
	if len(res) != len(SchemeOrder) {
		return nil, fmt.Errorf("experiments: fig2 panel got %d results, want %d", len(res), len(SchemeOrder))
	}
	out := &Fig2Result{Setting: s, Curves: map[string]metrics.Curve{}}
	for i, scheme := range SchemeOrder {
		r, err := cellResult[schemeRun](res, i)
		if err != nil {
			return nil, err
		}
		out.Curves[scheme] = r.Curve
	}
	return out, nil
}

// RunFig2Grid runs one Fig. 2 panel through a grid runner (nil r uses the
// default full-parallelism runner; ctx may be nil).
func RunFig2Grid(ctx context.Context, r *grid.Runner, p Preset, s Setting, seed int64) (*Fig2Result, error) {
	res, err := runCells(ctx, r, Fig2Cells(p, s, seed))
	if err != nil {
		return nil, err
	}
	return AssembleFig2(s, res)
}

// RunFig2 reproduces one panel of Fig. 2: all five schemes trained on the
// same environment geometry, reporting accuracy vs training iteration.
func RunFig2(p Preset, s Setting, seed int64) (*Fig2Result, error) {
	return RunFig2Grid(context.Background(), nil, p, s, seed)
}
