package core

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

func stateTestFleet(t *testing.T, n int) []*device.Device {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	devs := make([]*device.Device, n)
	for q := range devs {
		devs[q] = &device.Device{
			ID:              q,
			FMin:            device.DefaultFMin,
			FMax:            device.FMaxLow + (device.FMaxHigh-device.FMaxLow)*rng.Float64(),
			CyclesPerSample: device.DefaultCyclesPerSample,
			Kappa:           device.DefaultKappa,
			TxPower:         0.2,
			ChannelGain:     0.5 + rng.Float64(),
			NumSamples:      20 + rng.Intn(30),
		}
	}
	return devs
}

// TestSchedulerStateRoundTrip pins the resume contract: export mid-campaign,
// import into a freshly initialized scheduler, and every subsequent
// selection and frequency plan is identical to the uninterrupted scheduler.
func TestSchedulerStateRoundTrip(t *testing.T) {
	devs := stateTestFleet(t, 12)
	ch := wireless.DefaultChannel()
	bits := 1e5
	params := Params{Eta: 0.7, Fraction: 0.25, StepsPerRound: 1, Clamp: true}

	ref, err := NewScheduler(devs, ch, bits, params)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewScheduler(devs, ch, bits, params)
	if err != nil {
		t.Fatal(err)
	}
	const split, total = 5, 12
	for j := 0; j < split; j++ {
		ref.PlanRound(ch, bits)
		live.PlanRound(ch, bits)
	}
	st := live.ExportState()
	// Mutating the export must not alias the scheduler.
	if len(st.Alpha) > 0 {
		st.Alpha[0] += 100
		if ref.Appearances()[0] == st.Alpha[0] {
			t.Fatal("export aliases scheduler state")
		}
		st.Alpha[0] -= 100
	}

	resumed, err := NewScheduler(devs, ch, bits, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.ImportState(st); err != nil {
		t.Fatal(err)
	}
	for j := split; j < total; j++ {
		wantSel, wantFreqs := ref.PlanRound(ch, bits)
		gotSel, gotFreqs := resumed.PlanRound(ch, bits)
		if len(wantSel) != len(gotSel) {
			t.Fatalf("round %d: cohort size %d vs %d", j, len(gotSel), len(wantSel))
		}
		for i := range wantSel {
			if wantSel[i] != gotSel[i] {
				t.Fatalf("round %d: selection diverges at slot %d: %d vs %d", j, i, gotSel[i], wantSel[i])
			}
			if math.Float64bits(wantFreqs[i]) != math.Float64bits(gotFreqs[i]) {
				t.Fatalf("round %d: frequency diverges at slot %d", j, i)
			}
		}
	}
}

func TestSchedulerImportStateRejectsBadShapes(t *testing.T) {
	devs := stateTestFleet(t, 4)
	ch := wireless.DefaultChannel()
	s, err := NewScheduler(devs, ch, 1e5, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ImportState(SchedulerState{Alpha: []int{1, 2}}); err == nil {
		t.Fatal("short alpha accepted")
	}
	if err := s.ImportState(SchedulerState{Alpha: []int{0, -1, 0, 0}}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if err := s.ImportState(SchedulerState{Alpha: []int{0, 0, 0, 0}, LastUtil: []float64{1}}); err == nil {
		t.Fatal("short utility vector accepted")
	}
}

// TestLossAwareStateRoundTrip does the same for the loss-aware extension,
// whose selections additionally depend on observed local losses.
func TestLossAwareStateRoundTrip(t *testing.T) {
	devs := stateTestFleet(t, 10)
	ch := wireless.DefaultChannel()
	bits := 1e5
	params := Params{Eta: 0.8, Fraction: 0.3, StepsPerRound: 1, Clamp: true}
	build := func() *LossAwareScheduler {
		base, err := NewScheduler(devs, ch, bits, params)
		if err != nil {
			t.Fatal(err)
		}
		la, err := NewLossAwareScheduler(base, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return la
	}
	feed := func(s *LossAwareScheduler, j int, sel []int) {
		losses := make([]float64, len(sel))
		for i, q := range sel {
			losses[i] = 0.1 + 0.05*float64(q) + 0.01*float64(j)
		}
		s.ObserveRound(j, sel, losses)
	}

	ref, live := build(), build()
	for j := 0; j < 4; j++ {
		feed(ref, j, ref.SelectRound())
		feed(live, j, live.SelectRound())
	}
	resumed := build()
	if err := resumed.ImportState(live.ExportState()); err != nil {
		t.Fatal(err)
	}
	for j := 4; j < 10; j++ {
		want := ref.SelectRound()
		got := resumed.SelectRound()
		if len(want) != len(got) {
			t.Fatalf("round %d: cohort size diverges", j)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("round %d: selection diverges: %v vs %v", j, got, want)
			}
		}
		feed(ref, j, want)
		feed(resumed, j, got)
	}
}
