package core

import (
	"math"
	"testing"

	"helcfl/internal/wireless"
)

func newLossAware(t *testing.T, n int, lambda float64) *LossAwareScheduler {
	t.Helper()
	devs := fleet(n, 21)
	base, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	la, err := NewLossAwareScheduler(base, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return la
}

func TestLossAwareZeroLambdaMatchesBase(t *testing.T) {
	la := newLossAware(t, 20, 0)
	for q := 0; q < 20; q++ {
		if la.Utility(q) != la.Scheduler.Utility(q) {
			t.Fatalf("λ=0 utility differs for user %d", q)
		}
	}
	// Selection identical to the base scheduler's.
	devs := fleet(20, 21)
	base, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		a := la.SelectRound()
		b := base.SelectRound()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: λ=0 selection differs", r)
			}
		}
	}
}

func TestLossAwareBonusRaisesHighLossUsers(t *testing.T) {
	la := newLossAware(t, 10, 1.0)
	sel := []int{0, 1}
	la.ObserveRound(0, sel, []float64{4.0, 0.5}) // user 0 struggling
	u0 := la.lossBonus(0)
	u1 := la.lossBonus(1)
	if u0 <= u1 {
		t.Fatalf("high-loss user bonus %g not above low-loss %g", u0, u1)
	}
	// Unseen users get the neutral mean bonus 1+λ.
	if got := la.lossBonus(5); math.Abs(got-2) > 1e-12 {
		t.Fatalf("unseen bonus = %g, want 2", got)
	}
}

func TestLossAwareSelectionPrefersStrugglingUser(t *testing.T) {
	la := newLossAware(t, 12, 2.0)
	// Make two users' static utilities comparable by observing losses that
	// strongly favour a slow user.
	first := la.SelectRound()
	losses := make([]float64, len(first))
	for i := range losses {
		losses[i] = 0.01 // everyone selected so far is nearly converged
	}
	la.ObserveRound(0, first, losses)
	// An unselected user reports (via a later selection) a huge loss.
	second := la.SelectRound()
	big := make([]float64, len(second))
	for i := range big {
		big[i] = 10
	}
	la.ObserveRound(1, second, big)
	third := la.SelectRound()
	// The high-loss cohort (second) should be favoured for reselection over
	// the near-converged first cohort, appearance decay permitting.
	inSecond := map[int]bool{}
	for _, q := range second {
		inSecond[q] = true
	}
	overlap := 0
	for _, q := range third {
		if inSecond[q] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("loss bonus never favoured the struggling cohort")
	}
}

func TestLossAwareObserveValidation(t *testing.T) {
	la := newLossAware(t, 5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	la.ObserveRound(0, []int{1, 2}, []float64{0.5})
}

func TestLossAwareIgnoresDegenerateLosses(t *testing.T) {
	la := newLossAware(t, 5, 1)
	la.ObserveRound(0, []int{1}, []float64{math.NaN()})
	if la.seen[1] {
		t.Fatal("NaN loss must be ignored")
	}
	la.ObserveRound(0, []int{1}, []float64{math.Inf(1)})
	if la.seen[1] {
		t.Fatal("Inf loss must be ignored")
	}
}

func TestLossAwareNegativeLambdaRejected(t *testing.T) {
	devs := fleet(4, 22)
	base, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLossAwareScheduler(base, -1); err == nil {
		t.Fatal("negative λ must be rejected")
	}
}
