package core

import (
	"math/rand"
	"testing"

	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

// tieFleet builds a fleet where blocks of devices share bitwise-identical
// parameters, forcing exact utility ties the selection tie-break must
// resolve by index.
func tieFleet(q, blockSize int) *device.Fleet {
	f := &device.Fleet{
		FMin:            make([]float64, q),
		FMax:            make([]float64, q),
		CyclesPerSample: make([]float64, q),
		Kappa:           make([]float64, q),
		TxPower:         make([]float64, q),
		ChannelGain:     make([]float64, q),
		NumSamples:      make([]int, q),
	}
	for i := 0; i < q; i++ {
		block := i / blockSize
		f.FMin[i] = 0.3e9
		f.FMax[i] = 1e9 + 0.1e9*float64(block%7)
		f.CyclesPerSample[i] = 5e6
		f.Kappa[i] = 2e-28
		f.TxPower[i] = 0.2
		f.ChannelGain[i] = 0.8 + 0.05*float64(block%5)
		f.NumSamples[i] = 20 + 3*(block%4)
	}
	return f
}

func randomFleet(q int, seed int64) *device.Fleet {
	cfg := device.DefaultCatalogConfig()
	cfg.Q = q
	cfg.SamplesLow, cfg.SamplesHigh = 20, 60
	return device.NewFleet(cfg, seed)
}

// TestSelectRoundMatchesNaive is the ISSUE 10 equivalence property test:
// across seeded random fleets, tie-heavy fleets, random fractions, and many
// consecutive rounds, the streaming top-N heap selection must return the
// exact index sequence of the retained naive repeated argmax — order and
// tie-breaks included — and leave identical decay state behind.
func TestSelectRoundMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ch := wireless.DefaultChannel()
	fleets := []*device.Fleet{
		tieFleet(60, 6),   // dense exact ties
		tieFleet(200, 50), // few huge tie groups
	}
	for trial := 0; trial < 8; trial++ {
		fleets = append(fleets, randomFleet(30+rng.Intn(400), int64(trial)))
	}
	for fi, fl := range fleets {
		p := DefaultParams()
		p.Fraction = []float64{0.001, 0.05, 0.1, 0.33, 0.5, 1.0}[rng.Intn(6)]
		heapSched, err := NewFleetScheduler(fl, ch, testModelBits, p)
		if err != nil {
			t.Fatal(err)
		}
		naiveSched, err := NewFleetScheduler(fl, ch, testModelBits, p)
		if err != nil {
			t.Fatal(err)
		}
		var reuse []int
		for round := 0; round < 25; round++ {
			var got []int
			if round%2 == 0 {
				got = heapSched.SelectRound()
			} else {
				reuse = heapSched.SelectRoundAppend(reuse)
				got = reuse
			}
			want := naiveSched.SelectRoundNaive()
			if len(got) != len(want) {
				t.Fatalf("fleet %d round %d: heap selected %d users, naive %d", fi, round, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("fleet %d round %d: selection[%d] = %d (heap) vs %d (naive)\nheap:  %v\nnaive: %v",
						fi, round, i, got[i], want[i], got, want)
				}
			}
			for q := 0; q < fl.Len(); q++ {
				if heapSched.alpha[q] != naiveSched.alpha[q] {
					t.Fatalf("fleet %d round %d: alpha[%d] diverged (%d vs %d)", fi, round, q, heapSched.alpha[q], naiveSched.alpha[q])
				}
				if heapSched.lastUtil[q] != naiveSched.lastUtil[q] {
					t.Fatalf("fleet %d round %d: lastUtil[%d] diverged (%v vs %v)", fi, round, q, heapSched.lastUtil[q], naiveSched.lastUtil[q])
				}
			}
		}
	}
}

// TestEtaPowMemo pins the incremental η^{α} memo bit-identical to the pow
// reference loop out to α = 10⁴ — both perform the same multiplication
// sequence, so not even 1-ulp drift is tolerated.
func TestEtaPowMemo(t *testing.T) {
	for _, eta := range []float64{0.9, 0.5, 0.99, 0.123456789} {
		fl := randomFleet(3, 1)
		p := DefaultParams()
		p.Eta = eta
		s, err := NewFleetScheduler(fl, wireless.DefaultChannel(), testModelBits, p)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a <= 10000; a++ {
			if s.etaPow[0] != pow(eta, a) {
				t.Fatalf("eta=%v alpha=%d: memo %v != pow %v", eta, a, s.etaPow[0], pow(eta, a))
			}
			s.markSelected(0)
		}
	}
}

// TestFrequencyPlanSelectedMatchesAoS differentially tests the SoA
// Algorithm 3 against the retained AoS FrequencyPlan, clamped and literal,
// continuous and discrete-DVFS, across random cohorts.
func TestFrequencyPlanSelectedMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ch := wireless.DefaultChannel()
	for trial := 0; trial < 30; trial++ {
		fl := randomFleet(50+rng.Intn(200), int64(trial+100))
		devs := fl.Devices()
		if trial%3 == 0 {
			for _, d := range devs {
				d.UniformLevels(4 + rng.Intn(5))
			}
			fl = device.FleetOf(devs)
		}
		p := DefaultParams()
		p.Clamp = trial%2 == 0
		p.StepsPerRound = 1 + trial%3
		s, err := NewFleetScheduler(fl, ch, testModelBits, p)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(fl.Len())
		selected := rng.Perm(fl.Len())[:n]
		cohort := make([]*device.Device, n)
		for i, q := range selected {
			cohort[i] = devs[q]
		}
		want := FrequencyPlan(cohort, ch, testModelBits, p.StepsPerRound, p.Clamp)
		got := s.FrequencyPlanSelected(selected, ch, testModelBits)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: freq[%d] = %v (SoA) vs %v (AoS), clamp=%v", trial, i, got[i], want[i], p.Clamp)
			}
		}
	}
}

// TestPlanRoundIntoMatchesPlanRound checks the buffer-reusing form returns
// the same plan as the allocating form round after round.
func TestPlanRoundIntoMatchesPlanRound(t *testing.T) {
	ch := wireless.DefaultChannel()
	fl := randomFleet(300, 7)
	a, err := NewFleetScheduler(fl, ch, testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFleetScheduler(fl, ch, testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var sel []int
	var freqs []float64
	for round := 0; round < 10; round++ {
		wantSel, wantFreqs := a.PlanRound(ch, testModelBits)
		sel, freqs = b.PlanRoundInto(sel, freqs, ch, testModelBits)
		if len(sel) != len(wantSel) {
			t.Fatalf("round %d: cohort size %d vs %d", round, len(sel), len(wantSel))
		}
		for i := range sel {
			if sel[i] != wantSel[i] || freqs[i] != wantFreqs[i] {
				t.Fatalf("round %d user %d: (%d, %v) vs (%d, %v)", round, i, sel[i], freqs[i], wantSel[i], wantFreqs[i])
			}
		}
	}
}

// TestPlanRoundIntoZeroAlloc gates the steady-state scale path at zero
// allocations per round.
func TestPlanRoundIntoZeroAlloc(t *testing.T) {
	ch := wireless.DefaultChannel()
	fl := randomFleet(10000, 11)
	s, err := NewFleetScheduler(fl, ch, testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var sel []int
	var freqs []float64
	sel, freqs = s.PlanRoundInto(sel, freqs, ch, testModelBits) // warm buffers
	allocs := testing.AllocsPerRun(20, func() {
		sel, freqs = s.PlanRoundInto(sel, freqs, ch, testModelBits)
	})
	if allocs != 0 {
		t.Fatalf("PlanRoundInto allocates %v objects per round, want 0", allocs)
	}
}

// TestImportStateRebuildsMemo checks a restored scheduler selects
// bit-identically to one that never restarted (the etaPow memo must be
// rebuilt from the imported counters).
func TestImportStateRebuildsMemo(t *testing.T) {
	ch := wireless.DefaultChannel()
	fl := randomFleet(120, 13)
	orig, err := NewFleetScheduler(fl, ch, testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 7; round++ {
		orig.SelectRound()
	}
	st := orig.ExportState()
	restored, err := NewFleetScheduler(fl, ch, testModelBits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportState(st); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 7; round++ {
		a := orig.SelectRound()
		b := restored.SelectRound()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: restored scheduler diverged (%v vs %v)", round, a, b)
			}
		}
	}
}

func BenchmarkSelectRound(b *testing.B) {
	ch := wireless.DefaultChannel()
	for _, q := range []int{1000, 100000} {
		fl := randomFleet(q, 1)
		s, err := NewFleetScheduler(fl, ch, testModelBits, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		var sel []int
		sel = s.SelectRoundAppend(sel)
		b.Run(benchName(q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sel = s.SelectRoundAppend(sel)
			}
		})
	}
}

func BenchmarkFrequencyPlan(b *testing.B) {
	ch := wireless.DefaultChannel()
	for _, q := range []int{1000, 100000} {
		fl := randomFleet(q, 1)
		s, err := NewFleetScheduler(fl, ch, testModelBits, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		var sel []int
		var freqs []float64
		sel, freqs = s.PlanRoundInto(sel, freqs, ch, testModelBits)
		b.Run(benchName(q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if cap(freqs) < len(sel) {
					freqs = make([]float64, len(sel))
				}
				freqs = freqs[:len(sel)]
				s.frequencyPlanInto(freqs, sel, ch, testModelBits)
			}
		})
	}
}

func benchName(q int) string {
	switch {
	case q >= 1000000:
		return "Q1e6"
	case q >= 100000:
		return "Q1e5"
	default:
		return "Q1e3"
	}
}
