package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"helcfl/internal/wireless"
)

// Property: over many rounds, greedy-decay selection counts are balanced —
// no user is selected more than a few times the fair share, and none is
// starved forever. This is the quantitative version of the paper's claim
// that the decay "can incorporate users with long training delays".
func TestGreedyDecayBalanceQuick(t *testing.T) {
	f := func(seed int64, etaRaw uint8) bool {
		eta := 0.5 + float64(etaRaw%40)/100.0 // 0.50–0.89
		devs := fleet(20, seed)
		s, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, Params{
			Eta: eta, Fraction: 0.2, StepsPerRound: 1, Clamp: true,
		})
		if err != nil {
			return false
		}
		const rounds = 200
		for j := 0; j < rounds; j++ {
			s.SelectRound()
		}
		counts := s.Appearances()
		fair := float64(rounds*s.NumSelect()) / float64(len(devs)) // = 40
		for _, c := range counts {
			if c == 0 {
				return false // starvation
			}
			if float64(c) > 3*fair {
				return false // monopolization
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-round selection count is always exactly NumSelect and
// indices are unique and in range, whatever the decay history.
func TestSelectRoundShapeQuick(t *testing.T) {
	f := func(seed int64, roundsRaw uint8) bool {
		devs := fleet(15, seed)
		s, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, DefaultParams())
		if err != nil {
			return false
		}
		rounds := int(roundsRaw)%30 + 1
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		for j := 0; j < rounds; j++ {
			sel := s.SelectRound()
			if len(sel) != s.NumSelect() {
				return false
			}
			seen := map[int]bool{}
			for _, q := range sel {
				if q < 0 || q >= 15 || seen[q] {
					return false
				}
				seen[q] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
