// Package core implements the paper's primary contribution: the HELCFL
// scheduler. It contains the utility function of Eq. (20), the
// utility-driven greedy-decay user selection of Algorithm 2, and the
// DVFS-enabled operating-frequency determination of Algorithm 3.
package core

import (
	"fmt"
	"sort"

	"helcfl/internal/device"
	"helcfl/internal/obs/span"
	"helcfl/internal/wireless"
)

// Params configures the HELCFL scheduler.
type Params struct {
	// Eta is the decay coefficient η ∈ (0, 1) of Eq. (20).
	Eta float64
	// Fraction is the user selection fraction C; N = max(Q·C, 1) users are
	// selected each round.
	Fraction float64
	// StepsPerRound is the number of local full-batch GD passes per round
	// (the paper's Eq. (3) does exactly 1). It scales compute delay.
	StepsPerRound int
	// Clamp applies constraint (15) to Algorithm 3's frequencies. The
	// printed algorithm omits the projection; disabling this reproduces the
	// literal pseudocode for the ablation study.
	Clamp bool
}

// DefaultParams returns the paper's experimental setting: η = 0.9, C = 0.1,
// one local GD step, clamped frequencies.
func DefaultParams() Params {
	return Params{Eta: 0.9, Fraction: 0.1, StepsPerRound: 1, Clamp: true}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Eta <= 0 || p.Eta >= 1 {
		return fmt.Errorf("core: decay coefficient η = %g outside (0,1)", p.Eta)
	}
	if p.Fraction <= 0 || p.Fraction > 1 {
		return fmt.Errorf("core: selection fraction C = %g outside (0,1]", p.Fraction)
	}
	if p.StepsPerRound <= 0 {
		return fmt.Errorf("core: non-positive steps per round %d", p.StepsPerRound)
	}
	return nil
}

// Scheduler is the FLCC-side state of Algorithm 2: the per-user static
// delays measured in the initialization phase and the appearance counters
// α_q that drive utility decay.
type Scheduler struct {
	params Params
	devs   []*device.Device

	// tcalMax[q] is T_q^cal at f_q^max (Algorithm 2, line 3).
	tcalMax []float64
	// tcom[q] is T_q^com (Algorithm 2, line 4).
	tcom []float64
	// alpha[q] counts how often user q has been selected (Eq. 20).
	alpha []int
	// lastUtil[q] is the utility of user q computed at the most recent
	// SelectRound, before that round's decay increments — the decision
	// state the observability layer reports.
	lastUtil []float64

	// tr/trParent attribute PlanRound's two phases (Algorithm 2 selection,
	// Algorithm 3 DVFS solve) to the caller's span trace; nil/zero when
	// tracing is off.
	tr       *span.Recorder
	trParent span.Ref
}

// SetTrace installs the span recorder and parent ref under which the next
// PlanRound records its selection and DVFS phases. Call with nil to stop
// tracing.
func (s *Scheduler) SetTrace(rec *span.Recorder, parent span.Ref) {
	s.tr, s.trParent = rec, parent
}

// NewScheduler runs the initialization of Algorithm 2 (lines 1–7): it
// derives every user's compute delay at maximum frequency and upload delay,
// and zeroes the appearance counters. modelBits is C_model for Eq. (7).
func NewScheduler(devs []*device.Device, ch wireless.Channel, modelBits float64, params Params) (*Scheduler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	s := &Scheduler{
		params:  params,
		devs:    devs,
		tcalMax: make([]float64, len(devs)),
		tcom:    make([]float64, len(devs)),
		alpha:   make([]int, len(devs)),
	}
	for q, d := range devs {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if d.NumSamples <= 0 {
			return nil, fmt.Errorf("core: device %d has no local data", d.ID)
		}
		s.tcalMax[q] = float64(params.StepsPerRound) * d.ComputeDelayAtMax()
		s.tcom[q] = ch.UploadDelay(modelBits, d.TxPower, d.ChannelGain)
	}
	return s, nil
}

// Utility returns u_q = η^{α_q} / (T_q^cal + T_q^com), Eq. (20), for user q
// at the current appearance count.
func (s *Scheduler) Utility(q int) float64 {
	return pow(s.params.Eta, s.alpha[q]) / (s.tcalMax[q] + s.tcom[q])
}

// pow computes η^a for a non-negative integer a without the math.Pow
// rounding surprises for small exponents.
func pow(eta float64, a int) float64 {
	out := 1.0
	for ; a > 0; a-- {
		out *= eta
	}
	return out
}

// Appearances returns a copy of the appearance counters α.
func (s *Scheduler) Appearances() []int {
	return append([]int(nil), s.alpha...)
}

// LastUtilities returns a copy of the fleet-wide utility vector computed at
// the most recent SelectRound, or nil before the first round.
func (s *Scheduler) LastUtilities() []float64 {
	return append([]float64(nil), s.lastUtil...)
}

// NumSelect returns N = max(Q·C, 1), the per-round selection count.
func (s *Scheduler) NumSelect() int {
	n := int(float64(len(s.devs)) * s.params.Fraction)
	if n < 1 {
		n = 1
	}
	return n
}

// SelectRound runs the selection loop of Algorithm 2 (lines 8–19): it
// greedily picks the N users with the largest utilities and increments each
// winner's appearance counter so its utility decays for later rounds.
// The returned indices are positions in the scheduler's device slice,
// in selection (descending utility) order.
func (s *Scheduler) SelectRound() []int {
	n := s.NumSelect()
	// Compute utilities for all selectable users (lines 8–10).
	utilities := make([]float64, len(s.devs))
	for q := range s.devs {
		utilities[q] = s.Utility(q)
	}
	s.lastUtil = utilities
	selectable := make([]bool, len(s.devs))
	for q := range selectable {
		selectable[q] = true
	}
	selected := make([]int, 0, n)
	for len(selected) < n {
		// argmax over the selectable set (line 15), ties broken by index
		// for determinism.
		best := -1
		for q := range s.devs {
			if !selectable[q] {
				continue
			}
			if best == -1 || utilities[q] > utilities[best] {
				best = q
			}
		}
		if best == -1 {
			break // fewer users than N
		}
		selectable[best] = false
		selected = append(selected, best)
		s.alpha[best]++ // utility decay for future rounds (line 18)
	}
	return selected
}

// StaticDelay returns T_q^cal(f_max) + T_q^com for user q, the denominator
// of Eq. (20). Exposed for baselines (FedCS ranks on the same quantity).
func (s *Scheduler) StaticDelay(q int) float64 { return s.tcalMax[q] + s.tcom[q] }

// TComOf returns the cached upload delay of user q.
func (s *Scheduler) TComOf(q int) float64 { return s.tcom[q] }

// TCalMaxOf returns the cached max-frequency compute delay of user q.
func (s *Scheduler) TCalMaxOf(q int) float64 { return s.tcalMax[q] }

// PlanRound runs one full FLCC scheduling decision: Algorithm 2 selection
// followed by Algorithm 3 frequency determination. The returned frequencies
// align with the returned device indices.
func (s *Scheduler) PlanRound(ch wireless.Channel, modelBits float64) ([]int, []float64) {
	selSp := s.tr.Start(s.trParent, "sched.select")
	selected := s.SelectRound()
	selSp.End()
	devs := make([]*device.Device, len(selected))
	for i, q := range selected {
		devs[i] = s.devs[q]
	}
	dvfsSp := s.tr.Start(s.trParent, "sched.dvfs")
	freqs := FrequencyPlan(devs, ch, modelBits, s.params.StepsPerRound, s.params.Clamp)
	dvfsSp.End()
	// FrequencyPlan orders by ascending compute delay internally but
	// returns frequencies aligned with its input order, so selected and
	// freqs stay aligned here.
	return selected, freqs
}

// FrequencyPlan implements Algorithm 3: determine the CPU operating
// frequencies of the selected users by reclaiming TDMA slack. The users are
// sorted by compute delay at maximum frequency; the first runs at f_max and
// each subsequent user is slowed so its local update completes exactly when
// the previous user's upload finishes.
//
// The returned slice aligns with devs (input order). steps scales compute
// delay as in Params.StepsPerRound. If clamp is true the frequencies are
// projected onto [f_min, f_max] (constraint (15)) and the chaining uses the
// realized post-clamp completion times; if false the function returns the
// literal pseudocode values, which may violate the device's range.
func FrequencyPlan(devs []*device.Device, ch wireless.Channel, modelBits float64, steps int, clamp bool) []float64 {
	if len(devs) == 0 {
		return nil
	}
	if steps <= 0 {
		panic(fmt.Sprintf("core: non-positive steps %d", steps))
	}
	scale := float64(steps)

	// Line 1: ascending order of model-update delay at max frequency.
	order := make([]int, len(devs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := scale * devs[order[a]].ComputeDelayAtMax()
		db := scale * devs[order[b]].ComputeDelayAtMax()
		if da != db {
			return da < db
		}
		return devs[order[a]].ID < devs[order[b]].ID
	})

	freqs := make([]float64, len(devs))
	// Lines 3–4: the first user has no slack and runs at maximum frequency.
	first := devs[order[0]]
	freqs[order[0]] = first.FMax
	// prevEnd is T_q^j of the previous user: the time its upload completes,
	// assuming the chain starts at round time zero.
	prevEnd := scale*first.ComputeDelayAtMax() +
		ch.UploadDelay(modelBits, first.TxPower, first.ChannelGain)

	for k := 1; k < len(order); k++ {
		d := devs[order[k]]
		// Line 9: stretch this user's computation to fill the previous
		// user's total delay: f = π|D| / T_prev (Eq. (4) inverted).
		f := scale * d.TotalCycles() / prevEnd
		if clamp {
			// Project onto [f_min, f_max] (constraint 15) and, when the
			// device exposes discrete DVFS levels, snap UP to the next
			// operating point so the chain time is never missed.
			f = d.SnapFreq(f)
		}
		freqs[order[k]] = f
		// Line 8 for the next iteration: this user's total delay at the
		// determined frequency. With clamping, the realized upload start is
		// delayed to when the channel frees (compute may finish early after
		// an f_min clamp) or pushed later (an f_max clamp cannot meet
		// prevEnd), so chain on the realized completion time.
		computeDone := scale * d.ComputeDelay(f)
		start := computeDone
		if clamp && prevEnd > start {
			start = prevEnd
		}
		prevEnd = start + ch.UploadDelay(modelBits, d.TxPower, d.ChannelGain)
	}
	return freqs
}
