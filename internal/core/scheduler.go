// Package core implements the paper's primary contribution: the HELCFL
// scheduler. It contains the utility function of Eq. (20), the
// utility-driven greedy-decay user selection of Algorithm 2, and the
// DVFS-enabled operating-frequency determination of Algorithm 3.
//
// The scheduler's state is structure-of-arrays (device.Fleet plus parallel
// delay/decay columns) and its selection loop is a streaming top-N heap, so
// a single round plan scales to Q=10⁶ users in well under a second (see
// docs/SCALE.md and BENCH_scale.json); the retained naive references
// (SelectRoundNaive, FrequencyPlan) pin the fast paths bit-identical to the
// paper's literal algorithms.
package core

import (
	"container/heap"
	"fmt"
	"sort"

	"helcfl/internal/device"
	"helcfl/internal/obs/span"
	"helcfl/internal/wireless"
)

// Params configures the HELCFL scheduler.
type Params struct {
	// Eta is the decay coefficient η ∈ (0, 1) of Eq. (20).
	Eta float64
	// Fraction is the user selection fraction C; N = max(Q·C, 1) users are
	// selected each round.
	Fraction float64
	// StepsPerRound is the number of local full-batch GD passes per round
	// (the paper's Eq. (3) does exactly 1). It scales compute delay.
	StepsPerRound int
	// Clamp applies constraint (15) to Algorithm 3's frequencies. The
	// printed algorithm omits the projection; disabling this reproduces the
	// literal pseudocode for the ablation study.
	Clamp bool
}

// DefaultParams returns the paper's experimental setting: η = 0.9, C = 0.1,
// one local GD step, clamped frequencies.
func DefaultParams() Params {
	return Params{Eta: 0.9, Fraction: 0.1, StepsPerRound: 1, Clamp: true}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Eta <= 0 || p.Eta >= 1 {
		return fmt.Errorf("core: decay coefficient η = %g outside (0,1)", p.Eta)
	}
	if p.Fraction <= 0 || p.Fraction > 1 {
		return fmt.Errorf("core: selection fraction C = %g outside (0,1]", p.Fraction)
	}
	if p.StepsPerRound <= 0 {
		return fmt.Errorf("core: non-positive steps per round %d", p.StepsPerRound)
	}
	return nil
}

// Scheduler is the FLCC-side state of Algorithm 2: the per-user static
// delays measured in the initialization phase and the appearance counters
// α_q that drive utility decay. All per-user state lives in parallel
// slices over the fleet (structure-of-arrays), and every per-round buffer
// is reused, so a steady-state PlanRoundInto allocates nothing.
type Scheduler struct {
	params Params
	fleet  *device.Fleet

	// tcalMax[q] is T_q^cal at f_q^max (Algorithm 2, line 3).
	tcalMax []float64
	// tcom[q] is T_q^com (Algorithm 2, line 4).
	tcom []float64
	// alpha[q] counts how often user q has been selected (Eq. 20).
	alpha []int
	// etaPow[q] memoizes η^{α_q}: multiplied by η at each selection instead
	// of recomputed by an O(α) loop every utility evaluation. The product
	// performs the same multiplication sequence as the retained pow loop,
	// so the two are bit-identical at any α (pinned by TestEtaPowMemo).
	etaPow []float64
	// lastUtil[q] is the utility of user q computed at the most recent
	// SelectRound, before that round's decay increments — the decision
	// state the observability layer reports. Reused across rounds.
	lastUtil []float64

	// Streaming top-N selection scratch (see selectAppend).
	heap       selHeap
	heapPushes int

	// Algorithm 3 scratch (see frequencyPlanInto).
	planOrder []int
	planDelay []float64
	sorter    planSorter

	// tr/trParent attribute PlanRound's two phases (Algorithm 2 selection,
	// Algorithm 3 DVFS solve) to the caller's span trace; nil/zero when
	// tracing is off.
	tr       *span.Recorder
	trParent span.Ref
}

// SetTrace installs the span recorder and parent ref under which the next
// PlanRound records its selection and DVFS phases. Call with nil to stop
// tracing.
func (s *Scheduler) SetTrace(rec *span.Recorder, parent span.Ref) {
	s.tr, s.trParent = rec, parent
}

// NewScheduler runs the initialization of Algorithm 2 (lines 1–7) over an
// AoS device slice: it validates the fleet, snapshots it into SoA form, and
// derives the static delay columns. modelBits is C_model for Eq. (7).
func NewScheduler(devs []*device.Device, ch wireless.Channel, modelBits float64, params Params) (*Scheduler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if d.NumSamples <= 0 {
			return nil, fmt.Errorf("core: device %d has no local data", d.ID)
		}
	}
	return newFleetScheduler(device.FleetOf(devs), ch, modelBits, params)
}

// NewFleetScheduler is NewScheduler directly on SoA fleet state — the
// million-user path, skipping the AoS detour entirely.
func NewFleetScheduler(fleet *device.Fleet, ch wireless.Channel, modelBits float64, params Params) (*Scheduler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if fleet == nil || fleet.Len() == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	for q := 0; q < fleet.Len(); q++ {
		if fleet.NumSamples[q] <= 0 {
			return nil, fmt.Errorf("core: device %d has no local data", q)
		}
	}
	return newFleetScheduler(fleet, ch, modelBits, params)
}

// newFleetScheduler derives the static delay columns; the fleet is already
// validated. tcom fills through the vectorized Eq. (7) kernel; tcalMax is
// the same expression per index as the AoS loop it replaced.
func newFleetScheduler(fleet *device.Fleet, ch wireless.Channel, modelBits float64, params Params) (*Scheduler, error) {
	q := fleet.Len()
	s := &Scheduler{
		params:  params,
		fleet:   fleet,
		tcalMax: make([]float64, q),
		tcom:    make([]float64, q),
		alpha:   make([]int, q),
		etaPow:  make([]float64, q),
	}
	scale := float64(params.StepsPerRound)
	for i := 0; i < q; i++ {
		s.tcalMax[i] = scale * fleet.ComputeDelayAtMax(i)
		s.etaPow[i] = 1
	}
	ch.UploadDelayInto(s.tcom, modelBits, fleet.TxPower, fleet.ChannelGain)
	return s, nil
}

// Fleet exposes the scheduler's SoA state (read-only by convention).
func (s *Scheduler) Fleet() *device.Fleet { return s.fleet }

// NumUsers returns Q, the fleet size.
func (s *Scheduler) NumUsers() int { return s.fleet.Len() }

// Utility returns u_q = η^{α_q} / (T_q^cal + T_q^com), Eq. (20), for user q
// at the current appearance count.
func (s *Scheduler) Utility(q int) float64 {
	return s.etaPow[q] / (s.tcalMax[q] + s.tcom[q])
}

// pow computes η^a for a non-negative integer a without the math.Pow
// rounding surprises for small exponents. Retained as the reference for
// the incremental etaPow memoization (ImportState rebuilds the memo with
// it, and TestEtaPowMemo pins the bit-identity); the per-round hot path no
// longer calls it.
func pow(eta float64, a int) float64 {
	out := 1.0
	for ; a > 0; a-- {
		out *= eta
	}
	return out
}

// markSelected records one Algorithm 2 selection of user q: the appearance
// counter and the memoized η^{α_q} advance together (the only way etaPow
// stays coherent — every selection path, including the loss-aware
// extension's, must route through here).
func (s *Scheduler) markSelected(q int) {
	s.alpha[q]++
	s.etaPow[q] *= s.params.Eta
}

// Appearances returns a copy of the appearance counters α.
func (s *Scheduler) Appearances() []int {
	return append([]int(nil), s.alpha...)
}

// LastUtilities returns a copy of the fleet-wide utility vector computed at
// the most recent SelectRound, or nil before the first round.
func (s *Scheduler) LastUtilities() []float64 {
	return append([]float64(nil), s.lastUtil...)
}

// NumSelect returns N = max(Q·C, 1), the per-round selection count.
func (s *Scheduler) NumSelect() int {
	n := int(float64(s.fleet.Len()) * s.params.Fraction)
	if n < 1 {
		n = 1
	}
	return n
}

// LastHeapPushes reports how many heap insertions (initial fills plus root
// replacements) the most recent selection performed — the work metric the
// sched.select span exports as heap.pushes.
func (s *Scheduler) LastHeapPushes() int { return s.heapPushes }

// selHeap orders candidate indices worst-first under the Algorithm 2
// selection key (utility descending, then index ascending): the root is the
// weakest member of the current top-N. Lower utility is worse; on bitwise-
// equal utilities the higher index is worse, because the naive argmax scans
// indices ascending and only a strictly greater utility displaces the
// incumbent.
type selHeap struct {
	idx  []int
	util []float64
}

func (h *selHeap) Len() int { return len(h.idx) }
func (h *selHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	if h.util[a] != h.util[b] { //helcfl:allow(floatcompare) exact tie-break: bitwise-equal utilities must fall through to the index order the naive argmax uses, and an epsilon would make selection input-order-dependent
		return h.util[a] < h.util[b]
	}
	return a > b
}
func (h *selHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }

// Push and Pop satisfy heap.Interface but are never called: the scheduler
// manages length by hand (heap.Init + heap.Fix) to keep interface boxing —
// and its allocation — out of the hot loop.
func (h *selHeap) Push(x any) { h.idx = append(h.idx, x.(int)) }
func (h *selHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// computeUtilities refreshes the fleet-wide Eq. (20) utility vector into
// the reused lastUtil buffer.
func (s *Scheduler) computeUtilities() {
	q := s.fleet.Len()
	if cap(s.lastUtil) < q {
		s.lastUtil = make([]float64, q)
	}
	s.lastUtil = s.lastUtil[:q]
	for i := 0; i < q; i++ {
		s.lastUtil[i] = s.etaPow[i] / (s.tcalMax[i] + s.tcom[i])
	}
}

// SelectRound runs the selection of Algorithm 2 (lines 8–19) and returns a
// freshly allocated index slice in selection (descending utility) order —
// callers such as the FL engine retain it across rounds. The hot-path form
// is SelectRoundAppend.
func (s *Scheduler) SelectRound() []int {
	n := s.NumSelect()
	if q := s.fleet.Len(); n > q {
		n = q
	}
	return s.selectAppend(make([]int, 0, n))
}

// SelectRoundAppend is SelectRound appending into dst (reusing its backing
// array) — the zero-steady-state-allocation form.
func (s *Scheduler) SelectRoundAppend(dst []int) []int {
	return s.selectAppend(dst[:0])
}

// selectAppend is the streaming top-N selection: all Q candidates flow past
// a size-N min-heap whose root is the weakest current winner, giving
// O(Q + N·log N + R·log N) work for R root replacements — no full sort, no
// allocation once buffers are warm. It returns the identical index
// sequence, tie-breaks included, as the retained naive argmax
// (SelectRoundNaive): utilities are computed before any decay increment,
// replacement requires a strictly greater utility (an equal-utility
// candidate has a higher index, which the naive scan never prefers), and
// the final worst-first extraction filled back-to-front reproduces the
// (utility desc, index asc) selection order exactly. The property test in
// scheduler_equiv_test.go pins this under random fleets and forced ties.
func (s *Scheduler) selectAppend(dst []int) []int {
	s.computeUtilities()
	q := s.fleet.Len()
	n := s.NumSelect()
	if n > q {
		n = q
	}
	h := &s.heap
	h.util = s.lastUtil
	if cap(h.idx) < n {
		h.idx = make([]int, 0, n)
	}
	h.idx = h.idx[:0]
	for cand := 0; cand < n; cand++ {
		h.idx = append(h.idx, cand)
	}
	heap.Init(h)
	pushes := n
	util := s.lastUtil
	for cand := n; cand < q; cand++ {
		if util[cand] > util[h.idx[0]] {
			h.idx[0] = cand
			heap.Fix(h, 0)
			pushes++
		}
	}
	s.heapPushes = pushes
	// Extract worst-first, writing winners back-to-front: dst ends in
	// selection (descending utility, ascending index on ties) order.
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	for m := n; m > 0; m-- {
		root := h.idx[0]
		h.idx[0] = h.idx[m-1]
		h.idx = h.idx[:m-1]
		if m > 2 {
			heap.Fix(h, 0)
		}
		dst[base+m-1] = root
	}
	for _, sel := range dst[base:] {
		s.markSelected(sel) // utility decay for future rounds (line 18)
	}
	return dst
}

// SelectRoundNaive is the retained pre-heap reference: the literal
// O(Q·N) repeated argmax of Algorithm 2 with utilities from the pow loop.
// The equivalence property test runs it against SelectRound; production
// paths never call it.
func (s *Scheduler) SelectRoundNaive() []int {
	n := s.NumSelect()
	q := s.fleet.Len()
	// Compute utilities for all selectable users (lines 8–10).
	utilities := make([]float64, q)
	for i := 0; i < q; i++ {
		utilities[i] = pow(s.params.Eta, s.alpha[i]) / (s.tcalMax[i] + s.tcom[i])
	}
	s.lastUtil = utilities
	selectable := make([]bool, q)
	for i := range selectable {
		selectable[i] = true
	}
	selected := make([]int, 0, n)
	for len(selected) < n {
		// argmax over the selectable set (line 15), ties broken by index
		// for determinism.
		best := -1
		for i := 0; i < q; i++ {
			if !selectable[i] {
				continue
			}
			if best == -1 || utilities[i] > utilities[best] {
				best = i
			}
		}
		if best == -1 {
			break // fewer users than N
		}
		selectable[best] = false
		selected = append(selected, best)
		s.markSelected(best)
	}
	return selected
}

// StaticDelay returns T_q^cal(f_max) + T_q^com for user q, the denominator
// of Eq. (20). Exposed for baselines (FedCS ranks on the same quantity).
func (s *Scheduler) StaticDelay(q int) float64 { return s.tcalMax[q] + s.tcom[q] }

// TComOf returns the cached upload delay of user q.
func (s *Scheduler) TComOf(q int) float64 { return s.tcom[q] }

// TCalMaxOf returns the cached max-frequency compute delay of user q.
func (s *Scheduler) TCalMaxOf(q int) float64 { return s.tcalMax[q] }

// PlanRound runs one full FLCC scheduling decision: Algorithm 2 selection
// followed by Algorithm 3 frequency determination. The returned slices are
// freshly allocated (the FL engine retains them in its round records); the
// zero-allocation form is PlanRoundInto.
func (s *Scheduler) PlanRound(ch wireless.Channel, modelBits float64) ([]int, []float64) {
	selSp := s.tr.Start(s.trParent, "sched.select")
	selected := s.SelectRound()
	selSp.SetInt("fleet.size", int64(s.fleet.Len()))
	selSp.SetInt("heap.pushes", int64(s.heapPushes))
	selSp.End()
	dvfsSp := s.tr.Start(s.trParent, "sched.dvfs")
	freqs := s.FrequencyPlanSelected(selected, ch, modelBits)
	dvfsSp.End()
	// frequencyPlanInto orders by ascending compute delay internally but
	// writes frequencies aligned with its input order, so selected and
	// freqs stay aligned here.
	return selected, freqs
}

// PlanRoundInto is PlanRound reusing caller-owned result buffers — the
// zero-steady-state-allocation form the scale benchmarks drive. selected
// and freqs are overwritten (regrown if needed) and returned re-sliced;
// unlike PlanRound, the results alias the arguments, so callers retaining
// plans across rounds must copy them.
func (s *Scheduler) PlanRoundInto(selected []int, freqs []float64, ch wireless.Channel, modelBits float64) ([]int, []float64) {
	selSp := s.tr.Start(s.trParent, "sched.select")
	selected = s.selectAppend(selected[:0])
	selSp.SetInt("fleet.size", int64(s.fleet.Len()))
	selSp.SetInt("heap.pushes", int64(s.heapPushes))
	selSp.End()
	dvfsSp := s.tr.Start(s.trParent, "sched.dvfs")
	if cap(freqs) < len(selected) {
		freqs = make([]float64, len(selected))
	}
	freqs = freqs[:len(selected)]
	s.frequencyPlanInto(freqs, selected, ch, modelBits)
	dvfsSp.End()
	return selected, freqs
}

// FrequencyPlanSelected runs Algorithm 3 over the scheduler's SoA state for
// the given fleet indices, returning a fresh frequency slice aligned with
// selected. It is bit-identical to the retained AoS FrequencyPlan on the
// corresponding device slice (ties broken by fleet index == device ID);
// the differential test pins this.
func (s *Scheduler) FrequencyPlanSelected(selected []int, ch wireless.Channel, modelBits float64) []float64 {
	if len(selected) == 0 {
		return nil
	}
	freqs := make([]float64, len(selected))
	s.frequencyPlanInto(freqs, selected, ch, modelBits)
	return freqs
}

// planSorter sorts position indices of one round's cohort by (compute delay
// at f_max ascending, fleet index ascending) — Algorithm 3, line 1. The
// keys are unique (selected holds distinct fleet indices), so plain
// sort.Sort produces the same permutation as the stable sort in the naive
// reference. A persistent struct sorted through a pointer receiver keeps
// the sort.Interface conversion allocation-free.
type planSorter struct {
	order []int
	delay []float64
	sel   []int
}

func (p *planSorter) Len() int      { return len(p.order) }
func (p *planSorter) Swap(i, j int) { p.order[i], p.order[j] = p.order[j], p.order[i] }
func (p *planSorter) Less(i, j int) bool {
	a, b := p.order[i], p.order[j]
	if p.delay[a] != p.delay[b] { //helcfl:allow(floatcompare) exact sort tie-break: bitwise-equal delays must fall through to the index order, same key the naive FrequencyPlan comparator uses
		return p.delay[a] < p.delay[b]
	}
	return p.sel[a] < p.sel[b]
}

// frequencyPlanInto is Algorithm 3 on SoA state writing into freqs (length
// len(selected)), allocation-free once the scheduler's scratch is warm.
func (s *Scheduler) frequencyPlanInto(freqs []float64, selected []int, ch wireless.Channel, modelBits float64) {
	n := len(selected)
	if n == 0 {
		return
	}
	scale := float64(s.params.StepsPerRound)
	fleet := s.fleet
	if cap(s.planOrder) < n {
		s.planOrder = make([]int, n)
		s.planDelay = make([]float64, n)
	}
	order := s.planOrder[:n]
	delay := s.planDelay[:n]
	for i, q := range selected {
		order[i] = i
		delay[i] = scale * fleet.ComputeDelayAtMax(q)
	}
	// Line 1: ascending order of model-update delay at max frequency.
	s.sorter = planSorter{order: order, delay: delay, sel: selected}
	sort.Sort(&s.sorter)

	// Lines 3–4: the first user has no slack and runs at maximum frequency.
	first := order[0]
	q0 := selected[first]
	freqs[first] = fleet.FMax[q0]
	// prevEnd is T_q^j of the previous user: the time its upload completes,
	// assuming the chain starts at round time zero.
	prevEnd := delay[first] + ch.UploadDelay(modelBits, fleet.TxPower[q0], fleet.ChannelGain[q0])

	clamp := s.params.Clamp
	for k := 1; k < n; k++ {
		i := order[k]
		q := selected[i]
		// Line 9: stretch this user's computation to fill the previous
		// user's total delay: f = π|D| / T_prev (Eq. (4) inverted).
		f := scale * fleet.TotalCycles(q) / prevEnd
		if clamp {
			// Project onto [f_min, f_max] (constraint 15) and, when the
			// device exposes discrete DVFS levels, snap UP to the next
			// operating point so the chain time is never missed.
			f = fleet.SnapFreq(q, f)
		}
		freqs[i] = f
		// Line 8 for the next iteration: this user's total delay at the
		// determined frequency. With clamping, the realized upload start is
		// delayed to when the channel frees (compute may finish early after
		// an f_min clamp) or pushed later (an f_max clamp cannot meet
		// prevEnd), so chain on the realized completion time.
		computeDone := scale * fleet.ComputeDelay(q, f)
		start := computeDone
		if clamp && prevEnd > start {
			start = prevEnd
		}
		prevEnd = start + ch.UploadDelay(modelBits, fleet.TxPower[q], fleet.ChannelGain[q])
	}
}

// FrequencyPlan implements Algorithm 3 over an AoS device slice: determine
// the CPU operating frequencies of the selected users by reclaiming TDMA
// slack. The users are sorted by compute delay at maximum frequency; the
// first runs at f_max and each subsequent user is slowed so its local
// update completes exactly when the previous user's upload finishes.
//
// This is the retained naive reference the SoA frequencyPlanInto is proven
// bit-identical against (and the path baselines without a Scheduler still
// use). The returned slice aligns with devs (input order). steps scales
// compute delay as in Params.StepsPerRound. If clamp is true the
// frequencies are projected onto [f_min, f_max] (constraint (15)) and the
// chaining uses the realized post-clamp completion times; if false the
// function returns the literal pseudocode values, which may violate the
// device's range.
func FrequencyPlan(devs []*device.Device, ch wireless.Channel, modelBits float64, steps int, clamp bool) []float64 {
	if len(devs) == 0 {
		return nil
	}
	if steps <= 0 {
		panic(fmt.Sprintf("core: non-positive steps %d", steps))
	}
	scale := float64(steps)

	// Line 1: ascending order of model-update delay at max frequency.
	order := make([]int, len(devs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := scale * devs[order[a]].ComputeDelayAtMax()
		db := scale * devs[order[b]].ComputeDelayAtMax()
		if da != db {
			return da < db
		}
		return devs[order[a]].ID < devs[order[b]].ID
	})

	freqs := make([]float64, len(devs))
	// Lines 3–4: the first user has no slack and runs at maximum frequency.
	first := devs[order[0]]
	freqs[order[0]] = first.FMax
	// prevEnd is T_q^j of the previous user: the time its upload completes,
	// assuming the chain starts at round time zero.
	prevEnd := scale*first.ComputeDelayAtMax() +
		ch.UploadDelay(modelBits, first.TxPower, first.ChannelGain)

	for k := 1; k < len(order); k++ {
		d := devs[order[k]]
		// Line 9: stretch this user's computation to fill the previous
		// user's total delay: f = π|D| / T_prev (Eq. (4) inverted).
		f := scale * d.TotalCycles() / prevEnd
		if clamp {
			// Project onto [f_min, f_max] (constraint 15) and, when the
			// device exposes discrete DVFS levels, snap UP to the next
			// operating point so the chain time is never missed.
			f = d.SnapFreq(f)
		}
		freqs[order[k]] = f
		// Line 8 for the next iteration: this user's total delay at the
		// determined frequency. With clamping, the realized upload start is
		// delayed to when the channel frees (compute may finish early after
		// an f_min clamp) or pushed later (an f_max clamp cannot meet
		// prevEnd), so chain on the realized completion time.
		computeDone := scale * d.ComputeDelay(f)
		start := computeDone
		if clamp && prevEnd > start {
			start = prevEnd
		}
		prevEnd = start + ch.UploadDelay(modelBits, d.TxPower, d.ChannelGain)
	}
	return freqs
}
