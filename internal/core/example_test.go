package core_test

import (
	"fmt"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

// Three heterogeneous users; Algorithm 3 keeps the fastest at f_max and
// slows the rest into the TDMA slack without moving the round makespan.
func ExampleFrequencyPlan() {
	mk := func(id, samples int, fmaxGHz float64) *device.Device {
		return &device.Device{
			ID: id, FMin: 0.3e9, FMax: fmaxGHz * 1e9,
			CyclesPerSample: 1e8, Kappa: 2e-28,
			TxPower: 0.2, ChannelGain: 1.0, NumSamples: samples,
		}
	}
	devs := []*device.Device{mk(0, 40, 2.0), mk(1, 40, 1.0), mk(2, 40, 0.5)}
	ch := wireless.Channel{BandwidthHz: 2e6, NoisePower: 0.1}
	freqs := core.FrequencyPlan(devs, ch, 8e5, 1, true)
	for i, f := range freqs {
		fmt.Printf("user %d: %.2f GHz\n", i, f/1e9)
	}
	// In this cohort the slower devices cannot even meet the chain time at
	// their maxima, so constraint (15) clamps them to f_max — Algorithm 3
	// never pushes a device outside its range.
	// Output:
	// user 0: 2.00 GHz
	// user 1: 1.00 GHz
	// user 2: 0.50 GHz
}

// The greedy-decay utility: a fresh fast user outranks a fresh slow user,
// but after a few selections the decay η^α hands the slot over.
func ExampleScheduler_Utility() {
	mk := func(id, samples int, fmaxGHz float64) *device.Device {
		return &device.Device{
			ID: id, FMin: 0.3e9, FMax: fmaxGHz * 1e9,
			CyclesPerSample: 1e8, Kappa: 2e-28,
			TxPower: 0.2, ChannelGain: 1.0, NumSamples: samples,
		}
	}
	devs := []*device.Device{mk(0, 40, 2.0), mk(1, 40, 0.5)}
	ch := wireless.Channel{BandwidthHz: 2e6, NoisePower: 0.1}
	s, _ := core.NewScheduler(devs, ch, 8e5, core.Params{
		Eta: 0.5, Fraction: 0.5, StepsPerRound: 1, Clamp: true,
	})
	fmt.Printf("round 1 picks user %d\n", s.SelectRound()[0])
	fmt.Printf("round 2 picks user %d\n", s.SelectRound()[0])
	fmt.Printf("round 3 picks user %d\n", s.SelectRound()[0])
	// Output:
	// round 1 picks user 0
	// round 2 picks user 0
	// round 3 picks user 1
}
