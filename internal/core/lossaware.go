package core

import (
	"fmt"
	"math"
)

// LossAwareScheduler extends the HELCFL utility (Eq. 20) with a statistical
// term in the spirit of Oort (Lai et al., OSDI'21): users whose last local
// training loss was high carry more useful gradient signal and receive a
// utility bonus,
//
//	u_q = η^{α_q} · (1 + λ·L̂_q) / (T_q^cal + T_q^com),
//
// where L̂_q is the user's last observed local loss normalized by the
// current fleet mean (1 for never-observed users). With λ = 0 this is
// exactly the paper's scheduler. This is an extension beyond the paper,
// exercised by the "lossaware" ablation.
type LossAwareScheduler struct {
	*Scheduler
	// Lambda weights the statistical term; 0 disables it.
	Lambda float64

	lastLoss []float64
	seen     []bool
}

// NewLossAwareScheduler wraps a scheduler with loss feedback.
func NewLossAwareScheduler(s *Scheduler, lambda float64) (*LossAwareScheduler, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("core: negative loss weight %g", lambda)
	}
	return &LossAwareScheduler{
		Scheduler: s,
		Lambda:    lambda,
		lastLoss:  make([]float64, s.NumUsers()),
		seen:      make([]bool, s.NumUsers()),
	}, nil
}

// ObserveRound records the local losses reported by the selected users of
// round j — the feedback channel the FL engine drives.
func (l *LossAwareScheduler) ObserveRound(j int, selected []int, losses []float64) {
	if len(selected) != len(losses) {
		panic(fmt.Sprintf("core: %d selected but %d losses", len(selected), len(losses)))
	}
	for i, q := range selected {
		if q < 0 || q >= len(l.lastLoss) {
			panic(fmt.Sprintf("core: observed user %d outside fleet", q))
		}
		if math.IsNaN(losses[i]) || math.IsInf(losses[i], 0) || losses[i] < 0 {
			continue // defensive: ignore degenerate reports
		}
		l.lastLoss[q] = losses[i]
		l.seen[q] = true
	}
}

// lossBonus returns 1 + λ·L̂_q.
func (l *LossAwareScheduler) lossBonus(q int) float64 {
	if l.Lambda == 0 || !l.seen[q] {
		return 1 + l.Lambda // unseen users get the mean bonus (L̂ = 1)
	}
	mean := 0.0
	n := 0
	for i, s := range l.seen {
		if s {
			mean += l.lastLoss[i]
			n++
		}
	}
	if n == 0 || mean == 0 {
		return 1 + l.Lambda
	}
	mean /= float64(n)
	return 1 + l.Lambda*l.lastLoss[q]/mean
}

// Utility returns the loss-augmented utility of user q.
func (l *LossAwareScheduler) Utility(q int) float64 {
	return l.Scheduler.Utility(q) * l.lossBonus(q)
}

// SelectRound mirrors Algorithm 2's loop over the augmented utility.
func (l *LossAwareScheduler) SelectRound() []int {
	n := l.NumSelect()
	users := l.NumUsers()
	utilities := make([]float64, users)
	for q := 0; q < users; q++ {
		utilities[q] = l.Utility(q)
	}
	l.lastUtil = utilities
	selectable := make([]bool, users)
	for q := range selectable {
		selectable[q] = true
	}
	selected := make([]int, 0, n)
	for len(selected) < n {
		best := -1
		for q := 0; q < users; q++ {
			if !selectable[q] {
				continue
			}
			if best == -1 || utilities[q] > utilities[best] {
				best = q
			}
		}
		if best == -1 {
			break
		}
		selectable[best] = false
		selected = append(selected, best)
		l.markSelected(best)
	}
	return selected
}
