package core

import "fmt"

// SchedulerState is the cross-round mutable state of Algorithm 2: the α_q
// appearance counters that drive Eq. (20)'s η^{α_q} decay, plus the last
// reported utility vector (observability state, restored so a resumed
// campaign reports identically). The static initialization-phase delays are
// deliberately excluded — they are re-derived from the device fleet, which
// the caller persists separately.
type SchedulerState struct {
	Alpha    []int
	LastUtil []float64
}

// ExportState returns a deep copy of the scheduler's mutable state, taken
// at a round boundary (after the most recent SelectRound).
func (s *Scheduler) ExportState() SchedulerState {
	return SchedulerState{
		Alpha:    append([]int(nil), s.alpha...),
		LastUtil: append([]float64(nil), s.lastUtil...),
	}
}

// ImportState overwrites the scheduler's mutable state from a previously
// exported snapshot. The fleet shape must match; a scheduler restored this
// way makes bit-identical selections to one that never restarted.
func (s *Scheduler) ImportState(st SchedulerState) error {
	if len(st.Alpha) != s.NumUsers() {
		return fmt.Errorf("core: state has %d appearance counters for fleet of %d", len(st.Alpha), s.NumUsers())
	}
	for q, a := range st.Alpha {
		if a < 0 {
			return fmt.Errorf("core: negative appearance counter %d for user %d", a, q)
		}
	}
	if st.LastUtil != nil && len(st.LastUtil) != s.NumUsers() {
		return fmt.Errorf("core: state has %d utilities for fleet of %d", len(st.LastUtil), s.NumUsers())
	}
	s.alpha = append([]int(nil), st.Alpha...)
	s.lastUtil = append([]float64(nil), st.LastUtil...)
	// Rebuild the η^{α_q} memo from the restored counters with the pow
	// reference — the same multiplication sequence the incremental updates
	// perform, so a restored scheduler stays bit-identical to one that
	// never restarted.
	for q, a := range s.alpha {
		s.etaPow[q] = pow(s.params.Eta, a)
	}
	return nil
}

// LossAwareState extends SchedulerState with the loss-feedback memory of
// the loss-aware extension.
type LossAwareState struct {
	Base     SchedulerState
	LastLoss []float64
	Seen     []bool
}

// ExportState returns a deep copy of the loss-aware scheduler's mutable
// state (decay counters plus loss feedback).
func (l *LossAwareScheduler) ExportState() LossAwareState {
	return LossAwareState{
		Base:     l.Scheduler.ExportState(),
		LastLoss: append([]float64(nil), l.lastLoss...),
		Seen:     append([]bool(nil), l.seen...),
	}
}

// ImportState restores a previously exported loss-aware snapshot.
func (l *LossAwareScheduler) ImportState(st LossAwareState) error {
	if len(st.LastLoss) != l.NumUsers() || len(st.Seen) != l.NumUsers() {
		return fmt.Errorf("core: loss state sized %d/%d for fleet of %d", len(st.LastLoss), len(st.Seen), l.NumUsers())
	}
	if err := l.Scheduler.ImportState(st.Base); err != nil {
		return err
	}
	l.lastLoss = append([]float64(nil), st.LastLoss...)
	l.seen = append([]bool(nil), st.Seen...)
	return nil
}
