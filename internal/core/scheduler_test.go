package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"helcfl/internal/device"
	"helcfl/internal/sim"
	"helcfl/internal/wireless"
)

const testModelBits = 4e5

func fleet(n int, seed int64) []*device.Device {
	cfg := device.DefaultCatalogConfig()
	cfg.Q = n
	devs := device.NewCatalog(cfg, rand.New(rand.NewSource(seed)))
	for i, d := range devs {
		d.NumSamples = 30 + 7*(i%6)
	}
	return devs
}

func newSched(t *testing.T, devs []*device.Device, p Params) *Scheduler {
	t.Helper()
	s, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Eta: 0, Fraction: 0.1, StepsPerRound: 1},
		{Eta: 1, Fraction: 0.1, StepsPerRound: 1},
		{Eta: 0.9, Fraction: 0, StepsPerRound: 1},
		{Eta: 0.9, Fraction: 1.5, StepsPerRound: 1},
		{Eta: 0.9, Fraction: 0.1, StepsPerRound: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: Validate must fail for %+v", i, p)
		}
	}
}

func TestNewSchedulerRejectsDataFreeDevices(t *testing.T) {
	devs := fleet(3, 1)
	devs[1].NumSamples = 0
	if _, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, DefaultParams()); err == nil {
		t.Fatal("device without data must be rejected")
	}
}

func TestUtilityEq20(t *testing.T) {
	devs := fleet(5, 2)
	s := newSched(t, devs, DefaultParams())
	for q := range devs {
		want := 1.0 / (s.TCalMaxOf(q) + s.TComOf(q))
		if got := s.Utility(q); math.Abs(got-want) > 1e-15 {
			t.Fatalf("fresh utility[%d] = %g, want %g", q, got, want)
		}
	}
	// After two selections, utility decays by η².
	s.markSelected(0)
	s.markSelected(0)
	want := 0.9 * 0.9 / (s.TCalMaxOf(0) + s.TComOf(0))
	if got := s.Utility(0); math.Abs(got-want) > 1e-15 {
		t.Fatalf("decayed utility = %g, want %g", got, want)
	}
}

func TestNumSelect(t *testing.T) {
	devs := fleet(100, 3)
	s := newSched(t, devs, DefaultParams())
	if s.NumSelect() != 10 {
		t.Fatalf("NumSelect = %d, want 10", s.NumSelect())
	}
	p := DefaultParams()
	p.Fraction = 0.001
	s2 := newSched(t, devs, p)
	if s2.NumSelect() != 1 {
		t.Fatalf("NumSelect floor = %d, want 1", s2.NumSelect())
	}
}

func TestSelectRoundPicksFastestFirst(t *testing.T) {
	devs := fleet(20, 4)
	s := newSched(t, devs, DefaultParams())
	sel := s.SelectRound()
	if len(sel) != 2 {
		t.Fatalf("selected %d users, want 2", len(sel))
	}
	// With all counters at zero, the winners are exactly the users with the
	// smallest static delay.
	best, second := -1, -1
	for q := range devs {
		if best == -1 || s.StaticDelay(q) < s.StaticDelay(best) {
			second = best
			best = q
		} else if second == -1 || s.StaticDelay(q) < s.StaticDelay(second) {
			second = q
		}
	}
	if sel[0] != best || sel[1] != second {
		t.Fatalf("selected %v, want [%d %d]", sel, best, second)
	}
	// Their counters decayed.
	a := s.Appearances()
	if a[best] != 1 || a[second] != 1 {
		t.Fatalf("appearance counters = %v", a)
	}
}

func TestSelectRoundNoDuplicatesWithinRound(t *testing.T) {
	devs := fleet(30, 5)
	p := DefaultParams()
	p.Fraction = 0.5
	s := newSched(t, devs, p)
	sel := s.SelectRound()
	seen := map[int]bool{}
	for _, q := range sel {
		if seen[q] {
			t.Fatalf("user %d selected twice in one round", q)
		}
		seen[q] = true
	}
}

// The headline property of greedy-decay selection: unlike pure greedy
// (FedCS), every user is eventually selected, so all data enters training.
func TestGreedyDecayEventuallyCoversAllUsers(t *testing.T) {
	devs := fleet(50, 6)
	s := newSched(t, devs, DefaultParams()) // C = 0.1 → 5 per round
	rounds := 0
	for ; rounds < 500; rounds++ {
		s.SelectRound()
		all := true
		for _, a := range s.Appearances() {
			if a == 0 {
				all = false
				break
			}
		}
		if all {
			break
		}
	}
	if rounds == 500 {
		t.Fatal("greedy-decay never covered all users in 500 rounds")
	}
	// With η = 0.9 and 10% fraction the cover happens well before pure
	// round-robin would require.
	if rounds > 200 {
		t.Fatalf("cover took %d rounds, decay too weak", rounds)
	}
}

// Without decay (η→1 limit approximated by α never incrementing), greedy
// would pick the same users forever; the decay term is what rotates them.
func TestDecayRotatesSelection(t *testing.T) {
	devs := fleet(40, 7)
	s := newSched(t, devs, DefaultParams())
	first := s.SelectRound()
	// Run a few rounds; the fast users' utilities decay below slower users'.
	var later []int
	for i := 0; i < 20; i++ {
		later = s.SelectRound()
	}
	same := true
	for i := range first {
		if first[i] != later[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("selection never rotated under decay")
	}
}

// Property: selection is deterministic given the same history, and α grows
// by exactly N per round.
func TestSelectRoundCountersQuick(t *testing.T) {
	f := func(seed int64, etaRaw uint8) bool {
		eta := 0.5 + float64(etaRaw%49)/100.0 // 0.50–0.98
		devs := fleet(25, seed)
		p := Params{Eta: eta, Fraction: 0.2, StepsPerRound: 1, Clamp: true}
		s, err := NewScheduler(devs, wireless.DefaultChannel(), testModelBits, p)
		if err != nil {
			return false
		}
		total := 0
		for r := 0; r < 10; r++ {
			sel := s.SelectRound()
			total += len(sel)
		}
		sum := 0
		for _, a := range s.Appearances() {
			sum += a
		}
		return sum == total && total == 10*s.NumSelect()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyPlanFirstUserAtMax(t *testing.T) {
	devs := fleet(6, 8)
	ch := wireless.DefaultChannel()
	freqs := FrequencyPlan(devs, ch, testModelBits, 1, true)
	// Find the user with the smallest compute delay at max frequency: it
	// must run at FMax.
	fastest := 0
	for q := range devs {
		if devs[q].ComputeDelayAtMax() < devs[fastest].ComputeDelayAtMax() {
			fastest = q
		}
	}
	if freqs[fastest] != devs[fastest].FMax {
		t.Fatalf("fastest user frequency = %g, want FMax %g", freqs[fastest], devs[fastest].FMax)
	}
}

func TestFrequencyPlanWithinRangeWhenClamped(t *testing.T) {
	devs := fleet(12, 9)
	freqs := FrequencyPlan(devs, wireless.DefaultChannel(), testModelBits, 1, true)
	for i, f := range freqs {
		if f < devs[i].FMin-1e-9 || f > devs[i].FMax+1e-9 {
			t.Fatalf("device %d frequency %g outside [%g, %g]", i, f, devs[i].FMin, devs[i].FMax)
		}
	}
}

func TestFrequencyPlanUnclampedMatchesPseudocode(t *testing.T) {
	ch := wireless.Channel{BandwidthHz: 1e6, NoisePower: 0.1}
	mk := func(id, samples int, fmax float64) *device.Device {
		return &device.Device{
			ID: id, FMin: 0.3e9, FMax: fmax,
			CyclesPerSample: 1e7, Kappa: 2e-28,
			TxPower: 0.2, ChannelGain: 1.0, NumSamples: samples,
		}
	}
	d1 := mk(0, 40, 2e9) // T_cal^max = 0.2 s (first)
	d2 := mk(1, 60, 1e9) // T_cal^max = 0.6 s
	devs := []*device.Device{d1, d2}
	bits := 1e6
	tcom := ch.UploadDelay(bits, 0.2, 1.0)
	freqs := FrequencyPlan(devs, ch, bits, 1, false)
	if freqs[0] != d1.FMax {
		t.Fatalf("first user freq = %g", freqs[0])
	}
	// Pseudocode: T_1 = 0.2 + tcom; f_2 = π|D_2| / T_1.
	want := 6e8 / (0.2 + tcom)
	if math.Abs(freqs[1]-want)/want > 1e-12 {
		t.Fatalf("second user freq = %g, want %g", freqs[1], want)
	}
}

func TestFrequencyPlanEmptyAndSingle(t *testing.T) {
	if FrequencyPlan(nil, wireless.DefaultChannel(), testModelBits, 1, true) != nil {
		t.Fatal("empty plan must be nil")
	}
	devs := fleet(1, 10)
	freqs := FrequencyPlan(devs, wireless.DefaultChannel(), testModelBits, 1, true)
	if freqs[0] != devs[0].FMax {
		t.Fatal("single user must run at FMax")
	}
}

// The paper's central claim for Algorithm 3: the DVFS plan never increases
// the round makespan ("without degrading FL training performance") while
// strictly reducing compute energy whenever there is slack to reclaim.
func TestFrequencyPlanPreservesMakespanQuick(t *testing.T) {
	ch := wireless.DefaultChannel()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 2
		devs := fleet(n, seed)
		maxRes := sim.SimulateRound(devs, sim.MaxFrequencies(devs), ch, testModelBits, 1)
		freqs := FrequencyPlan(devs, ch, testModelBits, 1, true)
		dvfsRes := sim.SimulateRound(devs, freqs, ch, testModelBits, 1)
		if dvfsRes.Makespan > maxRes.Makespan+1e-9 {
			return false
		}
		return dvfsRes.ComputeEnergy <= maxRes.ComputeEnergy+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyPlanSavesEnergyWithSlack(t *testing.T) {
	devs := fleet(10, 11)
	ch := wireless.DefaultChannel()
	maxRes := sim.SimulateRound(devs, sim.MaxFrequencies(devs), ch, testModelBits, 1)
	if maxRes.TotalSlack <= 0 {
		t.Skip("scenario produced no slack")
	}
	freqs := FrequencyPlan(devs, ch, testModelBits, 1, true)
	dvfsRes := sim.SimulateRound(devs, freqs, ch, testModelBits, 1)
	if dvfsRes.ComputeEnergy >= maxRes.ComputeEnergy {
		t.Fatalf("DVFS did not save energy: %g vs %g", dvfsRes.ComputeEnergy, maxRes.ComputeEnergy)
	}
}

func TestPlanRoundAlignment(t *testing.T) {
	devs := fleet(30, 12)
	s := newSched(t, devs, DefaultParams())
	ch := wireless.DefaultChannel()
	sel, freqs := s.PlanRound(ch, testModelBits)
	if len(sel) != len(freqs) {
		t.Fatalf("selection/frequency misalignment: %d vs %d", len(sel), len(freqs))
	}
	for i, q := range sel {
		if freqs[i] < devs[q].FMin-1e-9 || freqs[i] > devs[q].FMax+1e-9 {
			t.Fatalf("user %d frequency %g outside range", q, freqs[i])
		}
	}
}

func TestPowMatchesMathPow(t *testing.T) {
	for a := 0; a < 10; a++ {
		if math.Abs(pow(0.9, a)-math.Pow(0.9, float64(a))) > 1e-12 {
			t.Fatalf("pow(0.9, %d) disagrees with math.Pow", a)
		}
	}
}
