package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzMatMulTiledVsNaive drives the tiled a·b, aᵀ·b, and a·bᵀ kernels
// against their naive references with fuzzer-chosen shapes and a raw
// float64 bit pattern injected into one element, requiring bit-for-bit
// identical outputs. Shapes are clamped so each case runs in microseconds;
// the corpus seeds cover block-boundary and degenerate 1×N/N×1 shapes.
func FuzzMatMulTiledVsNaive(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), int64(0), uint64(0))
	f.Add(uint8(1), uint8(65), uint8(1), int64(1), math.Float64bits(-0.0))          // 1×N · N×1 across blockK
	f.Add(uint8(64), uint8(64), uint8(64), int64(2), math.Float64bits(1e300))       // exact block multiple
	f.Add(uint8(65), uint8(63), uint8(66), int64(3), math.Float64bits(math.Inf(1))) // straddles blockK
	f.Add(uint8(7), uint8(129), uint8(3), int64(4), math.Float64bits(math.NaN()))   // two k-blocks + NaN
	f.Fuzz(func(t *testing.T, mr, kr, nr uint8, seed int64, raw uint64) {
		m := int(mr)%72 + 1
		k := int(kr)%140 + 1 // crosses the blockK=64 boundary twice
		n := int(nr)%72 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(m, k), New(k, n)
		fillAdversarial(a, rng)
		fillAdversarial(b, rng)
		// Inject the fuzzer's raw bit pattern (possibly Inf/NaN/denormal)
		// into one element of each operand.
		a.Data()[rng.Intn(m*k)] = math.Float64frombits(raw)
		b.Data()[rng.Intn(k*n)] = math.Float64frombits(raw)

		if got, want := MatMul(a, b), MatMulNaive(a, b); !bitIdentical(got, want) {
			t.Fatalf("MatMul (%d,%d)x(%d,%d) diverges from naive", m, k, k, n)
		}
		at := a.Transpose()
		if got, want := MatMulTransA(at, b), MatMulTransANaive(at, b); !bitIdentical(got, want) {
			t.Fatalf("MatMulTransA (%d,%d)ᵀx(%d,%d) diverges from naive", k, m, k, n)
		}
		bt := b.Transpose()
		if got, want := MatMulTransB(a, bt), MatMulTransBNaive(a, bt); !bitIdentical(got, want) {
			t.Fatalf("MatMulTransB (%d,%d)x(%d,%d)ᵀ diverges from naive", m, k, n, k)
		}
	})
}

// FuzzIm2ColTiledVsNaive drives the patch-unroll and its adjoint against
// the references across fuzzer-chosen geometries, skipping invalid ones
// exactly when the reference would reject them.
func FuzzIm2ColTiledVsNaive(f *testing.F) {
	f.Add(uint8(3), uint8(8), uint8(8), uint8(3), uint8(1), uint8(1), int64(0))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(0), int64(1))
	f.Add(uint8(2), uint8(9), uint8(5), uint8(4), uint8(3), uint8(2), int64(2))
	f.Fuzz(func(t *testing.T, cr, hr, wr, kr, sr, pr uint8, seed int64) {
		c := int(cr)%4 + 1
		h := int(hr)%12 + 1
		w := int(wr)%12 + 1
		kh := int(kr)%5 + 1
		kw := int(kr>>4)%5 + 1
		stride := int(sr)%3 + 1
		pad := int(pr) % 3
		if (h+2*pad-kh)/stride+1 <= 0 || (w+2*pad-kw)/stride+1 <= 0 {
			return // the reference panics on empty outputs; geometry invalid
		}
		rng := rand.New(rand.NewSource(seed))
		x := New(c, h, w)
		fillAdversarial(x, rng)
		want := Im2ColNaive(x, kh, kw, stride, pad)
		if got := Im2Col(x, kh, kw, stride, pad); !bitIdentical(got, want) {
			t.Fatalf("Im2Col diverges: c=%d h=%d w=%d kh=%d kw=%d s=%d p=%d", c, h, w, kh, kw, stride, pad)
		}
		cols := New(want.Dim(0), want.Dim(1))
		fillAdversarial(cols, rng)
		wantIm := Col2ImNaive(cols, c, h, w, kh, kw, stride, pad)
		if got := Col2Im(cols, c, h, w, kh, kw, stride, pad); !bitIdentical(got, wantIm) {
			t.Fatalf("Col2Im diverges: c=%d h=%d w=%d kh=%d kw=%d s=%d p=%d", c, h, w, kh, kw, stride, pad)
		}
	})
}
