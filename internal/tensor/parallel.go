package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic data parallelism.
//
// Kernels shard work by contiguous, disjoint output ranges, so the result
// is bit-for-bit independent of goroutine scheduling: no shard ever
// contributes to another shard's output and no cross-shard reduction
// exists. The only effect of the worker count is wall-clock time.

// workerSetting holds the configured worker count; 0 means "use
// GOMAXPROCS". Atomic so tests can flip it while kernels run under -race.
var workerSetting atomic.Int32

// Workers returns the effective kernel worker count: the value installed
// by SetWorkers, or GOMAXPROCS when unset.
func Workers() int {
	if w := int(workerSetting.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers installs the kernel worker count and returns the previous
// setting (0 = follow GOMAXPROCS). n ≤ 0 resets to the default. Sharding
// never changes results, only concurrency, so this is a pure performance
// knob; tests use it to force the parallel path on small machines.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerSetting.Swap(int32(n)))
}

// WorkersFor returns the shard count a kernel should use for n work units
// costing flops multiply-adds total: 1 when the work is too small to
// amortize goroutine spawns or only one worker is configured. Callers
// branch on the result so the serial path never materializes a closure —
// that is what keeps the Into kernels allocation-free in steady state.
func WorkersFor(n, flops int) int {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 || flops < parallelMinFlops {
		return 1
	}
	return w
}

// ParallelFor runs fn over [0, n) split into at most Workers() contiguous
// disjoint shards, blocking until all complete. fn must only write state
// owned by its index range. With one worker (or n ≤ 1) it calls fn inline
// and allocates nothing; callers gate their own size thresholds.
func ParallelFor(n int, fn func(lo, hi int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	Shard(n, w, fn)
}

// Shard fans [0, n) out over w goroutines in ceil(n/w)-sized ranges and
// blocks until all complete. fn must only write state owned by its index
// range. Callers that need an allocation-free serial path branch on
// WorkersFor first and only build the closure when w > 1.
func Shard(n, w int, fn func(lo, hi int)) {
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
