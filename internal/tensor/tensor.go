// Package tensor provides dense, row-major float64 tensors and the linear
// algebra primitives the neural-network substrate needs: elementwise
// arithmetic, matrix multiplication, reductions, padding, and the
// im2col/col2im transforms used by convolution layers.
//
// Tensors carry an explicit shape; all operations validate shapes eagerly and
// panic on mismatch, because a shape error is a programming bug, not a
// runtime condition a caller can recover from.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, row-major tensor of float64 values.
//
// The zero value is an empty (rank-0, size-0) tensor; use New or one of the
// constructors for anything useful.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. Every dimension
// must be positive. A call with no dimensions returns a scalar-like tensor
// holding a single value.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); the caller must not alias it afterwards unless that
// sharing is intended. len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Dim returns the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Data returns the backing slice in row-major order. Mutations are visible
// to the tensor; this is the intended fast path for kernels.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape. The element
// count must be unchanged. The returned tensor shares data with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// offset converts a multi-index to a flat offset.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx...)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx...)] = v }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and u have the same shape and identical elements.
func (t *Tensor) Equal(u *Tensor) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.data {
		if t.data[i] != u.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and u have the same shape and every pair of
// elements differs by at most tol in absolute value.
func (t *Tensor) AllClose(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.data {
		d := t.data[i] - u.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// String renders a compact description, with full contents for small
// tensors and a summary for large ones.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

// checkSameShape panics unless all tensors share t's shape.
func (t *Tensor) checkSameShape(op string, us ...*Tensor) {
	for _, u := range us {
		if !t.SameShape(u) {
			panic(fmt.Sprintf("tensor: %s shape mismatch: %v vs %v", op, t.shape, u.shape))
		}
	}
}
