package tensor

import (
	"math/rand"
	"testing"
)

// Alloc gates: the Into kernels are the training hot path and must not
// touch the heap in steady state. testing.AllocsPerRun pins that at zero;
// any accidental allocation (a boxed value, a grown slice, a closure
// capture) fails here before it can show up as GC pressure in a bench.

func TestIntoKernelsAllocateNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := New(33, 65), New(65, 47) // off-block shapes, below parallelMinFlops
	fillAdversarial(a, rng)
	fillAdversarial(b, rng)
	at, bt := a.Transpose(), b.Transpose()
	dst := New(33, 47)
	x := New(3, 8, 8)
	fillAdversarial(x, rng)
	cols := Im2ColNaive(x, 3, 3, 1, 1)
	colsDst := New(cols.Dim(0), cols.Dim(1))
	img := New(3, 8, 8)
	bx := New(4, 3, 8, 8)
	fillAdversarial(bx, rng)
	bcols := New(27, 4*64)
	bimg := New(4, 3, 8, 8)
	colSums := New(65)

	pins := []struct {
		name string
		fn   func()
	}{
		{"MatMulInto", func() { MatMulInto(dst, a, b) }},
		{"MatMulTransAInto", func() { MatMulTransAInto(dst, at, b) }},
		{"MatMulTransBInto", func() { MatMulTransBInto(dst, a, bt) }},
		{"Im2ColInto", func() { Im2ColInto(colsDst, x, 3, 3, 1, 1) }},
		{"Col2ImInto", func() { Col2ImInto(img, cols, 3, 8, 8, 3, 3, 1, 1) }},
		{"Im2ColBatchInto", func() { Im2ColBatchInto(bcols, bx, 3, 3, 1, 1) }},
		{"Col2ImBatchInto", func() { Col2ImBatchInto(bimg, bcols, 4, 3, 8, 8, 3, 3, 1, 1) }},
		{"AddColSumsInto", func() { a.AddColSumsInto(colSums) }},
	}
	for _, pin := range pins {
		pin.fn() // warm up once outside the measured runs
		if n := testing.AllocsPerRun(50, pin.fn); n != 0 {
			t.Errorf("%s allocates %v times per call, want 0", pin.name, n)
		}
	}
}

// Benchmarks comparing the naive references against the tiled kernels, and
// the allocating entry points against their Into forms. `make bench` runs
// these; sizes bracket the shapes the experiment models actually hit.

func benchPair(b *testing.B, m, k, n int) (x, y *Tensor) {
	rng := rand.New(rand.NewSource(6))
	x, y = New(m, k), New(k, n)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	for i := range y.Data() {
		y.Data()[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	return x, y
}

func BenchmarkMatMulNaive128(b *testing.B) {
	x, y := benchPair(b, 128, 128, 128)
	for i := 0; i < b.N; i++ {
		MatMulNaive(x, y)
	}
}

func BenchmarkMatMulTiled128(b *testing.B) {
	x, y := benchPair(b, 128, 128, 128)
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulInto128(b *testing.B) {
	x, y := benchPair(b, 128, 128, 128)
	dst := New(128, 128)
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulNaive512(b *testing.B) {
	x, y := benchPair(b, 512, 512, 512)
	for i := 0; i < b.N; i++ {
		MatMulNaive(x, y)
	}
}

func BenchmarkMatMulTiled512(b *testing.B) {
	x, y := benchPair(b, 512, 512, 512)
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTransBNaive256(b *testing.B) {
	x, y := benchPair(b, 256, 256, 256)
	for i := 0; i < b.N; i++ {
		MatMulTransBNaive(x, y)
	}
}

func BenchmarkMatMulTransBTiled256(b *testing.B) {
	x, y := benchPair(b, 256, 256, 256)
	for i := 0; i < b.N; i++ {
		MatMulTransB(x, y)
	}
}
