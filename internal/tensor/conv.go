package tensor

import "fmt"

// Im2Col unrolls image patches into columns for convolution-as-matmul.
//
// x has shape (C, H, W). The result has shape (C·kh·kw, oh·ow) where
// oh = (H+2·pad-kh)/stride + 1 and ow likewise. Each output column is the
// flattened receptive field for one output position; out-of-bounds (padded)
// positions contribute zeros.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col needs rank-3 (C,H,W) input, got %v", x.shape))
	}
	if stride <= 0 {
		panic("tensor: Im2Col stride must be positive")
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel (%d,%d) stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	out := New(c*kh*kw, oh*ow)
	ocols := oh * ow
	for ch := 0; ch < c; ch++ {
		plane := x.data[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ch*kh+ki)*kw + kj) * ocols
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						continue // zero padding: row already zero
					}
					src := plane[ii*w : (ii+1)*w]
					dst := out.data[rowBase+oi*ow : rowBase+(oi+1)*ow]
					for oj := 0; oj < ow; oj++ {
						jj := oj*stride + kj - pad
						if jj >= 0 && jj < w {
							dst[oj] = src[jj]
						}
					}
				}
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) columns back
// into an image of shape (C, H, W). Used to propagate convolution gradients
// to the layer input.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	if cols.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Col2Im needs rank-2 input, got %v", cols.shape))
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v inconsistent with (C,H,W)=(%d,%d,%d) kernel (%d,%d) stride %d pad %d",
			cols.shape, c, h, w, kh, kw, stride, pad))
	}
	out := New(c, h, w)
	ocols := oh * ow
	for ch := 0; ch < c; ch++ {
		plane := out.data[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ch*kh+ki)*kw + kj) * ocols
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						continue
					}
					src := cols.data[rowBase+oi*ow : rowBase+(oi+1)*ow]
					dst := plane[ii*w : (ii+1)*w]
					for oj := 0; oj < ow; oj++ {
						jj := oj*stride + kj - pad
						if jj >= 0 && jj < w {
							dst[jj] += src[oj]
						}
					}
				}
			}
		}
	}
	return out
}

// ConvOutSize returns the spatial output size for a convolution dimension.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Pad2D zero-pads a (C, H, W) tensor by pad on all four spatial sides.
func Pad2D(x *Tensor, pad int) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Pad2D needs rank-3 (C,H,W) input, got %v", x.shape))
	}
	if pad == 0 {
		return x.Clone()
	}
	if pad < 0 {
		panic("tensor: Pad2D pad must be non-negative")
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := h+2*pad, w+2*pad
	out := New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for i := 0; i < h; i++ {
			src := x.data[(ch*h+i)*w : (ch*h+i+1)*w]
			dstBase := (ch*oh+i+pad)*ow + pad
			copy(out.data[dstBase:dstBase+w], src)
		}
	}
	return out
}
