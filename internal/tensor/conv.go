package tensor

import "fmt"

// Im2Col unrolls image patches into columns for convolution-as-matmul.
//
// x has shape (C, H, W). The result has shape (C·kh·kw, oh·ow) where
// oh = (H+2·pad-kh)/stride + 1 and ow likewise. Each output column is the
// flattened receptive field for one output position; out-of-bounds (padded)
// positions contribute zeros.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	c, oh, ow := checkIm2Col(x, kh, kw, stride, pad)
	out := New(c*kh*kw, oh*ow)
	im2colFill(out.data, x, kh, kw, stride, pad, oh, ow)
	return out
}

// Im2ColBatchInto lowers a (B, C, H, W) batch into dst of shape
// (C·kh·kw, B·oh·ow) with sample-major columns: sample i occupies columns
// [i·oh·ow, (i+1)·oh·ow). dst is fully overwritten. Samples write disjoint
// column ranges, so the batch dimension shards across goroutines for large
// batches without affecting the result; steady-state serial calls perform
// zero heap allocations.
func Im2ColBatchInto(dst, x *Tensor, kh, kw, stride, pad int) {
	b, c, oh, ow := checkIm2ColBatch(x, kh, kw, stride, pad)
	ckk, ocols := c*kh*kw, oh*ow
	if dst.Rank() != 2 || dst.shape[0] != ckk || dst.shape[1] != b*ocols {
		panic(fmt.Sprintf("tensor: Im2ColBatchInto destination shape %v, want (%d, %d)", dst.shape, ckk, b*ocols))
	}
	dst.Zero()
	h, w := x.shape[2], x.shape[3]
	plane := c * h * w
	if workers := WorkersFor(b, b*ckk*ocols); workers > 1 {
		Shard(b, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				im2colFillStrided(dst.data, b*ocols, i*ocols, x.data[i*plane:(i+1)*plane], c, h, w, kh, kw, stride, pad, oh, ow)
			}
		})
	} else {
		for i := 0; i < b; i++ {
			im2colFillStrided(dst.data, b*ocols, i*ocols, x.data[i*plane:(i+1)*plane], c, h, w, kh, kw, stride, pad, oh, ow)
		}
	}
}

// checkIm2ColBatch validates Im2ColBatchInto input and returns
// (b, c, oh, ow).
func checkIm2ColBatch(x *Tensor, kh, kw, stride, pad int) (b, c, oh, ow int) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2ColBatch needs rank-4 (B,C,H,W) input, got %v", x.shape))
	}
	if stride <= 0 {
		panic("tensor: Im2ColBatch stride must be positive")
	}
	b, c = x.shape[0], x.shape[1]
	h, w := x.shape[2], x.shape[3]
	oh = (h+2*pad-kh)/stride + 1
	ow = (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColBatch produces empty output for input %v kernel (%d,%d) stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	return b, c, oh, ow
}

// Im2ColInto is Im2Col into a caller-owned destination of shape
// (C·kh·kw, oh·ow). dst is fully overwritten (padding positions zeroed).
// Steady-state calls perform zero heap allocations.
func Im2ColInto(dst, x *Tensor, kh, kw, stride, pad int) {
	c, oh, ow := checkIm2Col(x, kh, kw, stride, pad)
	if dst.Rank() != 2 || dst.shape[0] != c*kh*kw || dst.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto destination shape %v, want (%d, %d)", dst.shape, c*kh*kw, oh*ow))
	}
	dst.Zero()
	im2colFill(dst.data, x, kh, kw, stride, pad, oh, ow)
}

// im2colFill writes the patch-unroll of x into out (len c·kh·kw·oh·ow,
// already zeroed).
//
//helcfl:noalloc
func im2colFill(out []float64, x *Tensor, kh, kw, stride, pad, oh, ow int) {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	im2colFillStrided(out, oh*ow, 0, x.data, c, h, w, kh, kw, stride, pad, oh, ow)
}

// im2colFillStrided writes the patch-unroll of one (c, h, w) image xdata
// into out, where unroll row r starts at r·rowStride+colOff. out must be
// pre-zeroed over the touched region; every in-bounds position is stored
// exactly once, so the write order cannot affect the result. The stride
// form lets a whole batch lower into one matrix with disjoint per-sample
// column ranges.
//
//helcfl:noalloc
func im2colFillStrided(out []float64, rowStride, colOff int, xdata []float64, c, h, w, kh, kw, stride, pad, oh, ow int) {
	for ch := 0; ch < c; ch++ {
		plane := xdata[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ch*kh+ki)*kw+kj)*rowStride + colOff
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						continue // zero padding: row already zero
					}
					src := plane[ii*w : (ii+1)*w]
					dst := out[rowBase+oi*ow : rowBase+(oi+1)*ow]
					for oj := 0; oj < ow; oj++ {
						jj := oj*stride + kj - pad
						if jj >= 0 && jj < w {
							dst[oj] = src[jj]
						}
					}
				}
			}
		}
	}
}

// checkIm2Col validates Im2Col arguments and returns (c, oh, ow).
func checkIm2Col(x *Tensor, kh, kw, stride, pad int) (c, oh, ow int) {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col needs rank-3 (C,H,W) input, got %v", x.shape))
	}
	if stride <= 0 {
		panic("tensor: Im2Col stride must be positive")
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh = (h+2*pad-kh)/stride + 1
	ow = (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel (%d,%d) stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	return c, oh, ow
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) columns back
// into an image of shape (C, H, W). Used to propagate convolution gradients
// to the layer input.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	checkCol2Im(cols, c, h, w, kh, kw, stride, pad)
	out := New(c, h, w)
	col2imScatter(out.data, cols, c, h, w, kh, kw, stride, pad)
	return out
}

// Col2ImInto is Col2Im into a caller-owned destination of shape (C, H, W).
// dst is fully overwritten. Steady-state calls perform zero heap
// allocations.
func Col2ImInto(dst, cols *Tensor, c, h, w, kh, kw, stride, pad int) {
	checkCol2Im(cols, c, h, w, kh, kw, stride, pad)
	if dst.Rank() != 3 || dst.shape[0] != c || dst.shape[1] != h || dst.shape[2] != w {
		panic(fmt.Sprintf("tensor: Col2ImInto destination shape %v, want (%d, %d, %d)", dst.shape, c, h, w))
	}
	dst.Zero()
	col2imScatter(dst.data, cols, c, h, w, kh, kw, stride, pad)
}

// col2imScatter accumulates cols into out (len c·h·w, already zeroed).
//
//helcfl:noalloc
func col2imScatter(out []float64, cols *Tensor, c, h, w, kh, kw, stride, pad int) {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	col2imScatterStrided(out, cols.data, oh*ow, 0, c, h, w, kh, kw, stride, pad, oh, ow)
}

// col2imScatterStrided accumulates one sample's columns — unroll row r
// starting at r·rowStride+colOff of colsData — into out (len c·h·w, already
// zeroed) in the fixed (channel, ki, kj, oi, oj) order of the reference
// kernel, so overlapping receptive fields sum in a deterministic sequence.
//
//helcfl:noalloc
func col2imScatterStrided(out, colsData []float64, rowStride, colOff, c, h, w, kh, kw, stride, pad, oh, ow int) {
	for ch := 0; ch < c; ch++ {
		plane := out[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ch*kh+ki)*kw+kj)*rowStride + colOff
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						continue
					}
					src := colsData[rowBase+oi*ow : rowBase+(oi+1)*ow]
					dst := plane[ii*w : (ii+1)*w]
					for oj := 0; oj < ow; oj++ {
						jj := oj*stride + kj - pad
						if jj >= 0 && jj < w {
							dst[jj] += src[oj]
						}
					}
				}
			}
		}
	}
}

// Col2ImBatchInto is the adjoint of Im2ColBatchInto: it scatters a
// (C·kh·kw, B·oh·ow) sample-major column matrix back into dst of shape
// (B, C, H, W). dst is fully overwritten. Samples touch disjoint image
// planes, so the batch dimension shards across goroutines for large batches
// without affecting the result; steady-state serial calls perform zero heap
// allocations.
func Col2ImBatchInto(dst, cols *Tensor, b, c, h, w, kh, kw, stride, pad int) {
	if stride <= 0 {
		panic("tensor: Col2ImBatch stride must be positive")
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	ckk, ocols := c*kh*kw, oh*ow
	if cols.Rank() != 2 || cols.shape[0] != ckk || cols.shape[1] != b*ocols {
		panic(fmt.Sprintf("tensor: Col2ImBatch columns shape %v inconsistent with (B,C,H,W)=(%d,%d,%d,%d) kernel (%d,%d) stride %d pad %d",
			cols.shape, b, c, h, w, kh, kw, stride, pad))
	}
	if dst.Rank() != 4 || dst.shape[0] != b || dst.shape[1] != c || dst.shape[2] != h || dst.shape[3] != w {
		panic(fmt.Sprintf("tensor: Col2ImBatchInto destination shape %v, want (%d, %d, %d, %d)", dst.shape, b, c, h, w))
	}
	dst.Zero()
	plane := c * h * w
	if workers := WorkersFor(b, b*ckk*ocols); workers > 1 {
		Shard(b, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				col2imScatterStrided(dst.data[i*plane:(i+1)*plane], cols.data, b*ocols, i*ocols, c, h, w, kh, kw, stride, pad, oh, ow)
			}
		})
	} else {
		for i := 0; i < b; i++ {
			col2imScatterStrided(dst.data[i*plane:(i+1)*plane], cols.data, b*ocols, i*ocols, c, h, w, kh, kw, stride, pad, oh, ow)
		}
	}
}

// checkCol2Im validates Col2Im arguments.
func checkCol2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) {
	if cols.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Col2Im needs rank-2 input, got %v", cols.shape))
	}
	if stride <= 0 {
		panic("tensor: Col2Im stride must be positive")
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v inconsistent with (C,H,W)=(%d,%d,%d) kernel (%d,%d) stride %d pad %d",
			cols.shape, c, h, w, kh, kw, stride, pad))
	}
}

// ConvOutSize returns the spatial output size for a convolution dimension.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Pad2D zero-pads a (C, H, W) tensor by pad on all four spatial sides.
func Pad2D(x *Tensor, pad int) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Pad2D needs rank-3 (C,H,W) input, got %v", x.shape))
	}
	if pad == 0 {
		return x.Clone()
	}
	if pad < 0 {
		panic("tensor: Pad2D pad must be non-negative")
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := h+2*pad, w+2*pad
	out := New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for i := 0; i < h; i++ {
			src := x.data[(ch*h+i)*w : (ch*h+i+1)*w]
			dstBase := (ch*oh+i+pad)*ow + pad
			copy(out.data[dstBase:dstBase+w], src)
		}
	}
	return out
}
