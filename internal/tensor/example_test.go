package tensor_test

import (
	"fmt"

	"helcfl/internal/tensor"
)

func ExampleMatMul() {
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := tensor.FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	fmt.Println(tensor.MatMul(a, b))
	// Output:
	// Tensor[2 2][19 22 43 50]
}

// Im2Col lowers convolution to matrix multiplication: each output column
// is one receptive field.
func ExampleIm2Col() {
	img := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	cols := tensor.Im2Col(img, 2, 2, 1, 0)
	fmt.Println(cols.Shape())
	fmt.Println(cols.Data()[:4]) // first row: top-left pixel of each patch
	// Output:
	// [4 4]
	// [1 2 4 5]
}
