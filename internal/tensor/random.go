package tensor

import (
	"math"
	"math/rand"
)

// FillUniform fills t with samples from Uniform[lo, hi) drawn from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// FillNormal fills t with samples from N(mean, std²) drawn from rng.
func (t *Tensor) FillNormal(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.data {
		t.data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// FillXavier fills t with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out.
func (t *Tensor) FillXavier(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.FillUniform(rng, -limit, limit)
}

// FillHe fills t with the He/Kaiming normal initialization for a layer with
// the given fan-in, appropriate for ReLU networks.
func (t *Tensor) FillHe(rng *rand.Rand, fanIn int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return t.FillNormal(rng, 0, std)
}
