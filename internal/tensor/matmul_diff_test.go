package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The differential harness: the tiled/parallel kernels must be bit-for-bit
// identical to the retained naive references for every shape — including
// dims that are not multiples of the block sizes — and every input,
// including exact zeros (the zero-skip path), negative zeros, and huge
// magnitude spreads. Identity is checked on raw float64 bits, not with a
// tolerance.

// bitIdentical reports whether two tensors match shape and raw bits.
func bitIdentical(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	return true
}

// fillAdversarial populates t with values that stress accumulation order:
// mixed magnitudes, sign flips, exact zeros (~1/4 of entries), and the
// occasional negative zero.
func fillAdversarial(t *Tensor, rng *rand.Rand) {
	d := t.Data()
	for i := range d {
		switch rng.Intn(8) {
		case 0, 1:
			d[i] = 0
		case 2:
			d[i] = math.Copysign(0, -1)
		case 3:
			d[i] = rng.NormFloat64() * 1e8
		case 4:
			d[i] = rng.NormFloat64() * 1e-8
		default:
			d[i] = rng.NormFloat64()
		}
	}
}

// diffDims cover degenerate vectors, sizes straddling the k/n block
// boundaries, and a few awkward primes.
var diffDims = []int{1, 2, 3, 7, 17, 63, 64, 65, 100, 255, 256, 257}

func TestMatMulTiledMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		m := diffDims[rng.Intn(len(diffDims))]
		k := diffDims[rng.Intn(len(diffDims))]
		n := diffDims[rng.Intn(len(diffDims))]
		if m*k*n > 1<<22 {
			continue // bound test time; the large-product path is covered below
		}
		a, b := New(m, k), New(k, n)
		fillAdversarial(a, rng)
		fillAdversarial(b, rng)

		want := MatMulNaive(a, b)
		if got := MatMul(a, b); !bitIdentical(got, want) {
			t.Fatalf("MatMul (%d,%d)x(%d,%d) diverges from naive", m, k, k, n)
		}
		dst := New(m, n)
		dst.Fill(3.5) // Into must fully overwrite a dirty destination
		MatMulInto(dst, a, b)
		if !bitIdentical(dst, want) {
			t.Fatalf("MatMulInto (%d,%d)x(%d,%d) diverges from naive", m, k, k, n)
		}

		at := a.Transpose() // (k, m): aᵀ·b == naive(a)·b
		wantTA := MatMulTransANaive(at, b)
		if got := MatMulTransA(at, b); !bitIdentical(got, wantTA) {
			t.Fatalf("MatMulTransA (%d,%d)ᵀx(%d,%d) diverges from naive", k, m, k, n)
		}
		dst.Fill(-1)
		MatMulTransAInto(dst, at, b)
		if !bitIdentical(dst, wantTA) {
			t.Fatalf("MatMulTransAInto (%d,%d)ᵀx(%d,%d) diverges from naive", k, m, k, n)
		}

		bt := b.Transpose() // (n, k): a·btᵀ == a·b shapes
		wantTB := MatMulTransBNaive(a, bt)
		if got := MatMulTransB(a, bt); !bitIdentical(got, wantTB) {
			t.Fatalf("MatMulTransB (%d,%d)x(%d,%d)ᵀ diverges from naive", m, k, n, k)
		}
		dst.Fill(7)
		MatMulTransBInto(dst, a, bt)
		if !bitIdentical(dst, wantTB) {
			t.Fatalf("MatMulTransBInto (%d,%d)x(%d,%d)ᵀ diverges from naive", m, k, n, k)
		}
	}
}

// TestMatMulParallelMatchesSerial forces the goroutine-sharded path (the
// product exceeds parallelMinFlops and workers > 1) and pins bit-identity
// against both the single-worker tiled run and the naive reference. Runs
// meaningfully under -race: shards must touch disjoint rows.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 150, 130, 90 // 1.755M flops > parallelMinFlops
	a, b := New(m, k), New(k, n)
	fillAdversarial(a, rng)
	fillAdversarial(b, rng)
	at, bt := a.Transpose(), b.Transpose()

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	serial := MatMul(a, b)
	serialTA := MatMulTransA(at, b)
	serialTB := MatMulTransB(a, bt)

	for _, w := range []int{2, 3, 8} {
		SetWorkers(w)
		if got := MatMul(a, b); !bitIdentical(got, serial) {
			t.Fatalf("parallel MatMul (workers=%d) diverges from serial", w)
		}
		if got := MatMulTransA(at, b); !bitIdentical(got, serialTA) {
			t.Fatalf("parallel MatMulTransA (workers=%d) diverges from serial", w)
		}
		if got := MatMulTransB(a, bt); !bitIdentical(got, serialTB) {
			t.Fatalf("parallel MatMulTransB (workers=%d) diverges from serial", w)
		}
	}
	if !bitIdentical(serial, MatMulNaive(a, b)) {
		t.Fatal("serial tiled MatMul diverges from naive on the parallel-sized product")
	}
}

func TestIm2ColCol2ImIntoMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ c, h, w, kh, kw, stride, pad int }{
		{1, 1, 1, 1, 1, 1, 0},   // degenerate 1x1
		{3, 8, 8, 3, 3, 1, 1},   // the experiment geometry
		{2, 7, 5, 3, 2, 2, 1},   // non-square, stride 2
		{1, 9, 1, 3, 1, 1, 1},   // 1-wide column image
		{4, 16, 16, 5, 5, 3, 2}, // large stride, fat kernel
	}
	for _, tc := range cases {
		x := New(tc.c, tc.h, tc.w)
		fillAdversarial(x, rng)
		want := Im2ColNaive(x, tc.kh, tc.kw, tc.stride, tc.pad)
		if got := Im2Col(x, tc.kh, tc.kw, tc.stride, tc.pad); !bitIdentical(got, want) {
			t.Fatalf("Im2Col %+v diverges from naive", tc)
		}
		dst := New(want.Dim(0), want.Dim(1))
		dst.Fill(9)
		Im2ColInto(dst, x, tc.kh, tc.kw, tc.stride, tc.pad)
		if !bitIdentical(dst, want) {
			t.Fatalf("Im2ColInto %+v diverges from naive", tc)
		}

		cols := New(want.Dim(0), want.Dim(1))
		fillAdversarial(cols, rng)
		wantIm := Col2ImNaive(cols, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		if got := Col2Im(cols, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad); !bitIdentical(got, wantIm) {
			t.Fatalf("Col2Im %+v diverges from naive", tc)
		}
		dim := New(tc.c, tc.h, tc.w)
		dim.Fill(-2)
		Col2ImInto(dim, cols, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		if !bitIdentical(dim, wantIm) {
			t.Fatalf("Col2ImInto %+v diverges from naive", tc)
		}
	}
}

// TestMatMulDegenerateVectors pins the 1×N/N×1 edge shapes explicitly.
func TestMatMulDegenerateVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 64, 257} {
		row := New(1, n)
		col := New(n, 1)
		fillAdversarial(row, rng)
		fillAdversarial(col, rng)
		if got, want := MatMul(row, col), MatMulNaive(row, col); !bitIdentical(got, want) {
			t.Fatalf("1x%d · %dx1 diverges", n, n)
		}
		if got, want := MatMul(col, row), MatMulNaive(col, row); !bitIdentical(got, want) {
			t.Fatalf("%dx1 · 1x%d diverges", n, n)
		}
	}
}

// TestMatMulPanicsPreserved: the tiled kernels must reject the same bad
// shapes the naive kernels rejected.
func TestMatMulPanicsPreserved(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a23, a32, v3 := New(2, 3), New(3, 2), New(3)
	mustPanic("MatMul mismatch", func() { MatMul(a23, a23) })
	mustPanic("MatMul rank", func() { MatMul(v3, a23) })
	mustPanic("MatMulTransA mismatch", func() { MatMulTransA(a23, a32) })
	mustPanic("MatMulTransB mismatch", func() { MatMulTransB(a23, New(2, 4)) })
	mustPanic("MatMulInto bad dst", func() { MatMulInto(New(2, 3), a23, a32) })
	mustPanic("MatMulTransAInto bad dst", func() { MatMulTransAInto(New(2, 2), a23, a23) })
	mustPanic("MatMulTransBInto bad dst", func() { MatMulTransBInto(New(3, 3), a23, New(4, 3)) })
	mustPanic("Im2ColInto bad dst", func() { Im2ColInto(New(1, 1), New(1, 4, 4), 3, 3, 1, 0) })
	mustPanic("Col2ImInto bad dst", func() { Col2ImInto(New(1, 2, 2), New(9, 4), 1, 4, 4, 3, 3, 1, 0) })
	mustPanic("Col2Im zero stride", func() { Col2Im(New(9, 4), 1, 4, 4, 3, 3, 0, 0) })
}

// TestConvBatchKernelsMatchPerSample pins the batched (sample-major) im2col
// and col2im against per-sample naive assembly, serial and with the batch
// dimension force-sharded across goroutines.
func TestConvBatchKernelsMatchPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b, c, h, w, kh, kw, stride, pad := 5, 3, 8, 8, 3, 3, 1, 1
	x := New(b, c, h, w)
	fillAdversarial(x, rng)
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	ckk, positions, plane := c*kh*kw, oh*ow, c*h*w

	// Per-sample reference assembly.
	wantCols := New(ckk, b*positions)
	for i := 0; i < b; i++ {
		xi := FromSlice(x.Data()[i*plane:(i+1)*plane], c, h, w)
		ci := Im2ColNaive(xi, kh, kw, stride, pad)
		for r := 0; r < ckk; r++ {
			copy(wantCols.Data()[r*b*positions+i*positions:r*b*positions+(i+1)*positions],
				ci.Data()[r*positions:(r+1)*positions])
		}
	}
	cols := New(ckk, b*positions)
	cols.Fill(5)
	Im2ColBatchInto(cols, x, kh, kw, stride, pad)
	if !bitIdentical(cols, wantCols) {
		t.Fatal("Im2ColBatchInto diverges from per-sample naive assembly")
	}

	grad := New(ckk, b*positions)
	fillAdversarial(grad, rng)
	wantImg := New(b, c, h, w)
	scratch := New(ckk, positions)
	for i := 0; i < b; i++ {
		for r := 0; r < ckk; r++ {
			copy(scratch.Data()[r*positions:(r+1)*positions],
				grad.Data()[r*b*positions+i*positions:r*b*positions+(i+1)*positions])
		}
		img := Col2ImNaive(scratch, c, h, w, kh, kw, stride, pad)
		copy(wantImg.Data()[i*plane:(i+1)*plane], img.Data())
	}
	img := New(b, c, h, w)
	img.Fill(-4)
	Col2ImBatchInto(img, grad, b, c, h, w, kh, kw, stride, pad)
	if !bitIdentical(img, wantImg) {
		t.Fatal("Col2ImBatchInto diverges from per-sample naive assembly")
	}

	// Force the goroutine-sharded path — a batch big enough to clear the
	// flops gate (64·(8·3·3)·256 ≈ 1.18M ≥ parallelMinFlops) — and verify
	// bit-identity against the serial result under -race.
	bb, bc := 64, 8
	bx := New(bb, bc, 16, 16)
	fillAdversarial(bx, rng)
	bckk := bc * kh * kw
	bpos := ConvOutSize(16, kh, stride, pad) * ConvOutSize(16, kw, stride, pad)
	bgrad := New(bckk, bb*bpos)
	fillAdversarial(bgrad, rng)

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	serialCols := New(bckk, bb*bpos)
	Im2ColBatchInto(serialCols, bx, kh, kw, stride, pad)
	serialImg := New(bb, bc, 16, 16)
	Col2ImBatchInto(serialImg, bgrad, bb, bc, 16, 16, kh, kw, stride, pad)
	for _, workers := range []int{2, 5} {
		SetWorkers(workers)
		cols2 := New(bckk, bb*bpos)
		Im2ColBatchInto(cols2, bx, kh, kw, stride, pad)
		if !bitIdentical(cols2, serialCols) {
			t.Fatalf("sharded Im2ColBatchInto (workers=%d) diverges", workers)
		}
		img2 := New(bb, bc, 16, 16)
		Col2ImBatchInto(img2, bgrad, bb, bc, 16, 16, kh, kw, stride, pad)
		if !bitIdentical(img2, serialImg) {
			t.Fatalf("sharded Col2ImBatchInto (workers=%d) diverges", workers)
		}
	}
}
