package tensor

import (
	"math/rand"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("Size = %d, want 6", x.Size())
	}
	if x.Rank() != 2 {
		t.Fatalf("Rank = %d, want 2", x.Rank())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestNewPanicsOnNonPositiveDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.Data()[1*3+2]; got != 7 {
		t.Fatalf("row-major layout broken: data[5] = %g, want 7", got)
	}
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %g, want 7", got)
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds index")
		}
	}()
	x.At(0, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(9, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy data")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must be a view over the same data")
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("Reshape element order wrong: got %g, want 6", y.At(2, 1))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size-changing reshape")
		}
	}()
	x.Reshape(4, 2)
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if a.Equal(b) {
		t.Fatal("Equal must be exact")
	}
	if !a.AllClose(b, 1e-5) {
		t.Fatal("AllClose within tolerance must hold")
	}
	if a.AllClose(New(3), 1) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}

func TestFillAndZero(t *testing.T) {
	x := Full(3.5, 4)
	for _, v := range x.Data() {
		if v != 3.5 {
			t.Fatalf("Full element = %g, want 3.5", v)
		}
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero must clear all elements")
	}
	x.Fill(-1)
	if x.Sum() != -4 {
		t.Fatalf("Fill(-1) sum = %g, want -4", x.Sum())
	}
}

func TestOnes(t *testing.T) {
	if got := Ones(3, 3).Sum(); got != 9 {
		t.Fatalf("Ones(3,3).Sum() = %g, want 9", got)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Fatal("String must render small tensors")
	}
	large := New(100)
	if s := large.String(); s == "" {
		t.Fatal("String must summarize large tensors")
	}
}

func TestFillUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(1000).FillUniform(rng, -2, 3)
	for _, v := range x.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform sample %g outside [-2,3)", v)
		}
	}
}

func TestFillNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := New(20000).FillNormal(rng, 5, 2)
	mean := x.Mean()
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("normal sample mean %g too far from 5", mean)
	}
}

func TestFillXavierWithinLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := New(500).FillXavier(rng, 10, 10)
	// limit = sqrt(6/20) ≈ 0.5477
	for _, v := range x.Data() {
		if v < -0.548 || v > 0.548 {
			t.Fatalf("Xavier sample %g outside limit", v)
		}
	}
}

func TestFillHeDeterministicWithSeed(t *testing.T) {
	a := New(50).FillHe(rand.New(rand.NewSource(7)), 25)
	b := New(50).FillHe(rand.New(rand.NewSource(7)), 25)
	if !a.Equal(b) {
		t.Fatal("same seed must give identical initialization")
	}
}
