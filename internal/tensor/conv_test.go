package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no padding: im2col is just a reshape.
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Dim(0) != 1 || cols.Dim(1) != 4 {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	if !cols.Reshape(1, 2, 2).Equal(x) {
		t.Fatalf("1x1 im2col must preserve values: %v", cols)
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 1-channel 3x3 image, 2x2 kernel, stride 1, pad 0 → 4 patches.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	cols := Im2Col(x, 2, 2, 1, 0)
	if cols.Dim(0) != 4 || cols.Dim(1) != 4 {
		t.Fatalf("cols shape = %v, want [4 4]", cols.Shape())
	}
	// Column 0 is the top-left patch [1 2 4 5] read kernel-position-major.
	want0 := []float64{1, 2, 4, 5}
	for r, w := range want0 {
		if got := cols.At(r, 0); got != w {
			t.Fatalf("cols[%d,0] = %g, want %g", r, got, w)
		}
	}
	// Column 3 is the bottom-right patch [5 6 8 9].
	want3 := []float64{5, 6, 8, 9}
	for r, w := range want3 {
		if got := cols.At(r, 3); got != w {
			t.Fatalf("cols[%d,3] = %g, want %g", r, got, w)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := Ones(1, 2, 2)
	cols := Im2Col(x, 3, 3, 1, 1)
	// Output is 2x2 positions; the padded border contributes zeros, so the
	// total sum must equal sum over patches of in-bounds ones.
	if cols.Dim(0) != 9 || cols.Dim(1) != 4 {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	if got := cols.Sum(); got != 16 { // each of the 4 patches covers all 4 ones
		t.Fatalf("padded im2col sum = %g, want 16", got)
	}
}

func TestIm2ColStride(t *testing.T) {
	x := New(1, 4, 4)
	for i := 0; i < 16; i++ {
		x.Data()[i] = float64(i)
	}
	cols := Im2Col(x, 2, 2, 2, 0)
	if cols.Dim(1) != 4 {
		t.Fatalf("stride-2 output positions = %d, want 4", cols.Dim(1))
	}
	// First patch top-left = 0, second patch top-left = 2 (stride 2).
	if cols.At(0, 0) != 0 || cols.At(0, 1) != 2 {
		t.Fatalf("stride-2 patches wrong: %g, %g", cols.At(0, 0), cols.At(0, 1))
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(8, 3, 1, 1); got != 8 {
		t.Fatalf("same-pad 3x3 out = %d, want 8", got)
	}
	if got := ConvOutSize(8, 2, 2, 0); got != 4 {
		t.Fatalf("2x2 stride-2 out = %d, want 4", got)
	}
}

func TestPad2D(t *testing.T) {
	x := Ones(2, 2, 2)
	p := Pad2D(x, 1)
	if p.Dim(1) != 4 || p.Dim(2) != 4 {
		t.Fatalf("pad shape = %v", p.Shape())
	}
	if p.Sum() != x.Sum() {
		t.Fatalf("padding must not change the sum: %g vs %g", p.Sum(), x.Sum())
	}
	if p.At(0, 0, 0) != 0 || p.At(0, 1, 1) != 1 {
		t.Fatal("pad must put zeros on the border and keep interior values")
	}
}

func TestPad2DZeroIsCopy(t *testing.T) {
	x := Ones(1, 2, 2)
	p := Pad2D(x, 0)
	p.Set(5, 0, 0, 0)
	if x.At(0, 0, 0) != 1 {
		t.Fatal("Pad2D(x, 0) must return an independent copy")
	}
}

// Property: Col2Im is the adjoint of Im2Col — for all x, y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the property backprop
// through convolution relies on.
func TestCol2ImAdjointQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, h, w := 2, 5, 5
		kh, kw, stride, pad := 3, 3, 1, 1
		x := New(c, h, w).FillNormal(rng, 0, 1)
		cols := Im2Col(x, kh, kw, stride, pad)
		y := New(cols.Dim(0), cols.Dim(1)).FillNormal(rng, 0, 1)
		lhs := cols.Dot(y)
		rhs := x.Dot(Col2Im(y, c, h, w, kh, kw, stride, pad))
		d := lhs - rhs
		if d < 0 {
			d = -d
		}
		return d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImAccumulatesOverlaps(t *testing.T) {
	// 2x2 image, 2x2 kernel, stride 1, pad 1 → every pixel is covered by
	// exactly 4 patches; scattering all-ones columns must yield 4 everywhere.
	c, h, w := 1, 2, 2
	oh := ConvOutSize(h, 2, 1, 1)
	cols := Ones(1*2*2, oh*oh)
	img := Col2Im(cols, c, h, w, 2, 2, 1, 1)
	for i, v := range img.Data() {
		if v != 4 {
			t.Fatalf("pixel %d = %g, want 4 (overlap accumulation)", i, v)
		}
	}
}

func TestIm2ColBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-2 input")
		}
	}()
	Im2Col(New(3, 3), 2, 2, 1, 0)
}
