package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{
		1, 2,
		3, 4,
		5, 6,
	}, 3, 2)
	b := FromSlice([]float64{
		7, 8, 9,
		10, 11, 12,
	}, 2, 3)
	got := MatMul(a, b)
	want := FromSlice([]float64{
		27, 30, 33,
		61, 68, 75,
		95, 106, 117,
	}, 3, 3)
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4).FillNormal(rng, 0, 1)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if !MatMul(a, eye).AllClose(a, 1e-15) {
		t.Fatal("A·I must equal A")
	}
	if !MatMul(eye, a).AllClose(a, 1e-15) {
		t.Fatal("I·A must equal A")
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner-dimension mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransAAgreesWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 3).FillNormal(rng, 0, 1)
	b := New(5, 4).FillNormal(rng, 0, 1)
	got := MatMulTransA(a, b)
	want := MatMul(a.Transpose(), b)
	if !got.AllClose(want, 1e-12) {
		t.Fatal("MatMulTransA must equal MatMul(Aᵀ, B)")
	}
}

func TestMatMulTransBAgreesWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 6).FillNormal(rng, 0, 1)
	b := New(5, 6).FillNormal(rng, 0, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.Transpose())
	if !got.AllClose(want, 1e-12) {
		t.Fatal("MatMulTransB must equal MatMul(A, Bᵀ)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(3, 7).FillNormal(rng, 0, 1)
	if !a.Transpose().Transpose().Equal(a) {
		t.Fatal("transpose must be an involution")
	}
	at := a.Transpose()
	if at.Dim(0) != 7 || at.Dim(1) != 3 {
		t.Fatalf("transpose shape = %v", at.Shape())
	}
}

func TestOuter(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4, 5}, 3)
	got := Outer(a, b)
	want := FromSlice([]float64{3, 4, 5, 6, 8, 10}, 2, 3)
	if !got.Equal(want) {
		t.Fatalf("Outer = %v, want %v", got, want)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMatMulTransposeIdentityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 4).FillNormal(rng, 0, 1)
		b := New(4, 2).FillNormal(rng, 0, 1)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return lhs.AllClose(rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul is linear in its first argument.
func TestMatMulLinearityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1 := New(3, 3).FillNormal(rng, 0, 1)
		a2 := New(3, 3).FillNormal(rng, 0, 1)
		b := New(3, 3).FillNormal(rng, 0, 1)
		lhs := MatMul(a1.Add(a2), b)
		rhs := MatMul(a1, b).Add(MatMul(a2, b))
		return lhs.AllClose(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
