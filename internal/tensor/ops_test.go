package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{4, 3, 2, 1}, 2, 2)
	if got := a.Add(b); !got.Equal(Full(5, 2, 2)) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(a); !got.Equal(New(2, 2)) {
		t.Fatalf("Sub self = %v", got)
	}
	want := FromSlice([]float64{4, 6, 6, 4}, 2, 2)
	if got := a.Mul(b); !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 4 {
		t.Fatal("Add/Sub/Mul must not mutate operands")
	}
}

func TestInPlaceVariantsMutateReceiver(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	if got := a.AddInPlace(b); got != a {
		t.Fatal("AddInPlace must return the receiver")
	}
	if a.At(0) != 11 || a.At(1) != 22 {
		t.Fatalf("AddInPlace result = %v", a)
	}
	a.MulInPlace(FromSlice([]float64{2, 0.5}, 2))
	if a.At(0) != 22 || a.At(1) != 11 {
		t.Fatalf("MulInPlace result = %v", a)
	}
	a.ScaleInPlace(2)
	if a.At(0) != 44 {
		t.Fatalf("ScaleInPlace result = %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2, 2).Add(New(4))
}

func TestAXPY(t *testing.T) {
	y := FromSlice([]float64{1, 1, 1}, 3)
	x := FromSlice([]float64{1, 2, 3}, 3)
	y.AXPY(2, x)
	want := FromSlice([]float64{3, 5, 7}, 3)
	if !y.Equal(want) {
		t.Fatalf("AXPY = %v, want %v", y, want)
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float64{-1, 4}, 2)
	y := x.Apply(math.Abs)
	if y.At(0) != 1 || x.At(0) != -1 {
		t.Fatal("Apply must not mutate the receiver")
	}
	x.ApplyInPlace(func(v float64) float64 { return v * v })
	if x.At(0) != 1 || x.At(1) != 16 {
		t.Fatalf("ApplyInPlace = %v", x)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != 1.75 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -1 {
		t.Fatalf("Max/Min = %g/%g", x.Max(), x.Min())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
}

func TestArgMaxFirstOccurrence(t *testing.T) {
	x := FromSlice([]float64{5, 2, 5}, 3)
	if x.ArgMax() != 0 {
		t.Fatalf("ArgMax tie must return first index, got %d", x.ArgMax())
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float64{1, 2, 2}, 3)
	b := FromSlice([]float64{2, 0, 1}, 3)
	if a.Dot(b) != 4 {
		t.Fatalf("Dot = %g", a.Dot(b))
	}
	if a.Norm2() != 3 {
		t.Fatalf("Norm2 = %g, want 3", a.Norm2())
	}
}

func TestRowColSums(t *testing.T) {
	m := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	if got := m.RowSums(); !got.Equal(FromSlice([]float64{6, 15}, 2)) {
		t.Fatalf("RowSums = %v", got)
	}
	if got := m.ColSums(); !got.Equal(FromSlice([]float64{5, 7, 9}, 3)) {
		t.Fatalf("ColSums = %v", got)
	}
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 3)
	m.AddRowVector(FromSlice([]float64{1, 2, 3}, 3))
	want := FromSlice([]float64{1, 2, 3, 1, 2, 3}, 2, 3)
	if !m.Equal(want) {
		t.Fatalf("AddRowVector = %v", m)
	}
}

// Property: Add is commutative and associative within FP tolerance, and
// Scale distributes over Add.
func TestAddPropertiesQuick(t *testing.T) {
	f := func(seed int64, c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 {
			c = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 4).FillUniform(rng, -10, 10)
		b := New(3, 4).FillUniform(rng, -10, 10)
		comm := a.Add(b).AllClose(b.Add(a), 1e-12)
		dist := a.Add(b).Scale(c).AllClose(a.Scale(c).Add(b.Scale(c)), 1e-6)
		return comm && dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and Norm2² equals self-dot.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(16).FillNormal(rng, 0, 1)
		b := New(16).FillNormal(rng, 0, 1)
		sym := math.Abs(a.Dot(b)-b.Dot(a)) < 1e-12
		n := a.Norm2()
		normOK := math.Abs(n*n-a.Dot(a)) < 1e-9
		return sym && normOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	x := &Tensor{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Mean of empty tensor")
		}
	}()
	x.Mean()
}
