package tensor

// This file retains the original straight-loop matrix kernels as reference
// implementations. The tiled kernels in matmul.go are required to be
// bit-for-bit identical to these for every shape and every input — the
// differential tests (matmul_diff_test.go) and fuzz targets pin that — so
// any future kernel change that perturbs floating-point accumulation order
// fails loudly instead of silently drifting the experiment goldens.
//
// They are exported (with the Naive suffix) so other packages' benchmarks
// and differential tests can compare against them directly.

// MatMulNaive is the reference a·b kernel: a cache-friendly ikj loop over
// contiguous rows, accumulating each output element in ascending-p order
// and skipping zero a-elements.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransANaive is the reference aᵀ·b kernel: a pkj loop accumulating
// each output element in ascending-p order and skipping zero a-elements.
func MatMulTransANaive(a, b *Tensor) *Tensor {
	k, m, n := checkMatMulTransA(a, b)
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransBNaive is the reference a·bᵀ kernel: one sequential dot
// product per output element, accumulated in ascending-p order.
func MatMulTransBNaive(a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTransB(a, b)
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Im2ColNaive is the reference patch-unroll kernel; Im2Col and Im2ColInto
// must match it bitwise.
func Im2ColNaive(x *Tensor, kh, kw, stride, pad int) *Tensor {
	c, oh, ow := checkIm2Col(x, kh, kw, stride, pad)
	out := New(c*kh*kw, oh*ow)
	im2colFill(out.data, x, kh, kw, stride, pad, oh, ow)
	return out
}

// Col2ImNaive is the reference column-scatter adjoint; Col2Im and
// Col2ImInto must match it bitwise.
func Col2ImNaive(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	checkCol2Im(cols, c, h, w, kh, kw, stride, pad)
	out := New(c, h, w)
	col2imScatter(out.data, cols, c, h, w, kh, kw, stride, pad)
	return out
}
