package tensor

import "fmt"

// Matrix-multiply kernels.
//
// All three products (a·b, aᵀ·b, a·bᵀ) come in three forms:
//
//   - MatMul*: allocate the result and compute it (the historical API);
//   - MatMul*Into: compute into a caller-owned destination with zero heap
//     allocations — the training hot path uses these through the layer
//     scratch buffers in internal/nn;
//   - MatMul*Naive (matmul_naive.go): the retained straight-loop reference
//     kernels.
//
// The compute kernels are blocked/tiled for cache locality and, for large
// products, row-sharded across goroutines. Both transformations preserve
// the exact floating-point accumulation order of the naive kernels — tiles
// advance the reduction index p monotonically per output element, and
// parallel shards own disjoint output rows — so every form is bit-for-bit
// identical to its reference. The differential and fuzz tests in this
// package enforce that identity; do not change loop order, zero-skip
// conditions, or accumulation structure without them.

const (
	// blockK and blockN tile the reduction and column dimensions so one
	// (blockK × blockN) panel of b (128 KiB of float64) stays cache-hot
	// while every output row streams over it.
	blockK = 64
	blockN = 256
	// parallelMinFlops gates the goroutine-sharded path: below roughly a
	// million multiply-adds the spawn overhead outweighs the concurrency.
	parallelMinFlops = 1 << 20
)

// MatMul returns the matrix product a·b, where a has shape (m, k) and b has
// shape (k, n).
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul(a, b)
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a·b into dst, which must have shape (m, n). dst is
// fully overwritten. Steady-state calls perform zero heap allocations.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	checkDst("MatMulInto", dst, m, n)
	dst.Zero()
	if w := WorkersFor(m, m*n*k); w > 1 {
		Shard(m, w, func(lo, hi int) {
			matMulRows(dst.data, a.data, b.data, k, n, lo, hi)
		})
	} else {
		matMulRows(dst.data, a.data, b.data, k, n, 0, m)
	}
}

// axpyPanel adds av·brow elementwise into out (out must be at least as
// long as brow; the reslice lets the compiler drop the out[j] bounds check
// from the loop). It is a separate function on purpose: compiled inside
// the tile loops, the innermost loop has so many live values that the
// induction variable spills to the stack on every iteration — roughly a
// 20% kernel slowdown. A dedicated, never-inlined function gets its own
// clean register set; the call overhead is amortized over a whole panel.
//
//helcfl:noalloc
//go:noinline
func axpyPanel(out, brow []float64, av float64) {
	out = out[:len(brow)]
	for j, bv := range brow {
		out[j] += av * bv
	}
}

// matMulRows computes output rows [lo, hi) of a·b with k/n tiling. For a
// fixed output element, contributions arrive in ascending-p order with the
// same zero-skip as the naive ikj kernel, so the result is bit-identical.
//
//helcfl:noalloc
func matMulRows(dst, a, b []float64, k, n, lo, hi int) {
	for kb := 0; kb < k; kb += blockK {
		kEnd := kb + blockK
		if kEnd > k {
			kEnd = k
		}
		for jb := 0; jb < n; jb += blockN {
			jEnd := jb + blockN
			if jEnd > n {
				jEnd = n
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k+kb : i*k+kEnd]
				orow := dst[i*n+jb : i*n+jEnd]
				for pi, av := range arow {
					if av == 0 {
						continue
					}
					axpyPanel(orow, b[(kb+pi)*n+jb:(kb+pi)*n+jEnd], av)
				}
			}
		}
	}
}

// MatMulTransA returns aᵀ·b, where a has shape (k, m) and b has shape
// (k, n), producing (m, n). Used for weight-gradient accumulation
// (xᵀ · dy) without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	_, m, n := checkMatMulTransA(a, b)
	out := New(m, n)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes aᵀ·b into dst, which must have shape (m, n).
// dst is fully overwritten. Steady-state calls perform zero heap
// allocations.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m, n := checkMatMulTransA(a, b)
	checkDst("MatMulTransAInto", dst, m, n)
	dst.Zero()
	if w := WorkersFor(m, m*n*k); w > 1 {
		Shard(m, w, func(lo, hi int) {
			matMulTransARows(dst.data, a.data, b.data, k, m, n, lo, hi)
		})
	} else {
		matMulTransARows(dst.data, a.data, b.data, k, m, n, 0, m)
	}
}

// matMulTransARows computes output rows [lo, hi) of aᵀ·b, tiling the
// column dimension so the touched output panel stays cache-resident across
// the full p sweep. Ascending-p accumulation and the zero-skip match the
// naive pkj kernel exactly.
//
//helcfl:noalloc
func matMulTransARows(dst, a, b []float64, k, m, n, lo, hi int) {
	for jb := 0; jb < n; jb += blockN {
		jEnd := jb + blockN
		if jEnd > n {
			jEnd = n
		}
		for p := 0; p < k; p++ {
			arow := a[p*m+lo : p*m+hi]
			brow := b[p*n+jb : p*n+jEnd]
			for ii, av := range arow {
				if av == 0 {
					continue
				}
				axpyPanel(dst[(lo+ii)*n+jb:(lo+ii)*n+jEnd], brow, av)
			}
		}
	}
}

// MatMulTransB returns a·bᵀ, where a has shape (m, k) and b has shape
// (n, k), producing (m, n). Used for input-gradient propagation
// (dy · Wᵀ) without materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := checkMatMulTransB(a, b)
	out := New(m, n)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes a·bᵀ into dst, which must have shape (m, n).
// dst is fully overwritten. Steady-state calls perform zero heap
// allocations.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(a, b)
	checkDst("MatMulTransBInto", dst, m, n)
	dst.Zero()
	if w := WorkersFor(m, m*n*k); w > 1 {
		Shard(m, w, func(lo, hi int) {
			matMulTransBRows(dst.data, a.data, b.data, k, n, lo, hi)
		})
	} else {
		matMulTransBRows(dst.data, a.data, b.data, k, n, 0, m)
	}
}

// matMulTransBRows computes output rows [lo, hi) of a·bᵀ with k-dimension
// tiling: each output element accumulates its dot product across k-blocks
// in ascending-p order starting from the zeroed destination — the same
// addition chain as the naive per-element dot product.
//
//helcfl:noalloc
func matMulTransBRows(dst, a, b []float64, k, n, lo, hi int) {
	for jb := 0; jb < n; jb += blockN {
		jEnd := jb + blockN
		if jEnd > n {
			jEnd = n
		}
		for kb := 0; kb < k; kb += blockK {
			kEnd := kb + blockK
			if kEnd > k {
				kEnd = k
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k+kb : i*k+kEnd]
				orow := dst[i*n+jb : i*n+jEnd]
				for jj := range orow {
					// The [:len(arow)] reslice lets the compiler drop the
					// brow[p] bounds check from the dot-product loop.
					brow := b[(jb+jj)*k+kb : (jb+jj)*k+kEnd][:len(arow)]
					s := orow[jj]
					for p, av := range arow {
						s += av * brow[p]
					}
					orow[jj] = s
				}
			}
		}
	}
}

// checkMatMul validates a·b operands and returns (m, k, n).
func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: %v x %v", a.shape, b.shape))
	}
	return m, k, n
}

// checkMatMulTransA validates aᵀ·b operands and returns (k, m, n).
func checkMatMulTransA(a, b *Tensor) (k, m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA dimension mismatch: %vᵀ x %v", a.shape, b.shape))
	}
	return k, m, n
}

// checkMatMulTransB validates a·bᵀ operands and returns (m, k, n).
func checkMatMulTransB(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB dimension mismatch: %v x %vᵀ", a.shape, b.shape))
	}
	return m, k, n
}

// checkDst validates an Into destination shape.
func checkDst(op string, dst *Tensor, m, n int) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want (%d, %d)", op, dst.shape, m, n))
	}
}

// Transpose returns the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.data[c*rows+r] = t.data[r*cols+c]
		}
	}
	return out
}

// Outer returns the outer product a ⊗ b of two flat vectors, shaped
// (a.Size(), b.Size()).
func Outer(a, b *Tensor) *Tensor {
	m, n := a.Size(), b.Size()
	out := New(m, n)
	for i := 0; i < m; i++ {
		av := a.data[i]
		row := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = av * b.data[j]
		}
	}
	return out
}
