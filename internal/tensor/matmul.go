package tensor

import "fmt"

// MatMul returns the matrix product a·b, where a has shape (m, k) and b has
// shape (k, n). The kernel is a cache-friendly ikj loop over contiguous rows.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA returns aᵀ·b, where a has shape (k, m) and b has shape
// (k, n), producing (m, n). Used for weight-gradient accumulation
// (xᵀ · dy) without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA dimension mismatch: %vᵀ x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ, where a has shape (m, k) and b has shape
// (n, k), producing (m, n). Used for input-gradient propagation
// (dy · Wᵀ) without materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB dimension mismatch: %v x %vᵀ", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.data[c*rows+r] = t.data[r*cols+c]
		}
	}
	return out
}

// Outer returns the outer product a ⊗ b of two flat vectors, shaped
// (a.Size(), b.Size()).
func Outer(a, b *Tensor) *Tensor {
	m, n := a.Size(), b.Size()
	out := New(m, n)
	for i := 0; i < m; i++ {
		av := a.data[i]
		row := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = av * b.data[j]
		}
	}
	return out
}
