package tensor

import (
	"fmt"
	"math"
)

// Add returns t + u elementwise.
func (t *Tensor) Add(u *Tensor) *Tensor {
	t.checkSameShape("Add", u)
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] += v
	}
	return out
}

// AddInPlace sets t += u elementwise and returns t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.checkSameShape("AddInPlace", u)
	for i, v := range u.data {
		t.data[i] += v
	}
	return t
}

// Sub returns t - u elementwise.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	t.checkSameShape("Sub", u)
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] -= v
	}
	return out
}

// Mul returns the elementwise (Hadamard) product t ⊙ u.
func (t *Tensor) Mul(u *Tensor) *Tensor {
	t.checkSameShape("Mul", u)
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] *= v
	}
	return out
}

// MulInPlace sets t ⊙= u elementwise and returns t.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	t.checkSameShape("MulInPlace", u)
	for i, v := range u.data {
		t.data[i] *= v
	}
	return t
}

// Scale returns c·t.
func (t *Tensor) Scale(c float64) *Tensor {
	out := t.Clone()
	for i := range out.data {
		out.data[i] *= c
	}
	return out
}

// ScaleInPlace sets t *= c and returns t.
func (t *Tensor) ScaleInPlace(c float64) *Tensor {
	for i := range t.data {
		t.data[i] *= c
	}
	return t
}

// AXPY sets t += a·u (the BLAS axpy update) and returns t.
func (t *Tensor) AXPY(a float64, u *Tensor) *Tensor {
	t.checkSameShape("AXPY", u)
	for i, v := range u.data {
		t.data[i] += a * v
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := t.Clone()
	for i, v := range out.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements. It panics on an empty
// tensor.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		panic("tensor: Mean of empty tensor")
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the first occurrence of the largest
// element. It panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, arg = v, i+1
		}
	}
	return arg
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.data) != len(u.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", len(t.data), len(u.data)))
	}
	s := 0.0
	for i, v := range t.data {
		s += v * u.data[i]
	}
	return s
}

// Norm2 returns the Euclidean (Frobenius) norm.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// RowSums treats t as a (rows, cols) matrix and returns a length-rows
// tensor of per-row sums.
func (t *Tensor) RowSums() *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: RowSums needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(rows)
	for r := 0; r < rows; r++ {
		s := 0.0
		row := t.data[r*cols : (r+1)*cols]
		for _, v := range row {
			s += v
		}
		out.data[r] = s
	}
	return out
}

// ColSums treats t as a (rows, cols) matrix and returns a length-cols
// tensor of per-column sums.
func (t *Tensor) ColSums() *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ColSums needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c, v := range row {
			out.data[c] += v
		}
	}
	return out
}

// AddColSumsInto treats t as a (rows, cols) matrix and adds its per-column
// sums into dst (length cols). The allocation-free form of ColSums for
// gradient accumulation.
//
//helcfl:noalloc
func (t *Tensor) AddColSumsInto(dst *Tensor) {
	checkAddColSumsInto(t, dst)
	rows, cols := t.shape[0], t.shape[1]
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c, v := range row {
			dst.data[c] += v
		}
	}
}

// checkAddColSumsInto validates AddColSumsInto operands.
func checkAddColSumsInto(t, dst *Tensor) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: AddColSumsInto needs rank 2, got shape %v", t.shape))
	}
	if dst.Size() != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddColSumsInto destination size %d != cols %d", dst.Size(), t.shape[1]))
	}
}

// AddRowVector treats t as a (rows, cols) matrix and adds v (length cols)
// to every row in place, returning t. This is the bias-broadcast update.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: AddRowVector needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	if v.Size() != cols {
		panic(fmt.Sprintf("tensor: AddRowVector vector size %d != cols %d", v.Size(), cols))
	}
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v.data[c]
		}
	}
	return t
}
