// Package device models the heterogeneous, DVFS-capable user equipment of
// the HELCFL system: per-device CPU frequency ranges, the cycle-accurate
// compute-delay model of Eq. (4), and the switched-capacitance energy model
// of Eq. (5).
package device

import (
	"fmt"
	"math/rand"
	"sort"
)

// Constants shared by the paper's experimental setting (Section VII-A).
const (
	// DefaultCyclesPerSample is π, the CPU cycles needed to process one data
	// sample (π = 1×10⁷ in the paper).
	DefaultCyclesPerSample = 1e7
	// DefaultKappa is α/2·2 — the effective switched capacitance α. The
	// paper prints α = 2×10²⁸, an obvious sign typo for the 2×10⁻²⁸ used by
	// its cited source (Tran et al.); see DESIGN.md.
	DefaultKappa = 2e-28
	// DefaultFMin is the common lowest CPU frequency, 0.3 GHz.
	DefaultFMin = 0.3e9
	// FMaxLow and FMaxHigh bound the sampled highest CPU frequencies,
	// "distributed at intervals (0.3, 2.0) GHz".
	FMaxLow  = 0.3e9
	FMaxHigh = 2.0e9
)

// Device is one DVFS-capable user device.
type Device struct {
	// ID indexes the device within the system (0-based).
	ID int
	// FMin and FMax bound the operating frequency in Hz (constraint (15)).
	FMin, FMax float64
	// CyclesPerSample is π in Eq. (4).
	CyclesPerSample float64
	// Kappa is the effective switched capacitance α in Eq. (5).
	Kappa float64
	// TxPower is the uplink transmission power p_q in watts.
	TxPower float64
	// ChannelGain is h_q, the (amplitude) channel gain toward the FLCC.
	ChannelGain float64
	// NumSamples is |D_q|, the local dataset size. Filled when data is
	// partitioned.
	NumSamples int
	// Levels, when non-empty, lists the discrete DVFS operating points
	// (ascending, within [FMin, FMax]). Real silicon exposes a handful of
	// P-states rather than a continuum; SnapFreq quantizes requests onto
	// them. Empty means continuously tunable (the paper's idealization).
	Levels []float64
}

// Validate reports configuration errors.
func (d *Device) Validate() error {
	switch {
	case d.FMin <= 0 || d.FMax <= 0:
		return fmt.Errorf("device %d: non-positive frequency bounds [%g, %g]", d.ID, d.FMin, d.FMax)
	case d.FMin > d.FMax:
		return fmt.Errorf("device %d: FMin %g above FMax %g", d.ID, d.FMin, d.FMax)
	case d.CyclesPerSample <= 0:
		return fmt.Errorf("device %d: non-positive cycles per sample %g", d.ID, d.CyclesPerSample)
	case d.Kappa <= 0:
		return fmt.Errorf("device %d: non-positive switched capacitance %g", d.ID, d.Kappa)
	case d.TxPower <= 0:
		return fmt.Errorf("device %d: non-positive transmit power %g", d.ID, d.TxPower)
	case d.ChannelGain <= 0:
		return fmt.Errorf("device %d: non-positive channel gain %g", d.ID, d.ChannelGain)
	}
	return nil
}

// ClampFreq projects f onto [FMin, FMax] (constraint (15)).
func (d *Device) ClampFreq(f float64) float64 {
	if f < d.FMin {
		return d.FMin
	}
	if f > d.FMax {
		return d.FMax
	}
	return f
}

// SnapFreq quantizes a requested frequency onto the device's discrete DVFS
// levels, choosing the smallest level ≥ f (so a deadline-driven request is
// never missed); requests above the top level return the top level. With
// no levels configured it is ClampFreq.
func (d *Device) SnapFreq(f float64) float64 {
	return snapToLevels(d.Levels, d.ClampFreq(f))
}

// snapToLevels returns the smallest level ≥ f−1e-9 (the 1 nHz tolerance
// absorbs ULP noise from Algorithm 3's chaining arithmetic), or the top
// level when f is above all of them. Levels are ascending, so binary search
// finds the same level the linear scan it replaced did; the differential
// test in device_test.go pins the equivalence, tolerance band included.
// Empty levels mean a continuously tunable device: f passes through.
func snapToLevels(levels []float64, f float64) float64 {
	if len(levels) == 0 {
		return f
	}
	if i := sort.SearchFloat64s(levels, f-1e-9); i < len(levels) {
		return levels[i]
	}
	return levels[len(levels)-1]
}

// snapToLevelsScan is the retained linear-scan reference of snapToLevels,
// kept verbatim from the pre-binary-search SnapFreq so the differential
// test has an independent oracle.
func snapToLevelsScan(levels []float64, f float64) float64 {
	if len(levels) == 0 {
		return f
	}
	for _, l := range levels {
		if l >= f-1e-9 {
			return l
		}
	}
	return levels[len(levels)-1]
}

// UniformLevels equips the device with n evenly spaced DVFS operating
// points spanning [FMin, FMax] (n ≥ 2).
func (d *Device) UniformLevels(n int) {
	if n < 2 {
		panic(fmt.Sprintf("device %d: need ≥2 DVFS levels, got %d", d.ID, n))
	}
	d.Levels = make([]float64, n)
	for i := range d.Levels {
		d.Levels[i] = d.FMin + (d.FMax-d.FMin)*float64(i)/float64(n-1)
	}
	// Pin the endpoints exactly: the interpolation above can exceed FMax by
	// one ULP, which downstream range checks would reject.
	d.Levels[0] = d.FMin
	d.Levels[n-1] = d.FMax
}

// TotalCycles returns π·|D_q|, the cycles for one full local update pass.
func (d *Device) TotalCycles() float64 {
	return d.CyclesPerSample * float64(d.NumSamples)
}

// ComputeDelay returns T_q^cal = π·|D_q| / f (Eq. 4) at frequency f in Hz.
func (d *Device) ComputeDelay(f float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("device %d: compute delay at non-positive frequency %g", d.ID, f))
	}
	return d.TotalCycles() / f
}

// ComputeDelayAtMax returns T_q^cal at FMax, the value Algorithm 2 ranks on.
func (d *Device) ComputeDelayAtMax() float64 { return d.ComputeDelay(d.FMax) }

// ComputeEnergy returns E_q^cal = (α/2)·π·|D_q|·f² (Eq. 5) at frequency f.
func (d *Device) ComputeEnergy(f float64) float64 {
	return d.Kappa / 2 * d.TotalCycles() * f * f
}

// FreqForDelay returns the frequency that makes the local update take
// exactly delay seconds (the inversion of Eq. (4) used by Algorithm 3,
// line 9), before clamping.
func (d *Device) FreqForDelay(delay float64) float64 {
	if delay <= 0 {
		panic(fmt.Sprintf("device %d: frequency for non-positive delay %g", d.ID, delay))
	}
	return d.TotalCycles() / delay
}

// CatalogConfig controls random generation of a heterogeneous device fleet.
type CatalogConfig struct {
	// Q is the number of devices (paper: 100).
	Q int
	// FMin is the shared minimum frequency (paper: 0.3 GHz).
	FMin float64
	// FMaxLow and FMaxHigh bound the uniformly sampled per-device maximum
	// frequency (paper: (0.3, 2.0) GHz).
	FMaxLow, FMaxHigh float64
	// CyclesPerSample is π (paper: 1e7).
	CyclesPerSample float64
	// Kappa is α (paper, corrected: 2e-28).
	Kappa float64
	// TxPower is p_q (paper: 0.2 W for all users).
	TxPower float64
	// GainLow and GainHigh bound the uniformly sampled channel gain h_q.
	// Defaults give SNRs that put upload delays on the same second-scale as
	// compute delays, matching the paper's regime where both matter.
	GainLow, GainHigh float64
	// SamplesLow and SamplesHigh, when SamplesHigh > 0, bound the uniformly
	// sampled local dataset size |D_q| for fleets generated without a real
	// data partition (the scale benchmarks). Zero (the default) leaves
	// NumSamples unset, matching NewCatalog, whose draws they never touch.
	SamplesLow, SamplesHigh int
}

// DefaultCatalogConfig returns the paper's experimental setting.
func DefaultCatalogConfig() CatalogConfig {
	return CatalogConfig{
		Q:               100,
		FMin:            DefaultFMin,
		FMaxLow:         FMaxLow,
		FMaxHigh:        FMaxHigh,
		CyclesPerSample: DefaultCyclesPerSample,
		Kappa:           DefaultKappa,
		TxPower:         0.2,
		GainLow:         0.5,
		GainHigh:        1.5,
	}
}

// NewCatalog samples a heterogeneous fleet from cfg using rng. FMax is drawn
// uniformly from the open interval (FMaxLow, FMaxHigh) but never below FMin.
func NewCatalog(cfg CatalogConfig, rng *rand.Rand) []*Device {
	if cfg.Q <= 0 {
		panic(fmt.Sprintf("device: catalog size %d must be positive", cfg.Q))
	}
	devs := make([]*Device, cfg.Q)
	for q := range devs {
		fmax := cfg.FMaxLow + (cfg.FMaxHigh-cfg.FMaxLow)*rng.Float64()
		if fmax < cfg.FMin {
			fmax = cfg.FMin
		}
		devs[q] = &Device{
			ID:              q,
			FMin:            cfg.FMin,
			FMax:            fmax,
			CyclesPerSample: cfg.CyclesPerSample,
			Kappa:           cfg.Kappa,
			TxPower:         cfg.TxPower,
			ChannelGain:     cfg.GainLow + (cfg.GainHigh-cfg.GainLow)*rng.Float64(),
		}
	}
	return devs
}
