package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sample() *Device {
	return &Device{
		ID: 1, FMin: 0.3e9, FMax: 1.5e9,
		CyclesPerSample: 1e7, Kappa: 2e-28,
		TxPower: 0.2, ChannelGain: 1.0, NumSamples: 500,
	}
}

func TestComputeDelayEq4(t *testing.T) {
	d := sample()
	// T = π|D|/f = 1e7·500 / 1e9 = 5 s.
	if got := d.ComputeDelay(1e9); math.Abs(got-5) > 1e-12 {
		t.Fatalf("ComputeDelay = %g, want 5", got)
	}
	if got := d.ComputeDelayAtMax(); math.Abs(got-5e9/1.5e9) > 1e-9 {
		t.Fatalf("ComputeDelayAtMax = %g", got)
	}
}

func TestComputeEnergyEq5(t *testing.T) {
	d := sample()
	// E = (α/2)·π|D|·f² = 1e-28·5e9·1e18 = 0.5 J at 1 GHz.
	if got := d.ComputeEnergy(1e9); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ComputeEnergy = %g, want 0.5", got)
	}
}

func TestEnergyQuadraticInFrequency(t *testing.T) {
	d := sample()
	e1 := d.ComputeEnergy(0.5e9)
	e2 := d.ComputeEnergy(1.0e9)
	if math.Abs(e2/e1-4) > 1e-9 {
		t.Fatalf("doubling f must quadruple energy: ratio = %g", e2/e1)
	}
}

func TestFreqForDelayInvertsComputeDelay(t *testing.T) {
	d := sample()
	f := 0.8e9
	delay := d.ComputeDelay(f)
	if got := d.FreqForDelay(delay); math.Abs(got-f)/f > 1e-12 {
		t.Fatalf("FreqForDelay = %g, want %g", got, f)
	}
}

func TestClampFreq(t *testing.T) {
	d := sample()
	if got := d.ClampFreq(0.1e9); got != d.FMin {
		t.Fatalf("clamp below = %g", got)
	}
	if got := d.ClampFreq(9e9); got != d.FMax {
		t.Fatalf("clamp above = %g", got)
	}
	if got := d.ClampFreq(1e9); got != 1e9 {
		t.Fatalf("clamp inside = %g", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := sample()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Device){
		"negative fmin":     func(d *Device) { d.FMin = -1 },
		"fmin above fmax":   func(d *Device) { d.FMin = 2e9 },
		"zero cycles":       func(d *Device) { d.CyclesPerSample = 0 },
		"zero kappa":        func(d *Device) { d.Kappa = 0 },
		"zero power":        func(d *Device) { d.TxPower = 0 },
		"zero channel gain": func(d *Device) { d.ChannelGain = 0 },
	} {
		d := sample()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Fatalf("%s: Validate must fail", name)
		}
	}
}

func TestComputeDelayZeroFreqPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	sample().ComputeDelay(0)
}

func TestNewCatalogPaperSetting(t *testing.T) {
	cfg := DefaultCatalogConfig()
	devs := NewCatalog(cfg, rand.New(rand.NewSource(1)))
	if len(devs) != 100 {
		t.Fatalf("catalog size = %d, want 100", len(devs))
	}
	for _, d := range devs {
		if d.NumSamples != 0 {
			t.Fatal("catalog devices start with no data")
		}
		d.NumSamples = 1 // satisfy Validate's implicit use
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.FMax < cfg.FMin || d.FMax > cfg.FMaxHigh {
			t.Fatalf("device %d FMax %g outside range", d.ID, d.FMax)
		}
		if d.FMin != cfg.FMin {
			t.Fatalf("device %d FMin %g, want %g", d.ID, d.FMin, cfg.FMin)
		}
	}
}

func TestNewCatalogHeterogeneous(t *testing.T) {
	devs := NewCatalog(DefaultCatalogConfig(), rand.New(rand.NewSource(2)))
	lo, hi := devs[0].FMax, devs[0].FMax
	for _, d := range devs {
		if d.FMax < lo {
			lo = d.FMax
		}
		if d.FMax > hi {
			hi = d.FMax
		}
	}
	if hi/lo < 2 {
		t.Fatalf("fleet not heterogeneous enough: FMax spread %g–%g", lo, hi)
	}
}

func TestNewCatalogDeterministic(t *testing.T) {
	a := NewCatalog(DefaultCatalogConfig(), rand.New(rand.NewSource(3)))
	b := NewCatalog(DefaultCatalogConfig(), rand.New(rand.NewSource(3)))
	for i := range a {
		if a[i].FMax != b[i].FMax || a[i].ChannelGain != b[i].ChannelGain {
			t.Fatal("same seed must give the same catalog")
		}
	}
}

// Property: for any valid frequency, slowing down always saves energy and
// costs delay — the trade-off Algorithm 3 exploits.
func TestSlowerIsCheaperQuick(t *testing.T) {
	d := sample()
	f := func(a, b float64) bool {
		fa := d.FMin + math.Mod(math.Abs(a), d.FMax-d.FMin)
		fb := d.FMin + math.Mod(math.Abs(b), d.FMax-d.FMin)
		if fa > fb {
			fa, fb = fb, fa
		}
		if fb-fa < 1 { // degenerate draw
			fb = fa + 1e6
		}
		return d.ComputeEnergy(fa) <= d.ComputeEnergy(fb) &&
			d.ComputeDelay(fa) >= d.ComputeDelay(fb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
