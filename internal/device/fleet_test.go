package device

import (
	"math/rand"
	"testing"
)

// TestSnapFreqBinarySearchMatchesScan differentially tests the binary-search
// SnapFreq against the retained linear-scan reference across random level
// tables and requests, including requests landing exactly on, just below,
// and just above a level — the 1e-9 tolerance band.
func TestSnapFreqBinarySearchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(12)
		d := &Device{FMin: 0.3e9, FMax: 0.3e9 + 1.7e9*rng.Float64()}
		if d.FMax < d.FMin+1 {
			d.FMax = d.FMin + 1
		}
		d.UniformLevels(n)
		probes := []float64{
			d.FMin, d.FMax, d.FMin - 1e8, d.FMax + 1e8,
			d.FMin + (d.FMax-d.FMin)*rng.Float64(),
		}
		for _, l := range d.Levels {
			probes = append(probes, l, l-1e-10, l+1e-10, l-1e-9, l+1e-9, l-2e-9, l+2e-9)
		}
		for _, f := range probes {
			got := d.SnapFreq(f)
			want := snapToLevelsScan(d.Levels, d.ClampFreq(f))
			if got != want {
				t.Fatalf("SnapFreq(%v) = %v, scan reference = %v (levels %v)", f, got, want, d.Levels)
			}
		}
	}
	// Continuous device: SnapFreq degenerates to ClampFreq in both forms.
	d := &Device{FMin: 1e9, FMax: 2e9}
	if got, want := d.SnapFreq(1.5e9), 1.5e9; got != want {
		t.Fatalf("continuous SnapFreq = %v, want %v", got, want)
	}
}

// TestFleetOfMatchesDevices round-trips a random catalog AoS → SoA → AoS
// and checks every field and every derived quantity agrees bitwise.
func TestFleetOfMatchesDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	devs := NewCatalog(DefaultCatalogConfig(), rng)
	for q, d := range devs {
		d.NumSamples = 10 + q%7
		if q%3 == 0 {
			d.UniformLevels(4 + q%5)
		}
	}
	f := FleetOf(devs)
	if f.Len() != len(devs) {
		t.Fatalf("fleet Len = %d, want %d", f.Len(), len(devs))
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("fleet validate: %v", err)
	}
	for q, d := range devs {
		if f.FMin[q] != d.FMin || f.FMax[q] != d.FMax || f.TxPower[q] != d.TxPower ||
			f.ChannelGain[q] != d.ChannelGain || f.NumSamples[q] != d.NumSamples {
			t.Fatalf("device %d: SoA fields diverge from AoS", q)
		}
		if f.TotalCycles(q) != d.TotalCycles() {
			t.Fatalf("device %d: TotalCycles %v != %v", q, f.TotalCycles(q), d.TotalCycles())
		}
		fr := d.FMin + (d.FMax-d.FMin)*0.37
		if f.ComputeDelay(q, fr) != d.ComputeDelay(fr) {
			t.Fatalf("device %d: ComputeDelay diverges", q)
		}
		if f.ComputeDelayAtMax(q) != d.ComputeDelayAtMax() {
			t.Fatalf("device %d: ComputeDelayAtMax diverges", q)
		}
		if f.ComputeEnergy(q, fr) != d.ComputeEnergy(fr) {
			t.Fatalf("device %d: ComputeEnergy diverges", q)
		}
		if f.SnapFreq(q, fr*0.9) != d.SnapFreq(fr*0.9) {
			t.Fatalf("device %d: SnapFreq diverges", q)
		}
	}
	back := f.Devices()
	for q, d := range devs {
		b := back[q]
		if b.ID != q || b.FMax != d.FMax || b.NumSamples != d.NumSamples || len(b.Levels) != len(d.Levels) {
			t.Fatalf("device %d: AoS materialization diverges", q)
		}
	}
}

// TestNewFleetDeterministic pins NewFleet's key-derived generation: same
// (cfg, seed) twice is identical, a larger fleet extends a smaller one
// prefix-for-prefix (order independence), and different seeds differ.
func TestNewFleetDeterministic(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.Q = 5000
	cfg.SamplesLow, cfg.SamplesHigh = 20, 60
	a := NewFleet(cfg, 42)
	b := NewFleet(cfg, 42)
	if err := a.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	big := cfg
	big.Q = 12000
	c := NewFleet(big, 42)
	other := NewFleet(cfg, 43)
	diff := false
	for q := 0; q < cfg.Q; q++ {
		if a.FMax[q] != b.FMax[q] || a.ChannelGain[q] != b.ChannelGain[q] || a.NumSamples[q] != b.NumSamples[q] {
			t.Fatalf("device %d: same seed produced different fleets", q)
		}
		if a.FMax[q] != c.FMax[q] || a.ChannelGain[q] != c.ChannelGain[q] || a.NumSamples[q] != c.NumSamples[q] {
			t.Fatalf("device %d: fleet prefix depends on fleet size", q)
		}
		if a.FMax[q] != other.FMax[q] {
			diff = true
		}
		if a.FMax[q] < cfg.FMin || a.FMax[q] > cfg.FMaxHigh {
			t.Fatalf("device %d: FMax %v outside [%v, %v]", q, a.FMax[q], cfg.FMin, cfg.FMaxHigh)
		}
		if a.NumSamples[q] < cfg.SamplesLow || a.NumSamples[q] > cfg.SamplesHigh {
			t.Fatalf("device %d: NumSamples %d outside [%d, %d]", q, a.NumSamples[q], cfg.SamplesLow, cfg.SamplesHigh)
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fleets")
	}
	// Without a samples range, NumSamples stays unset like NewCatalog.
	plain := NewFleet(DefaultCatalogConfig(), 42)
	for q := 0; q < plain.Len(); q++ {
		if plain.NumSamples[q] != 0 {
			t.Fatalf("device %d: NumSamples %d without a samples range", q, plain.NumSamples[q])
		}
	}
}

// BenchmarkFleetCatalog measures batched key-derived fleet generation at
// two scales (ISSUE 10 tooling gate).
func BenchmarkFleetCatalog(b *testing.B) {
	for _, q := range []int{1000, 100000} {
		cfg := DefaultCatalogConfig()
		cfg.Q = q
		cfg.SamplesLow, cfg.SamplesHigh = 20, 60
		b.Run(benchName(q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewFleet(cfg, 1)
			}
		})
	}
}

func benchName(q int) string {
	switch {
	case q >= 1000000:
		return "Q1e6"
	case q >= 100000:
		return "Q1e5"
	default:
		return "Q1e3"
	}
}
