package device_test

import (
	"fmt"

	"helcfl/internal/device"
)

// The paper's cost model for one local update: Eq. (4) delay and Eq. (5)
// energy at a chosen DVFS frequency.
func ExampleDevice() {
	d := &device.Device{
		ID: 0, FMin: 0.3e9, FMax: 2.0e9,
		CyclesPerSample: 1e7, // π
		Kappa:           2e-28,
		TxPower:         0.2, ChannelGain: 1.0,
		NumSamples: 500, // |D_q|
	}
	fmt.Printf("T_cal at 1 GHz: %.1f s\n", d.ComputeDelay(1e9))
	fmt.Printf("E_cal at 1 GHz: %.2f J\n", d.ComputeEnergy(1e9))
	// Halving the frequency doubles delay and quarters energy — the
	// trade-off Algorithm 3 exploits.
	fmt.Printf("T_cal at 0.5 GHz: %.1f s, E_cal: %.3f J\n",
		d.ComputeDelay(0.5e9), d.ComputeEnergy(0.5e9))
	// Output:
	// T_cal at 1 GHz: 5.0 s
	// E_cal at 1 GHz: 0.50 J
	// T_cal at 0.5 GHz: 10.0 s, E_cal: 0.125 J
}

func ExampleDevice_SnapFreq() {
	d := &device.Device{
		ID: 0, FMin: 0.4e9, FMax: 1.6e9,
		CyclesPerSample: 1e7, Kappa: 2e-28,
		TxPower: 0.2, ChannelGain: 1, NumSamples: 10,
	}
	d.UniformLevels(4) // {0.4, 0.8, 1.2, 1.6} GHz
	fmt.Printf("%.1f GHz\n", d.SnapFreq(0.9e9)/1e9)
	// Output:
	// 1.2 GHz
}
