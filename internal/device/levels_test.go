package device

import (
	"math"
	"testing"
)

func TestSnapFreqContinuousFallback(t *testing.T) {
	d := sample()
	if d.SnapFreq(0.9e9) != 0.9e9 {
		t.Fatal("no levels: SnapFreq must pass through in-range requests")
	}
	if d.SnapFreq(0.1e9) != d.FMin || d.SnapFreq(9e9) != d.FMax {
		t.Fatal("no levels: SnapFreq must clamp like ClampFreq")
	}
}

func TestSnapFreqRoundsUp(t *testing.T) {
	d := sample() // [0.3, 1.5] GHz
	d.Levels = []float64{0.3e9, 0.6e9, 0.9e9, 1.2e9, 1.5e9}
	if got := d.SnapFreq(0.7e9); got != 0.9e9 {
		t.Fatalf("SnapFreq(0.7GHz) = %g, want next level up 0.9GHz", got)
	}
	if got := d.SnapFreq(0.9e9); got != 0.9e9 {
		t.Fatal("exact level must be preserved")
	}
	if got := d.SnapFreq(0.1e9); got != 0.3e9 {
		t.Fatal("below range snaps to the lowest level")
	}
	if got := d.SnapFreq(2e9); got != 1.5e9 {
		t.Fatal("above range snaps to the top level")
	}
}

func TestUniformLevels(t *testing.T) {
	d := sample()
	d.UniformLevels(5)
	if len(d.Levels) != 5 {
		t.Fatalf("levels = %d", len(d.Levels))
	}
	if d.Levels[0] != d.FMin || d.Levels[4] != d.FMax {
		t.Fatal("levels must span [FMin, FMax]")
	}
	step := d.Levels[1] - d.Levels[0]
	for i := 1; i < len(d.Levels); i++ {
		if math.Abs(d.Levels[i]-d.Levels[i-1]-step) > 1 {
			t.Fatal("levels must be evenly spaced")
		}
	}
}

func TestUniformLevelsBadCountPanics(t *testing.T) {
	d := sample()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.UniformLevels(1)
}

// Snapping up costs energy versus the continuous ideal but never delay:
// the snapped frequency is ≥ the requested one.
func TestSnapFreqNeverSlower(t *testing.T) {
	d := sample()
	d.UniformLevels(4)
	for _, f := range []float64{0.31e9, 0.5e9, 0.77e9, 1.1e9, 1.49e9} {
		snapped := d.SnapFreq(f)
		if snapped < d.ClampFreq(f)-1e-9 {
			t.Fatalf("SnapFreq(%g) = %g is slower than requested", f, snapped)
		}
	}
}
