package device

import (
	"fmt"
	"runtime"
	"sync"
)

// Fleet is the structure-of-arrays form of a device catalog: one parallel
// slice per field instead of a slice of per-device structs. At the paper's
// Q=100 the two layouts are interchangeable; at Q=10⁶ the SoA form is what
// lets the scheduler stream utilities, delays, and energies through
// contiguous memory with no pointer chasing. Index q everywhere is the
// fleet position, which doubles as the device ID.
type Fleet struct {
	// FMin and FMax bound each device's operating frequency (constraint 15).
	FMin, FMax []float64
	// CyclesPerSample is π in Eq. (4).
	CyclesPerSample []float64
	// Kappa is the effective switched capacitance α in Eq. (5).
	Kappa []float64
	// TxPower is the uplink transmission power p_q in watts.
	TxPower []float64
	// ChannelGain is h_q toward the FLCC (or the device's edge aggregator).
	ChannelGain []float64
	// NumSamples is |D_q|.
	NumSamples []int
	// Levels, when non-nil, holds each device's discrete DVFS operating
	// points (nil entry = continuously tunable). A nil table means the whole
	// fleet is continuous — the common case, kept as one nil check in the
	// SnapFreq hot path.
	Levels [][]float64
}

// Len returns Q, the fleet size.
func (f *Fleet) Len() int { return len(f.FMax) }

// Validate reports configuration errors, mirroring Device.Validate per
// index (messages match so SoA and AoS constructions fail identically).
func (f *Fleet) Validate() error {
	q := f.Len()
	if len(f.FMin) != q || len(f.CyclesPerSample) != q || len(f.Kappa) != q ||
		len(f.TxPower) != q || len(f.ChannelGain) != q || len(f.NumSamples) != q {
		return fmt.Errorf("device: ragged fleet arrays (Q=%d)", q)
	}
	if f.Levels != nil && len(f.Levels) != q {
		return fmt.Errorf("device: ragged fleet levels table (Q=%d)", q)
	}
	for i := 0; i < q; i++ {
		switch {
		case f.FMin[i] <= 0 || f.FMax[i] <= 0:
			return fmt.Errorf("device %d: non-positive frequency bounds [%g, %g]", i, f.FMin[i], f.FMax[i])
		case f.FMin[i] > f.FMax[i]:
			return fmt.Errorf("device %d: FMin %g above FMax %g", i, f.FMin[i], f.FMax[i])
		case f.CyclesPerSample[i] <= 0:
			return fmt.Errorf("device %d: non-positive cycles per sample %g", i, f.CyclesPerSample[i])
		case f.Kappa[i] <= 0:
			return fmt.Errorf("device %d: non-positive switched capacitance %g", i, f.Kappa[i])
		case f.TxPower[i] <= 0:
			return fmt.Errorf("device %d: non-positive transmit power %g", i, f.TxPower[i])
		case f.ChannelGain[i] <= 0:
			return fmt.Errorf("device %d: non-positive channel gain %g", i, f.ChannelGain[i])
		}
	}
	return nil
}

// TotalCycles returns π·|D_q| for device q.
func (f *Fleet) TotalCycles(q int) float64 {
	return f.CyclesPerSample[q] * float64(f.NumSamples[q])
}

// ComputeDelay returns T_q^cal = π·|D_q| / freq (Eq. 4).
func (f *Fleet) ComputeDelay(q int, freq float64) float64 {
	if freq <= 0 {
		panic(fmt.Sprintf("device %d: compute delay at non-positive frequency %g", q, freq))
	}
	return f.TotalCycles(q) / freq
}

// ComputeDelayAtMax returns T_q^cal at FMax, the value Algorithm 2 ranks on.
func (f *Fleet) ComputeDelayAtMax(q int) float64 { return f.ComputeDelay(q, f.FMax[q]) }

// ComputeEnergy returns E_q^cal = (α/2)·π·|D_q|·f² (Eq. 5).
func (f *Fleet) ComputeEnergy(q int, freq float64) float64 {
	return f.Kappa[q] / 2 * f.TotalCycles(q) * freq * freq
}

// ClampFreq projects freq onto device q's [FMin, FMax].
func (f *Fleet) ClampFreq(q int, freq float64) float64 {
	if freq < f.FMin[q] {
		return f.FMin[q]
	}
	if freq > f.FMax[q] {
		return f.FMax[q]
	}
	return freq
}

// SnapFreq is Device.SnapFreq on the SoA layout: clamp, then quantize onto
// device q's discrete levels when it has any.
func (f *Fleet) SnapFreq(q int, freq float64) float64 {
	freq = f.ClampFreq(q, freq)
	if f.Levels == nil {
		return freq
	}
	return snapToLevels(f.Levels[q], freq)
}

// FleetOf snapshots an AoS catalog into SoA form. Field values are copied;
// Levels slices are shared (they are read-only operating-point tables).
// Positions follow devs order — callers that rely on the position==ID
// convention (every catalog in this module) get identical indexing in both
// layouts.
func FleetOf(devs []*Device) *Fleet {
	q := len(devs)
	f := &Fleet{
		FMin:            make([]float64, q),
		FMax:            make([]float64, q),
		CyclesPerSample: make([]float64, q),
		Kappa:           make([]float64, q),
		TxPower:         make([]float64, q),
		ChannelGain:     make([]float64, q),
		NumSamples:      make([]int, q),
	}
	for i, d := range devs {
		f.FMin[i] = d.FMin
		f.FMax[i] = d.FMax
		f.CyclesPerSample[i] = d.CyclesPerSample
		f.Kappa[i] = d.Kappa
		f.TxPower[i] = d.TxPower
		f.ChannelGain[i] = d.ChannelGain
		f.NumSamples[i] = d.NumSamples
		if len(d.Levels) > 0 {
			if f.Levels == nil {
				f.Levels = make([][]float64, q)
			}
			f.Levels[i] = d.Levels
		}
	}
	return f
}

// Devices materializes the AoS view of the fleet (IDs are positions) — the
// thin adapter that keeps []*Device consumers (the FL engine, deploy
// conformance) working on SoA-generated fleets.
func (f *Fleet) Devices() []*Device {
	devs := make([]*Device, f.Len())
	for q := range devs {
		d := &Device{
			ID:              q,
			FMin:            f.FMin[q],
			FMax:            f.FMax[q],
			CyclesPerSample: f.CyclesPerSample[q],
			Kappa:           f.Kappa[q],
			TxPower:         f.TxPower[q],
			ChannelGain:     f.ChannelGain[q],
			NumSamples:      f.NumSamples[q],
		}
		if f.Levels != nil {
			d.Levels = f.Levels[q]
		}
		devs[q] = d
	}
	return devs
}

// fleetChunk is the per-goroutine block size of NewFleet's parallel fill:
// large enough to amortize goroutine startup, small enough to balance load.
const fleetChunk = 1 << 16

// NewFleet samples a heterogeneous fleet of cfg.Q devices directly in SoA
// form. Unlike NewCatalog's sequential *rand.Rand draws, every value is
// derived from (seed, q, dim) through a splitmix64 finalizer, so generation
// is order-independent: index blocks fill on all cores, fleets of different
// sizes share prefixes, and the result is identical across runs and
// GOMAXPROCS settings. When cfg.SamplesHigh > 0, NumSamples is sampled
// uniformly from [SamplesLow, SamplesHigh]; otherwise it is left zero like
// NewCatalog (callers partition real data onto the fleet).
func NewFleet(cfg CatalogConfig, seed int64) *Fleet {
	if cfg.Q <= 0 {
		panic(fmt.Sprintf("device: catalog size %d must be positive", cfg.Q))
	}
	f := &Fleet{
		FMin:            make([]float64, cfg.Q),
		FMax:            make([]float64, cfg.Q),
		CyclesPerSample: make([]float64, cfg.Q),
		Kappa:           make([]float64, cfg.Q),
		TxPower:         make([]float64, cfg.Q),
		ChannelGain:     make([]float64, cfg.Q),
		NumSamples:      make([]int, cfg.Q),
	}
	workers := runtime.GOMAXPROCS(0)
	if blocks := (cfg.Q + fleetChunk - 1) / fleetChunk; workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		fillFleetRange(f, cfg, seed, 0, cfg.Q)
		return f
	}
	var wg sync.WaitGroup
	next := 0
	per := (cfg.Q + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := next, next+per
		if hi > cfg.Q {
			hi = cfg.Q
		}
		next = hi
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fillFleetRange(f, cfg, seed, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return f
}

// fillFleetRange derives devices [lo, hi). Each index depends only on
// (seed, q), never on its neighbours, which is what makes the parallel fill
// deterministic.
func fillFleetRange(f *Fleet, cfg CatalogConfig, seed int64, lo, hi int) {
	for q := lo; q < hi; q++ {
		fmax := cfg.FMaxLow + (cfg.FMaxHigh-cfg.FMaxLow)*keyedUniform(seed, q, 0)
		if fmax < cfg.FMin {
			fmax = cfg.FMin
		}
		f.FMin[q] = cfg.FMin
		f.FMax[q] = fmax
		f.CyclesPerSample[q] = cfg.CyclesPerSample
		f.Kappa[q] = cfg.Kappa
		f.TxPower[q] = cfg.TxPower
		f.ChannelGain[q] = cfg.GainLow + (cfg.GainHigh-cfg.GainLow)*keyedUniform(seed, q, 1)
		if cfg.SamplesHigh > 0 {
			span := cfg.SamplesHigh - cfg.SamplesLow + 1
			n := cfg.SamplesLow + int(keyedUniform(seed, q, 2)*float64(span))
			if n > cfg.SamplesHigh {
				n = cfg.SamplesHigh
			}
			f.NumSamples[q] = n
		}
	}
}

// keyedUniform maps (seed, q, dim) to a uniform float64 in [0, 1) through
// the splitmix64 finalizer — a stateless counterpart of rand.Float64 whose
// draws are independent of generation order.
func keyedUniform(seed int64, q int, dim uint64) float64 {
	x := uint64(seed) + 0x9E3779B97F4A7C15*(uint64(q)*3+dim+1)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
