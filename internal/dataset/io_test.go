package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestDatasetWriteReadRoundTrip(t *testing.T) {
	s := small()
	var buf bytes.Buffer
	if err := s.Train.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != s.Train.N() || got.Channels() != 2 || got.Height() != 4 || got.Width() != 4 {
		t.Fatalf("geometry changed: %d %d %d %d", got.N(), got.Channels(), got.Height(), got.Width())
	}
	for i, l := range s.Train.Labels {
		if got.Labels[i] != l {
			t.Fatalf("label %d changed", i)
		}
	}
	// float32 wire precision bounds the pixel error.
	a, b := s.Train.X.Data(), got.X.Data()
	for i := range a {
		d := a[i] - b[i]
		if d > 1e-5 || d < -1e-5 {
			t.Fatalf("pixel %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	s := small()
	path := filepath.Join(t.TempDir(), "d.held")
	if err := s.Test.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != s.Test.N() {
		t.Fatalf("N = %d, want %d", got.N(), s.Test.N())
	}
}

func TestDatasetReadRejectsCorrupt(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty stream must error")
	}
	if _, err := Read(strings.NewReader("garbage garbage garbage!")); err == nil {
		t.Fatal("bad magic must error")
	}
	// Truncated pixels.
	s := small()
	var buf bytes.Buffer
	if err := s.Train.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream must error")
	}
}
