package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionDirichletValidCover(t *testing.T) {
	s := small()
	p := PartitionDirichlet(s.Train, 8, 4, 0.5, rand.New(rand.NewSource(1)))
	if err := p.Validate(s.Train.N()); err != nil {
		t.Fatal(err)
	}
	if p.TotalSamples() != s.Train.N() {
		t.Fatalf("assigned %d of %d", p.TotalSamples(), s.Train.N())
	}
}

func TestPartitionDirichletSkewGrowsWithSmallAlpha(t *testing.T) {
	s := GenerateSynth(SynthConfig{Classes: 10, C: 1, H: 4, W: 4, TrainN: 2000, TestN: 50, Noise: 0.5, Seed: 2})
	skew := func(alpha float64) float64 {
		p := PartitionDirichlet(s.Train, 10, 10, alpha, rand.New(rand.NewSource(3)))
		ud := UserDatasets(s.Train, p)
		return MeanDistinctLabels(ud, 10)
	}
	lo := skew(0.1)  // extreme skew → few labels per user
	hi := skew(10.0) // near IID → most labels per user
	if lo >= hi {
		t.Fatalf("alpha=0.1 gives %g distinct labels, alpha=10 gives %g; skew ordering wrong", lo, hi)
	}
	if hi < 8 {
		t.Fatalf("alpha=10 should be near IID, got %g distinct labels", hi)
	}
}

func TestPartitionDirichletNoEmptyUsers(t *testing.T) {
	s := small()
	// Extreme alpha concentrates everything; the repair pass must still
	// leave every user non-empty.
	p := PartitionDirichlet(s.Train, 12, 4, 0.05, rand.New(rand.NewSource(4)))
	for q := 0; q < 12; q++ {
		if p.SizeOf(q) == 0 {
			t.Fatalf("user %d empty", q)
		}
	}
	if err := p.Validate(s.Train.N()); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDirichletBadArgsPanic(t *testing.T) {
	s := small()
	for name, f := range map[string]func(){
		"zero users": func() { PartitionDirichlet(s.Train, 0, 4, 1, rand.New(rand.NewSource(1))) },
		"zero alpha": func() { PartitionDirichlet(s.Train, 2, 4, 0, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: any admissible (users, alpha) draw is a valid, complete cover.
func TestPartitionDirichletQuick(t *testing.T) {
	s := small()
	f := func(seed int64, usersRaw, alphaRaw uint8) bool {
		users := int(usersRaw)%15 + 1
		alpha := 0.1 + float64(alphaRaw)/32.0
		rng := rand.New(rand.NewSource(seed))
		p := PartitionDirichlet(s.Train, users, 4, alpha, rng)
		return p.Validate(s.Train.N()) == nil && p.TotalSamples() == s.Train.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []float64{0.3, 1.0, 2.5} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			g := gammaSample(rng, shape)
			if g < 0 {
				t.Fatalf("negative gamma sample %g", g)
			}
			sum += g
		}
		mean := sum / float64(n)
		// Gamma(shape, 1) has mean = shape.
		if math.Abs(mean-shape)/shape > 0.1 {
			t.Fatalf("shape %g: sample mean %g", shape, mean)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, alpha := range []float64{0.1, 1, 5} {
		v := dirichlet(rng, alpha, 7)
		s := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative proportion %g", x)
			}
			s += x
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("alpha %g: proportions sum to %g", alpha, s)
		}
	}
}
