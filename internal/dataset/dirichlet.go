package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// PartitionDirichlet assigns samples to users with per-class Dirichlet(α)
// proportions — the other standard federated Non-IID generator (Hsu et
// al., 2019), complementing the paper's sort-and-shard scheme. Small α
// (e.g. 0.1) gives extreme label skew; large α approaches IID.
//
// Every user is guaranteed at least one sample: after the proportional
// assignment, empty users steal one sample from the largest user.
func PartitionDirichlet(d *Dataset, users, numClasses int, alpha float64, rng *rand.Rand) *Partition {
	if users <= 0 {
		panic(fmt.Sprintf("dataset: need positive user count, got %d", users))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("dataset: Dirichlet alpha %g must be positive", alpha))
	}
	if d.N() < users {
		panic(fmt.Sprintf("dataset: %d samples cannot cover %d users", d.N(), users))
	}

	// Group sample indices by class, shuffled within class.
	byClass := make([][]int, numClasses)
	for i, l := range d.Labels {
		if l < 0 || l >= numClasses {
			panic(fmt.Sprintf("dataset: label %d outside [0,%d)", l, numClasses))
		}
		byClass[l] = append(byClass[l], i)
	}
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(a, b int) { idxs[a], idxs[b] = idxs[b], idxs[a] })
	}

	p := &Partition{UserIndices: make([][]int, users)}
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		props := dirichlet(rng, alpha, users)
		// Convert proportions to cumulative cut points over this class.
		off := 0
		for u := 0; u < users; u++ {
			take := int(props[u] * float64(len(idxs)))
			if u == users-1 {
				take = len(idxs) - off // remainder to the last user
			}
			if take > len(idxs)-off {
				take = len(idxs) - off
			}
			p.UserIndices[u] = append(p.UserIndices[u], idxs[off:off+take]...)
			off += take
		}
	}

	// Repair empty users by stealing from the largest.
	for u := range p.UserIndices {
		if len(p.UserIndices[u]) > 0 {
			continue
		}
		big := 0
		for v := range p.UserIndices {
			if len(p.UserIndices[v]) > len(p.UserIndices[big]) {
				big = v
			}
		}
		n := len(p.UserIndices[big])
		if n < 2 {
			panic("dataset: cannot repair empty user")
		}
		p.UserIndices[u] = append(p.UserIndices[u], p.UserIndices[big][n-1])
		p.UserIndices[big] = p.UserIndices[big][:n-1]
	}
	return p
}

// dirichlet draws a Dirichlet(α,…,α) sample of dimension k via normalized
// Gamma(α, 1) variates.
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Pathologically tiny alpha: fall back to a one-hot draw.
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang, with the Johnk
// boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
