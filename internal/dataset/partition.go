package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// Partition assigns every training sample index to exactly one user.
type Partition struct {
	// UserIndices[q] lists the training-set indices owned by user q.
	UserIndices [][]int
}

// Users returns the number of users in the partition.
func (p *Partition) Users() int { return len(p.UserIndices) }

// SizeOf returns |D_q| for user q.
func (p *Partition) SizeOf(q int) int { return len(p.UserIndices[q]) }

// TotalSamples returns the number of assigned samples across all users.
func (p *Partition) TotalSamples() int {
	n := 0
	for _, idx := range p.UserIndices {
		n += len(idx)
	}
	return n
}

// Validate checks that indices are within [0, n), that no index is assigned
// twice, and that every user owns at least one sample.
func (p *Partition) Validate(n int) error {
	seen := make([]bool, n)
	for q, idxs := range p.UserIndices {
		if len(idxs) == 0 {
			return fmt.Errorf("dataset: user %d owns no samples", q)
		}
		for _, i := range idxs {
			if i < 0 || i >= n {
				return fmt.Errorf("dataset: user %d holds index %d outside [0,%d)", q, i, n)
			}
			if seen[i] {
				return fmt.Errorf("dataset: index %d assigned to multiple users", i)
			}
			seen[i] = true
		}
	}
	return nil
}

// PartitionIID shuffles sample indices and deals them evenly across users —
// the paper's IID setting ("training samples are randomly shuffled and
// evenly assigned to users"). Remainder samples go to the first users.
func PartitionIID(d *Dataset, users int, rng *rand.Rand) *Partition {
	if users <= 0 {
		panic(fmt.Sprintf("dataset: need positive user count, got %d", users))
	}
	n := d.N()
	if n < users {
		panic(fmt.Sprintf("dataset: %d samples cannot cover %d users", n, users))
	}
	perm := rng.Perm(n)
	p := &Partition{UserIndices: make([][]int, users)}
	base, rem := n/users, n%users
	off := 0
	for q := 0; q < users; q++ {
		take := base
		if q < rem {
			take++
		}
		p.UserIndices[q] = append([]int(nil), perm[off:off+take]...)
		off += take
	}
	return p
}

// PartitionNonIID implements the paper's Non-IID setting: "training samples
// are sorted by labels and cut into `shards` pieces, and each
// `shardsPerUser` pieces are assigned a user" (400 shards, 4 per user for
// 100 users). Shards are dealt in a random order, so each user holds at
// most shardsPerUser distinct label regions.
func PartitionNonIID(d *Dataset, users, shards, shardsPerUser int, rng *rand.Rand) *Partition {
	if shards != users*shardsPerUser {
		panic(fmt.Sprintf("dataset: shards (%d) must equal users (%d) × shardsPerUser (%d)", shards, users, shardsPerUser))
	}
	n := d.N()
	if n < shards {
		panic(fmt.Sprintf("dataset: %d samples cannot fill %d shards", n, shards))
	}
	// Sort indices by label (stable on index for determinism).
	byLabel := make([]int, n)
	for i := range byLabel {
		byLabel[i] = i
	}
	sort.SliceStable(byLabel, func(a, b int) bool { return d.Labels[byLabel[a]] < d.Labels[byLabel[b]] })

	// Cut into contiguous shards.
	shardIdx := make([][]int, shards)
	base, rem := n/shards, n%shards
	off := 0
	for s := 0; s < shards; s++ {
		take := base
		if s < rem {
			take++
		}
		shardIdx[s] = byLabel[off : off+take]
		off += take
	}

	// Deal shards to users in random order.
	order := rng.Perm(shards)
	p := &Partition{UserIndices: make([][]int, users)}
	for q := 0; q < users; q++ {
		for s := 0; s < shardsPerUser; s++ {
			p.UserIndices[q] = append(p.UserIndices[q], shardIdx[order[q*shardsPerUser+s]]...)
		}
	}
	return p
}

// UserDatasets materializes one Dataset per user from a partition.
func UserDatasets(d *Dataset, p *Partition) []*Dataset {
	out := make([]*Dataset, p.Users())
	for q := range out {
		out[q] = d.Subset(p.UserIndices[q])
	}
	return out
}

// MeanDistinctLabels reports the average number of distinct labels per user,
// the statistic that separates IID from Non-IID partitions.
func MeanDistinctLabels(userData []*Dataset, numClasses int) float64 {
	if len(userData) == 0 {
		return 0
	}
	s := 0
	for _, d := range userData {
		s += d.DistinctLabels(numClasses)
	}
	return float64(s) / float64(len(userData))
}
