package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Synth {
	return GenerateSynth(SynthConfig{Classes: 4, C: 2, H: 4, W: 4, TrainN: 200, TestN: 80, Noise: 0.5, Seed: 1})
}

func TestGenerateSynthShapes(t *testing.T) {
	s := small()
	if s.Train.N() != 200 || s.Test.N() != 80 {
		t.Fatalf("split sizes = %d/%d", s.Train.N(), s.Test.N())
	}
	if s.Train.Channels() != 2 || s.Train.Height() != 4 || s.Train.Width() != 4 {
		t.Fatalf("geometry = %d,%d,%d", s.Train.Channels(), s.Train.Height(), s.Train.Width())
	}
	if s.Train.SampleDim() != 32 {
		t.Fatalf("SampleDim = %d", s.Train.SampleDim())
	}
}

func TestGenerateSynthBalancedLabels(t *testing.T) {
	s := small()
	h := s.Train.LabelHistogram(4)
	for k, c := range h {
		if c != 50 {
			t.Fatalf("class %d count = %d, want 50", k, c)
		}
	}
}

func TestGenerateSynthDeterministic(t *testing.T) {
	a := small()
	b := small()
	if !a.Train.X.Equal(b.Train.X) {
		t.Fatal("same seed must regenerate identical data")
	}
	c := GenerateSynth(SynthConfig{Classes: 4, C: 2, H: 4, W: 4, TrainN: 200, TestN: 80, Noise: 0.5, Seed: 2})
	if a.Train.X.Equal(c.Train.X) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateSynthDefaults(t *testing.T) {
	s := GenerateSynth(SynthConfig{Seed: 3})
	if s.Config.Classes != 10 || s.Config.C != 3 || s.Config.H != 8 || s.Config.W != 8 {
		t.Fatalf("defaults = %+v", s.Config)
	}
	if s.Train.N() != 4000 || s.Test.N() != 1000 {
		t.Fatalf("default sizes = %d/%d", s.Train.N(), s.Test.N())
	}
}

func TestGenerateSynthClassesSeparable(t *testing.T) {
	// With low noise, the nearest-prototype structure means same-class
	// samples are closer than cross-class samples on average.
	s := GenerateSynth(SynthConfig{Classes: 3, C: 1, H: 6, W: 6, TrainN: 300, TestN: 30, Noise: 0.2, Seed: 4})
	d := s.Train
	plane := d.SampleDim()
	centroid := make([][]float64, 3)
	count := make([]int, 3)
	for k := range centroid {
		centroid[k] = make([]float64, plane)
	}
	for i := 0; i < d.N(); i++ {
		k := d.Labels[i]
		row := d.X.Data()[i*plane : (i+1)*plane]
		for j, v := range row {
			centroid[k][j] += v
		}
		count[k]++
	}
	for k := range centroid {
		for j := range centroid[k] {
			centroid[k][j] /= float64(count[k])
		}
	}
	correct := 0
	for i := 0; i < d.N(); i++ {
		row := d.X.Data()[i*plane : (i+1)*plane]
		best, bestD := -1, math.Inf(1)
		for k := range centroid {
			s := 0.0
			for j, v := range row {
				diff := v - centroid[k][j]
				s += diff * diff
			}
			if s < bestD {
				best, bestD = k, s
			}
		}
		if best == d.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.N()); acc < 0.95 {
		t.Fatalf("nearest-centroid accuracy = %g, classes not separable", acc)
	}
}

func TestSubset(t *testing.T) {
	s := small()
	sub := s.Train.Subset([]int{0, 5, 10})
	if sub.N() != 3 {
		t.Fatalf("subset N = %d", sub.N())
	}
	if sub.Labels[1] != s.Train.Labels[5] {
		t.Fatal("subset labels misaligned")
	}
	// Mutating the subset must not touch the parent.
	sub.X.Data()[0] += 100
	if s.Train.X.Data()[0] == sub.X.Data()[0] {
		t.Fatal("Subset must copy data")
	}
}

func TestSubsetEmptyPanics(t *testing.T) {
	s := small()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty subset")
		}
	}()
	s.Train.Subset(nil)
}

func TestSubsetOutOfRangePanics(t *testing.T) {
	s := small()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	s.Train.Subset([]int{9999})
}

func TestFlatXSharesStorage(t *testing.T) {
	s := small()
	flat := s.Train.FlatX()
	if flat.Dim(0) != 200 || flat.Dim(1) != 32 {
		t.Fatalf("flat shape = %v", flat.Shape())
	}
	flat.Set(42, 0, 0)
	if s.Train.X.At(0, 0, 0, 0) != 42 {
		t.Fatal("FlatX must be a view")
	}
}

func TestPartitionIIDCoversAll(t *testing.T) {
	s := small()
	rng := rand.New(rand.NewSource(1))
	p := PartitionIID(s.Train, 7, rng)
	if p.Users() != 7 {
		t.Fatalf("Users = %d", p.Users())
	}
	if err := p.Validate(s.Train.N()); err != nil {
		t.Fatal(err)
	}
	if p.TotalSamples() != s.Train.N() {
		t.Fatalf("assigned %d of %d samples", p.TotalSamples(), s.Train.N())
	}
	// Sizes differ by at most one.
	minSz, maxSz := p.SizeOf(0), p.SizeOf(0)
	for q := 1; q < 7; q++ {
		if p.SizeOf(q) < minSz {
			minSz = p.SizeOf(q)
		}
		if p.SizeOf(q) > maxSz {
			maxSz = p.SizeOf(q)
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("IID split uneven: min %d max %d", minSz, maxSz)
	}
}

func TestPartitionIIDLabelMixing(t *testing.T) {
	s := small()
	p := PartitionIID(s.Train, 10, rand.New(rand.NewSource(2)))
	ud := UserDatasets(s.Train, p)
	if got := MeanDistinctLabels(ud, 4); got < 3.5 {
		t.Fatalf("IID users see %g distinct labels on average, want ≈4", got)
	}
}

func TestPartitionNonIIDShardStructure(t *testing.T) {
	s := small()
	p := PartitionNonIID(s.Train, 10, 20, 2, rand.New(rand.NewSource(3)))
	if err := p.Validate(s.Train.N()); err != nil {
		t.Fatal(err)
	}
	if p.TotalSamples() != s.Train.N() {
		t.Fatalf("assigned %d of %d samples", p.TotalSamples(), s.Train.N())
	}
	ud := UserDatasets(s.Train, p)
	// Each user holds 2 shards ⇒ at most ~3 labels (shards can straddle one
	// class boundary), and far fewer than the IID 4.
	mean := MeanDistinctLabels(ud, 4)
	if mean > 3.0 {
		t.Fatalf("Non-IID users see %g distinct labels on average, too mixed", mean)
	}
	for q, d := range ud {
		if d.DistinctLabels(4) > 2*2 {
			t.Fatalf("user %d sees %d labels, exceeds shard bound", q, d.DistinctLabels(4))
		}
	}
}

func TestPartitionNonIIDPaperScale(t *testing.T) {
	s := GenerateSynth(SynthConfig{TrainN: 4000, TestN: 100, Seed: 5})
	p := PartitionNonIID(s.Train, 100, 400, 4, rand.New(rand.NewSource(4)))
	if err := p.Validate(4000); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		if p.SizeOf(q) != 40 {
			t.Fatalf("user %d size = %d, want 40", q, p.SizeOf(q))
		}
	}
}

func TestPartitionNonIIDBadShardCountPanics(t *testing.T) {
	s := small()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when shards != users*shardsPerUser")
		}
	}()
	PartitionNonIID(s.Train, 10, 25, 2, rand.New(rand.NewSource(1)))
}

func TestPartitionValidateCatchesDuplicates(t *testing.T) {
	p := &Partition{UserIndices: [][]int{{0, 1}, {1, 2}}}
	if err := p.Validate(3); err == nil {
		t.Fatal("duplicate assignment must fail validation")
	}
	p2 := &Partition{UserIndices: [][]int{{0}, {}}}
	if err := p2.Validate(1); err == nil {
		t.Fatal("empty user must fail validation")
	}
	p3 := &Partition{UserIndices: [][]int{{5}}}
	if err := p3.Validate(3); err == nil {
		t.Fatal("out-of-range index must fail validation")
	}
}

// Property: both partitioners always produce valid, complete covers for any
// admissible user count.
func TestPartitionersValidQuick(t *testing.T) {
	s := small()
	f := func(seed int64, usersRaw uint8) bool {
		users := int(usersRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		p := PartitionIID(s.Train, users, rng)
		if p.Validate(s.Train.N()) != nil || p.TotalSamples() != s.Train.N() {
			return false
		}
		spu := 2
		p2 := PartitionNonIID(s.Train, users, users*spu, spu, rng)
		return p2.Validate(s.Train.N()) == nil && p2.TotalSamples() == s.Train.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUserDatasetsSizes(t *testing.T) {
	s := small()
	p := PartitionIID(s.Train, 4, rand.New(rand.NewSource(6)))
	ud := UserDatasets(s.Train, p)
	if len(ud) != 4 {
		t.Fatalf("UserDatasets len = %d", len(ud))
	}
	total := 0
	for _, d := range ud {
		total += d.N()
	}
	if total != s.Train.N() {
		t.Fatalf("user datasets hold %d samples, want %d", total, s.Train.N())
	}
}

func TestMeanDistinctLabelsEmpty(t *testing.T) {
	if MeanDistinctLabels(nil, 10) != 0 {
		t.Fatal("empty user list must give 0")
	}
}
