package dataset_test

import (
	"fmt"
	"math/rand"

	"helcfl/internal/dataset"
)

// The paper's Non-IID setting: sort by label, cut into Users×ShardsPerUser
// shards, deal ShardsPerUser to each user — so every user sees only a few
// labels.
func ExamplePartitionNonIID() {
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 10, TrainN: 4000, TestN: 100, Seed: 1,
	})
	part := dataset.PartitionNonIID(synth.Train, 100, 400, 4, rand.New(rand.NewSource(2)))
	users := dataset.UserDatasets(synth.Train, part)
	fmt.Printf("user 0 holds %d samples spanning %d of 10 labels\n",
		users[0].N(), users[0].DistinctLabels(10))
	fmt.Printf("fleet mean: %.1f labels/user\n", dataset.MeanDistinctLabels(users, 10))
	// Output:
	// user 0 holds 40 samples spanning 3 of 10 labels
	// fleet mean: 3.5 labels/user
}
