// Package dataset provides the synthetic image-classification workload and
// the federated data partitioners used throughout the reproduction.
//
// The paper trains SqueezeNet on CIFAR-10. CIFAR-10 is unavailable offline,
// so SynthCIFAR substitutes a 10-class synthetic image distribution with the
// same roles: a shared test set for global accuracy, an IID partition
// (shuffle + even split), and the McMahan-style Non-IID partition (sort by
// label, cut into 400 shards, deal 4 shards per user). What the paper's
// selection experiments measure — which users' label distributions enter
// training — is preserved exactly.
package dataset

import (
	"fmt"

	"helcfl/internal/tensor"
)

// Dataset is a labelled image set with images stored as one (N, C, H, W)
// tensor.
type Dataset struct {
	X      *tensor.Tensor // (N, C, H, W)
	Labels []int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Labels) }

// Channels, Height, Width return the image geometry.
func (d *Dataset) Channels() int { return d.X.Dim(1) }

// Height returns the image height.
func (d *Dataset) Height() int { return d.X.Dim(2) }

// Width returns the image width.
func (d *Dataset) Width() int { return d.X.Dim(3) }

// SampleDim returns the flattened per-sample feature count.
func (d *Dataset) SampleDim() int { return d.Channels() * d.Height() * d.Width() }

// Subset returns a new dataset holding copies of the samples at the given
// indices, in order. The index list must be non-empty.
func (d *Dataset) Subset(indices []int) *Dataset {
	if len(indices) == 0 {
		panic("dataset: Subset of empty index list")
	}
	c, h, w := d.Channels(), d.Height(), d.Width()
	plane := c * h * w
	out := &Dataset{X: tensor.New(len(indices), c, h, w), Labels: make([]int, len(indices))}
	for i, idx := range indices {
		if idx < 0 || idx >= d.N() {
			panic(fmt.Sprintf("dataset: subset index %d outside [0,%d)", idx, d.N()))
		}
		copy(out.X.Data()[i*plane:(i+1)*plane], d.X.Data()[idx*plane:(idx+1)*plane])
		out.Labels[i] = d.Labels[idx]
	}
	return out
}

// FlatX returns the images viewed as a (N, C·H·W) matrix for dense models.
// The view shares storage with X.
func (d *Dataset) FlatX() *tensor.Tensor {
	return d.X.Reshape(d.N(), d.SampleDim())
}

// newTensor4 wraps a flat pixel slice as the (N, C, H, W) image tensor.
func newTensor4(data []float64, n, c, h, w int) *tensor.Tensor {
	return tensor.FromSlice(data, n, c, h, w)
}

// LabelHistogram returns counts per class over numClasses classes.
func (d *Dataset) LabelHistogram(numClasses int) []int {
	h := make([]int, numClasses)
	for _, l := range d.Labels {
		if l < 0 || l >= numClasses {
			panic(fmt.Sprintf("dataset: label %d outside [0,%d)", l, numClasses))
		}
		h[l]++
	}
	return h
}

// DistinctLabels returns the number of classes that appear at least once.
func (d *Dataset) DistinctLabels(numClasses int) int {
	n := 0
	for _, c := range d.LabelHistogram(numClasses) {
		if c > 0 {
			n++
		}
	}
	return n
}
