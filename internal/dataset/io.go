package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary dataset serialization, so deployments can ship identical data to
// nodes instead of relying on shared generation seeds. Wire format:
// magic, geometry header, labels as uint32, pixels as float32.

const datasetMagic = uint32(0x48454C44) // "HELD"

// Write serializes the dataset.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{
		datasetMagic,
		uint32(d.N()),
		uint32(d.Channels()),
		uint32(d.Height()),
		uint32(d.Width()),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
	}
	for _, l := range d.Labels {
		if err := binary.Write(bw, binary.LittleEndian, uint32(l)); err != nil {
			return fmt.Errorf("dataset: write labels: %w", err)
		}
	}
	buf := make([]byte, 4)
	for _, v := range d.X.Data() {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(v)))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dataset: write pixels: %w", err)
		}
	}
	return bw.Flush()
}

// Read deserializes a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("dataset: read header: %w", err)
		}
	}
	if hdr[0] != datasetMagic {
		return nil, fmt.Errorf("dataset: bad magic %#x", hdr[0])
	}
	n, c, h, w := int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4])
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		return nil, fmt.Errorf("dataset: invalid geometry %dx%dx%dx%d", n, c, h, w)
	}
	const maxElems = 1 << 28 // 1 GiB of float32 pixels
	if int64(n)*int64(c)*int64(h)*int64(w) > maxElems {
		return nil, fmt.Errorf("dataset: geometry too large")
	}
	d := &Dataset{Labels: make([]int, n)}
	for i := range d.Labels {
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("dataset: read labels: %w", err)
		}
		d.Labels[i] = int(l)
	}
	x := make([]float64, n*c*h*w)
	buf := make([]byte, 4)
	for i := range x {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: read pixels: %w", err)
		}
		x[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf)))
	}
	d.X = newTensor4(x, n, c, h, w)
	return d, nil
}

// SaveFile writes the dataset to a file.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.Write(f)
}

// LoadFile reads a dataset file.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
