package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"helcfl/internal/tensor"
)

// SynthConfig describes a SynthCIFAR generation run.
type SynthConfig struct {
	// Classes is the number of categories (CIFAR-10 analogue: 10).
	Classes int
	// C, H, W give the image geometry (default 3×8×8).
	C, H, W int
	// TrainN and TestN are sample counts for the two splits.
	TrainN, TestN int
	// Noise is the per-pixel Gaussian noise std added to class prototypes.
	// Larger values make the task harder; 0.8–1.2 gives CIFAR-like
	// non-trivial accuracy trajectories for small models.
	Noise float64
	// Seed controls prototype and sample generation.
	Seed int64
}

// withDefaults fills zero fields with the standard experiment values.
func (c SynthConfig) withDefaults() SynthConfig {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.C == 0 {
		c.C = 3
	}
	if c.H == 0 {
		c.H = 8
	}
	if c.W == 0 {
		c.W = 8
	}
	if c.TrainN == 0 {
		c.TrainN = 4000
	}
	if c.TestN == 0 {
		c.TestN = 1000
	}
	if c.Noise == 0 {
		c.Noise = 1.0
	}
	return c
}

// Synth holds a generated train/test pair along with the generating config.
type Synth struct {
	Config SynthConfig
	Train  *Dataset
	Test   *Dataset
}

// GenerateSynth builds a SynthCIFAR dataset. Each class is a smooth spatial
// prototype (a per-channel mixture of two 2-D sinusoids with class-specific
// frequencies and phases); each sample is its class prototype plus white
// Gaussian noise. Class labels are balanced in both splits up to rounding.
func GenerateSynth(cfg SynthConfig) *Synth {
	cfg = cfg.withDefaults()
	if cfg.Classes < 2 {
		panic(fmt.Sprintf("dataset: need ≥2 classes, got %d", cfg.Classes))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	protos := make([]*tensor.Tensor, cfg.Classes)
	for k := range protos {
		protos[k] = classPrototype(cfg, rng)
	}

	gen := func(n int) *Dataset {
		d := &Dataset{X: tensor.New(n, cfg.C, cfg.H, cfg.W), Labels: make([]int, n)}
		plane := cfg.C * cfg.H * cfg.W
		for i := 0; i < n; i++ {
			k := i % cfg.Classes // balanced labels before shuffling
			d.Labels[i] = k
			dst := d.X.Data()[i*plane : (i+1)*plane]
			src := protos[k].Data()
			for j := range dst {
				dst[j] = src[j] + cfg.Noise*rng.NormFloat64()
			}
		}
		// Shuffle so the raw order carries no label signal; the Non-IID
		// partitioner re-sorts explicitly, as in McMahan et al.
		shuffleDataset(d, rng)
		return d
	}

	return &Synth{Config: cfg, Train: gen(cfg.TrainN), Test: gen(cfg.TestN)}
}

// classPrototype draws one smooth class archetype.
func classPrototype(cfg SynthConfig, rng *rand.Rand) *tensor.Tensor {
	p := tensor.New(cfg.C, cfg.H, cfg.W)
	for c := 0; c < cfg.C; c++ {
		fx1 := 0.5 + 2.5*rng.Float64()
		fy1 := 0.5 + 2.5*rng.Float64()
		fx2 := 0.5 + 2.5*rng.Float64()
		fy2 := 0.5 + 2.5*rng.Float64()
		px, py := 2*math.Pi*rng.Float64(), 2*math.Pi*rng.Float64()
		a := 0.6 + 0.8*rng.Float64()
		for i := 0; i < cfg.H; i++ {
			for j := 0; j < cfg.W; j++ {
				u := float64(i) / float64(cfg.H)
				v := float64(j) / float64(cfg.W)
				val := a * (math.Sin(2*math.Pi*fx1*u+px)*math.Cos(2*math.Pi*fy1*v+py) +
					0.5*math.Sin(2*math.Pi*(fx2*u+fy2*v)))
				p.Set(val, c, i, j)
			}
		}
	}
	return p
}

// shuffleDataset permutes samples and labels together.
func shuffleDataset(d *Dataset, rng *rand.Rand) {
	n := d.N()
	plane := d.SampleDim()
	tmp := make([]float64, plane)
	rng.Shuffle(n, func(i, j int) {
		xi := d.X.Data()[i*plane : (i+1)*plane]
		xj := d.X.Data()[j*plane : (j+1)*plane]
		copy(tmp, xi)
		copy(xi, xj)
		copy(xj, tmp)
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
}
