package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"helcfl/internal/fl"
)

func sampleRecords() []fl.RoundRecord {
	return []fl.RoundRecord{
		{
			Round: 0, Selected: []int{1, 3}, Delay: 2.5, Energy: 10,
			ComputeEnergy: 8, UploadEnergy: 2, Slack: 0.5,
			CumTime: 2.5, CumEnergy: 10, TrainLoss: 1.2,
			Evaluated: true, TestLoss: 1.1, TestAccuracy: 0.4,
		},
		{
			Round: 1, Selected: []int{0, 2}, Delay: 3.0, Energy: 12,
			ComputeEnergy: 9, UploadEnergy: 3, Slack: 0.2,
			CumTime: 5.5, CumEnergy: 22, TrainLoss: 0.9,
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "HELCFL", sampleRecords()); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Scheme != "HELCFL" || r.Round != 0 || r.DelaySec != 2.5 || !r.Evaluated || r.TestAccuracy != 0.4 {
		t.Fatalf("record = %+v", r)
	}
	if len(r.Selected) != 2 || r.Selected[1] != 3 {
		t.Fatalf("selected = %v", r.Selected)
	}
	if r.SchemaVersion != SchemaVersion {
		t.Fatalf("version = %d", r.SchemaVersion)
	}
}

func TestWriteProducesOneLinePerRound(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "x", sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("not a JSON line: %s", l)
		}
	}
}

func TestReadSkipsBlankLinesAndRejectsGarbage(t *testing.T) {
	recs, err := Read(strings.NewReader("\n{\"scheme\":\"a\",\"round\":0,\"delay_sec\":1,\"energy_j\":1,\"v\":1}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestReadRejectsFutureSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"scheme":"a","round":0,"v":99}` + "\n")); err == nil {
		t.Fatal("future schema must be rejected")
	}
}

func TestValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "HELCFL", sampleRecords()); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(recs); err != nil {
		t.Fatal(err)
	}
	// Out-of-order rounds.
	bad := []Record{recs[1], recs[0]}
	bad[0].Scheme, bad[1].Scheme = "x", "x"
	if err := Validate(bad); err == nil {
		t.Fatal("out-of-order rounds must fail")
	}
	// Non-positive delay.
	bad2 := []Record{recs[0]}
	bad2[0].DelaySec = 0
	if err := Validate(bad2); err == nil {
		t.Fatal("zero delay must fail")
	}
	// Decreasing cumulative energy.
	bad3 := []Record{recs[0], recs[1]}
	bad3[1].CumEnergyJ = 1
	if err := Validate(bad3); err == nil {
		t.Fatal("decreasing cumulative energy must fail")
	}
}

func TestValidateRejectsNonFiniteAndNegativeSlack(t *testing.T) {
	base := func() Record {
		return Record{
			Scheme: "a", Round: 0, DelaySec: 1, EnergyJ: 2, ComputeJ: 1.5,
			UploadJ: 0.5, SlackSec: 0.1, CumTimeSec: 1, CumEnergyJ: 2,
			TrainLoss: 0.7, SchemaVersion: SchemaVersion,
		}
	}
	if err := Validate([]Record{base()}); err != nil {
		t.Fatalf("baseline record invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"NaN delay", func(r *Record) { r.DelaySec = math.NaN() }},
		{"Inf energy", func(r *Record) { r.EnergyJ = math.Inf(1) }},
		{"NaN train loss", func(r *Record) { r.TrainLoss = math.NaN() }},
		{"-Inf cum time", func(r *Record) { r.CumTimeSec = math.Inf(-1) }},
		{"NaN test accuracy", func(r *Record) { r.TestAccuracy = math.NaN() }},
		{"negative slack", func(r *Record) { r.SlackSec = -0.01 }},
	}
	for _, tc := range cases {
		r := base()
		tc.mutate(&r)
		if err := Validate([]Record{r}); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, r)
		}
	}
}

func TestValidateResetsCumulativeAtSchemeBoundary(t *testing.T) {
	// Two schemes written back-to-back into one artifact: the second starts
	// its own round numbering and cumulative totals from scratch, which must
	// not trip the monotonicity checks.
	var buf bytes.Buffer
	if err := Write(&buf, "HELCFL", sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, "ClassicFL", sampleRecords()); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	// Cumulative time drops from 5.5 (HELCFL round 1) to 2.5 (ClassicFL
	// round 0) across the boundary; round numbering restarts at 0.
	if err := Validate(recs); err != nil {
		t.Fatalf("scheme boundary tripped validation: %v", err)
	}
	// The same drop WITHIN one scheme must still fail.
	same := make([]Record, len(recs))
	copy(same, recs)
	for i := range same {
		same[i].Scheme = "one"
		same[i].Round = i // keep rounds ordered so only cum fields trip
	}
	if err := Validate(same); err == nil {
		t.Fatal("cumulative drop within one scheme must fail")
	}
}

func TestRoundTripFromEngine(t *testing.T) {
	// End-to-end: write a real engine run's records and validate the trace.
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := Write(&buf, "ClassicFL", recs); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(parsed); err != nil {
		t.Fatal(err)
	}
	if parsed[1].CumEnergyJ != 22 {
		t.Fatalf("cumulative energy = %g", parsed[1].CumEnergyJ)
	}
}
