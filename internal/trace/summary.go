package trace

import (
	"fmt"
	"sort"

	"helcfl/internal/report"
	"helcfl/internal/stats"
)

// Summary aggregates one scheme's records from a trace.
type Summary struct {
	Scheme       string
	Rounds       int
	TotalTime    float64
	TotalEnergy  float64
	ComputeShare float64 // fraction of energy spent computing
	Delay        stats.Summary
	Slack        stats.Summary
	BestAccuracy float64
	FinalLoss    float64
	LostUploads  int
}

// Summarize groups records by scheme and aggregates each group. Schemes
// are returned in first-appearance order.
func Summarize(recs []Record) []Summary {
	order := []string{}
	byScheme := map[string][]Record{}
	for _, r := range recs {
		if _, ok := byScheme[r.Scheme]; !ok {
			order = append(order, r.Scheme)
		}
		byScheme[r.Scheme] = append(byScheme[r.Scheme], r)
	}
	out := make([]Summary, 0, len(order))
	for _, scheme := range order {
		rs := byScheme[scheme]
		s := Summary{Scheme: scheme, Rounds: len(rs)}
		delays := make([]float64, len(rs))
		slacks := make([]float64, len(rs))
		var compute float64
		for i, r := range rs {
			delays[i] = r.DelaySec
			slacks[i] = r.SlackSec
			s.TotalTime += r.DelaySec
			s.TotalEnergy += r.EnergyJ
			compute += r.ComputeJ
			if r.Evaluated && r.TestAccuracy > s.BestAccuracy {
				s.BestAccuracy = r.TestAccuracy
			}
			s.FinalLoss = r.TrainLoss
		}
		if s.TotalEnergy > 0 {
			s.ComputeShare = compute / s.TotalEnergy
		}
		s.Delay = stats.Summarize(delays)
		s.Slack = stats.Summarize(slacks)
		out = append(out, s)
	}
	return out
}

// RenderSummaries produces a comparison table over per-scheme summaries.
func RenderSummaries(sums []Summary) *report.Table {
	tb := report.NewTable("Trace summary",
		"scheme", "rounds", "total delay", "total energy (J)", "compute share",
		"round delay (mean ± std)", "best accuracy")
	for _, s := range sums {
		tb.AddRow(
			s.Scheme,
			fmt.Sprintf("%d", s.Rounds),
			fmt.Sprintf("%.1fmin", s.TotalTime/60),
			fmt.Sprintf("%.1f", s.TotalEnergy),
			fmt.Sprintf("%.0f%%", s.ComputeShare*100),
			fmt.Sprintf("%.2fs ± %.2f", s.Delay.Mean, s.Delay.Std),
			fmt.Sprintf("%.2f%%", s.BestAccuracy*100),
		)
	}
	return tb
}

// AccuracyChart renders accuracy-vs-round for every scheme in the trace.
func AccuracyChart(recs []Record) *report.LineChart {
	chart := report.NewLineChart("Trace: test accuracy vs round", "round", "accuracy")
	order := []string{}
	pts := map[string][][2]float64{}
	for _, r := range recs {
		if !r.Evaluated {
			continue
		}
		if _, ok := pts[r.Scheme]; !ok {
			order = append(order, r.Scheme)
		}
		pts[r.Scheme] = append(pts[r.Scheme], [2]float64{float64(r.Round), r.TestAccuracy})
	}
	sort.Strings(order)
	for _, scheme := range order {
		ps := pts[scheme]
		xs := make([]float64, len(ps))
		ys := make([]float64, len(ps))
		for i, p := range ps {
			xs[i], ys[i] = p[0], p[1]
		}
		chart.Add(report.Series{Name: scheme, X: xs, Y: ys})
	}
	return chart
}
