// Package trace serializes per-round training telemetry as JSON Lines, the
// artifact format the CLI emits for external plotting and regression
// tracking, with a reader that reconstructs round records for analysis.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"helcfl/internal/fl"
)

// Record is the JSONL schema of one training round. It flattens
// fl.RoundRecord into stable, lower-case field names.
type Record struct {
	Scheme        string  `json:"scheme"`
	Round         int     `json:"round"`
	Selected      []int   `json:"selected"`
	DelaySec      float64 `json:"delay_sec"`
	EnergyJ       float64 `json:"energy_j"`
	ComputeJ      float64 `json:"compute_j"`
	UploadJ       float64 `json:"upload_j"`
	SlackSec      float64 `json:"slack_sec"`
	CumTimeSec    float64 `json:"cum_time_sec"`
	CumEnergyJ    float64 `json:"cum_energy_j"`
	TrainLoss     float64 `json:"train_loss"`
	Evaluated     bool    `json:"evaluated"`
	TestLoss      float64 `json:"test_loss,omitempty"`
	TestAccuracy  float64 `json:"test_accuracy,omitempty"`
	SchemaVersion int     `json:"v"`
}

// SchemaVersion is bumped on breaking changes to Record.
const SchemaVersion = 1

// FromRoundRecord converts an engine record.
func FromRoundRecord(scheme string, r fl.RoundRecord) Record {
	return Record{
		Scheme:        scheme,
		Round:         r.Round,
		Selected:      r.Selected,
		DelaySec:      r.Delay,
		EnergyJ:       r.Energy,
		ComputeJ:      r.ComputeEnergy,
		UploadJ:       r.UploadEnergy,
		SlackSec:      r.Slack,
		CumTimeSec:    r.CumTime,
		CumEnergyJ:    r.CumEnergy,
		TrainLoss:     r.TrainLoss,
		Evaluated:     r.Evaluated,
		TestLoss:      r.TestLoss,
		TestAccuracy:  r.TestAccuracy,
		SchemaVersion: SchemaVersion,
	}
}

// Write emits one JSONL line per record.
func Write(w io.Writer, scheme string, recs []fl.RoundRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(FromRoundRecord(scheme, r)); err != nil {
			return fmt.Errorf("trace: encode round %d: %w", r.Round, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL stream back into records. Unknown fields are
// ignored; a version above SchemaVersion is rejected.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.SchemaVersion > SchemaVersion {
			return nil, fmt.Errorf("trace: line %d: schema v%d newer than supported v%d", line, rec.SchemaVersion, SchemaVersion)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

// Validate checks structural invariants of a trace: rounds in order,
// cumulative fields non-decreasing (resetting at scheme boundaries, since a
// multi-scheme artifact concatenates independent runs), costs positive, no
// negative slack, and every numeric field finite.
func Validate(recs []Record) error {
	prevTime, prevEnergy := 0.0, 0.0
	for i, r := range recs {
		if i > 0 && recs[i-1].Scheme == r.Scheme && r.Round <= recs[i-1].Round {
			return fmt.Errorf("trace: round %d out of order at line %d", r.Round, i+1)
		}
		for _, f := range [...]struct {
			name string
			v    float64
		}{
			{"delay_sec", r.DelaySec}, {"energy_j", r.EnergyJ},
			{"compute_j", r.ComputeJ}, {"upload_j", r.UploadJ},
			{"slack_sec", r.SlackSec}, {"cum_time_sec", r.CumTimeSec},
			{"cum_energy_j", r.CumEnergyJ}, {"train_loss", r.TrainLoss},
			{"test_loss", r.TestLoss}, {"test_accuracy", r.TestAccuracy},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
				return fmt.Errorf("trace: round %d: %s is %g", r.Round, f.name, f.v)
			}
		}
		if r.DelaySec <= 0 || r.EnergyJ <= 0 {
			return fmt.Errorf("trace: round %d: non-positive costs", r.Round)
		}
		if r.SlackSec < 0 {
			return fmt.Errorf("trace: round %d: negative slack %g", r.Round, r.SlackSec)
		}
		if i > 0 && recs[i-1].Scheme == r.Scheme {
			if r.CumTimeSec < prevTime || r.CumEnergyJ < prevEnergy {
				return fmt.Errorf("trace: round %d: cumulative fields decreased", r.Round)
			}
		}
		prevTime, prevEnergy = r.CumTimeSec, r.CumEnergyJ
	}
	return nil
}
