package trace

import (
	"strings"
	"testing"
)

func summaryRecords() []Record {
	return []Record{
		{Scheme: "HELCFL", Round: 0, DelaySec: 2, EnergyJ: 10, ComputeJ: 8, SlackSec: 1,
			CumTimeSec: 2, CumEnergyJ: 10, TrainLoss: 2.0, Evaluated: true, TestAccuracy: 0.4, SchemaVersion: 1},
		{Scheme: "HELCFL", Round: 1, DelaySec: 4, EnergyJ: 12, ComputeJ: 9, SlackSec: 3,
			CumTimeSec: 6, CumEnergyJ: 22, TrainLoss: 1.5, Evaluated: true, TestAccuracy: 0.6, SchemaVersion: 1},
		{Scheme: "ClassicFL", Round: 0, DelaySec: 5, EnergyJ: 20, ComputeJ: 15, SlackSec: 2,
			CumTimeSec: 5, CumEnergyJ: 20, TrainLoss: 2.1, Evaluated: true, TestAccuracy: 0.35, SchemaVersion: 1},
	}
}

func TestSummarizeGroupsByScheme(t *testing.T) {
	sums := Summarize(summaryRecords())
	if len(sums) != 2 {
		t.Fatalf("schemes = %d", len(sums))
	}
	h := sums[0]
	if h.Scheme != "HELCFL" || h.Rounds != 2 {
		t.Fatalf("first summary = %+v", h)
	}
	if h.TotalTime != 6 || h.TotalEnergy != 22 {
		t.Fatalf("totals = %g/%g", h.TotalTime, h.TotalEnergy)
	}
	if h.BestAccuracy != 0.6 {
		t.Fatalf("best accuracy = %g", h.BestAccuracy)
	}
	wantShare := 17.0 / 22.0
	if diff := h.ComputeShare - wantShare; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("compute share = %g, want %g", h.ComputeShare, wantShare)
	}
	if h.Delay.Mean != 3 {
		t.Fatalf("delay mean = %g", h.Delay.Mean)
	}
	if h.FinalLoss != 1.5 {
		t.Fatalf("final loss = %g", h.FinalLoss)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); len(got) != 0 {
		t.Fatalf("empty summarize = %v", got)
	}
}

func TestRenderSummaries(t *testing.T) {
	out := RenderSummaries(Summarize(summaryRecords())).String()
	if !strings.Contains(out, "HELCFL") || !strings.Contains(out, "ClassicFL") {
		t.Fatalf("render missing schemes:\n%s", out)
	}
	if !strings.Contains(out, "compute share") {
		t.Fatalf("render missing column:\n%s", out)
	}
}

func TestAccuracyChart(t *testing.T) {
	chart := AccuracyChart(summaryRecords())
	out := chart.String()
	if !strings.Contains(out, "HELCFL") || !strings.Contains(out, "accuracy") {
		t.Fatalf("chart missing content:\n%s", out)
	}
	// Unevaluated rounds are skipped without crashing.
	recs := summaryRecords()
	recs[0].Evaluated = false
	if AccuracyChart(recs).String() == "" {
		t.Fatal("chart must render with partial evaluations")
	}
}
