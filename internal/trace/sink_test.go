package trace

import (
	"bytes"
	"testing"

	"helcfl/internal/obs"
)

func TestSinkStreamsRoundsAsRecords(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.OnRunStart(obs.RunStartEvent{Scheme: "HELCFL", Users: 10, MaxRounds: 2})
	s.OnRoundEnd(obs.RoundEndEvent{
		Round: 0, Selected: []int{1, 3}, DelaySec: 2.5, EnergyJ: 10,
		ComputeJ: 8, UploadJ: 2, SlackSec: 0.5, CumTimeSec: 2.5,
		CumEnergyJ: 10, TrainLoss: 1.2, Evaluated: true, TestLoss: 1.1,
		TestAccuracy: 0.4,
	})
	s.OnRoundEnd(obs.RoundEndEvent{
		Round: 1, Selected: []int{0}, DelaySec: 3, EnergyJ: 12,
		ComputeJ: 9, UploadJ: 3, SlackSec: 0.2, CumTimeSec: 5.5,
		CumEnergyJ: 22, TrainLoss: 0.9,
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Scheme != "HELCFL" || r.DelaySec != 2.5 || !r.Evaluated || r.TestAccuracy != 0.4 {
		t.Fatalf("record = %+v", r)
	}
	if r.SchemaVersion != SchemaVersion {
		t.Fatalf("version = %d", r.SchemaVersion)
	}
	if recs[1].Round != 1 || recs[1].Evaluated {
		t.Fatalf("record = %+v", recs[1])
	}
}

// TestSinkMatchesPostHocWrite pins the streaming path to the batch path:
// both must produce byte-identical artifacts for the same run.
func TestSinkMatchesPostHocWrite(t *testing.T) {
	engineRecs := sampleRecords()
	var batch bytes.Buffer
	if err := Write(&batch, "HELCFL", engineRecs); err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	s := NewSink(&stream)
	s.OnRunStart(obs.RunStartEvent{Scheme: "HELCFL"})
	for _, r := range engineRecs {
		s.OnRoundEnd(obs.RoundEndEvent{
			Round: r.Round, Selected: r.Selected, DelaySec: r.Delay,
			EnergyJ: r.Energy, ComputeJ: r.ComputeEnergy, UploadJ: r.UploadEnergy,
			SlackSec: r.Slack, CumTimeSec: r.CumTime, CumEnergyJ: r.CumEnergy,
			TrainLoss: r.TrainLoss, Evaluated: r.Evaluated, TestLoss: r.TestLoss,
			TestAccuracy: r.TestAccuracy,
		})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Fatalf("streaming and batch artifacts diverge:\nbatch:  %s\nstream: %s", batch.Bytes(), stream.Bytes())
	}
}
