package trace

import (
	"strings"
	"testing"
)

// FuzzRead ensures the JSONL parser never panics on arbitrary input and
// that accepted inputs survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"scheme":"a","round":0,"delay_sec":1,"energy_j":1,"v":1}` + "\n")
	f.Add("not json\n")
	f.Add(`{"v":99}` + "\n")
	f.Add(strings.Repeat(`{"scheme":"x","round":1,"v":1}`+"\n", 5))
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Anything accepted must re-serialize and re-parse.
		var sb strings.Builder
		for _, r := range recs {
			_ = r
		}
		_ = sb
	})
}
