package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/sim"
	"helcfl/internal/trace"
	"helcfl/internal/wireless"
)

// Satellite: trace.Sink and obs.MultiSink under concurrent writers. Several
// fl.Run campaigns execute in parallel, each fanning its event stream out to
// a private streaming trace, a private ordering recorder, and a MetricsSink
// bound to one registry shared by every run — the deployment shape of a
// multi-campaign host process. -race guards the registry; the assertions pin
// per-round event ordering and trace-line monotonicity.

// orderRecorder flattens the event stream into (kind, round) steps.
type orderRecorder struct {
	obs.NopSink
	steps []orderStep
}

type orderStep struct {
	kind  string
	round int
}

func (r *orderRecorder) OnRoundStart(ev obs.RoundStartEvent) {
	r.steps = append(r.steps, orderStep{"start", ev.Round})
}
func (r *orderRecorder) OnSelection(ev obs.SelectionEvent) {
	r.steps = append(r.steps, orderStep{"selection", ev.Round})
}
func (r *orderRecorder) OnFrequency(ev obs.FrequencyEvent) {
	r.steps = append(r.steps, orderStep{"frequency", ev.Round})
}
func (r *orderRecorder) OnLocalUpdate(ev obs.LocalUpdateEvent) {
	r.steps = append(r.steps, orderStep{"local", ev.Round})
}
func (r *orderRecorder) OnUpload(ev obs.UploadEvent) {
	r.steps = append(r.steps, orderStep{"upload", ev.Round})
}
func (r *orderRecorder) OnAggregate(ev obs.AggregateEvent) {
	r.steps = append(r.steps, orderStep{"aggregate", ev.Round})
}
func (r *orderRecorder) OnRoundEnd(ev obs.RoundEndEvent) {
	r.steps = append(r.steps, orderStep{"end", ev.Round})
}

// phaseRank is the required within-round ordering of event kinds.
var phaseRank = map[string]int{
	"start": 0, "selection": 1, "frequency": 2,
	"local": 3, "upload": 3, // spans interleave freely with each other
	"aggregate": 4, "end": 5,
}

// checkMonotonic asserts rounds never regress and, within one round, phases
// never run backwards.
func checkMonotonic(t *testing.T, steps []orderStep) {
	t.Helper()
	round, rank := -1, 0
	for i, s := range steps {
		switch {
		case s.round < round:
			t.Fatalf("step %d: round regressed %d → %d (%q)", i, round, s.round, s.kind)
		case s.round > round:
			if s.kind != "start" {
				t.Fatalf("step %d: round %d opened with %q, want start", i, s.round, s.kind)
			}
			round, rank = s.round, 0
		default:
			if r := phaseRank[s.kind]; r < rank {
				t.Fatalf("step %d: round %d phase ran backwards to %q (rank %d after %d)",
					i, s.round, s.kind, r, rank)
			} else {
				rank = r
			}
		}
	}
	if round < 0 {
		t.Fatal("no events recorded")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// smallRun executes one deterministic campaign with the given sink.
func smallRun(seed int64, sink obs.EventSink) error {
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 3, C: 1, H: 4, W: 4, TrainN: 90, TestN: 45, Noise: 0.6, Seed: seed,
	})
	users := 3
	part := dataset.PartitionIID(synth.Train, users, newRand(seed))
	ud := dataset.UserDatasets(synth.Train, part)
	cfg := device.DefaultCatalogConfig()
	cfg.Q = users
	devs := device.NewCatalog(cfg, newRand(seed+1))
	for q, d := range devs {
		d.NumSamples = ud[q].N()
	}
	planner := &fl.Composed{
		Label:   "all",
		Devices: devs,
		Select: func(int) []int {
			sel := make([]int, users)
			for i := range sel {
				sel[i] = i
			}
			return sel
		},
		Frequencies: sim.MaxFrequencies,
	}
	_, err := fl.Run(fl.Config{
		Spec:       nn.ModelSpec{Kind: "logistic", InC: 1, H: 4, W: 4, Classes: 3},
		Devices:    devs,
		Channel:    wireless.DefaultChannel(),
		UserData:   ud,
		Test:       synth.Test,
		Planner:    planner,
		LR:         0.3,
		LocalSteps: 1,
		MaxRounds:  6,
		EvalEvery:  2,
		Sink:       sink,
		Seed:       seed,
	})
	return err
}

func TestTraceAndMultiSinkUnderParallelRuns(t *testing.T) {
	const runs = 8
	shared := obs.NewRegistry()

	type runOut struct {
		buf *bytes.Buffer
		ts  *trace.Sink
		rec *orderRecorder
		err error
	}
	outs := make([]runOut, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		buf := &bytes.Buffer{}
		outs[i] = runOut{buf: buf, ts: trace.NewSink(buf), rec: &orderRecorder{}}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := &outs[i]
			sink := obs.Multi(o.ts, o.rec, obs.NewMetricsSink(shared))
			o.err = smallRun(int64(100+i), sink)
		}(i)
	}
	wg.Wait()

	totalRounds := 0
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			t.Fatalf("run %d: %v", i, o.err)
		}
		if err := o.ts.Flush(); err != nil {
			t.Fatalf("run %d: trace flush: %v", i, err)
		}
		checkMonotonic(t, o.rec.steps)

		// The streamed trace is valid JSONL with strictly ascending rounds.
		sc := bufio.NewScanner(bytes.NewReader(o.buf.Bytes()))
		prev := -1
		lines := 0
		for sc.Scan() {
			var rec trace.Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("run %d line %d: %v", i, lines, err)
			}
			if rec.Round <= prev {
				t.Fatalf("run %d: trace round %d after %d", i, rec.Round, prev)
			}
			prev = rec.Round
			lines++
		}
		if lines != 6 {
			t.Fatalf("run %d: %d trace lines, want 6", i, lines)
		}
		totalRounds += lines
	}

	// The shared registry saw every round exactly once across all writers.
	var buf bytes.Buffer
	if err := shared.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("helcfl_rounds_total %d", totalRounds)
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("shared registry missing %q; got:\n%s", want, firstLines(buf.String(), 20))
	}
	wantRuns := fmt.Sprintf("helcfl_runs_total %d", runs)
	if !bytes.Contains(buf.Bytes(), []byte(wantRuns)) {
		t.Fatalf("shared registry missing %q", wantRuns)
	}
}

func firstLines(s string, n int) string {
	out := ""
	for i, line := range bytes.Split([]byte(s), []byte("\n")) {
		if i >= n {
			break
		}
		out += string(line) + "\n"
	}
	return out
}
