package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"helcfl/internal/obs"
)

// Sink streams one JSONL Record per completed round, making the trace
// artifact a live consumer of the engine's event stream instead of a
// post-hoc dump of fl.Result: lines appear as rounds finish, so a killed
// run still leaves a valid prefix on disk.
type Sink struct {
	obs.NopSink
	bw     *bufio.Writer
	enc    *json.Encoder
	scheme string
	err    error
}

// NewSink returns a streaming trace sink writing to w. Call Flush after
// the run to drain buffers and collect any deferred encode error.
func NewSink(w io.Writer) *Sink {
	bw := bufio.NewWriter(w)
	return &Sink{bw: bw, enc: json.NewEncoder(bw)}
}

// OnRunStart captures the scheme name stamped on every line.
func (s *Sink) OnRunStart(ev obs.RunStartEvent) { s.scheme = ev.Scheme }

// OnRoundEnd encodes the round as a trace line. Encode errors are sticky
// and reported by Flush; the engine's hot path never sees them.
func (s *Sink) OnRoundEnd(ev obs.RoundEndEvent) {
	if s.err != nil {
		return
	}
	rec := Record{
		Scheme:        s.scheme,
		Round:         ev.Round,
		Selected:      ev.Selected,
		DelaySec:      ev.DelaySec,
		EnergyJ:       ev.EnergyJ,
		ComputeJ:      ev.ComputeJ,
		UploadJ:       ev.UploadJ,
		SlackSec:      ev.SlackSec,
		CumTimeSec:    ev.CumTimeSec,
		CumEnergyJ:    ev.CumEnergyJ,
		TrainLoss:     ev.TrainLoss,
		Evaluated:     ev.Evaluated,
		TestLoss:      ev.TestLoss,
		TestAccuracy:  ev.TestAccuracy,
		SchemaVersion: SchemaVersion,
	}
	if err := s.enc.Encode(rec); err != nil {
		s.err = fmt.Errorf("trace: encode round %d: %w", ev.Round, err)
	}
}

// Flush drains the write buffer and returns the first error encountered
// while streaming, if any.
func (s *Sink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}
