// Package metrics turns raw round records into the quantities the paper
// reports: accuracy-vs-iteration curves (Fig. 2), training delay to reach a
// desired accuracy (Table I), energy to reach a desired accuracy (Fig. 3),
// and the headline speedup/savings percentages.
package metrics

import (
	"fmt"
	"math"

	"helcfl/internal/fl"
)

// Point is one evaluated moment of a training run.
type Point struct {
	// Round is the 0-based iteration index.
	Round int
	// Time is cumulative simulated training delay in seconds.
	Time float64
	// Energy is cumulative training energy in joules.
	Energy float64
	// Accuracy is global test accuracy in [0, 1].
	Accuracy float64
}

// Curve is a training trajectory: the evaluated points of a run in round
// order.
type Curve struct {
	// Scheme names the scheduling scheme that produced the curve.
	Scheme string
	// Points holds the evaluated rounds in ascending order.
	Points []Point
}

// CurveFromRecords extracts the evaluated points of an FL run.
func CurveFromRecords(scheme string, recs []fl.RoundRecord) Curve {
	c := Curve{Scheme: scheme}
	for _, r := range recs {
		if !r.Evaluated {
			continue
		}
		c.Points = append(c.Points, Point{
			Round:    r.Round,
			Time:     r.CumTime,
			Energy:   r.CumEnergy,
			Accuracy: r.TestAccuracy,
		})
	}
	return c
}

// Best returns the highest accuracy on the curve (0 for an empty curve).
func (c Curve) Best() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	return best
}

// Final returns the last point's accuracy (0 for an empty curve).
func (c Curve) Final() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Accuracy
}

// TimeToAccuracy returns the cumulative training delay at the first
// evaluated point reaching the target accuracy, and whether the target was
// reached — Table I's quantity. The ✗ entries of the paper correspond to
// ok == false.
func (c Curve) TimeToAccuracy(target float64) (seconds float64, ok bool) {
	for _, p := range c.Points {
		if p.Accuracy >= target {
			return p.Time, true
		}
	}
	return math.Inf(1), false
}

// EnergyToAccuracy returns cumulative energy at the first evaluated point
// reaching the target — Fig. 3's quantity.
func (c Curve) EnergyToAccuracy(target float64) (joules float64, ok bool) {
	for _, p := range c.Points {
		if p.Accuracy >= target {
			return p.Energy, true
		}
	}
	return math.Inf(1), false
}

// RoundsToAccuracy returns the first round index reaching the target.
func (c Curve) RoundsToAccuracy(target float64) (round int, ok bool) {
	for _, p := range c.Points {
		if p.Accuracy >= target {
			return p.Round, true
		}
	}
	return -1, false
}

// Speedup returns the paper's speedup percentage of `ours` over `base` for
// reaching the target accuracy: (T_base / T_ours − 1) × 100. The second
// result is false when either scheme misses the target.
func Speedup(ours, base Curve, target float64) (percent float64, ok bool) {
	to, okO := ours.TimeToAccuracy(target)
	tb, okB := base.TimeToAccuracy(target)
	if !okO || !okB {
		return 0, false
	}
	return (tb/to - 1) * 100, true
}

// AccuracyGain returns the percentage-point gap (×100) between the best
// accuracies of two curves — the paper's "enhance X% accuracy" metric.
func AccuracyGain(ours, base Curve) float64 {
	return (ours.Best() - base.Best()) * 100
}

// EnergySaving returns the percentage of energy saved by `ours` relative to
// `base` to reach the target accuracy: (1 − E_ours/E_base) × 100.
func EnergySaving(ours, base Curve, target float64) (percent float64, ok bool) {
	eo, okO := ours.EnergyToAccuracy(target)
	eb, okB := base.EnergyToAccuracy(target)
	if !okO || !okB || eb == 0 {
		return 0, false
	}
	return (1 - eo/eb) * 100, true
}

// FormatDelay renders seconds the way Table I does (minutes with two
// decimals), or the paper's ✗ when unreachable.
func FormatDelay(seconds float64, ok bool) string {
	if !ok {
		return "✗"
	}
	return fmt.Sprintf("%.2fmin", seconds/60)
}

// FormatPercent renders a fraction as a percentage with two decimals.
func FormatPercent(frac float64) string { return fmt.Sprintf("%.2f%%", frac*100) }
