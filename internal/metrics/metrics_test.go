package metrics

import (
	"math"
	"testing"

	"helcfl/internal/fl"
)

func mkCurve(scheme string, pts ...Point) Curve {
	return Curve{Scheme: scheme, Points: pts}
}

func TestCurveFromRecordsFiltersEvaluated(t *testing.T) {
	recs := []fl.RoundRecord{
		{Round: 0, CumTime: 1, CumEnergy: 2, Evaluated: true, TestAccuracy: 0.3},
		{Round: 1, CumTime: 2, CumEnergy: 4},
		{Round: 2, CumTime: 3, CumEnergy: 6, Evaluated: true, TestAccuracy: 0.5},
	}
	c := CurveFromRecords("x", recs)
	if len(c.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(c.Points))
	}
	if c.Points[1].Round != 2 || c.Points[1].Energy != 6 || c.Points[1].Accuracy != 0.5 {
		t.Fatalf("point = %+v", c.Points[1])
	}
}

func TestBestAndFinal(t *testing.T) {
	c := mkCurve("x",
		Point{Round: 0, Accuracy: 0.4},
		Point{Round: 1, Accuracy: 0.7},
		Point{Round: 2, Accuracy: 0.6},
	)
	if c.Best() != 0.7 {
		t.Fatalf("Best = %g", c.Best())
	}
	if c.Final() != 0.6 {
		t.Fatalf("Final = %g", c.Final())
	}
	empty := mkCurve("e")
	if empty.Best() != 0 || empty.Final() != 0 {
		t.Fatal("empty curve must report zeros")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	c := mkCurve("x",
		Point{Round: 0, Time: 10, Accuracy: 0.3},
		Point{Round: 5, Time: 60, Accuracy: 0.55},
		Point{Round: 9, Time: 100, Accuracy: 0.8},
	)
	if s, ok := c.TimeToAccuracy(0.5); !ok || s != 60 {
		t.Fatalf("TTA(0.5) = %g, %v", s, ok)
	}
	if s, ok := c.TimeToAccuracy(0.8); !ok || s != 100 {
		t.Fatalf("TTA(0.8) = %g, %v", s, ok)
	}
	if _, ok := c.TimeToAccuracy(0.9); ok {
		t.Fatal("unreachable target must report ok=false")
	}
}

func TestEnergyAndRoundsToAccuracy(t *testing.T) {
	c := mkCurve("x",
		Point{Round: 2, Time: 10, Energy: 5, Accuracy: 0.4},
		Point{Round: 4, Time: 20, Energy: 11, Accuracy: 0.6},
	)
	if e, ok := c.EnergyToAccuracy(0.6); !ok || e != 11 {
		t.Fatalf("ETA = %g, %v", e, ok)
	}
	if r, ok := c.RoundsToAccuracy(0.4); !ok || r != 2 {
		t.Fatalf("RTA = %d, %v", r, ok)
	}
	if r, ok := c.RoundsToAccuracy(0.99); ok || r != -1 {
		t.Fatal("unreachable rounds must report -1,false")
	}
}

func TestSpeedup(t *testing.T) {
	ours := mkCurve("ours", Point{Time: 50, Accuracy: 0.8})
	base := mkCurve("base", Point{Time: 150, Accuracy: 0.8})
	got, ok := Speedup(ours, base, 0.8)
	if !ok || math.Abs(got-200) > 1e-9 {
		t.Fatalf("Speedup = %g, %v; want 200%%", got, ok)
	}
	slow := mkCurve("slow", Point{Time: 1, Accuracy: 0.2})
	if _, ok := Speedup(ours, slow, 0.8); ok {
		t.Fatal("speedup vs scheme that misses target must be not-ok")
	}
}

func TestAccuracyGain(t *testing.T) {
	ours := mkCurve("o", Point{Accuracy: 0.85})
	base := mkCurve("b", Point{Accuracy: 0.42})
	if got := AccuracyGain(ours, base); math.Abs(got-43) > 1e-9 {
		t.Fatalf("AccuracyGain = %g, want 43", got)
	}
}

func TestEnergySaving(t *testing.T) {
	ours := mkCurve("o", Point{Energy: 40, Accuracy: 0.6})
	base := mkCurve("b", Point{Energy: 100, Accuracy: 0.6})
	got, ok := EnergySaving(ours, base, 0.6)
	if !ok || math.Abs(got-60) > 1e-9 {
		t.Fatalf("EnergySaving = %g, %v; want 60%%", got, ok)
	}
	if _, ok := EnergySaving(ours, mkCurve("b"), 0.6); ok {
		t.Fatal("saving vs empty base must be not-ok")
	}
}

func TestFormatDelay(t *testing.T) {
	if got := FormatDelay(409.2, true); got != "6.82min" {
		t.Fatalf("FormatDelay = %q", got)
	}
	if got := FormatDelay(0, false); got != "✗" {
		t.Fatalf("FormatDelay(miss) = %q", got)
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.4345); got != "43.45%" {
		t.Fatalf("FormatPercent = %q", got)
	}
}
