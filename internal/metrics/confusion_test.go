package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
)

func TestConfusionCounting(t *testing.T) {
	c := NewConfusion(3)
	c.Observe(0, 0)
	c.Observe(0, 1)
	c.Observe(1, 1)
	c.Observe(2, 2)
	if c.Total() != 4 {
		t.Fatalf("total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	if got := c.Recall(0); got != 0.5 {
		t.Fatalf("recall(0) = %g", got)
	}
	if got := c.Precision(1); got != 0.5 {
		t.Fatalf("precision(1) = %g", got)
	}
	if got := c.Recall(1); got != 1 {
		t.Fatalf("recall(1) = %g", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	c := NewConfusion(2)
	if c.Accuracy() != 0 || c.Recall(0) != 0 || c.Precision(0) != 0 {
		t.Fatal("empty matrix must report zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range observation")
		}
	}()
	c.Observe(0, 5)
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion(2)
	c.Observe(0, 0)
	out := c.String()
	if !strings.Contains(out, "recall") || !strings.Contains(out, "accuracy") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestConfusionOfMatchesAccuracy(t *testing.T) {
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 3, C: 1, H: 4, W: 4, TrainN: 90, TestN: 60, Noise: 0.4, Seed: 1,
	})
	rng := rand.New(rand.NewSource(2))
	m := nn.NewLogistic(16, 3, rng)
	// A few training steps so predictions are non-trivial.
	loss := nn.NewSoftmaxCrossEntropy()
	for i := 0; i < 60; i++ {
		m.ZeroGrads()
		loss.Forward(m.Forward(synth.Train.FlatX(), true), synth.Train.Labels)
		m.Backward(loss.Backward())
		for j, p := range m.Params() {
			p.AXPY(-0.3, m.Grads()[j])
		}
	}
	c := ConfusionOf(m, synth.Test, 3, true)
	if c.Total() != 60 {
		t.Fatalf("total = %d", c.Total())
	}
	// Confusion-derived accuracy must equal nn.Accuracy on the same data.
	want := nn.Accuracy(m.Forward(synth.Test.FlatX(), false), synth.Test.Labels)
	if math.Abs(c.Accuracy()-want) > 1e-12 {
		t.Fatalf("confusion accuracy %g != direct accuracy %g", c.Accuracy(), want)
	}
}
