package metrics

import (
	"fmt"
	"strings"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
	"helcfl/internal/tensor"
)

// Confusion is a numClasses×numClasses confusion matrix: rows are true
// labels, columns are predictions.
type Confusion struct {
	Classes int
	Counts  [][]int
}

// NewConfusion returns an empty matrix.
func NewConfusion(classes int) *Confusion {
	if classes <= 0 {
		panic(fmt.Sprintf("metrics: non-positive class count %d", classes))
	}
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Observe adds one (true, predicted) pair.
func (c *Confusion) Observe(trueLabel, predicted int) {
	if trueLabel < 0 || trueLabel >= c.Classes || predicted < 0 || predicted >= c.Classes {
		panic(fmt.Sprintf("metrics: observation (%d, %d) outside %d classes", trueLabel, predicted, c.Classes))
	}
	c.Counts[trueLabel][predicted]++
}

// Total returns the number of observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the trace fraction (0 for an empty matrix).
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := range c.Counts {
		diag += c.Counts[i][i]
	}
	return float64(diag) / float64(total)
}

// Recall returns per-class recall (diagonal over row sum); classes with no
// observations report 0.
func (c *Confusion) Recall(class int) float64 {
	row := c.Counts[class]
	sum := 0
	for _, v := range row {
		sum += v
	}
	if sum == 0 {
		return 0
	}
	return float64(row[class]) / float64(sum)
}

// Precision returns per-class precision (diagonal over column sum).
func (c *Confusion) Precision(class int) float64 {
	sum := 0
	for i := range c.Counts {
		sum += c.Counts[i][class]
	}
	if sum == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(sum)
}

// String renders the matrix with per-class recall.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, %d samples, accuracy %.2f%%)\n",
		c.Classes, c.Total(), c.Accuracy()*100)
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "  true %2d:", i)
		for _, v := range row {
			fmt.Fprintf(&b, " %4d", v)
		}
		fmt.Fprintf(&b, "   recall %.2f\n", c.Recall(i))
	}
	return b.String()
}

// ConfusionOf evaluates a model over a dataset and returns its confusion
// matrix. flattenInput selects the (B, D) view for dense models.
func ConfusionOf(m *nn.Sequential, d *dataset.Dataset, classes int, flattenInput bool) *Confusion {
	const batch = 256
	c := NewConfusion(classes)
	n := d.N()
	plane := d.SampleDim()
	for off := 0; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		bn := end - off
		var x *tensor.Tensor
		if flattenInput {
			x = tensor.FromSlice(d.X.Data()[off*plane:end*plane], bn, plane)
		} else {
			x = tensor.FromSlice(d.X.Data()[off*plane:end*plane], bn, d.Channels(), d.Height(), d.Width())
		}
		logits := m.Forward(x, false)
		ld := logits.Data()
		k := logits.Dim(1)
		for i := 0; i < bn; i++ {
			row := ld[i*k : (i+1)*k]
			arg, best := 0, row[0]
			for j, v := range row[1:] {
				if v > best {
					arg, best = j+1, v
				}
			}
			c.Observe(d.Labels[off+i], arg)
		}
	}
	return c
}
