package metrics_test

import (
	"fmt"

	"helcfl/internal/metrics"
)

// Table I's quantity: the first evaluated moment a training curve crosses
// the desired accuracy.
func ExampleCurve_TimeToAccuracy() {
	c := metrics.Curve{Scheme: "HELCFL", Points: []metrics.Point{
		{Round: 0, Time: 60, Accuracy: 0.42},
		{Round: 10, Time: 409.2, Accuracy: 0.61},
		{Round: 20, Time: 850, Accuracy: 0.71},
	}}
	sec, ok := c.TimeToAccuracy(0.60)
	fmt.Println(metrics.FormatDelay(sec, ok))
	_, ok = c.TimeToAccuracy(0.90)
	fmt.Println(metrics.FormatDelay(0, ok))
	// Output:
	// 6.82min
	// ✗
}

// The paper's speedup metric: (T_base/T_ours − 1) × 100.
func ExampleSpeedup() {
	ours := metrics.Curve{Points: []metrics.Point{{Time: 913, Accuracy: 0.6}}}
	base := metrics.Curve{Points: []metrics.Point{{Time: 3424, Accuracy: 0.6}}}
	pct, ok := metrics.Speedup(ours, base, 0.6)
	fmt.Printf("%.2f%% %v\n", pct, ok)
	// Output:
	// 275.03% true
}
