// Package selection implements the user-selection strategies and
// operating-frequency policies of the four baselines the paper compares
// against, plus the adapters that expose the HELCFL scheduler
// (internal/core) as an fl.Planner.
//
// Baselines (Section VII-A):
//   - Classic FL [9]: uniformly random selection of Q·C users, max frequency.
//   - FedCS [10]: greedy selection of as many short-delay users as fit a
//     per-round deadline, max frequency.
//   - FEDL [12]: random selection like Classic FL, per-user closed-form
//     frequency balancing compute energy against delay.
//   - SL [4]: separated learning; implemented in internal/fl (RunSL).
package selection

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/obs/span"
	"helcfl/internal/sim"
	"helcfl/internal/wireless"
)

// RandomSelector draws max(Q·C, 1) distinct users uniformly per round — the
// Classic FL selection rule.
type RandomSelector struct {
	Q        int
	Fraction float64
	rng      *rand.Rand
}

// NewRandomSelector returns a seeded random selector over Q users.
func NewRandomSelector(q int, fraction float64, rng *rand.Rand) *RandomSelector {
	if q <= 0 || fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("selection: bad random selector (Q=%d, C=%g)", q, fraction))
	}
	return &RandomSelector{Q: q, Fraction: fraction, rng: rng}
}

// N returns the per-round selection count.
func (r *RandomSelector) N() int {
	n := int(float64(r.Q) * r.Fraction)
	if n < 1 {
		n = 1
	}
	return n
}

// Select returns the users for round j.
func (r *RandomSelector) Select(j int) []int {
	return r.rng.Perm(r.Q)[:r.N()]
}

// FedCSSelector reproduces the greedy deadline-packing of Nishio &
// Yonetani: each round it admits users in ascending order of estimated
// total delay (T_cal at max frequency + T_com), adding users as long as the
// estimated TDMA round completion stays within the per-round deadline. At
// least one user is always selected.
type FedCSSelector struct {
	// DeadlineSec is the per-round completion budget.
	DeadlineSec float64

	devs  []*device.Device
	ch    wireless.Channel
	bits  float64
	steps int
}

// NewFedCSSelector builds the selector. modelBits is C_model; steps scales
// compute delay like core.Params.StepsPerRound.
func NewFedCSSelector(devs []*device.Device, ch wireless.Channel, modelBits, deadlineSec float64, steps int) *FedCSSelector {
	if deadlineSec <= 0 {
		panic(fmt.Sprintf("selection: FedCS deadline %g must be positive", deadlineSec))
	}
	if steps <= 0 {
		panic("selection: FedCS steps must be positive")
	}
	return &FedCSSelector{DeadlineSec: deadlineSec, devs: devs, ch: ch, bits: modelBits, steps: steps}
}

// Select returns the users for round j. FedCS is stateless across rounds:
// with static resource information it admits the same fast cohort every
// round, which is exactly the behaviour that caps its final accuracy.
func (f *FedCSSelector) Select(j int) []int {
	type cand struct {
		q          int
		tcal, tcom float64
	}
	cands := make([]cand, len(f.devs))
	for q, d := range f.devs {
		cands[q] = cand{
			q:    q,
			tcal: float64(f.steps) * d.ComputeDelayAtMax(),
			tcom: f.ch.UploadDelay(f.bits, d.TxPower, d.ChannelGain),
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		da := cands[a].tcal + cands[a].tcom
		db := cands[b].tcal + cands[b].tcom
		if da != db {
			return da < db
		}
		return cands[a].q < cands[b].q
	})
	var selected []int
	// Greedy admission: track the estimated TDMA completion time if the
	// candidate is appended to the current cohort.
	var reqs []wireless.UploadRequest
	for _, c := range cands {
		trial := append(reqs, wireless.UploadRequest{User: c.q, ComputeDone: c.tcal, Duration: c.tcom})
		_, makespan := wireless.ScheduleTDMA(trial)
		if makespan > f.DeadlineSec && len(selected) > 0 {
			break // adding slower users only lengthens the round further
		}
		reqs = trial
		selected = append(selected, c.q)
	}
	return selected
}

// MaxFreqPolicy runs every selected device at its maximum frequency — the
// no-DVFS baseline used by Classic FL and FedCS.
func MaxFreqPolicy(selected []*device.Device) []float64 {
	return sim.MaxFrequencies(selected)
}

// FEDLFreqPolicy returns the closed-form per-user frequency of Tran et al.:
// each user independently minimizes (α/2)·π|D|·f² + K·π|D|/f, a weighted sum
// of compute energy and delay, giving f* = (K/α)^{1/3}, clamped to the
// device range. K trades energy (small K) against latency (large K).
type FEDLFreqPolicy struct {
	// K is the delay weight in joules per second of compute.
	K float64
}

// Frequencies implements the policy.
func (p FEDLFreqPolicy) Frequencies(selected []*device.Device) []float64 {
	out := make([]float64, len(selected))
	for i, d := range selected {
		f := math.Cbrt(p.K / d.Kappa)
		out[i] = d.ClampFreq(f)
	}
	return out
}

// NewClassicFL composes the Classic FL baseline: random selection at
// maximum frequency.
func NewClassicFL(devs []*device.Device, fraction float64, rng *rand.Rand) fl.Planner {
	sel := NewRandomSelector(len(devs), fraction, rng)
	return &fl.Composed{
		Label:       "ClassicFL",
		Devices:     devs,
		Select:      sel.Select,
		Frequencies: MaxFreqPolicy,
	}
}

// NewFedCS composes the FedCS baseline: greedy deadline packing at maximum
// frequency.
func NewFedCS(devs []*device.Device, ch wireless.Channel, modelBits, deadlineSec float64, steps int) fl.Planner {
	sel := NewFedCSSelector(devs, ch, modelBits, deadlineSec, steps)
	return &fl.Composed{
		Label:       "FedCS",
		Devices:     devs,
		Select:      sel.Select,
		Frequencies: MaxFreqPolicy,
	}
}

// NewFEDL composes the FEDL baseline: random selection (the paper notes
// FEDL shares Classic FL's selection and therefore its accuracy curve) with
// the closed-form energy/delay-balancing frequency.
func NewFEDL(devs []*device.Device, fraction, k float64, rng *rand.Rand) fl.Planner {
	sel := NewRandomSelector(len(devs), fraction, rng)
	pol := FEDLFreqPolicy{K: k}
	return &fl.Composed{
		Label:       "FEDL",
		Devices:     devs,
		Select:      sel.Select,
		Frequencies: pol.Frequencies,
	}
}

// HELCFLPlanner adapts the core scheduler (Algorithms 2+3) to fl.Planner.
type HELCFLPlanner struct {
	sched *core.Scheduler
	ch    wireless.Channel
	bits  float64
	// DisableDVFS replaces Algorithm 3 with max-frequency operation; used
	// by the Fig. 3 ablation ("HELCFL w/o DVFS").
	DisableDVFS bool
	devs        []*device.Device
}

// NewHELCFL builds the full HELCFL planner.
func NewHELCFL(devs []*device.Device, ch wireless.Channel, modelBits float64, params core.Params) (*HELCFLPlanner, error) {
	sched, err := core.NewScheduler(devs, ch, modelBits, params)
	if err != nil {
		return nil, err
	}
	return &HELCFLPlanner{sched: sched, ch: ch, bits: modelBits, devs: devs}, nil
}

// Name implements fl.Planner.
func (h *HELCFLPlanner) Name() string {
	if h.DisableDVFS {
		return "HELCFL-noDVFS"
	}
	return "HELCFL"
}

// PlanRound implements fl.Planner.
func (h *HELCFLPlanner) PlanRound(j int) ([]int, []float64) {
	if h.DisableDVFS {
		sel := h.sched.SelectRound()
		devs := make([]*device.Device, len(sel))
		for i, q := range sel {
			devs[i] = h.devs[q]
		}
		return sel, sim.MaxFrequencies(devs)
	}
	return h.sched.PlanRound(h.ch, h.bits)
}

// Scheduler exposes the underlying core scheduler (for inspection in tests
// and reports).
func (h *HELCFLPlanner) Scheduler() *core.Scheduler { return h.sched }

// SetTrace implements fl.TracedPlanner: the engine hands down its span
// recorder so Algorithm 2 selection and the Algorithm 3 DVFS solve appear
// as children of each round's plan span.
func (h *HELCFLPlanner) SetTrace(rec *span.Recorder, parent span.Ref) {
	h.sched.SetTrace(rec, parent)
}

// ExportState implements fl.StatefulPlanner: the Algorithm 2 decay state.
func (h *HELCFLPlanner) ExportState() ([]byte, error) {
	return gobEncode(h.sched.ExportState())
}

// ImportState implements fl.StatefulPlanner.
func (h *HELCFLPlanner) ImportState(raw []byte) error {
	var st core.SchedulerState
	if err := gobDecode(raw, &st); err != nil {
		return err
	}
	return h.sched.ImportState(st)
}

// SelectionDetail implements fl.DecisionDetailer: the Eq. (20) utilities of
// the last planned round and the α_q decay counters.
func (h *HELCFLPlanner) SelectionDetail() ([]float64, []int) {
	return h.sched.LastUtilities(), h.sched.Appearances()
}

// HELCFLLossAware is the loss-aware HELCFL extension: Algorithm 2's
// greedy-decay selection augmented with an Oort-style statistical-utility
// bonus (see core.LossAwareScheduler), plus Algorithm 3 frequencies. It
// implements fl.Observer to receive per-round loss feedback.
type HELCFLLossAware struct {
	sched  *core.LossAwareScheduler
	ch     wireless.Channel
	bits   float64
	devs   []*device.Device
	params core.Params
}

// NewHELCFLLossAware builds the extension with statistical weight lambda.
func NewHELCFLLossAware(devs []*device.Device, ch wireless.Channel, modelBits float64, params core.Params, lambda float64) (*HELCFLLossAware, error) {
	base, err := core.NewScheduler(devs, ch, modelBits, params)
	if err != nil {
		return nil, err
	}
	la, err := core.NewLossAwareScheduler(base, lambda)
	if err != nil {
		return nil, err
	}
	return &HELCFLLossAware{sched: la, ch: ch, bits: modelBits, devs: devs, params: params}, nil
}

// Name implements fl.Planner.
func (h *HELCFLLossAware) Name() string { return "HELCFL-lossaware" }

// PlanRound implements fl.Planner. Frequencies come from the scheduler's
// SoA Algorithm 3, bit-identical to the AoS core.FrequencyPlan it replaced
// (fleet positions are device IDs in every catalog here).
func (h *HELCFLLossAware) PlanRound(j int) ([]int, []float64) {
	sel := h.sched.SelectRound()
	return sel, h.sched.FrequencyPlanSelected(sel, h.ch, h.bits)
}

// ObserveRound implements fl.Observer.
func (h *HELCFLLossAware) ObserveRound(j int, selected []int, losses []float64) {
	h.sched.ObserveRound(j, selected, losses)
}

// SelectionDetail implements fl.DecisionDetailer over the loss-augmented
// utilities.
func (h *HELCFLLossAware) SelectionDetail() ([]float64, []int) {
	return h.sched.LastUtilities(), h.sched.Appearances()
}

// ExportState implements fl.StatefulPlanner: decay state plus loss memory.
func (h *HELCFLLossAware) ExportState() ([]byte, error) {
	return gobEncode(h.sched.ExportState())
}

// ImportState implements fl.StatefulPlanner.
func (h *HELCFLLossAware) ImportState(raw []byte) error {
	var st core.LossAwareState
	if err := gobDecode(raw, &st); err != nil {
		return err
	}
	return h.sched.ImportState(st)
}

// gobEncode/gobDecode are the planner-state wire helpers.
func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("selection: encode planner state: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(raw []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(v); err != nil {
		return fmt.Errorf("selection: decode planner state: %w", err)
	}
	return nil
}
