package selection

import (
	"math/rand"
	"testing"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/wireless"
)

func hierFleet(n int, seed int64) []*device.Device {
	cfg := device.DefaultCatalogConfig()
	cfg.Q = n
	devs := device.NewCatalog(cfg, rand.New(rand.NewSource(seed)))
	for i, d := range devs {
		d.NumSamples = 30 + 7*(i%6)
	}
	return devs
}

// TestHierHELCFLSingleEdgeMatchesFlat pins the E = 1 hierarchical planner
// bit-identical to the flat HELCFL planner over many rounds: one shard is
// the whole fleet and the single edge is the FLCC.
func TestHierHELCFLSingleEdgeMatchesFlat(t *testing.T) {
	devs := hierFleet(80, 6)
	ch := wireless.DefaultChannel()
	flat, err := NewHELCFL(devs, ch, 4e5, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewHierHELCFL(devs, 1, ch, 4e5, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 20; j++ {
		fs, ff := flat.PlanRound(j)
		hs, hf := hier.PlanRound(j)
		if len(fs) != len(hs) {
			t.Fatalf("round %d: cohort sizes %d vs %d", j, len(fs), len(hs))
		}
		for i := range fs {
			if fs[i] != hs[i] || ff[i] != hf[i] {
				t.Fatalf("round %d user %d: flat (%d, %v) vs hier (%d, %v)", j, i, fs[i], ff[i], hs[i], hf[i])
			}
		}
	}
}

// TestHierHELCFLShards checks the contiguous balanced partition, EdgeOf,
// and that each edge selects only from its own shard with fleet-global
// indices.
func TestHierHELCFLShards(t *testing.T) {
	devs := hierFleet(23, 2) // 23 over 4 edges: shards 6,6,6,5
	ch := wireless.DefaultChannel()
	h, err := NewHierHELCFL(devs, 4, ch, 4e5, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", h.NumEdges())
	}
	wantOffsets := []int{0, 6, 12, 18, 23}
	for i, w := range wantOffsets {
		if h.offsets[i] != w {
			t.Fatalf("offsets = %v, want %v", h.offsets, wantOffsets)
		}
	}
	for q := 0; q < len(devs); q++ {
		e := h.EdgeOf(q)
		if q < h.offsets[e] || q >= h.offsets[e+1] {
			t.Fatalf("EdgeOf(%d) = %d, but shard %d is [%d, %d)", q, e, e, h.offsets[e], h.offsets[e+1])
		}
	}
	for j := 0; j < 5; j++ {
		sel, freqs := h.PlanRound(j)
		if len(sel) != len(freqs) {
			t.Fatalf("round %d: %d selected, %d freqs", j, len(sel), len(freqs))
		}
		prevEdge := 0
		for _, q := range sel {
			if q < 0 || q >= len(devs) {
				t.Fatalf("round %d: selected fleet index %d out of range", j, q)
			}
			e := h.EdgeOf(q)
			if e < prevEdge {
				t.Fatalf("round %d: selection not edge-major (%v)", j, sel)
			}
			prevEdge = e
		}
		// Every edge contributes max(shard·C, 1) users.
		perEdge := make([]int, 4)
		for _, q := range sel {
			perEdge[h.EdgeOf(q)]++
		}
		for e, n := range perEdge {
			if n != 1 { // shards of 5–6 users at C = 0.1 → max(·, 1) = 1
				t.Fatalf("round %d: edge %d selected %d users, want 1", j, e, n)
			}
		}
	}

	if _, err := NewHierHELCFL(devs, 0, ch, 4e5, core.DefaultParams()); err == nil {
		t.Fatal("zero edges must be rejected")
	}
	if _, err := NewHierHELCFL(devs, len(devs)+1, ch, 4e5, core.DefaultParams()); err == nil {
		t.Fatal("more edges than devices must be rejected")
	}
}

// TestHierHELCFLStateRoundTrip checks export/import restores the exact
// selection trajectory across all edge shards.
func TestHierHELCFLStateRoundTrip(t *testing.T) {
	devs := hierFleet(60, 8)
	ch := wireless.DefaultChannel()
	orig, err := NewHierHELCFL(devs, 3, ch, 4e5, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		orig.PlanRound(j)
	}
	blob, err := orig.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewHierHELCFL(devs, 3, ch, 4e5, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportState(blob); err != nil {
		t.Fatal(err)
	}
	for j := 6; j < 12; j++ {
		a, af := orig.PlanRound(j)
		b, bf := restored.PlanRound(j)
		for i := range a {
			if a[i] != b[i] || af[i] != bf[i] {
				t.Fatalf("round %d: restored planner diverged", j)
			}
		}
	}
	// Shape mismatch: a 2-edge snapshot must not import into 3 edges.
	two, err := NewHierHELCFL(devs, 2, ch, 4e5, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := two.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportState(blob2); err == nil {
		t.Fatal("edge-count mismatch must be rejected")
	}
}
