package selection

import (
	"testing"

	"helcfl/internal/core"
	"helcfl/internal/fl"
	"helcfl/internal/wireless"
)

func TestHELCFLLossAwarePlanner(t *testing.T) {
	devs := fleet(20, 30)
	ch := wireless.DefaultChannel()
	p, err := NewHELCFLLossAware(devs, ch, testModelBits, core.DefaultParams(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "HELCFL-lossaware" {
		t.Fatalf("name = %s", p.Name())
	}
	sel, freqs := p.PlanRound(0)
	if len(sel) == 0 || len(sel) != len(freqs) {
		t.Fatalf("plan sizes %d/%d", len(sel), len(freqs))
	}
	for i, q := range sel {
		if freqs[i] < devs[q].FMin-1e-9 || freqs[i] > devs[q].FMax+1e-9 {
			t.Fatal("frequency outside device range")
		}
	}
	// Feedback is accepted and shifts later utilities.
	losses := make([]float64, len(sel))
	for i := range losses {
		losses[i] = 5.0
	}
	p.ObserveRound(0, sel, losses)
}

func TestHELCFLLossAwareImplementsObserver(t *testing.T) {
	devs := fleet(10, 31)
	p, err := NewHELCFLLossAware(devs, wireless.DefaultChannel(), testModelBits, core.DefaultParams(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var planner fl.Planner = p
	if _, ok := planner.(fl.Observer); !ok {
		t.Fatal("loss-aware planner must implement fl.Observer")
	}
}

func TestHELCFLLossAwareRejectsNegativeLambda(t *testing.T) {
	devs := fleet(5, 32)
	if _, err := NewHELCFLLossAware(devs, wireless.DefaultChannel(), testModelBits, core.DefaultParams(), -0.5); err == nil {
		t.Fatal("negative λ must be rejected")
	}
}
