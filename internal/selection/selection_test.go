package selection

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/sim"
	"helcfl/internal/wireless"
)

const testModelBits = 4e5

func fleet(n int, seed int64) []*device.Device {
	cfg := device.DefaultCatalogConfig()
	cfg.Q = n
	devs := device.NewCatalog(cfg, rand.New(rand.NewSource(seed)))
	for i, d := range devs {
		d.NumSamples = 40 + 5*(i%4)
	}
	return devs
}

func TestRandomSelectorCountAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sel := NewRandomSelector(50, 0.1, rng)
	for j := 0; j < 20; j++ {
		got := sel.Select(j)
		if len(got) != 5 {
			t.Fatalf("round %d: selected %d, want 5", j, len(got))
		}
		seen := map[int]bool{}
		for _, q := range got {
			if q < 0 || q >= 50 || seen[q] {
				t.Fatalf("round %d: bad selection %v", j, got)
			}
			seen[q] = true
		}
	}
}

func TestRandomSelectorFloorsToOne(t *testing.T) {
	sel := NewRandomSelector(5, 0.01, rand.New(rand.NewSource(2)))
	if sel.N() != 1 {
		t.Fatalf("N = %d, want 1", sel.N())
	}
}

func TestRandomSelectorCoversEveryoneEventually(t *testing.T) {
	sel := NewRandomSelector(30, 0.2, rand.New(rand.NewSource(3)))
	seen := map[int]bool{}
	for j := 0; j < 200 && len(seen) < 30; j++ {
		for _, q := range sel.Select(j) {
			seen[q] = true
		}
	}
	if len(seen) != 30 {
		t.Fatalf("random selection covered only %d of 30 users", len(seen))
	}
}

func TestRandomSelectorBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRandomSelector(0, 0.1, rand.New(rand.NewSource(1)))
}

func TestFedCSSelectsFastUsersWithinDeadline(t *testing.T) {
	devs := fleet(30, 4)
	ch := wireless.DefaultChannel()
	// Compute a deadline that admits roughly a third of the fleet.
	sel := NewFedCSSelector(devs, ch, testModelBits, 3.0, 1)
	got := sel.Select(0)
	if len(got) == 0 {
		t.Fatal("FedCS must select at least one user")
	}
	// The admitted cohort must be a prefix of the delay-sorted ordering:
	// every admitted user is at least as fast as every excluded one.
	admitted := map[int]bool{}
	for _, q := range got {
		admitted[q] = true
	}
	delay := func(q int) float64 {
		return devs[q].ComputeDelayAtMax() + ch.UploadDelay(testModelBits, devs[q].TxPower, devs[q].ChannelGain)
	}
	maxIn := 0.0
	for _, q := range got {
		if d := delay(q); d > maxIn {
			maxIn = d
		}
	}
	for q := range devs {
		if !admitted[q] && delay(q) < maxIn-1e-9 {
			t.Fatalf("excluded user %d is faster than admitted cohort", q)
		}
	}
	// Estimated round time within deadline (or single forced user).
	var reqs []wireless.UploadRequest
	for _, q := range got {
		reqs = append(reqs, wireless.UploadRequest{
			User:        q,
			ComputeDone: devs[q].ComputeDelayAtMax(),
			Duration:    ch.UploadDelay(testModelBits, devs[q].TxPower, devs[q].ChannelGain),
		})
	}
	if _, mk := wireless.ScheduleTDMA(reqs); mk > 3.0+1e-9 && len(got) > 1 {
		t.Fatalf("FedCS cohort misses its own deadline: %g", mk)
	}
}

func TestFedCSStaticAcrossRounds(t *testing.T) {
	devs := fleet(20, 5)
	sel := NewFedCSSelector(devs, wireless.DefaultChannel(), testModelBits, 2.5, 1)
	a := sel.Select(0)
	b := sel.Select(7)
	if len(a) != len(b) {
		t.Fatal("FedCS cohort size changed between rounds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FedCS with static resources must reselect the same cohort")
		}
	}
}

func TestFedCSTinyDeadlineStillSelectsOne(t *testing.T) {
	devs := fleet(10, 6)
	sel := NewFedCSSelector(devs, wireless.DefaultChannel(), testModelBits, 1e-6, 1)
	if got := sel.Select(0); len(got) != 1 {
		t.Fatalf("FedCS must force one user, got %d", len(got))
	}
}

func TestFedCSLongerDeadlineAdmitsMore(t *testing.T) {
	devs := fleet(40, 7)
	ch := wireless.DefaultChannel()
	short := len(NewFedCSSelector(devs, ch, testModelBits, 2.0, 1).Select(0))
	long := len(NewFedCSSelector(devs, ch, testModelBits, 6.0, 1).Select(0))
	if long <= short {
		t.Fatalf("deadline 6s admits %d, 2s admits %d; want monotone growth", long, short)
	}
}

func TestMaxFreqPolicy(t *testing.T) {
	devs := fleet(5, 8)
	fs := MaxFreqPolicy(devs)
	for i, d := range devs {
		if fs[i] != d.FMax {
			t.Fatalf("device %d: %g != %g", i, fs[i], d.FMax)
		}
	}
}

func TestFEDLFreqClosedForm(t *testing.T) {
	devs := fleet(5, 9)
	k := 0.2
	fs := FEDLFreqPolicy{K: k}.Frequencies(devs)
	for i, d := range devs {
		want := d.ClampFreq(math.Cbrt(k / d.Kappa))
		if math.Abs(fs[i]-want) > 1 {
			t.Fatalf("device %d: %g != %g", i, fs[i], want)
		}
	}
}

// The closed form is the true minimizer of the per-user cost
// (α/2)πDf² + KπD/f over the frequency range.
func TestFEDLFreqMinimizesCostQuick(t *testing.T) {
	devs := fleet(1, 10)
	d := devs[0]
	cost := func(f, k float64) float64 {
		return d.ComputeEnergy(f) + k*d.ComputeDelay(f)
	}
	f := func(kRaw uint8) bool {
		k := 0.01 + float64(kRaw)/64.0 // 0.01–4
		fstar := FEDLFreqPolicy{K: k}.Frequencies([]*device.Device{d})[0]
		c0 := cost(fstar, k)
		for _, probe := range []float64{d.FMin, d.FMax, (d.FMin + d.FMax) / 2, fstar * 0.9, fstar * 1.1} {
			p := d.ClampFreq(probe)
			if cost(p, k) < c0-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClassicFLPlanner(t *testing.T) {
	devs := fleet(20, 11)
	p := NewClassicFL(devs, 0.2, rand.New(rand.NewSource(1)))
	if p.Name() != "ClassicFL" {
		t.Fatalf("name = %s", p.Name())
	}
	sel, freqs := p.PlanRound(0)
	if len(sel) != 4 || len(freqs) != 4 {
		t.Fatalf("plan sizes = %d/%d", len(sel), len(freqs))
	}
	for i, q := range sel {
		if freqs[i] != devs[q].FMax {
			t.Fatal("ClassicFL must run at max frequency")
		}
	}
}

func TestFEDLPlannerFrequenciesDiffer(t *testing.T) {
	devs := fleet(20, 12)
	p := NewFEDL(devs, 0.2, 0.2, rand.New(rand.NewSource(2)))
	sel, freqs := p.PlanRound(0)
	// FEDL's balanced frequency is typically below FMax for fast devices.
	below := false
	for i, q := range sel {
		if freqs[i] < devs[q].FMax-1 {
			below = true
		}
		if freqs[i] < devs[q].FMin-1e-9 || freqs[i] > devs[q].FMax+1e-9 {
			t.Fatal("FEDL frequency outside device range")
		}
	}
	if !below {
		t.Fatal("FEDL should throttle at least one device below FMax")
	}
}

func TestHELCFLPlannerIntegration(t *testing.T) {
	devs := fleet(30, 13)
	ch := wireless.DefaultChannel()
	p, err := NewHELCFL(devs, ch, testModelBits, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "HELCFL" {
		t.Fatalf("name = %s", p.Name())
	}
	sel, freqs := p.PlanRound(0)
	if len(sel) != 3 || len(freqs) != 3 {
		t.Fatalf("plan sizes = %d/%d", len(sel), len(freqs))
	}
	// Selection must rotate over rounds (decay), and the DVFS plan must not
	// exceed the no-DVFS makespan.
	selDevs := make([]*device.Device, len(sel))
	for i, q := range sel {
		selDevs[i] = devs[q]
	}
	dvfs := sim.SimulateRound(selDevs, freqs, ch, testModelBits, 1)
	nodvfs := sim.SimulateRound(selDevs, sim.MaxFrequencies(selDevs), ch, testModelBits, 1)
	if dvfs.Makespan > nodvfs.Makespan+1e-9 {
		t.Fatal("HELCFL DVFS plan lengthened the round")
	}
	if dvfs.ComputeEnergy > nodvfs.ComputeEnergy+1e-12 {
		t.Fatal("HELCFL DVFS plan did not save compute energy")
	}
}

func TestHELCFLNoDVFSVariant(t *testing.T) {
	devs := fleet(20, 14)
	ch := wireless.DefaultChannel()
	p, err := NewHELCFL(devs, ch, testModelBits, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p.DisableDVFS = true
	if p.Name() != "HELCFL-noDVFS" {
		t.Fatalf("name = %s", p.Name())
	}
	sel, freqs := p.PlanRound(0)
	for i, q := range sel {
		if freqs[i] != devs[q].FMax {
			t.Fatal("no-DVFS variant must run at max frequency")
		}
	}
}

func TestHELCFLRejectsBadParams(t *testing.T) {
	devs := fleet(5, 15)
	if _, err := NewHELCFL(devs, wireless.DefaultChannel(), testModelBits, core.Params{Eta: 2, Fraction: 0.1, StepsPerRound: 1}); err == nil {
		t.Fatal("bad η must be rejected")
	}
}

// HELCFL vs FedCS coverage: over many rounds HELCFL touches every user
// while FedCS never leaves its fast cohort.
func TestCoverageContrastHELCFLvsFedCS(t *testing.T) {
	devs := fleet(40, 16)
	ch := wireless.DefaultChannel()
	h, err := NewHELCFL(devs, ch, testModelBits, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	fedcs := NewFedCS(devs, ch, testModelBits, 2.5, 1)
	hSeen := map[int]bool{}
	fSeen := map[int]bool{}
	for j := 0; j < 150; j++ {
		sel, _ := h.PlanRound(j)
		for _, q := range sel {
			hSeen[q] = true
		}
		fsel, _ := fedcs.PlanRound(j)
		for _, q := range fsel {
			fSeen[q] = true
		}
	}
	if len(hSeen) != len(devs) {
		t.Fatalf("HELCFL covered %d of %d users", len(hSeen), len(devs))
	}
	if len(fSeen) == len(devs) {
		t.Fatal("FedCS unexpectedly covered every user; deadline too loose for the contrast")
	}
}
