package selection

import (
	"fmt"
	"sort"
	"sync"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/obs/span"
	"helcfl/internal/wireless"
)

// HierHELCFL is HELCFL with a hierarchical edge-aggregation tier: the fleet
// is partitioned into E contiguous shards, one per edge aggregator, and
// each shard runs its own Algorithm 2 + 3 plan against its own edge uplink.
// The E per-edge plans are independent, so they solve in parallel; the
// per-edge TDMA chains also run in parallel in the round simulation (the
// planner implements fl.EdgeTopology), and the FLCC performs a second-level
// weighted average over the edge models (fl.FedAvgHierInto).
//
// With E = 1 the planner is bit-identical to the flat HELCFL planner: one
// shard is the whole fleet and the single "edge" is the FLCC.
type HierHELCFL struct {
	ch     wireless.Channel
	bits   float64
	scheds []*core.Scheduler
	// offsets[e] is the first fleet index of edge e's shard; offsets[E] = Q.
	// Shard-local index l on edge e is fleet index offsets[e]+l.
	offsets []int

	tr       *span.Recorder
	trParent span.Ref

	// Per-edge plan parts, concatenated edge-major into each round's result.
	selParts  [][]int
	freqParts [][]float64
}

// NewHierHELCFL partitions devs into numEdges contiguous balanced shards
// (sizes differ by at most one) and builds one core scheduler per shard.
// Every shard must be non-empty: numEdges may not exceed the fleet size.
func NewHierHELCFL(devs []*device.Device, numEdges int, ch wireless.Channel, modelBits float64, params core.Params) (*HierHELCFL, error) {
	if numEdges <= 0 {
		return nil, fmt.Errorf("selection: non-positive edge count %d", numEdges)
	}
	if numEdges > len(devs) {
		return nil, fmt.Errorf("selection: %d edge aggregators for %d devices", numEdges, len(devs))
	}
	h := &HierHELCFL{
		ch:        ch,
		bits:      modelBits,
		scheds:    make([]*core.Scheduler, numEdges),
		offsets:   make([]int, numEdges+1),
		selParts:  make([][]int, numEdges),
		freqParts: make([][]float64, numEdges),
	}
	base, rem := len(devs)/numEdges, len(devs)%numEdges
	off := 0
	for e := 0; e < numEdges; e++ {
		h.offsets[e] = off
		size := base
		if e < rem {
			size++
		}
		off += size
	}
	h.offsets[numEdges] = off
	for e := 0; e < numEdges; e++ {
		shard := devs[h.offsets[e]:h.offsets[e+1]]
		sched, err := core.NewScheduler(shard, ch, modelBits, params)
		if err != nil {
			return nil, fmt.Errorf("selection: edge %d: %w", e, err)
		}
		h.scheds[e] = sched
	}
	return h, nil
}

// Name implements fl.Planner.
func (h *HierHELCFL) Name() string { return "HELCFL-hier" }

// NumEdges implements fl.EdgeTopology.
func (h *HierHELCFL) NumEdges() int { return len(h.scheds) }

// EdgeOf implements fl.EdgeTopology: the shard owning fleet index q.
func (h *HierHELCFL) EdgeOf(q int) int {
	// First offset boundary strictly above q, over the E interior bounds.
	return sort.SearchInts(h.offsets[1:], q+1)
}

// SetTrace implements fl.TracedPlanner; each edge's plan records a
// sched.edge span (with the Algorithm 2/3 child spans beneath it) under the
// engine's plan span.
func (h *HierHELCFL) SetTrace(rec *span.Recorder, parent span.Ref) {
	h.tr, h.trParent = rec, parent
}

// PlanRound implements fl.Planner: every edge plans its own shard, and the
// parts concatenate edge-major with shard-local indices lifted to fleet
// indices. Each edge's decision depends only on its own scheduler, so the
// result is deterministic regardless of the goroutine interleaving.
func (h *HierHELCFL) PlanRound(j int) ([]int, []float64) {
	e0 := len(h.scheds)
	if e0 == 1 {
		h.planEdge(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(e0)
		for e := 0; e < e0; e++ {
			go func(e int) {
				defer wg.Done()
				h.planEdge(e)
			}(e)
		}
		wg.Wait()
	}
	total := 0
	for e := range h.selParts {
		total += len(h.selParts[e])
	}
	selected := make([]int, 0, total)
	freqs := make([]float64, 0, total)
	for e := range h.selParts {
		off := h.offsets[e]
		for i, l := range h.selParts[e] {
			selected = append(selected, off+l)
			freqs = append(freqs, h.freqParts[e][i])
		}
	}
	return selected, freqs
}

// planEdge runs Algorithm 2 + 3 on edge e's shard scheduler, storing the
// shard-local plan in selParts/freqParts[e].
func (h *HierHELCFL) planEdge(e int) {
	sched := h.scheds[e]
	sp := h.tr.Start(h.trParent, "sched.edge")
	sp.SetInt("edge", int64(e))
	sp.SetInt("edge.users", int64(sched.NumUsers()))
	sched.SetTrace(h.tr, sp.Ref())
	sel, freqs := sched.PlanRound(h.ch, h.bits)
	h.selParts[e], h.freqParts[e] = sel, freqs
	sp.SetInt("edge.selected", int64(len(sel)))
	sp.End()
}

// SelectionDetail implements fl.DecisionDetailer: the per-edge Eq. (20)
// utility vectors and decay counters stitched back into fleet order. Nil
// before the first round.
func (h *HierHELCFL) SelectionDetail() ([]float64, []int) {
	q := h.offsets[len(h.offsets)-1]
	util := make([]float64, 0, q)
	alpha := make([]int, 0, q)
	for _, sched := range h.scheds {
		u := sched.LastUtilities()
		if u == nil {
			return nil, nil
		}
		util = append(util, u...)
		alpha = append(alpha, sched.Appearances()...)
	}
	return util, alpha
}

// hierState is the gob wire form of the planner's cross-round state: one
// decay-state snapshot per edge shard, in edge order.
type hierState struct {
	Edges []core.SchedulerState
}

// ExportState implements fl.StatefulPlanner.
func (h *HierHELCFL) ExportState() ([]byte, error) {
	st := hierState{Edges: make([]core.SchedulerState, len(h.scheds))}
	for e, sched := range h.scheds {
		st.Edges[e] = sched.ExportState()
	}
	return gobEncode(st)
}

// ImportState implements fl.StatefulPlanner.
func (h *HierHELCFL) ImportState(raw []byte) error {
	var st hierState
	if err := gobDecode(raw, &st); err != nil {
		return err
	}
	if len(st.Edges) != len(h.scheds) {
		return fmt.Errorf("selection: state has %d edge shards, planner has %d", len(st.Edges), len(h.scheds))
	}
	for e, sched := range h.scheds {
		if err := sched.ImportState(st.Edges[e]); err != nil {
			return fmt.Errorf("selection: edge %d: %w", e, err)
		}
	}
	return nil
}
