package deploy

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"helcfl/internal/core"
	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/obs/span"
	"helcfl/internal/selection"
	"helcfl/internal/wireless"
)

// TestTraceHeaderRoundTrip pins the wire encoding of span refs.
func TestTraceHeaderRoundTrip(t *testing.T) {
	ref := span.Ref{Trace: 0xabc, Span: 42}
	got, ok := ParseTraceHeader(FormatTraceHeader(ref))
	if !ok || got != ref {
		t.Fatalf("round trip: %+v ok=%v", got, ok)
	}
	if _, ok := ParseTraceHeader(""); ok {
		t.Fatal("empty header accepted")
	}
	if _, ok := ParseTraceHeader("garbage"); ok {
		t.Fatal("malformed header accepted")
	}
}

// TestCrossProcessStitching runs a tiny real-HTTP deployment with tracing
// on both sides and asserts the tentpole's stitching property: the
// server's handler spans adopt the client's trace ID and parent at the
// client's request spans, so one round can be reassembled across the two
// processes' span files.
func TestCrossProcessStitching(t *testing.T) {
	const users = 2
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 2, H: 4, W: 4, TrainN: 40 * users, TestN: 40, Noise: 0.7, Seed: 5,
	})
	rng := rand.New(rand.NewSource(6))
	part := dataset.PartitionIID(synth.Train, users, rng)
	userData := dataset.UserDatasets(synth.Train, part)
	spec := nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4}

	serverRec := span.NewRecorder(2000, span.Options{})
	srv, err := NewServer(ServerConfig{
		Spec:          spec,
		Seed:          9,
		ExpectedUsers: users,
		Rounds:        2,
		Trace:         serverRec,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			return selection.NewHELCFL(devs, wireless.DefaultChannel(), 1e5, core.Params{
				Eta: 0.7, Fraction: 1.0, StepsPerRound: 1, Clamp: true,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	clientRecs := make([]*span.Recorder, users)
	errs := make(chan error, users)
	for q := 0; q < users; q++ {
		clientRecs[q] = span.NewRecorder(uint64(1000+q), span.Options{})
		c, err := NewClient(ClientConfig{
			BaseURL: ts.URL,
			Info: RegisterRequest{
				User: q, NumSamples: userData[q].N(),
				FMin: 0.3e9, FMax: 0.5e9, TxPower: 0.2, ChannelGain: 1.0,
			},
			Data: userData[q], Spec: spec,
			LR: 0.3, LocalSteps: 1, PollInterval: time.Millisecond,
			Trace: clientRecs[q],
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { errs <- c.Run() }()
	}
	for q := 0; q < users; q++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Every server handler span must carry a client's trace ID (1000 or
	// 1001), never the server's own (2000): each request arrived with a
	// Helcfl-Trace header, and the handler span must adopt it.
	serverSpans := serverRec.Snapshot()
	if len(serverSpans) == 0 {
		t.Fatal("server recorded no spans")
	}
	clientSpanIDs := map[span.Ref]bool{}
	for q := 0; q < users; q++ {
		for _, rec := range clientRecs[q].Snapshot() {
			if rec.Name != "http.client" {
				t.Fatalf("unexpected client span %q", rec.Name)
			}
			clientSpanIDs[span.Ref{Trace: rec.Trace, Span: rec.Span}] = true
		}
	}
	for _, rec := range serverSpans {
		if rec.Name != "http.server" {
			continue
		}
		if rec.Trace != 1000 && rec.Trace != 1001 {
			t.Fatalf("server span has trace %d, not stitched into a client trace", rec.Trace)
		}
		if !clientSpanIDs[span.Ref{Trace: rec.Trace, Span: rec.Parent}] {
			t.Fatalf("server span parent %016x-%016x is not a client request span", rec.Trace, rec.Parent)
		}
	}

	// The flight recorder endpoint serves a dump that span.Read accepts
	// and that contains the round lifecycle events.
	resp, err := http.Get(ts.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	dump := sb.String()
	if !strings.Contains(dump, `"flightrec":1`) {
		t.Fatal("flight dump missing meta line")
	}
	if !strings.Contains(dump, `"event":"RoundEnd"`) {
		t.Fatal("flight dump missing round events")
	}
	if _, err := span.Read(strings.NewReader(dump)); err != nil {
		t.Fatalf("span.Read on flight dump: %v", err)
	}
}
