//go:build chaos

package deploy

import (
	"fmt"
	"testing"
)

// Exhaustive kill-point sweep, opt-in via `-tags chaos` (make recover): one
// campaign per possible crash offset — after every accepted upload and at
// every round boundary — each restarted from checkpoint and required to
// reproduce the uninterrupted trajectory bit-for-bit. The tier-1 recovery
// tests pin a handful of representative points; this sweep covers all of
// them.
func TestRecoverStressEveryKillPoint(t *testing.T) {
	env := newConfEnv(t, 4, 3)
	ref := cleanReference(t, env)
	totalUploads := 0
	for _, s := range ref {
		totalUploads += len(s.Uploaded)
	}

	// Crash after the k-th accepted upload, for every k. k landing on a
	// round's final upload is a boundary kill (the next round is planned and
	// snapshotted before the ack returns); every other k is mid-round.
	for k := 1; k < totalUploads; k++ {
		k := k
		t.Run(fmt.Sprintf("after-upload-%d", k), func(t *testing.T) {
			rig := newRecoveryRig(t, env)
			fired := false
			rig.proxy.trigger = func() bool {
				if !fired && rig.proxy.uploads >= k {
					fired = true
					return true
				}
				return false
			}
			for q, err := range rig.run() {
				if err != nil {
					t.Fatalf("client %d: %v", q, err)
				}
			}
			rig.verify(ref)
			if !bitsEqual(rig.lastServer().Global().GetFlatParams(), ref[len(ref)-1].Global) {
				t.Fatal("final global model diverges from uninterrupted run")
			}
		})
	}

	// Crash at every round-closure boundary.
	for closed := 1; closed < env.rounds; closed++ {
		closed := closed
		t.Run(fmt.Sprintf("after-round-%d", closed-1), func(t *testing.T) {
			rig := newRecoveryRig(t, env)
			fired := false
			rig.proxy.trigger = func() bool {
				if !fired && rig.roundsClosed() >= closed {
					fired = true
					return true
				}
				return false
			}
			for q, err := range rig.run() {
				if err != nil {
					t.Fatalf("client %d: %v", q, err)
				}
			}
			rig.verify(ref)
			if !bitsEqual(rig.lastServer().Global().GetFlatParams(), ref[len(ref)-1].Global) {
				t.Fatal("final global model diverges from uninterrupted run")
			}
		})
	}
}
