package deploy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"helcfl/internal/chaos"
	"helcfl/internal/device"
	"helcfl/internal/fl"
)

// Satellite: client lifecycle robustness — context propagation, typed
// shutdown errors, and the raw HTTP idempotency contract the retry layer
// depends on.

// newTestServer builds a server over env's planner and serves it on loopback.
func newTestServer(t *testing.T, env *confEnv, rounds int) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Spec:          env.spec,
		Seed:          env.seed,
		ExpectedUsers: env.users,
		Rounds:        rounds,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			return env.newPlanner(devs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func newTestClient(t *testing.T, env *confEnv, ts *httptest.Server, q int, cfg ClientConfig) *Client {
	t.Helper()
	cfg.BaseURL = ts.URL
	cfg.Info = env.clientInfo(q)
	cfg.Data = env.userData[q]
	cfg.Spec = env.spec
	if cfg.LR == 0 {
		cfg.LR = env.lr
	}
	if cfg.LocalSteps == 0 {
		cfg.LocalSteps = 1
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Millisecond
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClientContextCancel: cancelling the context stops a client that is
// stuck polling (the fleet never completes registration) with ctx.Err().
func TestClientContextCancel(t *testing.T) {
	env := newConfEnv(t, 2, 1)
	_, ts := newTestServer(t, env, 1)

	// Only user 0 shows up, so the server stays in PhaseRegistering and the
	// client polls forever — until the context fires.
	c := newTestClient(t, env, ts, 0, ClientConfig{PollInterval: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.RunContext(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not stop after cancellation")
	}
}

// TestClientServerStopTypedError: when the server goes away mid-campaign the
// client fails with an error wrapping ErrUnavailable — a typed signal callers
// can match — instead of an opaque transport string or a hang.
func TestClientServerStopTypedError(t *testing.T) {
	env := newConfEnv(t, 1, 1)
	env.fraction = 1.0
	_, ts := newTestServer(t, env, 100000) // far more rounds than we let run

	// Slow every model fetch so the campaign is guaranteed to be mid-round
	// when the listener dies.
	script := chaos.NewScript(chaos.Rule{
		Path: "/model", Round: chaos.Any, User: chaos.Any,
		Fault: chaos.FaultLatency, Latency: 5 * time.Millisecond,
	})
	c := newTestClient(t, env, ts, 0, ClientConfig{
		MaxRetries:  2,
		BaseBackoff: time.Millisecond,
		HTTPClient:  chaos.NewTransport(script, 0).Client(),
	})
	done := make(chan error, 1)
	go func() { done <- c.Run() }()

	// Wait until training is underway, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("server never reached the training phase")
		}
		resp, err := http.Get(ts.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Phase == PhaseTraining && st.Round >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ts.CloseClientConnections()
	ts.Close()

	select {
	case err := <-done:
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("client returned %v, want ErrUnavailable", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not fail after server shutdown")
	}
}

// TestRegisterIdempotentAfterTrainingStarts pins the raw HTTP contract: a
// registered device re-registering after the phase flipped (its original ack
// was lost) gets 200, while a stranger gets 409.
func TestRegisterIdempotentAfterTrainingStarts(t *testing.T) {
	env := newConfEnv(t, 2, 1)
	_, ts := newTestServer(t, env, 1)

	post := func(req RegisterRequest) int {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(env.clientInfo(0)); code != http.StatusOK {
		t.Fatalf("first register: status %d", code)
	}
	// Redelivery during the registering phase is accepted too.
	if code := post(env.clientInfo(0)); code != http.StatusOK {
		t.Fatalf("re-register while registering: status %d", code)
	}
	// User 1 completes the fleet; training starts.
	if code := post(env.clientInfo(1)); code != http.StatusOK {
		t.Fatalf("second register: status %d", code)
	}
	// Known device retrying after the flip: idempotent 200.
	if code := post(env.clientInfo(0)); code != http.StatusOK {
		t.Fatalf("re-register after training start: status %d", code)
	}
	// Out-of-fleet device after the flip: rejected.
	bad := env.clientInfo(0)
	bad.User = 7
	if code := post(bad); code != http.StatusConflict {
		t.Fatalf("stranger register after training start: status %d, want 409", code)
	}
}

// TestUploadDedupWithinRound pins upload idempotency at the HTTP level: the
// second delivery of the same (round, user) model is acknowledged without
// being counted again.
func TestUploadDedupWithinRound(t *testing.T) {
	env := newConfEnv(t, 2, 1)
	env.fraction = 1.0 // both users selected, so one upload cannot close the round
	_, ts := newTestServer(t, env, 1)

	for q := 0; q < env.users; q++ {
		body, _ := json.Marshal(env.clientInfo(q))
		resp, err := http.Post(ts.URL+"/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	status := func() StatusResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := status(); st.Phase != PhaseTraining {
		t.Fatalf("phase = %s after full registration, want training", st.Phase)
	}

	// The round-0 broadcast doubles as a valid upload payload.
	resp, err := http.Get(ts.URL + "/model?round=0")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	upload := func(user int) int {
		t.Helper()
		url := fmt.Sprintf("%s/upload?user=%d&round=0", ts.URL, user)
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := upload(0); code != http.StatusNoContent {
		t.Fatalf("first upload: status %d", code)
	}
	if code := upload(0); code != http.StatusNoContent {
		t.Fatalf("duplicate upload: status %d, want 204", code)
	}
	if st := status(); st.Uploads != 1 {
		t.Fatalf("uploads after duplicate = %d, want 1", st.Uploads)
	}
	// The second user's upload completes the cohort and ends the campaign.
	if code := upload(1); code != http.StatusNoContent {
		t.Fatalf("second user upload: status %d", code)
	}
	if st := status(); st.Phase != PhaseDone {
		t.Fatalf("phase = %s after final upload, want done", st.Phase)
	}
}
