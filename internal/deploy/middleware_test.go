package deploy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/selection"
)

func TestMiddlewarePanicRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	reqs := reg.CounterVec("helcfl_http_requests_total", "", "path")
	panics := reg.Counter("helcfl_http_panics_total", "")
	var mu sync.Mutex
	var logLines []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		logLines = append(logLines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprint(w, "fine") })
	ts := httptest.NewServer(Middleware(mux, logf, reqs, panics, nil))
	defer ts.Close()

	// A panicking handler must yield a 500, not kill the server.
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", resp.StatusCode)
	}

	// The server is still alive and serving after the panic.
	resp, err = http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatalf("server died after panic: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "fine" {
		t.Fatalf("post-panic request: %d %q", resp.StatusCode, body)
	}

	if got := panics.Value(); got != 1 {
		t.Fatalf("panics counter = %g, want 1", got)
	}
	if got := reqs.With("/boom").Value(); got != 1 {
		t.Fatalf("/boom request count = %g, want 1", got)
	}
	if got := reqs.With("/ok").Value(); got != 1 {
		t.Fatalf("/ok request count = %g, want 1", got)
	}

	mu.Lock()
	defer mu.Unlock()
	var sawPanic, sawAccess bool
	for _, line := range logLines {
		if strings.Contains(line, "panic serving GET /boom") && strings.Contains(line, "kaboom") {
			sawPanic = true
		}
		if strings.Contains(line, "GET /ok 200") {
			sawAccess = true
		}
	}
	if !sawPanic || !sawAccess {
		t.Fatalf("log lines missing panic/access entries: %q", logLines)
	}
}

func TestMiddlewarePanicAfterWriteKeepsStatus(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/half", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("too late for a 500")
	})
	ts := httptest.NewServer(Middleware(mux, nil, nil, nil, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/half")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Headers were already sent; the middleware must not try to rewrite them.
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
}

func TestServerExposesObservabilityEndpoints(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Spec:          nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4},
		Seed:          1,
		ExpectedUsers: 2,
		Rounds:        1,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			return selection.NewClassicFL(devs, 1.0, newSeededRand(1)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// /metrics exposes the server families, including the request counter
	// incremented by the healthz hit above.
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`helcfl_http_requests_total{path="/healthz"} 1`,
		"helcfl_server_round 0",
		"helcfl_server_uploads_total 0",
		"helcfl_http_panics_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The pprof index is mounted (the CPU profile endpoint hangs for its
	// sampling window, so probe the index and symbol endpoints instead).
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/symbol"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/symbol = %d", code)
	}

	// Two servers with default (nil) Metrics must not share registries.
	srv2, err := NewServer(ServerConfig{
		Spec:          nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4},
		Seed:          2,
		ExpectedUsers: 2,
		Rounds:        1,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			return selection.NewClassicFL(devs, 1.0, newSeededRand(2)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Metrics() == srv2.Metrics() {
		t.Fatal("servers unexpectedly share a metrics registry")
	}
}
