package deploy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"helcfl/internal/core"
	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/selection"
	"helcfl/internal/wireless"
)

// testDeployment spins an FLCC server plus `users` clients over real HTTP
// and returns after every client exits.
func testDeployment(t *testing.T, users, rounds int) (*Server, []*Client, *dataset.Synth) {
	t.Helper()
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 2, H: 4, W: 4, TrainN: 40 * users, TestN: 80, Noise: 0.7, Seed: 5,
	})
	rng := rand.New(rand.NewSource(6))
	part := dataset.PartitionIID(synth.Train, users, rng)
	userData := dataset.UserDatasets(synth.Train, part)
	spec := nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4}

	srv, err := NewServer(ServerConfig{
		Spec:          spec,
		Seed:          9,
		ExpectedUsers: users,
		Rounds:        rounds,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			return selection.NewHELCFL(devs, wireless.DefaultChannel(), 1e5, core.Params{
				Eta: 0.7, Fraction: 0.5, StepsPerRound: 1, Clamp: true,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	clients := make([]*Client, users)
	var wg sync.WaitGroup
	errs := make([]error, users)
	for q := 0; q < users; q++ {
		c, err := NewClient(ClientConfig{
			BaseURL: ts.URL,
			Info: RegisterRequest{
				User:        q,
				NumSamples:  userData[q].N(),
				FMin:        0.3e9,
				FMax:        0.5e9 + float64(q)*0.1e9,
				TxPower:     0.2,
				ChannelGain: 1.0,
			},
			Data:         userData[q],
			Spec:         spec,
			LR:           0.3,
			LocalSteps:   1,
			PollInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[q] = c
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			errs[q] = clients[q].Run()
		}(q)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deployment did not finish in 30s")
	}
	for q, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", q, err)
		}
	}
	return srv, clients, synth
}

func TestDeploymentEndToEnd(t *testing.T) {
	srv, clients, synth := testDeployment(t, 6, 8)

	// The server finished its budget.
	if srv.phase != PhaseDone {
		t.Fatalf("server phase = %s", srv.phase)
	}
	// Every round trained ⌈Q·C⌉ users; across 8 rounds with C=0.5 that is
	// 24 local updates total.
	total := 0
	for _, c := range clients {
		total += c.RoundsTrained
	}
	if total != 8*3 {
		t.Fatalf("total local updates = %d, want 24", total)
	}
	// The aggregated global model beats chance on held-out data.
	global := srv.Global()
	if global == nil {
		t.Fatal("no global model")
	}
	_, acc := fl.Evaluate(global, synth.Test, true)
	if acc < 0.5 {
		t.Fatalf("deployed FL accuracy %g, want > 0.5", acc)
	}
	// Byte accounting is consistent: each upload and each download is one
	// full model payload.
	bits := nn.ModelBits(global)
	if srv.bytesUp != int64(bits/8)*24 {
		t.Fatalf("bytes up = %d, want %d", srv.bytesUp, int64(bits/8)*24)
	}
	if srv.bytesDown < srv.bytesUp {
		t.Fatalf("downloads (%d) should be at least uploads (%d)", srv.bytesDown, srv.bytesUp)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	spec := nn.ModelSpec{Kind: "logistic", InC: 1, H: 2, W: 2, Classes: 2}
	srv, err := NewServer(ServerConfig{
		Spec: spec, Seed: 1, ExpectedUsers: 2, Rounds: 1,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			return selection.NewHELCFL(devs, wireless.DefaultChannel(), 1e4, core.DefaultParams())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Out-of-range user.
	body, _ := json.Marshal(RegisterRequest{User: 5, NumSamples: 3, FMin: 1, FMax: 2, TxPower: 1, ChannelGain: 1})
	resp, err := http.Post(ts.URL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad user register = %s", resp.Status)
	}
	// Invalid device parameters.
	body, _ = json.Marshal(RegisterRequest{User: 0, NumSamples: 3, FMin: 2, FMax: 1, TxPower: 1, ChannelGain: 1})
	resp, err = http.Post(ts.URL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid device register = %s", resp.Status)
	}
	// Model fetch before training.
	resp, err = http.Get(ts.URL + "/model?round=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early model fetch = %s", resp.Status)
	}
	// Upload before training.
	resp, err = http.Post(ts.URL+"/upload?user=0&round=0", "application/octet-stream", bytes.NewReader([]byte{1}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early upload = %s", resp.Status)
	}
	// Status always answers.
	resp, err = http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Phase != PhaseRegistering || st.Rounds != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestServerRejectsRogueUploads(t *testing.T) {
	users := 3
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 2, C: 1, H: 2, W: 2, TrainN: 12, TestN: 8, Noise: 0.5, Seed: 1,
	})
	part := dataset.PartitionIID(synth.Train, users, rand.New(rand.NewSource(1)))
	userData := dataset.UserDatasets(synth.Train, part)
	spec := nn.ModelSpec{Kind: "logistic", InC: 1, H: 2, W: 2, Classes: 2}
	srv, err := NewServer(ServerConfig{
		Spec: spec, Seed: 2, ExpectedUsers: users, Rounds: 3,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			// Select exactly one user per round so the others are rogue.
			return selection.NewHELCFL(devs, wireless.DefaultChannel(), 1e4, core.Params{
				Eta: 0.7, Fraction: 0.01, StepsPerRound: 1, Clamp: true,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for q := 0; q < users; q++ {
		body, _ := json.Marshal(RegisterRequest{
			User: q, NumSamples: userData[q].N(),
			FMin: 0.3e9, FMax: 1e9, TxPower: 0.2, ChannelGain: 1,
		})
		resp, err := http.Post(ts.URL+"/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// Find the selected user and a rogue user.
	selectedUser := -1
	for q := 0; q < users; q++ {
		resp, err := http.Get(fmt.Sprintf("%s/poll?user=%d", ts.URL, q))
		if err != nil {
			t.Fatal(err)
		}
		var pr PollResponse
		_ = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if pr.Selected {
			selectedUser = q
		}
	}
	if selectedUser == -1 {
		t.Fatal("no user selected")
	}
	rogue := (selectedUser + 1) % users

	// A valid payload from the wrong user must be rejected.
	payload := nn.ParamBytes(spec.Build(rand.New(rand.NewSource(3))))
	resp, err := http.Post(fmt.Sprintf("%s/upload?user=%d&round=0", ts.URL, rogue),
		"application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("rogue upload = %s, want 403", resp.Status)
	}
	// A garbage payload from the right user must be rejected.
	resp, err = http.Post(fmt.Sprintf("%s/upload?user=%d&round=0", ts.URL, selectedUser),
		"application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload = %s, want 400", resp.Status)
	}
	// A correct upload advances the round; a duplicate for the old round
	// then conflicts.
	resp, err = http.Post(fmt.Sprintf("%s/upload?user=%d&round=0", ts.URL, selectedUser),
		"application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid upload = %s, want 204", resp.Status)
	}
	resp, err = http.Post(fmt.Sprintf("%s/upload?user=%d&round=0", ts.URL, selectedUser),
		"application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale upload = %s, want 409", resp.Status)
	}
}

func TestNewServerValidation(t *testing.T) {
	spec := nn.ModelSpec{Kind: "logistic", InC: 1, H: 2, W: 2, Classes: 2}
	factory := func(devs []*device.Device) (fl.Planner, error) { return nil, nil }
	if _, err := NewServer(ServerConfig{Spec: spec, ExpectedUsers: 0, Rounds: 1, NewPlanner: factory}); err == nil {
		t.Fatal("zero users must fail")
	}
	if _, err := NewServer(ServerConfig{Spec: spec, ExpectedUsers: 1, Rounds: 0, NewPlanner: factory}); err == nil {
		t.Fatal("zero rounds must fail")
	}
	if _, err := NewServer(ServerConfig{Spec: spec, ExpectedUsers: 1, Rounds: 1}); err == nil {
		t.Fatal("nil factory must fail")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("empty config must fail")
	}
}
