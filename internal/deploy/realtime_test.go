package deploy

import (
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"helcfl/internal/core"
	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/selection"
	"helcfl/internal/wireless"
)

// runTimedDeployment runs a 3-round deployment and returns its wall time.
func runTimedDeployment(t *testing.T, timeScale float64) time.Duration {
	t.Helper()
	const users = 3
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 2, C: 1, H: 2, W: 2, TrainN: 12, TestN: 8, Noise: 0.5, Seed: 2,
	})
	part := dataset.PartitionIID(synth.Train, users, rand.New(rand.NewSource(3)))
	shards := dataset.UserDatasets(synth.Train, part)
	spec := nn.ModelSpec{Kind: "logistic", InC: 1, H: 2, W: 2, Classes: 2}
	srv, err := NewServer(ServerConfig{
		Spec: spec, Seed: 4, ExpectedUsers: users, Rounds: 3,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			return selection.NewHELCFL(devs, wireless.DefaultChannel(), 1e4, core.Params{
				Eta: 0.7, Fraction: 1.0, StepsPerRound: 1, Clamp: true,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for q := 0; q < users; q++ {
		c, err := NewClient(ClientConfig{
			BaseURL: ts.URL,
			Info: RegisterRequest{
				User: q, NumSamples: shards[q].N(),
				FMin: 0.3e9, FMax: 1e9 + float64(q)*0.4e9,
				TxPower: 0.2, ChannelGain: 1,
			},
			Data: shards[q], Spec: spec,
			LR: 0.2, LocalSteps: 1,
			PollInterval:    time.Millisecond,
			TimeScale:       timeScale,
			CyclesPerUpdate: 1e9, // 1 s at 1 GHz before scaling
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.Run()
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func TestRealtimeDVFSSlowsDeployment(t *testing.T) {
	fast := runTimedDeployment(t, 0)
	// 3 rounds × ~1 s of simulated compute × scale 0.03 ≈ ≥90 ms extra.
	slow := runTimedDeployment(t, 0.03)
	if slow < fast+50*time.Millisecond {
		t.Fatalf("realtime DVFS had no effect: %v vs %v", slow, fast)
	}
}
