package deploy

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"helcfl/internal/checkpoint"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/obs/flight"
	"helcfl/internal/obs/span"
)

// RoundSummary describes one closed round, delivered to ServerConfig.RoundHook.
type RoundSummary struct {
	// Round is the closed round's index.
	Round int
	// Selected is the planner's cohort in selection order; Uploaded and
	// Missing partition it (both in selection order).
	Selected, Uploaded, Missing []int
	// Partial reports that the straggler deadline closed the round before
	// every selected upload arrived.
	Partial bool
	// Global is a copy of the post-aggregation flat parameter vector.
	Global []float64
}

// ServerConfig configures the FLCC server.
type ServerConfig struct {
	// Spec is the shared model architecture; the server owns the global
	// model.
	Spec nn.ModelSpec
	// Seed initializes the global model.
	Seed int64
	// ExpectedUsers is the fleet size Q; training starts when all have
	// registered.
	ExpectedUsers int
	// Rounds is the round budget J.
	Rounds int
	// NewPlanner builds the scheduling policy once the fleet's resource
	// information is known (the devices carry what registration reported).
	NewPlanner func(devs []*device.Device) (fl.Planner, error)
	// RoundDeadline, when positive, is the straggler deadline: once it has
	// elapsed since the round opened, the server closes the round with a
	// partial aggregation as soon as at least Quorum of the selected cohort
	// has uploaded; users that never delivered are dropped from the round
	// (and reported via Sink dropout events). Below quorum the deadline
	// re-arms — the server keeps waiting rather than aggregate nothing.
	// 0 disables the deadline: every selected upload is awaited, as before.
	RoundDeadline time.Duration
	// Quorum is the fraction of the selected cohort required for a partial
	// aggregation (ceil(Quorum×|selected|), at least 1). 0 defaults to 0.5.
	Quorum float64
	// Sink, when non-nil, receives the server's round lifecycle as engine
	// events (round start, selection, dropouts, aggregation, round end).
	// Calls are serialized under the server's lock; keep sinks fast.
	Sink obs.EventSink
	// RoundHook, when non-nil, observes every closed round (called with the
	// server lock held; keep it fast). Tests use it to pin the global-model
	// trajectory.
	RoundHook func(RoundSummary)
	// Metrics is the registry backing /metrics; nil allocates a private one
	// (so parallel test servers never share counters).
	Metrics *obs.Registry
	// Log receives request and panic log lines; nil disables logging.
	Log Logf
	// Trace, when non-nil, records an "http.server" span per request —
	// parented at the caller's Helcfl-Trace header when present, so a
	// round stitches across client and server traces — and enables the
	// flight recorder: the span ring plus the last engine events are
	// served at /debug/flightrec for live crash forensics.
	Trace *span.Recorder
	// CheckpointDir, when non-empty, enables durable state: a snapshot file
	// written at every round boundary and a write-ahead log of accepted
	// uploads, via internal/checkpoint. See persist.go for the recovery
	// contract.
	CheckpointDir string
	// Resume restores the campaign from CheckpointDir at construction. A
	// missing snapshot is not an error (first incarnation starts fresh); a
	// corrupt one is.
	Resume bool
}

// Server is the FLCC: an http.Handler exposing the FL protocol.
type Server struct {
	cfg     ServerConfig
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in logging/recovery middleware
	metrics *obs.Registry

	// Server-level metrics, registered once at construction.
	mReqs        *obs.CounterVec
	mPanics      *obs.Counter
	mUploads     *obs.Counter
	mAggs        *obs.Counter
	mPartial     *obs.Counter
	mDropouts    *obs.Counter
	mRound       *obs.Gauge
	mBytesUp     *obs.Counter
	mBytesDown   *obs.Counter
	mRejected    *obs.Counter
	mCkptWrites  *obs.Counter
	mCkptErrors  *obs.Counter
	mRestores    *obs.Counter
	mWALAppends  *obs.Counter
	mWALReplays  *obs.Counter
	mRecoverySec *obs.Gauge

	mu         sync.Mutex
	phase      Phase
	closed     bool
	devices    []*device.Device
	registered map[int]bool
	planner    fl.Planner

	round      int
	selOrder   []int           // current round's cohort in planner order
	selected   map[int]float64 // user → assigned frequency
	uploads    map[int][]float64
	global     *nn.Sequential
	payload    []byte // serialized global model for the current round
	roundTimer *time.Timer
	bytesUp    int64
	bytesDown  int64
	lastLoss   float64
	wal        *checkpoint.WAL // nil when CheckpointDir is unset
}

// NewServer validates the configuration and returns a server ready to
// accept registrations.
func NewServer(cfg ServerConfig) (*Server, error) {
	switch {
	case cfg.ExpectedUsers <= 0:
		return nil, fmt.Errorf("deploy: non-positive fleet size %d", cfg.ExpectedUsers)
	case cfg.Rounds <= 0:
		return nil, fmt.Errorf("deploy: non-positive round budget %d", cfg.Rounds)
	case cfg.NewPlanner == nil:
		return nil, fmt.Errorf("deploy: no planner factory")
	case cfg.RoundDeadline < 0:
		return nil, fmt.Errorf("deploy: negative round deadline %v", cfg.RoundDeadline)
	case cfg.Quorum < 0 || cfg.Quorum > 1:
		return nil, fmt.Errorf("deploy: quorum %g outside [0,1]", cfg.Quorum)
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = 0.5
	}
	s := &Server{
		cfg:        cfg,
		phase:      PhaseRegistering,
		devices:    make([]*device.Device, cfg.ExpectedUsers),
		registered: map[int]bool{},
		uploads:    map[int][]float64{},
	}
	s.metrics = cfg.Metrics
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.mReqs = s.metrics.CounterVec("helcfl_http_requests_total", "HTTP requests served, by path.", "path")
	s.mPanics = s.metrics.Counter("helcfl_http_panics_total", "Handler panics recovered by the middleware.")
	s.mUploads = s.metrics.Counter("helcfl_server_uploads_total", "Accepted model uploads.")
	s.mAggs = s.metrics.Counter("helcfl_server_aggregations_total", "Completed FedAvg aggregations.")
	s.mPartial = s.metrics.Counter("helcfl_server_partial_rounds_total", "Rounds closed by the straggler deadline with a partial cohort.")
	s.mDropouts = s.metrics.Counter("helcfl_server_dropouts_total", "Selected users whose upload missed the straggler deadline.")
	s.mRound = s.metrics.Gauge("helcfl_server_round", "Current training round.")
	s.mBytesUp = s.metrics.Counter("helcfl_server_bytes_up_total", "Model payload bytes received from users.")
	s.mBytesDown = s.metrics.Counter("helcfl_server_bytes_down_total", "Model payload bytes broadcast to users.")
	s.mRejected = s.metrics.Counter("helcfl_server_rejected_uploads_total", "Uploads rejected as malformed or non-finite.")
	s.mCkptWrites = s.metrics.Counter("helcfl_checkpoint_writes_total", "Durable snapshots written.")
	s.mCkptErrors = s.metrics.Counter("helcfl_checkpoint_errors_total", "Snapshot writes that failed (state retried at the next boundary).")
	s.mRestores = s.metrics.Counter("helcfl_checkpoint_restores_total", "Campaign restores from a snapshot.")
	s.mWALAppends = s.metrics.Counter("helcfl_wal_records_total", "Upload records appended to the write-ahead log.")
	s.mWALReplays = s.metrics.Counter("helcfl_wal_replayed_total", "Upload records re-applied from the write-ahead log during recovery.")
	s.mRecoverySec = s.metrics.Gauge("helcfl_recovery_seconds", "Wall-clock duration of the last restore, including WAL replay.")
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/register", s.handleRegister)
	s.mux.HandleFunc("/poll", s.handlePoll)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/upload", s.handleUpload)
	s.mux.HandleFunc("/status", s.handleStatus)
	obs.MountDebug(s.mux, s.metrics)
	if s.cfg.Trace != nil {
		// Flight recorder: tee the event stream into a ring and expose the
		// combined span+event dump for live inspection.
		fr := flight.New(s.cfg.Trace, 512)
		s.cfg.Sink = obs.Multi(s.cfg.Sink, fr.Sink())
		s.mux.Handle("/debug/flightrec", fr.Handler())
	}
	s.handler = Middleware(s.mux, cfg.Log, s.mReqs, s.mPanics, s.cfg.Trace)
	if cfg.CheckpointDir != "" {
		s.mu.Lock()
		err := s.initDurabilityLocked()
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Metrics returns the registry backing the server's /metrics endpoint.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Close quiesces the server: the straggler-deadline timer stops, the WAL
// file handle closes, and protocol handlers begin answering 503 so retrying
// clients fail over (or reconnect to the next incarnation). Call it from
// test cleanup or alongside the HTTP listener shutdown; pair with
// CheckpointNow first for a graceful handoff.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.stopTimerLocked()
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			s.logf("checkpoint: wal close: %v", err)
		}
		s.wal = nil
	}
}

// Global returns a clone of the current global model (safe at any time).
func (s *Server) Global() *nn.Sequential {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.global == nil {
		return nil
	}
	return s.global.Clone()
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if s.phase != PhaseRegistering {
		// Idempotent re-registration: a device retrying after its original
		// acknowledgement was lost must not be rejected — it is already part
		// of the fleet.
		if req.User >= 0 && req.User < s.cfg.ExpectedUsers && s.registered[req.User] {
			writeJSON(w, RegisterResponse{Registered: len(s.registered), Expected: s.cfg.ExpectedUsers})
			return
		}
		httpError(w, http.StatusConflict, "registration closed")
		return
	}
	if req.User < 0 || req.User >= s.cfg.ExpectedUsers {
		httpError(w, http.StatusBadRequest, "user %d outside fleet of %d", req.User, s.cfg.ExpectedUsers)
		return
	}
	d := &device.Device{
		ID:              req.User,
		FMin:            req.FMin,
		FMax:            req.FMax,
		CyclesPerSample: device.DefaultCyclesPerSample,
		Kappa:           device.DefaultKappa,
		TxPower:         req.TxPower,
		ChannelGain:     req.ChannelGain,
		NumSamples:      req.NumSamples,
	}
	if err := d.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid device: %v", err)
		return
	}
	s.devices[req.User] = d
	s.registered[req.User] = true
	if len(s.registered) == s.cfg.ExpectedUsers {
		if err := s.startTrainingLocked(); err != nil {
			httpError(w, http.StatusInternalServerError, "start training: %v", err)
			return
		}
	}
	writeJSON(w, RegisterResponse{Registered: len(s.registered), Expected: s.cfg.ExpectedUsers})
}

// startTrainingLocked builds the planner and plans round 0. Caller holds mu.
func (s *Server) startTrainingLocked() error {
	planner, err := s.cfg.NewPlanner(s.devices)
	if err != nil {
		return err
	}
	s.planner = planner
	s.global = s.cfg.Spec.Build(newSeededRand(s.cfg.Seed))
	s.phase = PhaseTraining
	s.round = 0
	if s.cfg.Sink != nil {
		s.cfg.Sink.OnRunStart(obs.RunStartEvent{
			Scheme:    planner.Name(),
			Users:     s.cfg.ExpectedUsers,
			MaxRounds: s.cfg.Rounds,
			ModelBits: nn.ModelBits(s.global),
		})
	}
	return s.planRoundLocked()
}

// planRoundLocked asks the planner for the current round's cohort,
// serializes the broadcast payload, and arms the straggler deadline.
// Caller holds mu.
func (s *Server) planRoundLocked() error {
	sel, freqs := s.planner.PlanRound(s.round)
	if len(sel) == 0 {
		return fmt.Errorf("deploy: planner selected no users in round %d", s.round)
	}
	s.selOrder = sel
	s.selected = make(map[int]float64, len(sel))
	for i, q := range sel {
		s.selected[q] = freqs[i]
	}
	s.uploads = map[int][]float64{}
	s.payload = nn.ParamBytes(s.global)
	if s.cfg.Sink != nil {
		s.cfg.Sink.OnRoundStart(obs.RoundStartEvent{Round: s.round})
		s.cfg.Sink.OnSelection(obs.SelectionEvent{Round: s.round, Selected: sel, Freqs: freqs})
	}
	// Durable round boundary: the snapshot captures the post-PlanRound
	// planner state together with the planned cohort, so a restart never
	// re-runs PlanRound (which would double-apply the α decay).
	s.checkpointLocked(true)
	s.armDeadlineLocked()
	return nil
}

// armDeadlineLocked (re)starts the straggler timer for the current round.
// Caller holds mu.
func (s *Server) armDeadlineLocked() {
	if s.cfg.RoundDeadline <= 0 || s.closed {
		return
	}
	s.stopTimerLocked()
	round := s.round
	s.roundTimer = time.AfterFunc(s.cfg.RoundDeadline, func() { s.onDeadline(round) })
}

func (s *Server) stopTimerLocked() {
	if s.roundTimer != nil {
		s.roundTimer.Stop()
		s.roundTimer = nil
	}
}

// quorumLocked is the upload count required to close the current round
// early. Caller holds mu.
func (s *Server) quorumLocked() int {
	need := int(math.Ceil(s.cfg.Quorum * float64(len(s.selOrder))))
	if need < 1 {
		need = 1
	}
	return need
}

// onDeadline fires when the straggler deadline for `round` elapses: at or
// above quorum the round closes with a partial aggregation; below quorum the
// deadline re-arms and the server keeps waiting.
func (s *Server) onDeadline(round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.phase != PhaseTraining || s.round != round {
		return
	}
	if len(s.uploads) >= s.quorumLocked() {
		s.aggregateLocked()
		return
	}
	s.armDeadlineLocked()
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	user, err := strconv.Atoi(r.URL.Query().Get("user"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad user")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	resp := PollResponse{Phase: s.phase, Round: s.round}
	if s.phase == PhaseTraining {
		if f, ok := s.selected[user]; ok {
			// Only users that have not uploaded yet should act.
			if _, uploaded := s.uploads[user]; !uploaded {
				resp.Selected = true
				resp.FreqHz = f
			}
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	round, err := strconv.Atoi(r.URL.Query().Get("round"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad round")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if s.phase != PhaseTraining {
		httpError(w, http.StatusConflict, "not training")
		return
	}
	if round != s.round {
		httpError(w, http.StatusConflict, "round %d is over (current %d)", round, s.round)
		return
	}
	s.bytesDown += int64(len(s.payload))
	s.mBytesDown.Add(float64(len(s.payload)))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(s.payload)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	user, err1 := strconv.Atoi(q.Get("user"))
	round, err2 := strconv.Atoi(q.Get("round"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "bad user/round")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if s.phase != PhaseTraining {
		httpError(w, http.StatusConflict, "not training")
		return
	}
	if round != s.round {
		httpError(w, http.StatusConflict, "stale round %d (current %d)", round, s.round)
		return
	}
	if _, ok := s.selected[user]; !ok {
		httpError(w, http.StatusForbidden, "user %d not selected in round %d", user, round)
		return
	}
	if _, dup := s.uploads[user]; dup {
		// Idempotent redelivery: the first copy was already folded in (or is
		// pending aggregation); acknowledge the retry exactly like the
		// original so at-least-once transports converge.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// Decode the payload through a scratch model to validate its shape, then
	// screen the parameters: one NaN or Inf smuggled into FedAvg would poison
	// the global model for the whole fleet.
	scratch := s.global.Clone()
	if err := nn.LoadParamBytes(scratch, body); err != nil {
		code := http.StatusBadRequest // malformed framing
		if errors.Is(err, nn.ErrShapeMismatch) {
			code = http.StatusUnprocessableEntity // valid framing, wrong model
		}
		s.rejectUploadLocked(w, code, user, "bad payload: %v", err)
		return
	}
	flat := scratch.GetFlatParams()
	for i, v := range flat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			s.rejectUploadLocked(w, http.StatusUnprocessableEntity, user, "non-finite parameter %d (%v)", i, v)
			return
		}
	}
	// Durably log the accepted upload BEFORE acknowledging it: a crash after
	// the WAL fsync replays this exact payload, so the client's retry
	// deduplicates instead of aggregating twice (at-most-once aggregation).
	if s.wal != nil {
		//helcfl:allow(lockheld) WAL-before-ack: the upload must be durable before the lock releases and the aggregation becomes visible, or a crash after the 200 double-counts the retry
		if err := s.wal.Append(checkpoint.Record{
			Type: checkpoint.RecordUpload, Round: round, User: user, Payload: body,
		}); err != nil {
			s.logf("checkpoint: wal append user %d round %d: %v", user, round, err)
			httpError(w, http.StatusInternalServerError, "durable log unavailable")
			return
		}
		s.mWALAppends.Inc()
	}
	s.uploads[user] = flat
	s.bytesUp += int64(len(body))
	s.mUploads.Inc()
	s.mBytesUp.Add(float64(len(body)))
	if len(s.uploads) == len(s.selected) {
		s.aggregateLocked()
	}
	w.WriteHeader(http.StatusNoContent)
}

// rejectUploadLocked answers an invalid upload: the error status, the
// rejection counter, and a dropout event (the user was selected but its
// contribution is discarded). Caller holds mu.
func (s *Server) rejectUploadLocked(w http.ResponseWriter, code, user int, format string, args ...interface{}) {
	s.mRejected.Inc()
	if s.cfg.Sink != nil {
		s.cfg.Sink.OnDropout(obs.DropoutEvent{Round: s.round, User: user})
	}
	s.logf("upload rejected: user=%d round=%d: %s", user, s.round, fmt.Sprintf(format, args...))
	httpError(w, code, format, args...)
}

// aggregateLocked runs FedAvg over the round's uploads — walked in planner
// selection order so the floating-point reduction is bit-for-bit
// reproducible and matches the in-process engine — and advances the round.
// Selected users without an upload (possible only when the straggler
// deadline closed the round) are reported as dropouts. Caller holds mu.
func (s *Server) aggregateLocked() {
	s.stopTimerLocked()
	uploads := make([][]float64, 0, len(s.uploads))
	weights := make([]int, 0, len(s.uploads))
	uploaded := make([]int, 0, len(s.uploads))
	var missing []int
	for _, user := range s.selOrder {
		flat, ok := s.uploads[user]
		if !ok {
			missing = append(missing, user)
			continue
		}
		uploads = append(uploads, flat)
		weights = append(weights, s.devices[user].NumSamples)
		uploaded = append(uploaded, user)
	}
	partial := len(missing) > 0
	s.global.SetFlatParams(fl.FedAvg(uploads, weights))
	s.mAggs.Inc()
	if partial {
		s.mPartial.Inc()
		s.mDropouts.Add(float64(len(missing)))
	}
	closed := s.round
	if s.cfg.Sink != nil {
		for _, user := range missing {
			s.cfg.Sink.OnDropout(obs.DropoutEvent{Round: closed, User: user})
		}
		s.cfg.Sink.OnAggregate(obs.AggregateEvent{Round: closed, Uploads: len(uploads), Failed: len(missing)})
		s.cfg.Sink.OnRoundEnd(obs.RoundEndEvent{Round: closed, Selected: s.selOrder, Failed: len(missing)})
	}
	if s.cfg.RoundHook != nil {
		s.cfg.RoundHook(RoundSummary{
			Round:    closed,
			Selected: append([]int(nil), s.selOrder...),
			Uploaded: uploaded,
			Missing:  missing,
			Partial:  partial,
			Global:   s.global.GetFlatParams(),
		})
	}
	s.round++
	s.mRound.Set(float64(s.round))
	if s.round >= s.cfg.Rounds {
		s.finishLocked()
		return
	}
	if err := s.planRoundLocked(); err != nil {
		// A planner failure mid-run is unrecoverable; finish gracefully.
		s.finishLocked()
	}
}

// finishLocked transitions to PhaseDone. Caller holds mu.
func (s *Server) finishLocked() {
	s.phase = PhaseDone
	s.selOrder = nil
	s.selected = nil
	s.uploads = nil
	s.stopTimerLocked()
	s.checkpointLocked(true)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, StatusResponse{
		Phase:      s.phase,
		Round:      s.round,
		Rounds:     s.cfg.Rounds,
		Registered: len(s.registered),
		Uploads:    len(s.uploads),
		BytesUp:    s.bytesUp,
		BytesDown:  s.bytesDown,
		TrainLoss:  s.lastLoss,
	})
}
