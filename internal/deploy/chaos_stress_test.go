//go:build chaos

package deploy

import (
	"fmt"
	"testing"
	"time"

	"helcfl/internal/chaos"
)

// Randomized soak test, opt-in via `-tags chaos` (make chaos). Every request
// draws faults from a seeded background process; the retry layer plus the
// straggler deadline must still land every campaign. Each seed printed below
// fully reproduces its run — see docs/ROBUSTNESS.md.
func TestChaosStressRandomFaults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Logf("RandomFaults seed %d", seed)
			env := newConfEnv(t, 5, 3)
			script := chaos.NewScript().WithRandom(chaos.RandomFaults{
				Seed:       seed,
				DropProb:   0.05,
				Err5xxProb: 0.05,
				MaxLatency: 3 * time.Millisecond,
			})
			dep := env.runDeploy(t, deployOpts{
				script:        script,
				maxRetries:    8,
				baseBackoff:   time.Millisecond,
				roundDeadline: 250 * time.Millisecond,
				quorum:        0.5,
			})
			for q, err := range dep.clientErrs {
				if err != nil {
					t.Fatalf("seed %d: client %d died: %v", seed, q, err)
				}
			}
			if len(dep.summaries) != env.rounds {
				t.Fatalf("seed %d: closed %d rounds, want %d", seed, len(dep.summaries), env.rounds)
			}
			if script.Injected()[chaos.FaultNone] == script.Requests() {
				t.Fatalf("seed %d: no faults drawn", seed)
			}
		})
	}
}
