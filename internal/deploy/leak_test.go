package deploy

import (
	"testing"

	"helcfl/internal/leaktest"
)

// TestMain gates the whole deploy test binary behind the goroutine-leak
// harness: every server, client loop, and chaos proxy a test starts must be
// shut down and joined by the time the last test finishes.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
