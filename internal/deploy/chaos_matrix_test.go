package deploy

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"helcfl/internal/chaos"
	"helcfl/internal/obs"
)

func sortedInts(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

// The chaos matrix: each scenario injects a scripted fault pattern into the
// loopback campaign and asserts the trajectory still matches the fault-free
// reference bit-for-bit — retries, idempotent redelivery, and selection-
// order aggregation together make transport faults invisible to the math.
// Faults are scheduled on protocol coordinates (path × round × user), so
// every scenario is deterministic and race-clean.

func TestChaosMatrixFaultsDoNotChangeTrajectory(t *testing.T) {
	env := newConfEnv(t, 5, 3)

	clean := env.runDeploy(t, deployOpts{})
	for q, err := range clean.clientErrs {
		if err != nil {
			t.Fatalf("clean client %d: %v", q, err)
		}
	}
	if len(clean.summaries) != env.rounds {
		t.Fatalf("clean run closed %d rounds, want %d", len(clean.summaries), env.rounds)
	}
	ref := clean.summaries[len(clean.summaries)-1].Global

	// Target users that the deterministic Eq. (20) selection actually picks —
	// a rule aimed at an unselected user would never fire.
	sel, _ := clean.planner.rounds()
	first, second := sel[0][0], sel[0][len(sel[0])-1]

	scenarios := []struct {
		name  string
		rules []chaos.Rule
	}{
		{
			// A lost upload is retried until it lands.
			name: "upload-dropped-twice",
			rules: []chaos.Rule{
				{Path: "/upload", Round: 0, User: first, Fault: chaos.FaultDrop, Count: 2},
			},
		},
		{
			// A flapping server answers 5xx; the client backs off and retries.
			name: "model-fetch-5xx",
			rules: []chaos.Rule{
				{Path: "/model", Round: 0, User: first, Fault: chaos.Fault5xx, Count: 3},
			},
		},
		{
			// The server processes the upload but the ack is lost; the retry
			// must hit the (round, user) dedup, not double-aggregate.
			name: "upload-ack-blackholed",
			rules: []chaos.Rule{
				{Path: "/upload", Round: 0, User: second, Fault: chaos.FaultBlackholeResponse, Count: 1},
			},
		},
		{
			// The same for registration: the ack is lost, the re-register is
			// acknowledged idempotently even after training started.
			name: "register-ack-blackholed",
			rules: []chaos.Rule{
				{Path: "/register", Round: chaos.Any, User: 3, Fault: chaos.FaultBlackholeResponse, Count: 1},
			},
		},
		{
			// At-least-once delivery: every upload arrives twice.
			name: "uploads-duplicated",
			rules: []chaos.Rule{
				{Path: "/upload", Round: chaos.Any, User: chaos.Any, Fault: chaos.FaultDuplicate},
			},
		},
		{
			// Delivery reordering: the first-selected user's model fetch is
			// delayed so its upload arrives after everyone else's, inverting
			// arrival order relative to selection order. Selection-order
			// aggregation keeps the FedAvg reduction identical.
			name: "model-fetch-delayed-reorders-uploads",
			rules: []chaos.Rule{
				{Path: "/model", Round: chaos.Any, User: first, Fault: chaos.FaultLatency, Latency: 25 * time.Millisecond},
			},
		},
		{
			// Everything at once, on disjoint coordinates.
			name: "combined",
			rules: []chaos.Rule{
				{Path: "/upload", Round: 0, User: first, Fault: chaos.FaultDrop, Count: 1},
				{Path: "/model", Round: 0, User: second, Fault: chaos.Fault5xx, Count: 2},
				{Path: "/upload", Round: 1, User: chaos.Any, Fault: chaos.FaultDuplicate},
				{Path: "/model", Round: chaos.Any, User: first, Fault: chaos.FaultLatency, Latency: 10 * time.Millisecond},
			},
		},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			script := chaos.NewScript(sc.rules...)
			dep := env.runDeploy(t, deployOpts{
				script:      script,
				maxRetries:  5,
				baseBackoff: 2 * time.Millisecond,
			})
			for q, err := range dep.clientErrs {
				if err != nil {
					t.Fatalf("client %d: %v", q, err)
				}
			}
			if len(dep.summaries) != env.rounds {
				t.Fatalf("closed %d rounds, want %d", len(dep.summaries), env.rounds)
			}
			for _, s := range dep.summaries {
				if s.Partial {
					t.Fatalf("round %d closed partially; retries should have recovered every fault", s.Round)
				}
			}
			if !bitsEqual(dep.summaries[len(dep.summaries)-1].Global, ref) {
				t.Fatal("chaos trajectory diverges from the fault-free reference")
			}
			if inj := script.Injected(); len(inj) == 0 {
				t.Fatal("scenario injected no faults — rules never matched")
			}
		})
	}
}

// TestChaosRetriesExhaustedKillsClient pins the other side of the retry
// contract: a fault pattern deeper than the retry budget surfaces as a typed
// ErrUnavailable instead of hanging or succeeding silently.
func TestChaosRetriesExhaustedKillsClient(t *testing.T) {
	env := newConfEnv(t, 5, 2)
	script := chaos.NewScript(
		chaos.Rule{Path: "/poll", Round: chaos.Any, User: 2, Fault: chaos.FaultDrop},
	)
	dep := env.runDeploy(t, deployOpts{
		script:        script,
		maxRetries:    2,
		baseBackoff:   time.Millisecond,
		roundDeadline: 50 * time.Millisecond, // survive rounds that selected user 2
		quorum:        0.5,
	})
	if err := dep.clientErrs[2]; !errors.Is(err, ErrUnavailable) {
		t.Fatalf("client 2 error = %v, want ErrUnavailable", err)
	}
	for _, q := range []int{0, 1, 3, 4} {
		if err := dep.clientErrs[q]; err != nil {
			t.Fatalf("client %d: %v", q, err)
		}
	}
	if len(dep.summaries) != env.rounds {
		t.Fatalf("closed %d rounds, want %d", len(dep.summaries), env.rounds)
	}
}

// dropoutRecorder captures server-side dropout events (called under the
// server lock; guarded anyway for the post-run read).
type dropoutRecorder struct {
	obs.NopSink
	mu     sync.Mutex
	events []obs.DropoutEvent
}

func (r *dropoutRecorder) OnDropout(ev obs.DropoutEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *dropoutRecorder) all() []obs.DropoutEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]obs.DropoutEvent(nil), r.events...)
}

// TestChaosStragglerDeadlinePartialAggregation is the quorum scenario: one
// device's uploads are permanently lost, so every round closes via the
// straggler deadline with a partial aggregation over the surviving quorum,
// and the missing user is reported as a dropout each round. The outcome is
// deterministic — the survivors' contribution set never depends on timing
// because the lost user can never land.
func TestChaosStragglerDeadlinePartialAggregation(t *testing.T) {
	run := func() ([]RoundSummary, []obs.DropoutEvent, []error, []float64) {
		env := newConfEnv(t, 3, 2)
		env.fraction = 1.0 // select everyone: the cohort is {0,1,2} every round
		rec := &dropoutRecorder{}
		script := chaos.NewScript(
			chaos.Rule{Path: "/upload", Round: chaos.Any, User: 2, Fault: chaos.FaultDrop},
		)
		dep := env.runDeploy(t, deployOpts{
			script:        script,
			maxRetries:    1,
			baseBackoff:   time.Millisecond,
			roundDeadline: 60 * time.Millisecond,
			quorum:        0.5, // ceil(0.5×3) = 2 survivors required
			sink:          rec,
		})
		return dep.summaries, rec.all(), dep.clientErrs, dep.summaries[len(dep.summaries)-1].Global
	}

	summaries, drops, errs, finalA := run()

	if len(summaries) != 2 {
		t.Fatalf("closed %d rounds, want 2", len(summaries))
	}
	for _, s := range summaries {
		if !s.Partial {
			t.Fatalf("round %d did not close partially: %+v", s.Round, s)
		}
		// Uploaded/Missing follow selection order, so compare as sorted sets.
		if !intsEqual(sortedInts(s.Uploaded), []int{0, 1}) || !intsEqual(sortedInts(s.Missing), []int{2}) {
			t.Fatalf("round %d cohort split = uploaded %v missing %v, want {0 1}/{2}",
				s.Round, s.Uploaded, s.Missing)
		}
	}
	if len(drops) != 2 {
		t.Fatalf("dropout events = %d, want 2 (one per round)", len(drops))
	}
	for i, ev := range drops {
		if ev.User != 2 || ev.Round != i {
			t.Fatalf("dropout %d = %+v, want user 2 round %d", i, ev, i)
		}
	}
	// The starved client dies with the typed transport error; the quorum
	// finishes the campaign cleanly.
	if !errors.Is(errs[2], ErrUnavailable) {
		t.Fatalf("client 2 error = %v, want ErrUnavailable", errs[2])
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("surviving clients errored: %v / %v", errs[0], errs[1])
	}

	// Deterministic: an identical rerun lands on the identical partial
	// trajectory, bit for bit.
	_, _, _, finalB := run()
	if !bitsEqual(finalA, finalB) {
		t.Fatal("partial-aggregation trajectory differs between identical runs")
	}
}
