// Package deploy is a runnable networked prototype of the HELCFL system:
// an FLCC HTTP server (base station + edge server) and polling device
// clients speaking a small JSON + binary protocol. The simulation packages
// model costs; this package demonstrates the same Algorithm 1 control flow
// over a real transport — registration (resource information), per-round
// selection + frequency assignment, model broadcast, local GD, upload, and
// FedAvg — with genuine concurrency and real payload bytes.
//
// The transport is fault-tolerant and conformant with the in-process engine:
// clients retry transient failures with jittered exponential backoff
// (ClientConfig), the server deduplicates redelivered registrations and
// uploads by (round, user), aggregation walks the planner's selection order
// so the FedAvg reduction is bit-for-bit reproducible, and an optional
// straggler deadline (ServerConfig.RoundDeadline/Quorum) closes rounds with
// partial aggregations when devices go missing. See docs/ROBUSTNESS.md.
package deploy

import "helcfl/internal/obs/span"

// TraceHeader is the HTTP header propagating span identity between
// processes: the client stamps each request with its open request span's
// ref, and the server parents its handler span there, so one training
// round can be stitched across the device and FLCC traces.
const TraceHeader = "Helcfl-Trace"

// FormatTraceHeader renders a span ref for the TraceHeader value.
func FormatTraceHeader(r span.Ref) string { return span.FormatRef(r) }

// ParseTraceHeader parses a TraceHeader value; the zero Ref (with ok
// false) is returned for an absent or malformed header, in which case the
// server falls back to its own trace root.
func ParseTraceHeader(v string) (span.Ref, bool) {
	if v == "" {
		return span.Ref{}, false
	}
	r, err := span.ParseRef(v)
	if err != nil {
		return span.Ref{}, false
	}
	return r, true
}

// Phase is the FLCC lifecycle.
type Phase string

// FLCC phases.
const (
	// PhaseRegistering collects device resource information (Algorithm 1,
	// lines 1–2).
	PhaseRegistering Phase = "registering"
	// PhaseTraining runs iterative rounds (lines 3–11).
	PhaseTraining Phase = "training"
	// PhaseDone means the round budget is exhausted.
	PhaseDone Phase = "done"
)

// RegisterRequest is the device's resource report.
type RegisterRequest struct {
	// User is the device's index in [0, expected fleet size).
	User int `json:"user"`
	// NumSamples is |D_q|.
	NumSamples int `json:"num_samples"`
	// FMin, FMax bound the DVFS range in Hz.
	FMin float64 `json:"f_min"`
	FMax float64 `json:"f_max"`
	// TxPower and ChannelGain parameterize Eq. (6).
	TxPower     float64 `json:"tx_power"`
	ChannelGain float64 `json:"channel_gain"`
}

// RegisterResponse acknowledges registration.
type RegisterResponse struct {
	// Registered counts devices seen so far; Expected is the fleet size.
	Registered int `json:"registered"`
	Expected   int `json:"expected"`
}

// PollResponse tells a device what to do now.
type PollResponse struct {
	Phase Phase `json:"phase"`
	// Round is the current training round (valid while training).
	Round int `json:"round"`
	// Selected reports whether the polling device participates this round.
	Selected bool `json:"selected"`
	// FreqHz is the Algorithm 3 operating frequency when selected.
	FreqHz float64 `json:"freq_hz,omitempty"`
}

// StatusResponse summarizes server progress.
type StatusResponse struct {
	Phase      Phase `json:"phase"`
	Round      int   `json:"round"`
	Rounds     int   `json:"rounds"`
	Registered int   `json:"registered"`
	// Uploads counts models received so far in the current round.
	Uploads   int     `json:"uploads"`
	BytesUp   int64   `json:"bytes_up"`
	BytesDown int64   `json:"bytes_down"`
	TrainLoss float64 `json:"train_loss"`
}
