package deploy

// Server-side durable state: a snapshot of the campaign written at every
// round boundary plus a write-ahead log of intra-round events, both under
// ServerConfig.CheckpointDir via internal/checkpoint. Together they make
// the FLCC crash-recoverable with a bit-identical trajectory:
//
//   - The snapshot is taken immediately after PlanRound (which mutates the
//     planner's α-decay state and must not be re-run), so it stores the
//     planned cohort and frequencies alongside the post-plan planner state.
//   - Every accepted upload is appended to the WAL — raw wire bytes, before
//     the 204 acknowledgement — so a restarted server replays exactly the
//     uploads it acknowledged and a client retry deduplicates instead of
//     double-aggregating (at-most-once aggregation).
//   - The WAL is reset only after a snapshot write succeeds. A crash between
//     an aggregation and its snapshot therefore restarts from the previous
//     snapshot with the previous round's complete upload set in the WAL;
//     replay re-runs the identical selection-order FedAvg and rolls forward.
import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"helcfl/internal/checkpoint"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
)

// Checkpoint artifact names inside ServerConfig.CheckpointDir.
const (
	snapshotFile = "server.ckpt"
	walFile      = "rounds.wal"
)

// serverState is the gob payload inside the snapshot file frame.
type serverState struct {
	// Phase is PhaseTraining or PhaseDone; a snapshot is never taken while
	// registration is still open.
	Phase Phase
	// Round is the currently planned (or, when done, final) round.
	Round int
	// Devices is the registered fleet's resource information, indexed by
	// user.
	Devices []device.Device
	// GlobalParams is the exact float64 global model (bitwise resume needs
	// more precision than the f32 wire format carries).
	GlobalParams []float64
	// SelOrder and Freqs are the planned cohort; stored because PlanRound
	// already ran for this round and must not run again on restore.
	SelOrder []int
	Freqs    []float64
	// PlannerState is the planner's post-PlanRound exported state (nil for
	// stateless planners).
	PlannerState []byte
	// BytesUp and BytesDown carry the transfer accounting across restarts.
	BytesUp, BytesDown int64
}

// initDurabilityLocked prepares CheckpointDir, optionally restores the
// previous incarnation's state, and opens the WAL. Called from NewServer
// before the server is shared, with no concurrent handlers.
func (s *Server) initDurabilityLocked() error {
	start := time.Now()
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("deploy: create checkpoint dir: %w", err)
	}
	restored := false
	if s.cfg.Resume {
		//helcfl:allow(lockheld) runs from NewServer before the server is shared; no handler can contend for the lock during restore
		payload, err := checkpoint.ReadFile(s.snapshotPath())
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume — first incarnation; start fresh.
		case err != nil:
			return fmt.Errorf("deploy: read checkpoint: %w", err)
		default:
			if err := s.restoreLocked(payload); err != nil {
				return err
			}
			restored = true
		}
	}
	wal, records, err := checkpoint.OpenWAL(filepath.Join(s.cfg.CheckpointDir, walFile))
	if err != nil {
		return err
	}
	s.wal = wal
	if !restored {
		// Stale records from an abandoned campaign must not leak into this
		// one.
		//helcfl:allow(lockheld) runs from NewServer before the server is shared; no handler can contend for the lock during restore
		return s.wal.Reset()
	}
	if err := s.replayLocked(records); err != nil {
		return err
	}
	s.mRestores.Inc()
	s.mRecoverySec.Set(time.Since(start).Seconds())
	s.logf("checkpoint: restored round=%d phase=%s replayed=%d in %v",
		s.round, s.phase, len(records), time.Since(start))
	return nil
}

// restoreLocked rebuilds the campaign from a snapshot payload.
func (s *Server) restoreLocked(payload []byte) error {
	var st serverState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return fmt.Errorf("deploy: decode checkpoint: %w", err)
	}
	switch {
	case st.Phase != PhaseTraining && st.Phase != PhaseDone:
		return fmt.Errorf("deploy: checkpoint in phase %q", st.Phase)
	case len(st.Devices) != s.cfg.ExpectedUsers:
		return fmt.Errorf("deploy: checkpoint fleet %d, configured %d", len(st.Devices), s.cfg.ExpectedUsers)
	case st.Round < 0 || st.Round > s.cfg.Rounds:
		return fmt.Errorf("deploy: checkpoint round %d outside budget %d", st.Round, s.cfg.Rounds)
	case len(st.SelOrder) != len(st.Freqs):
		return fmt.Errorf("deploy: checkpoint cohort %d users, %d freqs", len(st.SelOrder), len(st.Freqs))
	}
	for q := range st.Devices {
		d := st.Devices[q]
		s.devices[q] = &d
		s.registered[q] = true
	}
	planner, err := s.cfg.NewPlanner(s.devices)
	if err != nil {
		return fmt.Errorf("deploy: rebuild planner: %w", err)
	}
	if st.PlannerState != nil {
		sp, ok := planner.(fl.StatefulPlanner)
		if !ok {
			return fmt.Errorf("deploy: checkpoint carries planner state but planner %q cannot import it", planner.Name())
		}
		if err := sp.ImportState(st.PlannerState); err != nil {
			return fmt.Errorf("deploy: import planner state: %w", err)
		}
	}
	s.planner = planner
	s.global = s.cfg.Spec.Build(newSeededRand(s.cfg.Seed))
	if want := s.global.NumParams(); len(st.GlobalParams) != want {
		return fmt.Errorf("deploy: checkpoint has %d params, model has %d", len(st.GlobalParams), want)
	}
	s.global.SetFlatParams(append([]float64(nil), st.GlobalParams...))
	s.phase = st.Phase
	s.round = st.Round
	s.bytesUp = st.BytesUp
	s.bytesDown = st.BytesDown
	s.mRound.Set(float64(s.round))
	if s.phase != PhaseTraining {
		return nil
	}
	s.selOrder = append([]int(nil), st.SelOrder...)
	s.selected = make(map[int]float64, len(st.SelOrder))
	for i, q := range st.SelOrder {
		if q < 0 || q >= s.cfg.ExpectedUsers {
			return fmt.Errorf("deploy: checkpoint cohort user %d outside fleet", q)
		}
		s.selected[q] = st.Freqs[i]
	}
	s.uploads = map[int][]float64{}
	s.payload = nn.ParamBytes(s.global)
	return nil
}

// replayLocked re-applies the WAL onto restored state: every intact upload
// record for the current round is decoded and accepted exactly as its
// original request was, so already-acknowledged uploads are not lost and a
// client retrying one hits the idempotent-duplicate path instead of being
// aggregated twice. If replay completes the cohort — a crash landed between
// the last upload and the round's aggregation — the round closes now,
// deterministically, before any handler runs.
func (s *Server) replayLocked(records []checkpoint.Record) error {
	if s.phase != PhaseTraining {
		return nil
	}
	for _, rec := range records {
		switch rec.Type {
		case checkpoint.RecordRoundStart:
			if rec.Round != s.round {
				return fmt.Errorf("deploy: wal round %d, checkpoint round %d", rec.Round, s.round)
			}
		case checkpoint.RecordUpload:
			if rec.Round != s.round {
				// Records from the round whose snapshot failed to land; the
				// snapshot we restored precedes them. Should be impossible
				// because the WAL is only reset after a successful snapshot —
				// treat it as the corruption it is.
				return fmt.Errorf("deploy: wal upload for round %d, checkpoint round %d", rec.Round, s.round)
			}
			if _, ok := s.selected[rec.User]; !ok {
				return fmt.Errorf("deploy: wal upload from unselected user %d", rec.User)
			}
			if _, dup := s.uploads[rec.User]; dup {
				continue
			}
			scratch := s.global.Clone()
			if err := nn.LoadParamBytes(scratch, rec.Payload); err != nil {
				return fmt.Errorf("deploy: wal upload user %d: %w", rec.User, err)
			}
			s.uploads[rec.User] = scratch.GetFlatParams()
			s.bytesUp += int64(len(rec.Payload))
			s.mWALReplays.Inc()
		default:
			return fmt.Errorf("deploy: wal record type %d unknown", rec.Type)
		}
	}
	if len(s.uploads) == len(s.selected) {
		s.aggregateLocked()
		return nil
	}
	s.armDeadlineLocked()
	return nil
}

// checkpointLocked writes the snapshot; when resetWAL is set and the write
// lands, the (now redundant) WAL is cleared and re-primed with the round
// marker. A failed write is logged and counted, never fatal: the previous
// snapshot + un-reset WAL still reconstruct this exact state. Caller holds
// mu.
func (s *Server) checkpointLocked(resetWAL bool) {
	if s.cfg.CheckpointDir == "" || s.global == nil {
		return
	}
	if err := s.writeSnapshotLocked(); err != nil {
		s.mCkptErrors.Inc()
		s.logf("checkpoint: write failed (will retry next boundary): %v", err)
		return
	}
	s.mCkptWrites.Inc()
	if !resetWAL || s.wal == nil {
		return
	}
	//helcfl:allow(lockheld) the WAL truncation must be atomic with the snapshot it folded into; the state lock is that atomicity boundary
	if err := s.wal.Reset(); err != nil {
		s.logf("checkpoint: wal reset failed: %v", err)
		return
	}
	if s.phase == PhaseTraining {
		//helcfl:allow(lockheld) the round marker must land in the same lock hold as the truncation above, or a crash between them replays into the wrong round
		if err := s.wal.Append(checkpoint.Record{Type: checkpoint.RecordRoundStart, Round: s.round}); err != nil {
			s.logf("checkpoint: wal round marker failed: %v", err)
		}
	}
}

func (s *Server) writeSnapshotLocked() error {
	st := serverState{
		Phase:        s.phase,
		Round:        s.round,
		Devices:      make([]device.Device, len(s.devices)),
		GlobalParams: s.global.GetFlatParams(),
		SelOrder:     append([]int(nil), s.selOrder...),
		BytesUp:      s.bytesUp,
		BytesDown:    s.bytesDown,
	}
	for q, d := range s.devices {
		if d == nil {
			return fmt.Errorf("deploy: device %d unregistered at snapshot", q)
		}
		st.Devices[q] = *d
	}
	st.Freqs = make([]float64, len(s.selOrder))
	for i, q := range s.selOrder {
		st.Freqs[i] = s.selected[q]
	}
	if sp, ok := s.planner.(fl.StatefulPlanner); ok {
		raw, err := sp.ExportState()
		if err != nil {
			return fmt.Errorf("deploy: export planner state: %w", err)
		}
		st.PlannerState = raw
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return fmt.Errorf("deploy: encode checkpoint: %w", err)
	}
	//helcfl:allow(lockheld) the snapshot serialized under the lock must hit disk before state can advance; releasing mid-write would let the next upload mutate what the fsync claims to capture
	return checkpoint.WriteFile(s.snapshotPath(), buf.Bytes())
}

func (s *Server) snapshotPath() string {
	return filepath.Join(s.cfg.CheckpointDir, snapshotFile)
}

// CheckpointNow forces a snapshot of the current state without touching the
// WAL — the graceful-shutdown path (the WAL still holds this round's
// uploads, so the pair stays consistent). No-op without a CheckpointDir.
func (s *Server) CheckpointNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.CheckpointDir == "" || s.global == nil {
		return nil
	}
	if err := s.writeSnapshotLocked(); err != nil {
		s.mCkptErrors.Inc()
		return err
	}
	s.mCkptWrites.Inc()
	return nil
}

// logf forwards to the configured logger when present.
func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}
