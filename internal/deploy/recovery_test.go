package deploy

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"helcfl/internal/nn"
)

// Crash-recovery conformance: the FLCC is killed at arbitrary points —
// round boundaries and mid-round, after some uploads of a cohort have been
// acknowledged — and restarted from its checkpoint directory. The merged
// trajectory across incarnations must be bit-identical to an uninterrupted
// campaign: same selections, same per-round global models, same final
// model. Clients survive the outage through their reconnect budget.
//
// The "kill" is faithful to a crash: the old incarnation is quiesced
// (Close — which persists nothing) and abandoned, so the on-disk state is
// exactly the last round-boundary snapshot plus the WAL records fsynced
// before the crash.

// proxyStatus captures the response code passing through the proxy.
type proxyStatus struct {
	http.ResponseWriter
	code int
}

func (w *proxyStatus) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// flipProxy routes to the current server incarnation, answers 503 while
// "down" (crashed, restart pending), and evaluates a kill trigger after
// every completed request.
type flipProxy struct {
	mu         sync.Mutex
	cur        *Server
	down       bool
	uploads    int         // cumulative accepted uploads across incarnations
	trigger    func() bool // non-nil: evaluated post-request; true = crash now
	restartReq chan struct{}
}

func (p *flipProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	srv, down := p.cur, p.down
	p.mu.Unlock()
	if down || srv == nil {
		http.Error(w, "FLCC down", http.StatusServiceUnavailable)
		return
	}
	sw := &proxyStatus{ResponseWriter: w, code: http.StatusOK}
	srv.ServeHTTP(sw, r)
	p.mu.Lock()
	if r.URL.Path == "/upload" && sw.code == http.StatusNoContent {
		p.uploads++
	}
	fire := p.trigger != nil && !p.down && p.trigger()
	if fire {
		p.down = true
	}
	p.mu.Unlock()
	if fire {
		p.restartReq <- struct{}{}
	}
}

func (p *flipProxy) swap(srv *Server) {
	p.mu.Lock()
	p.cur = srv
	p.down = false
	p.mu.Unlock()
}

// recoveryRig drives one checkpointed campaign with crash/restart faults.
type recoveryRig struct {
	t     *testing.T
	env   *confEnv
	dir   string
	proxy *flipProxy

	// graceful makes the restart controller take a CheckpointNow snapshot
	// before quiescing the dying incarnation — the SIGTERM handoff sequence.
	graceful bool
	// outage stretches the down window before the restart, long enough that
	// clients exhaust per-request retries and must re-register.
	outage time.Duration
	// clientRetries is each request's retry budget (default 2).
	clientRetries int

	// reconnections totals the fleet's outage recoveries after run().
	reconnections int

	mu       sync.Mutex
	closures map[int][]RoundSummary // round → every closure observed (all incarnations)
	rounds   int                    // distinct rounds closed
	servers  []*Server
}

func newRecoveryRig(t *testing.T, env *confEnv) *recoveryRig {
	return &recoveryRig{
		t:             t,
		env:           env,
		dir:           t.TempDir(),
		proxy:         &flipProxy{restartReq: make(chan struct{}, 4)},
		clientRetries: 2,
		closures:      map[int][]RoundSummary{},
	}
}

// spawn builds a checkpointed server incarnation (Resume is safe on the
// first one: an empty directory starts fresh).
func (r *recoveryRig) spawn() (*Server, error) {
	srv, err := NewServer(ServerConfig{
		Spec:          r.env.spec,
		Seed:          r.env.seed,
		ExpectedUsers: r.env.users,
		Rounds:        r.env.rounds,
		CheckpointDir: r.dir,
		Resume:        true,
		NewPlanner:    r.env.newPlanner,
		RoundHook:     r.record,
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.servers = append(r.servers, srv)
	r.mu.Unlock()
	return srv, nil
}

func (r *recoveryRig) record(s RoundSummary) {
	r.mu.Lock()
	if len(r.closures[s.Round]) == 0 {
		r.rounds++
	}
	r.closures[s.Round] = append(r.closures[s.Round], s)
	r.mu.Unlock()
}

func (r *recoveryRig) roundsClosed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rounds
}

func (r *recoveryRig) lastServer() *Server {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.servers[len(r.servers)-1]
}

// run executes the campaign: first incarnation, restart controller, client
// fleet with a reconnect budget. Returns the per-client errors.
func (r *recoveryRig) run() []error {
	t := r.t
	first, err := r.spawn()
	if err != nil {
		t.Fatal(err)
	}
	r.proxy.swap(first)
	ts := httptest.NewServer(r.proxy)
	t.Cleanup(ts.Close)

	// Restart controller: on each crash signal, quiesce the dead incarnation
	// (persists nothing — the disk state is the crash image) and bring up a
	// resumed one.
	ctrlErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-r.proxy.restartReq:
				if r.outage > 0 {
					time.Sleep(r.outage)
				}
				old := r.lastServer()
				if r.graceful {
					if err := old.CheckpointNow(); err != nil {
						ctrlErr <- fmt.Errorf("graceful checkpoint: %w", err)
						return
					}
				}
				old.Close()
				next, err := r.spawn()
				if err != nil {
					ctrlErr <- fmt.Errorf("restart from checkpoint: %w", err)
					return
				}
				r.proxy.swap(next)
			}
		}
	}()

	errs := make([]error, r.env.users)
	clients := make([]*Client, r.env.users)
	var wg sync.WaitGroup
	for q := 0; q < r.env.users; q++ {
		c, err := NewClient(ClientConfig{
			BaseURL:      ts.URL,
			Info:         r.env.clientInfo(q),
			Data:         r.env.userData[q],
			Spec:         r.env.spec,
			LR:           r.env.lr,
			LocalSteps:   1,
			PollInterval: time.Millisecond,
			MaxRetries:   r.clientRetries,
			BaseBackoff:  time.Millisecond,
			Reconnects:   16,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[q] = c
		wg.Add(1)
		go func(q int, c *Client) {
			defer wg.Done()
			errs[q] = c.Run()
		}(q, c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-ctrlErr:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("recovery campaign did not finish in 60s")
	}
	select {
	case err := <-ctrlErr:
		t.Fatal(err)
	default:
	}
	t.Cleanup(r.lastServer().Close)
	for _, c := range clients {
		r.reconnections += c.Reconnections
	}
	t.Logf("incarnations=%d reconnections=%d", len(r.servers), r.reconnections)
	return errs
}

// verify asserts the merged trajectory is bit-identical to the clean
// reference summaries and that every re-closed round (a crash between an
// aggregation and its snapshot replays deterministically) reproduced the
// identical aggregate.
func (r *recoveryRig) verify(ref []RoundSummary) {
	t := r.t
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rounds != r.env.rounds {
		t.Fatalf("closed %d distinct rounds, want %d", r.rounds, r.env.rounds)
	}
	for j := 0; j < r.env.rounds; j++ {
		got := r.closures[j]
		if len(got) == 0 {
			t.Fatalf("round %d never closed", j)
		}
		for _, s := range got[1:] {
			if !bitsEqual(s.Global, got[0].Global) || !intsEqual(s.Selected, got[0].Selected) {
				t.Fatalf("round %d re-closed with a different aggregate", j)
			}
		}
		want := ref[j]
		if want.Round != j {
			t.Fatalf("reference summaries out of order at %d", j)
		}
		if !intsEqual(got[0].Selected, want.Selected) {
			t.Fatalf("round %d selections diverge: got %v want %v", j, got[0].Selected, want.Selected)
		}
		if !bitsEqual(got[0].Global, want.Global) {
			t.Fatalf("round %d global model diverges from uninterrupted run", j)
		}
	}
}

// cleanReference runs the same campaign uninterrupted (no checkpointing)
// and returns its per-round summaries.
func cleanReference(t *testing.T, env *confEnv) []RoundSummary {
	t.Helper()
	ref := env.runDeploy(t, deployOpts{maxRetries: 2, baseBackoff: time.Millisecond})
	for q, err := range ref.clientErrs {
		if err != nil {
			t.Fatalf("reference client %d: %v", q, err)
		}
	}
	if len(ref.summaries) != env.rounds {
		t.Fatalf("reference closed %d rounds, want %d", len(ref.summaries), env.rounds)
	}
	return ref.summaries
}

// TestRecoveryKillAtRoundBoundary crashes the FLCC right after round 1
// closes (the next round is planned and snapshotted, no uploads accepted
// yet) and requires the resumed campaign to be indistinguishable.
func TestRecoveryKillAtRoundBoundary(t *testing.T) {
	env := newConfEnv(t, 5, 4)
	ref := cleanReference(t, env)

	rig := newRecoveryRig(t, env)
	fired := false
	rig.proxy.trigger = func() bool {
		if !fired && rig.roundsClosed() >= 2 {
			fired = true
			return true
		}
		return false
	}
	for q, err := range rig.run() {
		if err != nil {
			t.Fatalf("client %d: %v", q, err)
		}
	}
	rig.verify(ref)
	last := rig.lastServer()
	if got := last.mRestores.Value(); got < 1 {
		t.Fatalf("restored incarnation reports %v restores", got)
	}
	if !bitsEqual(last.Global().GetFlatParams(), ref[len(ref)-1].Global) {
		t.Fatal("final global model diverges from uninterrupted run")
	}
}

// TestRecoveryKillMidRound crashes after the first upload of round 1 has
// been acknowledged: the restarted server must replay that upload from the
// WAL (not lose it, not aggregate it twice when the client retries) and
// still land on the uninterrupted trajectory.
func TestRecoveryKillMidRound(t *testing.T) {
	env := newConfEnv(t, 5, 4)
	ref := cleanReference(t, env)
	if len(ref[1].Uploaded) < 2 {
		t.Skipf("round 1 cohort too small (%d) for a mid-round kill", len(ref[1].Uploaded))
	}
	// Crash once the first upload of round 1 lands: cumulative count =
	// |round-0 cohort| + 1.
	killAt := len(ref[0].Uploaded) + 1

	rig := newRecoveryRig(t, env)
	// Make the outage visible to the fleet: no per-request retries, and a
	// down window every client's 1ms poll is guaranteed to land in — the
	// reconnect path (ErrUnavailable → re-register → resume) must carry the
	// campaign, not the transport retries.
	rig.clientRetries = 0
	rig.outage = 30 * time.Millisecond
	fired := false
	rig.proxy.trigger = func() bool {
		if !fired && rig.proxy.uploads >= killAt { // trigger runs under proxy.mu
			fired = true
			return true
		}
		return false
	}
	for q, err := range rig.run() {
		if err != nil {
			t.Fatalf("client %d: %v", q, err)
		}
	}
	rig.verify(ref)
	if rig.reconnections == 0 {
		t.Fatal("no client exercised the reconnect path across the outage")
	}
	last := rig.lastServer()
	if got := last.mWALReplays.Value(); got < 1 {
		t.Fatalf("mid-round restart replayed %v WAL uploads, want ≥1", got)
	}
	if !bitsEqual(last.Global().GetFlatParams(), ref[len(ref)-1].Global) {
		t.Fatal("final global model diverges from uninterrupted run")
	}
}

// TestRecoveryKillTwice layers both fault points in one campaign: a crash
// at the round-0 boundary and a second one mid-round later on.
func TestRecoveryKillTwice(t *testing.T) {
	env := newConfEnv(t, 5, 5)
	ref := cleanReference(t, env)
	if len(ref[2].Uploaded) < 2 {
		t.Skipf("round 2 cohort too small (%d) for a mid-round kill", len(ref[2].Uploaded))
	}
	midKill := len(ref[0].Uploaded) + len(ref[1].Uploaded) + 1

	rig := newRecoveryRig(t, env)
	kills := 0
	rig.proxy.trigger = func() bool {
		switch kills {
		case 0:
			if rig.roundsClosed() >= 1 {
				kills++
				return true
			}
		case 1:
			if rig.proxy.uploads >= midKill {
				kills++
				return true
			}
		}
		return false
	}
	for q, err := range rig.run() {
		if err != nil {
			t.Fatalf("client %d: %v", q, err)
		}
	}
	rig.verify(ref)
	if len(rig.servers) != 3 {
		t.Fatalf("campaign ran %d incarnations, want 3", len(rig.servers))
	}
	if !bitsEqual(rig.lastServer().Global().GetFlatParams(), ref[len(ref)-1].Global) {
		t.Fatal("final global model diverges from uninterrupted run")
	}
}

// TestRecoveryGracefulHandoff exercises the shutdown path cmd/helcfl-node
// uses on SIGTERM: CheckpointNow mid-round (the forced snapshot coexists
// with the round's WAL records), Close, restart, resume.
func TestRecoveryGracefulHandoff(t *testing.T) {
	env := newConfEnv(t, 5, 3)
	ref := cleanReference(t, env)

	rig := newRecoveryRig(t, env)
	rig.graceful = true
	fired := false
	rig.proxy.trigger = func() bool {
		if !fired && rig.proxy.uploads >= 1 {
			fired = true
			return true
		}
		return false
	}
	for q, err := range rig.run() {
		if err != nil {
			t.Fatalf("client %d: %v", q, err)
		}
	}
	rig.verify(ref)
	// A snapshot of the finished campaign must also succeed (exit path).
	if err := rig.lastServer().CheckpointNow(); err != nil {
		t.Fatalf("CheckpointNow after done: %v", err)
	}
	if !bitsEqual(rig.lastServer().Global().GetFlatParams(), ref[len(ref)-1].Global) {
		t.Fatal("final global model diverges from uninterrupted run")
	}
}

// TestUploadValidation drives the server's payload screening by hand:
// malformed framing is a 400, a wrong parameter count or non-finite
// parameters are 422s, all are counted, and a subsequent valid upload from
// the same user is still accepted.
func TestUploadValidation(t *testing.T) {
	env := newConfEnv(t, 3, 1)
	srv, err := NewServer(ServerConfig{
		Spec:          env.spec,
		Seed:          env.seed,
		ExpectedUsers: env.users,
		Rounds:        env.rounds,
		NewPlanner:    env.newPlanner,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for q := 0; q < env.users; q++ {
		body, _ := json.Marshal(env.clientInfo(q))
		resp, err := http.Post(ts.URL+"/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %d: status %d", q, resp.StatusCode)
		}
	}

	// Find a selected user.
	user := -1
	for q := 0; q < env.users && user < 0; q++ {
		resp, err := http.Get(fmt.Sprintf("%s/poll?user=%d", ts.URL, q))
		if err != nil {
			t.Fatal(err)
		}
		var poll PollResponse
		if err := json.NewDecoder(resp.Body).Decode(&poll); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if poll.Selected {
			user = q
		}
	}
	if user < 0 {
		t.Fatal("no user selected in round 0")
	}

	upload := func(payload []byte) int {
		t.Helper()
		resp, err := http.Post(fmt.Sprintf("%s/upload?user=%d&round=0", ts.URL, user),
			"application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	valid := nn.ParamBytes(srv.Global())

	if code := upload([]byte("definitely not a model")); code != http.StatusBadRequest {
		t.Fatalf("garbage payload: status %d, want 400", code)
	}
	// Structurally valid frame declaring one extra parameter.
	n := binary.LittleEndian.Uint32(valid[4:8])
	wrongCount := make([]byte, len(valid)+4)
	copy(wrongCount, valid)
	binary.LittleEndian.PutUint32(wrongCount[4:8], n+1)
	if code := upload(wrongCount); code != http.StatusUnprocessableEntity {
		t.Fatalf("shape mismatch: status %d, want 422", code)
	}
	// One parameter flipped to NaN.
	poisoned := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(poisoned[8:12], math.Float32bits(float32(math.NaN())))
	if code := upload(poisoned); code != http.StatusUnprocessableEntity {
		t.Fatalf("NaN payload: status %d, want 422", code)
	}
	infected := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(infected[8:12], math.Float32bits(float32(math.Inf(1))))
	if code := upload(infected); code != http.StatusUnprocessableEntity {
		t.Fatalf("Inf payload: status %d, want 422", code)
	}
	if got := srv.mRejected.Value(); got != 4 {
		t.Fatalf("rejected-uploads counter %v, want 4", got)
	}
	// The user is not locked out: a clean retry is accepted.
	if code := upload(valid); code != http.StatusNoContent {
		t.Fatalf("valid upload after rejections: status %d, want 204", code)
	}
	if got := srv.mUploads.Value(); got != 1 {
		t.Fatalf("accepted-uploads counter %v, want 1", got)
	}
}
