package deploy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
)

// newSeededRand is a tiny helper shared with the server.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ClientConfig configures one device client.
type ClientConfig struct {
	// BaseURL points at the FLCC server.
	BaseURL string
	// Info is the resource report sent at registration.
	Info RegisterRequest
	// Data is the local dataset D_q.
	Data *dataset.Dataset
	// Spec matches the server's model architecture.
	Spec nn.ModelSpec
	// LR and LocalSteps parameterize the local GD update (Eq. 3).
	LR         float64
	LocalSteps int
	// PollInterval is the wait between polls (keep small in tests).
	PollInterval time.Duration
	// TimeScale, when positive, makes the client act out its DVFS compute
	// delay in real time: after training it sleeps
	// TimeScale × CyclesPerUpdate / f_assigned seconds, so the server-side
	// round timing reflects Algorithm 3's frequency plan. 0 disables.
	TimeScale float64
	// CyclesPerUpdate is the device's per-update CPU cost used with
	// TimeScale.
	CyclesPerUpdate float64
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// Client is a polling FL device.
type Client struct {
	cfg   ClientConfig
	model *nn.Sequential
	loss  *nn.SoftmaxCrossEntropy
	// RoundsTrained counts local updates performed.
	RoundsTrained int
}

// NewClient validates the configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	switch {
	case cfg.BaseURL == "":
		return nil, fmt.Errorf("deploy: no server URL")
	case cfg.Data == nil || cfg.Data.N() == 0:
		return nil, fmt.Errorf("deploy: client %d has no data", cfg.Info.User)
	case cfg.LR <= 0 || cfg.LocalSteps <= 0:
		return nil, fmt.Errorf("deploy: bad training parameters")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	return &Client{
		cfg:   cfg,
		model: cfg.Spec.Build(newSeededRand(int64(cfg.Info.User) + 1)),
		loss:  nn.NewSoftmaxCrossEntropy(),
	}, nil
}

// Run registers and participates until the server reports PhaseDone.
func (c *Client) Run() error {
	if err := c.register(); err != nil {
		return err
	}
	for {
		poll, err := c.poll()
		if err != nil {
			return err
		}
		switch poll.Phase {
		case PhaseDone:
			return nil
		case PhaseTraining:
			if poll.Selected {
				if err := c.trainRound(poll.Round, poll.FreqHz); err != nil {
					// Conflicts are benign races (the round advanced while
					// we trained); everything else is fatal.
					if !isConflict(err) {
						return err
					}
				}
				continue // poll again immediately
			}
		}
		time.Sleep(c.cfg.PollInterval)
	}
}

// conflictError marks HTTP 409/403 responses.
type conflictError struct{ msg string }

func (e conflictError) Error() string { return e.msg }

func isConflict(err error) bool {
	_, ok := err.(conflictError)
	return ok
}

func (c *Client) register() error {
	body, _ := json.Marshal(c.cfg.Info)
	resp, err := c.cfg.HTTPClient.Post(c.cfg.BaseURL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("deploy: register failed: %s: %s", resp.Status, msg)
	}
	return nil
}

func (c *Client) poll() (*PollResponse, error) {
	resp, err := c.cfg.HTTPClient.Get(fmt.Sprintf("%s/poll?user=%d", c.cfg.BaseURL, c.cfg.Info.User))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("deploy: poll failed: %s", resp.Status)
	}
	var out PollResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// trainRound downloads the round's global model, runs the local update,
// and uploads the result. freqHz is the FLCC-assigned DVFS frequency.
func (c *Client) trainRound(round int, freqHz float64) error {
	resp, err := c.cfg.HTTPClient.Get(fmt.Sprintf("%s/model?round=%d", c.cfg.BaseURL, round))
	if err != nil {
		return err
	}
	payload, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return conflictError{"stale model fetch"}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("deploy: model fetch failed: %s", resp.Status)
	}
	if readErr != nil {
		return readErr
	}
	if err := nn.LoadParamBytes(c.model, payload); err != nil {
		return err
	}

	// Local update, Eq. (3).
	var x = c.cfg.Data.X
	if c.cfg.Spec.FlattensInput() {
		x = c.cfg.Data.FlatX()
	}
	for s := 0; s < c.cfg.LocalSteps; s++ {
		c.model.ZeroGrads()
		logits := c.model.Forward(x, true)
		c.loss.Forward(logits, c.cfg.Data.Labels)
		c.model.Backward(c.loss.Backward())
		params, grads := c.model.Params(), c.model.Grads()
		for i, p := range params {
			p.AXPY(-c.cfg.LR, grads[i])
		}
	}
	// Act out the DVFS compute delay, so slower assigned frequencies make
	// this device visibly later on the server's timeline.
	if c.cfg.TimeScale > 0 && c.cfg.CyclesPerUpdate > 0 && freqHz > 0 {
		delay := c.cfg.TimeScale * c.cfg.CyclesPerUpdate / freqHz
		time.Sleep(time.Duration(delay * float64(time.Second)))
	}

	up, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("%s/upload?user=%d&round=%d", c.cfg.BaseURL, c.cfg.Info.User, round),
		bytes.NewReader(nn.ParamBytes(c.model)))
	if err != nil {
		return err
	}
	up.Header.Set("Content-Type", "application/octet-stream")
	upResp, err := c.cfg.HTTPClient.Do(up)
	if err != nil {
		return err
	}
	defer upResp.Body.Close()
	switch upResp.StatusCode {
	case http.StatusNoContent:
		c.RoundsTrained++
		return nil
	case http.StatusConflict, http.StatusForbidden:
		msg, _ := io.ReadAll(upResp.Body)
		return conflictError{string(msg)}
	default:
		msg, _ := io.ReadAll(upResp.Body)
		return fmt.Errorf("deploy: upload failed: %s: %s", upResp.Status, msg)
	}
}
