package deploy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
	"helcfl/internal/obs/span"
	"helcfl/internal/retry"
)

// newSeededRand is a tiny helper shared with the server.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ErrUnavailable reports that the server could not be reached (transport
// error, per-request timeout, or persistent 5xx) even after the configured
// retries. Callers distinguish it from protocol errors with errors.Is.
var ErrUnavailable = errors.New("deploy: server unavailable")

// ClientConfig configures one device client.
type ClientConfig struct {
	// BaseURL points at the FLCC server.
	BaseURL string
	// Info is the resource report sent at registration.
	Info RegisterRequest
	// Data is the local dataset D_q.
	Data *dataset.Dataset
	// Spec matches the server's model architecture.
	Spec nn.ModelSpec
	// LR and LocalSteps parameterize the local GD update (Eq. 3).
	LR         float64
	LocalSteps int
	// PollInterval is the wait between polls (keep small in tests).
	PollInterval time.Duration
	// TimeScale, when positive, makes the client act out its DVFS compute
	// delay in real time: after training it sleeps
	// TimeScale × CyclesPerUpdate / f_assigned seconds, so the server-side
	// round timing reflects Algorithm 3's frequency plan. 0 disables.
	TimeScale float64
	// CyclesPerUpdate is the device's per-update CPU cost used with
	// TimeScale.
	CyclesPerUpdate float64
	// MaxRetries is how many extra attempts each request gets after a
	// transient failure (transport error, timeout, or 5xx). 0 disables
	// retries: the first failure is final, matching the old behaviour.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; it doubles per retry
	// (capped at 2s) with deterministic per-client jitter so a fleet
	// retrying the same outage does not stampede in lockstep. Defaults to
	// 10ms when MaxRetries > 0.
	BaseBackoff time.Duration
	// RequestTimeout bounds each individual HTTP attempt; a timed-out
	// attempt is retried like a transport error. 0 means no per-attempt
	// timeout.
	RequestTimeout time.Duration
	// Reconnects is how many server outages the client survives: when a
	// request exhausts its retry budget (ErrUnavailable — e.g. the FLCC
	// crashed and is restarting from checkpoint), the client re-registers
	// and resumes polling instead of giving up, up to this many times. The
	// server's idempotent re-registration and upload dedup make the rejoin
	// safe at any point in a round. 0 keeps the old fail-fast behaviour.
	Reconnects int
	// HTTPClient defaults to http.DefaultClient. Tests swap in a
	// chaos-transport client here.
	HTTPClient *http.Client
	// Trace, when non-nil, records one "http.client" span per HTTP attempt
	// and stamps every request with the Helcfl-Trace header, so the
	// server's spans stitch into this client's trace.
	Trace *span.Recorder
	// TraceParent parents the client's request spans (zero means the
	// trace root).
	TraceParent span.Ref
}

// Client is a polling FL device.
type Client struct {
	cfg   ClientConfig
	model *nn.Sequential
	loss  *nn.SoftmaxCrossEntropy
	rng   *rand.Rand // backoff jitter; seeded per user for reproducible runs
	// RoundsTrained counts local updates whose upload was acknowledged.
	RoundsTrained int
	// Reconnections counts recoveries from a server outage (see
	// ClientConfig.Reconnects).
	Reconnections int
}

// NewClient validates the configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	switch {
	case cfg.BaseURL == "":
		return nil, fmt.Errorf("deploy: no server URL")
	case cfg.Data == nil || cfg.Data.N() == 0:
		return nil, fmt.Errorf("deploy: client %d has no data", cfg.Info.User)
	case cfg.LR <= 0 || cfg.LocalSteps <= 0:
		return nil, fmt.Errorf("deploy: bad training parameters")
	case cfg.MaxRetries < 0:
		return nil, fmt.Errorf("deploy: negative retry budget %d", cfg.MaxRetries)
	case cfg.Reconnects < 0:
		return nil, fmt.Errorf("deploy: negative reconnect budget %d", cfg.Reconnects)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	return &Client{
		cfg:   cfg,
		model: cfg.Spec.Build(newSeededRand(int64(cfg.Info.User) + 1)),
		loss:  nn.NewSoftmaxCrossEntropy(),
		rng:   newSeededRand(int64(cfg.Info.User)*7919 + 17),
	}, nil
}

// Run registers and participates until the server reports PhaseDone.
func (c *Client) Run() error { return c.RunContext(context.Background()) }

// RunContext is Run bounded by a context: cancellation stops the client
// cleanly between (and inside) requests with ctx.Err(). When the server
// becomes unreachable the client re-registers and resumes, up to
// ClientConfig.Reconnects times; each successful request resets nothing —
// the budget bounds distinct outages survived over the client's lifetime.
func (c *Client) RunContext(ctx context.Context) error {
	left := c.cfg.Reconnects
	for {
		err := c.session(ctx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrUnavailable) || left <= 0 || ctx.Err() != nil {
			return err
		}
		left--
		c.Reconnections++
		// Give the FLCC time to come back before re-registering: a restart
		// takes longer than a request, and a tight loop would burn the whole
		// reconnect budget inside one outage window.
		if err := c.backoff(ctx, c.Reconnections); err != nil {
			return err
		}
	}
}

// session is one connected stint: register (idempotent on the server, so a
// rejoin mid-campaign is acknowledged rather than rejected) and participate
// until done or until the server becomes unreachable.
func (c *Client) session(ctx context.Context) error {
	if err := c.register(ctx); err != nil {
		return err
	}
	for {
		poll, err := c.poll(ctx)
		if err != nil {
			return err
		}
		switch poll.Phase {
		case PhaseDone:
			return nil
		case PhaseTraining:
			if poll.Selected {
				if err := c.trainRound(ctx, poll.Round, poll.FreqHz); err != nil {
					// Conflicts are benign races (the round advanced while
					// we trained); everything else is fatal.
					if !isConflict(err) {
						return err
					}
				}
				continue // poll again immediately
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.cfg.PollInterval):
		}
	}
}

// conflictError marks HTTP 409/403 responses.
type conflictError struct{ msg string }

func (e conflictError) Error() string { return e.msg }

func isConflict(err error) bool {
	_, ok := err.(conflictError)
	return ok
}

// httpResult is one fully-read response.
type httpResult struct {
	status int
	body   []byte
}

// retryPolicy is the client's shared backoff schedule (see internal/retry):
// BaseBackoff doubling per attempt, capped at 2s, upper half jittered by the
// client's seeded RNG.
func (c *Client) retryPolicy() retry.Policy {
	return retry.Policy{MaxRetries: c.cfg.MaxRetries, Base: c.cfg.BaseBackoff, Jitter: c.rng}
}

// do issues the request built by build, retrying transient failures
// (transport errors, per-attempt timeouts, 5xx) up to MaxRetries times with
// the shared retry.Policy jittered exponential backoff. build is called per
// attempt — so request bodies are fresh — with the attempt's own context
// (the caller's ctx, bounded by RequestTimeout when set), which it must
// attach via http.NewRequestWithContext. Context cancellation aborts
// immediately with ctx.Err(); exhausting the retry budget returns an error
// wrapping ErrUnavailable.
func (c *Client) do(ctx context.Context, what string, build func(ctx context.Context) (*http.Request, error)) (*httpResult, error) {
	var out *httpResult
	err := c.retryPolicy().Do(ctx, func(ctx context.Context, attempt int) error {
		attemptCtx := ctx
		cancel := context.CancelFunc(func() {})
		if c.cfg.RequestTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		}
		req, err := build(attemptCtx)
		if err != nil {
			cancel()
			return err
		}
		// One span per attempt: retries are separate requests on the wire
		// and should be separately attributed. The header carries this
		// span's ref so the server's handler span becomes its child.
		sp := c.cfg.Trace.Start(c.cfg.TraceParent, "http.client")
		sp.SetStr("what", what)
		sp.SetInt("attempt", int64(attempt))
		if c.cfg.Trace != nil {
			req.Header.Set(TraceHeader, FormatTraceHeader(sp.Ref()))
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			sp.SetStr("error", "transport")
			sp.End()
			cancel()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return retry.Transient(err)
		}
		body, readErr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		cancel()
		if readErr != nil {
			sp.SetStr("error", "read")
			sp.End()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return retry.Transient(readErr)
		}
		sp.SetInt("status", int64(resp.StatusCode))
		sp.End()
		if resp.StatusCode >= 500 {
			return retry.Transient(fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body)))
		}
		out = &httpResult{status: resp.StatusCode, body: body}
		return nil
	})
	if err != nil {
		var ex *retry.ExhaustedError
		if errors.As(err, &ex) {
			return nil, fmt.Errorf("deploy: user %d: %s failed after %d attempt(s): %w: %v",
				c.cfg.Info.User, what, ex.Attempts, ErrUnavailable, ex.Last)
		}
		return nil, err
	}
	return out, nil
}

// backoff sleeps before retry `attempt` (1-based) on the client's shared
// schedule; the Reconnects loop uses it to give a restarting FLCC time to
// come back. Returns early with ctx.Err() on cancellation.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	return c.retryPolicy().Sleep(ctx, attempt)
}

func (c *Client) register(ctx context.Context) error {
	payload, err := json.Marshal(c.cfg.Info)
	if err != nil {
		return err
	}
	res, err := c.do(ctx, "register", func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/register", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	if res.status != http.StatusOK {
		return fmt.Errorf("deploy: register failed: status %d: %s", res.status, res.body)
	}
	return nil
}

func (c *Client) poll(ctx context.Context) (*PollResponse, error) {
	url := fmt.Sprintf("%s/poll?user=%d", c.cfg.BaseURL, c.cfg.Info.User)
	res, err := c.do(ctx, "poll", func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	})
	if err != nil {
		return nil, err
	}
	if res.status != http.StatusOK {
		return nil, fmt.Errorf("deploy: poll failed: status %d", res.status)
	}
	var out PollResponse
	if err := json.Unmarshal(res.body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// trainRound downloads the round's global model, runs the local update,
// and uploads the result. freqHz is the FLCC-assigned DVFS frequency.
func (c *Client) trainRound(ctx context.Context, round int, freqHz float64) error {
	modelURL := fmt.Sprintf("%s/model?round=%d", c.cfg.BaseURL, round)
	res, err := c.do(ctx, "model fetch", func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, modelURL, nil)
	})
	if err != nil {
		return err
	}
	switch {
	case res.status == http.StatusConflict:
		return conflictError{"stale model fetch"}
	case res.status != http.StatusOK:
		return fmt.Errorf("deploy: model fetch failed: status %d", res.status)
	}
	if err := nn.LoadParamBytes(c.model, res.body); err != nil {
		return err
	}

	// Local update, Eq. (3).
	var x = c.cfg.Data.X
	if c.cfg.Spec.FlattensInput() {
		x = c.cfg.Data.FlatX()
	}
	for s := 0; s < c.cfg.LocalSteps; s++ {
		c.model.ZeroGrads()
		logits := c.model.Forward(x, true)
		c.loss.Forward(logits, c.cfg.Data.Labels)
		c.model.Backward(c.loss.Backward())
		params, grads := c.model.Params(), c.model.Grads()
		for i, p := range params {
			p.AXPY(-c.cfg.LR, grads[i])
		}
	}
	// Act out the DVFS compute delay, so slower assigned frequencies make
	// this device visibly later on the server's timeline.
	if c.cfg.TimeScale > 0 && c.cfg.CyclesPerUpdate > 0 && freqHz > 0 {
		delay := c.cfg.TimeScale * c.cfg.CyclesPerUpdate / freqHz
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(delay * float64(time.Second))):
		}
	}

	payload := nn.ParamBytes(c.model)
	uploadURL := fmt.Sprintf("%s/upload?user=%d&round=%d", c.cfg.BaseURL, c.cfg.Info.User, round)
	up, err := c.do(ctx, "upload", func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, uploadURL, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	})
	if err != nil {
		return err
	}
	switch up.status {
	case http.StatusNoContent:
		c.RoundsTrained++
		return nil
	case http.StatusConflict, http.StatusForbidden:
		return conflictError{string(up.body)}
	default:
		return fmt.Errorf("deploy: upload failed: status %d: %s", up.status, up.body)
	}
}
