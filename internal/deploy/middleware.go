package deploy

import (
	"net/http"
	"runtime/debug"
	"time"

	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
)

// Logf is the logging hook the server and middleware accept; nil disables
// logging. log.Printf satisfies it.
type Logf func(format string, args ...interface{})

// statusWriter captures the response code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	code    int
	written bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.written {
		w.code = code
		w.written = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.written {
		w.code = http.StatusOK
		w.written = true
	}
	return w.ResponseWriter.Write(b)
}

// Middleware wraps next with request logging, per-path request counting,
// span tracing, and panic recovery. A panicking handler yields a 500
// response and a stack-trace log line instead of killing the FLCC
// process; the server keeps serving. logf, reqs, panics, and tr may each
// be nil to disable that facet. With tr set, every request records an
// "http.server" span parented at the caller's TraceHeader ref when
// present (cross-process stitching) or at the server's trace root, and
// the handler's request context carries the span so handler-side spans
// (span.StartCtx) nest under the request.
func Middleware(next http.Handler, logf Logf, reqs *obs.CounterVec, panics *obs.Counter, tr *span.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		parent, _ := ParseTraceHeader(r.Header.Get(TraceHeader))
		sp := tr.Start(parent, "http.server")
		sp.SetStr("path", r.URL.Path)
		if tr != nil {
			r = r.WithContext(span.WithParent(r.Context(), tr, sp.Ref()))
		}
		defer func() {
			if rec := recover(); rec != nil {
				if panics != nil {
					panics.Inc()
				}
				if logf != nil {
					logf("deploy: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				}
				if !sw.written {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}
			sp.SetInt("status", int64(sw.code))
			sp.End()
			if reqs != nil {
				reqs.With(r.URL.Path).Inc()
			}
			if logf != nil {
				logf("deploy: %s %s %d %s", r.Method, r.URL.Path, sw.code, time.Since(start).Round(time.Microsecond))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}
